package replay

import (
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/dataset"
)

// recorder is a System that logs calls for assertions.
type recorder struct {
	rates      []core.Rating
	recommends []core.UserID
	ticks      []time.Duration
}

var _ System = (*recorder)(nil)

func (r *recorder) Name() string { return "recorder" }
func (r *recorder) Rate(_ time.Duration, rating core.Rating) {
	r.rates = append(r.rates, rating)
}
func (r *recorder) Recommend(_ time.Duration, u core.UserID, _ int) []core.ItemID {
	r.recommends = append(r.recommends, u)
	return nil
}
func (r *recorder) Neighbors(core.UserID) []core.UserID { return nil }
func (r *recorder) Tick(t time.Duration)                { r.ticks = append(r.ticks, t) }

func evts(ts ...int) []dataset.BinaryEvent {
	out := make([]dataset.BinaryEvent, len(ts))
	for i, t := range ts {
		out[i] = dataset.BinaryEvent{
			T:     time.Duration(t) * time.Hour,
			User:  core.UserID(i % 3),
			Item:  core.ItemID(i),
			Liked: true,
		}
	}
	return out
}

func TestRunDeliversAllEvents(t *testing.T) {
	rec := &recorder{}
	d := NewDriver(rec)
	n := d.Run(evts(1, 2, 3, 4))
	if n != 4 || len(rec.rates) != 4 {
		t.Fatalf("processed %d, rated %d", n, len(rec.rates))
	}
	// Ticks are non-decreasing and precede every rating.
	for i := 1; i < len(rec.ticks); i++ {
		if rec.ticks[i] < rec.ticks[i-1] {
			t.Fatal("ticks decreased")
		}
	}
}

func TestObserverFiresPerPeriod(t *testing.T) {
	rec := &recorder{}
	d := NewDriver(rec)
	d.Every = 2 * time.Hour
	var observed []time.Duration
	d.Observer = func(tm time.Duration, processed int) {
		observed = append(observed, tm)
	}
	d.Run(evts(1, 2, 3, 4, 5, 6))
	if len(observed) < 3 {
		t.Fatalf("observer fired %d times: %v", len(observed), observed)
	}
	// Final observation at the last event.
	if observed[len(observed)-1] != 6*time.Hour {
		t.Fatalf("last observation at %v", observed[len(observed)-1])
	}
}

func TestObserverDisabledWithoutPeriod(t *testing.T) {
	rec := &recorder{}
	d := NewDriver(rec)
	fired := false
	d.Observer = func(time.Duration, int) { fired = true }
	d.Run(evts(1, 2))
	if fired {
		t.Fatal("observer fired with Every=0")
	}
}

func TestInterRequestCapInjectsKeepAlives(t *testing.T) {
	rec := &recorder{}
	d := NewDriver(rec)
	d.InterRequestCap = 2 * time.Hour
	// User 0 rates at t=1h then is silent until t=9h (user 1 rates at 9h);
	// user 0 must get keep-alive requests at 3h,5h,7h... before the 9h event.
	events := []dataset.BinaryEvent{
		{T: 1 * time.Hour, User: 0, Item: 1, Liked: true},
		{T: 9 * time.Hour, User: 1, Item: 2, Liked: true},
	}
	d.Run(events)
	count := 0
	for _, u := range rec.recommends {
		if u == 0 {
			count++
		}
	}
	if count < 3 {
		t.Fatalf("keep-alives for user 0 = %d, want ≥3 (%v)", count, rec.recommends)
	}
}

func TestRunEmptyTrace(t *testing.T) {
	rec := &recorder{}
	if n := NewDriver(rec).Run(nil); n != 0 {
		t.Fatalf("n = %d", n)
	}
}
