// Package replay drives recommender systems through timestamped rating
// traces on a virtual clock, implementing the methodology of Sections
// 5.2–5.3: "we replay the rating activity of each user over time. When a
// user rates an item in the workload, the client sends a request to the
// server, triggering the computation of recommendations."
//
// Every system under evaluation (HyRec, the centralized baselines, the
// P2P recommender) implements the System interface; the Driver feeds the
// same events to each so comparisons are apples-to-apples.
package replay

import (
	"time"

	"hyrec/internal/core"
	"hyrec/internal/dataset"
)

// System is a recommender under evaluation.
type System interface {
	// Name identifies the system in benchmark tables.
	Name() string
	// Rate processes a rating event at virtual time t. For HyRec this
	// triggers a full personalization-job round trip (the paper's client
	// request); for offline baselines it merely updates the profile.
	Rate(t time.Duration, r core.Rating)
	// Recommend returns up to n recommendations for u at virtual time t.
	Recommend(t time.Duration, u core.UserID, n int) []core.ItemID
	// Neighbors returns u's current KNN approximation (user IDs,
	// best first).
	Neighbors(u core.UserID) []core.UserID
	// Tick informs the system that virtual time advanced to t, letting
	// periodic tasks (offline KNN recomputation, gossip rounds, anonymiser
	// rotation) run. Tick is called with non-decreasing t.
	Tick(t time.Duration)
}

// Observer receives periodic callbacks during a replay, for measurements
// such as the view-similarity-over-time curves of Figure 3.
type Observer func(t time.Duration, processed int)

// Driver replays a trace against a System.
type Driver struct {
	system System
	// Every sets the observation period (0 disables observation).
	Every    time.Duration
	Observer Observer
	// InterRequestCap, when positive, bounds the virtual time between two
	// requests of the same user (the paper's IR=7-days variant in
	// Figure 3): if a user has been silent longer than the cap, synthetic
	// requests are injected at cap boundaries.
	InterRequestCap time.Duration
}

// NewDriver wraps a system.
func NewDriver(system System) *Driver { return &Driver{system: system} }

// Run replays events (which must be sorted by time) to completion and
// returns the number of events processed.
func (d *Driver) Run(events []dataset.BinaryEvent) int {
	lastSeen := make(map[core.UserID]time.Duration)
	nextObs := d.Every
	for i, ev := range events {
		// Inject synthetic keep-alive requests for capped inter-request
		// times before advancing to this event.
		if d.InterRequestCap > 0 {
			for u, last := range lastSeen {
				for ev.T-last > d.InterRequestCap {
					last += d.InterRequestCap
					d.system.Tick(last)
					d.system.Recommend(last, u, 0)
					lastSeen[u] = last
				}
			}
		}
		d.system.Tick(ev.T)
		d.system.Rate(ev.T, ev.Rating())
		lastSeen[ev.User] = ev.T

		if d.Every > 0 && d.Observer != nil && ev.T >= nextObs {
			d.Observer(ev.T, i+1)
			for nextObs <= ev.T {
				nextObs += d.Every
			}
		}
	}
	if d.Every > 0 && d.Observer != nil && len(events) > 0 {
		d.Observer(events[len(events)-1].T, len(events))
	}
	return len(events)
}
