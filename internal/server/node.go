package server

import (
	"context"
	"errors"
	"fmt"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// This file is the server-side surface of multi-node deployments
// (internal/node): the role-gating error a non-primary answers with, the
// capability interfaces the HTTP front-end probes for replication ingest
// and node-map pushes, and the forwarded-request marking that keeps
// node-to-node proxying loop-free. The engine itself stays
// topology-blind; a node composes these pieces around it.

// ErrNotPrimary is returned when a request that mutates or reads a
// user's authoritative state lands on a node that does not serve the
// user's partition as primary — typically the replica that only mirrors
// it. The HTTP layer maps it to 421/not_primary, the same
// refetch-topology-and-retry-once family as ErrMoved: silently applying
// on a mirror would fork the partition's history.
var ErrNotPrimary = errors.New("server: node is not primary for the partition")

// NotPrimaryError decorates ErrNotPrimary with the partition and, when
// the rejecting node knows it, the primary's identity — surfaced in the
// error envelope so a node-aware client can re-target directly.
type NotPrimaryError struct {
	Partition   int
	PrimaryID   string
	PrimaryAddr string
}

func (e *NotPrimaryError) Error() string {
	if e.PrimaryAddr != "" {
		return fmt.Sprintf("server: partition %d is served by node %s (%s), not here", e.Partition, e.PrimaryID, e.PrimaryAddr)
	}
	return fmt.Sprintf("server: partition %d is not served as primary here", e.Partition)
}

func (e *NotPrimaryError) Unwrap() error { return ErrNotPrimary }

// Replicator ingests a primary's replication batch into the local
// mirror (POST /v1/replicate). Only multi-node services implement it.
type Replicator interface {
	Replicate(ctx context.Context, b *wire.ReplBatch) (*wire.ReplAck, error)
}

// NodeMapSink adopts a coordinator-published node map (POST /v1/nodes):
// the receiver re-gates its partitions' roles to match. Implementations
// must ignore maps with a stale epoch.
type NodeMapSink interface {
	ApplyNodeMap(ctx context.Context, m *wire.NodeMap) error
}

// UserLocator answers which node serves a user's partition as primary —
// the ?uid=U form of GET /v1/topology, used by smoke probes and
// node-aware clients to find (and then kill or target) an owner.
type UserLocator interface {
	LocateUser(u core.UserID) (wire.NodeRef, bool)
}

// NodeEpocher reports the node-map epoch currently in force. /healthz
// advertises it in NodeEpochHeader so the heartbeat path doubles as an
// epoch exchange: a prober that sees a peer on a lower epoch re-pushes
// its map, and one that sees a higher epoch pulls the newer map — the
// repair loop that reconverges restarted nodes and missed pushes.
type NodeEpocher interface {
	NodeEpoch() uint64
}

// NodeEpochHeader carries the responding node's map epoch on /healthz.
const NodeEpochHeader = "X-Hyrec-Node-Epoch"

// NodeSecretHeader authenticates node-plane requests (POST /v1/replicate
// and /v1/nodes) when the deployment configures a shared secret
// (HTTPServer.RequireNodeSecret, hyrec-node -peer-secret). Without a
// secret those endpoints are open — acceptable only when the listener is
// reachable by trusted peers alone, since a well-formed higher-epoch map
// push reassigns partition ownership and a replication batch injects
// user state.
const NodeSecretHeader = "X-Hyrec-Node-Secret"

// ForwardedHeader marks a request already proxied once by a node. A
// node receiving a forwarded request it cannot serve as primary answers
// not_primary instead of proxying again, so topology disagreements
// degrade to a typed error rather than a forwarding loop.
const ForwardedHeader = "X-Hyrec-Forwarded"

type forwardedKey struct{}

// WithForwarded marks ctx as carrying a node-forwarded request. The
// HTTP front-end applies it when ForwardedHeader is present.
func WithForwarded(ctx context.Context) context.Context {
	return context.WithValue(ctx, forwardedKey{}, true)
}

// IsForwarded reports whether the request behind ctx was already
// proxied by a node.
func IsForwarded(ctx context.Context) bool {
	v, _ := ctx.Value(forwardedKey{}).(bool)
	return v
}

// SetStandby parks or releases this engine's dispatch side (see
// sched.Scheduler.SetStandby): a replica partition's engine runs in
// standby so it never leases jobs for users it only mirrors. No-op
// without a scheduler.
func (e *Engine) SetStandby(standby bool) {
	if e.sched != nil {
		e.sched.SetStandby(standby)
	}
}

// Standby reports whether this engine's dispatch side is parked.
func (e *Engine) Standby() bool {
	return e.sched != nil && e.sched.Standby()
}
