package server

import (
	"math/rand"

	"hyrec/internal/core"
)

// This file provides the ablation variants of the Section 3.1 candidate
// rule. The paper motivates each component of the default sampler —
// one-hop ∪ two-hop neighbours for exploitation, k random users so "the
// process will [not get] stuck into a local optimum" — and the
// SamplerAblation experiment quantifies both claims by replaying the same
// workload under each variant. All variants implement the public Sampler
// customization point (Table 1), so they double as worked examples for
// content providers plugging their own strategies.

// RandomOnlySampler draws every candidate uniformly at random, ignoring
// the KNN graph: pure exploration. It receives the same candidate budget
// as the default rule (2k + k²) so comparisons measure strategy, not
// sample size. Convergence degrades from per-iteration refinement to
// coupon collecting — the "random-only" baseline of epidemic clustering
// papers.
type RandomOnlySampler struct {
	Engine *Engine
}

var _ Sampler = RandomOnlySampler{}

// Sample implements Sampler.
func (s RandomOnlySampler) Sample(u core.UserID, k int) []core.UserID {
	return s.Engine.RandomUsers(core.MaxCandidateSetSize(k), u)
}

// NoRandomSampler keeps the one-hop ∪ two-hop aggregation but drops the
// random component: pure exploitation. Once the neighbourhood closes over
// a clique, no outside candidate can ever enter — the local optimum the
// paper's random users exist to escape. (Users whose KNN is still empty
// receive one random bootstrap candidate; with a forever-empty candidate
// set the comparison would be vacuous.)
type NoRandomSampler struct {
	Engine *Engine
}

var _ Sampler = NoRandomSampler{}

// Sample implements Sampler.
func (s NoRandomSampler) Sample(u core.UserID, k int) []core.UserID {
	e := s.Engine
	lookup := func(v core.UserID) []core.UserID { return e.knn.Get(v) }
	noRandom := func(*rand.Rand, int, core.UserID) []core.UserID { return nil }
	sh := &e.rngs[shardOf(u)]
	sh.mu.Lock()
	seed := sh.rng.Int63()
	sh.mu.Unlock()
	out := core.BuildCandidateSet(u, k, lookup, noRandom, rand.New(rand.NewSource(seed)))
	if len(out) == 0 {
		return e.RandomUsers(1, u)
	}
	return out
}
