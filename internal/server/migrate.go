package server

import (
	"hyrec/internal/core"
)

// This file is the engine-level user-state migration surface: everything
// a cluster's resharding coordinator needs to stream one user's state
// from the partition that used to own her to the one that owns her now.
// The unit of migration is UserState — profile, KNN row, retained
// recommendations — and the three operations are Export (read), Import
// (merge-write on the destination) and Remove (delete on the source).
// The engine itself has no notion of topology; ordering and routing are
// the coordinator's problem (internal/cluster).

// UserState is one user's complete migratable state.
type UserState struct {
	// Profile is the authoritative opinion record (it subsumes the
	// ratings roster: registration is implied by the profile's presence).
	Profile core.Profile
	// Neighbors is the user's current KNN approximation (nil when none).
	Neighbors []core.UserID
	// Recs is the pending last-recommendations cache entry (nil when
	// none retained).
	Recs []core.ItemID
}

// ExportUsers snapshots the migratable state of every listed user that
// this engine knows. Unknown users are skipped (the coordinator treats
// an absent entry as "nothing to move"). The export is per-user
// consistent — profiles are immutable snapshots — but not transactional
// across users, matching the persist layer's contract.
func (e *Engine) ExportUsers(users []core.UserID) []UserState {
	out := make([]UserState, 0, len(users))
	for _, u := range users {
		if !e.profiles.Known(u) {
			continue
		}
		out = append(out, UserState{
			Profile:   e.profiles.Get(u),
			Neighbors: e.knn.Get(u),
			Recs:      e.recs.Get(u),
		})
	}
	return out
}

// ImportUsers merges exported user state into this engine's tables.
// Merge semantics make the call safe while live traffic is already
// routed here: opinions the destination recorded since routing flipped
// (they are newer than the export) win over the imported snapshot, and
// a KNN row or recommendation entry the destination already holds is
// kept over the imported one for the same reason. Importing into an
// engine that has never seen the user stores the exported state
// verbatim — the restore path of the persist layer's topology replay.
func (e *Engine) ImportUsers(states []UserState) {
	for _, st := range states {
		u := st.Profile.User()
		// A user can move back to an engine that entombed her in an
		// earlier migration; lift the write block first.
		e.profiles.Exhume(u)
		e.profiles.Update(u, func(cur core.Profile) core.Profile {
			return mergeProfiles(st.Profile, cur)
		})
		if len(st.Neighbors) > 0 {
			e.knn.PutIfAbsent(u, st.Neighbors)
		}
		if len(st.Recs) > 0 {
			e.recs.PutIfAbsent(u, st.Recs)
		}
		if e.sched != nil {
			// The moved row was computed against the old partition's
			// candidate pool; queue a refresh so it re-converges against
			// the new neighbourhood.
			e.sched.MarkStale(u)
		}
	}
}

// ImportUsersSnapshot installs exported state verbatim: profile, KNN
// row and recommendation cache replace whatever the engine holds. This
// is the replica-mirror discipline — a mirror's only writer is its
// primary's replication stream, and the caller (internal/node) routes
// only each user's newest-known record here, dropping older ones at its
// recency gate — so installing the snapshot converges the mirror to the
// primary's state regardless of delivery order or duplication. Engines
// taking live writes must use ImportUsers' merge instead.
func (e *Engine) ImportUsersSnapshot(states []UserState) {
	for _, st := range states {
		u := st.Profile.User()
		e.profiles.Exhume(u)
		e.profiles.Put(st.Profile)
		if len(st.Neighbors) > 0 {
			e.knn.Put(u, st.Neighbors)
		}
		if len(st.Recs) > 0 {
			e.recs.Put(u, st.Recs)
		}
		if e.sched != nil {
			e.sched.MarkStale(u)
		}
	}
}

// RemoveUsers deletes every listed user's state — profile (and roster
// entry), KNN row and retained recommendations. The migration
// coordinator calls this on the source partition after the destination
// confirmed the import. The profile entry is entombed, not merely
// deleted: a racing writer that pinned the pre-migration topology and
// lands its update after this call is dropped here (its opinion has
// already been re-applied on the new owner by the cluster's routing
// re-check), so a drained entry can never resurrect and serve stale
// bytes. A later migration that moves the user back lifts the block
// via ImportUsers.
func (e *Engine) RemoveUsers(users []core.UserID) {
	for _, u := range users {
		e.profiles.Entomb(u)
		e.knn.Delete(u)
		e.recs.Delete(u)
	}
}

// MarkStale queues a KNN refresh for u (no-op without the scheduler) —
// the coordinator's hook for users whose refresh cycle was evicted from
// the source partition's scheduler mid-move.
func (e *Engine) MarkStale(u core.UserID) {
	if e.sched != nil {
		e.sched.MarkStale(u)
	}
}

// ClearTombstones lifts all migration write blocks (see
// ProfileTable.ClearTombs) — called by the coordinator at the start of
// the next migration so tombstones stay bounded.
func (e *Engine) ClearTombstones() { e.profiles.ClearTombs() }

// mergeProfiles layers the destination's opinions (cur, recorded after
// routing flipped — strictly newer) over the exported snapshot (old).
// With no destination opinions the exported profile is returned as-is,
// preserving byte-level equality on the pure-restore path.
func mergeProfiles(old, cur core.Profile) core.Profile {
	if cur.Size() == 0 {
		return old
	}
	merged := old
	for _, it := range cur.Liked() {
		merged = merged.WithRating(it, true)
	}
	for _, it := range cur.Disliked() {
		merged = merged.WithRating(it, false)
	}
	return merged
}
