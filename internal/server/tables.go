// Package server implements the HyRec server side (Section 3.1 of the
// paper): the global Profile and KNN tables, the Sampler that assembles
// candidate sets, and the Personalization orchestrator that turns client
// requests into personalization jobs and folds widget results back into
// the KNN table. An HTTP front-end (http.go) exposes the paper's web API.
package server

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"hyrec/internal/core"
)

// numShards spreads table locks; a power of two so the shard index is a
// mask operation.
const numShards = 64

func shardOf(u core.UserID) int { return int(uint32(u)*0x9E3779B1>>26) & (numShards - 1) }

// ProfileTable is the server's global user → profile map. It additionally
// maintains a dense roster of known users so the Sampler can draw uniform
// random users in O(1) per pick. The roster is strictly duplicate-free —
// rosterIdx verifies every insert, so re-storing a user can never grow it
// and skew the uniform sampling toward old users. Safe for concurrent
// use.
type ProfileTable struct {
	shards [numShards]profileShard

	// gen counts writes table-wide; the copy-on-write view layer
	// (view.go) compares it against a published snapshot's generation to
	// decide staleness without touching any shard lock.
	gen atomic.Uint64

	rosterMu sync.RWMutex
	roster   []core.UserID
	// rosterIdx maps each registered user to her position in the dense
	// roster, so removal (user-state migration) is a swap-with-last
	// instead of a linear scan.
	rosterIdx map[core.UserID]int
	// rosterGen counts roster changes (growth and removal), for the same
	// staleness check.
	rosterGen atomic.Uint64
}

type profileShard struct {
	mu sync.RWMutex
	m  map[core.UserID]core.Profile
	// gen counts writes to this shard (guarded by mu), so a view rebuild
	// copies only the shards that changed since it last looked.
	gen uint64
	// tombs marks users removed by state migration: writes for them are
	// dropped (the cluster's routing re-check has already re-applied the
	// opinion on the new owner) so a writer that pinned the
	// pre-migration topology cannot resurrect a drained entry. Lazily
	// allocated; lifted by Exhume when ownership moves back.
	tombs map[core.UserID]struct{}
}

// NewProfileTable returns an empty table.
func NewProfileTable() *ProfileTable {
	t := &ProfileTable{rosterIdx: make(map[core.UserID]int)}
	for i := range t.shards {
		t.shards[i].m = make(map[core.UserID]core.Profile)
	}
	return t
}

// register appends u to the dense roster exactly once. The shard lock
// gates callers on first-store, but the roster is updated outside that
// lock, so the index re-verifies membership: dedup-on-insert rather than
// trust-the-caller.
func (t *ProfileTable) register(u core.UserID) {
	t.rosterMu.Lock()
	if _, dup := t.rosterIdx[u]; !dup {
		t.rosterIdx[u] = len(t.roster)
		t.roster = append(t.roster, u)
		t.rosterGen.Add(1)
	}
	t.rosterMu.Unlock()
}

// Entomb removes u's profile and roster entry (the roster removal is a
// swap-with-last, so uniform sampling stays O(1) per draw), reporting
// whether u was present — and leaves a write block behind: until
// Exhume lifts it, Put and Update calls for u are dropped. User-state
// migration entombs the source copy so a racing writer that pinned the
// pre-migration topology cannot resurrect a drained entry (its opinion
// has already been re-applied on the new owner by the cluster's
// routing re-check). There is deliberately no tomb-less delete: every
// removal in a live cluster faces the same racing-writer hazard.
func (t *ProfileTable) Entomb(u core.UserID) bool { return t.remove(u) }

// Exhume lifts u's write block — called when a later migration moves
// the user's ownership back to this table.
func (t *ProfileTable) Exhume(u core.UserID) {
	s := &t.shards[shardOf(u)]
	s.mu.Lock()
	delete(s.tombs, u)
	s.mu.Unlock()
}

// ClearTombs lifts every outstanding write block. The migration
// coordinator calls it when a *new* migration begins: blocks from
// earlier migrations have served their purpose — the racing writers
// they guard against pinned a topology at least one full migration old
// and have long drained — so the tombstone map stays bounded by one
// migration's move set instead of growing with a deployment's lifetime
// scale-event history.
func (t *ProfileTable) ClearTombs() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.tombs = nil
		s.mu.Unlock()
	}
}

func (t *ProfileTable) remove(u core.UserID) bool {
	s := &t.shards[shardOf(u)]
	s.mu.Lock()
	if s.tombs == nil {
		s.tombs = make(map[core.UserID]struct{})
	}
	s.tombs[u] = struct{}{}
	_, existed := s.m[u]
	if existed {
		delete(s.m, u)
		s.gen++
	}
	s.mu.Unlock()
	if !existed {
		return false
	}
	t.gen.Add(1)
	t.rosterMu.Lock()
	if i, ok := t.rosterIdx[u]; ok {
		last := len(t.roster) - 1
		if i != last {
			moved := t.roster[last]
			t.roster[i] = moved
			t.rosterIdx[moved] = i
		}
		t.roster = t.roster[:last]
		delete(t.rosterIdx, u)
		t.rosterGen.Add(1)
	}
	t.rosterMu.Unlock()
	return true
}

// Get returns the current profile snapshot of u. Unknown users get a fresh
// empty profile (HyRec treats first contact as an empty-profile user).
func (t *ProfileTable) Get(u core.UserID) core.Profile {
	s := &t.shards[shardOf(u)]
	s.mu.RLock()
	p, ok := s.m[u]
	s.mu.RUnlock()
	if !ok {
		return core.NewProfile(u)
	}
	return p
}

// Known reports whether u has ever been stored.
func (t *ProfileTable) Known(u core.UserID) bool {
	s := &t.shards[shardOf(u)]
	s.mu.RLock()
	_, ok := s.m[u]
	s.mu.RUnlock()
	return ok
}

// Put stores a profile snapshot, registering the user on first sight.
// Writes for entombed users are dropped (see Entomb).
func (t *ProfileTable) Put(p core.Profile) {
	u := p.User()
	s := &t.shards[shardOf(u)]
	s.mu.Lock()
	if _, dead := s.tombs[u]; dead {
		s.mu.Unlock()
		return
	}
	_, existed := s.m[u]
	s.m[u] = p
	s.gen++
	s.mu.Unlock()
	t.gen.Add(1)
	if !existed {
		t.register(u)
	}
}

// Update applies fn to u's profile atomically with respect to other
// Updates of the same user, and returns the new snapshot. For an
// entombed user the transform runs against an empty profile and is NOT
// stored — the caller's routing re-check re-applies it where the user
// lives now.
func (t *ProfileTable) Update(u core.UserID, fn func(core.Profile) core.Profile) core.Profile {
	s := &t.shards[shardOf(u)]
	s.mu.Lock()
	if _, dead := s.tombs[u]; dead {
		s.mu.Unlock()
		return fn(core.NewProfile(u))
	}
	p, existed := s.m[u]
	if !existed {
		p = core.NewProfile(u)
	}
	p = fn(p)
	s.m[u] = p
	s.gen++
	s.mu.Unlock()
	t.gen.Add(1)
	if !existed {
		t.register(u)
	}
	return p
}

// Len returns the number of registered users.
func (t *ProfileTable) Len() int {
	t.rosterMu.RLock()
	defer t.rosterMu.RUnlock()
	return len(t.roster)
}

// RandomUsers draws n users uniformly (with replacement across draws, but
// without duplicates in one call), excluding `exclude`. Fewer than n are
// returned when the population is too small.
func (t *ProfileTable) RandomUsers(rng *rand.Rand, n int, exclude core.UserID) []core.UserID {
	t.rosterMu.RLock()
	defer t.rosterMu.RUnlock()
	total := len(t.roster)
	if total == 0 || n <= 0 {
		return nil
	}
	out := make([]core.UserID, 0, n)
	seen := make(map[core.UserID]struct{}, n)
	// Cap attempts so a tiny population cannot loop forever.
	for attempts := 0; len(out) < n && attempts < 8*n; attempts++ {
		u := t.roster[rng.Intn(total)]
		if u == exclude {
			continue
		}
		if _, dup := seen[u]; dup {
			continue
		}
		seen[u] = struct{}{}
		out = append(out, u)
	}
	return out
}

// ForEach invokes fn on a snapshot of every (user, profile) pair. The
// iteration order is unspecified.
func (t *ProfileTable) ForEach(fn func(core.Profile)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		snapshot := make([]core.Profile, 0, len(s.m))
		for _, p := range s.m {
			snapshot = append(snapshot, p)
		}
		s.mu.RUnlock()
		for _, p := range snapshot {
			fn(p)
		}
	}
}

// Users returns a copy of the user roster.
func (t *ProfileTable) Users() []core.UserID {
	t.rosterMu.RLock()
	defer t.rosterMu.RUnlock()
	out := make([]core.UserID, len(t.roster))
	copy(out, t.roster)
	return out
}

// KNNTable is the server's global user → current-KNN-approximation map.
// Safe for concurrent use.
type KNNTable struct {
	shards [numShards]knnShard

	// gen counts writes table-wide (see ProfileTable.gen).
	gen atomic.Uint64
}

type knnShard struct {
	mu sync.RWMutex
	m  map[core.UserID][]core.UserID
	// gen counts writes to this shard (guarded by mu).
	gen uint64
}

// NewKNNTable returns an empty table.
func NewKNNTable() *KNNTable {
	t := &KNNTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[core.UserID][]core.UserID)
	}
	return t
}

// Get returns the current neighbors of u (never modified by the table
// afterwards; callers must not mutate it).
func (t *KNNTable) Get(u core.UserID) []core.UserID {
	s := &t.shards[shardOf(u)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[u]
}

// Put replaces u's neighbor list. The slice is stored as-is; the caller
// must not modify it afterwards.
func (t *KNNTable) Put(u core.UserID, neighbors []core.UserID) {
	s := &t.shards[shardOf(u)]
	s.mu.Lock()
	s.m[u] = neighbors
	s.gen++
	s.mu.Unlock()
	t.gen.Add(1)
}

// PutIfAbsent stores u's neighbor list only when none is present,
// reporting whether it stored. The check and the store are one critical
// section, so an import racing a concurrent fold-in can never clobber
// the fresher row (the "destination wins" merge contract).
func (t *KNNTable) PutIfAbsent(u core.UserID, neighbors []core.UserID) bool {
	s := &t.shards[shardOf(u)]
	s.mu.Lock()
	if _, exists := s.m[u]; exists {
		s.mu.Unlock()
		return false
	}
	s.m[u] = neighbors
	s.gen++
	s.mu.Unlock()
	t.gen.Add(1)
	return true
}

// Delete removes u's neighbor list, reporting whether one was stored.
func (t *KNNTable) Delete(u core.UserID) bool {
	s := &t.shards[shardOf(u)]
	s.mu.Lock()
	_, existed := s.m[u]
	if existed {
		delete(s.m, u)
		s.gen++
	}
	s.mu.Unlock()
	if existed {
		t.gen.Add(1)
	}
	return existed
}

// Len returns the number of users with a stored neighborhood.
func (t *KNNTable) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
