package server

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

// schedConfig returns a test configuration with the scheduler on. The
// lease TTL is long enough that nothing expires mid-test under a loaded
// -race CPU; expiry-path tests override it explicitly.
func schedConfig() Config {
	cfg := DefaultConfig()
	cfg.K = 3
	cfg.R = 3
	cfg.LeaseTTL = 2 * time.Second
	cfg.LeaseRetries = 1
	return cfg
}

// seedRatings rates n users with overlapping items so similarities are
// nonzero.
func seedRatings(t *testing.T, e *Engine, n int) {
	t.Helper()
	for u := core.UserID(1); u <= core.UserID(n); u++ {
		for j := 0; j < 4; j++ {
			if err := e.Rate(tctx, u, core.ItemID((int(u)+j)%8), true); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSyncPathByteEquivalentWithoutScheduler pins the acceptance
// criterion: with the scheduler disabled (the default configuration),
// the refactored engine's job payload is byte-identical to the generic
// synchronous encoding — the pre-refactor wire format, with no lease
// metadata anywhere.
func TestSyncPathByteEquivalentWithoutScheduler(t *testing.T) {
	mk := func() *Engine {
		cfg := DefaultConfig()
		cfg.K = 4
		e := NewEngine(cfg)
		seedRatings(t, e, 25)
		return e
	}
	// Two identical engines consume their (deterministic, sharded) RNG
	// streams identically: one sample per assembly.
	e1, e2 := mk(), mk()
	for u := core.UserID(1); u <= 25; u++ {
		jsonBody, gz, err := e1.JobPayload(u)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := wire.Decompress(gz)
		if err != nil || !bytes.Equal(raw, jsonBody) {
			t.Fatal("gzip payload does not round-trip")
		}
		job, err := e2.Job(tctx, u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := wire.EncodeJob(job)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonBody, want) {
			t.Fatalf("u%d: cached-assembly payload diverges from synchronous encoding:\n%s\n%s", u, jsonBody, want)
		}
		for _, key := range []string{`"lease"`, `"deadline_ms"`, `"attempt"`} {
			if bytes.Contains(jsonBody, []byte(key)) {
				t.Fatalf("scheduler-free payload leaks %s: %s", key, jsonBody)
			}
		}
	}
	if e1.Scheduler() != nil {
		t.Fatal("default config should not start a scheduler")
	}
}

func TestJobCarriesLeaseWhenSchedulerEnabled(t *testing.T) {
	e := NewEngine(schedConfig())
	defer e.Close()
	seedRatings(t, e, 10)

	job, err := e.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if job.Lease == 0 || job.LeaseDeadlineMS == 0 || job.Attempt != 1 {
		t.Fatalf("job missing lease metadata: %+v", job)
	}

	// The cached payload path stamps and encodes the same metadata.
	raw, _, err := e.JobPayload(2)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := wire.DecodeJob(raw)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Lease == 0 || decoded.Attempt != 1 {
		t.Fatalf("payload path lost lease metadata: %s", raw)
	}
	// Hand-rolled assembly must agree byte-for-byte with encoding/json.
	want, err := wire.EncodeJob(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("leased payload diverges from generic encoding:\n%s\n%s", raw, want)
	}
}

// TestWidgetResultRetiresLease runs the full async loop in-process:
// rating → staleness queue → worker dispatch → widget compute → fold-in
// acking the lease.
func TestWidgetResultRetiresLease(t *testing.T) {
	e := NewEngine(schedConfig())
	defer e.Close()
	seedRatings(t, e, 10)

	w := widget.New()
	for {
		job, err := e.TryNextJob()
		if err != nil {
			t.Fatal(err)
		}
		if job == nil {
			break
		}
		if job.Lease == 0 {
			t.Fatalf("dispatched job without lease: %+v", job)
		}
		res, _ := w.Execute(job)
		if res.Lease != job.Lease {
			t.Fatalf("widget dropped the lease: job %d result %d", job.Lease, res.Lease)
		}
		if _, err := e.ApplyResult(tctx, res); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Scheduler().Quiet() {
		t.Fatalf("scheduler not quiet after draining: %+v", e.Scheduler().Stats())
	}
	st := e.Scheduler().Stats()
	if st.Dispatched == 0 || st.Acked != st.Dispatched {
		t.Fatalf("want every dispatch acked, got %+v", st)
	}
	for u := core.UserID(1); u <= 10; u++ {
		if !e.Scheduler().RefreshedUser(u) {
			t.Fatalf("user %d never refreshed", u)
		}
	}
}

func TestAckExplicitCompleteAndAbandon(t *testing.T) {
	e := NewEngine(schedConfig())
	defer e.Close()
	seedRatings(t, e, 3)

	job, err := e.TryNextJob()
	if err != nil || job == nil {
		t.Fatalf("no job dispatched: %v", err)
	}
	// Abandon → immediate re-issue with attempt 2.
	if err := e.Ack(tctx, job.Lease, false); err != nil {
		t.Fatal(err)
	}
	again, err := e.TryNextJob()
	if err != nil || again == nil {
		t.Fatalf("abandoned job not re-issued: %v", err)
	}
	if again.Attempt != 2 {
		t.Fatalf("re-issue attempt = %d, want 2", again.Attempt)
	}
	if err := e.Ack(tctx, again.Lease, true); err != nil {
		t.Fatal(err)
	}
	if err := e.Ack(tctx, again.Lease, true); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("double ack = %v, want ErrUnknownLease", err)
	}
}

func TestAckWithoutSchedulerIsUnknownLease(t *testing.T) {
	e := NewEngine(testConfig())
	if err := e.Ack(tctx, 1, true); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("ack on synchronous engine = %v, want ErrUnknownLease", err)
	}
	if job, err := e.TryNextJob(); job != nil || err != nil {
		t.Fatalf("TryNextJob on synchronous engine = %v, %v; want nil, nil", job, err)
	}
}

// TestFallbackRefreshesStragglers: leases nobody answers expire, burn
// their retry budget, and the fallback pool refreshes the rows locally.
func TestFallbackRefreshesStragglers(t *testing.T) {
	cfg := schedConfig()
	cfg.LeaseTTL = 20 * time.Millisecond
	cfg.LeaseRetries = -1 // first expiry goes straight to fallback
	cfg.FallbackWorkers = 2
	e := NewEngine(cfg)
	defer e.Close()
	seedRatings(t, e, 6)

	// Lease every pending job and walk away (straggler widgets).
	for {
		job, err := e.TryNextJob()
		if err != nil {
			t.Fatal(err)
		}
		if job == nil {
			break
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if e.Scheduler().Quiet() && len(e.Scheduler().Unrefreshed()) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if un := e.Scheduler().Unrefreshed(); len(un) != 0 {
		t.Fatalf("users never refreshed despite fallback pool: %v (stats %+v)",
			un, e.Scheduler().Stats())
	}
	st := e.Scheduler().Stats()
	if st.FallbackRuns == 0 {
		t.Fatalf("fallback pool never ran: %+v", st)
	}
	// The locally computed rows are real KNN rows.
	for u := core.UserID(1); u <= 6; u++ {
		if hood, _ := e.Neighbors(tctx, u); len(hood) == 0 {
			t.Fatalf("user %d has an empty KNN row after fallback refresh", u)
		}
	}
}

// TestNextJobBlocksAndWakes covers the long-poll dispatch path.
func TestNextJobBlocksAndWakes(t *testing.T) {
	e := NewEngine(schedConfig())
	defer e.Close()

	ctx, cancel := context.WithTimeout(tctx, 30*time.Millisecond)
	defer cancel()
	if job, err := e.NextJob(ctx); job != nil || err != nil {
		t.Fatalf("empty queue NextJob = %v, %v; want nil, nil", job, err)
	}

	got := make(chan *wire.Job, 1)
	go func() {
		job, _ := e.NextJob(context.Background())
		got <- job
	}()
	time.Sleep(10 * time.Millisecond)
	if err := e.Rate(tctx, 9, 1, true); err != nil {
		t.Fatal(err)
	}
	select {
	case job := <-got:
		if job == nil || job.Lease == 0 {
			t.Fatalf("woken dispatch returned %+v", job)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NextJob never woke on new staleness")
	}
}

// TestStaleResultStillRefreshes: a result whose lease already expired
// (or was superseded) must still fold in — and complete the cycle — as
// long as its epoch resolves.
func TestStaleResultStillRefreshes(t *testing.T) {
	cfg := schedConfig()
	cfg.LeaseTTL = time.Minute
	e := NewEngine(cfg)
	defer e.Close()
	seedRatings(t, e, 5)

	job, err := e.TryNextJob()
	if err != nil || job == nil {
		t.Fatal("no job")
	}
	// Supersede the lease via a user-driven request.
	u, ok := e.ResolveUser(core.UserID(job.UID), job.Epoch)
	if !ok {
		t.Fatal("cannot resolve own job uid")
	}
	if _, err := e.Job(tctx, u); err != nil {
		t.Fatal(err)
	}
	res, _ := widget.New().Execute(job) // carries the superseded lease
	if _, err := e.ApplyResult(tctx, res); err != nil {
		t.Fatalf("superseded-lease result rejected: %v", err)
	}
	if !e.Scheduler().RefreshedUser(u) {
		t.Fatal("fold-in with superseded lease did not refresh the user")
	}
}

// TestResultWithForeignLeaseDoesNotRetireIt: a widget result quoting
// another user's lease ID refreshes only its own user; the foreign
// lease stays outstanding.
func TestResultWithForeignLeaseDoesNotRetireIt(t *testing.T) {
	e := NewEngine(schedConfig())
	defer e.Close()
	seedRatings(t, e, 4)

	jobA, err := e.TryNextJob()
	if err != nil || jobA == nil {
		t.Fatal("no job A")
	}
	jobB, err := e.TryNextJob()
	if err != nil || jobB == nil {
		t.Fatal("no job B")
	}
	resA, _ := widget.New().Execute(jobA)
	resA.Lease = jobB.Lease // forged / guessed foreign lease
	if _, err := e.ApplyResult(tctx, resA); err != nil {
		t.Fatal(err)
	}
	// B's lease survived the forgery and still acks.
	if err := e.Ack(tctx, jobB.Lease, true); err != nil {
		t.Fatalf("foreign lease was retired by A's result: %v", err)
	}
	// A's own cycle completed via the refresh fallback.
	uA, ok := e.ResolveUser(core.UserID(jobA.UID), jobA.Epoch)
	if !ok || !e.Scheduler().RefreshedUser(uA) {
		t.Fatal("A's fold-in did not refresh A")
	}
}

// TestRatingDuringLeasedJobRequeues: a rating that lands while the
// user's job is out is not absorbed by the completing lease — the user
// re-enters the staleness queue so the new opinion gets its refresh.
func TestRatingDuringLeasedJobRequeues(t *testing.T) {
	cfg := schedConfig()
	cfg.LeaseTTL = time.Minute
	e := NewEngine(cfg)
	defer e.Close()

	job, err := e.Job(tctx, 99) // user-driven: lease issued before snapshot
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Rate(tctx, 99, 5, true); err != nil { // lands mid-flight
		t.Fatal(err)
	}
	if j, _ := e.TryNextJob(); j != nil {
		t.Fatal("re-dirty dispatched while the lease is still out")
	}
	res, _ := widget.New().Execute(job)
	if _, err := e.ApplyResult(tctx, res); err != nil {
		t.Fatal(err)
	}
	again, err := e.TryNextJob()
	if err != nil || again == nil {
		t.Fatalf("mid-flight rating was absorbed; no refresh queued: %v", err)
	}
	u, ok := e.ResolveUser(core.UserID(again.UID), again.Epoch)
	if !ok || u != 99 {
		t.Fatalf("re-queued job is for user %d, want 99", u)
	}
}
