package server

import (
	"sync"
	"time"

	"hyrec/internal/core"
)

// presenceWindow is how recently a user must have been seen to count as
// online in /stats. Section 2.4's argument for the hybrid design is that
// the central entity "can effectively manage dynamic connections and
// disconnections of users"; this tracker is that management surface.
const presenceWindow = 5 * time.Minute

// presence records per-user last-contact times. Safe for concurrent use.
// The clock is injectable for tests.
type presence struct {
	mu   sync.RWMutex
	last map[core.UserID]time.Time
	now  func() time.Time
}

func newPresence() *presence {
	return &presence{last: make(map[core.UserID]time.Time), now: time.Now}
}

// Touch records contact from u.
func (p *presence) Touch(u core.UserID) {
	p.mu.Lock()
	p.last[u] = p.now()
	p.mu.Unlock()
}

// LastSeen returns u's most recent contact time (zero if never seen).
func (p *presence) LastSeen(u core.UserID) time.Time {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.last[u]
}

// Online counts users seen within the presence window. It also prunes
// entries older than ten windows so the map tracks the active population,
// not the all-time one.
func (p *presence) Online(window time.Duration) int {
	now := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for u, t := range p.last {
		switch {
		case now.Sub(t) <= window:
			n++
		case now.Sub(t) > 10*window:
			delete(p.last, u)
		}
	}
	return n
}
