package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// A widget is untrusted: whatever it posts, its KNN row must respect the
// protocol shape (≤ K entries, no duplicates, no self).
func TestApplyResultCapsMaliciousNeighborList(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true
	cfg.K = 5
	e := NewEngine(cfg)
	for u := core.UserID(1); u <= 100; u++ {
		e.Rate(tctx, u, 1, true)
	}

	res := &wire.Result{UID: 1}
	for v := uint32(2); v <= 90; v++ {
		res.Neighbors = append(res.Neighbors, v)
	}
	if _, err := e.ApplyResult(tctx, res); err != nil {
		t.Fatal(err)
	}
	if got := len(e.KNN().Get(1)); got != cfg.K {
		t.Fatalf("stored %d neighbors, want capped at %d", got, cfg.K)
	}
}

func TestApplyResultDedupsAndDropsSelf(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true
	cfg.K = 10
	e := NewEngine(cfg)
	for u := core.UserID(1); u <= 5; u++ {
		e.Rate(tctx, u, 1, true)
	}

	res := &wire.Result{UID: 1, Neighbors: []uint32{2, 2, 1, 3, 3, 3, 1, 4}}
	if _, err := e.ApplyResult(tctx, res); err != nil {
		t.Fatal(err)
	}
	got := e.KNN().Get(1)
	want := []core.UserID{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("neighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", got, want)
		}
	}
}

func TestApplyResultCapsRecommendations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true
	cfg.R = 3
	e := NewEngine(cfg)
	e.Rate(tctx, 1, 1, true)

	res := &wire.Result{UID: 1, Recommendations: []uint32{10, 11, 12, 13, 14, 15}}
	recs, err := e.ApplyResult(tctx, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != cfg.R {
		t.Fatalf("returned %d recommendations, want capped at %d", len(recs), cfg.R)
	}
}

// HTTP-level abuse: an oversized /neighbors POST is absorbed with the
// same caps, never amplifying into server state.
func TestHTTPNeighborsFloodCapped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true
	cfg.K = 10
	e := NewEngine(cfg)
	for u := core.UserID(1); u <= 200; u++ {
		e.Rate(tctx, u, 1, true)
	}
	s := NewHTTPServer(e, 0)
	h := s.Handler()

	flood := wire.Result{UID: 1}
	for v := uint32(2); v <= 200; v++ {
		flood.Neighbors = append(flood.Neighbors, v)
	}
	body, err := json.Marshal(flood)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/neighbors", bytes.NewReader(body)))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("flood POST: %d %s", rec.Code, rec.Body.String())
	}
	if got := len(e.KNN().Get(1)); got != cfg.K {
		t.Fatalf("flood stored %d neighbors, want %d", got, cfg.K)
	}
}

func TestHTTPNeighborsGarbageBody(t *testing.T) {
	e := NewEngine(DefaultConfig())
	s := NewHTTPServer(e, 0)
	h := s.Handler()

	for _, body := range []string{"", "{", `{"uid": "not-a-number"}`, "\x00\x01\x02"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/neighbors", strings.NewReader(body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rec.Code)
		}
	}
}

// A widget receiving a truncated or corrupted gzip payload must fail
// cleanly, and the server's payload must inflate correctly end-to-end.
func TestJobPayloadCorruptionHandling(t *testing.T) {
	cfg := DefaultConfig()
	e := NewEngine(cfg)
	for u := core.UserID(1); u <= 10; u++ {
		e.Rate(tctx, u, core.ItemID(u%3), true)
	}
	_, gz, err := e.JobPayload(1)
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: the pristine payload inflates and parses.
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	zr.Close()

	// Truncations and bit flips must yield errors, not garbage jobs.
	corruptions := [][]byte{
		gz[:len(gz)/2],
		gz[:5],
		append(append([]byte{}, gz[:len(gz)-3]...), 0xFF, 0xFF, 0xFF),
	}
	flipped := append([]byte(nil), gz...)
	flipped[len(flipped)/2] ^= 0xA5
	corruptions = append(corruptions, flipped)

	for i, c := range corruptions {
		if _, err := wire.Decompress(c); err == nil {
			// Flips can land in gzip's padding; only fail when decompress
			// succeeded AND the JSON also parses as a job with candidates.
			raw, _ := wire.Decompress(c)
			if job, jerr := wire.DecodeJob(raw); jerr == nil && job != nil && len(job.Candidates) > 0 {
				t.Errorf("corruption %d silently produced a plausible job", i)
			}
		}
	}
}
