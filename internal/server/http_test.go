package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

func newTestHTTP(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e := NewEngine(testConfig())
	s := NewServer(e, 0)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return e, ts
}

// rawClient disables Go's transparent response decompression so tests can
// observe the gzip bytes actually sent on the wire (a browser widget sees
// decompressed JSON; these tests verify the wire format itself).
func rawClient() *http.Client {
	return &http.Client{Transport: &http.Transport{DisableCompression: true}}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestHTTP(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// An unidentified /online is a first visit: the server mints an identity
// and hands it back as a cookie (Section 4.2), rather than erroring.
func TestOnlineWithoutUIDMintsCookie(t *testing.T) {
	_, ts := newTestHTTP(t)
	resp, err := http.Get(ts.URL + "/online")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	found := false
	for _, c := range resp.Cookies() {
		if c.Name == UIDCookieName && c.Value != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s cookie on first visit", UIDCookieName)
	}
}

func TestOnlineReturnsGzipJob(t *testing.T) {
	e, ts := newTestHTTP(t)
	e.Rate(tctx, 1, 5, true)
	e.Rate(tctx, 2, 5, true)

	resp, err := rawClient().Get(ts.URL + "/online?uid=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("Content-Encoding = %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := wire.Decompress(body)
	if err != nil {
		t.Fatal(err)
	}
	job, err := wire.DecodeJob(raw)
	if err != nil {
		t.Fatal(err)
	}
	if job.K != 3 || len(job.Profile.Liked) != 1 {
		t.Fatalf("job = %+v", job)
	}
}

func TestOnlineWithPiggybackedRating(t *testing.T) {
	e, ts := newTestHTTP(t)
	resp, err := http.Get(ts.URL + "/online?uid=4&item=9&liked=true")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !e.Profiles().Get(4).LikedContains(9) {
		t.Fatal("piggybacked rating not recorded")
	}
}

func TestRateEndpoint(t *testing.T) {
	e, ts := newTestHTTP(t)
	resp, err := http.Post(ts.URL+"/rate?uid=3&item=7&liked=false", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	p := e.Profiles().Get(3)
	if !p.Contains(7) || p.LikedContains(7) {
		t.Fatal("dislike not recorded")
	}
}

func TestRateBadParams(t *testing.T) {
	_, ts := newTestHTTP(t)
	for _, path := range []string{"/rate?uid=x&item=1", "/rate?uid=1&item=x", "/rate?uid=1&item=1&liked=zzz"} {
		resp, err := http.Post(ts.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestFullWidgetRoundTripOverHTTP is the paper's interaction diagram
// (Figure 1, arrows 1–3) over a real HTTP stack.
func TestFullWidgetRoundTripOverHTTP(t *testing.T) {
	e, ts := newTestHTTP(t)
	// Seed the population.
	for u := core.UserID(1); u <= 8; u++ {
		e.Rate(tctx, u, core.ItemID(u%3), true)
		e.Rate(tctx, u, 100, true) // shared item
	}

	// Arrow 1: client request.
	resp, err := rawClient().Get(ts.URL + "/online?uid=1")
	if err != nil {
		t.Fatal(err)
	}
	gz, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Arrow 2: the widget executes the job.
	w := widget.New()
	res, _, err := w.ExecutePayload(gz)
	if err != nil {
		t.Fatal(err)
	}

	// Arrow 3: POST the result back.
	body, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts.URL+"/neighbors", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("neighbors status = %d", resp2.StatusCode)
	}

	if hood, _ := e.Neighbors(tctx, 1); len(hood) == 0 {
		t.Fatal("KNN table empty after round trip")
	}

	// Recommendations are retrievable.
	resp3, err := http.Get(ts.URL + "/recommendations?uid=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var recs []core.ItemID
	if err := json.NewDecoder(resp3.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsQueryForm(t *testing.T) {
	cfg := testConfig()
	cfg.DisableAnonymizer = true
	e := NewEngine(cfg) // plain-ID engine for the query-form test
	s := NewServer(e, 0)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	e.Rate(tctx, 1, 1, true)
	e.Rate(tctx, 2, 1, true)

	q := url.Values{}
	q.Set("uid", "1")
	q.Set("epoch", "0")
	q.Set("id0", "2")
	q.Set("recs", "9,10")
	resp, err := http.Get(ts.URL + "/neighbors?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	hood, _ := e.Neighbors(tctx, 1)
	if len(hood) != 1 || hood[0] != 2 {
		t.Fatalf("neighbors = %v", hood)
	}
}

func TestNeighborsStaleEpochGives410(t *testing.T) {
	e, ts := newTestHTTP(t)
	e.Rate(tctx, 1, 1, true)
	jsonBody, _, err := e.JobPayload(1)
	if err != nil {
		t.Fatal(err)
	}
	job, err := wire.DecodeJob(jsonBody)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := widget.New().Execute(job)
	e.RotateAnonymizer()
	e.RotateAnonymizer()

	body, _ := json.Marshal(res)
	resp, err := http.Post(ts.URL+"/neighbors", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("status = %d, want 410", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	e, ts := newTestHTTP(t)
	e.Rate(tctx, 1, 1, true)
	if _, _, err := e.JobPayload(1); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["gzip_bytes"] == 0 || stats["users"] != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestRotationLoopStartsAndStops(t *testing.T) {
	e := NewEngine(testConfig())
	s := NewHTTPServer(e, time.Millisecond)
	s.Start()
	deadline := time.After(2 * time.Second)
	for e.anon.Epoch() == 0 {
		select {
		case <-deadline:
			t.Fatal("anonymiser never rotated")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	s.Close()
	s.Close() // idempotent
}

func TestConcurrentHTTPClients(t *testing.T) {
	e, ts := newTestHTTP(t)
	for u := core.UserID(0); u < 16; u++ {
		e.Rate(tctx, u, core.ItemID(u%5), true)
	}
	errc := make(chan error, 8)
	client := rawClient()
	for g := 0; g < 8; g++ {
		go func(g int) {
			w := widget.New()
			for i := 0; i < 30; i++ {
				uid := (g*7 + i) % 16
				resp, err := client.Get(fmt.Sprintf("%s/online?uid=%d&item=%d&liked=true", ts.URL, uid, i))
				if err != nil {
					errc <- err
					return
				}
				gz, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				res, _, err := w.ExecutePayload(gz)
				if err != nil {
					errc <- err
					return
				}
				body, _ := json.Marshal(res)
				resp2, err := http.Post(ts.URL+"/neighbors", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp2.Body)
				resp2.Body.Close()
				if resp2.StatusCode != http.StatusNoContent {
					errc <- fmt.Errorf("neighbors status %d", resp2.StatusCode)
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if e.KNN().Len() == 0 {
		t.Fatal("no KNN entries after concurrent traffic")
	}
}

func TestUIDParamParsing(t *testing.T) {
	for _, tc := range []struct {
		raw  string
		ok   bool
		want core.UserID
	}{
		{"5", true, 5}, {"0", true, 0}, {strconv.FormatUint(1<<32-1, 10), true, core.UserID(1<<32 - 1)},
		{"-1", false, 0}, {"abc", false, 0}, {strconv.FormatUint(1<<33, 10), false, 0},
	} {
		r := httptest.NewRequest(http.MethodGet, "/online?uid="+tc.raw, nil)
		got, known, err := UIDFromRequest(r)
		if tc.ok && (err != nil || !known || got != tc.want) {
			t.Errorf("uid %q: got %v known=%v, %v", tc.raw, got, known, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("uid %q: expected error", tc.raw)
		}
	}
	// No uid and no cookie: not an error, just unidentified.
	r := httptest.NewRequest(http.MethodGet, "/online", nil)
	if _, known, err := UIDFromRequest(r); known || err != nil {
		t.Errorf("empty request: known=%v err=%v", known, err)
	}
}
