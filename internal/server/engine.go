package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/sched"
	"hyrec/internal/topk"
	"hyrec/internal/wire"
)

// Sampler is the server-side customization point of Table 1: given a user
// and the neighborhood parameter k it returns the candidate set for the
// next KNN iteration. The default implementation follows Section 3.1
// (one-hop ∪ two-hop ∪ k random users); content providers may plug
// alternatives.
type Sampler interface {
	Sample(u core.UserID, k int) []core.UserID
}

// Config parametrises an Engine. The zero value is not usable; call
// DefaultConfig and adjust.
type Config struct {
	// K is the neighborhood size (10–20 in the paper).
	K int
	// R is the number of items recommended per personalization job.
	R int
	// Seed drives all server-side randomness (sampling, anonymisation).
	Seed int64
	// DisableAnonymizer sends real identifiers on the wire. Only for
	// debugging and ablations; the paper's deployment always anonymises.
	DisableAnonymizer bool
	// DisableProfileCache turns off the serialized-profile cache
	// (ablation: BenchmarkAblationProfileCache).
	DisableProfileCache bool
	// DisableTableSnapshots turns off the epoch-pinned copy-on-write
	// read path (view.go) and retains the original per-lookup shard
	// locking during job assembly. Kept as an ablation and as the
	// baseline TestHotPathAllocReduction and the capacity benchmark
	// measure the snapshot path against.
	DisableTableSnapshots bool
	// GzipLevel for outgoing personalization jobs.
	GzipLevel wire.GzipLevel
	// MaxProfileItems, when positive, truncates profiles embedded in
	// candidate sets to bound message size (Section 6 discussion).
	MaxProfileItems int
	// CandidateFilter, when non-nil, transforms every candidate profile
	// just before it is serialized into a personalization job. This is the
	// privacy hook the paper's conclusion calls for: internal/privacy
	// plugs differentially-private perturbation in here. The requesting
	// user's own profile is never filtered (it goes back to its owner).
	// Setting a filter bypasses the serialized-profile cache for
	// candidates, since filtered output may differ between jobs.
	CandidateFilter func(core.Profile) core.Profile
	// RecCacheUsers bounds the last-recommendations store: only the most
	// recently active users' recommendations are retained (LRU). Zero
	// selects the default (4096).
	RecCacheUsers int

	// The fields below enable the asynchronous job scheduler
	// (internal/sched). With all of them zero the engine runs the paper's
	// original synchronous pull flow, byte-for-byte: jobs carry no lease
	// metadata and nothing happens between Job and ApplyResult.

	// LeaseTTL, when positive, turns on the scheduler: every issued job
	// carries a lease that expires after this duration, after which the
	// job is re-issued (straggler handling).
	LeaseTTL time.Duration
	// LeaseRetries bounds lease re-issues before a job falls back to
	// server-side execution (0 = scheduler default, negative = none).
	LeaseRetries int
	// FallbackWorkers, when positive, runs a pool of server-side workers
	// that execute jobs locally — for leases that exhaust their retries
	// and for inactive users nobody computes for. Setting it also turns
	// on the scheduler (with the default lease TTL if LeaseTTL is zero).
	FallbackWorkers int
	// FallbackBudget, when non-nil, caps concurrent fallback executions
	// across engines — a cluster shares one so the server's residual
	// compute stays bounded globally.
	FallbackBudget *sched.Budget
	// FallbackMetric is the similarity metric the fallback executor
	// ranks neighbors with. Set it to whatever the deployment's widgets
	// use so server-refreshed rows and browser-refreshed rows agree on
	// the ordering. Nil selects the paper's default (cosine).
	FallbackMetric core.Similarity

	// The MaxInflight* fields bound the admission gate's per-class
	// concurrent request counts on both transport planes (HTTP mux and
	// framed listener); over-limit arrivals are shed with a typed
	// "overloaded" answer carrying a retry-after hint. Zero = unlimited
	// for that class. See internal/admit and ARCHITECTURE.md "Overload
	// & admission control". These knobs live on the engine Config so
	// every deployment shape (engine, cluster, node) carries them to
	// the front-end without a second config surface.

	// MaxInflightRating bounds concurrent rating-ingest requests
	// (POST /v1/rate, /rate, TRateBatch). Rating is the prioritized
	// class: full-queue arrivals wait a short grace window for a slot
	// before shedding, and its slots are isolated from read/worker
	// floods.
	MaxInflightRating int
	// MaxInflightWorker bounds concurrent worker job traffic: parked
	// long-polls (each holds a slot for the whole park), result posts,
	// lease acks.
	MaxInflightWorker int
	// MaxInflightRead bounds concurrent rec/neighbor reads and
	// user-driven job fetches — the first class shed under pressure.
	MaxInflightRead int
}

// SchedulerEnabled reports whether this configuration runs the
// asynchronous job scheduler.
func (c Config) SchedulerEnabled() bool {
	return c.LeaseTTL > 0 || c.FallbackWorkers > 0
}

// DefaultConfig returns the paper's default parameters: k=10, r=10,
// BestSpeed gzip, anonymisation and profile cache enabled.
func DefaultConfig() Config {
	return Config{K: 10, R: 10, Seed: 1, GzipLevel: wire.GzipBestSpeed}
}

func (c Config) validate() error {
	if c.K <= 0 {
		return errors.New("server: config K must be positive")
	}
	if c.R <= 0 {
		return errors.New("server: config R must be positive")
	}
	return nil
}

// Engine is the HyRec server: profile and KNN tables plus the Sampler and
// the Personalization orchestrator. It is transport-agnostic; http.go
// exposes it over the paper's web API, and the replay harness drives it
// in-process. Safe for concurrent use.
type Engine struct {
	cfg      Config
	profiles *ProfileTable
	knn      *KNNTable
	anon     *core.Anonymizer
	cache    *wire.ProfileCache
	meter    *wire.Meter
	sampler  Sampler
	// recs retains each recently-active user's last recommendations
	// (bounded LRU) so Recommendations can answer without recomputing.
	recs *recStore
	// resolveProfile, when non-nil, supplies profiles for users the local
	// table has never seen (see SetProfileResolver).
	resolveProfile ProfileResolver

	// rngs shards the sampling RNG by user so concurrent job assemblies
	// draw randomness without serializing on one mutex (the former
	// global rngMu; see BenchmarkJobParallel). Each shard is seeded
	// deterministically from cfg.Seed, so single-threaded runs remain
	// reproducible.
	rngs [numShards]rngShard

	// sched, when non-nil, runs the asynchronous job lifecycle: leases,
	// staleness-priority dispatch, straggler re-issue and the fallback
	// worker pool.
	sched *sched.Scheduler

	// views publishes the epoch-pinned copy-on-write table snapshots job
	// assembly reads from (nil when cfg.DisableTableSnapshots).
	views *viewState

	// Candidate-set size accounting (Figure 5): sum and count of candidate
	// sets issued since the last ResetCandidateStats call.
	candSum   atomic.Int64
	candCount atomic.Int64
}

// rngShard is one lock-sharded sampling RNG, padded to a full 64-byte
// cache line (8-byte mutex + 8-byte pointer + 48 pad) so neighbouring
// shards do not false-share under concurrent assembly.
type rngShard struct {
	mu  sync.Mutex
	rng *rand.Rand
	_   [48]byte
}

// rngSeedStride separates the per-shard RNG seed lanes (a large odd
// constant so sibling shards — and sibling partitions, which stride by
// cluster.seedStride — never share a stream).
const rngSeedStride = 0x9E3779B97F4A7C15 >> 3

// ErrStaleEpoch is returned when a widget result refers to an anonymiser
// epoch that is no longer resolvable.
var ErrStaleEpoch = errors.New("server: result from stale anonymiser epoch")

// ErrUnknownLease is returned when an acked lease is not outstanding:
// already completed, superseded, expired past its retry budget, or never
// issued.
var ErrUnknownLease = errors.New("server: unknown or expired lease")

// ErrUnknownUser is returned for operations on users never seen by Rate or
// Job.
var ErrUnknownUser = errors.New("server: unknown user")

// ErrMoved is returned when a request's user state has moved to a
// different partition in a completed topology change — the pseudonyms
// still resolve on the partition that minted them, but ownership has
// migrated, so applying the result there would write into a drained
// table. Mapped to HTTP 421 / CodeMoved; the typed client reacts by
// refreshing its topology and retrying once.
var ErrMoved = errors.New("server: user state moved to a different partition")

// NewEngine builds an engine from cfg. It panics on invalid configuration
// (programmer error), mirroring stdlib constructors like topk.New.
func NewEngine(cfg Config) *Engine {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	e := &Engine{
		cfg:      cfg,
		profiles: NewProfileTable(),
		knn:      NewKNNTable(),
		meter:    &wire.Meter{},
		recs:     newRecStore(cfg.RecCacheUsers),
	}
	for i := range e.rngs {
		e.rngs[i].rng = rand.New(rand.NewSource(cfg.Seed + int64(i)*rngSeedStride))
	}
	if !cfg.DisableAnonymizer {
		e.anon = core.NewAnonymizer(cfg.Seed + 1)
	}
	if !cfg.DisableProfileCache {
		e.cache = wire.NewProfileCache()
	}
	if !cfg.DisableTableSnapshots {
		e.views = newViewState()
	}
	e.sampler = &defaultSampler{engine: e}
	if cfg.SchedulerEnabled() {
		e.sched = sched.New(sched.Config{
			LeaseTTL:        cfg.LeaseTTL,
			MaxRetries:      cfg.LeaseRetries,
			FallbackWorkers: cfg.FallbackWorkers,
			Budget:          cfg.FallbackBudget,
		}, e.refreshLocally)
	}
	return e
}

// Scheduler exposes the engine's job scheduler (nil when the
// configuration runs the synchronous flow). A cluster uses it to
// partition the lease-ID space; tests and stats read its counters.
func (e *Engine) Scheduler() *sched.Scheduler { return e.sched }

// Topology implements TopologyProvider: a single engine is a fixed
// 1-partition topology that never migrates.
func (e *Engine) Topology() wire.Topology { return wire.Topology{Partitions: 1} }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Meter returns the engine's bandwidth meter.
func (e *Engine) Meter() *wire.Meter { return e.meter }

// Profiles exposes the profile table (read-mostly; used by metrics).
func (e *Engine) Profiles() *ProfileTable { return e.profiles }

// KNN exposes the KNN table (used by metrics and the sampler).
func (e *Engine) KNN() *KNNTable { return e.knn }

// SetSampler replaces the candidate-set strategy (Table 1's Sampler
// interface). Must be called before serving traffic.
func (e *Engine) SetSampler(s Sampler) {
	if s == nil {
		panic("server: nil sampler")
	}
	e.sampler = s
}

// ProfileResolver supplies a profile for a user the engine's own table
// does not know. It reports ok=false when it cannot help either, in which
// case the engine falls back to an empty profile (the single-engine
// behaviour).
type ProfileResolver func(core.UserID) (core.Profile, bool)

// SetProfileResolver installs a fallback source for candidate profiles of
// users that are not in the local profile table. This is the hook a
// multi-partition deployment (internal/cluster) uses to let candidate
// sets reference users owned by sibling partitions: the IDs flow through
// the sampler and the KNN table as usual, and their profile bytes are
// fetched from the owning partition at job-assembly time. Must be called
// before serving traffic.
func (e *Engine) SetProfileResolver(fn ProfileResolver) { e.resolveProfile = fn }

// RotateAnonymizer advances the anonymous mapping to a fresh epoch
// (Section 3.1: identifiers are periodically shuffled). The HTTP server
// calls this on a timer; the replay harness on virtual-time boundaries.
func (e *Engine) RotateAnonymizer() {
	if e.anon != nil {
		e.anon.Advance()
	}
}

// Rate records that user u rated an item. This is the profile-update step
// the orchestrator performs when a user accesses the site (Arrow 1 of
// Figure 1).
func (e *Engine) Rate(ctx context.Context, u core.UserID, item core.ItemID, liked bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e.profiles.Update(u, func(p core.Profile) core.Profile {
		return p.WithRating(item, liked)
	})
	if e.sched != nil {
		// The rating invalidates u's KNN row: enter the staleness queue
		// so a worker (or the fallback pool) refreshes it even if u's
		// browser never asks.
		e.sched.MarkStale(u)
	}
	return nil
}

// RateBatch records many opinions in one call, checking the context
// between updates so a cancelled ingestion stops promptly.
func (e *Engine) RateBatch(ctx context.Context, ratings []core.Rating) error {
	for _, r := range ratings {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.profiles.Update(r.User, func(p core.Profile) core.Profile {
			return p.WithRating(r.Item, r.Liked)
		})
		if e.sched != nil {
			e.sched.MarkStale(r.User)
		}
	}
	return nil
}

// Neighbors returns u's current KNN approximation.
func (e *Engine) Neighbors(ctx context.Context, u core.UserID) ([]core.UserID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.knn.Get(u), nil
}

// Recommendations returns the most recent recommendations applied for u
// (nil when none are retained). n <= 0 returns all retained items.
func (e *Engine) Recommendations(ctx context.Context, u core.UserID, n int) ([]core.ItemID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recs := e.recs.Get(u)
	if n > 0 && len(recs) > n {
		recs = recs[:n]
	}
	return recs, nil
}

// Close implements Service: it stops the scheduler's sweeper and
// fallback pool (rotation timers live in the HTTP layer). Safe to call
// multiple times.
func (e *Engine) Close() error {
	if e.sched != nil {
		e.sched.Close()
	}
	return nil
}

// KnownUser reports whether u has been registered.
func (e *Engine) KnownUser(u core.UserID) bool { return e.profiles.Known(u) }

// RegisterUser registers u with an empty profile (idempotent), the hook
// the HTTP layer uses when minting cookie identities.
func (e *Engine) RegisterUser(u core.UserID) {
	if !e.profiles.Known(u) {
		e.profiles.Put(core.NewProfile(u))
	}
}

// Stats reports the operational counters served by /stats. With the
// scheduler enabled, its lifecycle counters ride along under sched_*.
func (e *Engine) Stats() map[string]any {
	m := map[string]any{
		"json_bytes":   e.meter.JSONBytes(),
		"gzip_bytes":   e.meter.GzipBytes(),
		"result_bytes": e.meter.ResultBytes(),
		"messages":     e.meter.Messages(),
		"users":        int64(e.profiles.Len()),
		"knn_entries":  int64(e.knn.Len()),
	}
	if e.sched != nil {
		AddSchedStats(m, e.sched.Stats())
	}
	return m
}

// AddSchedStats merges scheduler counters into a stats map (shared with
// the cluster front-end, which aggregates over partitions first).
func AddSchedStats(m map[string]any, s sched.Stats) {
	m["sched_issued"] = s.Issued
	m["sched_dispatched"] = s.Dispatched
	m["sched_acked"] = s.Acked
	m["sched_abandoned"] = s.Abandoned
	m["sched_expired"] = s.Expired
	m["sched_reissued"] = s.Reissued
	m["sched_fallback_runs"] = s.FallbackRuns
	m["sched_fallback_errors"] = s.FallbackErrors
	m["sched_pending"] = int64(s.Pending)
	m["sched_leased"] = int64(s.Leased)
	m["sched_fallback_queued"] = int64(s.FallbackQueued)
	m["sched_unrefreshed"] = int64(s.Unrefreshed)
}

// Job assembles the personalization job for u: profile update has already
// happened via Rate; this runs the Sampler and packages the candidate
// profiles (Arrow 2 of Figure 1). With the scheduler enabled the job is
// stamped with a fresh lease (superseding any outstanding one for u).
func (e *Engine) Job(ctx context.Context, u core.UserID) (*wire.Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Lease BEFORE snapshotting the profile: a rating that lands after
	// the snapshot then finds u leased and sets dirty-again, so its
	// refresh is re-queued when this job completes instead of being
	// silently absorbed. (NextJob gets this ordering from sched.Next.)
	var l sched.Lease
	if e.sched != nil {
		l = e.sched.Acquire(u)
	}
	job := e.assembleJob(u)
	if e.sched != nil {
		stampLease(job, l)
	}
	return job, nil
}

// assembleScratch is the pooled per-assembly working set: candidate IDs,
// dedup state, random-draw buffer, fragment list and a re-seedable RNG.
// Everything is reclaimed in one releaseScratch call at the end of the
// assembly, so steady-state job assembly allocates none of it.
type assembleScratch struct {
	cands   []core.UserID
	seen    map[core.UserID]struct{}
	randBuf []core.UserID
	frags   [][]byte
	fragGz  [][]byte
	src     rand.Source
	rng     *rand.Rand
	// Refresh-path working set (refreshLocally): candidate profiles, the
	// selected neighborhood, Algorithm 2's popularity tally, a rec buffer
	// and a re-armable top-k collector. Together with the Into variants of
	// the core kernels these make a steady-state refresh allocate only the
	// two table rows it retains.
	profs  []core.Profile
	hood   []core.Neighbor
	pop    map[core.ItemID]int
	recbuf []core.ItemID
	col    *topk.Collector
}

var scratchPool = sync.Pool{New: func() any {
	src := rand.NewSource(1)
	return &assembleScratch{
		seen: make(map[core.UserID]struct{}, 64),
		src:  src,
		rng:  rand.New(src),
		pop:  make(map[core.ItemID]int, 64),
		col:  topk.New(8),
	}
}}

func getScratch() *assembleScratch { return scratchPool.Get().(*assembleScratch) }

func releaseScratch(sc *assembleScratch) {
	sc.cands = sc.cands[:0]
	sc.randBuf = sc.randBuf[:0]
	for i := range sc.frags {
		sc.frags[i] = nil
	}
	sc.frags = sc.frags[:0]
	for i := range sc.fragGz {
		sc.fragGz[i] = nil
	}
	sc.fragGz = sc.fragGz[:0]
	// Zero the profile slots so a pooled scratch does not pin arbitrary
	// profile snapshots (and their packed forms) in memory between uses.
	for i := range sc.profs {
		sc.profs[i] = core.Profile{}
	}
	sc.profs = sc.profs[:0]
	sc.hood = sc.hood[:0]
	sc.recbuf = sc.recbuf[:0]
	scratchPool.Put(sc)
}

// seededRng re-seeds the scratch RNG and returns it — stream-identical to
// rand.New(rand.NewSource(seed)) without the per-call source allocation.
func (sc *assembleScratch) seededRng(seed int64) *rand.Rand {
	sc.src.Seed(seed)
	return sc.rng
}

// ViewSampler is the snapshot-aware extension of Sampler: SampleView
// assembles the candidate set against a pinned TableView, so every table
// lookup is lock-free. The engine probes for it with a type assertion and
// falls back to Sample for samplers that only implement the base
// interface (which then read the live, locked tables as before).
type ViewSampler interface {
	SampleView(v *TableView, u core.UserID, k int) []core.UserID
}

// sampleCandidates runs the configured sampler, preferring the pinned
// snapshot path. With the engine's own default sampler the candidate
// slice comes from sc and must not outlive the scratch release.
func (e *Engine) sampleCandidates(v *TableView, sc *assembleScratch, u core.UserID) []core.UserID {
	if v != nil {
		if ds, ok := e.sampler.(*defaultSampler); ok && sc != nil {
			return ds.sampleViewInto(v, sc, u, e.cfg.K)
		}
		if vs, ok := e.sampler.(ViewSampler); ok {
			return vs.SampleView(v, u, e.cfg.K)
		}
	}
	return e.sampler.Sample(u, e.cfg.K)
}

// assembleJob builds the unleased job message for u — the synchronous
// core shared by the user-driven pull (Job), the worker dispatch
// (NextJob) and their payload variants.
func (e *Engine) assembleJob(u core.UserID) *wire.Job {
	if !e.profiles.Known(u) {
		// First contact: register the user with an empty profile so she
		// can appear in other users' random samples.
		e.profiles.Put(core.NewProfile(u))
	}
	p := e.profiles.Get(u)
	tv := e.pinView()
	sc := getScratch()
	defer releaseScratch(sc)
	candidates := e.sampleCandidates(tv, sc, u)
	e.recordCandidates(len(candidates))

	// One pinned view per job: every pseudonym in the message belongs to
	// the epoch the job is stamped with, even if RotateAnonymizer runs
	// concurrently.
	view := e.anonView()
	job := &wire.Job{
		UID:        uint32(view.AliasUser(u)),
		Epoch:      view.Epoch(),
		K:          e.cfg.K,
		R:          e.cfg.R,
		Candidates: make([]wire.ProfileMsg, 0, len(candidates)),
	}
	// All aliased item lists share one sized arena: two allocations per
	// candidate become one per job. The arena escapes with the job, so
	// no pooling — sizing is what matters here.
	profs := slices.Grow(sc.profs[:0], len(candidates))
	total := len(p.Liked()) + len(p.Disliked())
	for _, c := range candidates {
		cp := e.candidateProfileView(tv, c)
		profs = append(profs, cp)
		total += len(cp.Liked()) + len(cp.Disliked())
	}
	sc.profs = profs
	arena := make([]uint32, 0, total)
	job.Profile, arena = wire.ProfileToMsgArena(p, view, arena)
	for _, cp := range profs {
		var msg wire.ProfileMsg
		msg, arena = wire.ProfileToMsgArena(cp, view, arena)
		job.Candidates = append(job.Candidates, msg)
	}
	return job
}

// stampLease writes the scheduler's lease metadata onto an assembled job.
func stampLease(job *wire.Job, l sched.Lease) {
	job.Lease = l.ID
	job.LeaseDeadlineMS = l.Deadline.UnixMilli()
	job.Attempt = l.Attempt
}

// NextJob implements the pull-based worker dispatch: it blocks until a
// stale user is available (stalest first) or ctx is done, then assembles
// and leases that user's job. It returns (nil, nil) when the scheduler
// is disabled or no work arrived before ctx expired — the transport
// layer answers 204 No Content.
func (e *Engine) NextJob(ctx context.Context) (*wire.Job, error) {
	if e.sched == nil {
		return nil, nil
	}
	l, ok := e.sched.Next(ctx)
	if !ok {
		return nil, nil
	}
	job := e.assembleJob(l.User)
	stampLease(job, l)
	return job, nil
}

// TryNextJob is the non-blocking form of NextJob (the cluster front-end
// polls partitions through it).
func (e *Engine) TryNextJob() (*wire.Job, error) {
	if e.sched == nil {
		return nil, nil
	}
	l, ok := e.sched.TryNext()
	if !ok {
		return nil, nil
	}
	job := e.assembleJob(l.User)
	stampLease(job, l)
	return job, nil
}

// Ack resolves a lease without a result: done=true completes it,
// done=false abandons it for immediate re-issue. ErrUnknownLease is
// returned when the lease is not outstanding (or the scheduler is
// disabled). Like the rest of the paper's protocol the endpoint is
// unauthenticated, so a forged done-ack can at worst delay one user's
// refresh until their next rating; results (the path that writes KNN
// rows) verify the lease-user binding in ApplyResult.
func (e *Engine) Ack(ctx context.Context, lease uint64, done bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.sched == nil || !e.sched.Ack(lease, done) {
		return fmt.Errorf("%w: %d", ErrUnknownLease, lease)
	}
	return nil
}

// CountWorkerJob implements WorkerJobMeter: worker-dispatched jobs are
// serialized by the transport layer, which reports the byte counts here
// so the bandwidth meters cover both dispatch paths.
func (e *Engine) CountWorkerJob(_ *wire.Job, jsonBytes, gzBytes int) {
	e.meter.CountJob(jsonBytes, gzBytes)
}

// refreshLocally is the fallback executor: one full personalization job
// run entirely server-side — sample candidates, select the K nearest
// with the same core KNN + top-k kernels the widget uses, fold the row
// in, retain recommendations. No anonymisation round-trip is needed
// because nothing leaves the server.
func (e *Engine) refreshLocally(ctx context.Context, u core.UserID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p := e.profiles.Get(u)
	tv := e.pinView()
	sc := getScratch()
	defer releaseScratch(sc)
	candidates := e.sampleCandidates(tv, sc, u)
	e.recordCandidates(len(candidates))
	profs := slices.Grow(sc.profs[:0], len(candidates))
	for _, c := range candidates {
		profs = append(profs, e.candidateProfileView(tv, c))
	}
	sc.profs = profs
	metric := e.cfg.FallbackMetric
	if metric == nil {
		metric = core.Cosine{}
	}
	sc.hood = core.SelectKNNInto(p, profs, e.cfg.K, metric, sc.col, sc.hood)
	// The KNN table retains the row it is handed, so this copy (exact
	// size) and the recommendation row below are the only allocations a
	// steady-state refresh performs — everything else lives in sc.
	ids := make([]core.UserID, 0, len(sc.hood))
	for _, n := range sc.hood {
		if n.User != u {
			ids = append(ids, n.User)
		}
	}
	if !e.profiles.Known(u) {
		// u was migrated away (entombed) while this refresh was
		// executing; writing the row back would resurrect stale state on
		// a partition that no longer owns her. (A write can still slip
		// through between this check and the Put — the residual is one
		// stale KNN row with no profile, swept by the next migration.)
		return nil
	}
	e.knn.Put(u, ids)
	sc.recbuf = core.RecommendInto(p, profs, e.cfg.R, sc.col, sc.pop, sc.recbuf)
	if len(sc.recbuf) > 0 {
		recs := make([]core.ItemID, len(sc.recbuf))
		copy(recs, sc.recbuf)
		e.recs.Put(u, recs)
	}
	return nil
}

// anonView pins the anonymiser's current epoch for the duration of one job
// assembly (identity mapping when anonymisation is disabled).
func (e *Engine) anonView() core.Aliaser {
	if e.anon == nil {
		return core.IdentityAliaser{}
	}
	return e.anon.View()
}

// candidateProfile loads c's profile — from the local table, or through
// the profile resolver for users owned elsewhere — and applies the
// outbound transforms (truncation, then the privacy filter) in the order a
// deployment would.
func (e *Engine) candidateProfile(c core.UserID) core.Profile {
	return e.candidateProfileView(nil, c)
}

// candidateProfileView is candidateProfile reading through a pinned view
// when one is supplied: candidates the view knows resolve without any
// locking; view misses (users registered since the view was built, or
// users owned by sibling partitions) take the original locked/resolver
// path.
func (e *Engine) candidateProfileView(v *TableView, c core.UserID) core.Profile {
	var cp core.Profile
	var fromView bool
	if v != nil {
		cp, fromView = v.Profile(c)
	}
	if !fromView {
		if e.resolveProfile == nil || e.profiles.Known(c) {
			cp = e.profiles.Get(c)
		} else if fp, ok := e.resolveProfile(c); ok {
			cp = fp
		} else {
			cp = core.NewProfile(c)
		}
	}
	if e.cfg.MaxProfileItems > 0 && cp.Size() > e.cfg.MaxProfileItems {
		cp = cp.Truncate(e.cfg.MaxProfileItems)
	}
	if e.cfg.CandidateFilter != nil {
		cp = e.cfg.CandidateFilter(cp)
	}
	return cp
}

// JobPayload assembles u's personalization job and serializes it:
// raw JSON (assembled from cached fragments when the cache is enabled)
// plus the gzip payload that would cross the wire. Both sizes are metered.
// The returned slices are freshly allocated; the zero-allocation serving
// path is AppendJobPayload with pooled buffers.
func (e *Engine) JobPayload(u core.UserID) (jsonBody, gzBody []byte, err error) {
	return e.AppendJobPayload(context.Background(), u, nil, nil)
}

// AppendJobPayload is JobPayload appending into caller-owned buffers
// (which may be nil): jsonBody extends jsonDst, gzBody extends gzDst.
// With pooled, pre-grown buffers (wire.GetPayloadBufs) and the snapshot
// read path enabled, a steady-state call allocates approximately nothing:
// candidate assembly works out of a pooled scratch, candidate and own
// profile fragments come from the serialized-profile cache, and the gzip
// writer is pooled.
func (e *Engine) AppendJobPayload(_ context.Context, u core.UserID, jsonDst, gzDst []byte) (jsonBody, gzBody []byte, err error) {
	// The default configuration (profile cache on, no candidate filter,
	// no truncation) takes the spliced-gzip path: the payload is
	// assembled from per-profile deflate fragments cached alongside the
	// JSON fragments, so compression cost is a memcpy plus a CRC over
	// the body instead of re-deflating every byte (wire/gzipsplice.go).
	// Any other configuration falls back to whole-buffer gzip below.
	jsonBody, gzBody, spliced := e.appendJob(u, jsonDst, gzDst, true)
	if !spliced {
		gzBody, err = wire.AppendGzip(gzDst, jsonBody, e.cfg.GzipLevel)
		if err != nil {
			return nil, nil, fmt.Errorf("server: compress job for %v: %w", u, err)
		}
	}
	e.meter.CountJob(len(jsonBody), len(gzBody))
	return jsonBody, gzBody, nil
}

// AppendJobJSON is AppendJobPayload without the gzip leg, for
// transports that ship the raw JSON bytes (the framed plane): the
// payload is byte-identical to AppendJobPayload's jsonBody, and no
// compressed bytes are metered because none are produced.
func (e *Engine) AppendJobJSON(_ context.Context, u core.UserID, jsonDst []byte) ([]byte, error) {
	jsonBody := e.appendJobJSON(u, jsonDst)
	e.meter.CountJob(len(jsonBody), 0)
	return jsonBody, nil
}

// appendJobJSON assembles and serializes u's job (shared by the
// gzip-producing and JSON-only serving paths; metering is theirs).
func (e *Engine) appendJobJSON(u core.UserID, jsonDst []byte) (jsonBody []byte) {
	jsonBody, _, _ = e.appendJob(u, jsonDst, nil, false)
	return jsonBody
}

// appendJob assembles and serializes u's job, optionally building the
// gzip payload in the same pass by splicing cached deflate fragments
// (wantGz). spliced reports whether gzBody was produced; when false the
// caller compresses jsonBody itself. Splicing engages only on the fully
// cached path (cache enabled, no candidate filter, no truncation), where
// every profile fragment's bytes appear verbatim in the JSON body.
func (e *Engine) appendJob(u core.UserID, jsonDst, gzDst []byte, wantGz bool) (jsonBody, gzBody []byte, spliced bool) {
	if !e.profiles.Known(u) {
		e.profiles.Put(core.NewProfile(u))
	}
	// As in Job: lease before the profile snapshot so a concurrent
	// rating is re-queued via dirty-again rather than absorbed.
	var lease sched.Lease
	if e.sched != nil {
		lease = e.sched.Acquire(u)
	}
	p := e.profiles.Get(u)
	tv := e.pinView()
	sc := getScratch()
	defer releaseScratch(sc)
	candidates := e.sampleCandidates(tv, sc, u)
	e.recordCandidates(len(candidates))

	// As in Job: one pinned view keeps the epoch stamp and every
	// pseudonym consistent under concurrent rotation.
	view := e.anonView()
	job := wire.Job{
		UID:   uint32(view.AliasUser(u)),
		Epoch: view.Epoch(),
		K:     e.cfg.K,
		R:     e.cfg.R,
		// Profile and Candidates are injected during encoding below.
	}
	if e.sched != nil {
		stampLease(&job, lease)
	}

	// With the cache enabled, candidate fragments come from the cache and
	// encoding is a concatenation of memoised byte slices. A candidate
	// filter forces the uncached path: filtered profiles may differ
	// between jobs, so memoising their encodings would be incorrect. The
	// requesting user's own fragment is cacheable too, but only while no
	// truncation is configured: Truncate bumps the profile version, so a
	// truncated candidate fragment and a full own fragment could otherwise
	// collide under one (user, version) key.
	useCache := e.cache != nil && e.cfg.CandidateFilter == nil
	useOwnCache := useCache && e.cfg.MaxProfileItems <= 0
	splice := wantGz && useOwnCache
	var msgs []wire.ProfileMsg
	if !useCache {
		// Non-nil even when empty, so the uncached encoder emits [] and
		// not null — the same bytes the cached splice produces.
		msgs = make([]wire.ProfileMsg, 0, len(candidates))
	}
	for _, c := range candidates {
		cp := e.candidateProfileView(tv, c)
		switch {
		case splice:
			fj, fgz, err := e.cache.FragmentGz(cp, view, e.cfg.GzipLevel)
			if err != nil {
				// Deflate failure (cannot happen writing to memory, but
				// contractually possible): abandon splicing for this
				// payload and let the caller whole-buffer compress.
				splice = false
				sc.frags = append(sc.frags, e.cache.Fragment(cp, view))
				continue
			}
			sc.frags = append(sc.frags, fj)
			sc.fragGz = append(sc.fragGz, fgz)
		case useCache:
			sc.frags = append(sc.frags, e.cache.Fragment(cp, view))
		default:
			msgs = append(msgs, wire.ProfileToMsg(cp, view))
		}
	}
	if splice && len(sc.fragGz) != len(sc.frags) {
		splice = false
	}

	if useCache {
		var ownFrag, ownGz []byte
		if useOwnCache {
			if splice {
				var err error
				ownFrag, ownGz, err = e.cache.FragmentGz(p, view, e.cfg.GzipLevel)
				if err != nil {
					splice = false
				}
			}
			if ownFrag == nil {
				ownFrag = e.cache.Fragment(p, view)
			}
		} else {
			job.Profile = wire.ProfileToMsg(p, view)
		}
		var sp *wire.GzSplicer
		if splice {
			s := wire.BeginGzSplice(gzDst, e.cfg.GzipLevel, len(jsonDst))
			sp = &s
		}
		jsonBody = e.assembleWithCache(jsonDst, &job, ownFrag, sc.frags, sp, ownGz, sc.fragGz)
		if splice {
			gzBody = sp.Finish(jsonBody)
			// Splicing trades compression ratio for CPU: stored-block
			// glue and per-fragment framing can outweigh the deflate win
			// when profiles are tiny. Ship the spliced form only when it
			// actually compressed; otherwise discard it and let the
			// caller whole-buffer gzip the (small, cheap) body.
			if len(gzBody)-len(gzDst) < len(jsonBody)-len(jsonDst) {
				return jsonBody, gzBody, true
			}
		}
	} else {
		job.Profile = wire.ProfileToMsg(p, view)
		job.Candidates = msgs
		if jsonDst == nil {
			jsonDst = make([]byte, 0, 96+len(job.Profile.Liked)*11)
		}
		jsonBody = wire.AppendJob(jsonDst, &job, nil)
	}
	return jsonBody, nil, false
}

// assembleWithCache builds the job JSON splicing pre-encoded profile
// fragments (ownFrag may be nil, in which case job.Profile is encoded
// directly). Byte-for-byte identical to wire.AppendJob output. A non-nil
// sp additionally assembles the gzip payload in lockstep: each fragment's
// cached deflate form (ownGz, fragGz — parallel to ownFrag, frags) is
// spliced in as its JSON lands in dst.
func (e *Engine) assembleWithCache(dst []byte, job *wire.Job, ownFrag []byte, frags [][]byte, sp *wire.GzSplicer, ownGz []byte, fragGz [][]byte) []byte {
	if dst == nil {
		size := 96 + len(ownFrag) + len(job.Profile.Liked)*11
		for _, f := range frags {
			size += len(f) + 1
		}
		dst = make([]byte, 0, size)
	}
	dst = append(dst, `{"uid":`...)
	dst = appendUint(dst, uint64(job.UID))
	dst = append(dst, `,"epoch":`...)
	dst = appendUint(dst, job.Epoch)
	dst = append(dst, `,"k":`...)
	dst = appendUint(dst, uint64(job.K))
	dst = append(dst, `,"r":`...)
	dst = appendUint(dst, uint64(job.R))
	dst = wire.AppendLeaseMeta(dst, job)
	dst = append(dst, `,"profile":`...)
	if ownFrag != nil {
		dst = append(dst, ownFrag...)
		if sp != nil {
			sp.Splice(dst, len(ownFrag), ownGz)
		}
	} else {
		dst = wire.AppendProfileMsg(dst, job.Profile)
	}
	dst = append(dst, `,"candidates":[`...)
	for i, f := range frags {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, f...)
		if sp != nil {
			sp.Splice(dst, len(f), fragGz[i])
		}
	}
	return append(dst, `]}`...)
}

func appendUint(dst []byte, x uint64) []byte {
	if x == 0 {
		return append(dst, '0')
	}
	var buf [20]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return append(dst, buf[i:]...)
}

// ApplyResult folds a widget's KNN selection back into the KNN table
// (Arrow 3 of Figure 1), translating pseudonyms minted under the result's
// epoch. Recommendations are translated, retained for Recommendations,
// and returned so the caller (HTTP layer or replay harness) can expose
// them.
func (e *Engine) ApplyResult(ctx context.Context, res *wire.Result) ([]core.ItemID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rr, err := e.ResolveResult(res)
	if err != nil {
		return nil, err
	}
	if !e.profiles.Known(rr.User) {
		return nil, fmt.Errorf("%w: %v", ErrUnknownUser, rr.User)
	}
	return e.ApplyResolved(ctx, rr)
}

// ResolvedResult is a widget result translated back into real
// identifiers by the anonymiser that minted its pseudonyms. Resolution
// and application are separate steps so a cluster mid-migration can
// resolve a result on the partition that issued the job and fold it
// into the partition that owns the user now (double-routing).
type ResolvedResult struct {
	// User is the real user the result refreshes.
	User core.UserID
	// Lease echoes the result's lease ID (0 for legacy results).
	Lease uint64
	// Neighbors is the protocol-enforced neighbor list: duplicates
	// dropped, self dropped, at most K entries.
	Neighbors []core.UserID
	// Recs is the de-anonymised recommendation list, capped at R.
	Recs []core.ItemID
	// wireNeighbors/wireRecs are the raw wire counts, for the bandwidth
	// meter of whichever engine applies the result.
	wireNeighbors, wireRecs int
}

// ResolveResult translates res's pseudonyms against this engine's
// anonymiser and enforces the protocol's shape. The client is untrusted
// (Section 6: "HyRec limits the impact of untrusted and malicious
// nodes"): it can only corrupt its own row, but that row feeds other
// users' candidate sets, so duplicates and self-references are dropped
// and the lists are capped at K neighbors and R recommendations. It does
// not touch the tables; pair with ApplyResolved.
func (e *Engine) ResolveResult(res *wire.Result) (*ResolvedResult, error) {
	u, ok := e.ResolveUser(core.UserID(res.UID), res.Epoch)
	if !ok {
		return nil, fmt.Errorf("%w: uid alias %d epoch %d", ErrStaleEpoch, res.UID, res.Epoch)
	}
	rr := &ResolvedResult{
		User:          u,
		Lease:         res.Lease,
		Neighbors:     make([]core.UserID, 0, min(len(res.Neighbors), e.cfg.K)),
		wireNeighbors: len(res.Neighbors),
		wireRecs:      len(res.Recommendations),
	}
	seen := make(map[core.UserID]struct{}, e.cfg.K)
	for _, alias := range res.Neighbors {
		if len(rr.Neighbors) >= e.cfg.K {
			break
		}
		v, ok := e.ResolveUser(core.UserID(alias), res.Epoch)
		if !ok {
			return nil, fmt.Errorf("%w: neighbor alias %d epoch %d", ErrStaleEpoch, alias, res.Epoch)
		}
		if v == u {
			continue
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		rr.Neighbors = append(rr.Neighbors, v)
	}
	recAliases := res.Recommendations
	if len(recAliases) > e.cfg.R {
		recAliases = recAliases[:e.cfg.R]
	}
	rr.Recs = make([]core.ItemID, 0, len(recAliases))
	for _, alias := range recAliases {
		item, ok := e.resolveItem(core.ItemID(alias), res.Epoch)
		if !ok {
			return nil, fmt.Errorf("%w: item alias %d epoch %d", ErrStaleEpoch, alias, res.Epoch)
		}
		rr.Recs = append(rr.Recs, item)
	}
	return rr, nil
}

// ApplyResolved folds an already-resolved result into this engine's
// tables: the KNN row is replaced, recommendations are retained, the
// bandwidth meter is credited, and the scheduler's refresh cycle for the
// user is retired.
func (e *Engine) ApplyResolved(ctx context.Context, rr *ResolvedResult) ([]core.ItemID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.knn.Put(rr.User, rr.Neighbors)
	if len(rr.Recs) > 0 {
		e.recs.Put(rr.User, rr.Recs)
	}
	e.meter.CountResult(rr.wireNeighbors*10 + rr.wireRecs*10 + 32)
	if e.sched != nil {
		// The fold-in is the implicit ack — with the lease's user binding
		// verified, so a result quoting some other user's lease ID cannot
		// retire that user's cycle. A result whose own lease has been
		// superseded or already expired is still a valid refresh of the
		// row, so the cycle completes either way.
		if rr.Lease == 0 || !e.sched.AckUser(rr.Lease, rr.User, true) {
			e.sched.Refreshed(rr.User)
		}
	}
	return rr.Recs, nil
}

// ResolveUser inverts a user pseudonym minted by this engine's anonymiser
// in the given epoch (identity when anonymisation is disabled). It reports
// ok=false when the epoch is too stale to translate. A cluster front-end
// uses this to route a widget result back to the partition whose
// anonymiser minted its aliases.
func (e *Engine) ResolveUser(alias core.UserID, epoch uint64) (core.UserID, bool) {
	if e.anon == nil {
		return alias, true
	}
	return e.anon.ResolveUser(alias, epoch)
}

func (e *Engine) resolveItem(alias core.ItemID, epoch uint64) (core.ItemID, bool) {
	if e.anon == nil {
		return alias, true
	}
	return e.anon.ResolveItem(alias, epoch)
}

func (e *Engine) recordCandidates(n int) {
	e.candSum.Add(int64(n))
	e.candCount.Add(1)
}

// CandidateSetStats returns the mean candidate-set size and the number of
// jobs issued since the last reset — the quantity Figure 5 tracks over
// time.
func (e *Engine) CandidateSetStats() (mean float64, jobs int64) {
	jobs = e.candCount.Load()
	if jobs == 0 {
		return 0, 0
	}
	return float64(e.candSum.Load()) / float64(jobs), jobs
}

// ResetCandidateStats clears the candidate-set accounting window.
func (e *Engine) ResetCandidateStats() {
	e.candSum.Store(0)
	e.candCount.Store(0)
}

// RandomUsers draws up to n distinct users uniformly from the engine's
// roster under its seeded RNG, excluding `exclude`. Samplers use it for
// the k-random-users component of the §3.1 rule; a cluster peer sampler
// uses it to draw exchange candidates from sibling partitions. The RNG
// is sharded by `exclude` (the requesting user), so concurrent job
// assemblies for different users draw without contending on one lock.
func (e *Engine) RandomUsers(n int, exclude core.UserID) []core.UserID {
	s := &e.rngs[shardOf(exclude)]
	if v := e.pinView(); v != nil {
		// Draw from the pinned roster: same stream and dedup semantics
		// as the locked path, without holding rosterMu per draw.
		s.mu.Lock()
		defer s.mu.Unlock()
		out := v.randomUsers(make([]core.UserID, 0, n), s.rng, n, exclude)
		if len(out) == 0 {
			return nil
		}
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return e.profiles.RandomUsers(s.rng, n, exclude)
}

// NewDefaultSampler returns the §3.1 candidate rule (one-hop ∪ two-hop ∪
// k random users) bound to e — the sampler an engine starts with. Exposed
// so wrappers (e.g. the cluster's cross-partition exchange sampler) can
// decorate the default behaviour instead of reimplementing it.
func NewDefaultSampler(e *Engine) Sampler { return &defaultSampler{engine: e} }

// defaultSampler implements Section 3.1's rule via core.BuildCandidateSet.
type defaultSampler struct {
	engine *Engine
}

var (
	_ Sampler     = (*defaultSampler)(nil)
	_ ViewSampler = (*defaultSampler)(nil)
)

func (s *defaultSampler) Sample(u core.UserID, k int) []core.UserID {
	e := s.engine
	lookup := func(v core.UserID) []core.UserID { return e.knn.Get(v) }
	random := func(_ *rand.Rand, n int, exclude core.UserID) []core.UserID {
		return e.RandomUsers(n, exclude)
	}
	// The rng passed through is unused by `random` (the engine's own
	// sharded rng is); pass a throwaway source — seeded from u's shard so
	// concurrent samples for different users don't serialize — to satisfy
	// the contract.
	return core.BuildCandidateSet(u, k, lookup, random, rand.New(rand.NewSource(e.shardSeed(u))))
}

// SampleView implements ViewSampler with a one-shot scratch; callers that
// hold an assembly scratch (the engine itself) use sampleViewInto and
// skip the copy.
func (s *defaultSampler) SampleView(v *TableView, u core.UserID, k int) []core.UserID {
	sc := getScratch()
	defer releaseScratch(sc)
	got := s.sampleViewInto(v, sc, u, k)
	out := make([]core.UserID, len(got))
	copy(out, got)
	return out
}

// sampleViewInto runs the §3.1 rule entirely against the pinned view,
// building into sc (the result aliases sc.cands). The draw sequence is
// identical to Sample over the same table state: same shard-seeded rng
// stream, same one-hop/two-hop/random order, same dedup.
func (s *defaultSampler) sampleViewInto(v *TableView, sc *assembleScratch, u core.UserID, k int) []core.UserID {
	e := s.engine
	random := func(rng *rand.Rand, n int, exclude core.UserID) []core.UserID {
		// The locked path routes through Engine.RandomUsers, which draws
		// from the engine's exclude-sharded rng; mirror that exactly.
		sh := &e.rngs[shardOf(exclude)]
		sh.mu.Lock()
		sc.randBuf = v.randomUsers(sc.randBuf[:0], sh.rng, n, exclude)
		sh.mu.Unlock()
		return sc.randBuf
	}
	sc.cands = core.BuildCandidateSetInto(sc.cands[:0], sc.seen, u, k,
		v.KNN, random, sc.seededRng(e.shardSeed(u)))
	return sc.cands
}

// shardSeed draws the throwaway-rng seed for u's assembly from u's rng
// shard — one draw per job, identical on the locked and snapshot paths.
func (e *Engine) shardSeed(u core.UserID) int64 {
	sh := &e.rngs[shardOf(u)]
	sh.mu.Lock()
	seed := sh.rng.Int63()
	sh.mu.Unlock()
	return seed
}
