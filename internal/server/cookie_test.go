package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"hyrec/internal/core"
)

// First contact without identification: /online mints an ID, sets the
// cookie, and serves a job; follow-up requests with the cookie hit the
// same user.
func TestCookieIdentificationFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true
	e := NewEngine(cfg)
	// Pre-register a small community so jobs have candidates.
	for u := core.UserID(1); u <= 5; u++ {
		e.Rate(tctx, u, 1, true)
	}
	s := NewHTTPServer(e, 0)
	h := s.Handler()

	// 1. Anonymous first visit mints a cookie.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/online", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("anonymous /online: %d %s", rec.Code, rec.Body.String())
	}
	cookies := rec.Result().Cookies()
	var uidCk *http.Cookie
	for _, c := range cookies {
		if c.Name == UIDCookieName {
			uidCk = c
		}
	}
	if uidCk == nil {
		t.Fatalf("no %s cookie set; got %v", UIDCookieName, cookies)
	}
	minted64, err := strconv.ParseUint(uidCk.Value, 10, 32)
	if err != nil {
		t.Fatalf("cookie value %q: %v", uidCk.Value, err)
	}
	minted := core.UserID(minted64)
	if !e.Profiles().Known(minted) {
		t.Fatal("minted user not registered")
	}

	// 2. Rating with the cookie lands on the minted user's profile.
	req := httptest.NewRequest(http.MethodPost, "/rate?item=42&liked=true", nil)
	req.AddCookie(uidCk)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("cookie /rate: %d %s", rec.Code, rec.Body.String())
	}
	if !e.Profiles().Get(minted).LikedContains(42) {
		t.Fatal("cookie rating did not reach the minted user's profile")
	}

	// 3. A second anonymous visit mints a different user.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/online", nil))
	var second *http.Cookie
	for _, c := range rec.Result().Cookies() {
		if c.Name == UIDCookieName {
			second = c
		}
	}
	if second == nil || second.Value == uidCk.Value {
		t.Fatalf("second anonymous visit reused identity: %v", second)
	}
}

func TestCookieRepeatVisitDoesNotRemint(t *testing.T) {
	e := NewEngine(DefaultConfig())
	s := NewHTTPServer(e, 0)
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/online", nil))
	var ck *http.Cookie
	for _, c := range rec.Result().Cookies() {
		if c.Name == UIDCookieName {
			ck = c
		}
	}
	if ck == nil {
		t.Fatal("no cookie minted")
	}

	req := httptest.NewRequest(http.MethodGet, "/online", nil)
	req.AddCookie(ck)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat visit: %d", rec.Code)
	}
	for _, c := range rec.Result().Cookies() {
		if c.Name == UIDCookieName {
			t.Fatalf("repeat visit re-minted the cookie: %v", c)
		}
	}
}

func TestExplicitUIDBeatsCookie(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true
	e := NewEngine(cfg)
	s := NewHTTPServer(e, 0)
	h := s.Handler()

	req := httptest.NewRequest(http.MethodPost, "/rate?uid=77&item=9", nil)
	req.AddCookie(&http.Cookie{Name: UIDCookieName, Value: "88"})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("/rate: %d", rec.Code)
	}
	if !e.Profiles().Get(77).LikedContains(9) {
		t.Fatal("explicit uid ignored")
	}
	if e.Profiles().Known(88) {
		t.Fatal("cookie user updated despite explicit uid")
	}
}

func TestMalformedCookieRejected(t *testing.T) {
	e := NewEngine(DefaultConfig())
	s := NewHTTPServer(e, 0)
	h := s.Handler()

	req := httptest.NewRequest(http.MethodPost, "/rate?item=1", nil)
	req.AddCookie(&http.Cookie{Name: UIDCookieName, Value: "not-a-number"})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed cookie: %d, want 400", rec.Code)
	}
}

func TestRateWithoutIdentityRejected(t *testing.T) {
	e := NewEngine(DefaultConfig())
	s := NewHTTPServer(e, 0)
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/rate?item=1", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unidentified /rate: %d, want 400", rec.Code)
	}
}

func TestMintUserUnique(t *testing.T) {
	e := NewEngine(DefaultConfig())
	s := NewHTTPServer(e, 0)
	seen := make(map[core.UserID]bool)
	for i := 0; i < 1000; i++ {
		id, err := s.mintUser()
		if err != nil {
			t.Fatal(err)
		}
		if id == 0 {
			t.Fatal("minted reserved ID 0")
		}
		if seen[id] {
			t.Fatalf("duplicate minted ID %v", id)
		}
		seen[id] = true
	}
}
