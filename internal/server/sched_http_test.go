package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

func newSchedTestServer(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e := NewEngine(schedConfig())
	srv := NewServer(e, 0)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); e.Close() })
	return e, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestV1WorkerDispatchAndResult drives the whole worker wire protocol:
// rate → GET /v1/job?worker=1 → POST /v1/result → queue drained (204).
func TestV1WorkerDispatchAndResult(t *testing.T) {
	e, ts := newSchedTestServer(t)
	seedRatings(t, e, 4)

	w := widget.New()
	drained := false
	for i := 0; i < 20 && !drained; i++ {
		resp, err := http.Get(ts.URL + "/v1/job?worker=1")
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusNoContent:
			resp.Body.Close()
			drained = true
		case http.StatusOK:
			var job wire.Job
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if job.Lease == 0 {
				t.Fatalf("worker job without lease: %+v", job)
			}
			res, _ := w.Execute(&job)
			rr := postJSON(t, ts.URL+"/v1/result", res)
			if rr.StatusCode != http.StatusOK {
				t.Fatalf("result status %d", rr.StatusCode)
			}
			rr.Body.Close()
		default:
			t.Fatalf("worker job status %d", resp.StatusCode)
		}
	}
	if !drained {
		t.Fatal("queue never drained")
	}
	if !e.Scheduler().Quiet() {
		t.Fatalf("scheduler not quiet: %+v", e.Scheduler().Stats())
	}
}

func TestV1WorkerLongPollTimesOut(t *testing.T) {
	_, ts := newSchedTestServer(t)
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/job?worker=1&wait=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idle long-poll status %d, want 204", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("long-poll returned after %v, should have waited ~50ms", elapsed)
	}
}

func TestV1WorkerOnSynchronousService(t *testing.T) {
	// A service without the scheduler answers 204 (no work, ever) rather
	// than erroring — workers pointed at a sync deployment idle politely.
	e := NewEngine(testConfig())
	srv := NewServer(e, 0)
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	resp, err := http.Get(ts.URL + "/v1/job?worker=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("sync-service worker poll status %d, want 204", resp.StatusCode)
	}
}

func TestV1AckEnvelopes(t *testing.T) {
	e, ts := newSchedTestServer(t)
	seedRatings(t, e, 2)
	job, err := e.TryNextJob()
	if err != nil || job == nil {
		t.Fatal("no job")
	}

	// Happy path.
	resp := postJSON(t, ts.URL+"/v1/ack", wire.AckRequest{Lease: job.Lease, Done: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ack status %d", resp.StatusCode)
	}
	var ack wire.AckResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil || ack.Status != "ok" {
		t.Fatalf("ack body %+v, %v", ack, err)
	}
	resp.Body.Close()

	// Unknown lease → 404 with the typed envelope.
	resp = postJSON(t, ts.URL+"/v1/ack", wire.AckRequest{Lease: job.Lease, Done: true})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double-ack status %d, want 404", resp.StatusCode)
	}
	var env wire.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Error.Code != wire.CodeUnknownLease {
		t.Fatalf("double-ack code %q, want %q", env.Error.Code, wire.CodeUnknownLease)
	}

	// Missing lease and wrong method.
	resp = postJSON(t, ts.URL+"/v1/ack", wire.AckRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ack status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	getResp, err := http.Get(ts.URL + "/v1/ack")
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/ack status %d, want 405", getResp.StatusCode)
	}
	getResp.Body.Close()
}

// TestV1UserJobStillMintsLease: the user-driven /v1/job path serves
// lease-stamped payloads when the scheduler runs.
func TestV1UserJobStillMintsLease(t *testing.T) {
	e, ts := newSchedTestServer(t)
	seedRatings(t, e, 2)
	resp, err := http.Get(fmt.Sprintf("%s/v1/job?uid=%d", ts.URL, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job wire.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.Lease == 0 || job.Attempt != 1 {
		t.Fatalf("user-path job missing lease: %+v", job)
	}
	if _, ok := e.ResolveUser(core.UserID(job.UID), job.Epoch); !ok {
		t.Fatal("job UID does not resolve")
	}
}
