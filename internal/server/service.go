package server

import (
	"context"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// Service is the single transport-agnostic front-end API of a HyRec
// deployment. Both the single-machine *Engine and the user-partitioned
// *cluster.Cluster implement it, as does the typed HTTP client
// (hyrec/client), so every downstream layer — the HTTP mux, trace
// replay, load generation, stress harnesses, examples — is written once
// against this interface instead of once per concrete front-end.
//
// All methods are safe for concurrent use. Contexts bound the work: an
// already-cancelled context fails fast, and network-backed
// implementations honour deadlines on every request.
type Service interface {
	// Rate records one binary opinion (Arrow 1 of Figure 1).
	Rate(ctx context.Context, u core.UserID, item core.ItemID, liked bool) error
	// RateBatch records many opinions in one call — the amortization
	// path for high-throughput ingestion (POST /v1/rate on the wire).
	RateBatch(ctx context.Context, ratings []core.Rating) error
	// Job assembles u's personalization job (Arrow 2 of Figure 1).
	Job(ctx context.Context, u core.UserID) (*wire.Job, error)
	// ApplyResult folds a widget's KNN selection back into the tables
	// (Arrow 3 of Figure 1) and returns the de-anonymised
	// recommendations it carried.
	ApplyResult(ctx context.Context, res *wire.Result) ([]core.ItemID, error)
	// Recommendations returns the most recent recommendations computed
	// for u (up to n; n <= 0 means all retained).
	Recommendations(ctx context.Context, u core.UserID, n int) ([]core.ItemID, error)
	// Neighbors returns u's current KNN approximation.
	Neighbors(ctx context.Context, u core.UserID) ([]core.UserID, error)
	// Close releases resources (flushes client batches, stops background
	// work). Safe to call multiple times.
	Close() error
}

// The capability interfaces below are optional fast paths and hooks the
// HTTP front-end probes for with type assertions. In-process services
// (Engine, Cluster) implement all of them; a remote client need not.

// Payloader serves pre-serialized job payloads (JSON + gzip, metered),
// skipping the generic encode path.
type Payloader interface {
	JobPayload(u core.UserID) (jsonBody, gzBody []byte, err error)
}

// PayloadAppender is the pooled-buffer form of Payloader: the payloads
// are appended into caller-owned buffers (wire.GetPayloadBufs), so a
// steady-state serve allocates nothing. The returned slices alias the
// (possibly re-grown) inputs and are only valid until the caller recycles
// them.
type PayloadAppender interface {
	AppendJobPayload(ctx context.Context, u core.UserID, jsonDst, gzDst []byte) (jsonBody, gzBody []byte, err error)
}

// JSONJobAppender is the gzip-free sibling of PayloadAppender for
// transports that ship raw JSON bytes (the framed plane): same payload
// bytes, no compressed twin produced or metered.
type JSONJobAppender interface {
	AppendJobJSON(ctx context.Context, u core.UserID, jsonDst []byte) ([]byte, error)
}

// JobSource dispatches leased jobs to pull-based workers: NextJob blocks
// until a stale user is available (stalest first) or ctx is done, and
// returns (nil, nil) when no work arrived in time — the transport layer
// answers 204 No Content. Services running without the scheduler return
// (nil, nil) immediately.
type JobSource interface {
	NextJob(ctx context.Context) (*wire.Job, error)
}

// LeaseAcker resolves leases without a result: done=true completes the
// job, done=false abandons it for immediate re-issue. Implementations
// return ErrUnknownLease (possibly wrapped) for leases that are not
// outstanding.
type LeaseAcker interface {
	Ack(ctx context.Context, lease uint64, done bool) error
}

// WorkerJobMeter accounts the serialized size of a worker-dispatched
// job. The user-driven payload path meters inside JobPayload; the
// worker path serializes in the transport layer, which reports the
// bytes back through this hook so /stats bandwidth counters cover both
// (gzBytes is 0 when the response was not compressed).
type WorkerJobMeter interface {
	CountWorkerJob(job *wire.Job, jsonBytes, gzBytes int)
}

// UserDirectory registers and looks up users, letting the HTTP layer
// mint cookie identities on first contact.
type UserDirectory interface {
	KnownUser(u core.UserID) bool
	RegisterUser(u core.UserID)
}

// Rotator advances the anonymous mapping; the HTTP layer drives it on a
// timer (Section 3.1: identifiers are periodically shuffled).
type Rotator interface {
	RotateAnonymizer()
}

// UserResolver inverts a pseudonym minted in a given epoch, used by the
// HTTP layer for presence bookkeeping on widget results.
type UserResolver interface {
	ResolveUser(alias core.UserID, epoch uint64) (core.UserID, bool)
}

// Configured exposes the engine-level configuration.
type Configured interface {
	Config() Config
}

// TopologyProvider reports the deployment's current topology — served
// on GET /v1/topology and summarized by the /metrics gauges. A single
// engine is a 1-partition topology; a cluster reports its live ring.
type TopologyProvider interface {
	Topology() wire.Topology
}

// Scaler reshapes the deployment to a new partition count at runtime,
// streaming moved users' state between partitions (POST /v1/topology,
// SIGHUP in cmd/hyrec-server). Only elastic deployments (the cluster)
// implement it; the call is synchronous and returns once the migration
// has completed.
type Scaler interface {
	Scale(ctx context.Context, partitions int) error
}

// StatsProvider reports operational counters for the /stats endpoint.
type StatsProvider interface {
	Stats() map[string]any
}

// Compile-time check: the single-machine engine is a full-capability
// Service. (internal/cluster asserts the same for *Cluster, and
// hyrec/client for *Client.)
var (
	_ Service          = (*Engine)(nil)
	_ Payloader        = (*Engine)(nil)
	_ PayloadAppender  = (*Engine)(nil)
	_ UserDirectory    = (*Engine)(nil)
	_ Rotator          = (*Engine)(nil)
	_ UserResolver     = (*Engine)(nil)
	_ Configured       = (*Engine)(nil)
	_ StatsProvider    = (*Engine)(nil)
	_ JobSource        = (*Engine)(nil)
	_ LeaseAcker       = (*Engine)(nil)
	_ WorkerJobMeter   = (*Engine)(nil)
	_ TopologyProvider = (*Engine)(nil)
)
