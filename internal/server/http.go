package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyrec/internal/admit"
	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// UIDCookieName is the cookie the widget identifies users through
// (Section 4.2: "It identifies users through a cookie"). /online mints a
// fresh user ID and sets the cookie when a request carries neither ?uid
// nor the cookie. Exported so external front-ends speak the identical
// identification protocol.
const UIDCookieName = "hyrec_uid"

// HTTPServer exposes any Service over HyRec's web API. One mux serves
// both a single Engine and a partitioned Cluster — the Service interface
// routes internally, so there is no per-front-end handler duplication.
//
// Legacy endpoints (Table 1 of the paper):
//
//	GET  /online?uid=U                         → gzip JSON personalization job
//	GET  /neighbors?uid=U&epoch=E&id0=..&idN=..→ apply a KNN update (query form)
//	POST /neighbors                            → apply a wire.Result (JSON body)
//	POST /rate?uid=U&item=I&liked=true         → record a rating
//	GET  /recommendations?uid=U                → last recommendations for U
//	GET  /stats                                → bandwidth/throughput counters
//	GET  /healthz                              → liveness
//
// Versioned batch protocol (see internal/wire/v1.go):
//
//	POST /v1/rate       → batch of ratings (JSON body)
//	GET  /v1/job?uid=U  → personalization job (gzip-negotiated)
//	POST /v1/result     → apply a wire.Result, returns recommendations
//	GET  /v1/recs?uid=U&n=N → last recommendations
//	GET  /v1/neighbors?uid=U → current KNN approximation
//
// The /online response is gzip-compressed JSON with Content-Encoding:
// gzip, exactly as the paper's Jetty deployment serves it; /v1/job
// honours Accept-Encoding instead.
type HTTPServer struct {
	svc Service

	seen *presence

	mintMu sync.Mutex
	mint   *rand.Rand

	rotateEvery time.Duration
	stopRotate  chan struct{}
	rotateWG    sync.WaitGroup
	startOnce   sync.Once
	stopOnce    sync.Once

	// dispatchCtx is cancelled by Close so parked worker long-polls
	// (/v1/job?worker=1&wait=…) release immediately on shutdown instead
	// of pinning connections for the full wait. http.Server.Shutdown
	// does not cancel in-flight request contexts, so call Close before
	// (or alongside) Shutdown to drain dispatchers promptly.
	dispatchCtx  context.Context
	stopDispatch context.CancelFunc

	// Worker-socket gauges (GET /v1/worker/ws): live connections and
	// jobs pushed over them, surfaced on /stats and /metrics.
	wsWorkers    atomic.Int64
	wsJobsPushed atomic.Int64

	// Framed-transport gauges (ServeFrames): live connections, request
	// streams in flight, and bytes moved in either direction.
	frameConns   atomic.Int64
	frameStreams atomic.Int64
	frameBytes   atomic.Int64

	// gate is the admission gate both transport planes clear before any
	// service work: per-class bounded queues that shed with a typed
	// "overloaded" answer when full (see admission.go).
	gate *admit.Gate

	// nodeSecret, when non-empty, gates the node-plane endpoints
	// (/v1/replicate, /v1/nodes) behind NodeSecretHeader.
	nodeSecret string
}

// NewServer wraps any Service with the web API. If rotateEvery > 0 and
// the service supports rotation, a background goroutine rotates the
// anonymous mapping on that period until Close is called.
func NewServer(svc Service, rotateEvery time.Duration) *HTTPServer {
	seed := int64(1)
	if c, ok := svc.(Configured); ok {
		seed = c.Config().Seed
	}
	dispatchCtx, stopDispatch := context.WithCancel(context.Background())
	return &HTTPServer{
		svc:          svc,
		seen:         newPresence(),
		mint:         rand.New(rand.NewSource(seed + 7919)),
		rotateEvery:  rotateEvery,
		stopRotate:   make(chan struct{}),
		dispatchCtx:  dispatchCtx,
		stopDispatch: stopDispatch,
		gate:         newGate(svc),
	}
}

// NewHTTPServer wraps an Engine — the historical single-machine
// constructor, now a thin alias for NewServer.
func NewHTTPServer(engine *Engine, rotateEvery time.Duration) *HTTPServer {
	return NewServer(engine, rotateEvery)
}

// Service returns the service this server fronts.
func (s *HTTPServer) Service() Service { return s.svc }

// RequireNodeSecret gates POST /v1/replicate and /v1/nodes behind the
// shared secret: requests whose NodeSecretHeader does not match answer
// 403/forbidden. Call before Handler traffic arrives. An empty secret
// leaves the node plane open (see NodeSecretHeader for the trust model).
func (s *HTTPServer) RequireNodeSecret(secret string) { s.nodeSecret = secret }

// nodePlaneAuthorized checks r against the configured node-plane secret,
// writing the typed 403 on mismatch.
func (s *HTTPServer) nodePlaneAuthorized(w http.ResponseWriter, r *http.Request) bool {
	if s.nodeSecret == "" {
		return true
	}
	got := r.Header.Get(NodeSecretHeader)
	if subtle.ConstantTimeCompare([]byte(got), []byte(s.nodeSecret)) == 1 {
		return true
	}
	writeV1Error(w, http.StatusForbidden, wire.CodeForbidden, "node-plane secret missing or wrong")
	return false
}

// Start launches the anonymiser-rotation loop (no-op when rotateEvery ≤ 0
// or the service cannot rotate).
func (s *HTTPServer) Start() {
	s.startOnce.Do(func() {
		rot, ok := s.svc.(Rotator)
		if s.rotateEvery <= 0 || !ok {
			return
		}
		s.rotateWG.Add(1)
		go func() {
			defer s.rotateWG.Done()
			ticker := time.NewTicker(s.rotateEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					rot.RotateAnonymizer()
				case <-s.stopRotate:
					return
				}
			}
		}()
	})
}

// Close stops and drains the rotation goroutine and releases any parked
// worker long-polls. It does not close the underlying Service —
// ownership stays with whoever constructed it. Safe to call multiple
// times.
func (s *HTTPServer) Close() {
	s.stopOnce.Do(func() {
		close(s.stopRotate)
		s.stopDispatch()
	})
	s.rotateWG.Wait()
}

// Handler returns the route table: the legacy Table-1 endpoints plus the
// versioned /v1 batch protocol.
func (s *HTTPServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/online", s.handleOnline)
	mux.HandleFunc("/online/", s.handleOnline)
	mux.HandleFunc("/neighbors", s.handleNeighbors)
	mux.HandleFunc("/neighbors/", s.handleNeighbors)
	mux.HandleFunc("/rate", s.handleRate)
	mux.HandleFunc("/recommendations", s.handleRecommendations)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Liveness doubles as epoch exchange: peers probing this node
		// learn which node-map epoch it runs, and repair the difference.
		if ne, ok := s.svc.(NodeEpocher); ok {
			w.Header().Set(NodeEpochHeader, strconv.FormatUint(ne.NodeEpoch(), 10))
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc(wire.V1Prefix+"/rate", s.handleV1Rate)
	mux.HandleFunc(wire.V1Prefix+"/job", s.handleV1Job)
	mux.HandleFunc(wire.WSWorkerPath, s.handleV1WorkerWS)
	mux.HandleFunc(wire.V1Prefix+"/ack", s.handleV1Ack)
	mux.HandleFunc(wire.V1Prefix+"/result", s.handleV1Result)
	mux.HandleFunc(wire.V1Prefix+"/recs", s.handleV1Recs)
	mux.HandleFunc(wire.V1Prefix+"/neighbors", s.handleV1Neighbors)
	mux.HandleFunc(wire.V1Prefix+"/topology", s.handleV1Topology)
	mux.HandleFunc(wire.V1Prefix+"/replicate", s.handleV1Replicate)
	mux.HandleFunc(wire.V1Prefix+"/nodes", s.handleV1Nodes)
	// Node-forwarded requests are marked in the context so a service can
	// refuse to proxy them a second time (loop guard; see ForwardedHeader).
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardedHeader) != "" {
			r = r.WithContext(WithForwarded(r.Context()))
		}
		mux.ServeHTTP(w, r)
	})
}

// handleV1Replicate serves POST /v1/replicate: a primary's replication
// batch for a partition this node mirrors (or owns, during a handoff).
func (s *HTTPServer) handleV1Replicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeV1Error(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "POST required")
		return
	}
	if !s.nodePlaneAuthorized(w, r) {
		return
	}
	rep, ok := s.svc.(Replicator)
	if !ok {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "service does not accept replication")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxReplBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeV1Error(w, http.StatusRequestEntityTooLarge, wire.CodeTooLarge,
				fmt.Sprintf("body exceeds %d bytes", wire.MaxReplBodyBytes))
			return
		}
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad replicate body: "+err.Error())
		return
	}
	// DecodeReplBatch is the fuzzed production decoder (FuzzDecodeReplBatch).
	batch, err := wire.DecodeReplBatch(body)
	if err != nil {
		if errors.Is(err, wire.ErrTooLarge) {
			writeV1Error(w, http.StatusRequestEntityTooLarge, wire.CodeTooLarge, err.Error())
			return
		}
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad replicate body: "+err.Error())
		return
	}
	ack, err := rep.Replicate(r.Context(), batch)
	if err != nil {
		writeV1ServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

// handleV1Nodes serves POST /v1/nodes: the failover coordinator's node
// map push. Stale epochs are ignored by the sink, not an error.
func (s *HTTPServer) handleV1Nodes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeV1Error(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "POST required")
		return
	}
	if !s.nodePlaneAuthorized(w, r) {
		return
	}
	sink, ok := s.svc.(NodeMapSink)
	if !ok {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "service does not accept node maps")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes))
	if err != nil {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad node map body: "+err.Error())
		return
	}
	// DecodeNodeMap is the fuzzed production decoder (FuzzDecodeNodeMap).
	nm, err := wire.DecodeNodeMap(body)
	if err != nil {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad node map body: "+err.Error())
		return
	}
	if err := sink.ApplyNodeMap(r.Context(), nm); err != nil {
		writeV1ServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.AckResponse{Status: "ok"})
}

// ---- legacy Table-1 endpoints ----

func (s *HTTPServer) handleOnline(w http.ResponseWriter, r *http.Request) {
	// Read class even when a rating piggybacks: the job assembly
	// dominates the request's cost.
	release, admitted := s.admitHTTP(w, r, admit.Read)
	if !admitted {
		return
	}
	defer release()
	uid, known, err := UIDFromRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !known {
		// First visit without identification: mint an ID and hand it to
		// the browser as a cookie (Section 4.2).
		uid, err = s.mintUser()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		SetUIDCookie(w, uid)
	}
	s.seen.Touch(uid)
	// The widget may piggyback the rating that triggered the request.
	if itemStr := r.URL.Query().Get("item"); itemStr != "" {
		item, liked, err := rateParams(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.svc.Rate(r.Context(), uid, item, liked); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.writeJob(w, r.Context(), uid, true); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
}

func (s *HTTPServer) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	// Applying a KNN result is worker-class traffic regardless of which
	// wire shape (POST body or Table-1 query form) carried it.
	release, admitted := s.admitHTTP(w, r, admit.Worker)
	if !admitted {
		return
	}
	defer release()
	var res wire.Result
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes)).Decode(&res); err != nil {
			http.Error(w, fmt.Sprintf("bad result body: %v", err), http.StatusBadRequest)
			return
		}
	default:
		// Query form per Table 1: ?uid=U&epoch=E&id0=..&id1=..
		q := r.URL.Query()
		uid64, err := strconv.ParseUint(q.Get("uid"), 10, 32)
		if err != nil {
			http.Error(w, "bad uid", http.StatusBadRequest)
			return
		}
		epoch, _ := strconv.ParseUint(q.Get("epoch"), 10, 64)
		res = wire.Result{UID: uint32(uid64), Epoch: epoch}
		for i := 0; ; i++ {
			v := q.Get("id" + strconv.Itoa(i))
			if v == "" {
				break
			}
			id64, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad id%d", i), http.StatusBadRequest)
				return
			}
			res.Neighbors = append(res.Neighbors, uint32(id64))
		}
		for _, v := range strings.Split(q.Get("recs"), ",") {
			if v == "" {
				continue
			}
			id64, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				http.Error(w, "bad recs", http.StatusBadRequest)
				return
			}
			res.Recommendations = append(res.Recommendations, uint32(id64))
		}
	}

	if _, err := s.svc.ApplyResult(r.Context(), &res); err != nil {
		status, _ := statusForErr(err)
		http.Error(w, err.Error(), status)
		return
	}
	s.touchResult(&res)
	w.WriteHeader(http.StatusNoContent)
}

func (s *HTTPServer) handleRate(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitHTTP(w, r, admit.Rating)
	if !ok {
		return
	}
	defer release()
	uid, known, err := UIDFromRequest(r)
	if err != nil || !known {
		http.Error(w, errOrMissing(err), http.StatusBadRequest)
		return
	}
	item, liked, err := rateParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.seen.Touch(uid)
	if err := s.svc.Rate(r.Context(), uid, item, liked); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *HTTPServer) handleRecommendations(w http.ResponseWriter, r *http.Request) {
	release, admitted := s.admitHTTP(w, r, admit.Read)
	if !admitted {
		return
	}
	defer release()
	uid, known, err := UIDFromRequest(r)
	if err != nil || !known {
		http.Error(w, errOrMissing(err), http.StatusBadRequest)
		return
	}
	recs, err := s.svc.Recommendations(r.Context(), uid, 0)
	if err != nil {
		status, _ := statusForErr(err)
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(recs); err != nil {
		return
	}
}

func (s *HTTPServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := map[string]any{}
	if sp, ok := s.svc.(StatsProvider); ok {
		stats = sp.Stats()
	}
	stats["online_users"] = int64(s.seen.Online(presenceWindow))
	stats["ws_workers"] = s.wsWorkers.Load()
	stats["ws_jobs_pushed_total"] = s.wsJobsPushed.Load()
	stats["frame_conns"] = s.frameConns.Load()
	stats["frame_streams_active"] = s.frameStreams.Load()
	stats["frame_bytes_total"] = s.frameBytes.Load()
	s.gate.AddStats(stats)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(stats); err != nil {
		return
	}
}

// handleMetrics serves GET /metrics: the same counters as /stats in
// Prometheus text exposition format, plus the elastic-topology gauges
// hyrec_topology_partitions and hyrec_migration_users_moved_total. The
// alias lets a scrape target consume the deployment without a JSON
// exporter sidecar.
func (s *HTTPServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	stats := map[string]any{}
	if sp, ok := s.svc.(StatsProvider); ok {
		stats = sp.Stats()
	}
	stats["online_users"] = int64(s.seen.Online(presenceWindow))
	stats["ws_workers"] = s.wsWorkers.Load()
	stats["ws_jobs_pushed_total"] = s.wsJobsPushed.Load()
	stats["frame_conns"] = s.frameConns.Load()
	stats["frame_streams_active"] = s.frameStreams.Load()
	stats["frame_bytes_total"] = s.frameBytes.Load()
	s.gate.AddStats(stats)
	if tp, ok := s.svc.(TopologyProvider); ok {
		topo := tp.Topology()
		stats["topology_partitions"] = int64(topo.Partitions)
		stats["migration_users_moved_total"] = topo.UsersMovedTotal
		stats["migrating"] = topo.Migrating
	}
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, k := range keys {
		name := "hyrec_" + k
		switch v := stats[k].(type) {
		case int:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
		case int64:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
		case float64:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, v)
		case bool:
			b := 0
			if v {
				b = 1
			}
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, b)
		case []int64:
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			for i, n := range v {
				fmt.Fprintf(w, "%s{partition=\"%d\"} %d\n", name, i, n)
			}
		}
	}
}

// handleV1Topology serves the admin topology endpoint: GET reports the
// current shape (partition count, ring parameter, migration status);
// POST triggers a live resharding to the requested partition count and
// returns the resulting topology once the migration has completed.
func (s *HTTPServer) handleV1Topology(w http.ResponseWriter, r *http.Request) {
	tp, ok := s.svc.(TopologyProvider)
	if !ok {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "service reports no topology")
		return
	}
	switch r.Method {
	case http.MethodGet:
		topo := tp.Topology()
		// ?uid=U additionally resolves the node serving that user's
		// partition as primary, when the service knows the node map.
		if raw := r.URL.Query().Get("uid"); raw != "" {
			loc, ok := s.svc.(UserLocator)
			if !ok {
				writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "service cannot locate users by node")
				return
			}
			uid64, err := strconv.ParseUint(raw, 10, 32)
			if err != nil {
				writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, fmt.Sprintf("bad uid %q", raw))
				return
			}
			if ref, ok := loc.LocateUser(core.UserID(uid64)); ok {
				topo.Owner = &ref
			}
		}
		writeJSON(w, http.StatusOK, topo)
	case http.MethodPost:
		sc, ok := s.svc.(Scaler)
		if !ok {
			writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "service is not elastic (single engine?)")
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes))
		if err != nil {
			writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad scale body: "+err.Error())
			return
		}
		var req wire.ScaleRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad scale body: "+err.Error())
			return
		}
		if req.Partitions < 1 {
			writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest,
				fmt.Sprintf("partitions must be >= 1, got %d", req.Partitions))
			return
		}
		if err := sc.Scale(r.Context(), req.Partitions); err != nil {
			writeV1ServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, tp.Topology())
	default:
		writeV1Error(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "GET or POST required")
	}
}

// ---- /v1 batch protocol ----

func (s *HTTPServer) handleV1Rate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeV1Error(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "POST required")
		return
	}
	release, ok := s.admitHTTP(w, r, admit.Rating)
	if !ok {
		return
	}
	defer release()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeV1Error(w, http.StatusRequestEntityTooLarge, wire.CodeTooLarge,
				fmt.Sprintf("body exceeds %d bytes", wire.MaxBodyBytes))
			return
		}
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad rate body: "+err.Error())
		return
	}
	// DecodeRateRequest is the fuzzed production decoder
	// (FuzzDecodeRateBatch): malformed or oversized input yields a typed
	// error, never a panic or a silently truncated batch.
	req, err := wire.DecodeRateRequest(body)
	if err != nil {
		if errors.Is(err, wire.ErrTooLarge) {
			writeV1Error(w, http.StatusRequestEntityTooLarge, wire.CodeTooLarge, err.Error())
			return
		}
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad rate body: "+err.Error())
		return
	}
	ratings := make([]core.Rating, len(req.Ratings))
	for i, m := range req.Ratings {
		ratings[i] = core.Rating{User: core.UserID(m.UID), Item: core.ItemID(m.Item), Liked: m.Liked}
		s.seen.Touch(ratings[i].User)
	}
	if err := s.svc.RateBatch(r.Context(), ratings); err != nil {
		writeV1ServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.RateResponse{Accepted: len(ratings)})
}

// maxWorkerWait caps the /v1/job?worker=1 long-poll so a parked worker
// never outlives the HTTP server's write timeout.
const maxWorkerWait = 25 * time.Second

// workerRepollEvery paces the long-poll's re-poll loop after NextJob
// answered nil before the window expired (see handleV1WorkerJob).
const workerRepollEvery = 20 * time.Millisecond

func (s *HTTPServer) handleV1Job(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeV1Error(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "GET required")
		return
	}
	if isWorker(r) {
		s.handleV1WorkerJob(w, r)
		return
	}
	release, admitted := s.admitHTTP(w, r, admit.Read)
	if !admitted {
		return
	}
	defer release()
	uid, known, err := UIDFromRequest(r)
	if err != nil {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	if !known {
		uid, err = s.mintUser()
		if err != nil {
			writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
			return
		}
		SetUIDCookie(w, uid)
	}
	s.seen.Touch(uid)
	w.Header().Set("Content-Type", "application/json")
	if err := s.writeJob(w, r.Context(), uid, acceptsGzip(r)); err != nil {
		writeV1ServiceError(w, err)
		return
	}
}

// isWorker reports whether a /v1/job request is a pull-based worker
// dispatch rather than a user-driven job request.
func isWorker(r *http.Request) bool {
	v := r.URL.Query().Get("worker")
	if v == "" {
		return false
	}
	b, err := strconv.ParseBool(v)
	return err == nil && b
}

// handleV1WorkerJob serves GET /v1/job?worker=1[&wait=D]: the next
// leased job from the staleness queue, long-polling up to `wait`
// (capped) and answering 204 No Content when the queue stays empty.
func (s *HTTPServer) handleV1WorkerJob(w http.ResponseWriter, r *http.Request) {
	js, ok := s.svc.(JobSource)
	if !ok {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest,
			"service does not dispatch jobs to workers")
		return
	}
	// A parked long-poll holds its worker slot for the whole park: parked
	// polls are exactly the held capacity the worker bound meters.
	release, admitted := s.admitHTTP(w, r, admit.Worker)
	if !admitted {
		return
	}
	defer release()
	wait := time.Duration(0)
	if raw := r.URL.Query().Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, fmt.Sprintf("bad wait %q", raw))
			return
		}
		wait = d
	}
	if wait > maxWorkerWait {
		wait = maxWorkerWait
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	// Server shutdown (Close) releases the poll immediately.
	stop := context.AfterFunc(s.dispatchCtx, cancel)
	defer stop()
	var job *wire.Job
	for {
		var err error
		job, err = js.NextJob(ctx)
		if err != nil {
			writeV1ServiceError(w, err)
			return
		}
		if job != nil {
			break
		}
		// NextJob can answer nil before the window expires: a service
		// with no scheduler answers immediately, and a scheduler woken
		// mid-Evict during a scale-in (or racing its own shutdown) sees
		// an empty queue for an instant even though the evicted users are
		// re-marked stale moments later. Treating that first nil as "idle
		// for the whole window" would turn the poll into an early idle
		// 204 that misses work arriving in the remaining window, so
		// re-poll — paced, to keep scheduler-free services from spinning —
		// until the window genuinely expires.
		select {
		case <-ctx.Done():
			w.WriteHeader(http.StatusNoContent)
			return
		case <-time.After(workerRepollEvery):
		}
	}
	// Worker jobs serialize in the transport layer; borrow the same
	// pooled buffers the user-driven payload path uses.
	bufs := wire.GetPayloadBufs()
	defer wire.PutPayloadBufs(bufs)
	raw := wire.AppendJob(bufs.JSON, job, nil)
	bufs.JSON = raw
	meter, metered := s.svc.(WorkerJobMeter)
	w.Header().Set("Content-Type", "application/json")
	if acceptsGzip(r) {
		gz, err := wire.AppendGzip(bufs.Gz, raw, s.gzipLevel())
		if err != nil {
			writeV1Error(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
			return
		}
		bufs.Gz = gz
		if metered {
			meter.CountWorkerJob(job, len(raw), len(gz))
		}
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Set("Content-Length", strconv.Itoa(len(gz)))
		w.Write(gz)
		return
	}
	if metered {
		meter.CountWorkerJob(job, len(raw), 0)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.Write(raw)
}

// handleV1Ack serves POST /v1/ack: complete (done=true) or abandon
// (done=false) a lease without posting a result.
func (s *HTTPServer) handleV1Ack(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeV1Error(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "POST required")
		return
	}
	la, ok := s.svc.(LeaseAcker)
	if !ok {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "service does not manage leases")
		return
	}
	release, admitted := s.admitHTTP(w, r, admit.Worker)
	if !admitted {
		return
	}
	defer release()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes))
	if err != nil {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad ack body: "+err.Error())
		return
	}
	// DecodeAck is the fuzzed production decoder (FuzzDecodeAck).
	req, err := wire.DecodeAck(body)
	if err != nil {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad ack body: "+err.Error())
		return
	}
	if err := la.Ack(r.Context(), req.Lease, req.Done); err != nil {
		writeV1ServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.AckResponse{Status: "ok"})
}

func (s *HTTPServer) handleV1Result(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeV1Error(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "POST required")
		return
	}
	release, admitted := s.admitHTTP(w, r, admit.Worker)
	if !admitted {
		return
	}
	defer release()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeV1Error(w, http.StatusRequestEntityTooLarge, wire.CodeTooLarge,
				fmt.Sprintf("body exceeds %d bytes", wire.MaxBodyBytes))
			return
		}
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad result body: "+err.Error())
		return
	}
	// DecodeResult is the fuzzed production decoder (FuzzDecodeResult).
	res, err := wire.DecodeResult(body)
	if err != nil {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, "bad result body: "+err.Error())
		return
	}
	recs, err := s.svc.ApplyResult(r.Context(), res)
	if err != nil {
		writeV1ServiceError(w, err)
		return
	}
	s.touchResult(res)
	out := wire.RecsResponse{Recs: make([]uint32, len(recs))}
	for i, it := range recs {
		out.Recs[i] = uint32(it)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *HTTPServer) handleV1Recs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeV1Error(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "GET required")
		return
	}
	release, admitted := s.admitHTTP(w, r, admit.Read)
	if !admitted {
		return
	}
	defer release()
	uid, known, err := UIDFromRequest(r)
	if err != nil || !known {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, errOrMissing(err))
		return
	}
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err = strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, fmt.Sprintf("bad n %q", raw))
			return
		}
	}
	recs, err := s.svc.Recommendations(r.Context(), uid, n)
	if err != nil {
		writeV1ServiceError(w, err)
		return
	}
	out := wire.RecsResponse{Recs: make([]uint32, len(recs))}
	for i, it := range recs {
		out.Recs[i] = uint32(it)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *HTTPServer) handleV1Neighbors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeV1Error(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "GET required")
		return
	}
	release, admitted := s.admitHTTP(w, r, admit.Read)
	if !admitted {
		return
	}
	defer release()
	uid, known, err := UIDFromRequest(r)
	if err != nil || !known {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest, errOrMissing(err))
		return
	}
	hood, err := s.svc.Neighbors(r.Context(), uid)
	if err != nil {
		writeV1ServiceError(w, err)
		return
	}
	out := wire.NeighborsResponse{Neighbors: make([]uint32, len(hood))}
	for i, v := range hood {
		out.Neighbors[i] = uint32(v)
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- shared plumbing ----

// writeJob serves u's serialized job body (headers beyond Content-Type
// are set here): the pooled append path when the service supports it, so
// a steady-state request borrows every buffer it touches; otherwise the
// legacy Payloader or generic encode path. Nothing has been written to w
// when an error is returned.
func (s *HTTPServer) writeJob(w http.ResponseWriter, ctx context.Context, u core.UserID, gzipOK bool) error {
	if pa, ok := s.svc.(PayloadAppender); ok {
		bufs := wire.GetPayloadBufs()
		defer wire.PutPayloadBufs(bufs)
		jsonBody, gzBody, err := pa.AppendJobPayload(ctx, u, bufs.JSON, bufs.Gz)
		if err != nil {
			return err
		}
		// Keep the grown capacity pooled for the next request.
		bufs.JSON, bufs.Gz = jsonBody, gzBody
		body := jsonBody
		if gzipOK {
			w.Header().Set("Content-Encoding", "gzip")
			body = gzBody
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.Write(body)
		return nil
	}
	var raw, gz []byte
	var err error
	if p, ok := s.svc.(Payloader); ok {
		raw, gz, err = p.JobPayload(u)
	} else {
		if raw, err = s.jobJSON(ctx, u); err == nil && gzipOK {
			gz, err = wire.Compress(raw, s.gzipLevel())
		}
	}
	if err != nil {
		return err
	}
	body := raw
	if gzipOK {
		w.Header().Set("Content-Encoding", "gzip")
		body = gz
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
	return nil
}

// jobJSON returns the raw JSON job payload for u.
func (s *HTTPServer) jobJSON(ctx context.Context, u core.UserID) ([]byte, error) {
	if p, ok := s.svc.(Payloader); ok {
		raw, _, err := p.JobPayload(u)
		return raw, err
	}
	job, err := s.svc.Job(ctx, u)
	if err != nil {
		return nil, err
	}
	return wire.EncodeJob(job)
}

func (s *HTTPServer) gzipLevel() wire.GzipLevel {
	if c, ok := s.svc.(Configured); ok {
		return c.Config().GzipLevel
	}
	return wire.GzipBestSpeed
}

// touchResult records presence for the real user behind an applied
// result, when the service can resolve pseudonyms.
func (s *HTTPServer) touchResult(res *wire.Result) {
	if ur, ok := s.svc.(UserResolver); ok {
		if u, ok := ur.ResolveUser(core.UserID(res.UID), res.Epoch); ok {
			s.seen.Touch(u)
		}
	}
}

// statusForErr maps a Service error to an HTTP status and v1 error code.
func statusForErr(err error) (int, string) {
	switch {
	case errors.Is(err, ErrStaleEpoch):
		return http.StatusGone, wire.CodeStaleEpoch
	case errors.Is(err, ErrUnknownUser):
		return http.StatusNotFound, wire.CodeUnknownUser
	case errors.Is(err, ErrUnknownLease):
		return http.StatusNotFound, wire.CodeUnknownLease
	case errors.Is(err, ErrNotPrimary):
		// The not_primary rejection shares CodeMoved's 421 family: the
		// client refreshes its topology and retries once against the
		// primary the envelope names.
		return http.StatusMisdirectedRequest, wire.CodeNotPrimary
	case errors.Is(err, ErrMoved):
		return http.StatusMisdirectedRequest, wire.CodeMoved
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, wire.CodeOverloaded
	default:
		return http.StatusInternalServerError, wire.CodeInternal
	}
}

func writeV1ServiceError(w http.ResponseWriter, err error) {
	status, code := statusForErr(err)
	var np *NotPrimaryError
	if errors.As(err, &np) && np.PrimaryAddr != "" {
		writeJSON(w, status, wire.ErrorEnvelope{Error: wire.ErrorBody{
			Code: code, Message: err.Error(), Primary: np.PrimaryAddr,
		}})
		return
	}
	writeV1Error(w, status, code, err.Error())
}

func writeV1Error(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, wire.ErrorEnvelope{Error: wire.ErrorBody{Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}

// acceptsGzip reports whether the request negotiates gzip encoding.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc := strings.TrimSpace(part)
		if i := strings.IndexByte(enc, ';'); i >= 0 {
			enc = strings.TrimSpace(enc[:i])
		}
		if enc == "gzip" || enc == "*" {
			return true
		}
	}
	return false
}

// UIDFromRequest resolves the requesting user: an explicit ?uid parameter
// wins; otherwise the identification cookie is consulted. known is false
// when the request carries neither. Shared by every endpoint so legacy
// and /v1 identification stay protocol-identical.
func UIDFromRequest(r *http.Request) (uid core.UserID, known bool, err error) {
	if raw := r.URL.Query().Get("uid"); raw != "" {
		uid64, err := strconv.ParseUint(raw, 10, 32)
		if err != nil {
			return 0, false, fmt.Errorf("bad uid %q", raw)
		}
		return core.UserID(uid64), true, nil
	}
	if c, err := r.Cookie(UIDCookieName); err == nil {
		uid64, err := strconv.ParseUint(c.Value, 10, 32)
		if err != nil {
			return 0, false, fmt.Errorf("bad %s cookie %q", UIDCookieName, c.Value)
		}
		return core.UserID(uid64), true, nil
	}
	return 0, false, nil
}

// SetUIDCookie hands uid to the browser as the identification cookie —
// the attributes every front-end must agree on.
func SetUIDCookie(w http.ResponseWriter, uid core.UserID) {
	http.SetCookie(w, &http.Cookie{
		Name:     UIDCookieName,
		Value:    strconv.FormatUint(uint64(uid), 10),
		Path:     "/",
		HttpOnly: true,
		SameSite: http.SameSiteLaxMode,
	})
}

// mintUser allocates an unused user ID and registers it so concurrent
// mints cannot collide. It fails when the service exposes no user
// directory (e.g. a bare remote proxy).
func (s *HTTPServer) mintUser() (core.UserID, error) {
	dir, ok := s.svc.(UserDirectory)
	if !ok {
		return 0, errors.New("service cannot mint users; supply ?uid or the " + UIDCookieName + " cookie")
	}
	s.mintMu.Lock()
	defer s.mintMu.Unlock()
	for {
		id := core.UserID(s.mint.Uint32())
		if id == 0 || dir.KnownUser(id) {
			continue
		}
		dir.RegisterUser(id)
		return id, nil
	}
}

// errOrMissing renders a uid-resolution failure for a 400 response.
func errOrMissing(err error) string {
	if err != nil {
		return err.Error()
	}
	return "missing uid (no ?uid parameter or " + UIDCookieName + " cookie)"
}

func rateParams(r *http.Request) (core.ItemID, bool, error) {
	q := r.URL.Query()
	item64, err := strconv.ParseUint(q.Get("item"), 10, 32)
	if err != nil {
		return 0, false, fmt.Errorf("bad item %q", q.Get("item"))
	}
	liked := true
	if v := q.Get("liked"); v != "" {
		liked, err = strconv.ParseBool(v)
		if err != nil {
			return 0, false, fmt.Errorf("bad liked %q", v)
		}
	}
	return core.ItemID(item64), liked, nil
}
