package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// UIDCookieName is the cookie the widget identifies users through
// (Section 4.2: "It identifies users through a cookie"). /online mints a
// fresh user ID and sets the cookie when a request carries neither ?uid
// nor the cookie. Exported so the cluster front-end speaks the identical
// identification protocol.
const UIDCookieName = "hyrec_uid"

// HTTPServer exposes an Engine over the paper's web API (Table 1):
//
//	GET  /online?uid=U                         → gzip JSON personalization job
//	GET  /neighbors?uid=U&epoch=E&id0=..&idN=..→ apply a KNN update (query form)
//	POST /neighbors                            → apply a wire.Result (JSON body)
//	POST /rate?uid=U&item=I&liked=true         → record a rating
//	GET  /recommendations?uid=U                → last recommendations for U
//	GET  /stats                                → bandwidth/throughput counters
//	GET  /healthz                              → liveness
//
// The /online response is gzip-compressed JSON with Content-Encoding: gzip,
// exactly as the paper's Jetty deployment serves it.
type HTTPServer struct {
	engine *Engine

	recMu   sync.RWMutex
	lastRec map[core.UserID][]core.ItemID

	seen *presence

	mintMu sync.Mutex
	mint   *rand.Rand

	rotateEvery time.Duration
	stopRotate  chan struct{}
	rotateWG    sync.WaitGroup
	startOnce   sync.Once
	stopOnce    sync.Once
}

// NewHTTPServer wraps engine. If rotateEvery > 0, a background goroutine
// rotates the anonymous mapping on that period until Close is called.
func NewHTTPServer(engine *Engine, rotateEvery time.Duration) *HTTPServer {
	return &HTTPServer{
		engine:      engine,
		lastRec:     make(map[core.UserID][]core.ItemID),
		seen:        newPresence(),
		mint:        rand.New(rand.NewSource(engine.Config().Seed + 7919)),
		rotateEvery: rotateEvery,
		stopRotate:  make(chan struct{}),
	}
}

// Start launches the anonymiser-rotation loop (no-op when rotateEvery ≤ 0).
func (s *HTTPServer) Start() {
	s.startOnce.Do(func() {
		if s.rotateEvery <= 0 {
			return
		}
		s.rotateWG.Add(1)
		go func() {
			defer s.rotateWG.Done()
			ticker := time.NewTicker(s.rotateEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					s.engine.RotateAnonymizer()
				case <-s.stopRotate:
					return
				}
			}
		}()
	})
}

// Close stops background work. Safe to call multiple times.
func (s *HTTPServer) Close() {
	s.stopOnce.Do(func() { close(s.stopRotate) })
	s.rotateWG.Wait()
}

// Handler returns the route table.
func (s *HTTPServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/online", s.handleOnline)
	mux.HandleFunc("/online/", s.handleOnline)
	mux.HandleFunc("/neighbors", s.handleNeighbors)
	mux.HandleFunc("/neighbors/", s.handleNeighbors)
	mux.HandleFunc("/rate", s.handleRate)
	mux.HandleFunc("/recommendations", s.handleRecommendations)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *HTTPServer) handleOnline(w http.ResponseWriter, r *http.Request) {
	uid, known, err := UIDFromRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !known {
		// First visit without identification: mint an ID and hand it to
		// the browser as a cookie (Section 4.2).
		uid = s.mintUser()
		SetUIDCookie(w, uid)
	}
	s.seen.Touch(uid)
	// The widget may piggyback the rating that triggered the request.
	if itemStr := r.URL.Query().Get("item"); itemStr != "" {
		item, liked, err := rateParams(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.engine.Rate(uid, item, liked)
	}
	_, gz, err := s.engine.JobPayload(uid)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Set("Content-Length", strconv.Itoa(len(gz)))
	if _, err := w.Write(gz); err != nil {
		return // client went away; nothing to do
	}
}

func (s *HTTPServer) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	var res wire.Result
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
			http.Error(w, fmt.Sprintf("bad result body: %v", err), http.StatusBadRequest)
			return
		}
	default:
		// Query form per Table 1: ?uid=U&epoch=E&id0=..&id1=..
		q := r.URL.Query()
		uid64, err := strconv.ParseUint(q.Get("uid"), 10, 32)
		if err != nil {
			http.Error(w, "bad uid", http.StatusBadRequest)
			return
		}
		epoch, _ := strconv.ParseUint(q.Get("epoch"), 10, 64)
		res = wire.Result{UID: uint32(uid64), Epoch: epoch}
		for i := 0; ; i++ {
			v := q.Get("id" + strconv.Itoa(i))
			if v == "" {
				break
			}
			id64, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad id%d", i), http.StatusBadRequest)
				return
			}
			res.Neighbors = append(res.Neighbors, uint32(id64))
		}
		for _, v := range strings.Split(q.Get("recs"), ",") {
			if v == "" {
				continue
			}
			id64, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				http.Error(w, "bad recs", http.StatusBadRequest)
				return
			}
			res.Recommendations = append(res.Recommendations, uint32(id64))
		}
	}

	recs, err := s.engine.ApplyResult(&res)
	switch {
	case errors.Is(err, ErrStaleEpoch):
		http.Error(w, err.Error(), http.StatusGone)
		return
	case errors.Is(err, ErrUnknownUser):
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if u, ok := s.engine.ResolveUser(core.UserID(res.UID), res.Epoch); ok {
		s.seen.Touch(u)
		s.recMu.Lock()
		s.lastRec[u] = recs
		s.recMu.Unlock()
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *HTTPServer) handleRate(w http.ResponseWriter, r *http.Request) {
	uid, known, err := UIDFromRequest(r)
	if err != nil || !known {
		http.Error(w, errOrMissing(err), http.StatusBadRequest)
		return
	}
	item, liked, err := rateParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.seen.Touch(uid)
	s.engine.Rate(uid, item, liked)
	w.WriteHeader(http.StatusNoContent)
}

func (s *HTTPServer) handleRecommendations(w http.ResponseWriter, r *http.Request) {
	uid, known, err := UIDFromRequest(r)
	if err != nil || !known {
		http.Error(w, errOrMissing(err), http.StatusBadRequest)
		return
	}
	s.recMu.RLock()
	recs := s.lastRec[uid]
	s.recMu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(recs); err != nil {
		return
	}
}

func (s *HTTPServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	m := s.engine.Meter()
	w.Header().Set("Content-Type", "application/json")
	stats := map[string]int64{
		"json_bytes":   m.JSONBytes(),
		"gzip_bytes":   m.GzipBytes(),
		"result_bytes": m.ResultBytes(),
		"messages":     m.Messages(),
		"users":        int64(s.engine.Profiles().Len()),
		"online_users": int64(s.seen.Online(presenceWindow)),
		"knn_entries":  int64(s.engine.KNN().Len()),
	}
	if err := json.NewEncoder(w).Encode(stats); err != nil {
		return
	}
}

// UIDFromRequest resolves the requesting user: an explicit ?uid parameter
// wins; otherwise the identification cookie is consulted. known is false
// when the request carries neither. Shared by the single-engine and
// cluster front-ends so the two stay protocol-identical.
func UIDFromRequest(r *http.Request) (uid core.UserID, known bool, err error) {
	if raw := r.URL.Query().Get("uid"); raw != "" {
		uid64, err := strconv.ParseUint(raw, 10, 32)
		if err != nil {
			return 0, false, fmt.Errorf("bad uid %q", raw)
		}
		return core.UserID(uid64), true, nil
	}
	if c, err := r.Cookie(UIDCookieName); err == nil {
		uid64, err := strconv.ParseUint(c.Value, 10, 32)
		if err != nil {
			return 0, false, fmt.Errorf("bad %s cookie %q", UIDCookieName, c.Value)
		}
		return core.UserID(uid64), true, nil
	}
	return 0, false, nil
}

// SetUIDCookie hands uid to the browser as the identification cookie —
// the attributes both front-ends must agree on.
func SetUIDCookie(w http.ResponseWriter, uid core.UserID) {
	http.SetCookie(w, &http.Cookie{
		Name:     UIDCookieName,
		Value:    strconv.FormatUint(uint64(uid), 10),
		Path:     "/",
		HttpOnly: true,
		SameSite: http.SameSiteLaxMode,
	})
}

// mintUser allocates an unused user ID and registers it so concurrent
// mints cannot collide.
func (s *HTTPServer) mintUser() core.UserID {
	s.mintMu.Lock()
	defer s.mintMu.Unlock()
	for {
		id := core.UserID(s.mint.Uint32())
		if id == 0 || s.engine.Profiles().Known(id) {
			continue
		}
		s.engine.Profiles().Put(core.NewProfile(id))
		return id
	}
}

// errOrMissing renders a uid-resolution failure for a 400 response.
func errOrMissing(err error) string {
	if err != nil {
		return err.Error()
	}
	return "missing uid (no ?uid parameter or " + UIDCookieName + " cookie)"
}

func rateParams(r *http.Request) (core.ItemID, bool, error) {
	q := r.URL.Query()
	item64, err := strconv.ParseUint(q.Get("item"), 10, 32)
	if err != nil {
		return 0, false, fmt.Errorf("bad item %q", q.Get("item"))
	}
	liked := true
	if v := q.Get("liked"); v != "" {
		liked, err = strconv.ParseBool(v)
		if err != nil {
			return 0, false, fmt.Errorf("bad liked %q", v)
		}
	}
	return core.ItemID(item64), liked, nil
}
