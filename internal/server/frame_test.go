package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/frame"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

// newFrameServer starts an engine-backed server with a framed listener
// on a loopback port and returns the engine, the server, and the
// listener address.
func newFrameServer(t *testing.T, cfg Config, secret string) (*Engine, *HTTPServer, string) {
	t.Helper()
	e := NewEngine(cfg)
	srv := NewServer(e, 0)
	if secret != "" {
		srv.RequireNodeSecret(secret)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeFrames(ln)
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, srv, ln.Addr().String()
}

// dialFrame opens a framed connection and completes the handshake.
func dialFrame(t *testing.T, addr, secret string) *frame.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cn := frame.NewConn(c, 0)
	t.Cleanup(func() { cn.Close() })
	if err := cn.WriteFrame(frame.THello, 1, frame.AppendHello(nil, secret)); err != nil {
		t.Fatal(err)
	}
	f, err := cn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != frame.THelloOK {
		t.Fatalf("handshake answered %#x, want THelloOK", byte(f.Type))
	}
	return cn
}

// call sends one request frame and reads one response frame, copying
// the payload out of the connection's read buffer.
func frameCall(t *testing.T, cn *frame.Conn, ft frame.Type, stream uint64, payload []byte) frame.Frame {
	t.Helper()
	if err := cn.WriteFrame(ft, stream, payload); err != nil {
		t.Fatal(err)
	}
	f, err := cn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	f.Payload = append([]byte(nil), f.Payload...)
	return f
}

// fixedOrderSampler returns a deterministic candidate list so two job
// fetches assemble byte-identical payloads.
type fixedOrderSampler struct{ users []core.UserID }

func (s fixedOrderSampler) Sample(u core.UserID, _ int) []core.UserID {
	var out []core.UserID
	for _, c := range s.users {
		if c != u {
			out = append(out, c)
		}
	}
	return out
}

func TestFrameRateBatch(t *testing.T) {
	e, _, addr := newFrameServer(t, testConfig(), "")
	cn := dialFrame(t, addr, "")

	ratings := []core.Rating{
		{User: 1, Item: 5, Liked: true},
		{User: 1, Item: 6, Liked: true},
		{User: 2, Item: 5, Liked: true},
	}
	f := frameCall(t, cn, frame.TRateBatch, 3, frame.AppendRateBatch(nil, ratings))
	if f.Type != frame.TRateOK {
		t.Fatalf("rate batch answered %#x: %s", byte(f.Type), f.Payload)
	}
	if f.Stream != 3 {
		t.Fatalf("response on stream %d, want 3", f.Stream)
	}
	n, err := frame.DecodeUint(f.Payload)
	if err != nil || n != uint64(len(ratings)) {
		t.Fatalf("TRateOK count = %d, %v; want %d", n, err, len(ratings))
	}
	for _, u := range []core.UserID{1, 2} {
		if !e.KnownUser(u) {
			t.Fatalf("user %d unknown after framed rate batch", u)
		}
	}
}

// TestFrameJobByteEquivalence pins the acceptance criterion: the framed
// TJobGet payload is byte-for-byte the JSON the HTTP GET /v1/job path
// serves for the same user.
func TestFrameJobByteEquivalence(t *testing.T) {
	e, srv, addr := newFrameServer(t, testConfig(), "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Pin candidate order: the default sampler draws random candidates
	// per call, so byte-comparing two fetches needs a fixed sampler.
	e.SetSampler(fixedOrderSampler{users: []core.UserID{1, 2, 3}})
	for u := core.UserID(1); u <= 3; u++ {
		if err := e.Rate(tctx, u, core.ItemID(u%3), true); err != nil {
			t.Fatal(err)
		}
		if err := e.Rate(tctx, u, 7, true); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/job?uid=1")
	if err != nil {
		t.Fatal(err)
	}
	httpBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP job status %d: %s", resp.StatusCode, httpBody)
	}

	cn := dialFrame(t, addr, "")
	f := frameCall(t, cn, frame.TJobGet, 5, frame.AppendUID(nil, 1))
	if f.Type != frame.TJob {
		t.Fatalf("job get answered %#x: %s", byte(f.Type), f.Payload)
	}
	if string(f.Payload) != string(httpBody) {
		t.Fatalf("framed job payload diverges from HTTP:\nframed: %s\nhttp:   %s", f.Payload, httpBody)
	}
}

// TestFrameWorkerFlow drives the full worker protocol over one framed
// connection: rate → TJobPull → execute → TResult → TAckBatch, ending
// with a drained queue.
func TestFrameWorkerFlow(t *testing.T) {
	e, _, addr := newFrameServer(t, schedConfig(), "")
	seedRatings(t, e, 4)
	cn := dialFrame(t, addr, "")

	w := widget.New()
	drained := false
	for i := uint64(0); i < 40 && !drained; i++ {
		f := frameCall(t, cn, frame.TJobPull, 2*i+1, frame.AppendUint(nil, 100))
		if f.Type != frame.TJob {
			t.Fatalf("job pull answered %#x: %s", byte(f.Type), f.Payload)
		}
		if len(f.Payload) == 0 {
			drained = true
			break
		}
		var job wire.Job
		if err := json.Unmarshal(f.Payload, &job); err != nil {
			t.Fatalf("framed job payload is not the JSON job: %v", err)
		}
		if job.Lease == 0 {
			t.Fatalf("framed worker job without lease: %+v", job)
		}
		res, _ := w.Execute(&job)
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		rf := frameCall(t, cn, frame.TResult, 2*i+2, raw)
		if rf.Type != frame.TRecs {
			t.Fatalf("result answered %#x: %s", byte(rf.Type), rf.Payload)
		}
	}
	if !drained {
		t.Fatal("queue never drained over the framed transport")
	}
	if !e.Scheduler().Quiet() {
		t.Fatalf("scheduler not quiet: %+v", e.Scheduler().Stats())
	}
}

func TestFrameJobPullIdleAnswersEmpty(t *testing.T) {
	_, _, addr := newFrameServer(t, schedConfig(), "")
	cn := dialFrame(t, addr, "")
	start := time.Now()
	f := frameCall(t, cn, frame.TJobPull, 9, frame.AppendUint(nil, 80))
	if f.Type != frame.TJob || len(f.Payload) != 0 {
		t.Fatalf("idle pull answered %#x with %d bytes, want empty TJob", byte(f.Type), len(f.Payload))
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("idle pull returned after %v, should have long-polled ~80ms", elapsed)
	}
}

// TestFrameMultiplexing parks a long job pull on one stream and proves
// a rate batch on another stream overtakes it — the multiplexing the
// transport exists for — then checks the rate batch's new job wakes the
// parked pull.
func TestFrameMultiplexing(t *testing.T) {
	_, _, addr := newFrameServer(t, schedConfig(), "")
	cn := dialFrame(t, addr, "")

	if err := cn.WriteFrame(frame.TJobPull, 11, frame.AppendUint(nil, 5000)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the pull park
	ratings := []core.Rating{{User: 1, Item: 1, Liked: true}, {User: 2, Item: 1, Liked: true}}
	if err := cn.WriteFrame(frame.TRateBatch, 12, frame.AppendRateBatch(nil, ratings)); err != nil {
		t.Fatal(err)
	}

	f1, err := cn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f1.Stream != 12 || f1.Type != frame.TRateOK {
		t.Fatalf("first response is stream %d type %#x, want the rate batch overtaking the parked pull", f1.Stream, byte(f1.Type))
	}
	f2, err := cn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f2.Stream != 11 || f2.Type != frame.TJob || len(f2.Payload) == 0 {
		t.Fatalf("parked pull answered stream %d type %#x (%d bytes), want a woken TJob", f2.Stream, byte(f2.Type), len(f2.Payload))
	}
}

func TestFrameAckSemantics(t *testing.T) {
	e, _, addr := newFrameServer(t, schedConfig(), "")
	seedRatings(t, e, 2)
	cn := dialFrame(t, addr, "")

	// Single-entry batch with a bogus lease keeps the typed error.
	f := frameCall(t, cn, frame.TAckBatch, 21, frame.AppendAckBatch(nil, []frame.Ack{{Lease: 999999, Done: true}}))
	if f.Type != frame.TError {
		t.Fatalf("bogus single ack answered %#x, want TError", byte(f.Type))
	}
	code, _, _, _, err := frame.DecodeError(f.Payload)
	if err != nil || code != wire.CodeUnknownLease {
		t.Fatalf("bogus single ack code = %q, %v; want %q", code, err, wire.CodeUnknownLease)
	}

	// Multi-entry batch reports applied count; a real lease applies, the
	// bogus one is skipped turbulence.
	job, err := e.TryNextJob()
	if err != nil || job == nil {
		t.Fatalf("no job to lease: %v", err)
	}
	acks := []frame.Ack{{Lease: job.Lease, Done: false}, {Lease: 999999, Done: true}}
	f = frameCall(t, cn, frame.TAckBatch, 22, frame.AppendAckBatch(nil, acks))
	if f.Type != frame.TAckOK {
		t.Fatalf("multi ack answered %#x: %s", byte(f.Type), f.Payload)
	}
	if n, err := frame.DecodeUint(f.Payload); err != nil || n != 1 {
		t.Fatalf("multi ack applied = %d, %v; want 1", n, err)
	}
}

// TestFrameReplGating proves the trust model: the replication lane
// answers forbidden without the node-plane secret, while client lanes
// on the same connection stay usable; with the secret the gate opens
// (the plain engine then rejects replication as unsupported, which is
// the post-gate answer).
func TestFrameReplGating(t *testing.T) {
	_, _, addr := newFrameServer(t, testConfig(), "s3cret")
	batch := frame.AppendReplBatch(nil, &wire.ReplBatch{Epoch: 1, Partition: 0, Seq: 1})

	cn := dialFrame(t, addr, "wrong")
	f := frameCall(t, cn, frame.TReplBatch, 31, batch)
	if f.Type != frame.TError {
		t.Fatalf("unauthorized replicate answered %#x", byte(f.Type))
	}
	if code, _, _, _, _ := frame.DecodeError(f.Payload); code != wire.CodeForbidden {
		t.Fatalf("unauthorized replicate code = %q, want %q", code, wire.CodeForbidden)
	}
	// The same connection still serves the client lanes.
	f = frameCall(t, cn, frame.TRateBatch, 32, frame.AppendRateBatch(nil, []core.Rating{{User: 1, Item: 1, Liked: true}}))
	if f.Type != frame.TRateOK {
		t.Fatalf("client lane after forbidden replicate answered %#x", byte(f.Type))
	}

	cn2 := dialFrame(t, addr, "s3cret")
	f = frameCall(t, cn2, frame.TReplBatch, 33, batch)
	if f.Type != frame.TError {
		t.Fatalf("authorized replicate answered %#x", byte(f.Type))
	}
	if code, _, _, _, _ := frame.DecodeError(f.Payload); code != wire.CodeBadRequest {
		t.Fatalf("authorized replicate on a plain engine code = %q, want %q (past the gate)", code, wire.CodeBadRequest)
	}
}

func TestFrameHandshakeRequired(t *testing.T) {
	_, _, addr := newFrameServer(t, testConfig(), "")
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cn := frame.NewConn(c, 0)
	defer cn.Close()
	// First frame is not THello: the server drops the connection.
	if err := cn.WriteFrame(frame.TRateBatch, 1, frame.AppendRateBatch(nil, nil)); err != nil {
		t.Fatal(err)
	}
	cn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := cn.ReadFrame(); err == nil {
		t.Fatal("server answered a pre-handshake request frame")
	}
}

func TestFrameHandshakeVersionMismatch(t *testing.T) {
	_, _, addr := newFrameServer(t, testConfig(), "")
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cn := frame.NewConn(c, 0)
	defer cn.Close()
	hello := append([]byte(frame.Magic), 99) // future version
	hello = binary.AppendUvarint(hello, 0)
	if err := cn.WriteFrame(frame.THello, 1, hello); err != nil {
		t.Fatal(err)
	}
	cn.SetReadDeadline(time.Now().Add(2 * time.Second))
	f, err := cn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != frame.TError {
		t.Fatalf("version mismatch answered %#x, want TError", byte(f.Type))
	}
	if code, _, _, _, _ := frame.DecodeError(f.Payload); code != wire.CodeBadRequest {
		t.Fatalf("version mismatch code = %q", code)
	}
	if _, err := cn.ReadFrame(); err == nil {
		t.Fatal("connection survived a version mismatch")
	}
}

func TestFrameUnknownTypeAnswersError(t *testing.T) {
	_, _, addr := newFrameServer(t, testConfig(), "")
	cn := dialFrame(t, addr, "")
	f := frameCall(t, cn, frame.Type(0x7f), 41, nil)
	if f.Type != frame.TError {
		t.Fatalf("unknown frame type answered %#x, want TError", byte(f.Type))
	}
	if code, _, _, _, _ := frame.DecodeError(f.Payload); code != wire.CodeBadRequest {
		t.Fatalf("unknown frame type code = %q", code)
	}
}

// TestFrameStatsGauges checks the framed plane shows up on /stats:
// connection gauge up while connected, byte meter counting both
// directions, and back down after close.
func TestFrameStatsGauges(t *testing.T) {
	_, srv, addr := newFrameServer(t, testConfig(), "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	readStats := func() map[string]float64 {
		t.Helper()
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]float64
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	cn := dialFrame(t, addr, "")
	f := frameCall(t, cn, frame.TRateBatch, 51, frame.AppendRateBatch(nil, []core.Rating{{User: 1, Item: 1, Liked: true}}))
	if f.Type != frame.TRateOK {
		t.Fatalf("rate batch answered %#x", byte(f.Type))
	}
	m := readStats()
	if m["frame_conns"] != 1 {
		t.Fatalf("frame_conns = %v with one framed connection", m["frame_conns"])
	}
	if m["frame_bytes_total"] <= 0 {
		t.Fatalf("frame_bytes_total = %v after an exchange", m["frame_bytes_total"])
	}

	cn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if readStats()["frame_conns"] == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("frame_conns stuck at %v after close", readStats()["frame_conns"])
}

// TestFrameCloseReleasesParkedPull pins the shutdown discipline: Close
// must release a parked framed long-poll instead of waiting out its
// window.
func TestFrameCloseReleasesParkedPull(t *testing.T) {
	_, srv, addr := newFrameServer(t, schedConfig(), "")
	cn := dialFrame(t, addr, "")
	if err := cn.WriteFrame(frame.TJobPull, 61, frame.AppendUint(nil, 20000)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := cn.ReadFrame()
		done <- err
	}()
	srv.Close()
	select {
	case err := <-done:
		// Either an empty TJob before teardown or a closed connection is
		// fine; hanging is not.
		if err == nil {
			if _, err2 := cn.ReadFrame(); err2 == nil {
				t.Fatal("connection still open after server close")
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked framed pull not released by Close")
	}
}

// TestFrameOversizedFrameDropsConn proves a frame claiming an absurd
// payload length kills the connection instead of allocating.
func TestFrameOversizedFrameDropsConn(t *testing.T) {
	_, _, addr := newFrameServer(t, testConfig(), "")
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw := []byte{byte(frame.THello)}
	raw = binary.AppendUvarint(raw, 1)
	raw = binary.AppendUvarint(raw, uint64(frame.MaxPayload)+1)
	if _, err := c.Write(raw); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := c.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("read after oversized claim = %v, want EOF", err)
	}
}
