package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hyrec/internal/widget"
	"hyrec/internal/wire"
	"hyrec/internal/ws"
)

// fixedJobSource always serves the same job, so the long-poll body and
// the socket push frame can be compared byte for byte.
type fixedJobSource struct {
	*Engine
	job *wire.Job
}

func (s *fixedJobSource) NextJob(ctx context.Context) (*wire.Job, error) { return s.job, nil }

// TestV1WorkerWSByteEquivalentToLongPoll pins the acceptance criterion:
// the socket transport pushes the exact bytes the long-poll transport
// would have answered — both serialize through the pooled wire.AppendJob
// encoder — and those bytes match the generic encoding/json form.
func TestV1WorkerWSByteEquivalentToLongPoll(t *testing.T) {
	e := NewEngine(testConfig())
	defer e.Close()
	src := &fixedJobSource{
		Engine: e,
		job: &wire.Job{
			UID: 7, Epoch: 3, K: 4, R: 4,
			Lease: 99, LeaseDeadlineMS: 1717171717171, Attempt: 2,
			Profile: wire.ProfileMsg{ID: 7, Liked: []uint32{1, 2, 5}},
			Candidates: []wire.ProfileMsg{
				{ID: 11, Liked: []uint32{1, 9}},
				{ID: 12, Liked: []uint32{2}, Disliked: []uint32{4}},
			},
		},
	}
	srv := NewServer(src, 0)
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// Long-poll body, uncompressed.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/job?worker=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "identity")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("long-poll status %d, want 200", resp.StatusCode)
	}
	longPoll, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Socket push frame for the same job.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := ws.Dial(ctx, ts.URL+wire.WSWorkerPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteMessage(ws.OpText, []byte(`{"want":1}`)); err != nil {
		t.Fatal(err)
	}
	_, frame, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(frame, longPoll) {
		t.Fatalf("socket frame differs from long-poll body:\n ws: %s\n lp: %s", frame, longPoll)
	}
	generic, err := wire.EncodeJob(src.job)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, generic) {
		t.Fatalf("socket frame differs from encoding/json form:\n ws: %s\n std: %s", frame, generic)
	}
}

// TestV1WorkerWSEndToEnd drives the full protocol over one socket:
// credit → pushed leased job → widget compute → result frame → user
// refreshed; then a polite abandon via an ack frame; and checks the
// socket gauges on /stats.
func TestV1WorkerWSEndToEnd(t *testing.T) {
	e, ts := newSchedTestServer(t)
	seedRatings(t, e, 2)

	ctx, cancel := context.WithTimeout(tctx, 10*time.Second)
	defer cancel()
	conn, err := ws.Dial(ctx, ts.URL+wire.WSWorkerPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Mid-session the gauge reports the live socket. (Poll: the handler
	// bumps the gauge just after the 101 is on the wire.)
	gaugeUp := false
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if statInt(t, ts, "ws_workers") == 1 {
			gaugeUp = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !gaugeUp {
		t.Fatal("ws_workers gauge never reported the open socket")
	}

	// Job 1: compute and fold back.
	if err := conn.WriteMessage(ws.OpText, []byte(`{"want":1}`)); err != nil {
		t.Fatal(err)
	}
	_, frame, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	job, err := wire.DecodeJob(frame)
	if err != nil {
		t.Fatalf("push frame did not decode as a job: %v (%s)", err, frame)
	}
	if job.Lease == 0 {
		t.Fatalf("pushed job carries no lease: %+v", job)
	}
	res, _ := widget.New().Execute(job)
	raw, err := wire.EncodeWSClientMsg(&wire.WSClientMsg{Want: 1, Result: res})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(ws.OpText, raw); err != nil {
		t.Fatal(err)
	}

	// Job 2: abandon politely over the socket.
	_, frame, err = conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	job2, err := wire.DecodeJob(frame)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = wire.EncodeWSClientMsg(&wire.WSClientMsg{
		Ack: &wire.AckRequest{Lease: job2.Lease, Done: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(ws.OpText, raw); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e.Scheduler().Stats().Abandoned > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := e.Scheduler().Stats()
	if st.Abandoned == 0 {
		t.Fatalf("ack frame never abandoned the lease: %+v", st)
	}
	if st.Dispatched < 2 {
		t.Fatalf("scheduler dispatched %d jobs over the socket, want >= 2", st.Dispatched)
	}
	if n := statInt(t, ts, "ws_jobs_pushed_total"); n < 2 {
		t.Fatalf("ws_jobs_pushed_total = %d, want >= 2", n)
	}

	// Clean goodbye.
	conn.WriteClose(ws.CloseNormal, "done")
	conn.Close()
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if statInt(t, ts, "ws_workers") == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("ws_workers still %d after close", statInt(t, ts, "ws_workers"))
}

// TestV1WorkerWSBadMessageAnswersErrorFrame: malformed worker frames get
// an ErrorEnvelope frame back and do not kill the session.
func TestV1WorkerWSBadMessageAnswersErrorFrame(t *testing.T) {
	_, ts := newSchedTestServer(t)
	ctx, cancel := context.WithTimeout(tctx, 5*time.Second)
	defer cancel()
	conn, err := ws.Dial(ctx, ts.URL+wire.WSWorkerPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.WriteMessage(ws.OpText, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	_, frame, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if !wire.IsWSError(frame) {
		t.Fatalf("expected error frame, got %s", frame)
	}
	env, err := wire.DecodeWSError(frame)
	if err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != wire.CodeBadRequest {
		t.Fatalf("error code %q, want %q", env.Error.Code, wire.CodeBadRequest)
	}

	// The session survived: a well-formed ack for an unknown lease still
	// gets a typed error answer on the same connection.
	if err := conn.WriteMessage(ws.OpText, []byte(`{"ack":{"lease":12345,"done":true}}`)); err != nil {
		t.Fatal(err)
	}
	_, frame, err = conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if !wire.IsWSError(frame) {
		t.Fatalf("expected unknown-lease error frame, got %s", frame)
	}
}

// TestV1WorkerWSServerCloseReleasesSocket: Close() on the HTTP server
// ends idle worker sockets promptly with a going-away close.
func TestV1WorkerWSServerCloseReleasesSocket(t *testing.T) {
	e := NewEngine(schedConfig())
	defer e.Close()
	srv := NewServer(e, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(tctx, 5*time.Second)
	defer cancel()
	conn, err := ws.Dial(ctx, ts.URL+wire.WSWorkerPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Credit granted, but no work will ever arrive: the session parks in
	// the dispatch window.
	if err := conn.WriteMessage(ws.OpText, []byte(`{"want":1}`)); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := conn.ReadMessage()
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read returned a frame after server close, want close error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker socket not released by server Close")
	}
}

// statInt fetches one integer counter from GET /stats.
func statInt(t *testing.T, ts *httptest.Server, key string) int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	v, ok := m[key]
	if !ok {
		t.Fatalf("/stats has no %q: %v", key, m)
	}
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("/stats %q is %T, want number", key, v)
	}
	return int64(f)
}
