package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"hyrec/internal/wire"
	"hyrec/internal/ws"
)

// wsPingEvery is the keepalive cadence on worker sockets: the server
// pings, the worker's transport pongs, and a socket that stops pumping
// frames is torn down by the peer's read failing. Variable for tests.
var wsPingEvery = 20 * time.Second

// wsWriteGrace bounds every server→worker write: a worker that stops
// draining its socket fails the push (or the keepalive ping) within
// this window instead of wedging the session goroutines, so the lease
// it was holding expires and is reissued. Variable for tests.
var wsWriteGrace = 30 * time.Second

// handleV1WorkerWS serves GET /v1/worker/ws: the push-capable worker
// transport. One upgraded connection carries the whole worker protocol —
// the server pushes leased jobs (one per credit the worker granted,
// byte-identical payloads to the long-poll path), the worker streams
// back results and acks, and ping/pong keepalive polices liveness. The
// long-poll /v1/job?worker=1 endpoint remains the compatibility surface
// for clients that cannot hold a socket.
func (s *HTTPServer) handleV1WorkerWS(w http.ResponseWriter, r *http.Request) {
	js, ok := s.svc.(JobSource)
	if !ok {
		writeV1Error(w, http.StatusBadRequest, wire.CodeBadRequest,
			"service does not dispatch jobs to workers")
		return
	}
	conn, err := ws.Upgrade(w, r, wire.MaxBodyBytes)
	if err != nil {
		// Upgrade already answered the request.
		return
	}
	conn.SetWriteGrace(wsWriteGrace)
	s.wsWorkers.Add(1)
	defer s.wsWorkers.Add(-1)
	defer conn.Close()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	// Server shutdown (Close) releases the session immediately.
	stop := context.AfterFunc(s.dispatchCtx, cancel)
	defer stop()

	sess := &wsSession{wake: make(chan struct{}, 1)}

	// Reader: credits, results and acks flow in until the worker closes
	// (or the socket dies), which ends the session.
	go func() {
		defer cancel()
		s.readWorkerSocket(ctx, conn, sess)
	}()
	// Keepalive pinger.
	go func() {
		ticker := time.NewTicker(wsPingEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if err := conn.WritePing(nil); err != nil {
					cancel()
					return
				}
			}
		}
	}()

	// Push loop: one leased job per credit.
	for {
		if !sess.take(ctx) {
			break
		}
		job, err := s.nextJobInWindow(ctx, js)
		if err != nil {
			s.wsSendError(conn, err)
			break
		}
		if job == nil { // session over
			break
		}
		bufs := wire.GetPayloadBufs()
		raw := wire.AppendJob(bufs.JSON, job, nil)
		bufs.JSON = raw
		err = conn.WriteMessage(ws.OpText, raw)
		wire.PutPayloadBufs(bufs)
		if err != nil {
			break
		}
		if meter, ok := s.svc.(WorkerJobMeter); ok {
			meter.CountWorkerJob(job, len(raw), 0)
		}
		s.wsJobsPushed.Add(1)
	}
	// Graceful goodbye for the cases where the session ended server-side
	// (shutdown, dispatch error); a no-op if the worker closed first.
	conn.WriteClose(ws.CloseGoingAway, "")
}

// nextJobInWindow blocks on the job source until work, session end, or a
// dispatch error, re-polling early nils exactly like the long-poll
// handler so a mid-Evict wake cannot stall a credited worker.
func (s *HTTPServer) nextJobInWindow(ctx context.Context, js JobSource) (*wire.Job, error) {
	for {
		job, err := js.NextJob(ctx)
		if err != nil {
			return nil, err
		}
		if job != nil {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return nil, nil
		case <-time.After(workerRepollEvery):
		}
	}
}

// readWorkerSocket drains worker→server messages until the socket ends.
func (s *HTTPServer) readWorkerSocket(ctx context.Context, conn *ws.Conn, sess *wsSession) {
	la, canAck := s.svc.(LeaseAcker)
	for {
		_, frame, err := conn.ReadMessage()
		if err != nil {
			return
		}
		msg, err := wire.DecodeWSClientMsg(frame)
		if err != nil {
			s.wsSendErrorCode(conn, wire.CodeBadRequest, err.Error())
			continue
		}
		if msg.Want > 0 {
			sess.grant(msg.Want)
		}
		if msg.Result != nil {
			if _, err := s.svc.ApplyResult(ctx, msg.Result); err != nil {
				s.wsSendError(conn, err)
			} else {
				s.touchResult(msg.Result)
			}
		}
		if msg.Ack != nil {
			if !canAck {
				s.wsSendErrorCode(conn, wire.CodeBadRequest, "service does not manage leases")
				continue
			}
			if err := la.Ack(ctx, msg.Ack.Lease, msg.Ack.Done); err != nil {
				s.wsSendError(conn, err)
			}
		}
	}
}

// wsSendError pushes a service error to the worker as an ErrorEnvelope
// frame (the socket analogue of a non-2xx response). Transport failures
// are ignored — the session is ending anyway.
func (s *HTTPServer) wsSendError(conn *ws.Conn, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	_, code := statusForErr(err)
	s.wsSendErrorCode(conn, code, err.Error())
}

func (s *HTTPServer) wsSendErrorCode(conn *ws.Conn, code, msg string) {
	env := wire.ErrorEnvelope{Error: wire.ErrorBody{Code: code, Message: msg}}
	raw, err := json.Marshal(env)
	if err != nil {
		return
	}
	conn.WriteMessage(ws.OpText, raw)
}

// wsSession is the per-connection credit ledger: the worker grants
// credits sized to its compute capacity, the push loop spends them.
type wsSession struct {
	mu      sync.Mutex
	credits int
	wake    chan struct{}
}

func (w *wsSession) grant(n int) {
	w.mu.Lock()
	w.credits += n
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// take blocks until one credit is available (true) or the session ends
// (false).
func (w *wsSession) take(ctx context.Context) bool {
	for {
		w.mu.Lock()
		if w.credits > 0 {
			w.credits--
			w.mu.Unlock()
			return true
		}
		w.mu.Unlock()
		select {
		case <-ctx.Done():
			return false
		case <-w.wake:
		}
	}
}
