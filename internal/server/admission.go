package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"hyrec/internal/admit"
	"hyrec/internal/wire"
)

// Admission control (ROADMAP item 5): every request entering the HTTP
// mux or the framed listener is classified — rating ingest, worker job
// traffic, rec/neighbor reads — and must clear the gate before any
// service work happens. A full class answers a typed overloaded
// rejection with a retry-after hint instead of queueing without bound:
// 429 {"error":{"code":"overloaded"}} + Retry-After on HTTP, a TError
// carrying the same code and hint on the framed plane. The node plane
// (/v1/replicate, /v1/nodes, TReplBatch) and the worker WebSocket
// upgrade are not gated: peers and attached sockets are already
// bounded by membership and connection counts, and shedding
// replication would trade memory for durability.

// ErrOverloaded is returned when the admission gate sheds a request
// because its class's bounded queue is full. Mapped to HTTP 429 /
// CodeOverloaded; the typed client backs off the hinted duration and
// retries once.
var ErrOverloaded = errors.New("server: overloaded, admission queue full")

// newGate builds the admission gate for a service's configuration. A
// service without Configured (or with all bounds zero) gets a gate
// that never sheds but still counts inflight per class.
func newGate(svc Service) *admit.Gate {
	var cfg Config
	if c, ok := svc.(Configured); ok {
		cfg = c.Config()
	}
	return admit.New(admit.Config{
		MaxRating: cfg.MaxInflightRating,
		MaxWorker: cfg.MaxInflightWorker,
		MaxRead:   cfg.MaxInflightRead,
	})
}

// Gate exposes the admission gate (read-only use: stats, tests).
func (s *HTTPServer) Gate() *admit.Gate { return s.gate }

// admitHTTP acquires an admission slot of class c for r, or writes the
// typed 429 and reports ok=false. On ok=true the caller must invoke
// release exactly once when the request finishes (including the full
// parked window of a worker long-poll — a parked poll is held
// capacity, which is precisely what the worker bound meters).
func (s *HTTPServer) admitHTTP(w http.ResponseWriter, r *http.Request, c admit.Class) (release func(), ok bool) {
	release, ok = s.gate.Acquire(r.Context(), c)
	if !ok {
		s.writeOverloaded(w, c.String()+" queue full")
		return nil, false
	}
	return release, true
}

// writeOverloaded answers the typed shed envelope: 429 with a
// Retry-After header in whole seconds (rounded up, per RFC 9110) and
// the finer-grained retry_after_ms inside the error body.
func (s *HTTPServer) writeOverloaded(w http.ResponseWriter, msg string) {
	ra := s.gate.RetryAfter()
	secs := int64((ra + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, http.StatusTooManyRequests, wire.ErrorEnvelope{Error: wire.ErrorBody{
		Code:         wire.CodeOverloaded,
		Message:      msg,
		RetryAfterMS: int64(ra / time.Millisecond),
	}})
}
