package server

import (
	"container/list"
	"sync"

	"hyrec/internal/core"
)

// defaultRecCapacity bounds the per-user last-recommendations store. A
// long-lived server under user churn would otherwise grow one entry per
// user ever seen; recommendations older than the eviction horizon are
// recomputed on the next personalization cycle anyway.
const defaultRecCapacity = 4096

// recStore is a fixed-capacity LRU of each user's most recent
// recommendations. Safe for concurrent use.
type recStore struct {
	mu  sync.Mutex
	cap int
	ll  *list.List                    // front = most recently used
	idx map[core.UserID]*list.Element // user → element in ll
}

type recEntry struct {
	user core.UserID
	recs []core.ItemID
}

// newRecStore builds a store retaining the last capacity users
// (defaultRecCapacity when capacity <= 0).
func newRecStore(capacity int) *recStore {
	if capacity <= 0 {
		capacity = defaultRecCapacity
	}
	return &recStore{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[core.UserID]*list.Element, capacity),
	}
}

// Put records u's latest recommendations, evicting the least recently
// used entry when the store is full.
func (s *recStore) Put(u core.UserID, recs []core.ItemID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.idx[u]; ok {
		el.Value.(*recEntry).recs = recs
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.idx, oldest.Value.(*recEntry).user)
		}
	}
	s.idx[u] = s.ll.PushFront(&recEntry{user: u, recs: recs})
}

// Get returns u's last recommendations (nil when unknown or evicted) and
// refreshes its recency.
func (s *recStore) Get(u core.UserID) []core.ItemID {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.idx[u]
	if !ok {
		return nil
	}
	s.ll.MoveToFront(el)
	return el.Value.(*recEntry).recs
}

// PutIfAbsent records u's recommendations only when none are retained,
// reporting whether it stored — atomic, so a state import can never
// clobber a fresher entry a concurrent fold-in just wrote.
func (s *recStore) PutIfAbsent(u core.UserID, recs []core.ItemID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.idx[u]; ok {
		return false
	}
	if s.ll.Len() >= s.cap {
		if oldest := s.ll.Back(); oldest != nil {
			s.ll.Remove(oldest)
			delete(s.idx, oldest.Value.(*recEntry).user)
		}
	}
	s.idx[u] = s.ll.PushFront(&recEntry{user: u, recs: recs})
	return true
}

// Delete drops u's entry (no-op when absent). Used when u's ownership
// migrates to a sibling partition.
func (s *recStore) Delete(u core.UserID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.idx[u]; ok {
		s.ll.Remove(el)
		delete(s.idx, u)
	}
}

// Len reports the number of retained users.
func (s *recStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}
