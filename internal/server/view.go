package server

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"hyrec/internal/core"
)

// This file implements the epoch-pinned copy-on-write read path for job
// assembly. The authoritative Profile and KNN tables stay lock-sharded
// (tables.go); what changes is how the Sampler and the candidate-profile
// loader read them. Instead of taking a shard RWMutex per candidate
// lookup — dozens of lock acquisitions per job, all contending with the
// rating ingest path — the engine publishes an immutable TableView and
// each job assembly pins one view for its whole duration: every lookup
// after the pin is a plain map read with no synchronization at all.
//
// Freshness is generation-driven and deterministic: every table write
// bumps a table-level counter, and pinning compares three atomic counters
// against the published view's stamp. A stale view is rebuilt before use,
// but copy-on-write at shard granularity keeps the rebuild proportional
// to what actually changed — clean shards carry their map pointer over,
// only dirty shards are re-copied under a brief RLock. Sequential
// workloads therefore always observe their own writes (pin-after-write
// rebuilds exactly the dirty shards), while concurrent workloads accept
// bounded staleness: a pin that loses the rebuild TryLock race runs on
// the previous view, which is at most one write burst old. Bounded
// staleness of *candidate* data is free in HyRec — the KNN table is an
// approximation by design, and the requesting user's own profile is
// always read fresh from the authoritative table.
//
// Config.DisableTableSnapshots retains the per-lookup locking path, both
// as an ablation and as the baseline the capacity benchmark
// (internal/bench, TestHotPathAllocReduction) measures the win against.

// TableView is an immutable point-in-time view of one engine's Profile
// and KNN tables. All methods are safe for unsynchronized concurrent use
// by any number of readers.
type TableView struct {
	// Gen stamps: the table-level generation counters observed before
	// the shards were copied. A view may contain slightly newer data
	// than its stamp (a write can land mid-rebuild) — never older — so
	// comparing stamps against the live counters errs toward rebuilding.
	profGen   uint64
	knnGen    uint64
	rosterGen uint64

	// Per-shard generations recorded at copy time, so the next rebuild
	// re-copies only shards that changed since.
	profShardGen [numShards]uint64
	knnShardGen  [numShards]uint64

	profiles [numShards]map[core.UserID]core.Profile
	knn      [numShards]map[core.UserID][]core.UserID
	roster   []core.UserID
}

// Profile returns u's profile at view time. Users registered after the
// view was pinned report ok=false (callers fall back to the live table).
func (v *TableView) Profile(u core.UserID) (core.Profile, bool) {
	p, ok := v.profiles[shardOf(u)][u]
	return p, ok
}

// KNN returns u's neighbor list at view time (nil when none was stored).
// The slice is immutable by the KNN table's contract.
func (v *TableView) KNN(u core.UserID) []core.UserID {
	return v.knn[shardOf(u)][u]
}

// NumUsers returns the roster size at view time.
func (v *TableView) NumUsers() int { return len(v.roster) }

// randomUsers mirrors ProfileTable.RandomUsers against the pinned roster:
// identical draw sequence and dedup semantics (so a snapshot run is
// bit-equivalent to a locked run over the same state), but lock-free and
// deduplicating via linear scan over the output — n is at most a few
// dozen, and the scan beats a map allocation at that size. Results are
// appended to dst.
func (v *TableView) randomUsers(dst []core.UserID, rng *rand.Rand, n int, exclude core.UserID) []core.UserID {
	total := len(v.roster)
	if total == 0 || n <= 0 {
		return dst
	}
	base := len(dst)
	for attempts := 0; len(dst)-base < n && attempts < 8*n; attempts++ {
		u := v.roster[rng.Intn(total)]
		if u == exclude {
			continue
		}
		dup := false
		for _, got := range dst[base:] {
			if got == u {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		dst = append(dst, u)
	}
	return dst
}

// viewState is the engine-side holder of the published view. mu is the
// single-flight rebuild slot: pinners TryLock it so the hot path never
// blocks behind a sibling's rebuild.
type viewState struct {
	cur atomic.Pointer[TableView]
	mu  sync.Mutex
}

func newViewState() *viewState { return &viewState{} }

// pinView returns a view no staler than the tables were when the call
// began, or — if another goroutine is mid-rebuild — the most recently
// published view. Returns nil when snapshots are disabled.
func (e *Engine) pinView() *TableView {
	vs := e.views
	if vs == nil {
		return nil
	}
	v := vs.cur.Load()
	pg, kg, rg := e.profiles.gen.Load(), e.knn.gen.Load(), e.profiles.rosterGen.Load()
	if v != nil && v.profGen == pg && v.knnGen == kg && v.rosterGen == rg {
		return v
	}
	if !vs.mu.TryLock() {
		// A sibling is rebuilding. Use whatever is published rather than
		// blocking the hot path; if nothing has ever been published,
		// wait for the first build.
		if v != nil {
			return v
		}
		vs.mu.Lock()
	}
	defer vs.mu.Unlock()
	// Re-check under the lock: a racing rebuild may have published a
	// fresh-enough view while we acquired.
	v = vs.cur.Load()
	if v == nil || v.profGen != pg || v.knnGen != kg || v.rosterGen != rg {
		v = e.rebuildView(v)
		vs.cur.Store(v)
	}
	return v
}

// rebuildView builds a view incrementally on top of prev: shards whose
// generation is unchanged carry their immutable map over; dirty shards
// are copied under their RLock. prev may be nil (full build).
func (e *Engine) rebuildView(prev *TableView) *TableView {
	nv := &TableView{
		// Stamp before copying: the view can only be newer than its
		// stamp, so staleness checks stay conservative.
		profGen:   e.profiles.gen.Load(),
		knnGen:    e.knn.gen.Load(),
		rosterGen: e.profiles.rosterGen.Load(),
	}
	for i := range e.profiles.shards {
		s := &e.profiles.shards[i]
		s.mu.RLock()
		if prev != nil && prev.profShardGen[i] == s.gen {
			nv.profiles[i] = prev.profiles[i]
		} else {
			m := make(map[core.UserID]core.Profile, len(s.m))
			for u, p := range s.m {
				m[u] = p
			}
			nv.profiles[i] = m
		}
		nv.profShardGen[i] = s.gen
		s.mu.RUnlock()
	}
	for i := range e.knn.shards {
		s := &e.knn.shards[i]
		s.mu.RLock()
		if prev != nil && prev.knnShardGen[i] == s.gen {
			nv.knn[i] = prev.knn[i]
		} else {
			m := make(map[core.UserID][]core.UserID, len(s.m))
			for u, ns := range s.m {
				m[u] = ns
			}
			nv.knn[i] = m
		}
		nv.knnShardGen[i] = s.gen
		s.mu.RUnlock()
	}
	e.profiles.rosterMu.RLock()
	// Generation equality, not length equality: migration removals can
	// net out against registrations, leaving the length unchanged while
	// the membership differs.
	if prev != nil && prev.rosterGen == nv.rosterGen {
		nv.roster = prev.roster
	} else {
		nv.roster = make([]core.UserID, len(e.profiles.roster))
		copy(nv.roster, e.profiles.roster)
	}
	e.profiles.rosterMu.RUnlock()
	return nv
}

// SnapshotProfile returns u's profile through the published view when
// snapshots are enabled (lock-free for any user the view knows), falling
// back to the authoritative table. The cluster's cross-partition profile
// resolver reads sibling partitions through this, so foreign candidate
// lookups stop taking sibling shard locks too.
func (e *Engine) SnapshotProfile(u core.UserID) core.Profile {
	if v := e.pinView(); v != nil {
		if p, ok := v.Profile(u); ok {
			return p
		}
	}
	return e.profiles.Get(u)
}
