package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hyrec/internal/wire"
)

// evictWakeSource wraps an Engine and reproduces the dispatch race of a
// scale-in: the first NextJob call answers nil immediately — the
// scheduler woken mid-Evict sees an empty queue for an instant — and
// later calls block until "work arrives" (the evicted users re-marked
// stale on their new partition), then serve a leased job.
type evictWakeSource struct {
	*Engine
	workReady chan struct{}
	job       *wire.Job

	mu    sync.Mutex
	calls int
}

func (s *evictWakeSource) NextJob(ctx context.Context) (*wire.Job, error) {
	s.mu.Lock()
	s.calls++
	first := s.calls == 1
	s.mu.Unlock()
	if first {
		return nil, nil
	}
	select {
	case <-ctx.Done():
		return nil, nil
	case <-s.workReady:
		return s.job, nil
	}
}

// TestV1WorkerLongPollSurvivesEvictRace is the regression test for the
// scale-in early-204: a long-poll whose first NextJob answers nil (the
// mid-Evict wake) must keep polling for the remaining wait window and
// pick up work that arrives mid-window instead of parking until the
// deadline and answering an idle 204.
func TestV1WorkerLongPollSurvivesEvictRace(t *testing.T) {
	e := NewEngine(testConfig())
	defer e.Close()
	src := &evictWakeSource{
		Engine:    e,
		workReady: make(chan struct{}),
		job:       &wire.Job{UID: 42, Epoch: 1, K: 4, R: 4, Lease: 7, Attempt: 1},
	}
	srv := NewServer(src, 0)
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// Work becomes available well inside the 2s window.
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(src.workReady)
	}()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/job?worker=1&wait=2s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode == http.StatusNoContent {
		t.Fatalf("long-poll answered idle 204 after %v despite work arriving at ~100ms", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("long-poll status %d, want 200", resp.StatusCode)
	}
	if elapsed > time.Second {
		t.Fatalf("long-poll took %v to serve work that arrived at ~100ms", elapsed)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	job, err := wire.DecodeJob(body)
	if err != nil {
		t.Fatal(err)
	}
	if job.UID != 42 || job.Lease != 7 {
		t.Fatalf("served wrong job: %+v", job)
	}
}
