package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hyrec/internal/core"
)

func TestPresenceOnlineWindow(t *testing.T) {
	p := newPresence()
	clock := time.Unix(1000, 0)
	p.now = func() time.Time { return clock }

	p.Touch(1)
	p.Touch(2)
	clock = clock.Add(2 * time.Minute)
	p.Touch(3)

	if got := p.Online(5 * time.Minute); got != 3 {
		t.Fatalf("online = %d, want 3", got)
	}
	// 1 and 2 age out of a 1-minute window.
	if got := p.Online(time.Minute); got != 1 {
		t.Fatalf("online(1m) = %d, want 1", got)
	}
}

func TestPresencePrunesAncientEntries(t *testing.T) {
	p := newPresence()
	clock := time.Unix(1000, 0)
	p.now = func() time.Time { return clock }

	p.Touch(1)
	clock = clock.Add(100 * time.Minute) // > 10× a 5-minute window
	p.Touch(2)
	if got := p.Online(5 * time.Minute); got != 1 {
		t.Fatalf("online = %d, want 1", got)
	}
	if !p.LastSeen(1).IsZero() {
		t.Fatal("ancient entry not pruned")
	}
	if p.LastSeen(2).IsZero() {
		t.Fatal("fresh entry lost")
	}
}

func TestPresenceLastSeen(t *testing.T) {
	p := newPresence()
	if !p.LastSeen(9).IsZero() {
		t.Fatal("unseen user has a timestamp")
	}
	p.Touch(9)
	if p.LastSeen(9).IsZero() {
		t.Fatal("touched user has no timestamp")
	}
}

func TestStatsReportsOnlineUsers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true
	e := NewEngine(cfg)
	for u := core.UserID(1); u <= 5; u++ {
		e.Rate(tctx, u, 1, true)
	}
	s := NewHTTPServer(e, 0)
	h := s.Handler()

	// Two users show up; stats must count them online.
	for _, uid := range []string{"1", "2"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/online?uid="+uid, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/online?uid=%s: %d", uid, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["online_users"] != 2 {
		t.Fatalf("online_users = %d, want 2 (stats: %v)", stats["online_users"], stats)
	}
	if stats["users"] != 5 {
		t.Fatalf("users = %d, want 5", stats["users"])
	}
}

func TestPresenceConcurrent(t *testing.T) {
	p := newPresence()
	done := make(chan struct{})
	for g := 0; g < 6; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 300; i++ {
				p.Touch(core.UserID(i % 50))
				p.Online(time.Minute)
			}
		}(g)
	}
	for g := 0; g < 6; g++ {
		<-done
	}
}
