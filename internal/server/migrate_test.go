package server

import (
	"context"
	"testing"

	"hyrec/internal/core"
)

func migCtx() context.Context { return context.Background() }

// TestExportImportRoundTrip: exporting users from one engine and
// importing them into a fresh one reproduces profiles byte-for-byte and
// carries KNN rows and retained recommendations along.
func TestExportImportRoundTrip(t *testing.T) {
	src := NewEngine(DefaultConfig())
	dst := NewEngine(DefaultConfig())
	ctx := migCtx()

	users := []core.UserID{3, 7, 11}
	for _, u := range users {
		for j := 0; j < 4; j++ {
			src.Rate(ctx, u, core.ItemID(uint32(u)*10+uint32(j)), j%2 == 0)
		}
		src.KNN().Put(u, []core.UserID{u + 1, u + 2})
		src.recs.Put(u, []core.ItemID{core.ItemID(u * 100)})
	}

	states := src.ExportUsers(append(users, 9999)) // 9999 unknown: skipped
	if len(states) != len(users) {
		t.Fatalf("exported %d states, want %d", len(states), len(users))
	}
	dst.ImportUsers(states)

	for _, u := range users {
		if !dst.KnownUser(u) {
			t.Fatalf("user %d not known after import", u)
		}
		sp, dp := src.Profiles().Get(u), dst.Profiles().Get(u)
		if !sp.Equal(dp) {
			t.Fatalf("user %d: profile diverged: %v vs %v", u, sp, dp)
		}
		hood, _ := dst.Neighbors(ctx, u)
		if len(hood) != 2 || hood[0] != u+1 || hood[1] != u+2 {
			t.Fatalf("user %d: KNN row not imported: %v", u, hood)
		}
		recs, _ := dst.Recommendations(ctx, u, 0)
		if len(recs) != 1 || recs[0] != core.ItemID(u*100) {
			t.Fatalf("user %d: recs not imported: %v", u, recs)
		}
	}
}

// TestImportMergePrefersDestination: opinions the destination recorded
// after routing flipped (newer than the export) survive the import —
// including a flip of the same item — and a KNN row the destination
// already refreshed is kept.
func TestImportMergePrefersDestination(t *testing.T) {
	src := NewEngine(DefaultConfig())
	dst := NewEngine(DefaultConfig())
	ctx := migCtx()
	const u = core.UserID(42)

	src.Rate(ctx, u, 1, true)
	src.Rate(ctx, u, 2, true) // will be flipped on dst
	src.KNN().Put(u, []core.UserID{7})

	// Destination state recorded after the routing flip.
	dst.Rate(ctx, u, 2, false) // flip: newer opinion wins
	dst.Rate(ctx, u, 3, true)  // new item
	dst.KNN().Put(u, []core.UserID{9})

	dst.ImportUsers(src.ExportUsers([]core.UserID{u}))

	p := dst.Profiles().Get(u)
	if !p.LikedContains(1) {
		t.Fatal("imported opinion (item 1) lost")
	}
	if p.LikedContains(2) {
		t.Fatal("destination's flip of item 2 overwritten by the import")
	}
	if !p.Contains(2) {
		t.Fatal("item 2 vanished entirely")
	}
	if !p.LikedContains(3) {
		t.Fatal("destination's new opinion (item 3) lost")
	}
	hood, _ := dst.Neighbors(ctx, u)
	if len(hood) != 1 || hood[0] != 9 {
		t.Fatalf("destination's fresher KNN row overwritten: %v", hood)
	}
}

// TestRemoveUsers: removal deletes profile, roster entry, KNN row and
// rec cache; the roster swap keeps every other user sampleable exactly
// once; and the copy-on-write view layer observes the deletion.
func TestRemoveUsers(t *testing.T) {
	e := NewEngine(DefaultConfig())
	ctx := migCtx()
	for u := core.UserID(1); u <= 20; u++ {
		e.Rate(ctx, u, core.ItemID(u), true)
		e.KNN().Put(u, []core.UserID{u%20 + 1})
	}
	// Warm the view so the rebuild path (not the cold build) is what
	// the deletion exercises.
	if _, _, err := e.JobPayload(5); err != nil {
		t.Fatal(err)
	}

	victims := []core.UserID{5, 10, 15}
	e.RemoveUsers(victims)

	for _, u := range victims {
		if e.KnownUser(u) {
			t.Fatalf("user %d still known after removal", u)
		}
		if hood := e.KNN().Get(u); hood != nil {
			t.Fatalf("user %d KNN row survived removal: %v", u, hood)
		}
		if recs, _ := e.Recommendations(ctx, u, 0); len(recs) != 0 {
			t.Fatalf("user %d recs survived removal: %v", u, recs)
		}
	}
	if got := e.Profiles().Len(); got != 17 {
		t.Fatalf("roster length %d after removing 3 of 20", got)
	}
	seen := map[core.UserID]int{}
	for _, u := range e.Profiles().Users() {
		seen[u]++
	}
	for u, n := range seen {
		if n != 1 {
			t.Fatalf("user %d appears %d times in roster after swap-remove", u, n)
		}
	}
	for _, v := range victims {
		if _, ok := seen[v]; ok {
			t.Fatalf("removed user %d still in roster", v)
		}
	}
	// The view layer must never hand a deleted user to a sampler: draw
	// a large batch through the snapshot path and check.
	for i := 0; i < 50; i++ {
		for _, u := range e.RandomUsers(10, 0) {
			if u == 5 || u == 10 || u == 15 {
				t.Fatalf("deleted user %d surfaced from the post-delete view roster", u)
			}
		}
	}
}

// TestRosterDeleteThenRegisterSameLength: a deletion followed by a
// registration nets the roster length out — the generation counter,
// not the length, is what invalidates the view's roster copy.
func TestRosterDeleteThenRegisterSameLength(t *testing.T) {
	e := NewEngine(DefaultConfig())
	ctx := migCtx()
	for u := core.UserID(1); u <= 8; u++ {
		e.Rate(ctx, u, 1, true)
	}
	if _, _, err := e.JobPayload(1); err != nil { // publish a view
		t.Fatal(err)
	}
	e.RemoveUsers([]core.UserID{4})
	e.Rate(ctx, 100, 1, true) // same roster length as before

	// A fresh draw must be able to see user 100 and never user 4.
	saw100 := false
	for i := 0; i < 200 && !saw100; i++ {
		for _, u := range e.RandomUsers(7, 0) {
			if u == 4 {
				t.Fatal("deleted user 4 drawn from a stale view roster")
			}
			if u == 100 {
				saw100 = true
			}
		}
	}
	if !saw100 {
		t.Fatal("newly registered user never drawn; view roster stuck on stale copy")
	}
}

// TestRemoveUsersBlocksResurrection: after a migration removes a user,
// a straggler write (from a racer that pinned the old topology) cannot
// resurrect the drained entry — but a later import moving the user
// back lifts the block.
func TestRemoveUsersBlocksResurrection(t *testing.T) {
	e := NewEngine(DefaultConfig())
	ctx := migCtx()
	const u = core.UserID(8)
	e.Rate(ctx, u, 1, true)
	st := e.ExportUsers([]core.UserID{u})
	e.RemoveUsers([]core.UserID{u})

	e.Rate(ctx, u, 2, true) // straggler write
	if e.KnownUser(u) {
		t.Fatal("straggler write resurrected a removed user")
	}
	e.RegisterUser(u)
	if e.KnownUser(u) {
		t.Fatal("straggler registration resurrected a removed user")
	}

	// The user moves back: import lifts the block, writes work again.
	e.ImportUsers(st)
	if !e.KnownUser(u) || !e.Profiles().Get(u).LikedContains(1) {
		t.Fatal("re-import after entombment failed")
	}
	e.Rate(ctx, u, 3, true)
	if !e.Profiles().Get(u).LikedContains(3) {
		t.Fatal("writes still blocked after re-import")
	}
}
