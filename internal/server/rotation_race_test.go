package server

import (
	"errors"
	"sync"
	"testing"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// Regression test: job assembly must pin one anonymiser epoch. Before the
// AliasView fix, Job could stamp epoch E while minting aliases under E+1
// when RotateAnonymizer ran concurrently; the server would then resolve
// the returned aliases under the wrong permutation, yielding a random —
// almost surely unregistered — user, silently corrupting the KNN table.
// With only a handful of registered users in a 2³²-ID space, any such
// mis-resolution shows up as ErrUnknownUser.
func TestJobEpochConsistentUnderRotation(t *testing.T) {
	cfg := DefaultConfig()
	e := NewEngine(cfg)
	const users = 20
	for u := core.UserID(1); u <= users; u++ {
		e.Rate(tctx, u, core.ItemID(u%5), true)
	}

	stop := make(chan struct{})
	var rotWG sync.WaitGroup
	rotWG.Add(1)
	go func() {
		defer rotWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.RotateAnonymizer()
			}
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				u := core.UserID(i%users + 1)
				job, err := e.Job(tctx, u)
				if err != nil {
					errCh <- err
					return
				}
				_, err = e.ApplyResult(tctx, &wire.Result{UID: job.UID, Epoch: job.Epoch})
				// Stale is legitimate under a fast rotator (≥2 epochs
				// passed in flight); unknown-user means the epoch stamp
				// and the aliases diverged.
				if err != nil && !errors.Is(err, ErrStaleEpoch) {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	rotWG.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("epoch/alias divergence under rotation: %v", err)
	default:
	}
}
