package server

import (
	"bytes"
	"context"
	"testing"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// This file certifies the zero-allocation hot path: epoch-pinned table
// snapshots (view.go) plus pooled encode buffers must cut job-assembly +
// encode allocations by at least half versus the retained lock-based
// baseline (Config.DisableTableSnapshots + per-call buffers), while
// producing byte-identical payloads. The capacity benchmark
// (internal/bench) tracks the same quantities over time in
// BENCH_hotpath.json.

// hotPathEngine builds a churned engine: users ratings and a converged-ish
// KNN graph so candidate sets exercise one-hop, two-hop and random picks.
func hotPathEngine(t testing.TB, cfg Config, users, items int) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	ctx := context.Background()
	for u := 1; u <= users; u++ {
		for j := 0; j < 8; j++ {
			item := core.ItemID((u*7 + j*13) % items)
			if err := e.Rate(ctx, core.UserID(u), item, j%3 != 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Seed KNN rows directly (deterministic, no widget round-trip): each
	// user points at the next few users, giving two-hop fan-out.
	for u := 1; u <= users; u++ {
		var hood []core.UserID
		for d := 1; d <= cfg.K; d++ {
			hood = append(hood, core.UserID((u+d-1)%users+1))
		}
		e.KNN().Put(core.UserID(u), hood)
	}
	return e
}

// measureJobPayloadAllocs reports allocations per AppendJobPayload call
// with pooled buffers after a warmup pass that populates the pools and
// the serialized-profile cache.
func measureJobPayloadAllocs(t testing.TB, e *Engine, users, rounds int) float64 {
	t.Helper()
	bufs := wire.GetPayloadBufs()
	defer wire.PutPayloadBufs(bufs)
	run := func() {
		for u := 1; u <= users; u++ {
			j, g, err := e.AppendJobPayload(context.Background(), core.UserID(u), bufs.JSON[:0], bufs.Gz[:0])
			if err != nil {
				t.Fatal(err)
			}
			bufs.JSON, bufs.Gz = j, g
		}
	}
	run() // warm pools, caches and buffer capacities
	allocs := testing.AllocsPerRun(rounds, run)
	return allocs / float64(users)
}

// measureBaselineAllocs reports allocations per JobPayload call on the
// retained lock-based baseline: fresh output buffers per call, per-lookup
// shard locks during candidate assembly.
func measureBaselineAllocs(t testing.TB, e *Engine, users, rounds int) float64 {
	t.Helper()
	run := func() {
		for u := 1; u <= users; u++ {
			if _, _, err := e.JobPayload(core.UserID(u)); err != nil {
				t.Fatal(err)
			}
		}
	}
	run()
	allocs := testing.AllocsPerRun(rounds, run)
	return allocs / float64(users)
}

// TestHotPathAllocReduction is the PR's acceptance gate: the snapshot
// read path with pooled encoders must allocate at most half of what the
// locked baseline does per assembled-and-encoded job.
func TestHotPathAllocReduction(t *testing.T) {
	const users, items = 256, 500

	base := DefaultConfig()
	base.DisableTableSnapshots = true
	baseline := hotPathEngine(t, base, users, items)
	defer baseline.Close()

	opt := DefaultConfig()
	optimized := hotPathEngine(t, opt, users, items)
	defer optimized.Close()

	baseAllocs := measureBaselineAllocs(t, baseline, users, 5)
	optAllocs := measureJobPayloadAllocs(t, optimized, users, 5)

	t.Logf("allocs/op: baseline=%.1f optimized=%.1f (ratio %.2f)",
		baseAllocs, optAllocs, optAllocs/baseAllocs)
	bound := baseAllocs / 2
	if raceEnabled {
		// sync.Pool drops a fraction of Puts under the race detector,
		// so the pooled path cannot reach its real ratio (~0.06); only
		// assert a meaningful reduction there.
		bound = baseAllocs * 3 / 4
	}
	if optAllocs > bound {
		t.Fatalf("hot path allocates %.1f/op, want <= %.1f (baseline %.1f/op)", optAllocs, bound, baseAllocs)
	}
}

// TestSnapshotPathByteEquivalence: for identical engine state and seeds,
// the snapshot read path must serve byte-identical payloads to the locked
// baseline — the optimization may not change the protocol.
func TestSnapshotPathByteEquivalence(t *testing.T) {
	const users, items = 64, 200

	base := DefaultConfig()
	base.DisableTableSnapshots = true
	locked := hotPathEngine(t, base, users, items)
	defer locked.Close()

	snap := hotPathEngine(t, DefaultConfig(), users, items)
	defer snap.Close()

	for u := 1; u <= users; u++ {
		lj, lg, err := locked.JobPayload(core.UserID(u))
		if err != nil {
			t.Fatal(err)
		}
		sj, sg, err := snap.JobPayload(core.UserID(u))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lj, sj) {
			t.Fatalf("user %d: snapshot JSON differs from locked baseline:\n locked %s\n snap   %s", u, lj, sj)
		}
		if !bytes.Equal(lg, sg) {
			t.Fatalf("user %d: snapshot gzip differs from locked baseline", u)
		}
	}
}

// TestSnapshotReadPathSeesSequentialWrites pins the freshness contract:
// a pin after a write always observes the write (rebuilds are
// generation-driven, not time-driven), so sequential workloads cannot
// read stale candidate data.
func TestSnapshotReadPathSeesSequentialWrites(t *testing.T) {
	e := NewEngine(DefaultConfig())
	defer e.Close()
	ctx := context.Background()

	for i := 1; i <= 50; i++ {
		u := core.UserID(i)
		if err := e.Rate(ctx, u, core.ItemID(i*3), true); err != nil {
			t.Fatal(err)
		}
		v := e.pinView()
		if v == nil {
			t.Fatal("snapshots enabled but pinView returned nil")
		}
		p, ok := v.Profile(u)
		if !ok {
			t.Fatalf("view misses user %d registered before the pin", u)
		}
		if !p.LikedContains(core.ItemID(i * 3)) {
			t.Fatalf("view serves stale profile for user %d", u)
		}
		e.KNN().Put(u, []core.UserID{core.UserID(i%7 + 1)})
		if got := e.pinView().KNN(u); len(got) != 1 || got[0] != core.UserID(i%7+1) {
			t.Fatalf("view serves stale KNN row for user %d: %v", u, got)
		}
	}
	if n := e.pinView().NumUsers(); n != 50 {
		t.Fatalf("view roster has %d users, want 50", n)
	}
}

func BenchmarkJobAssemblyEncode(b *testing.B) {
	const users, items = 256, 500
	for _, mode := range []struct {
		name     string
		snapshot bool
	}{{"locked", false}, {"snapshot", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.DisableTableSnapshots = !mode.snapshot
			e := hotPathEngine(b, cfg, users, items)
			defer e.Close()
			bufs := wire.GetPayloadBufs()
			defer wire.PutPayloadBufs(bufs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := core.UserID(i%users + 1)
				if mode.snapshot {
					j, g, err := e.AppendJobPayload(context.Background(), u, bufs.JSON[:0], bufs.Gz[:0])
					if err != nil {
						b.Fatal(err)
					}
					bufs.JSON, bufs.Gz = j, g
				} else {
					if _, _, err := e.JobPayload(u); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkJobAssemblyEncodeParallel measures the contended case the
// snapshot path exists for: many goroutines assembling jobs at once.
func BenchmarkJobAssemblyEncodeParallel(b *testing.B) {
	const users, items = 256, 500
	for _, mode := range []struct {
		name     string
		snapshot bool
	}{{"locked", false}, {"snapshot", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.DisableTableSnapshots = !mode.snapshot
			e := hotPathEngine(b, cfg, users, items)
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				bufs := wire.GetPayloadBufs()
				defer wire.PutPayloadBufs(bufs)
				i := 0
				for pb.Next() {
					i++
					u := core.UserID(i%users + 1)
					j, g, err := e.AppendJobPayload(context.Background(), u, bufs.JSON[:0], bufs.Gz[:0])
					if err != nil {
						b.Fatal(err)
					}
					bufs.JSON, bufs.Gz = j, g
				}
			})
		})
	}
}
