package server

import (
	"sync"
	"testing"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

func TestRecStoreLRUEviction(t *testing.T) {
	s := newRecStore(3)
	for u := core.UserID(1); u <= 3; u++ {
		s.Put(u, []core.ItemID{core.ItemID(u)})
	}
	// Touch 1 so 2 becomes the eviction victim.
	if got := s.Get(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Get(1) = %v", got)
	}
	s.Put(4, []core.ItemID{4})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Get(2) != nil {
		t.Fatal("LRU victim 2 not evicted")
	}
	for _, u := range []core.UserID{1, 3, 4} {
		if s.Get(u) == nil {
			t.Fatalf("user %d evicted unexpectedly", u)
		}
	}
	// Updating an existing user must not evict anyone.
	s.Put(3, []core.ItemID{30})
	if s.Len() != 3 {
		t.Fatalf("Len after update = %d, want 3", s.Len())
	}
	if got := s.Get(3); len(got) != 1 || got[0] != 30 {
		t.Fatalf("Get(3) after update = %v", got)
	}
}

func TestRecStoreDefaultCapacity(t *testing.T) {
	s := newRecStore(0)
	if s.cap != defaultRecCapacity {
		t.Fatalf("default capacity = %d, want %d", s.cap, defaultRecCapacity)
	}
}

func TestRecStoreConcurrent(t *testing.T) {
	s := newRecStore(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				u := core.UserID(i % 100)
				s.Put(u, []core.ItemID{core.ItemID(g), core.ItemID(i)})
				s.Get(u)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 64 {
		t.Fatalf("Len = %d exceeds capacity 64", s.Len())
	}
}

// TestEngineRecommendationsBounded pins the memory-leak fix end to end: a
// server living through user churn retains recommendations only for the
// configured number of recent users.
func TestEngineRecommendationsBounded(t *testing.T) {
	cfg := testConfig()
	cfg.DisableAnonymizer = true
	cfg.RecCacheUsers = 8
	e := NewEngine(cfg)
	for u := core.UserID(1); u <= 40; u++ {
		e.Rate(tctx, u, 1, true)
		if _, err := e.ApplyResult(tctx, &wire.Result{
			UID: uint32(u), Recommendations: []uint32{uint32(u) + 100},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.recs.Len(); got != 8 {
		t.Fatalf("retained rec entries = %d, want 8", got)
	}
	// The most recent user still answers; the oldest is gone.
	recs, err := e.Recommendations(tctx, 40, 0)
	if err != nil || len(recs) != 1 || recs[0] != 140 {
		t.Fatalf("Recommendations(40) = %v, %v", recs, err)
	}
	if recs, _ := e.Recommendations(tctx, 1, 0); recs != nil {
		t.Fatalf("Recommendations(1) = %v, want nil after eviction", recs)
	}
}
