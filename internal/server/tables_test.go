package server

import (
	"math/rand"
	"sync"
	"testing"

	"hyrec/internal/core"
)

func TestProfileTableGetUnknown(t *testing.T) {
	tb := NewProfileTable()
	p := tb.Get(5)
	if p.User() != 5 || p.Size() != 0 {
		t.Fatalf("unknown user profile: %v", p)
	}
	if tb.Known(5) {
		t.Error("Get must not register users")
	}
}

func TestProfileTablePutGet(t *testing.T) {
	tb := NewProfileTable()
	p := core.NewProfile(1).WithRating(3, true)
	tb.Put(p)
	if !tb.Known(1) || tb.Len() != 1 {
		t.Fatal("Put did not register")
	}
	got := tb.Get(1)
	if !got.Equal(p) {
		t.Fatalf("Get = %v", got)
	}
}

func TestProfileTableUpdate(t *testing.T) {
	tb := NewProfileTable()
	got := tb.Update(2, func(p core.Profile) core.Profile { return p.WithRating(9, true) })
	if !got.LikedContains(9) {
		t.Fatal("update result wrong")
	}
	if !tb.Get(2).LikedContains(9) {
		t.Fatal("update not stored")
	}
	if tb.Len() != 1 {
		t.Fatal("update did not register user")
	}
	// Second update of same user must not re-register.
	tb.Update(2, func(p core.Profile) core.Profile { return p.WithRating(10, true) })
	if tb.Len() != 1 {
		t.Fatal("duplicate roster entry")
	}
}

func TestProfileTableRandomUsers(t *testing.T) {
	tb := NewProfileTable()
	for u := core.UserID(0); u < 50; u++ {
		tb.Put(core.NewProfile(u))
	}
	rng := rand.New(rand.NewSource(1))
	got := tb.RandomUsers(rng, 10, 7)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[core.UserID]bool{}
	for _, u := range got {
		if u == 7 {
			t.Fatal("excluded user drawn")
		}
		if seen[u] {
			t.Fatal("duplicate draw in one call")
		}
		seen[u] = true
	}
}

func TestProfileTableRandomUsersSmallPopulation(t *testing.T) {
	tb := NewProfileTable()
	tb.Put(core.NewProfile(1))
	rng := rand.New(rand.NewSource(1))
	// Asking for more users than exist must terminate and return what's
	// available (possibly less).
	got := tb.RandomUsers(rng, 5, 1)
	if len(got) != 0 {
		t.Fatalf("only excluded user exists, got %v", got)
	}
	if got := tb.RandomUsers(rng, 3, 99); len(got) != 1 {
		t.Fatalf("got %v, want just user 1", got)
	}
	// Empty table.
	empty := NewProfileTable()
	if got := empty.RandomUsers(rng, 3, 0); got != nil {
		t.Fatalf("empty table returned %v", got)
	}
}

func TestProfileTableRandomUsersUniformish(t *testing.T) {
	tb := NewProfileTable()
	const n = 20
	for u := core.UserID(0); u < n; u++ {
		tb.Put(core.NewProfile(u))
	}
	rng := rand.New(rand.NewSource(42))
	counts := map[core.UserID]int{}
	const draws = 4000
	for i := 0; i < draws; i++ {
		for _, u := range tb.RandomUsers(rng, 1, n+1) {
			counts[u]++
		}
	}
	// Each user should get ~draws/n = 200; allow wide tolerance.
	for u := core.UserID(0); u < n; u++ {
		if counts[u] < 100 || counts[u] > 320 {
			t.Errorf("user %v drawn %d times, expected ≈200", u, counts[u])
		}
	}
}

func TestProfileTableForEachAndUsers(t *testing.T) {
	tb := NewProfileTable()
	for u := core.UserID(0); u < 10; u++ {
		tb.Put(core.NewProfile(u).WithRating(core.ItemID(u), true))
	}
	count := 0
	tb.ForEach(func(p core.Profile) {
		if !p.LikedContains(core.ItemID(p.User())) {
			t.Errorf("wrong profile for %v", p.User())
		}
		count++
	})
	if count != 10 {
		t.Fatalf("ForEach visited %d", count)
	}
	if len(tb.Users()) != 10 {
		t.Fatal("Users() wrong length")
	}
}

func TestProfileTableConcurrent(t *testing.T) {
	tb := NewProfileTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 300; i++ {
				u := core.UserID(rng.Intn(100))
				tb.Update(u, func(p core.Profile) core.Profile {
					return p.WithRating(core.ItemID(i), true)
				})
				tb.Get(u)
				tb.RandomUsers(rng, 3, u)
			}
		}(g)
	}
	wg.Wait()
	if tb.Len() == 0 || tb.Len() > 100 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestKNNTable(t *testing.T) {
	kt := NewKNNTable()
	if kt.Get(1) != nil {
		t.Fatal("unknown user has neighbors")
	}
	kt.Put(1, []core.UserID{2, 3})
	if got := kt.Get(1); len(got) != 2 || got[0] != 2 {
		t.Fatalf("Get = %v", got)
	}
	kt.Put(1, []core.UserID{4})
	if got := kt.Get(1); len(got) != 1 || got[0] != 4 {
		t.Fatalf("overwrite failed: %v", got)
	}
	if kt.Len() != 1 {
		t.Fatalf("Len = %d", kt.Len())
	}
}

func TestKNNTableConcurrent(t *testing.T) {
	kt := NewKNNTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				u := core.UserID(i % 64)
				kt.Put(u, []core.UserID{core.UserID(g), core.UserID(i)})
				kt.Get(u)
			}
		}(g)
	}
	wg.Wait()
	if kt.Len() != 64 {
		t.Fatalf("Len = %d", kt.Len())
	}
}

// TestRosterDoesNotGrowOnRestore pins the dedup-on-insert invariant:
// re-storing an existing user — any interleaving of Put and Update —
// never grows the dense roster, so uniform sampling stays uniform.
func TestRosterDoesNotGrowOnRestore(t *testing.T) {
	t.Run("sequential", func(t *testing.T) {
		tab := NewProfileTable()
		for i := 0; i < 5; i++ {
			tab.Put(core.NewProfile(7).WithRating(core.ItemID(i), true))
			tab.Update(7, func(p core.Profile) core.Profile {
				return p.WithRating(core.ItemID(100+i), true)
			})
		}
		if got := tab.Len(); got != 1 {
			t.Fatalf("roster length = %d after re-storing one user, want 1", got)
		}
		if users := tab.Users(); len(users) != 1 || users[0] != 7 {
			t.Fatalf("roster = %v, want [7]", users)
		}
	})

	t.Run("concurrent", func(t *testing.T) {
		tab := NewProfileTable()
		const users, writersPerUser = 32, 8
		var wg sync.WaitGroup
		for u := core.UserID(1); u <= users; u++ {
			for w := 0; w < writersPerUser; w++ {
				wg.Add(1)
				go func(u core.UserID, w int) {
					defer wg.Done()
					if w%2 == 0 {
						tab.Put(core.NewProfile(u))
					} else {
						tab.Update(u, func(p core.Profile) core.Profile {
							return p.WithRating(core.ItemID(w), true)
						})
					}
				}(u, w)
			}
		}
		wg.Wait()
		if got := tab.Len(); got != users {
			t.Fatalf("roster length = %d, want %d (duplicates slipped in)", got, users)
		}
		seen := make(map[core.UserID]bool)
		for _, u := range tab.Users() {
			if seen[u] {
				t.Fatalf("duplicate roster entry for user %d", u)
			}
			seen[u] = true
		}
	})
}
