package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hyrec/internal/admit"
	"hyrec/internal/core"
	"hyrec/internal/frame"
	"hyrec/internal/wire"
)

// blockingService embeds a real engine but parks RateBatch on a channel
// so tests can hold a Rating admission slot for as long as they like.
type blockingService struct {
	*Engine
	entered chan struct{}
	release chan struct{}
}

func (b *blockingService) RateBatch(ctx context.Context, rs []core.Rating) error {
	b.entered <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done():
		return ctx.Err()
	}
	return b.Engine.RateBatch(ctx, rs)
}

func newBlockingService(t *testing.T, cfg Config) *blockingService {
	t.Helper()
	e := NewEngine(cfg)
	t.Cleanup(func() { e.Close() })
	return &blockingService{
		Engine:  e,
		entered: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
}

const rateBody = `{"ratings":[{"uid":1,"item":5,"liked":true}]}`

// TestHTTPRatingOverloadSheds: with MaxInflightRating=1 and the single
// slot held by a parked handler, the next rating answers a typed 429
// with a Retry-After header and retry_after_ms in the error envelope,
// and the shed shows up on /stats.
func TestHTTPRatingOverloadSheds(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflightRating = 1
	svc := newBlockingService(t, cfg)
	s := NewServer(svc, 0)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/rate", "application/json", strings.NewReader(rateBody))
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-svc.entered // the slot is now held inside RateBatch

	resp, err := http.Post(ts.URL+"/v1/rate", "application/json", strings.NewReader(rateBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second rating got %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive whole-second hint", ra)
	}
	var env wire.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != wire.CodeOverloaded {
		t.Fatalf("error code = %q, want %q", env.Error.Code, wire.CodeOverloaded)
	}
	if env.Error.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", env.Error.RetryAfterMS)
	}

	stats := httpStats(t, ts.URL)
	if shed, _ := stats["shed_total"].(float64); shed < 1 {
		t.Fatalf("stats shed_total = %v, want >= 1", stats["shed_total"])
	}
	if shed, _ := stats["shed_rating"].(float64); shed < 1 {
		t.Fatalf("stats shed_rating = %v, want >= 1", stats["shed_rating"])
	}

	close(svc.release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("parked first rating finished with %d, want 200", code)
	}
}

// TestHTTPWorkerOverloadSheds: a parked worker long-poll holds its
// Worker admission slot for the whole wait window, so a second worker
// poll sheds immediately (no grace for the worker class).
func TestHTTPWorkerOverloadSheds(t *testing.T) {
	cfg := testConfig()
	cfg.LeaseTTL = time.Minute
	cfg.MaxInflightWorker = 1
	e := NewEngine(cfg)
	s := NewServer(e, 0)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close() // releases the parked long-poll so ts.Close doesn't wait it out
		ts.Close()
		e.Close()
	})

	go http.Get(ts.URL + "/v1/job?worker=1&wait=5s")
	deadline := time.Now().Add(2 * time.Second)
	for s.Gate().Inflight(admit.Worker) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first worker poll never took its admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/job?worker=1&wait=5s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second worker poll got %d, want 429", resp.StatusCode)
	}
	var env wire.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != wire.CodeOverloaded {
		t.Fatalf("error code = %q, want %q", env.Error.Code, wire.CodeOverloaded)
	}
}

// TestFrameOverloadSheds: the framed plane shares the same gate. With
// the only Rating slot held via a parked handler on connection A,
// connection B's TRateBatch answers a TError carrying the overloaded
// code and a retry-after hint.
func TestFrameOverloadSheds(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflightRating = 1
	svc := newBlockingService(t, cfg)
	s := NewServer(svc, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeFrames(ln)
	t.Cleanup(func() { s.Close() })
	addr := ln.Addr().String()

	ca := dialFrame(t, addr, "")
	ratings := []core.Rating{{User: 1, Item: 5, Liked: true}}
	if err := ca.WriteFrame(frame.TRateBatch, 3, frame.AppendRateBatch(nil, ratings)); err != nil {
		t.Fatal(err)
	}
	<-svc.entered // connection A's read loop is parked inside RateBatch, slot held

	cb := dialFrame(t, addr, "")
	f := frameCall(t, cb, frame.TRateBatch, 5, frame.AppendRateBatch(nil, ratings))
	if f.Type != frame.TError {
		t.Fatalf("overloaded rate batch answered %#x, want TError", byte(f.Type))
	}
	code, _, _, retryMS, err := frame.DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if code != wire.CodeOverloaded {
		t.Fatalf("TError code = %q, want %q", code, wire.CodeOverloaded)
	}
	if retryMS == 0 {
		t.Fatal("TError carries no retry-after hint")
	}

	close(svc.release)
	f, err = ca.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != frame.TRateOK {
		t.Fatalf("released rate batch answered %#x, want TRateOK", byte(f.Type))
	}
}

// TestFramePullConnCap: a single connection may park at most
// maxConnPullStreams job pulls; the next pull is refused with the
// overloaded code instead of spawning another goroutine.
func TestFramePullConnCap(t *testing.T) {
	old := maxConnPullStreams
	maxConnPullStreams = 2
	t.Cleanup(func() { maxConnPullStreams = old })

	cfg := testConfig()
	cfg.LeaseTTL = time.Minute
	_, _, addr := newFrameServer(t, cfg, "")
	cn := dialFrame(t, addr, "")

	// The read loop handles frames sequentially and the pull counter
	// only drops when a park expires (5s away), so by the time the
	// third pull is examined the first two are counted.
	for i := uint64(1); i <= 3; i++ {
		if err := cn.WriteFrame(frame.TJobPull, i, frame.AppendUint(nil, 5000)); err != nil {
			t.Fatal(err)
		}
	}
	f, err := cn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != frame.TError || f.Stream != 3 {
		t.Fatalf("got %#x on stream %d, want TError on stream 3", byte(f.Type), f.Stream)
	}
	code, _, _, retryMS, err := frame.DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if code != wire.CodeOverloaded || retryMS == 0 {
		t.Fatalf("refused pull answered code=%q retryMS=%d, want overloaded with a hint", code, retryMS)
	}
}

// TestFramePullServerCap: parked pulls are also bounded server-wide,
// across connections.
func TestFramePullServerCap(t *testing.T) {
	old := maxServerPullStreams
	maxServerPullStreams = 1
	t.Cleanup(func() { maxServerPullStreams = old })

	cfg := testConfig()
	cfg.LeaseTTL = time.Minute
	_, srv, addr := newFrameServer(t, cfg, "")

	ca := dialFrame(t, addr, "")
	if err := ca.WriteFrame(frame.TJobPull, 1, frame.AppendUint(nil, 5000)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.frameStreams.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first pull never parked")
		}
		time.Sleep(time.Millisecond)
	}

	cb := dialFrame(t, addr, "")
	f := frameCall(t, cb, frame.TJobPull, 1, frame.AppendUint(nil, 5000))
	if f.Type != frame.TError {
		t.Fatalf("second connection's pull answered %#x, want TError", byte(f.Type))
	}
	code, _, _, _, err := frame.DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if code != wire.CodeOverloaded {
		t.Fatalf("TError code = %q, want %q", code, wire.CodeOverloaded)
	}
}

// TestFrameHandshakeSlowloris: a connection that dials and never sends
// its THello is cut off by the handshake read deadline instead of
// pinning a read-loop goroutine forever, and the listener keeps
// serving handshakes afterwards.
func TestFrameHandshakeSlowloris(t *testing.T) {
	old := frameHelloTimeout
	frameHelloTimeout = 100 * time.Millisecond
	t.Cleanup(func() { frameHelloTimeout = old })

	_, _, addr := newFrameServer(t, testConfig(), "")

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("server sent bytes to a silent connection")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server did not close the silent connection within 2s (handshake deadline not enforced)")
	}

	// The listener is still healthy: a well-behaved handshake completes.
	cn := dialFrame(t, addr, "")
	f := frameCall(t, cn, frame.TRateBatch, 3, frame.AppendRateBatch(nil, []core.Rating{{User: 1, Item: 2, Liked: true}}))
	if f.Type != frame.TRateOK {
		t.Fatalf("post-slowloris rate batch answered %#x, want TRateOK", byte(f.Type))
	}
}

// httpStats fetches and decodes /stats.
func httpStats(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}
