//go:build race

package server

// raceEnabled: see race_off_test.go.
const raceEnabled = true
