package server

import (
	"math/rand"
	"sync"
	"testing"

	"hyrec/internal/core"
)

// benchEngine builds an engine with a populated roster and KNN graph so
// job assembly exercises the full sampling path.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	cfg := DefaultConfig()
	cfg.K = 10
	e := NewEngine(cfg)
	for u := core.UserID(1); u <= 2000; u++ {
		for j := 0; j < 8; j++ {
			e.Rate(tctx, u, core.ItemID((int(u)+j)%200), true)
		}
	}
	return e
}

// BenchmarkRandomUsersParallel measures the sampling RNG under
// concurrent assembly — the hot path that used to serialize every
// worker on one global rngMu. With the per-user lock sharding,
// goroutines drawing for different users proceed in parallel; run with
// -cpu 1,4,16 to see the scaling.
func BenchmarkRandomUsersParallel(b *testing.B) {
	e := benchEngine(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		u := core.UserID(1)
		for pb.Next() {
			e.RandomUsers(10, u)
			u++
		}
	})
}

// BenchmarkRandomUsersGlobalLockParallel is the pre-refactor baseline:
// every draw serializes on one mutex around one RNG, exactly as the old
// Engine.rngMu did. Compare against BenchmarkRandomUsersParallel at
// -cpu > 1 to see the sharding win.
func BenchmarkRandomUsersGlobalLockParallel(b *testing.B) {
	e := benchEngine(b)
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		u := core.UserID(1)
		for pb.Next() {
			mu.Lock()
			e.Profiles().RandomUsers(rng, 10, u)
			mu.Unlock()
			u++
		}
	})
}

// BenchmarkJobParallel measures whole-job assembly (sampler + candidate
// profiles + encoding) under concurrency — the serving path the RNG
// sharding unblocks.
func BenchmarkJobParallel(b *testing.B) {
	e := benchEngine(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		u := core.UserID(1)
		for pb.Next() {
			if _, _, err := e.JobPayload(1 + (u % 2000)); err != nil {
				b.Fatal(err)
			}
			u++
		}
	})
}
