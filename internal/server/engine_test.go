package server

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"hyrec/internal/core"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

// tctx is the context used by tests exercising the context-aware
// Service methods.
var tctx = context.Background()

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.K = 3
	cfg.R = 5
	return cfg
}

func TestNewEnginePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for K=0")
		}
	}()
	NewEngine(Config{K: 0, R: 1})
}

func TestRateCreatesProfile(t *testing.T) {
	e := NewEngine(testConfig())
	e.Rate(tctx, 1, 10, true)
	p := e.Profiles().Get(1)
	if !p.LikedContains(10) {
		t.Fatal("rating not recorded")
	}
}

func TestJobContainsProfileAndCandidates(t *testing.T) {
	e := NewEngine(testConfig())
	for u := core.UserID(1); u <= 10; u++ {
		e.Rate(tctx, u, core.ItemID(u%3), true)
	}
	job, err := e.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if job.K != 3 || job.R != 5 {
		t.Fatalf("job params: %+v", job)
	}
	if len(job.Profile.Liked) != 1 {
		t.Fatalf("own profile: %+v", job.Profile)
	}
	// With an empty KNN table the sampler returns k random users.
	if len(job.Candidates) == 0 || len(job.Candidates) > core.MaxCandidateSetSize(3) {
		t.Fatalf("candidate count = %d", len(job.Candidates))
	}
}

func TestJobForBrandNewUserRegistersHer(t *testing.T) {
	e := NewEngine(testConfig())
	e.Rate(tctx, 2, 1, true)
	if _, err := e.Job(tctx, 99); err != nil {
		t.Fatal(err)
	}
	if !e.Profiles().Known(99) {
		t.Fatal("new user not registered by Job")
	}
}

func TestFullCycleUpdatesKNNTable(t *testing.T) {
	e := NewEngine(testConfig())
	// Three users with overlapping tastes.
	e.Rate(tctx, 1, 1, true)
	e.Rate(tctx, 1, 2, true)
	e.Rate(tctx, 2, 1, true)
	e.Rate(tctx, 2, 2, true)
	e.Rate(tctx, 3, 99, true)

	w := widget.New()
	job, err := e.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := w.Execute(job)
	if _, err := e.ApplyResult(tctx, res); err != nil {
		t.Fatal(err)
	}
	hood, _ := e.Neighbors(tctx, 1)
	if len(hood) == 0 {
		t.Fatal("KNN table not updated")
	}
	// User 2 (identical profile) must rank first.
	if hood[0] != 2 {
		t.Fatalf("best neighbor = %v, want 2", hood[0])
	}
	for _, v := range hood {
		if v == 1 {
			t.Fatal("user is her own neighbor")
		}
	}
}

func TestApplyResultStaleEpoch(t *testing.T) {
	e := NewEngine(testConfig())
	e.Rate(tctx, 1, 1, true)
	job, err := e.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := widget.New().Execute(job)
	// Rotate twice: the job's epoch is now unresolvable.
	e.RotateAnonymizer()
	e.RotateAnonymizer()
	if _, err := e.ApplyResult(tctx, res); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err = %v, want ErrStaleEpoch", err)
	}
}

func TestApplyResultOneRotationOK(t *testing.T) {
	e := NewEngine(testConfig())
	e.Rate(tctx, 1, 1, true)
	e.Rate(tctx, 2, 1, true)
	job, err := e.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := widget.New().Execute(job)
	e.RotateAnonymizer() // one rotation: previous epoch must still apply
	if _, err := e.ApplyResult(tctx, res); err != nil {
		t.Fatalf("one-epoch-old result rejected: %v", err)
	}
}

func TestApplyResultTranslatesRecommendations(t *testing.T) {
	e := NewEngine(testConfig())
	e.Rate(tctx, 1, 1, true)
	e.Rate(tctx, 2, 1, true)
	e.Rate(tctx, 2, 7, true) // item 7 unseen by user 1 → should be recommended
	job, err := e.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := widget.New().Execute(job)
	recs, err := e.ApplyResult(tctx, res)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, item := range recs {
		if item == 7 {
			found = true
		}
		if item == 1 {
			t.Fatal("recommended an already-seen item")
		}
	}
	if !found {
		t.Fatalf("item 7 not recommended: %v", recs)
	}
}

func TestAnonymizationHidesIDsOnWire(t *testing.T) {
	e := NewEngine(testConfig())
	e.Rate(tctx, 1, 1, true)
	e.Rate(tctx, 2, 1, true)
	job, err := e.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if job.UID == 1 {
		t.Error("uid not anonymised")
	}
	for _, c := range job.Candidates {
		if c.ID == 2 {
			t.Error("candidate uid not anonymised")
		}
	}
}

func TestDisableAnonymizer(t *testing.T) {
	cfg := testConfig()
	cfg.DisableAnonymizer = true
	e := NewEngine(cfg)
	e.Rate(tctx, 1, 1, true)
	job, err := e.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if job.UID != 1 {
		t.Fatalf("uid = %d with anonymiser disabled", job.UID)
	}
}

func TestJobPayloadCachedMatchesUncached(t *testing.T) {
	mk := func(disableCache bool) []byte {
		cfg := testConfig()
		cfg.DisableProfileCache = disableCache
		cfg.DisableAnonymizer = true // same IDs on both sides
		cfg.Seed = 7
		e := NewEngine(cfg)
		for u := core.UserID(1); u <= 20; u++ {
			for i := core.ItemID(0); i < 5; i++ {
				e.Rate(tctx, u, i+core.ItemID(u), i%2 == 0)
			}
		}
		jsonBody, gz, err := e.JobPayload(1)
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: the payload round-trips through gzip.
		raw, err := wire.Decompress(gz)
		if err != nil || !bytes.Equal(raw, jsonBody) {
			t.Fatal("gzip payload mismatch")
		}
		return jsonBody
	}
	withCache := mk(false)
	withoutCache := mk(true)
	if !bytes.Equal(withCache, withoutCache) {
		t.Fatalf("cached assembly differs:\n%s\n%s", withCache, withoutCache)
	}
}

func TestJobPayloadParseable(t *testing.T) {
	e := NewEngine(testConfig())
	for u := core.UserID(1); u <= 10; u++ {
		e.Rate(tctx, u, core.ItemID(u), true)
	}
	jsonBody, _, err := e.JobPayload(3)
	if err != nil {
		t.Fatal(err)
	}
	job, err := wire.DecodeJob(jsonBody)
	if err != nil {
		t.Fatalf("assembled JSON unparseable: %v\n%s", err, jsonBody)
	}
	if job.K != 3 {
		t.Fatalf("job = %+v", job)
	}
}

func TestJobPayloadMeters(t *testing.T) {
	e := NewEngine(testConfig())
	e.Rate(tctx, 1, 1, true)
	if _, _, err := e.JobPayload(1); err != nil {
		t.Fatal(err)
	}
	if e.Meter().JSONBytes() == 0 || e.Meter().GzipBytes() == 0 {
		t.Fatal("meter not updated")
	}
}

func TestMaxProfileItemsBoundsCandidates(t *testing.T) {
	cfg := testConfig()
	cfg.MaxProfileItems = 4
	e := NewEngine(cfg)
	for i := core.ItemID(0); i < 50; i++ {
		e.Rate(tctx, 1, i, true)
		e.Rate(tctx, 2, i, true)
	}
	job, err := e.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range job.Candidates {
		if len(c.Liked)+len(c.Disliked) > 4 {
			t.Fatalf("candidate profile exceeds bound: %d items", len(c.Liked)+len(c.Disliked))
		}
	}
	// The user's own profile is not truncated (server-held, not shared).
	if len(job.Profile.Liked) != 50 {
		t.Fatalf("own profile truncated: %d", len(job.Profile.Liked))
	}
}

func TestSetSamplerCustom(t *testing.T) {
	e := NewEngine(testConfig())
	e.Rate(tctx, 1, 1, true)
	e.Rate(tctx, 2, 2, true)
	e.SetSampler(samplerFunc(func(u core.UserID, k int) []core.UserID {
		return []core.UserID{2}
	}))
	job, err := e.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Candidates) != 1 {
		t.Fatalf("custom sampler ignored: %d candidates", len(job.Candidates))
	}
}

type samplerFunc func(core.UserID, int) []core.UserID

func (f samplerFunc) Sample(u core.UserID, k int) []core.UserID { return f(u, k) }

func TestSamplerUsesTwoHopNeighbors(t *testing.T) {
	e := NewEngine(testConfig())
	for u := core.UserID(1); u <= 6; u++ {
		e.Rate(tctx, u, 1, true)
	}
	e.KNN().Put(1, []core.UserID{2})
	e.KNN().Put(2, []core.UserID{3})
	got := e.sampler.Sample(1, 3)
	has := map[core.UserID]bool{}
	for _, u := range got {
		has[u] = true
	}
	if !has[2] || !has[3] {
		t.Fatalf("sample %v missing one-hop (2) or two-hop (3)", got)
	}
}

func TestEngineConcurrentTraffic(t *testing.T) {
	e := NewEngine(testConfig())
	for u := core.UserID(0); u < 32; u++ {
		e.Rate(tctx, u, core.ItemID(u%7), true)
	}
	w := widget.New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				u := core.UserID((g*31 + i) % 32)
				e.Rate(tctx, u, core.ItemID(i%50), i%3 != 0)
				_, gz, err := e.JobPayload(u)
				if err != nil {
					t.Error(err)
					return
				}
				res, _, err := w.ExecutePayload(gz)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := e.ApplyResult(tctx, res); err != nil && !errors.Is(err, ErrStaleEpoch) {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Concurrent epoch rotation exercises the stale-epoch path.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			e.RotateAnonymizer()
		}
	}()
	wg.Wait()
	<-done
}
