package server

import (
	"testing"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// seedCommunity registers n users who all like items [0, itemsEach).
func seedCommunity(e *Engine, n, itemsEach int) {
	for u := 1; u <= n; u++ {
		for i := 0; i < itemsEach; i++ {
			e.Rate(tctx, core.UserID(u), core.ItemID(i), true)
		}
	}
}

func TestCandidateFilterAppliedToCandidatesOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true
	filtered := 0
	cfg.CandidateFilter = func(p core.Profile) core.Profile {
		filtered++
		// Redact everything: candidates come out empty.
		return core.NewProfile(p.User())
	}
	e := NewEngine(cfg)
	seedCommunity(e, 8, 5)

	job, err := e.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if filtered == 0 {
		t.Fatal("filter never invoked")
	}
	if len(job.Profile.Liked) != 5 {
		t.Fatalf("own profile was filtered: %v", job.Profile.Liked)
	}
	for _, c := range job.Candidates {
		if len(c.Liked) != 0 || len(c.Disliked) != 0 {
			t.Fatalf("candidate %d escaped the filter: %+v", c.ID, c)
		}
	}
}

func TestCandidateFilterBypassesProfileCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true
	calls := 0
	cfg.CandidateFilter = func(p core.Profile) core.Profile {
		calls++
		return p
	}
	e := NewEngine(cfg)
	seedCommunity(e, 6, 3)

	// Two identical payload builds: with a (stateful) filter the cache must
	// not absorb the second build's candidate encodings.
	if _, _, err := e.JobPayload(1); err != nil {
		t.Fatal(err)
	}
	first := calls
	if _, _, err := e.JobPayload(1); err != nil {
		t.Fatal(err)
	}
	if calls <= first {
		t.Fatalf("filter not re-invoked on second job (calls %d -> %d)", first, calls)
	}
}

func TestCandidateFilterPayloadMatchesJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true
	cfg.CandidateFilter = func(p core.Profile) core.Profile {
		return p.Truncate(2) // deterministic filter so both paths agree
	}
	e := NewEngine(cfg)
	seedCommunity(e, 6, 5)

	jsonBody, _, err := e.JobPayload(1)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := wire.DecodeJob(jsonBody)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range decoded.Candidates {
		if len(c.Liked)+len(c.Disliked) > 2 {
			t.Fatalf("candidate exceeds filter bound: %+v", c)
		}
	}
}
