package server

import (
	"testing"

	"hyrec/internal/core"
)

func populatedEngine(t *testing.T, users int) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true
	e := NewEngine(cfg)
	for u := 1; u <= users; u++ {
		e.Rate(tctx, core.UserID(u), core.ItemID(u%7), true)
	}
	return e
}

func TestRandomOnlySamplerBudgetAndExclusion(t *testing.T) {
	e := populatedEngine(t, 300)
	s := RandomOnlySampler{Engine: e}
	const k = 5
	got := s.Sample(7, k)
	if len(got) == 0 || len(got) > core.MaxCandidateSetSize(k) {
		t.Fatalf("sample size %d outside (0, %d]", len(got), core.MaxCandidateSetSize(k))
	}
	seen := map[core.UserID]bool{}
	for _, v := range got {
		if v == 7 {
			t.Fatal("sampled the requesting user")
		}
		if seen[v] {
			t.Fatalf("duplicate candidate %v", v)
		}
		seen[v] = true
	}
}

func TestNoRandomSamplerPureTwoHop(t *testing.T) {
	e := populatedEngine(t, 50)
	// Hand-build a closed triangle 1-2-3 in the KNN table.
	e.KNN().Put(1, []core.UserID{2, 3})
	e.KNN().Put(2, []core.UserID{1, 3})
	e.KNN().Put(3, []core.UserID{1, 2})
	s := NoRandomSampler{Engine: e}
	got := s.Sample(1, 2)
	for _, v := range got {
		if v != 2 && v != 3 {
			t.Fatalf("no-random sampler escaped the clique: %v in %v", v, got)
		}
	}
	if len(got) != 2 {
		t.Fatalf("sample = %v, want exactly {2,3}", got)
	}
}

func TestNoRandomSamplerBootstrapsEmptyKNN(t *testing.T) {
	e := populatedEngine(t, 20)
	s := NoRandomSampler{Engine: e}
	got := s.Sample(1, 4) // user 1 has no KNN entry yet
	if len(got) != 1 {
		t.Fatalf("bootstrap sample = %v, want one random candidate", got)
	}
	if got[0] == 1 {
		t.Fatal("bootstrapped with self")
	}
}

// The design claim behind the default rule: starting from a wrong
// neighbourhood, the two-hop-only sampler cannot escape its clique while
// the full rule (with random exploration) finds the true community.
func TestRandomComponentEscapesLocalOptimum(t *testing.T) {
	build := func() *Engine {
		cfg := DefaultConfig()
		cfg.DisableAnonymizer = true
		cfg.K = 2
		cfg.Seed = 9
		e := NewEngine(cfg)
		// Users 1-3: community A (items 0-5); users 4-9: decoys with no
		// overlap at all; user 10-12: community A too but unknown to 1.
		for _, u := range []core.UserID{1, 2, 3, 10, 11, 12} {
			for j := 0; j < 4; j++ {
				e.Rate(tctx, u, core.ItemID((int(u)+j)%6), true)
			}
		}
		for u := core.UserID(4); u <= 9; u++ {
			e.Rate(tctx, u, core.ItemID(100+u), true)
		}
		// Adversarial start: 1's clique is the disjoint decoys, closed
		// under two-hop.
		e.KNN().Put(1, []core.UserID{4, 5})
		e.KNN().Put(4, []core.UserID{5, 6})
		e.KNN().Put(5, []core.UserID{4, 6})
		e.KNN().Put(6, []core.UserID{4, 5})
		return e
	}

	iterate := func(e *Engine, s Sampler, rounds int) float64 {
		e.SetSampler(s)
		metric := core.Cosine{}
		for r := 0; r < rounds; r++ {
			p := e.Profiles().Get(1)
			var candidates []core.Profile
			for _, c := range s.Sample(1, e.Config().K) {
				candidates = append(candidates, e.Profiles().Get(c))
			}
			hood := core.SelectKNN(p, candidates, e.Config().K, metric)
			ids := make([]core.UserID, len(hood))
			for i, n := range hood {
				ids[i] = n.User
			}
			// Merge with current hood as the widget cycle would via the
			// candidate set containing one-hop neighbours.
			e.KNN().Put(1, ids)
		}
		p := e.Profiles().Get(1)
		var sum float64
		hood := e.KNN().Get(1)
		for _, v := range hood {
			sum += metric.Score(p, e.Profiles().Get(v))
		}
		if len(hood) == 0 {
			return 0
		}
		return sum / float64(len(hood))
	}

	eFull := build()
	full := iterate(eFull, &defaultSampler{engine: eFull}, 30)
	eNoRand := build()
	noRand := iterate(eNoRand, NoRandomSampler{Engine: eNoRand}, 30)

	if noRand > 0 {
		t.Fatalf("two-hop-only escaped a closed disjoint clique: view sim %v", noRand)
	}
	if full <= 0 {
		t.Fatalf("full sampler never found the community: view sim %v", full)
	}
}
