package server

import (
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"hyrec/internal/admit"
	"hyrec/internal/core"
	"hyrec/internal/frame"
	"hyrec/internal/wire"
)

// The framed transport listener: the binary twin of the /v1 JSON
// protocol (see internal/frame). A connection opens with a THello
// handshake — magic, version, and the node-plane secret when the peer
// wants the replication lane — then any number of exchanges interleave
// on uvarint streams: the client picks a stream ID per request and the
// server answers on it, so one socket carries many in-flight rate
// batches, job pulls, result posts, batched acks and replication
// shipments with no per-request connection or header cost. Frame
// handlers reuse the exact service surfaces the HTTP handlers do, and
// job/result payloads are the exact JSON bytes the HTTP path carries,
// so the two transports cannot drift semantically.

// frameWriteGrace bounds each socket write on a framed connection, like
// the WS layer's write grace: a peer that stops draining fails its
// connection instead of wedging every response producer. Variable for
// tests.
var frameWriteGrace = 30 * time.Second

// frameHelloTimeout bounds how long a fresh connection may sit without
// completing its handshake before the listener drops it.
var frameHelloTimeout = 10 * time.Second

// maxConnPullStreams bounds parked TJobPull goroutines per connection:
// a framed client issuing thousands of concurrent pull streams on one
// socket gets the overloaded TError past this, instead of pinning a
// goroutine per stream. Variable for tests.
var maxConnPullStreams int64 = 32

// maxServerPullStreams bounds parked TJobPull goroutines across all
// framed connections, the overall backstop behind the per-connection
// cap. Variable for tests.
var maxServerPullStreams int64 = 1024

// ServeFrames accepts framed-transport connections on ln until it
// closes. Close tears the listener and every framed connection down.
// Run it on its own goroutine alongside the HTTP listener:
//
//	go hsrv.ServeFrames(ln)
func (s *HTTPServer) ServeFrames(ln net.Listener) error {
	stop := context.AfterFunc(s.dispatchCtx, func() { ln.Close() })
	defer stop()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handleFrameConn(c)
	}
}

// handleFrameConn runs one framed connection: handshake, then a read
// loop that handles bounded-latency requests inline and parks job
// pulls on their own goroutines so a waiting worker never blocks rate
// batches behind it.
func (s *HTTPServer) handleFrameConn(c net.Conn) {
	cn := frame.NewConn(c, 0)
	cn.SetMeter(&s.frameBytes)
	cn.SetWriteGrace(frameWriteGrace)
	defer cn.Close()

	authorized, err := s.frameHandshake(cn)
	if err != nil {
		return
	}
	s.frameConns.Add(1)
	defer s.frameConns.Add(-1)

	// Request contexts descend from dispatchCtx so Close releases parked
	// long-polls; closing the socket on Close unblocks the read loop.
	ctx, cancel := context.WithCancel(s.dispatchCtx)
	defer cancel()
	stop := context.AfterFunc(s.dispatchCtx, func() { cn.Close() })
	defer stop()

	var scr frameScratch
	for {
		f, err := cn.ReadFrame()
		if err != nil {
			return
		}
		s.dispatchFrame(ctx, cn, f, authorized, &scr)
	}
}

// frameScratch holds per-connection decode buffers reused across
// frames. Reuse is safe because handlers run inline (the next ReadFrame
// cannot start until the handler returns) and the service surfaces copy
// what they keep.
type frameScratch struct {
	ratings []core.Rating
	acks    []frame.Ack
	// pulls counts this connection's parked TJobPull goroutines against
	// maxConnPullStreams. Atomic because the parked goroutines decrement
	// it while the read loop checks and increments.
	pulls atomic.Int64
}

// frameHandshake reads and answers the THello frame, reporting whether
// the connection presented the node-plane secret. Malformed or
// mistimed handshakes drop the connection before any session state is
// allocated.
func (s *HTTPServer) frameHandshake(cn *frame.Conn) (authorized bool, err error) {
	cn.SetReadDeadline(time.Now().Add(frameHelloTimeout))
	defer cn.SetReadDeadline(time.Time{})
	f, err := cn.ReadFrame()
	if err != nil {
		return false, err
	}
	if f.Type != frame.THello {
		return false, fmt.Errorf("first frame %#x is not THello", byte(f.Type))
	}
	version, secret, err := frame.DecodeHello(f.Payload)
	if err != nil {
		return false, err
	}
	if version != frame.Version {
		s.sendFrameErrorCode(cn, f.Stream, wire.CodeBadRequest,
			fmt.Sprintf("framed protocol version %d unsupported (want %d)", version, frame.Version))
		return false, errors.New("version mismatch")
	}
	// Like the HTTP plane, a wrong or missing secret does not reject the
	// connection — it leaves the replication lane gated (TReplBatch
	// answers forbidden) while the client lanes stay usable.
	authorized = s.nodeSecret == "" ||
		subtle.ConstantTimeCompare([]byte(secret), []byte(s.nodeSecret)) == 1
	return authorized, cn.WriteFrame(frame.THelloOK, f.Stream, []byte{frame.Version})
}

// dispatchFrame decodes and handles one request frame. Handlers run
// inline on the connection's read loop — the framed twin of HTTP/1.1
// pipelining, where the read loop is the natural backpressure point —
// except TJobPull, which parks for its long-poll window on its own
// goroutine so a waiting worker never blocks rate batches behind it.
// Inline handling means decode buffers and f.Payload (which aliases the
// connection's read buffer) stay valid for the handler's whole run, so
// the hot paths decode and answer without allocating.
func (s *HTTPServer) dispatchFrame(ctx context.Context, cn *frame.Conn, f frame.Frame, authorized bool, scr *frameScratch) {
	switch f.Type {
	case frame.TRateBatch:
		release, admitted := s.admitFrame(ctx, cn, f.Stream, admit.Rating)
		if !admitted {
			return
		}
		defer release()
		ratings, err := frame.DecodeRateBatch(f.Payload, scr.ratings[:0])
		scr.ratings = ratings[:0]
		if err != nil {
			s.sendFrameErrorCode(cn, f.Stream, wire.CodeBadRequest, "bad rate batch: "+err.Error())
			return
		}
		for _, r := range ratings {
			s.seen.Touch(r.User)
		}
		if err := s.svc.RateBatch(ctx, ratings); err != nil {
			s.sendFrameError(cn, f.Stream, err)
			return
		}
		var ob [10]byte
		cn.WriteFrame(frame.TRateOK, f.Stream, frame.AppendUint(ob[:0], uint64(len(ratings))))
	case frame.TJobPull:
		waitMS, err := frame.DecodeUint(f.Payload)
		if err != nil {
			s.sendFrameErrorCode(cn, f.Stream, wire.CodeBadRequest, "bad job pull: "+err.Error())
			return
		}
		// Parked pulls are bounded three ways before a goroutine spawns:
		// per connection, across the server, and by the worker admission
		// class (a parked pull holds its worker slot for the whole park,
		// like the HTTP long-poll). All three shed with the overloaded
		// TError. Only this read loop increments scr.pulls, so the
		// check-then-add is race-free for admission.
		if scr.pulls.Load() >= maxConnPullStreams {
			s.sendFrameOverloaded(cn, f.Stream, "too many parked job pulls on this connection")
			return
		}
		if s.frameStreams.Load() >= maxServerPullStreams {
			s.sendFrameOverloaded(cn, f.Stream, "too many parked job pulls server-wide")
			return
		}
		release, admitted := s.admitFrame(ctx, cn, f.Stream, admit.Worker)
		if !admitted {
			return
		}
		scr.pulls.Add(1)
		s.spawnFrame(cn, f.Stream, func(stream uint64) {
			defer release()
			defer scr.pulls.Add(-1)
			s.frameJobPull(ctx, cn, stream, time.Duration(waitMS)*time.Millisecond)
		})
	case frame.TJobGet:
		uid, err := frame.DecodeUID(f.Payload)
		if err != nil {
			s.sendFrameErrorCode(cn, f.Stream, wire.CodeBadRequest, "bad job get: "+err.Error())
			return
		}
		release, admitted := s.admitFrame(ctx, cn, f.Stream, admit.Read)
		if !admitted {
			return
		}
		defer release()
		s.frameJobGet(ctx, cn, f.Stream, core.UserID(uid))
	case frame.TResult:
		release, admitted := s.admitFrame(ctx, cn, f.Stream, admit.Worker)
		if !admitted {
			return
		}
		defer release()
		res, err := wire.DecodeResult(f.Payload)
		if err != nil {
			s.sendFrameErrorCode(cn, f.Stream, wire.CodeBadRequest, "bad result body: "+err.Error())
			return
		}
		recs, err := s.svc.ApplyResult(ctx, res)
		if err != nil {
			s.sendFrameError(cn, f.Stream, err)
			return
		}
		s.touchResult(res)
		buf := wire.GetBuf()
		out := frame.AppendUint((*buf)[:0], uint64(len(recs)))
		for _, it := range recs {
			out = frame.AppendUID(out, uint32(it))
		}
		*buf = out
		cn.WriteFrame(frame.TRecs, f.Stream, out)
		wire.PutBuf(buf)
	case frame.TAckBatch:
		release, admitted := s.admitFrame(ctx, cn, f.Stream, admit.Worker)
		if !admitted {
			return
		}
		defer release()
		acks, err := frame.DecodeAckBatch(f.Payload, scr.acks[:0])
		scr.acks = acks[:0]
		if err != nil {
			s.sendFrameErrorCode(cn, f.Stream, wire.CodeBadRequest, "bad ack batch: "+err.Error())
			return
		}
		s.frameAckBatch(ctx, cn, f.Stream, acks)
	case frame.TReplBatch:
		if s.nodeSecret != "" && !authorized {
			s.sendFrameErrorCode(cn, f.Stream, wire.CodeForbidden, "node-plane secret missing or wrong")
			return
		}
		batch, err := frame.DecodeReplBatch(f.Payload)
		if err != nil {
			s.sendFrameErrorCode(cn, f.Stream, wire.CodeBadRequest, "bad replicate batch: "+err.Error())
			return
		}
		rep, ok := s.svc.(Replicator)
		if !ok {
			s.sendFrameErrorCode(cn, f.Stream, wire.CodeBadRequest, "service does not accept replication")
			return
		}
		ack, err := rep.Replicate(ctx, batch)
		if err != nil {
			s.sendFrameError(cn, f.Stream, err)
			return
		}
		var ob [20]byte
		out := frame.AppendUint(ob[:0], uint64(ack.Applied))
		out = frame.AppendUint(out, ack.Seq)
		cn.WriteFrame(frame.TReplOK, f.Stream, out)
	default:
		s.sendFrameErrorCode(cn, f.Stream, wire.CodeBadRequest,
			fmt.Sprintf("unexpected frame type %#x", byte(f.Type)))
	}
}

// spawnFrame runs one long-poll handler on its own goroutine, tracked
// by the frame_streams_active gauge.
func (s *HTTPServer) spawnFrame(cn *frame.Conn, stream uint64, fn func(stream uint64)) {
	s.frameStreams.Add(1)
	go func() {
		defer s.frameStreams.Add(-1)
		fn(stream)
	}()
}

// frameJobPull is the framed twin of handleV1WorkerJob: long-poll the
// staleness queue up to wait (capped like the HTTP path) and answer a
// TJob whose payload is the exact JSON bytes GET /v1/job?worker=1 would
// serve — empty when the queue stayed idle.
func (s *HTTPServer) frameJobPull(ctx context.Context, cn *frame.Conn, stream uint64, wait time.Duration) {
	js, ok := s.svc.(JobSource)
	if !ok {
		s.sendFrameErrorCode(cn, stream, wire.CodeBadRequest, "service does not dispatch jobs to workers")
		return
	}
	if wait < 0 {
		wait = 0
	}
	if wait > maxWorkerWait {
		wait = maxWorkerWait
	}
	pollCtx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	var job *wire.Job
	for {
		var err error
		job, err = js.NextJob(pollCtx)
		if err != nil {
			s.sendFrameError(cn, stream, err)
			return
		}
		if job != nil {
			break
		}
		// Same early-nil re-poll discipline as the HTTP long-poll: a nil
		// before the window expires is not "idle for the whole window".
		select {
		case <-pollCtx.Done():
			cn.WriteFrame(frame.TJob, stream, nil)
			return
		case <-time.After(workerRepollEvery):
		}
	}
	bufs := wire.GetPayloadBufs()
	defer wire.PutPayloadBufs(bufs)
	raw := wire.AppendJob(bufs.JSON, job, nil)
	bufs.JSON = raw
	if meter, ok := s.svc.(WorkerJobMeter); ok {
		meter.CountWorkerJob(job, len(raw), 0)
	}
	cn.WriteFrame(frame.TJob, stream, raw)
}

// frameJobGet serves one user's job payload — the framed twin of
// GET /v1/job?uid=U, carrying the identical JSON bytes.
func (s *HTTPServer) frameJobGet(ctx context.Context, cn *frame.Conn, stream uint64, u core.UserID) {
	s.seen.Touch(u)
	if ja, ok := s.svc.(JSONJobAppender); ok {
		bufs := wire.GetPayloadBufs()
		defer wire.PutPayloadBufs(bufs)
		jsonBody, err := ja.AppendJobJSON(ctx, u, bufs.JSON)
		if err != nil {
			s.sendFrameError(cn, stream, err)
			return
		}
		bufs.JSON = jsonBody
		cn.WriteFrame(frame.TJob, stream, jsonBody)
		return
	}
	if pa, ok := s.svc.(PayloadAppender); ok {
		bufs := wire.GetPayloadBufs()
		defer wire.PutPayloadBufs(bufs)
		jsonBody, gzBody, err := pa.AppendJobPayload(ctx, u, bufs.JSON, bufs.Gz)
		if err != nil {
			s.sendFrameError(cn, stream, err)
			return
		}
		bufs.JSON, bufs.Gz = jsonBody, gzBody
		cn.WriteFrame(frame.TJob, stream, jsonBody)
		return
	}
	raw, err := s.jobJSON(ctx, u)
	if err != nil {
		s.sendFrameError(cn, stream, err)
		return
	}
	cn.WriteFrame(frame.TJob, stream, raw)
}

// frameAckBatch applies a batched ack. A single-entry batch keeps the
// HTTP path's typed error surface (unknown_lease and friends); a
// multi-entry batch reports how many entries applied — a missing lease
// there is expected turbulence (the scheduler re-issued it), not an
// error.
func (s *HTTPServer) frameAckBatch(ctx context.Context, cn *frame.Conn, stream uint64, acks []frame.Ack) {
	la, ok := s.svc.(LeaseAcker)
	if !ok {
		s.sendFrameErrorCode(cn, stream, wire.CodeBadRequest, "service does not manage leases")
		return
	}
	applied := 0
	for _, a := range acks {
		err := la.Ack(ctx, a.Lease, a.Done)
		if err == nil {
			applied++
			continue
		}
		if len(acks) == 1 {
			s.sendFrameError(cn, stream, err)
			return
		}
	}
	var ob [10]byte
	cn.WriteFrame(frame.TAckOK, stream, frame.AppendUint(ob[:0], uint64(applied)))
}

// sendFrameError answers a stream with the TError envelope for a
// service error — same code mapping as the HTTP plane (statusForErr),
// including the primary-address hint of not_primary rejections.
func (s *HTTPServer) sendFrameError(cn *frame.Conn, stream uint64, err error) {
	_, code := statusForErr(err)
	primary := ""
	var np *NotPrimaryError
	if errors.As(err, &np) {
		primary = np.PrimaryAddr
	}
	cn.WriteFrame(frame.TError, stream, frame.AppendError(nil, code, err.Error(), primary, 0))
}

// sendFrameErrorCode answers a stream with an explicit error code.
func (s *HTTPServer) sendFrameErrorCode(cn *frame.Conn, stream uint64, code, msg string) {
	cn.WriteFrame(frame.TError, stream, frame.AppendError(nil, code, msg, "", 0))
}

// admitFrame acquires an admission slot of class c for a frame on
// stream, or answers the overloaded TError and reports ok=false — the
// framed twin of admitHTTP.
func (s *HTTPServer) admitFrame(ctx context.Context, cn *frame.Conn, stream uint64, c admit.Class) (release func(), ok bool) {
	release, ok = s.gate.Acquire(ctx, c)
	if !ok {
		s.sendFrameOverloaded(cn, stream, c.String()+" queue full")
		return nil, false
	}
	return release, true
}

// sendFrameOverloaded answers a stream with the typed shed envelope:
// the overloaded code plus the retry-after hint in milliseconds — the
// framed twin of the HTTP plane's 429 + Retry-After.
func (s *HTTPServer) sendFrameOverloaded(cn *frame.Conn, stream uint64, msg string) {
	retryMS := uint64(s.gate.RetryAfter() / time.Millisecond)
	cn.WriteFrame(frame.TError, stream, frame.AppendError(nil, wire.CodeOverloaded, msg, "", retryMS))
}
