//go:build !race

package server

// raceEnabled reports whether the race detector is instrumenting this
// build. sync.Pool deliberately drops a fraction of Puts under the
// detector and shadow allocations inflate counters, so strict
// allocation-ratio bounds gate on it.
const raceEnabled = false
