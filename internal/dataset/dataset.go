// Package dataset provides the workload substrate for the HyRec
// reproduction: the timestamped rating-trace model, synthetic generators
// calibrated to the paper's Table 2 statistics (MovieLens ML1/ML2/ML3 and
// Digg), the per-user mean binarisation of Section 5.1, the 80/20
// time-ordered train/test split, and plain-text (de)serialisation.
//
// Real MovieLens/Digg traces are not redistributable; DESIGN.md §2
// documents why statistically-shaped synthetic traces preserve the
// behaviours the evaluation measures (neighbourhood structure, session
// burstiness, user-arrival dynamics).
package dataset

import (
	"fmt"
	"time"

	"hyrec/internal/core"
)

// Event is one raw rating action: at time T (offset from trace start),
// User rated Item with Value (1–5 stars for MovieLens; 1 = "digg" for
// Digg-style votes).
type Event struct {
	T     time.Duration
	User  core.UserID
	Item  core.ItemID
	Value float64
}

// Trace is a time-ordered sequence of rating events plus its metadata.
type Trace struct {
	Name   string
	Users  int
	Items  int
	Span   time.Duration
	Events []Event // sorted by T ascending
}

// Stats summarises a trace the way Table 2 of the paper does.
type Stats struct {
	Name           string
	Users          int
	Items          int
	Ratings        int
	AvgRatings     float64 // average ratings per user
	ObservedUsers  int     // users with ≥1 event
	ObservedItems  int     // items with ≥1 event
	LikedFraction  float64 // after binarisation
	SpanDays       float64
	MaxProfileSize int
}

// ComputeStats scans a trace (after binarisation for the liked fraction).
func ComputeStats(tr *Trace) Stats {
	users := make(map[core.UserID]int, tr.Users)
	items := make(map[core.ItemID]struct{}, tr.Items)
	for _, ev := range tr.Events {
		users[ev.User]++
		items[ev.Item] = struct{}{}
	}
	s := Stats{
		Name:          tr.Name,
		Users:         tr.Users,
		Items:         tr.Items,
		Ratings:       len(tr.Events),
		ObservedUsers: len(users),
		ObservedItems: len(items),
		SpanDays:      tr.Span.Hours() / 24,
	}
	if len(users) > 0 {
		s.AvgRatings = float64(len(tr.Events)) / float64(len(users))
	}
	for _, n := range users {
		if n > s.MaxProfileSize {
			s.MaxProfileSize = n
		}
	}
	liked := 0
	for _, r := range Binarize(tr) {
		if r.Liked {
			liked++
		}
	}
	if len(tr.Events) > 0 {
		s.LikedFraction = float64(liked) / float64(len(tr.Events))
	}
	return s
}

// String renders one Table 2 row.
func (s Stats) String() string {
	return fmt.Sprintf("%-8s users=%-6d items=%-6d ratings=%-9d avg=%.0f liked=%.0f%% span=%.0fd",
		s.Name, s.ObservedUsers, s.ObservedItems, s.Ratings, s.AvgRatings, 100*s.LikedFraction, s.SpanDays)
}

// BinaryEvent is a binarised rating event, ready for replay.
type BinaryEvent struct {
	T     time.Duration
	User  core.UserID
	Item  core.ItemID
	Liked bool
}

// Rating converts the event to a core.Rating.
func (e BinaryEvent) Rating() core.Rating {
	return core.Rating{User: e.User, Item: e.Item, Liked: e.Liked}
}

// Binarize projects raw ratings onto {liked, disliked} exactly as
// Section 5.1: an item is liked iff its rating is strictly above the
// user's mean rating across all her items. Users whose ratings are all
// identical (single-rating users, or Digg votes which are always 1)
// binarise to liked=true: a vote there is an endorsement.
// Event order (and thus timestamps) is preserved. Runs in O(events).
func Binarize(tr *Trace) []BinaryEvent {
	type acc struct {
		sum      float64
		count    int
		min, max float64
	}
	accs := make(map[core.UserID]*acc, tr.Users)
	for _, ev := range tr.Events {
		a, ok := accs[ev.User]
		if !ok {
			accs[ev.User] = &acc{sum: ev.Value, count: 1, min: ev.Value, max: ev.Value}
			continue
		}
		a.sum += ev.Value
		a.count++
		if ev.Value < a.min {
			a.min = ev.Value
		}
		if ev.Value > a.max {
			a.max = ev.Value
		}
	}
	out := make([]BinaryEvent, len(tr.Events))
	for i, ev := range tr.Events {
		a := accs[ev.User]
		liked := ev.Value > a.sum/float64(a.count)
		if a.min == a.max {
			liked = true
		}
		out[i] = BinaryEvent{T: ev.T, User: ev.User, Item: ev.Item, Liked: liked}
	}
	return out
}

// Split divides binarised events into a training prefix containing
// `trainFrac` of the events (by count, which matches the paper's
// "first 80% of the ratings" because events are time-ordered) and the
// remaining test suffix.
func Split(events []BinaryEvent, trainFrac float64) (train, test []BinaryEvent) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	cut := int(float64(len(events)) * trainFrac)
	return events[:cut], events[cut:]
}
