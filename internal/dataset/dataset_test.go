package dataset

import (
	"bytes"
	"math"
	"testing"
	"time"

	"hyrec/internal/core"
)

func tinyConfig() GenConfig {
	cfg := ML1Config()
	return Scaled(cfg, 0.08) // ~75 users, ~481 items, ~8000 ratings
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := []GenConfig{
		{Name: "u", Users: 1, Items: 10, Ratings: 10, Span: time.Hour, Topics: 2},
		{Name: "i", Users: 10, Items: 1, Ratings: 10, Span: time.Hour, Topics: 2},
		{Name: "r", Users: 10, Items: 10, Ratings: 5, Span: time.Hour, Topics: 2},
		{Name: "s", Users: 10, Items: 10, Ratings: 10, Span: 0, Topics: 2},
		{Name: "t", Users: 10, Items: 10, Ratings: 10, Span: time.Hour, Topics: 0},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %q accepted", cfg.Name)
		}
	}
}

func TestGenerateMatchesConfiguredScale(t *testing.T) {
	cfg := tinyConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != cfg.Ratings {
		t.Fatalf("events = %d, want %d", len(tr.Events), cfg.Ratings)
	}
	s := ComputeStats(tr)
	if s.ObservedUsers != cfg.Users {
		t.Errorf("observed users = %d, want %d (every user must have ≥1 rating)", s.ObservedUsers, cfg.Users)
	}
	if s.ObservedItems > cfg.Items {
		t.Errorf("observed items = %d > %d", s.ObservedItems, cfg.Items)
	}
	wantAvg := float64(cfg.Ratings) / float64(cfg.Users)
	if math.Abs(s.AvgRatings-wantAvg) > 1 {
		t.Errorf("avg ratings = %.1f, want ≈%.1f", s.AvgRatings, wantAvg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("lengths differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
}

func TestGenerateEventsSortedAndInSpan(t *testing.T) {
	tr, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range tr.Events {
		if i > 0 && ev.T < tr.Events[i-1].T {
			t.Fatalf("events unsorted at %d", i)
		}
		if ev.T < 0 || ev.T > tr.Span+24*time.Hour {
			t.Fatalf("event %d far outside span: %v", i, ev.T)
		}
		if int(ev.User) >= tr.Users || int(ev.Item) >= tr.Items {
			t.Fatalf("event %d out of ID range: %+v", i, ev)
		}
	}
}

func TestGenerateNoDuplicateUserItemPairs(t *testing.T) {
	tr, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		u core.UserID
		i core.ItemID
	}
	seen := make(map[pair]bool, len(tr.Events))
	for _, ev := range tr.Events {
		p := pair{ev.User, ev.Item}
		if seen[p] {
			t.Fatalf("duplicate rating %v", p)
		}
		seen[p] = true
	}
}

// The generator must produce community structure: users sharing topics
// should be measurably more similar than random pairs — otherwise the CF
// evaluation is meaningless.
func TestGenerateHasCommunityStructure(t *testing.T) {
	tr, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	profiles := map[core.UserID]core.Profile{}
	for _, ev := range Binarize(tr) {
		p, ok := profiles[ev.User]
		if !ok {
			p = core.NewProfile(ev.User)
		}
		profiles[ev.User] = p.WithRating(ev.Item, ev.Liked)
	}
	users := make([]core.Profile, 0, len(profiles))
	for _, p := range profiles {
		if p.NumLiked() >= 5 {
			users = append(users, p)
		}
	}
	if len(users) < 20 {
		t.Skip("too few active users at this scale")
	}
	// Mean best-neighbor similarity must far exceed mean random-pair
	// similarity.
	var bestSum, randSum float64
	count := 0
	for i := 0; i < 20; i++ {
		ref := users[i]
		best := 0.0
		for j, other := range users {
			if j == i {
				continue
			}
			s := (core.Cosine{}).Score(ref, other)
			if s > best {
				best = s
			}
		}
		bestSum += best
		randSum += (core.Cosine{}).Score(ref, users[(i+len(users)/2)%len(users)])
		count++
	}
	meanBest, meanRand := bestSum/float64(count), randSum/float64(count)
	if meanBest < meanRand*1.5 || meanBest < 0.1 {
		t.Fatalf("no community structure: best=%.3f random=%.3f", meanBest, meanRand)
	}
}

func TestBinarizeAboveUserMean(t *testing.T) {
	tr := &Trace{
		Name: "t", Users: 2, Items: 4, Span: time.Hour,
		Events: []Event{
			{T: 1, User: 1, Item: 1, Value: 5},
			{T: 2, User: 1, Item: 2, Value: 1},
			{T: 3, User: 1, Item: 3, Value: 3}, // mean=3, not strictly above → disliked
			{T: 4, User: 2, Item: 1, Value: 2},
		},
	}
	got := Binarize(tr)
	if !got[0].Liked || got[1].Liked || got[2].Liked {
		t.Fatalf("binarise wrong: %+v", got[:3])
	}
	// User 2 has a single rating → liked.
	if !got[3].Liked {
		t.Fatal("single-rating user should binarise to liked")
	}
}

func TestBinarizeConstantVotesAreLiked(t *testing.T) {
	tr := &Trace{
		Name: "digg", Users: 1, Items: 3, Span: time.Hour,
		Events: []Event{
			{T: 1, User: 1, Item: 1, Value: 1},
			{T: 2, User: 1, Item: 2, Value: 1},
			{T: 3, User: 1, Item: 3, Value: 1},
		},
	}
	for i, ev := range Binarize(tr) {
		if !ev.Liked {
			t.Fatalf("vote %d not liked", i)
		}
	}
}

func TestSplit(t *testing.T) {
	events := make([]BinaryEvent, 10)
	for i := range events {
		events[i].T = time.Duration(i)
	}
	train, test := Split(events, 0.8)
	if len(train) != 8 || len(test) != 2 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	// Clamping.
	train, test = Split(events, -1)
	if len(train) != 0 || len(test) != 10 {
		t.Fatal("negative frac not clamped")
	}
	train, test = Split(events, 2)
	if len(train) != 10 || len(test) != 0 {
		t.Fatal("overlarge frac not clamped")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr, err := Generate(Scaled(ML1Config(), 0.02))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Users != tr.Users || got.Items != tr.Items {
		t.Fatalf("header mismatch: %+v vs %+v", got, tr)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		a, b := got.Events[i], tr.Events[i]
		// Timestamps are persisted at second granularity.
		if a.User != b.User || a.Item != b.Item || a.Value != b.Value ||
			a.T.Truncate(time.Second) != b.T.Truncate(time.Second) {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"# hyrec-trace v1 users=x\n",
		"# hyrec-trace v1 name=t users=1 items=1 span_s=10\n1 2\n",
		"# hyrec-trace v1 name=t users=1 items=1 span_s=10\na b c d\n",
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	input := "# hyrec-trace v1 name=t users=2 items=2 span_s=100\n\n# comment\n5 0 1 3\n"
	tr, err := Load(bytes.NewReader([]byte(input)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 || tr.Events[0].Value != 3 {
		t.Fatalf("events = %+v", tr.Events)
	}
}

func TestScaled(t *testing.T) {
	cfg := Scaled(ML2Config(), 0.1)
	// Users and ratings scale by f; items by √f (≈ 4000·0.3162 = 1265).
	if cfg.Users != 604 || cfg.Items != 1265 || cfg.Ratings != 100_000 {
		t.Fatalf("scaled = %+v", cfg)
	}
	if cfg.Name != "ML2@0.1" {
		t.Fatalf("name = %q", cfg.Name)
	}
	same := Scaled(ML2Config(), 1)
	if same.Name != "ML2" {
		t.Fatalf("unit scale renamed: %q", same.Name)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for scale 0")
		}
	}()
	Scaled(ML2Config(), 0)
}

func TestPresetConfigsMatchTable2(t *testing.T) {
	rows := []struct {
		cfg     GenConfig
		users   int
		items   int
		ratings int
	}{
		{ML1Config(), 943, 1700, 100_000},
		{ML2Config(), 6040, 4000, 1_000_000},
		{ML3Config(), 69_878, 10_000, 10_000_000},
		{DiggConfig(), 59_167, 7_724, 782_807},
	}
	for _, row := range rows {
		if row.cfg.Users != row.users || row.cfg.Items != row.items || row.cfg.Ratings != row.ratings {
			t.Errorf("%s preset does not match Table 2: %+v", row.cfg.Name, row.cfg)
		}
	}
}

func TestStatsString(t *testing.T) {
	tr, err := Generate(Scaled(DiggConfig(), 0.005))
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(tr)
	if s.String() == "" || s.LikedFraction != 1 {
		// Digg votes all binarise to liked.
		t.Fatalf("stats = %+v", s)
	}
}

func BenchmarkGenerateML1(b *testing.B) {
	cfg := Scaled(ML1Config(), 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
