package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"hyrec/internal/core"
)

// GenConfig parametrises the synthetic trace generator. See DESIGN.md §2
// substitution 1 for why these knobs exist: the generator must preserve
// (a) latent community structure (so user-based CF has signal),
// (b) Zipf item popularity, (c) heavy-tailed per-user activity, and
// (d) session-bursty timestamps with staggered user arrival.
type GenConfig struct {
	Name    string
	Users   int
	Items   int
	Ratings int
	Span    time.Duration
	// Topics is the number of latent interest communities.
	Topics int
	// TopicAffinity is the probability a user rates inside her own topics
	// (the rest is global-popularity exploration).
	TopicAffinity float64
	// ZipfS is the Zipf exponent of item popularity (>1).
	ZipfS float64
	// ActivitySkew shapes the per-user rating-count distribution
	// (Pareto-like; larger = more skew).
	ActivitySkew float64
	// SessionSize is the mean number of ratings per session burst.
	SessionSize int
	// MaxValue is the rating scale ceiling (5 for MovieLens stars,
	// 1 for Digg votes — a constant-value voting trace).
	MaxValue int
	Seed     int64
}

func (c GenConfig) validate() error {
	switch {
	case c.Users <= 1:
		return fmt.Errorf("dataset: %s: need ≥2 users", c.Name)
	case c.Items <= 1:
		return fmt.Errorf("dataset: %s: need ≥2 items", c.Name)
	case c.Ratings < c.Users:
		return fmt.Errorf("dataset: %s: need ≥1 rating per user", c.Name)
	case c.Ratings > c.Users*c.Items:
		// A user rates an item at most once, so the (user, item) grid
		// bounds the rating count; asking for more cannot be satisfied.
		return fmt.Errorf("dataset: %s: %d ratings exceed the %d×%d user-item capacity",
			c.Name, c.Ratings, c.Users, c.Items)
	case c.Span <= 0:
		return fmt.Errorf("dataset: %s: need positive span", c.Name)
	case c.Topics <= 0:
		return fmt.Errorf("dataset: %s: need ≥1 topic", c.Name)
	}
	return nil
}

// ML1Config matches Table 2's ML1 row: 943 users, 1700 items, 100k ratings
// over the 7-month collection window.
func ML1Config() GenConfig {
	return GenConfig{
		Name: "ML1", Users: 943, Items: 1700, Ratings: 100_000,
		Span: 7 * 30 * 24 * time.Hour, Topics: 18, TopicAffinity: 0.8,
		ZipfS: 1.07, ActivitySkew: 1.3, SessionSize: 12, MaxValue: 5, Seed: 101,
	}
}

// ML2Config matches Table 2's ML2 row: 6040 users, 4000 items, 1M ratings.
func ML2Config() GenConfig {
	return GenConfig{
		Name: "ML2", Users: 6040, Items: 4000, Ratings: 1_000_000,
		Span: 7 * 30 * 24 * time.Hour, Topics: 25, TopicAffinity: 0.8,
		ZipfS: 1.07, ActivitySkew: 1.3, SessionSize: 15, MaxValue: 5, Seed: 102,
	}
}

// ML3Config matches Table 2's ML3 row: 69878 users, 10000 items, 10M
// ratings.
func ML3Config() GenConfig {
	return GenConfig{
		Name: "ML3", Users: 69_878, Items: 10_000, Ratings: 10_000_000,
		Span: 7 * 30 * 24 * time.Hour, Topics: 40, TopicAffinity: 0.8,
		ZipfS: 1.07, ActivitySkew: 1.3, SessionSize: 15, MaxValue: 5, Seed: 103,
	}
}

// DiggConfig matches Table 2's Digg row: 59167 users, 7724 items, 782807
// votes over two weeks — small profiles (avg 13) and a voting (constant
// value) rating model.
func DiggConfig() GenConfig {
	return GenConfig{
		Name: "Digg", Users: 59_167, Items: 7_724, Ratings: 782_807,
		Span: 14 * 24 * time.Hour, Topics: 30, TopicAffinity: 0.7,
		ZipfS: 1.2, ActivitySkew: 1.6, SessionSize: 4, MaxValue: 1, Seed: 104,
	}
}

// Scaled returns a copy of cfg with users/items/ratings scaled by f
// (0 < f ≤ 1), for benchmark runs that must finish quickly while keeping
// the workload's shape. The name gains a "@f" suffix.
func Scaled(cfg GenConfig, f float64) GenConfig {
	if f <= 0 || f > 1 {
		panic("dataset: scale factor must be in (0,1]")
	}
	scaleBy := func(n int, factor float64) int {
		v := int(math.Round(float64(n) * factor))
		if v < 2 {
			v = 2
		}
		return v
	}
	// Users and ratings scale linearly, preserving the paper's average
	// profile size (ratings/users). Items scale by √f — the usual
	// down-sampling rule: shrinking the catalogue as fast as the
	// population would make every user rate most of the catalogue,
	// collapsing the community structure CF depends on.
	cfg.Users = scaleBy(cfg.Users, f)
	cfg.Items = scaleBy(cfg.Items, math.Sqrt(f))
	cfg.Ratings = scaleBy(cfg.Ratings, f)
	if cfg.Ratings < cfg.Users {
		cfg.Ratings = cfg.Users
	}
	// Backstop: at extreme scale factors density can still approach the
	// (user × item) capacity, where generation grinds and profiles stop
	// resembling any real workload. Cap at 60% of capacity.
	if maxRatings := cfg.Users * cfg.Items * 3 / 5; cfg.Ratings > maxRatings {
		cfg.Ratings = maxRatings
	}
	if f != 1 {
		cfg.Name = fmt.Sprintf("%s@%.3g", cfg.Name, f)
	}
	return cfg
}

// Generate synthesises a trace from cfg. The same config always produces
// the identical trace (seeded RNG throughout).
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// --- Items: topic assignment, Zipf popularity, latent quality. ---
	itemTopic := make([]int, cfg.Items)
	itemQuality := make([]float64, cfg.Items)
	for i := range itemTopic {
		itemTopic[i] = rng.Intn(cfg.Topics)
		itemQuality[i] = clamp(rng.NormFloat64()*0.9+float64(cfg.MaxValue)*0.7, 1, float64(cfg.MaxValue))
	}
	// Per-topic item index for fast in-topic sampling.
	topicItems := make([][]core.ItemID, cfg.Topics)
	for i, t := range itemTopic {
		topicItems[t] = append(topicItems[t], core.ItemID(i))
	}
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Items-1))

	// --- Users: 1–3 topics each, heavy-tailed activity, arrival time. ---
	type user struct {
		topics  []int
		nEvents int
		arrival time.Duration
	}
	users := make([]user, cfg.Users)
	weights := make([]float64, cfg.Users)
	var weightSum float64
	for u := range users {
		nt := 1 + rng.Intn(3)
		ts := make([]int, 0, nt)
		for len(ts) < nt {
			t := rng.Intn(cfg.Topics)
			if !containsInt(ts, t) {
				ts = append(ts, t)
			}
		}
		users[u].topics = ts
		// Pareto-like activity weight.
		w := math.Pow(1-rng.Float64(), -1/cfg.ActivitySkew)
		if w > 1000 {
			w = 1000
		}
		weights[u] = w
		weightSum += w
		// Staggered arrivals spread across the collection window: new
		// users keep joining throughout, as in the real MovieLens/Digg
		// collection periods (drives the cold-start dynamics of §5.3:
		// frozen offline KNN cannot serve users who arrive and rate
		// between two back-end runs).
		users[u].arrival = time.Duration(rng.Float64() * float64(cfg.Span) * 0.9)
	}
	// Apportion total ratings by weight, ≥1 each.
	assigned := 0
	for u := range users {
		n := int(float64(cfg.Ratings) * weights[u] / weightSum)
		if n < 1 {
			n = 1
		}
		if n > cfg.Items {
			n = cfg.Items
		}
		users[u].nEvents = n
		assigned += n
	}
	// Distribute the remainder randomly; validate() guarantees capacity,
	// but random placement grinds near saturation, so fall back to a
	// deterministic sweep after too many rejected draws.
	misses := 0
	for assigned < cfg.Ratings {
		u := rng.Intn(cfg.Users)
		if users[u].nEvents < cfg.Items {
			users[u].nEvents++
			assigned++
			continue
		}
		misses++
		if misses > 4*cfg.Users {
			for v := range users {
				for assigned < cfg.Ratings && users[v].nEvents < cfg.Items {
					users[v].nEvents++
					assigned++
				}
			}
			break
		}
	}

	// --- Events: sessions of bursty ratings; topic-biased item choice. ---
	sessionGap := 2 * time.Minute
	events := make([]Event, 0, assigned)
	for u := range users {
		seen := make(map[core.ItemID]struct{}, users[u].nEvents)
		remaining := users[u].nEvents
		// Session start times spread over [arrival, span].
		window := cfg.Span - users[u].arrival
		if window <= 0 {
			window = time.Hour
		}
		for remaining > 0 {
			burst := 1 + rng.Intn(2*cfg.SessionSize)
			if burst > remaining {
				burst = remaining
			}
			start := users[u].arrival + time.Duration(rng.Float64()*float64(window))
			for b := 0; b < burst; b++ {
				item, ok := pickItem(rng, cfg, users[u].topics, topicItems, zipf, seen)
				if !ok {
					break
				}
				seen[item] = struct{}{}
				affinity := 0.0
				if containsInt(users[u].topics, itemTopic[item]) {
					affinity = 1.2
				}
				value := 1.0
				if cfg.MaxValue > 1 {
					value = clamp(itemQuality[item]+affinity+rng.NormFloat64()*0.8, 1, float64(cfg.MaxValue))
					value = math.Round(value)
				}
				events = append(events, Event{
					T:     start + time.Duration(b)*sessionGap,
					User:  core.UserID(u),
					Item:  item,
					Value: value,
				})
				remaining--
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].T != events[j].T {
			return events[i].T < events[j].T
		}
		if events[i].User != events[j].User {
			return events[i].User < events[j].User
		}
		return events[i].Item < events[j].Item
	})
	return &Trace{
		Name:   cfg.Name,
		Users:  cfg.Users,
		Items:  cfg.Items,
		Span:   cfg.Span,
		Events: events,
	}, nil
}

// pickItem draws an unseen item: with probability TopicAffinity a
// Zipf-ranked item inside one of the user's topics, otherwise a global
// Zipf pick. Returns false when the user has exhausted the catalogue.
func pickItem(rng *rand.Rand, cfg GenConfig, topics []int, topicItems [][]core.ItemID, zipf *rand.Zipf, seen map[core.ItemID]struct{}) (core.ItemID, bool) {
	if len(seen) >= cfg.Items {
		return 0, false
	}
	for attempt := 0; attempt < 64; attempt++ {
		var item core.ItemID
		if rng.Float64() < cfg.TopicAffinity {
			pool := topicItems[topics[rng.Intn(len(topics))]]
			if len(pool) == 0 {
				continue
			}
			// Zipf rank within the topic pool, favouring low indices.
			r := int(zipf.Uint64()) % len(pool)
			item = pool[r]
		} else {
			item = core.ItemID(zipf.Uint64())
		}
		if _, dup := seen[item]; !dup {
			return item, true
		}
	}
	// Fallback: linear scan for any unseen item.
	for i := 0; i < cfg.Items; i++ {
		if _, dup := seen[core.ItemID(i)]; !dup {
			return core.ItemID(i), true
		}
	}
	return 0, false
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
