package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"hyrec/internal/core"
)

// Save writes a trace in the plain-text format
//
//	# hyrec-trace v1 name=<name> users=<n> items=<n> span_s=<seconds>
//	<t_seconds> <user> <item> <value>
//
// one event per line, compatible with awk/cut-style inspection.
func Save(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "# hyrec-trace v1 name=%s users=%d items=%d span_s=%d\n",
		tr.Name, tr.Users, tr.Items, int64(tr.Span.Seconds())); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	for _, ev := range tr.Events {
		if _, err := fmt.Fprintf(bw, "%d %d %d %g\n",
			int64(ev.T.Seconds()), uint32(ev.User), uint32(ev.Item), ev.Value); err != nil {
			return fmt.Errorf("dataset: write event: %w", err)
		}
	}
	return bw.Flush()
}

// SaveFile writes a trace to path, creating or truncating it.
func SaveFile(path string, tr *Trace) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: close %s: %w", path, cerr)
		}
	}()
	return Save(f, tr)
}

// Load parses a trace written by Save.
func Load(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: empty input")
	}
	tr, err := parseHeader(sc.Text())
	if err != nil {
		return nil, err
	}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		ev, err := parseEvent(text)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	return tr, nil
}

// LoadFile parses a trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}

func parseHeader(line string) (*Trace, error) {
	if !strings.HasPrefix(line, "# hyrec-trace v1 ") {
		return nil, fmt.Errorf("dataset: bad header %q", line)
	}
	tr := &Trace{}
	for _, field := range strings.Fields(line[len("# hyrec-trace v1 "):]) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("dataset: bad header field %q", field)
		}
		switch key {
		case "name":
			tr.Name = val
		case "users", "items", "span_s":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: bad header value %q: %w", field, err)
			}
			switch key {
			case "users":
				tr.Users = int(n)
			case "items":
				tr.Items = int(n)
			case "span_s":
				tr.Span = time.Duration(n) * time.Second
			}
		}
	}
	return tr, nil
}

func parseEvent(line string) (Event, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Event{}, fmt.Errorf("want 4 fields, got %d", len(fields))
	}
	t, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad time: %w", err)
	}
	user, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return Event{}, fmt.Errorf("bad user: %w", err)
	}
	item, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return Event{}, fmt.Errorf("bad item: %w", err)
	}
	value, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad value: %w", err)
	}
	return Event{
		T:     time.Duration(t) * time.Second,
		User:  core.UserID(user),
		Item:  core.ItemID(item),
		Value: value,
	}, nil
}
