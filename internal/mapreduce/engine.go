package mapreduce

import (
	"runtime"
	"sync"
	"time"
)

// KV is a key-value pair flowing between phases.
type KV[K comparable, V any] struct {
	Key K
	Val V
}

// Stats records what one map-reduce job did: task counts, record counts
// and measured per-task durations, sufficient for a Cluster to schedule
// the job and price its overheads.
type Stats struct {
	MapTasks          int
	ReduceTasks       int
	MapTaskTimes      []time.Duration
	ReduceTaskTimes   []time.Duration
	MapTaskRecords    []int64 // records emitted by each map task
	ReduceTaskRecords []int64 // records consumed by each reduce task
	RealTime          time.Duration
}

// TotalRecords returns all records that crossed the shuffle.
func (s Stats) TotalRecords() int64 {
	var n int64
	for _, r := range s.MapTaskRecords {
		n += r
	}
	return n
}

// SimulatedWallClock prices the job on cluster c: startup, then the map
// wave, then the reduce wave, with per-record overhead added to each
// task's measured duration.
func (s Stats) SimulatedWallClock(c Cluster) time.Duration {
	mapDur := make([]time.Duration, len(s.MapTaskTimes))
	for i, d := range s.MapTaskTimes {
		mapDur[i] = d + time.Duration(s.MapTaskRecords[i])*c.PerRecord
	}
	redDur := make([]time.Duration, len(s.ReduceTaskTimes))
	for i, d := range s.ReduceTaskTimes {
		redDur[i] = d + time.Duration(s.ReduceTaskRecords[i])*c.PerRecord
	}
	return c.JobStartup + c.Makespan(mapDur) + c.Makespan(redDur)
}

// Options tunes a Run invocation.
type Options struct {
	// MapTasks is the number of input splits (defaults to 4×workers).
	MapTasks int
	// ReduceTasks is the number of key partitions (defaults to MapTasks).
	ReduceTasks int
	// Workers bounds host parallelism (defaults to GOMAXPROCS).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MapTasks <= 0 {
		o.MapTasks = 4 * o.Workers
	}
	if o.ReduceTasks <= 0 {
		o.ReduceTasks = o.MapTasks
	}
	return o
}

// Run executes a full map-shuffle-reduce over inputs: mapf is applied to
// every input (grouped into opt.MapTasks splits), emitted pairs are
// partitioned by key hash into opt.ReduceTasks groups, and reducef folds
// each key's values. Results are returned unordered along with the
// measured Stats.
func Run[I any, K comparable, V any, R any](
	inputs []I,
	mapf func(I, func(K, V)),
	reducef func(K, []V) R,
	hash func(K) uint64,
	opt Options,
) ([]KV[K, R], Stats) {
	opt = opt.withDefaults()
	start := time.Now()

	nMap := opt.MapTasks
	if nMap > len(inputs) {
		nMap = len(inputs)
	}
	if nMap == 0 {
		return nil, Stats{RealTime: time.Since(start)}
	}

	stats := Stats{
		MapTasks:          nMap,
		ReduceTasks:       opt.ReduceTasks,
		MapTaskTimes:      make([]time.Duration, nMap),
		MapTaskRecords:    make([]int64, nMap),
		ReduceTaskTimes:   make([]time.Duration, opt.ReduceTasks),
		ReduceTaskRecords: make([]int64, opt.ReduceTasks),
	}

	// --- Map phase: each split emits into per-reduce-partition buckets. ---
	type bucket map[K][]V
	partitioned := make([][]bucket, nMap) // [mapTask][reducePart]
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Workers)
	chunk := (len(inputs) + nMap - 1) / nMap
	for t := 0; t < nMap; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > len(inputs) {
			hi = len(inputs)
		}
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			taskStart := time.Now()
			buckets := make([]bucket, opt.ReduceTasks)
			var emitted int64
			emit := func(k K, v V) {
				p := int(hash(k) % uint64(opt.ReduceTasks))
				if buckets[p] == nil {
					buckets[p] = make(bucket)
				}
				buckets[p][k] = append(buckets[p][k], v)
				emitted++
			}
			for i := lo; i < hi; i++ {
				mapf(inputs[i], emit)
			}
			partitioned[t] = buckets
			stats.MapTaskTimes[t] = time.Since(taskStart)
			stats.MapTaskRecords[t] = emitted
		}(t, lo, hi)
	}
	wg.Wait()

	// --- Shuffle + reduce phase: one task per partition. ---
	results := make([][]KV[K, R], opt.ReduceTasks)
	for p := 0; p < opt.ReduceTasks; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			taskStart := time.Now()
			merged := make(map[K][]V)
			var consumed int64
			for t := 0; t < nMap; t++ {
				if partitioned[t] == nil || partitioned[t][p] == nil {
					continue
				}
				for k, vs := range partitioned[t][p] {
					merged[k] = append(merged[k], vs...)
					consumed += int64(len(vs))
				}
			}
			out := make([]KV[K, R], 0, len(merged))
			for k, vs := range merged {
				out = append(out, KV[K, R]{Key: k, Val: reducef(k, vs)})
			}
			results[p] = out
			stats.ReduceTaskTimes[p] = time.Since(taskStart)
			stats.ReduceTaskRecords[p] = consumed
		}(p)
	}
	wg.Wait()

	var flat []KV[K, R]
	for _, part := range results {
		flat = append(flat, part...)
	}
	stats.RealTime = time.Since(start)
	return flat, stats
}

// HashUint64 is a convenience key-hash for integer keys.
func HashUint64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	return k
}
