package mapreduce

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func TestWordCount(t *testing.T) {
	docs := []string{"a b a", "b c", "a"}
	out, stats := Run(
		docs,
		func(doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		func(_ string, ones []int) int { return len(ones) },
		hashString,
		Options{MapTasks: 2, ReduceTasks: 3},
	)
	got := map[string]int{}
	for _, kv := range out {
		got[kv.Key] = kv.Val
	}
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%q = %d, want %d", k, got[k], v)
		}
	}
	if stats.MapTasks != 2 || stats.ReduceTasks != 3 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.TotalRecords() != 6 {
		t.Errorf("records = %d, want 6", stats.TotalRecords())
	}
}

func TestEmptyInput(t *testing.T) {
	out, stats := Run(
		nil,
		func(int, func(int, int)) {},
		func(_ int, vs []int) int { return len(vs) },
		func(k int) uint64 { return HashUint64(uint64(k)) },
		Options{},
	)
	if len(out) != 0 || stats.MapTasks != 0 {
		t.Fatalf("out=%v stats=%+v", out, stats)
	}
	if stats.SimulatedWallClock(SingleNode4Core()) != 0 {
		t.Fatal("empty job has nonzero simulated time")
	}
}

func TestMoreTasksThanInputs(t *testing.T) {
	out, stats := Run(
		[]int{1, 2},
		func(x int, emit func(int, int)) { emit(x, x) },
		func(_ int, vs []int) int { return vs[0] },
		func(k int) uint64 { return HashUint64(uint64(k)) },
		Options{MapTasks: 100},
	)
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if stats.MapTasks > 2 {
		t.Fatalf("map tasks = %d, want ≤2", stats.MapTasks)
	}
}

// Property: Run produces the same aggregate as a sequential reference for
// arbitrary integer streams, independent of task counts.
func TestMatchesSequentialProperty(t *testing.T) {
	prop := func(xs []uint8, mapTasks, reduceTasks uint8) bool {
		inputs := make([]int, len(xs))
		for i, x := range xs {
			inputs[i] = int(x % 16)
		}
		out, _ := Run(
			inputs,
			func(x int, emit func(int, int)) { emit(x, 1) },
			func(_ int, ones []int) int { return len(ones) },
			func(k int) uint64 { return HashUint64(uint64(k)) },
			Options{MapTasks: int(mapTasks%8) + 1, ReduceTasks: int(reduceTasks%8) + 1},
		)
		want := map[int]int{}
		for _, x := range inputs {
			want[x]++
		}
		if len(out) != len(want) {
			return false
		}
		for _, kv := range out {
			if want[kv.Key] != kv.Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanSingleSlot(t *testing.T) {
	c := Cluster{Nodes: 1, CoresPerNode: 1}
	tasks := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if got := c.Makespan(tasks); got != 6*time.Second {
		t.Fatalf("makespan = %v, want 6s", got)
	}
}

func TestMakespanPerfectSplit(t *testing.T) {
	c := Cluster{Nodes: 1, CoresPerNode: 2}
	tasks := []time.Duration{3 * time.Second, 2 * time.Second, 1 * time.Second}
	// LPT: slot1=3s, slot2=2+1=3s → makespan 3s.
	if got := c.Makespan(tasks); got != 3*time.Second {
		t.Fatalf("makespan = %v, want 3s", got)
	}
}

func TestMakespanEmptyAndDegenerate(t *testing.T) {
	c := Cluster{Nodes: 0, CoresPerNode: 0}
	if got := c.Makespan(nil); got != 0 {
		t.Fatalf("empty makespan = %v", got)
	}
	if c.TotalCores() != 1 {
		t.Fatalf("degenerate cluster cores = %d", c.TotalCores())
	}
}

// Property: makespan is between max(task) and sum(task), and never
// increases when cores are added.
func TestMakespanBoundsProperty(t *testing.T) {
	prop := func(raw []uint16, cores uint8) bool {
		if len(raw) == 0 {
			return true
		}
		tasks := make([]time.Duration, len(raw))
		var sum, max time.Duration
		for i, r := range raw {
			tasks[i] = time.Duration(r) * time.Millisecond
			sum += tasks[i]
			if tasks[i] > max {
				max = tasks[i]
			}
		}
		n := int(cores%8) + 1
		c1 := Cluster{Nodes: 1, CoresPerNode: n}
		c2 := Cluster{Nodes: 1, CoresPerNode: n + 1}
		m1, m2 := c1.Makespan(tasks), c2.Makespan(tasks)
		return m1 >= max && m1 <= sum && m2 <= m1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedWallClockAddsOverheads(t *testing.T) {
	s := Stats{
		MapTasks:          2,
		ReduceTasks:       1,
		MapTaskTimes:      []time.Duration{time.Second, time.Second},
		MapTaskRecords:    []int64{1000, 1000},
		ReduceTaskTimes:   []time.Duration{time.Second},
		ReduceTaskRecords: []int64{2000},
	}
	light := Cluster{Nodes: 1, CoresPerNode: 2}
	heavy := Cluster{Nodes: 1, CoresPerNode: 2, JobStartup: 10 * time.Second, PerRecord: time.Millisecond}
	lightTime := s.SimulatedWallClock(light)
	heavyTime := s.SimulatedWallClock(heavy)
	if lightTime != 2*time.Second { // map wave 1s (2 cores), reduce 1s
		t.Fatalf("light = %v, want 2s", lightTime)
	}
	// heavy: +10s startup, map tasks 1s+1s overhead each → wave 2s,
	// reduce 1s+2s → 3s. Total = 15s.
	if heavyTime != 15*time.Second {
		t.Fatalf("heavy = %v, want 15s", heavyTime)
	}
}

func TestClusterPresets(t *testing.T) {
	if SingleNode4Core().TotalCores() != 4 {
		t.Error("SingleNode4Core cores")
	}
	if HadoopTwoNodes().TotalCores() != 8 {
		t.Error("HadoopTwoNodes cores")
	}
	if HadoopSingleNode().JobStartup == 0 {
		t.Error("Hadoop preset lost its startup cost")
	}
}

func BenchmarkWordCount(b *testing.B) {
	docs := make([]string, 1000)
	for i := range docs {
		docs[i] = "alpha beta gamma delta epsilon"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(
			docs,
			func(doc string, emit func(string, int)) {
				for _, w := range strings.Fields(doc) {
					emit(w, 1)
				}
			},
			func(_ string, ones []int) int { return len(ones) },
			hashString,
			Options{},
		)
	}
}
