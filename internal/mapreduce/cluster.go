// Package mapreduce provides the in-memory map-reduce engine and the
// simulated-cluster model on which the centralized KNN baselines run
// (Figure 7: Exhaustive, MahoutSingle, ClusMahout, Offline-CRec).
//
// Computation is real: map and reduce functions execute on the host with
// per-task durations measured. Wall-clock on the paper's clusters is then
// obtained by scheduling the measured tasks onto a Cluster (nodes × cores)
// with Hadoop-style overheads (job startup, per-record serialization) —
// the substitution documented in DESIGN.md §2.3. Who-wins orderings come
// from real work; absolute times come from the schedule.
package mapreduce

import (
	"sort"
	"time"
)

// Cluster describes an execution platform for simulated scheduling.
type Cluster struct {
	// Nodes is the number of machines; CoresPerNode the parallel slots per
	// machine.
	Nodes        int
	CoresPerNode int
	// JobStartup is charged once per map-reduce job (Hadoop's JVM spawn,
	// scheduling and HDFS round trips; ~0 for lightweight in-memory
	// engines).
	JobStartup time.Duration
	// PerRecord is the serialization/deserialization overhead charged for
	// every record a task emits or consumes (Hadoop writes intermediate
	// records to disk; in-memory engines pass pointers).
	PerRecord time.Duration
}

// SingleNode4Core is the paper's lightweight single-node platform used by
// Offline-Ideal/Exhaustive and Offline-CRec (Phoenix-style in-memory
// map-reduce [46]).
func SingleNode4Core() Cluster {
	return Cluster{Nodes: 1, CoresPerNode: 4}
}

// HadoopSingleNode models MahoutSingle: one 4-core node under Hadoop, with
// job-startup and per-record costs calibrated to published Hadoop
// small-cluster figures (tens of seconds per job; microseconds per
// record).
func HadoopSingleNode() Cluster {
	return Cluster{Nodes: 1, CoresPerNode: 4, JobStartup: 15 * time.Second, PerRecord: 4 * time.Microsecond}
}

// HadoopTwoNodes models ClusMahout: two 4-core nodes under Hadoop.
func HadoopTwoNodes() Cluster {
	return Cluster{Nodes: 2, CoresPerNode: 4, JobStartup: 15 * time.Second, PerRecord: 4 * time.Microsecond}
}

// TotalCores returns the number of parallel task slots.
func (c Cluster) TotalCores() int {
	n := c.Nodes * c.CoresPerNode
	if n < 1 {
		return 1
	}
	return n
}

// Makespan schedules tasks with the given durations onto the cluster's
// slots using longest-processing-time-first list scheduling (a 4/3
// approximation of optimal, and close to what Hadoop's scheduler achieves
// on independent tasks) and returns the resulting wall-clock span.
func (c Cluster) Makespan(tasks []time.Duration) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	slots := c.TotalCores()
	sorted := make([]time.Duration, len(tasks))
	copy(sorted, tasks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	load := make([]time.Duration, slots)
	for _, d := range sorted {
		// Assign to the least-loaded slot.
		min := 0
		for s := 1; s < slots; s++ {
			if load[s] < load[min] {
				min = s
			}
		}
		load[min] += d
	}
	var max time.Duration
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}
