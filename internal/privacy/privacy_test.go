package privacy

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hyrec/internal/core"
)

func mustRR(t *testing.T, eps float64, numItems uint32, seed int64, opts ...Option) *RandomizedResponse {
	t.Helper()
	rr, err := NewRandomizedResponse(eps, numItems, seed, opts...)
	if err != nil {
		t.Fatalf("NewRandomizedResponse(%v, %d): %v", eps, numItems, err)
	}
	return rr
}

func profileOf(t *testing.T, u core.UserID, liked ...core.ItemID) core.Profile {
	t.Helper()
	p, err := core.ProfileFromSets(u, liked, nil)
	if err != nil {
		t.Fatalf("ProfileFromSets: %v", err)
	}
	return p
}

func TestNewRejectsBadParameters(t *testing.T) {
	cases := []struct {
		name     string
		eps      float64
		numItems uint32
	}{
		{"zero epsilon", 0, 100},
		{"negative epsilon", -1, 100},
		{"NaN epsilon", math.NaN(), 100},
		{"infinite epsilon", math.Inf(1), 100},
		{"empty universe", 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewRandomizedResponse(tc.eps, tc.numItems, 1); err == nil {
				t.Fatalf("expected error for eps=%v numItems=%d", tc.eps, tc.numItems)
			}
		})
	}
}

func TestProbabilitiesSatisfyRRIdentity(t *testing.T) {
	for _, eps := range []float64{0.1, 0.5, 1, 2, 4, 8} {
		rr := mustRR(t, eps, 1000, 1)
		// The defining DP property of binary RR: ln(p/q) = ε.
		got := math.Log(rr.KeepProb() / rr.FlipProb())
		if math.Abs(got-eps) > 1e-9 {
			t.Errorf("eps=%v: ln(p/q) = %v", eps, got)
		}
		if sum := rr.KeepProb() + rr.FlipProb(); math.Abs(sum-1) > 1e-9 {
			t.Errorf("eps=%v: p+q = %v, want 1", eps, sum)
		}
	}
}

// Statistical check of the mechanism's two flip rates over many trials.
func TestPerturbFlipRates(t *testing.T) {
	const (
		numItems = 400
		trials   = 300
		eps      = 1.0
	)
	rr := mustRR(t, eps, numItems, 42)
	liked := make([]core.ItemID, 0, numItems/2)
	for i := 0; i < numItems/2; i++ {
		liked = append(liked, core.ItemID(2*i)) // even items liked
	}
	p := profileOf(t, 7, liked...)

	kept, spurious := 0, 0
	for trial := 0; trial < trials; trial++ {
		out := rr.Perturb(p)
		for _, it := range out.Liked() {
			if uint32(it)%2 == 0 {
				kept++
			} else {
				spurious++
			}
		}
	}
	n := float64(trials * numItems / 2)
	keepRate := float64(kept) / n
	flipRate := float64(spurious) / n
	if math.Abs(keepRate-rr.KeepProb()) > 0.02 {
		t.Errorf("keep rate = %.4f, want ≈ %.4f", keepRate, rr.KeepProb())
	}
	if math.Abs(flipRate-rr.FlipProb()) > 0.02 {
		t.Errorf("flip rate = %.4f, want ≈ %.4f", flipRate, rr.FlipProb())
	}
}

func TestPerturbDropsDisliked(t *testing.T) {
	rr := mustRR(t, 2, 100, 1)
	p := core.NewProfile(3).WithRating(5, true).WithRating(9, false).WithRating(11, false)
	out := rr.Perturb(p)
	if len(out.Disliked()) != 0 {
		t.Fatalf("perturbed profile leaks disliked items: %v", out.Disliked())
	}
	if out.User() != p.User() {
		t.Fatalf("user changed: %v -> %v", p.User(), out.User())
	}
}

func TestPerturbPassesThroughOutOfUniverseItems(t *testing.T) {
	rr := mustRR(t, 8, 10, 1) // tiny universe, high epsilon
	p := profileOf(t, 1, 3, 9999)
	sawOutside := false
	for i := 0; i < 50; i++ {
		out := rr.Perturb(p)
		for _, it := range out.Liked() {
			if it == 9999 {
				sawOutside = true
			}
			if uint32(it) >= 10 && it != 9999 {
				t.Fatalf("minted item outside universe: %v", it)
			}
		}
	}
	if !sawOutside {
		t.Fatal("out-of-universe item was never passed through")
	}
}

// Property: output profiles are structurally valid — sorted, duplicate-free
// liked sets confined to the universe (plus pass-throughs), disjoint from
// the (empty) disliked set.
func TestPerturbOutputWellFormed(t *testing.T) {
	rr := mustRR(t, 0.5, 256, 99)
	prop := func(rawLiked []uint8, uid uint16) bool {
		liked := make([]core.ItemID, 0, len(rawLiked))
		for _, b := range rawLiked {
			liked = append(liked, core.ItemID(b))
		}
		p, err := core.ProfileFromSets(core.UserID(uid), liked, nil)
		if err != nil {
			return false
		}
		out := rr.Perturb(p)
		got := out.Liked()
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false // unsorted or duplicate
			}
		}
		for _, it := range got {
			if uint32(it) >= 256 {
				return false // outside universe (no pass-throughs possible here)
			}
		}
		return len(out.Disliked()) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbDeterministicWithSeed(t *testing.T) {
	p := profileOf(t, 1, 2, 4, 6, 8, 10)
	a := mustRR(t, 1, 100, 7)
	b := mustRR(t, 1, 100, 7)
	for i := 0; i < 10; i++ {
		pa, pb := a.Perturb(p), b.Perturb(p)
		if !pa.Equal(pb) {
			t.Fatalf("iteration %d: same seed diverged: %v vs %v", i, pa.Liked(), pb.Liked())
		}
	}
}

func TestMemoReplaysSameRelease(t *testing.T) {
	rr := mustRR(t, 1, 100, 7, WithMemo())
	p := profileOf(t, 1, 2, 4, 6, 8, 10)
	first := rr.Perturb(p)
	for i := 0; i < 20; i++ {
		if out := rr.Perturb(p); !out.Equal(first) {
			t.Fatalf("memoized release changed on call %d", i)
		}
	}
	if rr.MemoLen() != 1 {
		t.Fatalf("MemoLen = %d, want 1", rr.MemoLen())
	}
	// A new profile version draws fresh noise and a new memo entry.
	p2 := p.WithRating(12, true)
	rr.Perturb(p2)
	if rr.MemoLen() != 2 {
		t.Fatalf("MemoLen after version bump = %d, want 2", rr.MemoLen())
	}
}

func TestFreshNoiseVariesAcrossCalls(t *testing.T) {
	rr := mustRR(t, 0.5, 1000, 7) // low epsilon: heavy noise
	p := profileOf(t, 1, 1, 2, 3, 4, 5)
	first := rr.Perturb(p)
	for i := 0; i < 10; i++ {
		if !rr.Perturb(p).Equal(first) {
			return // observed variation, as expected
		}
	}
	t.Fatal("10 fresh-noise releases were all identical")
}

// The unbiased estimator recovers true counts in expectation.
func TestCorrectedCountUnbiased(t *testing.T) {
	const (
		numItems = 200
		n        = 3000 // population of perturbed releases
		eps      = 1.0
	)
	rr := mustRR(t, eps, numItems, 11)
	// 40% of the population likes item 17; nobody likes item 23.
	liker := profileOf(t, 1, 17)
	nonLiker := profileOf(t, 2, 50)
	observed17, observed23 := 0, 0
	for i := 0; i < n; i++ {
		src := nonLiker
		if i%5 < 2 { // 40%
			src = liker
		}
		out := rr.Perturb(src)
		if out.LikedContains(17) {
			observed17++
		}
		if out.LikedContains(23) {
			observed23++
		}
	}
	est17 := rr.CorrectedCount(observed17, n)
	est23 := rr.CorrectedCount(observed23, n)
	want17 := 0.4 * n
	if math.Abs(est17-want17) > 0.06*n {
		t.Errorf("corrected count for item17 = %.0f, want ≈ %.0f", est17, want17)
	}
	if math.Abs(est23) > 0.06*n {
		t.Errorf("corrected count for item23 = %.0f, want ≈ 0", est23)
	}
}

// Bias correction is strictly increasing in the observed count, so the
// top-r ranking of Algorithm 2 on perturbed candidates is identical with
// and without correction.
func TestRankingInvariance(t *testing.T) {
	rr := mustRR(t, 1, 100, 1)
	prop := func(counts []uint8) bool {
		n := 500
		corrected := make([]float64, len(counts))
		for i, c := range counts {
			corrected[i] = rr.CorrectedCount(int(c), n)
		}
		rawOrder := argsortDesc(func(i int) float64 { return float64(counts[i]) }, len(counts))
		corrOrder := argsortDesc(func(i int) float64 { return corrected[i] }, len(counts))
		for i := range rawOrder {
			if rawOrder[i] != corrOrder[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func argsortDesc(val func(int) float64, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return val(idx[a]) > val(idx[b]) })
	return idx
}

func TestBinomialSamplerMatchesMean(t *testing.T) {
	rr := mustRR(t, 1, 100, 5)
	const trials = 2000
	cases := []struct {
		n int
		p float64
	}{
		{100, 0.1}, {1000, 0.01}, {50, 0.5}, {10, 0.9},
	}
	for _, tc := range cases {
		sum := 0
		for i := 0; i < trials; i++ {
			sum += rr.binomialLocked(tc.n, tc.p)
		}
		mean := float64(sum) / trials
		want := float64(tc.n) * tc.p
		sd := math.Sqrt(float64(tc.n) * tc.p * (1 - tc.p))
		if math.Abs(mean-want) > 4*sd/math.Sqrt(trials)+0.5 {
			t.Errorf("Binomial(%d,%.2f): mean = %.2f, want ≈ %.2f", tc.n, tc.p, mean, want)
		}
	}
}

func TestBinomialSamplerEdgeCases(t *testing.T) {
	rr := mustRR(t, 1, 100, 5)
	if got := rr.binomialLocked(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := rr.binomialLocked(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := rr.binomialLocked(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
	if got := rr.binomialLocked(-5, 0.5); got != 0 {
		t.Errorf("Binomial(-5, .5) = %d", got)
	}
}

// Dense spurious draws must not loop forever and must respect the
// available-complement bound.
func TestSampleAbsentDense(t *testing.T) {
	rr := mustRR(t, 0.1, 50, 3) // eps=0.1 → flip ≈ 0.475
	present := []core.ItemID{0, 1, 2, 3, 4}
	out := rr.sampleAbsentLocked(present, 100) // ask for more than exist
	if len(out) != 45 {
		t.Fatalf("got %d absent items, want all 45", len(out))
	}
	seen := make(map[core.ItemID]bool)
	for _, it := range out {
		if seen[it] {
			t.Fatalf("duplicate %v", it)
		}
		seen[it] = true
		if containsSortedID(present, it) {
			t.Fatalf("sampled a present item %v", it)
		}
	}
}

func TestAccountantComposition(t *testing.T) {
	a := NewAccountant(0.5)
	if got := a.Spent(1); got != 0 {
		t.Fatalf("fresh user spent %v", got)
	}
	a.Charge(1)
	a.Charge(1)
	a.Charge(2)
	if got := a.Spent(1); got != 1.0 {
		t.Errorf("user1 spent %v, want 1.0", got)
	}
	if got := a.Releases(1); got != 2 {
		t.Errorf("user1 releases %d, want 2", got)
	}
	if got := a.MaxSpent(); got != 1.0 {
		t.Errorf("MaxSpent %v, want 1.0", got)
	}
}

func TestAccountantGuardCharges(t *testing.T) {
	rr := mustRR(t, 1, 100, 1)
	a := NewAccountant(rr.Epsilon())
	filter := a.Guard(rr.Filter())
	p := profileOf(t, 9, 1, 2, 3)
	filter(p)
	filter(p)
	if got := a.Releases(9); got != 2 {
		t.Fatalf("guarded filter charged %d releases, want 2", got)
	}
}

func TestConcurrentPerturb(t *testing.T) {
	rr := mustRR(t, 1, 500, 1, WithMemo())
	p := profileOf(t, 1, 1, 2, 3, 4, 5, 6, 7, 8)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				q := p
				if rng.Intn(2) == 0 {
					q = p.WithRating(core.ItemID(rng.Intn(500)), true)
				}
				out := rr.Perturb(q)
				if out.User() != q.User() {
					panic("user mismatch")
				}
			}
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
