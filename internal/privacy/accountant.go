package privacy

import (
	"sync"

	"hyrec/internal/core"
)

// Accountant tracks per-user privacy expenditure under sequential
// composition: every release of a user's (fresh-noise) perturbed profile
// spends ε, so after n releases the user's cumulative guarantee is n·ε.
// Content providers can consult it to stop sampling over-exposed users or
// to switch them to memoized noise.
//
// Safe for concurrent use.
type Accountant struct {
	epsilon float64

	mu       sync.Mutex
	releases map[core.UserID]int
}

// NewAccountant tracks spend at epsilon per release.
func NewAccountant(epsilonPerRelease float64) *Accountant {
	return &Accountant{
		epsilon:  epsilonPerRelease,
		releases: make(map[core.UserID]int),
	}
}

// Charge records one release of u's perturbed profile and returns the new
// cumulative spend.
func (a *Accountant) Charge(u core.UserID) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.releases[u]++
	return float64(a.releases[u]) * a.epsilon
}

// Spent returns u's cumulative privacy spend (0 for unseen users).
func (a *Accountant) Spent(u core.UserID) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return float64(a.releases[u]) * a.epsilon
}

// Releases returns how many times u's profile has been released.
func (a *Accountant) Releases(u core.UserID) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.releases[u]
}

// MaxSpent returns the largest cumulative spend across all users, the
// quantity a provider would alert on.
func (a *Accountant) MaxSpent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	max := 0
	for _, n := range a.releases {
		if n > max {
			max = n
		}
	}
	return float64(max) * a.epsilon
}

// Guard wraps a profile filter so that every invocation is charged to the
// accountant: the composition point between mechanism and budget tracking.
func (a *Accountant) Guard(filter func(core.Profile) core.Profile) func(core.Profile) core.Profile {
	return func(p core.Profile) core.Profile {
		a.Charge(p.User())
		return filter(p)
	}
}
