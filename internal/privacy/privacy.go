// Package privacy implements the stronger privacy mechanism the paper's
// concluding remarks call for: ε-local-differential-privacy perturbation of
// the profiles HyRec ships inside candidate sets.
//
// The anonymous mapping of Section 3.1 hides *who* a profile belongs to but
// ships the profile's item set verbatim, so an adversary who can
// cross-check items against an external dataset may re-identify users
// (the paper cites the Netflix-prize attack). Randomized response closes
// that channel: each bit of the liked-item vector is reported truthfully
// with probability e^ε/(1+e^ε) and flipped otherwise, which is the
// canonical ε-differentially-private release of a binary attribute. The
// perturbation runs on the server just before profiles leave it, so widgets
// and the wire format are untouched.
//
// Two deployment modes are provided:
//
//   - Fresh noise per job (NewRandomizedResponse + Filter): every release
//     re-randomises. Simple, but an adversary who observes the same profile
//     in many candidate sets can average the noise away; the privacy budget
//     grows linearly with releases (track it with an Accountant).
//   - Memoized noise (WithMemo): one perturbation is drawn per profile
//     version and replayed for every release of that version, the
//     "permanent randomized response" defence introduced by RAPPOR. Repeat
//     observations then reveal nothing new; the budget is ε per profile
//     *version* rather than per release.
//
// A useful structural fact, proved in TestRankingInvariance: correcting the
// observed popularity counts for the randomisation (CorrectedCount) is a
// strictly increasing affine map, so the ranking produced by Algorithm 2 on
// perturbed profiles is already the ranking a bias-corrected estimator
// would produce. Recommendation quality degrades only through the noise
// itself, not through estimator bias.
package privacy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"hyrec/internal/core"
)

// ErrBadEpsilon reports a non-positive or NaN privacy parameter.
var ErrBadEpsilon = errors.New("privacy: epsilon must be positive and finite")

// ErrBadUniverse reports an empty item universe.
var ErrBadUniverse = errors.New("privacy: item universe must be non-empty")

// RandomizedResponse perturbs binary liked-item vectors under ε-local
// differential privacy. Item identifiers are assumed to live in the dense
// universe [0, NumItems); identifiers outside the universe pass through
// unperturbed (they cannot be flipped on, so keeping them truthful is the
// conservative choice for utility and is documented behaviour, not a
// privacy guarantee — size the universe to cover the catalogue).
//
// Safe for concurrent use.
type RandomizedResponse struct {
	epsilon  float64
	numItems uint32
	keep     float64 // P(report 1 | true 1) = e^ε / (1+e^ε)
	flip     float64 // P(report 1 | true 0) = 1 / (1+e^ε)

	mu   sync.Mutex
	rng  *rand.Rand
	memo map[memoKey][]core.ItemID // nil unless WithMemo
}

type memoKey struct {
	user    core.UserID
	version uint64
}

// Option customises a RandomizedResponse.
type Option func(*RandomizedResponse)

// WithMemo enables permanent randomized response: the perturbed liked set
// is drawn once per (user, profile-version) pair and replayed for every
// subsequent release of that version, defeating noise-averaging attacks.
// The memo table grows by one entry per profile version released; callers
// replaying long traces should prefer fresh noise or periodically rebuild
// the mechanism.
func WithMemo() Option {
	return func(rr *RandomizedResponse) { rr.memo = make(map[memoKey][]core.ItemID) }
}

// NewRandomizedResponse builds a mechanism with privacy parameter epsilon
// over the item universe [0, numItems). Seed drives all randomness, so
// replays are deterministic.
func NewRandomizedResponse(epsilon float64, numItems uint32, seed int64, opts ...Option) (*RandomizedResponse, error) {
	if math.IsNaN(epsilon) || epsilon <= 0 || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("%w: got %v", ErrBadEpsilon, epsilon)
	}
	if numItems == 0 {
		return nil, ErrBadUniverse
	}
	e := math.Exp(epsilon)
	rr := &RandomizedResponse{
		epsilon:  epsilon,
		numItems: numItems,
		keep:     e / (1 + e),
		flip:     1 / (1 + e),
		rng:      rand.New(rand.NewSource(seed)),
	}
	for _, opt := range opts {
		opt(rr)
	}
	return rr, nil
}

// Epsilon returns the per-release privacy parameter.
func (rr *RandomizedResponse) Epsilon() float64 { return rr.epsilon }

// KeepProb returns P(item reported | item present) = e^ε/(1+e^ε).
func (rr *RandomizedResponse) KeepProb() float64 { return rr.keep }

// FlipProb returns P(item reported | item absent) = 1/(1+e^ε).
func (rr *RandomizedResponse) FlipProb() float64 { return rr.flip }

// Perturb returns a differentially-private release of p: the liked set is
// passed through per-bit randomized response and the disliked set is
// dropped entirely (candidate profiles' disliked sets are never read by
// the widget's KNN selection or recommendation, so releasing them would
// spend privacy budget for zero utility).
func (rr *RandomizedResponse) Perturb(p core.Profile) core.Profile {
	rr.mu.Lock()
	defer rr.mu.Unlock()

	if rr.memo != nil {
		key := memoKey{user: p.User(), version: p.Version()}
		if liked, ok := rr.memo[key]; ok {
			return mustProfile(p.User(), liked)
		}
		liked := rr.perturbLocked(p.Liked())
		rr.memo[key] = liked
		return mustProfile(p.User(), liked)
	}
	return mustProfile(p.User(), rr.perturbLocked(p.Liked()))
}

// Filter adapts the mechanism to the server's CandidateFilter hook.
func (rr *RandomizedResponse) Filter() func(core.Profile) core.Profile {
	return rr.Perturb
}

// perturbLocked draws one randomized-response release of the liked set.
// Caller holds rr.mu.
func (rr *RandomizedResponse) perturbLocked(liked []core.ItemID) []core.ItemID {
	out := make([]core.ItemID, 0, len(liked))
	inUniverse := 0
	for _, item := range liked {
		if uint32(item) >= rr.numItems {
			out = append(out, item) // outside the universe: pass through
			continue
		}
		inUniverse++
		if rr.rng.Float64() < rr.keep {
			out = append(out, item)
		}
	}

	absent := int(rr.numItems) - inUniverse
	spurious := rr.binomialLocked(absent, rr.flip)
	if spurious > 0 {
		out = append(out, rr.sampleAbsentLocked(liked, spurious)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// binomialLocked samples Binomial(n, p) in O(np) expected time using
// geometric gap skipping, which keeps small-flip-probability perturbation
// cheap even over large item universes. Caller holds rr.mu.
func (rr *RandomizedResponse) binomialLocked(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	logq := math.Log1p(-p)
	count := 0
	pos := 0
	for {
		u := rr.rng.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		skip := int(math.Log(u) / logq)
		pos += skip + 1
		if pos > n {
			return count
		}
		count++
	}
}

// sampleAbsentLocked draws `count` distinct item IDs from the universe that
// are not in the (sorted) present set. Rejection sampling when the draw is
// sparse, complement enumeration when it is dense. Caller holds rr.mu.
func (rr *RandomizedResponse) sampleAbsentLocked(present []core.ItemID, count int) []core.ItemID {
	m := int(rr.numItems)
	inUniverse := 0
	for _, it := range present {
		if uint32(it) < rr.numItems {
			inUniverse++
		}
	}
	available := m - inUniverse
	if count > available {
		count = available
	}
	if count <= 0 {
		return nil
	}

	// Dense draw: walking the complement once beats quadratic rejection.
	if count*3 > available {
		complement := make([]core.ItemID, 0, available)
		for id := uint32(0); id < rr.numItems; id++ {
			if !containsSortedID(present, core.ItemID(id)) {
				complement = append(complement, core.ItemID(id))
			}
		}
		rr.rng.Shuffle(len(complement), func(i, j int) {
			complement[i], complement[j] = complement[j], complement[i]
		})
		return complement[:count]
	}

	chosen := make(map[core.ItemID]struct{}, count)
	out := make([]core.ItemID, 0, count)
	for len(out) < count {
		id := core.ItemID(rr.rng.Intn(m))
		if containsSortedID(present, id) {
			continue
		}
		if _, dup := chosen[id]; dup {
			continue
		}
		chosen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// CorrectedCount returns the unbiased estimate of how many of n true
// profiles contain an item, given that `observed` of their perturbed
// releases report it: (observed − n·q) / (p − q) with p = KeepProb,
// q = FlipProb. The map is strictly increasing in `observed`, so rankings
// computed on raw perturbed counts (as Algorithm 2 does) coincide with
// rankings on corrected counts.
func (rr *RandomizedResponse) CorrectedCount(observed, n int) float64 {
	return (float64(observed) - float64(n)*rr.flip) / (rr.keep - rr.flip)
}

// MemoLen reports the number of memoized releases (0 without WithMemo);
// exposed so deployments can watch the memo table's growth.
func (rr *RandomizedResponse) MemoLen() int {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return len(rr.memo)
}

// mustProfile builds a liked-only profile from an already-deduplicated set.
func mustProfile(u core.UserID, liked []core.ItemID) core.Profile {
	p, err := core.ProfileFromSets(u, liked, nil)
	if err != nil {
		// Unreachable: disliked is empty, so the sets cannot intersect.
		panic(fmt.Sprintf("privacy: internal profile construction: %v", err))
	}
	return p
}

func containsSortedID(ids []core.ItemID, x core.ItemID) bool {
	i := sort.Search(len(ids), func(j int) bool { return ids[j] >= x })
	return i < len(ids) && ids[i] == x
}
