package metrics

import (
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/replay"
)

func profileOf(u core.UserID, liked ...core.ItemID) core.Profile {
	p := core.NewProfile(u)
	for _, i := range liked {
		p = p.WithRating(i, true)
	}
	return p
}

func fixtureSource() MapSource {
	return MapSource{
		1: profileOf(1, 1, 2, 3),
		2: profileOf(2, 1, 2, 3), // identical to 1
		3: profileOf(3, 1, 2),    // close to 1,2
		4: profileOf(4, 9, 10),   // distant
	}
}

func TestMapSource(t *testing.T) {
	src := fixtureSource()
	if got := src.Profile(1); got.NumLiked() != 3 {
		t.Fatalf("Profile(1) = %v", got)
	}
	if got := src.Profile(99); got.Size() != 0 {
		t.Fatalf("unknown user = %v", got)
	}
	if len(src.Users()) != 4 {
		t.Fatalf("Users = %v", src.Users())
	}
}

func TestIdealKNN(t *testing.T) {
	src := fixtureSource()
	ideal := IdealKNN(src, 2, core.Cosine{})
	if len(ideal) != 4 {
		t.Fatalf("ideal covers %d users", len(ideal))
	}
	// User 1's best neighbour is 2 (sim 1.0), then 3.
	ns := ideal[1]
	if len(ns) != 2 || ns[0].User != 2 || ns[1].User != 3 {
		t.Fatalf("ideal[1] = %v", ns)
	}
	if ns[0].Sim != 1.0 {
		t.Fatalf("sim = %v", ns[0].Sim)
	}
	// No self neighbours anywhere.
	for u, hood := range ideal {
		for _, n := range hood {
			if n.User == u {
				t.Fatalf("user %v is her own ideal neighbour", u)
			}
		}
	}
}

func TestIdealKNNParallelConsistency(t *testing.T) {
	// Many users to exercise the worker split; results must match the
	// single-user brute force.
	src := MapSource{}
	for u := core.UserID(0); u < 200; u++ {
		p := core.NewProfile(u)
		for j := 0; j < 8; j++ {
			p = p.WithRating(core.ItemID((int(u)*7+j*13)%60), true)
		}
		src[u] = p
	}
	ideal := IdealKNN(src, 5, core.Cosine{})
	profiles := make([]core.Profile, 0, len(src))
	for _, p := range src {
		profiles = append(profiles, p)
	}
	for _, u := range []core.UserID{0, 37, 199} {
		want := core.SelectKNN(src[u], profiles, 5, core.Cosine{})
		got := ideal[u]
		if len(got) != len(want) {
			t.Fatalf("user %v: %v vs %v", u, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("user %v entry %d: %v vs %v", u, i, got[i], want[i])
			}
		}
	}
}

func TestViewSimilarity(t *testing.T) {
	src := fixtureSource()
	neighbors := func(u core.UserID) []core.UserID {
		if u == 1 {
			return []core.UserID{2} // sim 1.0
		}
		return nil
	}
	// Only user 1 has a neighbourhood → average = 1.0.
	if got := ViewSimilarity(src, neighbors, core.Cosine{}); got != 1.0 {
		t.Fatalf("view similarity = %v", got)
	}
	// Nobody has neighbours → 0.
	if got := ViewSimilarity(src, func(core.UserID) []core.UserID { return nil }, core.Cosine{}); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestIdealViewSimilarityIsUpperBound(t *testing.T) {
	src := fixtureSource()
	idealV := IdealViewSimilarity(src, 2, core.Cosine{})
	// Any other neighbour assignment scores no higher.
	arbitrary := func(u core.UserID) []core.UserID {
		switch u {
		case 1:
			return []core.UserID{4} // bad choice
		case 2:
			return []core.UserID{3, 4}
		default:
			return []core.UserID{1}
		}
	}
	otherV := ViewSimilarity(src, arbitrary, core.Cosine{})
	if otherV > idealV {
		t.Fatalf("ideal %v beaten by arbitrary %v", idealV, otherV)
	}
}

func TestPerUserViewRatio(t *testing.T) {
	src := fixtureSource()
	// Give user 1 her ideal neighbours and user 2 a bad neighbourhood.
	neighbors := func(u core.UserID) []core.UserID {
		switch u {
		case 1:
			return []core.UserID{2, 3}
		case 2:
			return []core.UserID{4}
		default:
			return nil
		}
	}
	ratios := PerUserViewRatio(src, neighbors, 2, core.Cosine{})
	if r, ok := ratios[1]; !ok || r.Ratio < 0.99 || r.ProfileSize != 3 {
		t.Fatalf("ratios[1] = %+v", ratios[1])
	}
	if r := ratios[2]; r.Ratio != 0 {
		t.Fatalf("ratios[2] = %+v (disjoint neighbour should score 0)", r)
	}
	// Users without stored neighbourhoods still appear (ratio 0) as long
	// as their ideal similarity is positive.
	if _, ok := ratios[3]; !ok {
		t.Fatal("user 3 missing")
	}
}

// perfectOracle recommends exactly the item the next test event rates —
// EvaluateQuality must then count every positive as a hit.
type perfectOracle struct {
	answers map[core.UserID]core.ItemID
}

func (o *perfectOracle) Name() string                        { return "oracle" }
func (o *perfectOracle) Rate(time.Duration, core.Rating)     {}
func (o *perfectOracle) Neighbors(core.UserID) []core.UserID { return nil }
func (o *perfectOracle) Tick(time.Duration)                  {}
func (o *perfectOracle) Recommend(_ time.Duration, u core.UserID, n int) []core.ItemID {
	if item, ok := o.answers[u]; ok && n > 0 {
		return []core.ItemID{item}
	}
	return nil
}

var _ replay.System = (*perfectOracle)(nil)

func TestEvaluateQualityPerfectOracle(t *testing.T) {
	test := []dataset.BinaryEvent{
		{T: 1, User: 1, Item: 10, Liked: true},
		{T: 2, User: 2, Item: 20, Liked: true},
		{T: 3, User: 3, Item: 30, Liked: false}, // negative: not counted
	}
	oracle := &perfectOracle{answers: map[core.UserID]core.ItemID{1: 10, 2: 20}}
	res := EvaluateQuality(oracle, nil, test, 5)
	if res.Positives != 2 {
		t.Fatalf("positives = %d", res.Positives)
	}
	for n := 1; n <= 5; n++ {
		if res.Recall(n) != 1.0 {
			t.Fatalf("recall(%d) = %v", n, res.Recall(n))
		}
	}
}

func TestEvaluateQualityHitPosition(t *testing.T) {
	// Oracle returns the target in position 3: hits must count for n≥3 only.
	oracle := &oracleAtPosition{}
	test := []dataset.BinaryEvent{{T: 1, User: 1, Item: 42, Liked: true}}
	res := EvaluateQuality(oracle, nil, test, 5)
	if res.Hits[0] != 0 || res.Hits[1] != 0 || res.Hits[2] != 1 || res.Hits[4] != 1 {
		t.Fatalf("hits = %v", res.Hits)
	}
}

type oracleAtPosition struct{}

func (o *oracleAtPosition) Name() string                        { return "pos3" }
func (o *oracleAtPosition) Rate(time.Duration, core.Rating)     {}
func (o *oracleAtPosition) Neighbors(core.UserID) []core.UserID { return nil }
func (o *oracleAtPosition) Tick(time.Duration)                  {}
func (o *oracleAtPosition) Recommend(_ time.Duration, _ core.UserID, n int) []core.ItemID {
	return []core.ItemID{1, 2, 42, 3, 4}[:min(n, 5)]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRecallBounds(t *testing.T) {
	q := QualityResult{Hits: []int{1, 2}, Positives: 4}
	if q.Recall(0) != 0 || q.Recall(3) != 0 {
		t.Fatal("out-of-range recall not 0")
	}
	if q.Recall(1) != 0.25 || q.Recall(2) != 0.5 {
		t.Fatalf("recall = %v, %v", q.Recall(1), q.Recall(2))
	}
	empty := QualityResult{Hits: []int{0}, Positives: 0}
	if empty.Recall(1) != 0 {
		t.Fatal("empty recall not 0")
	}
}
