// Package metrics implements the paper's evaluation metrics (Section 5.1):
// the brute-force ideal KNN used as an upper bound, view similarity (mean
// profile similarity between a user and her neighbours), and the
// recommendation-quality counter of Levandoski et al. adopted by the
// paper. The ideal-KNN computation is parallelised across CPUs because it
// is the evaluation's hot loop (O(N²) pairs).
package metrics

import (
	"runtime"
	"sync"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/replay"
)

// ProfileSource yields profile snapshots; both the HyRec server tables and
// the baselines' local maps satisfy it via small adapters.
type ProfileSource interface {
	// Profile returns u's current profile.
	Profile(u core.UserID) core.Profile
	// Users lists all known users.
	Users() []core.UserID
}

// MapSource adapts a plain map to a ProfileSource (used by tests and
// baselines).
type MapSource map[core.UserID]core.Profile

var _ ProfileSource = MapSource(nil)

// Profile implements ProfileSource.
func (m MapSource) Profile(u core.UserID) core.Profile {
	if p, ok := m[u]; ok {
		return p
	}
	return core.NewProfile(u)
}

// Users implements ProfileSource.
func (m MapSource) Users() []core.UserID {
	out := make([]core.UserID, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	return out
}

// IdealKNN computes, by exhaustive pairwise comparison, the true k nearest
// neighbours of every user — the "ideal KNN" upper bound of Section 5.2.
// Work is sharded across all CPUs.
func IdealKNN(src ProfileSource, k int, metric core.Similarity) map[core.UserID][]core.Neighbor {
	users := src.Users()
	profiles := make([]core.Profile, len(users))
	for i, u := range users {
		profiles[i] = src.Profile(u)
	}
	out := make(map[core.UserID][]core.Neighbor, len(users))
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(users) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(users) {
			break
		}
		hi := lo + chunk
		if hi > len(users) {
			hi = len(users)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			local := make(map[core.UserID][]core.Neighbor, hi-lo)
			for i := lo; i < hi; i++ {
				local[users[i]] = core.SelectKNN(profiles[i], profiles, k, metric)
			}
			mu.Lock()
			for u, ns := range local {
				out[u] = ns
			}
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// ViewSimilarity returns the mean, over all users with a non-empty
// neighbourhood, of the mean similarity between the user's profile and her
// neighbours' profiles — the y-axis of Figure 3.
func ViewSimilarity(src ProfileSource, neighbors func(core.UserID) []core.UserID, metric core.Similarity) float64 {
	users := src.Users()
	var sum float64
	counted := 0
	for _, u := range users {
		hood := neighbors(u)
		if len(hood) == 0 {
			continue
		}
		p := src.Profile(u)
		var s float64
		for _, v := range hood {
			s += metric.Score(p, src.Profile(v))
		}
		sum += s / float64(len(hood))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// IdealViewSimilarity returns the view similarity of the ideal KNN — the
// "Offline/Online Ideal" upper-bound curves.
func IdealViewSimilarity(src ProfileSource, k int, metric core.Similarity) float64 {
	ideal := IdealKNN(src, k, metric)
	return ViewSimilarity(src, func(u core.UserID) []core.UserID {
		ns := ideal[u]
		out := make([]core.UserID, len(ns))
		for i, n := range ns {
			out[i] = n.User
		}
		return out
	}, metric)
}

// PerUserViewRatio returns, for each user, her view similarity as a
// fraction of her ideal view similarity (Figure 4's y-axis), keyed by the
// user's profile size (its x-axis). Users with zero ideal similarity are
// skipped.
func PerUserViewRatio(src ProfileSource, neighbors func(core.UserID) []core.UserID, k int, metric core.Similarity) map[core.UserID]RatioPoint {
	ideal := IdealKNN(src, k, metric)
	out := make(map[core.UserID]RatioPoint)
	for _, u := range src.Users() {
		idealNs := ideal[u]
		if len(idealNs) == 0 {
			continue
		}
		var idealSim float64
		for _, n := range idealNs {
			idealSim += n.Sim
		}
		idealSim /= float64(len(idealNs))
		if idealSim == 0 {
			continue
		}
		p := src.Profile(u)
		hood := neighbors(u)
		var got float64
		if len(hood) > 0 {
			for _, v := range hood {
				got += metric.Score(p, src.Profile(v))
			}
			got /= float64(len(hood))
		}
		out[u] = RatioPoint{ProfileSize: p.Size(), Ratio: got / idealSim}
	}
	return out
}

// RatioPoint is one Figure 4 scatter point.
type RatioPoint struct {
	ProfileSize int
	Ratio       float64
}

// QualityResult holds the Figure 6 recommendation-quality counters: for
// each requested list length n (1-indexed: Hits[0] is n=1), the number of
// positive test ratings whose item appeared in the n recommendations.
type QualityResult struct {
	Hits      []int
	Positives int
}

// EvaluateQuality implements the protocol of Section 5.1 ("Recommendation
// Quality", after [37]): replay the training events, then walk the test
// events in time order; before each positive test rating the user requests
// maxN recommendations, a hit at length n is counted when the rated item
// appears among the first n, and the rating is then applied. The system's
// periodic tasks keep running on the virtual clock throughout.
func EvaluateQuality(sys replay.System, train, test []dataset.BinaryEvent, maxN int) QualityResult {
	driver := replay.NewDriver(sys)
	driver.Run(train)

	res := QualityResult{Hits: make([]int, maxN)}
	for _, ev := range test {
		sys.Tick(ev.T)
		if ev.Liked {
			res.Positives++
			recs := sys.Recommend(ev.T, ev.User, maxN)
			for i, item := range recs {
				if item == ev.Item {
					for n := i; n < maxN; n++ {
						res.Hits[n]++
					}
					break
				}
			}
		}
		sys.Rate(ev.T, ev.Rating())
	}
	return res
}

// Recall returns hits at n as a fraction of positives.
func (q QualityResult) Recall(n int) float64 {
	if q.Positives == 0 || n < 1 || n > len(q.Hits) {
		return 0
	}
	return float64(q.Hits[n-1]) / float64(q.Positives)
}

// TimePoint is one sample of a metric-over-virtual-time curve (Figures 3
// and 5).
type TimePoint struct {
	T     time.Duration
	Value float64
}
