// Package metrics implements the paper's evaluation metrics (Section 5.1):
// the brute-force ideal KNN used as an upper bound, view similarity (mean
// profile similarity between a user and her neighbours), and the
// recommendation-quality counter of Levandoski et al. adopted by the
// paper. The ideal-KNN computation is parallelised across CPUs because it
// is the evaluation's hot loop (O(N²) pairs).
package metrics

import (
	"runtime"
	"sync"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/replay"
)

// ProfileSource yields profile snapshots; both the HyRec server tables and
// the baselines' local maps satisfy it via small adapters.
type ProfileSource interface {
	// Profile returns u's current profile.
	Profile(u core.UserID) core.Profile
	// Users lists all known users.
	Users() []core.UserID
}

// MapSource adapts a plain map to a ProfileSource (used by tests and
// baselines).
type MapSource map[core.UserID]core.Profile

var _ ProfileSource = MapSource(nil)

// Profile implements ProfileSource.
func (m MapSource) Profile(u core.UserID) core.Profile {
	if p, ok := m[u]; ok {
		return p
	}
	return core.NewProfile(u)
}

// Users implements ProfileSource.
func (m MapSource) Users() []core.UserID {
	out := make([]core.UserID, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	return out
}

// parallelFor runs fn(i) for every i in [0, n) across GOMAXPROCS workers
// in contiguous chunks (sequentially when n is small). fn must only write
// to position-indexed storage; per-index work is independent, so results
// are identical to a sequential loop — the evaluators below rely on this
// to fold per-user terms in deterministic user order afterwards.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// IdealKNN computes, by exhaustive pairwise comparison, the true k nearest
// neighbours of every user — the "ideal KNN" upper bound of Section 5.2.
// Work is sharded across all CPUs; each worker writes its rows into a
// position-indexed slice, so no locking and a deterministic result.
func IdealKNN(src ProfileSource, k int, metric core.Similarity) map[core.UserID][]core.Neighbor {
	users := src.Users()
	profiles := make([]core.Profile, len(users))
	for i, u := range users {
		profiles[i] = src.Profile(u)
	}
	rows := make([][]core.Neighbor, len(users))
	parallelFor(len(users), func(i int) {
		rows[i] = core.SelectKNN(profiles[i], profiles, k, metric)
	})
	out := make(map[core.UserID][]core.Neighbor, len(users))
	for i, u := range users {
		out[u] = rows[i]
	}
	return out
}

// ViewSimilarity returns the mean, over all users with a non-empty
// neighbourhood, of the mean similarity between the user's profile and her
// neighbours' profiles — the y-axis of Figure 3.
// Per-user terms are computed in parallel (src and neighbors must
// tolerate concurrent reads, which every adapter in this module does) and
// folded sequentially in user order, so the result is bit-identical to a
// sequential evaluation — TestViewSimilarityParallelMatchesSequential
// pins this.
func ViewSimilarity(src ProfileSource, neighbors func(core.UserID) []core.UserID, metric core.Similarity) float64 {
	users := src.Users()
	terms := make([]float64, len(users))
	have := make([]bool, len(users))
	parallelFor(len(users), func(i int) {
		u := users[i]
		hood := neighbors(u)
		if len(hood) == 0 {
			return
		}
		p := src.Profile(u)
		var s float64
		for _, v := range hood {
			s += metric.Score(p, src.Profile(v))
		}
		terms[i] = s / float64(len(hood))
		have[i] = true
	})
	var sum float64
	counted := 0
	for i := range terms {
		if have[i] {
			sum += terms[i]
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// IdealViewSimilarity returns the view similarity of the ideal KNN — the
// "Offline/Online Ideal" upper-bound curves.
func IdealViewSimilarity(src ProfileSource, k int, metric core.Similarity) float64 {
	ideal := IdealKNN(src, k, metric)
	return ViewSimilarity(src, func(u core.UserID) []core.UserID {
		ns := ideal[u]
		out := make([]core.UserID, len(ns))
		for i, n := range ns {
			out[i] = n.User
		}
		return out
	}, metric)
}

// PerUserViewRatio returns, for each user, her view similarity as a
// fraction of her ideal view similarity (Figure 4's y-axis), keyed by the
// user's profile size (its x-axis). Users with zero ideal similarity are
// skipped.
// Like ViewSimilarity, per-user points are computed in parallel and
// collected in user order; each point depends only on its own user, so
// the map is identical to a sequential evaluation's.
func PerUserViewRatio(src ProfileSource, neighbors func(core.UserID) []core.UserID, k int, metric core.Similarity) map[core.UserID]RatioPoint {
	ideal := IdealKNN(src, k, metric)
	users := src.Users()
	points := make([]RatioPoint, len(users))
	have := make([]bool, len(users))
	parallelFor(len(users), func(i int) {
		u := users[i]
		idealNs := ideal[u]
		if len(idealNs) == 0 {
			return
		}
		var idealSim float64
		for _, n := range idealNs {
			idealSim += n.Sim
		}
		idealSim /= float64(len(idealNs))
		if idealSim == 0 {
			return
		}
		p := src.Profile(u)
		hood := neighbors(u)
		var got float64
		if len(hood) > 0 {
			for _, v := range hood {
				got += metric.Score(p, src.Profile(v))
			}
			got /= float64(len(hood))
		}
		points[i] = RatioPoint{ProfileSize: p.Size(), Ratio: got / idealSim}
		have[i] = true
	})
	out := make(map[core.UserID]RatioPoint)
	for i, u := range users {
		if have[i] {
			out[u] = points[i]
		}
	}
	return out
}

// RatioPoint is one Figure 4 scatter point.
type RatioPoint struct {
	ProfileSize int
	Ratio       float64
}

// QualityResult holds the Figure 6 recommendation-quality counters: for
// each requested list length n (1-indexed: Hits[0] is n=1), the number of
// positive test ratings whose item appeared in the n recommendations.
type QualityResult struct {
	Hits      []int
	Positives int
}

// EvaluateQuality implements the protocol of Section 5.1 ("Recommendation
// Quality", after [37]): replay the training events, then walk the test
// events in time order; before each positive test rating the user requests
// maxN recommendations, a hit at length n is counted when the rated item
// appears among the first n, and the rating is then applied. The system's
// periodic tasks keep running on the virtual clock throughout.
func EvaluateQuality(sys replay.System, train, test []dataset.BinaryEvent, maxN int) QualityResult {
	driver := replay.NewDriver(sys)
	driver.Run(train)

	res := QualityResult{Hits: make([]int, maxN)}
	for _, ev := range test {
		sys.Tick(ev.T)
		if ev.Liked {
			res.Positives++
			recs := sys.Recommend(ev.T, ev.User, maxN)
			for i, item := range recs {
				if item == ev.Item {
					for n := i; n < maxN; n++ {
						res.Hits[n]++
					}
					break
				}
			}
		}
		sys.Rate(ev.T, ev.Rating())
	}
	return res
}

// Recall returns hits at n as a fraction of positives.
func (q QualityResult) Recall(n int) float64 {
	if q.Positives == 0 || n < 1 || n > len(q.Hits) {
		return 0
	}
	return float64(q.Hits[n-1]) / float64(q.Positives)
}

// TimePoint is one sample of a metric-over-virtual-time curve (Figures 3
// and 5).
type TimePoint struct {
	T     time.Duration
	Value float64
}
