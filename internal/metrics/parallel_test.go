package metrics

import (
	"math/rand"
	"reflect"
	"testing"

	"hyrec/internal/core"
)

// Sequential reference copies of the evaluators, kept verbatim from the
// pre-parallel implementations. The parallel versions must produce
// bit-identical results (same float operations in the same order).

func viewSimilaritySeq(src ProfileSource, neighbors func(core.UserID) []core.UserID, metric core.Similarity) float64 {
	users := src.Users()
	var sum float64
	counted := 0
	for _, u := range users {
		hood := neighbors(u)
		if len(hood) == 0 {
			continue
		}
		p := src.Profile(u)
		var s float64
		for _, v := range hood {
			s += metric.Score(p, src.Profile(v))
		}
		sum += s / float64(len(hood))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

func idealKNNSeq(src ProfileSource, k int, metric core.Similarity) map[core.UserID][]core.Neighbor {
	users := src.Users()
	profiles := make([]core.Profile, len(users))
	for i, u := range users {
		profiles[i] = src.Profile(u)
	}
	out := make(map[core.UserID][]core.Neighbor, len(users))
	for i, u := range users {
		out[u] = core.SelectKNN(profiles[i], profiles, k, metric)
	}
	return out
}

func perUserViewRatioSeq(src ProfileSource, neighbors func(core.UserID) []core.UserID, k int, metric core.Similarity) map[core.UserID]RatioPoint {
	ideal := idealKNNSeq(src, k, metric)
	out := make(map[core.UserID]RatioPoint)
	for _, u := range src.Users() {
		idealNs := ideal[u]
		if len(idealNs) == 0 {
			continue
		}
		var idealSim float64
		for _, n := range idealNs {
			idealSim += n.Sim
		}
		idealSim /= float64(len(idealNs))
		if idealSim == 0 {
			continue
		}
		p := src.Profile(u)
		hood := neighbors(u)
		var got float64
		if len(hood) > 0 {
			for _, v := range hood {
				got += metric.Score(p, src.Profile(v))
			}
			got /= float64(len(hood))
		}
		out[u] = RatioPoint{ProfileSize: p.Size(), Ratio: got / idealSim}
	}
	return out
}

// orderedSource is a ProfileSource with a deterministic Users() order.
// MapSource.Users() follows map iteration order, which changes between
// calls — that would shuffle the fold order of two otherwise identical
// evaluations, so bit-exact comparison needs a stable order.
type orderedSource struct {
	m     MapSource
	users []core.UserID
}

func (s orderedSource) Profile(u core.UserID) core.Profile { return s.m.Profile(u) }
func (s orderedSource) Users() []core.UserID               { return s.users }

// randomSource builds a population large enough that parallelFor actually
// fans out across workers.
func randomSource(seed int64, users, items, ratings int) orderedSource {
	rng := rand.New(rand.NewSource(seed))
	src := orderedSource{m: make(MapSource, users)}
	for u := 1; u <= users; u++ {
		p := core.NewProfile(core.UserID(u))
		for r := 0; r < ratings; r++ {
			p = p.WithRating(core.ItemID(rng.Intn(items)), rng.Intn(5) != 0)
		}
		src.m[core.UserID(u)] = p
		src.users = append(src.users, core.UserID(u))
	}
	return src
}

func TestIdealKNNParallelMatchesSequential(t *testing.T) {
	src := randomSource(11, 150, 300, 12)
	for _, metric := range []core.Similarity{core.Cosine{}, core.SignedCosine{}} {
		got := IdealKNN(src, 5, metric)
		want := idealKNNSeq(src, 5, metric)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: parallel IdealKNN differs from sequential", metric.Name())
		}
	}
}

func TestViewSimilarityParallelMatchesSequential(t *testing.T) {
	src := randomSource(12, 200, 300, 10)
	ideal := idealKNNSeq(src, 4, core.Cosine{})
	neighbors := func(u core.UserID) []core.UserID {
		ns := ideal[u]
		out := make([]core.UserID, len(ns))
		for i, n := range ns {
			out[i] = n.User
		}
		return out
	}
	got := ViewSimilarity(src, neighbors, core.Cosine{})
	want := viewSimilaritySeq(src, neighbors, core.Cosine{})
	if got != want {
		t.Fatalf("parallel ViewSimilarity = %v, sequential = %v", got, want)
	}
	// Empty-neighborhood users must be skipped, not averaged as zeros.
	none := func(core.UserID) []core.UserID { return nil }
	if got := ViewSimilarity(src, none, core.Cosine{}); got != 0 {
		t.Fatalf("ViewSimilarity with no neighborhoods = %v, want 0", got)
	}
}

func TestPerUserViewRatioParallelMatchesSequential(t *testing.T) {
	src := randomSource(13, 150, 250, 10)
	ideal := idealKNNSeq(src, 3, core.Cosine{})
	neighbors := func(u core.UserID) []core.UserID {
		ns := ideal[u]
		if len(ns) > 1 {
			ns = ns[:len(ns)-1] // a deliberately imperfect neighborhood
		}
		out := make([]core.UserID, len(ns))
		for i, n := range ns {
			out[i] = n.User
		}
		return out
	}
	got := PerUserViewRatio(src, neighbors, 3, core.Cosine{})
	want := perUserViewRatioSeq(src, neighbors, 3, core.Cosine{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel PerUserViewRatio differs from sequential: %d vs %d points", len(got), len(want))
	}
}
