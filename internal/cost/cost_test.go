package cost

import (
	"math"
	"testing"
	"time"
)

func TestBackEndYearlyOnDemand(t *testing.T) {
	p := Paper2014()
	// 30-minute runs every 24h: 365 runs × 0.5h × $0.6 = $109.5.
	got := p.BackEndYearly(30*time.Minute, 24*time.Hour)
	if math.Abs(got-109.5) > 0.5 {
		t.Fatalf("back-end yearly = %v, want ≈109.5", got)
	}
}

func TestBackEndYearlyCapsAtReserved(t *testing.T) {
	p := Paper2014()
	// 6-hour runs every 12h → 730 runs × 6h × 0.6 = $2628 on demand; the
	// reserved instance at $660 must win (the ML3 case).
	got := p.BackEndYearly(6*time.Hour, 12*time.Hour)
	if got != p.BackEndReservedYearly {
		t.Fatalf("back-end yearly = %v, want reserved cap %v", got, p.BackEndReservedYearly)
	}
}

func TestBackEndYearlyZeroCases(t *testing.T) {
	p := Paper2014()
	if p.BackEndYearly(0, time.Hour) != 0 {
		t.Error("zero work should cost nothing")
	}
	if p.BackEndYearly(time.Hour, 0) != 0 {
		t.Error("zero period should cost nothing")
	}
}

func TestFractionalHourBilling(t *testing.T) {
	p := Paper2014()
	// Fractional billing: cost scales linearly with run length.
	short := p.BackEndYearly(30*time.Minute, 24*time.Hour)
	double := p.BackEndYearly(60*time.Minute, 24*time.Hour)
	if math.Abs(double-2*short) > 0.01 {
		t.Fatalf("billing not linear: 30min=%v 60min=%v", short, double)
	}
	if math.Abs(double-365*0.6) > 1 {
		t.Fatalf("exact hour billing = %v", double)
	}
}

// TestTable3Calibration checks the model reproduces the paper's published
// ML1 row given the ≈35-minute CRec back-end run the row implies.
func TestTable3Calibration(t *testing.T) {
	p := Paper2014()
	run := 35 * time.Minute
	want := map[time.Duration]float64{
		48 * time.Hour: 0.086,
		24 * time.Hour: 0.158,
		12 * time.Hour: 0.274,
	}
	for period, expect := range want {
		got := p.Reduction(run, period)
		if math.Abs(got-expect) > 0.02 {
			t.Errorf("ML1 reduction at %v = %.3f, want ≈%.3f", period, got, expect)
		}
	}
}

func TestReductionMatchesPaperML3Shape(t *testing.T) {
	p := Paper2014()
	// When the back-end hits the reserved cap, the reduction is
	// 660/(681+660) ≈ 49.2% — Table 3's ML3 row, at every period.
	for _, period := range []time.Duration{48 * time.Hour, 24 * time.Hour, 12 * time.Hour} {
		got := p.Reduction(6*time.Hour, period)
		if math.Abs(got-0.492) > 0.002 {
			t.Fatalf("ML3-like reduction at %v = %.4f, want ≈0.492", period, got)
		}
	}
}

func TestReductionGrowsWithFrequency(t *testing.T) {
	p := Paper2014()
	knn := 20 * time.Minute // small dataset back-end
	r48 := p.Reduction(knn, 48*time.Hour)
	r24 := p.Reduction(knn, 24*time.Hour)
	r12 := p.Reduction(knn, 12*time.Hour)
	if !(r48 < r24 && r24 < r12) {
		t.Fatalf("reduction not increasing with frequency: %v %v %v", r48, r24, r12)
	}
	if r48 <= 0 || r12 >= 0.55 {
		t.Fatalf("reductions out of plausible band: %v .. %v", r48, r12)
	}
}

func TestReductionSmallForTinyBackEnds(t *testing.T) {
	p := Paper2014()
	// Digg-like: very short KNN runs → tiny reduction (the paper's 12h
	// column reports 2.5%, implying a ≈2.4-minute back-end run).
	r := p.Reduction(2*time.Minute+24*time.Second, 12*time.Hour)
	if r < 0.01 || r > 0.05 {
		t.Fatalf("Digg-like reduction = %v, want ≈2.5%%", r)
	}
}

func TestHyRecYearlyIsFrontEndOnly(t *testing.T) {
	p := Paper2014()
	if p.HyRecYearly() != p.FrontEndReservedYearly {
		t.Fatal("HyRec pays more than the front-end")
	}
}

func TestTableRowAndString(t *testing.T) {
	p := Paper2014()
	row := p.TableRow("ML1", 20*time.Minute, []time.Duration{48 * time.Hour, 24 * time.Hour})
	if row.Dataset != "ML1" || len(row.Reductions) != 2 {
		t.Fatalf("row = %+v", row)
	}
	if row.String() == "" {
		t.Fatal("empty row string")
	}
}

func TestReductionZeroCentralized(t *testing.T) {
	p := Pricing{}
	if got := p.Reduction(time.Hour, time.Hour); got != 0 {
		t.Fatalf("zero pricing reduction = %v", got)
	}
}
