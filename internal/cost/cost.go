// Package cost implements the EC2-based economics of Section 5.4
// (Table 3): the yearly cost of running a recommender front-end plus,
// for the centralized Offline-CRec alternative, a back-end that re-runs
// KNN selection every period. Prices are the paper's 2014 EC2 figures.
package cost

import (
	"fmt"
	"time"
)

// Pricing captures the EC2 price points the paper uses.
type Pricing struct {
	// FrontEndReservedYearly is the medium-utilization reserved instance
	// holding the in-memory Profile and KNN tables (≈$681/year).
	FrontEndReservedYearly float64
	// BackEndOnDemandHourly is the compute-optimized on-demand instance
	// running offline KNN selection ($0.6/hour).
	BackEndOnDemandHourly float64
	// BackEndReservedYearly is the compute-optimized reserved alternative:
	// when on-demand hours would cost more, the provider reserves instead,
	// capping the back-end cost (the paper's ML3 case, ≈$660/year).
	BackEndReservedYearly float64
}

// Paper2014 returns the prices quoted in Section 5.4.
func Paper2014() Pricing {
	return Pricing{
		FrontEndReservedYearly: 681,
		BackEndOnDemandHourly:  0.6,
		BackEndReservedYearly:  660,
	}
}

// TestbedFactor2014 converts this repository's measured Go wall-clocks to
// the paper's 2014 testbed scale before pricing. The in-memory Go engine
// runs the full-scale Offline-CRec KNN build in single-digit seconds; the
// paper's J2EE/Hadoop deployment on 2008-era hardware reports the same
// builds at 10³–10⁴ s on Figure 7's log axis (≈10³ s for ML1, ≈10⁴ s for
// ML2), i.e. three-to-four orders of magnitude slower per run. Pricing raw
// Go times would make every back-end cost round to zero and flatten
// Table 3; scaling by this calibrated constant reproduces the published
// cost structure from our own measurements. EXPERIMENTS.md records both
// the raw and the calibrated values.
const TestbedFactor2014 = 5000

const hoursPerYear = 365 * 24

// BackEndYearly prices a back-end that spends knnWall of wall-clock per
// recomputation, once every period. On-demand usage is billed on fractional
// hours (consecutive short runs share instance-hours — this is the only
// billing model consistent with Table 3's published percentages, e.g.
// ML1's 8.6/15.8/27.4% all imply the same ≈35-minute run at $0.6/h); when
// reserving a compute-optimized instance is cheaper, the reserved price
// caps the cost (the paper's ML3 rows, flat at 49.2%).
func (p Pricing) BackEndYearly(knnWall, period time.Duration) float64 {
	if period <= 0 || knnWall <= 0 {
		return 0
	}
	runsPerYear := float64(hoursPerYear) / period.Hours()
	onDemand := runsPerYear * knnWall.Hours() * p.BackEndOnDemandHourly
	if p.BackEndReservedYearly > 0 && onDemand > p.BackEndReservedYearly {
		return p.BackEndReservedYearly
	}
	return onDemand
}

// CentralizedYearly is the Offline-CRec total: front-end + back-end.
func (p Pricing) CentralizedYearly(knnWall, period time.Duration) float64 {
	return p.FrontEndReservedYearly + p.BackEndYearly(knnWall, period)
}

// HyRecYearly is HyRec's total: the front-end only. KNN selection runs in
// the users' browsers; the paper notes the bandwidth overhead stays inside
// the EC2 free quota even for ML3.
func (p Pricing) HyRecYearly() float64 { return p.FrontEndReservedYearly }

// Reduction returns the fraction of the centralized yearly cost HyRec
// saves for a back-end whose KNN recomputation takes knnWall and runs
// every period — one cell of Table 3.
func (p Pricing) Reduction(knnWall, period time.Duration) float64 {
	centralized := p.CentralizedYearly(knnWall, period)
	if centralized <= 0 {
		return 0
	}
	return (centralized - p.HyRecYearly()) / centralized
}

// Row is one dataset row of Table 3: the cost reduction at each
// recomputation period.
type Row struct {
	Dataset    string
	Periods    []time.Duration
	Reductions []float64
}

// TableRow evaluates Reduction across periods.
func (p Pricing) TableRow(dataset string, knnWall time.Duration, periods []time.Duration) Row {
	row := Row{Dataset: dataset, Periods: periods, Reductions: make([]float64, len(periods))}
	for i, period := range periods {
		row.Reductions[i] = p.Reduction(knnWall, period)
	}
	return row
}

// String renders the row like Table 3 (percent saved per period).
func (r Row) String() string {
	s := fmt.Sprintf("%-6s", r.Dataset)
	for i, p := range r.Periods {
		s += fmt.Sprintf("  %s: %5.1f%%", p, 100*r.Reductions[i])
	}
	return s
}
