package ws

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		fin     bool
		op      Opcode
		payload []byte
		mask    bool
	}{
		{"empty-text", true, OpText, nil, false},
		{"small-masked", true, OpBinary, []byte("hello"), true},
		{"fragment-start", false, OpText, []byte("part one "), true},
		{"continuation", true, OpContinuation, []byte("part two"), true},
		{"len-126-boundary", true, OpBinary, bytes.Repeat([]byte{0xAB}, 126), false},
		{"len-16bit", true, OpBinary, bytes.Repeat([]byte{0xCD}, 40_000), true},
		{"len-64bit", true, OpBinary, bytes.Repeat([]byte{0xEF}, 1<<16+5), false},
		{"ping", true, OpPing, []byte("keepalive"), true},
		{"close", true, OpClose, AppendClosePayload(nil, CloseNormal, "bye"), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var key *[4]byte
			if tc.mask {
				key = &[4]byte{0x12, 0x34, 0x56, 0x78}
			}
			raw := AppendFrame(nil, tc.fin, tc.op, tc.payload, key)
			f, n, err := DecodeFrame(raw, 0)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(raw) {
				t.Fatalf("consumed %d of %d bytes", n, len(raw))
			}
			if f.Fin != tc.fin || f.Op != tc.op || f.Masked != tc.mask {
				t.Fatalf("frame meta %+v, want fin=%v op=%v masked=%v", f, tc.fin, tc.op, tc.mask)
			}
			if !bytes.Equal(f.Payload, tc.payload) {
				t.Fatalf("payload mismatch: got %d bytes, want %d", len(f.Payload), len(tc.payload))
			}
			// Truncated prefixes must report a short frame, never succeed
			// or panic.
			for cut := 0; cut < len(raw); cut++ {
				if _, _, err := DecodeFrame(raw[:cut], 0); !errors.Is(err, ErrShortFrame) {
					t.Fatalf("truncated at %d/%d: err=%v, want ErrShortFrame", cut, len(raw), err)
				}
			}
		})
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		max  int64
		want error
	}{
		{"rsv-bits", []byte{0xF1, 0x00}, 0, ErrProtocol},
		{"reserved-opcode", []byte{0x83, 0x00}, 0, ErrProtocol},
		{"fragmented-ping", []byte{0x09, 0x00}, 0, ErrProtocol},
		{"oversized-control", AppendFrame(nil, true, OpPing, bytes.Repeat([]byte{1}, 126), nil), 0, ErrProtocol},
		{"non-minimal-16bit", []byte{0x82, 126, 0x00, 0x05}, 0, ErrProtocol},
		{"non-minimal-64bit", []byte{0x82, 127, 0, 0, 0, 0, 0, 0, 0, 5}, 0, ErrProtocol},
		{"msb-64bit-len", []byte{0x82, 127, 0x80, 0, 0, 0, 0, 0, 0, 0}, 0, ErrProtocol},
		{"over-limit", AppendFrame(nil, true, OpBinary, bytes.Repeat([]byte{1}, 200), nil), 100, ErrFrameTooLarge},
		// A hostile header announcing 2^62 bytes must fail before any
		// payload allocation, from the 10-byte header alone.
		{"huge-announced-len", []byte{0x82, 127, 0x40, 0, 0, 0, 0, 0, 0, 0}, 1 << 20, ErrFrameTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeFrame(tc.raw, tc.max)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err=%v, want %v", err, tc.want)
			}
		})
	}
}

// pipeConns builds a connected client/server Conn pair over an in-memory
// duplex pipe.
func pipeConns(maxMsg int64) (client, server *Conn) {
	cc, sc := net.Pipe()
	return newConn(cc, true, maxMsg, nil), newConn(sc, false, maxMsg, nil)
}

func TestConnMessageRoundTrip(t *testing.T) {
	client, server := pipeConns(0)
	defer client.Close()
	defer server.Close()

	errc := make(chan error, 1)
	go func() { errc <- client.WriteMessage(OpText, []byte(`{"want":2}`)) }()
	op, msg, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(msg) != `{"want":2}` {
		t.Fatalf("got op=%v msg=%q", op, msg)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	go func() { errc <- server.WriteMessage(OpBinary, bytes.Repeat([]byte{7}, 70_000)) }()
	op, msg, err = client.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpBinary || len(msg) != 70_000 {
		t.Fatalf("got op=%v len=%d", op, len(msg))
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestConnFragmentedMessage(t *testing.T) {
	client, server := pipeConns(0)
	defer client.Close()
	defer server.Close()

	// net.Pipe is synchronous: the client must read the auto-pong while
	// the server's ReadMessage is still mid-assembly, so it runs in the
	// writer goroutine.
	pongc := make(chan Frame, 1)
	go func() {
		key := &[4]byte{1, 2, 3, 4}
		raw := AppendFrame(nil, false, OpText, []byte("hello "), key)
		raw = AppendFrame(raw, false, OpContinuation, []byte("fragmented "), key)
		// A ping interleaved between fragments must be serviced
		// transparently (§5.4).
		raw = AppendFrame(raw, true, OpPing, []byte("mid"), key)
		raw = AppendFrame(raw, true, OpContinuation, []byte("world"), key)
		if _, err := client.c.Write(raw); err != nil {
			t.Error(err)
		}
		f, err := client.nextFrame()
		if err != nil {
			t.Error(err)
		}
		pongc <- f
	}()
	op, msg, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(msg) != "hello fragmented world" {
		t.Fatalf("got op=%v msg=%q", op, msg)
	}
	// The interleaved ping was answered with a pong carrying the payload.
	if f := <-pongc; f.Op != OpPong || string(f.Payload) != "mid" {
		t.Fatalf("expected pong echo, got %v %q", f.Op, f.Payload)
	}
}

func TestConnPingPong(t *testing.T) {
	client, server := pipeConns(0)
	defer client.Close()
	defer server.Close()

	go server.WritePing([]byte("hb"))
	// The client's reader auto-pongs and keeps waiting; feed it a real
	// message afterwards so ReadMessage returns.
	go func() {
		f, err := server.nextFrame()
		if err != nil || f.Op != OpPong || string(f.Payload) != "hb" {
			t.Errorf("server got %v %q err=%v, want pong hb", f.Op, f.Payload, err)
		}
		server.WriteMessage(OpText, []byte("after"))
	}()
	op, msg, err := client.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(msg) != "after" {
		t.Fatalf("got %v %q", op, msg)
	}
}

func TestConnCloseHandshake(t *testing.T) {
	client, server := pipeConns(0)
	defer client.Close()
	defer server.Close()

	// The client reads the server's close echo concurrently (net.Pipe has
	// no buffering, so the echo write blocks until someone reads it).
	clientErr := make(chan error, 1)
	go func() {
		if err := client.WriteClose(CloseGoingAway, "tab closed"); err != nil {
			t.Error(err)
		}
		_, _, err := client.ReadMessage()
		clientErr <- err
	}()
	_, _, err := server.ReadMessage()
	var ce *CloseError
	if !errors.As(err, &ce) {
		t.Fatalf("err=%v, want *CloseError", err)
	}
	if ce.Code != CloseGoingAway || ce.Reason != "tab closed" {
		t.Fatalf("close %+v", ce)
	}
	// The server echoed the close; the client's reader surfaces it too.
	if err := <-clientErr; !errors.As(err, &ce) {
		t.Fatalf("client err=%v, want *CloseError", err)
	}
}

func TestConnRejectsUnmaskedClientFrame(t *testing.T) {
	client, server := pipeConns(0)
	defer client.Close()
	defer server.Close()

	go func() {
		client.c.Write(AppendFrame(nil, true, OpText, []byte("bare"), nil))
		// Drain the server's protocol-error close so its bounded write
		// does not have to wait out the grace period.
		client.nextFrame()
	}()
	_, _, err := server.ReadMessage()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err=%v, want ErrProtocol", err)
	}
}

func TestUpgradeAndDial(t *testing.T) {
	accepted := make(chan *Conn, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("/sock", func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r, 0)
		if err != nil {
			t.Errorf("upgrade: %v", err)
			return
		}
		accepted <- conn
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := Dial(ctx, ts.URL+"/sock", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	if err := client.WriteMessage(OpText, []byte("over http upgrade")); err != nil {
		t.Fatal(err)
	}
	op, msg, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(msg) != "over http upgrade" {
		t.Fatalf("got %v %q", op, msg)
	}
	if err := server.WriteMessage(OpText, []byte("and back")); err != nil {
		t.Fatal(err)
	}
	_, msg, err = client.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "and back" {
		t.Fatalf("got %q", msg)
	}
}

// TestUpgradeSurvivesServerTimeouts arms the http.Server Read/Write
// timeouts the production binary uses (scaled down) and checks the
// upgraded socket outlives them: the hijacked conn inherits the armed
// deadlines, and Upgrade must clear them or every real-world worker
// socket dies with an i/o timeout within one timeout window.
func TestUpgradeSurvivesServerTimeouts(t *testing.T) {
	accepted := make(chan *Conn, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("/sock", func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r, 0)
		if err != nil {
			t.Errorf("upgrade: %v", err)
			return
		}
		accepted <- conn
	})
	ts := httptest.NewUnstartedServer(mux)
	ts.Config.ReadTimeout = 150 * time.Millisecond
	ts.Config.WriteTimeout = 150 * time.Millisecond
	ts.Start()
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := Dial(ctx, ts.URL+"/sock", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	// Outlive both armed deadlines, then exchange in both directions.
	time.Sleep(400 * time.Millisecond)
	if err := client.WriteMessage(OpText, []byte("still alive?")); err != nil {
		t.Fatal(err)
	}
	if _, msg, err := server.ReadMessage(); err != nil || string(msg) != "still alive?" {
		t.Fatalf("server read after timeout window: msg=%q err=%v", msg, err)
	}
	if err := server.WriteMessage(OpText, []byte("yes")); err != nil {
		t.Fatalf("server write after timeout window: %v", err)
	}
	if _, msg, err := client.ReadMessage(); err != nil || string(msg) != "yes" {
		t.Fatalf("client read after timeout window: msg=%q err=%v", msg, err)
	}
}

// TestWriteGraceFailsStalledPeer checks SetWriteGrace: a data write to a
// peer that never drains its socket must fail with a timeout instead of
// blocking forever (net.Pipe is unbuffered, so any write stalls until
// the peer reads).
func TestWriteGraceFailsStalledPeer(t *testing.T) {
	client, server := pipeConns(0)
	defer client.Close()
	defer server.Close()

	server.SetWriteGrace(50 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- server.WriteMessage(OpBinary, bytes.Repeat([]byte{1}, 1024)) }()
	select {
	case err := <-done:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("err=%v, want a net timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write to a stalled peer never returned")
	}
}

func TestUpgradeRejectsPlainGET(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r, 0); !errors.Is(err, ErrNotWebSocket) {
			t.Errorf("err=%v, want ErrNotWebSocket", err)
		}
	}))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestAcceptKeyRFCVector(t *testing.T) {
	// The worked example from RFC 6455 §1.3.
	if got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ=="); got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("AcceptKey = %q", got)
	}
}

func TestHeaderHasToken(t *testing.T) {
	if !headerHasToken("keep-alive, Upgrade", "upgrade") {
		t.Fatal("token list parse failed")
	}
	if headerHasToken("keep-alive", "upgrade") {
		t.Fatal("false positive")
	}
}

func TestDialRejectsNonWSServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := Dial(ctx, strings.Replace(ts.URL, "http://", "ws://", 1), 0); !errors.Is(err, ErrNotWebSocket) {
		t.Fatalf("err=%v, want ErrNotWebSocket", err)
	}
}
