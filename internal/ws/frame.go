// Package ws is a minimal RFC 6455 WebSocket implementation — exactly
// the subset HyRec's browser-true worker transport needs: frame
// encode/decode with client-side masking, fragmented messages, ping/pong
// keepalive, the close handshake, and the HTTP/1.1 upgrade on both ends.
// No extensions (RSV bits must be zero), no subprotocol negotiation, no
// TLS termination (that belongs to the listener).
//
// The frame decoder is a pure function over a byte slice
// (DecodeFrame) so the production read path and the FuzzDecodeWSFrame
// target exercise identical code: arbitrary input yields a frame, "need
// more bytes" (ErrShortFrame), or a typed protocol error — never a panic.
package ws

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Opcode is a WebSocket frame opcode (RFC 6455 §5.2).
type Opcode byte

const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xA
)

// IsControl reports whether the opcode is a control frame (§5.5).
func (op Opcode) IsControl() bool { return op >= OpClose }

func (op Opcode) String() string {
	switch op {
	case OpContinuation:
		return "continuation"
	case OpText:
		return "text"
	case OpBinary:
		return "binary"
	case OpClose:
		return "close"
	case OpPing:
		return "ping"
	case OpPong:
		return "pong"
	default:
		return fmt.Sprintf("opcode(%#x)", byte(op))
	}
}

// Close status codes (§7.4.1) — the subset the transport uses.
const (
	CloseNormal        = 1000
	CloseGoingAway     = 1001
	CloseProtocolError = 1002
	CloseTooLarge      = 1009
	CloseInternal      = 1011
)

// Decode failures. ErrShortFrame means the input holds an incomplete
// frame — read more bytes and retry; everything else is fatal for the
// connection (§10.7: fail the WebSocket connection on protocol errors).
var (
	ErrShortFrame    = errors.New("ws: incomplete frame")
	ErrFrameTooLarge = errors.New("ws: frame exceeds size limit")
	ErrProtocol      = errors.New("ws: protocol violation")
)

// Frame is one decoded WebSocket frame. Payload is unmasked and owned by
// the caller (DecodeFrame copies it out of the input).
type Frame struct {
	Fin     bool
	Op      Opcode
	Masked  bool
	Payload []byte
}

// maxHeaderBytes is the worst-case frame header: 2 fixed bytes + 8-byte
// extended length + 4-byte masking key.
const maxHeaderBytes = 14

// DecodeFrame parses one frame from the front of data, returning the
// frame and the number of bytes consumed. maxPayload bounds the declared
// payload length (≤ 0 means unlimited); a frame announcing more fails
// with ErrFrameTooLarge *before* any payload is buffered, so a hostile
// 2^63-byte header cannot balloon memory. Incomplete input returns
// ErrShortFrame with n = 0.
func DecodeFrame(data []byte, maxPayload int64) (f Frame, n int, err error) {
	if len(data) < 2 {
		return Frame{}, 0, ErrShortFrame
	}
	b0, b1 := data[0], data[1]
	if b0&0x70 != 0 {
		return Frame{}, 0, fmt.Errorf("%w: nonzero RSV bits %#x (no extension negotiated)", ErrProtocol, b0&0x70)
	}
	f.Fin = b0&0x80 != 0
	f.Op = Opcode(b0 & 0x0f)
	switch f.Op {
	case OpContinuation, OpText, OpBinary, OpClose, OpPing, OpPong:
	default:
		return Frame{}, 0, fmt.Errorf("%w: reserved opcode %#x", ErrProtocol, byte(f.Op))
	}
	f.Masked = b1&0x80 != 0

	length := int64(b1 & 0x7f)
	off := 2
	switch length {
	case 126:
		if len(data) < off+2 {
			return Frame{}, 0, ErrShortFrame
		}
		length = int64(binary.BigEndian.Uint16(data[off:]))
		off += 2
		if length < 126 {
			return Frame{}, 0, fmt.Errorf("%w: non-minimal 16-bit length %d", ErrProtocol, length)
		}
	case 127:
		if len(data) < off+8 {
			return Frame{}, 0, ErrShortFrame
		}
		u := binary.BigEndian.Uint64(data[off:])
		off += 8
		if u&(1<<63) != 0 {
			return Frame{}, 0, fmt.Errorf("%w: 64-bit length with MSB set", ErrProtocol)
		}
		if u < 1<<16 {
			return Frame{}, 0, fmt.Errorf("%w: non-minimal 64-bit length %d", ErrProtocol, u)
		}
		length = int64(u)
	}
	if f.Op.IsControl() {
		// §5.5: control frames must not be fragmented and carry ≤ 125
		// bytes of payload.
		if !f.Fin {
			return Frame{}, 0, fmt.Errorf("%w: fragmented %v frame", ErrProtocol, f.Op)
		}
		if length > 125 {
			return Frame{}, 0, fmt.Errorf("%w: %d-byte %v frame", ErrProtocol, length, f.Op)
		}
	}
	if maxPayload > 0 && length > maxPayload {
		return Frame{}, 0, fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, length, maxPayload)
	}

	var key [4]byte
	if f.Masked {
		if len(data) < off+4 {
			return Frame{}, 0, ErrShortFrame
		}
		copy(key[:], data[off:])
		off += 4
	}
	if int64(len(data)-off) < length {
		return Frame{}, 0, ErrShortFrame
	}
	f.Payload = make([]byte, length)
	copy(f.Payload, data[off:off+int(length)])
	if f.Masked {
		maskBytes(f.Payload, key, 0)
	}
	return f, off + int(length), nil
}

// AppendFrame appends the wire encoding of one frame to dst. A non-nil
// maskKey masks the payload (client→server direction); dst never aliases
// f.Payload afterwards, so the caller may reuse the payload buffer.
func AppendFrame(dst []byte, fin bool, op Opcode, payload []byte, maskKey *[4]byte) []byte {
	b0 := byte(op)
	if fin {
		b0 |= 0x80
	}
	dst = append(dst, b0)
	maskBit := byte(0)
	if maskKey != nil {
		maskBit = 0x80
	}
	switch n := len(payload); {
	case n <= 125:
		dst = append(dst, maskBit|byte(n))
	case n <= 1<<16-1:
		dst = append(dst, maskBit|126)
		dst = binary.BigEndian.AppendUint16(dst, uint16(n))
	default:
		dst = append(dst, maskBit|127)
		dst = binary.BigEndian.AppendUint64(dst, uint64(n))
	}
	if maskKey == nil {
		return append(dst, payload...)
	}
	dst = append(dst, maskKey[:]...)
	start := len(dst)
	dst = append(dst, payload...)
	maskBytes(dst[start:], *maskKey, 0)
	return dst
}

// maskBytes XORs p with the masking key, starting at key offset pos
// (§5.3). Returns the key offset after p, for streaming use.
func maskBytes(p []byte, key [4]byte, pos int) int {
	for i := range p {
		p[i] ^= key[(pos+i)&3]
	}
	return (pos + len(p)) & 3
}

// AppendClosePayload encodes a close frame body: a 2-byte big-endian
// status code plus optional UTF-8 reason (§5.5.1).
func AppendClosePayload(dst []byte, code uint16, reason string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, code)
	return append(dst, reason...)
}

// ParseClosePayload decodes a close frame body. An empty body is a close
// without a code (reported as CloseNormal); a 1-byte body is a protocol
// violation per §5.5.1 but tolerated here as code-less.
func ParseClosePayload(p []byte) (code uint16, reason string) {
	if len(p) < 2 {
		return CloseNormal, ""
	}
	return binary.BigEndian.Uint16(p), string(p[2:])
}
