package ws

import (
	"bufio"
	"context"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// acceptGUID is the fixed key-hashing GUID of RFC 6455 §1.3.
const acceptGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// AcceptKey computes the Sec-WebSocket-Accept value for a client key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + acceptGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// ErrNotWebSocket reports an upgrade request that is not a well-formed
// RFC 6455 opening handshake.
var ErrNotWebSocket = errors.New("ws: not a websocket handshake")

// headerHasToken reports whether a comma-separated header value contains
// token (case-insensitive) — Connection: keep-alive, Upgrade must match.
func headerHasToken(value, token string) bool {
	for _, part := range strings.Split(value, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// Upgrade performs the server side of the opening handshake and hijacks
// the HTTP connection. On failure it writes the appropriate HTTP error
// response itself and returns ErrNotWebSocket (wrapped). maxMsg ≤ 0
// applies DefaultMaxMessage.
func Upgrade(w http.ResponseWriter, r *http.Request, maxMsg int64) (*Conn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket handshake requires GET", http.StatusMethodNotAllowed)
		return nil, fmt.Errorf("%w: method %s", ErrNotWebSocket, r.Method)
	}
	if !headerHasToken(r.Header.Get("Connection"), "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket upgrade headers missing", http.StatusBadRequest)
		return nil, fmt.Errorf("%w: missing upgrade headers", ErrNotWebSocket)
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "unsupported websocket version", http.StatusUpgradeRequired)
		return nil, fmt.Errorf("%w: version %q", ErrNotWebSocket, v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, fmt.Errorf("%w: missing key", ErrNotWebSocket)
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "connection cannot be hijacked", http.StatusInternalServerError)
		return nil, errors.New("ws: response writer does not support hijacking")
	}
	netConn, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	// Clear any Read/WriteTimeout deadlines armed before the hijack:
	// left in place they would kill the long-lived WebSocket within one
	// server timeout window. The stdlib http.Server clears them in
	// Hijack itself, but Hijacker wrappers (middleware, custom servers)
	// are not guaranteed to, so the upgrade owns the invariant.
	netConn.SetDeadline(time.Time{})
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"
	if _, err := netConn.Write([]byte(resp)); err != nil {
		netConn.Close()
		return nil, fmt.Errorf("ws: write handshake response: %w", err)
	}
	// Bytes the server's reader buffered past the request head belong to
	// the first frames.
	var leftover []byte
	if n := brw.Reader.Buffered(); n > 0 {
		leftover, _ = brw.Reader.Peek(n)
	}
	return newConn(netConn, false, maxMsg, leftover), nil
}

// Dial opens a WebSocket to rawURL (ws://, or http:// as an alias) and
// performs the client side of the opening handshake. maxMsg ≤ 0 applies
// DefaultMaxMessage.
func Dial(ctx context.Context, rawURL string, maxMsg int64) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("ws: parse url: %w", err)
	}
	switch u.Scheme {
	case "ws", "http":
	default:
		return nil, fmt.Errorf("ws: unsupported scheme %q (wss/https not implemented)", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	var d net.Dialer
	netConn, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, fmt.Errorf("ws: dial %s: %w", host, err)
	}
	// Honour ctx for the whole handshake; cleared before the Conn is
	// handed out.
	if dl, ok := ctx.Deadline(); ok {
		netConn.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { netConn.Close() })
	defer stop()

	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		netConn.Close()
		return nil, fmt.Errorf("ws: key entropy: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := netConn.Write([]byte(req)); err != nil {
		netConn.Close()
		return nil, fmt.Errorf("ws: write handshake: %w", err)
	}
	br := bufio.NewReader(netConn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		netConn.Close()
		return nil, fmt.Errorf("ws: read handshake response: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		netConn.Close()
		return nil, fmt.Errorf("%w: server answered %s", ErrNotWebSocket, resp.Status)
	}
	if got, want := resp.Header.Get("Sec-WebSocket-Accept"), AcceptKey(key); got != want {
		netConn.Close()
		return nil, fmt.Errorf("%w: bad accept key %q", ErrNotWebSocket, got)
	}
	var leftover []byte
	if n := br.Buffered(); n > 0 {
		leftover, _ = br.Peek(n)
	}
	if err := ctx.Err(); err != nil {
		netConn.Close()
		return nil, err
	}
	netConn.SetDeadline(time.Time{})
	return newConn(netConn, true, maxMsg, leftover), nil
}
