package ws

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeWSFrame enforces the frame reader's contract: arbitrary
// bytes decode to a valid frame, a "need more" signal, or a typed error —
// never a panic, never an over-read, never a frame that re-encodes to
// something the decoder disagrees with.
func FuzzDecodeWSFrame(f *testing.F) {
	// Seed corpus: the frame shapes the protocol actually exchanges,
	// plus the adversarial ones the decoder must refuse.
	f.Add([]byte{0x81, 0x00})                                                         // empty unmasked text
	f.Add(AppendFrame(nil, true, OpText, []byte(`{"uid":1,"epoch":2}`), nil))         // server job push
	f.Add(AppendFrame(nil, true, OpText, []byte(`{"want":1}`), &[4]byte{1, 2, 3, 4})) // masked client msg
	f.Add(AppendFrame(nil, false, OpText, []byte("frag-start"), &[4]byte{9, 9, 9, 9}))
	f.Add(AppendFrame(nil, true, OpContinuation, []byte("frag-end"), &[4]byte{9, 9, 9, 9}))
	f.Add(AppendFrame(nil, true, OpPing, []byte("hb"), nil))
	f.Add(AppendFrame(nil, true, OpPong, []byte("hb"), &[4]byte{5, 6, 7, 8}))
	f.Add(AppendFrame(nil, true, OpClose, AppendClosePayload(nil, CloseGoingAway, "bye"), nil))
	f.Add(AppendFrame(nil, true, OpBinary, bytes.Repeat([]byte{0xA5}, 300), nil))   // 16-bit length
	f.Add(AppendFrame(nil, true, OpBinary, bytes.Repeat([]byte{0x5A}, 1<<16), nil)) // 64-bit length
	f.Add([]byte{0xF1, 0x05, 1, 2, 3, 4, 5})                                        // RSV bits set
	f.Add([]byte{0x83, 0x01, 0xFF})                                                 // reserved opcode
	f.Add([]byte{0x09, 0x02, 1, 2})                                                 // fragmented ping
	f.Add([]byte{0x82, 127, 0x40, 0, 0, 0, 0, 0, 0, 0})                             // 2^62-byte announcement
	f.Add([]byte{0x82, 127, 0x80, 0, 0, 0, 0, 0, 0, 1})                             // MSB-set 64-bit length
	f.Add([]byte{0x82, 126, 0x00, 0x05, 1, 2, 3, 4, 5})                             // non-minimal 16-bit
	f.Add([]byte{0x81, 0x85, 0xDE, 0xAD})                                           // truncated mask key

	const maxPayload = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data, maxPayload)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			if !errors.Is(err, ErrShortFrame) && !errors.Is(err, ErrProtocol) && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if int64(len(frame.Payload)) > maxPayload {
			t.Fatalf("payload %d exceeds the %d limit", len(frame.Payload), maxPayload)
		}
		if frame.Op.IsControl() && (!frame.Fin || len(frame.Payload) > 125) {
			t.Fatalf("invalid control frame survived decode: %+v", frame)
		}
		// Round-trip: re-encoding the decoded frame (unmasked) must
		// decode to the identical frame.
		re := AppendFrame(nil, frame.Fin, frame.Op, frame.Payload, nil)
		frame2, n2, err := DecodeFrame(re, maxPayload)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(re) || frame2.Fin != frame.Fin || frame2.Op != frame.Op ||
			!bytes.Equal(frame2.Payload, frame.Payload) {
			t.Fatalf("round-trip divergence: %+v vs %+v", frame, frame2)
		}
	})
}
