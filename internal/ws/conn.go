package ws

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// CloseError is returned by ReadMessage when the peer (or the connection
// itself, on a protocol violation) closed the WebSocket.
type CloseError struct {
	Code   uint16
	Reason string
}

func (e *CloseError) Error() string {
	if e.Reason == "" {
		return fmt.Sprintf("ws: connection closed (code %d)", e.Code)
	}
	return fmt.Sprintf("ws: connection closed (code %d: %s)", e.Code, e.Reason)
}

// ErrClosed reports a read or write on a connection after the close
// handshake completed locally.
var ErrClosed = errors.New("ws: connection closed")

// DefaultMaxMessage bounds an assembled message (across fragments) when
// the dialer/upgrader is given no explicit limit — matches the HTTP
// protocol's wire.MaxBodyBytes order of magnitude with headroom for
// large candidate sets.
const DefaultMaxMessage = 4 << 20

// Conn is one WebSocket connection. One goroutine may read
// (ReadMessage) while others write (WriteMessage & friends) — writes are
// serialized internally; concurrent reads are not supported.
type Conn struct {
	c      net.Conn
	client bool // we are the client side: mask writes, require unmasked reads
	maxMsg int64

	// Read state (single reader).
	rbuf   []byte // undecoded bytes already read from the socket
	rstart int    // consumed prefix of rbuf

	wmu        sync.Mutex
	wbuf       []byte
	maskBuf    [256]byte // buffered crypto/rand masking keys (client side only)
	maskLeft   int
	writeGrace time.Duration // default deadline for writes without an explicit grace
	closeSent  bool

	closeOnce sync.Once
}

func newConn(c net.Conn, client bool, maxMsg int64, leftover []byte) *Conn {
	if maxMsg <= 0 {
		maxMsg = DefaultMaxMessage
	}
	conn := &Conn{c: c, client: client, maxMsg: maxMsg}
	if len(leftover) > 0 {
		conn.rbuf = append(conn.rbuf, leftover...)
	}
	return conn
}

// LocalAddr / RemoteAddr expose the underlying socket addresses.
func (cn *Conn) LocalAddr() net.Addr  { return cn.c.LocalAddr() }
func (cn *Conn) RemoteAddr() net.Addr { return cn.c.RemoteAddr() }

// SetReadDeadline bounds the next ReadMessage (zero time clears it).
func (cn *Conn) SetReadDeadline(t time.Time) error { return cn.c.SetReadDeadline(t) }

// SetWriteGrace bounds every subsequent data write (WriteMessage,
// WritePing) with a per-write deadline, so a peer that stops draining
// its socket fails the write instead of blocking the caller forever.
// Zero restores unbounded writes. A server pushing jobs should set
// this; control writes issued from the read path carry their own grace.
func (cn *Conn) SetWriteGrace(d time.Duration) {
	cn.wmu.Lock()
	cn.writeGrace = d
	cn.wmu.Unlock()
}

// Close tears down the underlying socket without a close handshake; use
// WriteClose first for a graceful shutdown.
func (cn *Conn) Close() error {
	var err error
	cn.closeOnce.Do(func() { err = cn.c.Close() })
	return err
}

// nextFrame decodes one frame, reading more bytes as needed.
func (cn *Conn) nextFrame() (Frame, error) {
	for {
		if cn.rstart > 0 && cn.rstart == len(cn.rbuf) {
			cn.rbuf = cn.rbuf[:0]
			cn.rstart = 0
		}
		f, n, err := DecodeFrame(cn.rbuf[cn.rstart:], cn.maxMsg)
		if err == nil {
			cn.rstart += n
			// Enforce the masking direction (§5.1): clients mask, servers
			// must not.
			if !cn.client && !f.Masked {
				return Frame{}, fmt.Errorf("%w: unmasked client frame", ErrProtocol)
			}
			if cn.client && f.Masked {
				return Frame{}, fmt.Errorf("%w: masked server frame", ErrProtocol)
			}
			return f, nil
		}
		if !errors.Is(err, ErrShortFrame) {
			return Frame{}, err
		}
		// Compact before growing so a long-lived connection does not
		// accrete every consumed frame.
		if cn.rstart > 0 {
			cn.rbuf = append(cn.rbuf[:0], cn.rbuf[cn.rstart:]...)
			cn.rstart = 0
		}
		var chunk [4096]byte
		n, rerr := cn.c.Read(chunk[:])
		if n > 0 {
			cn.rbuf = append(cn.rbuf, chunk[:n]...)
			continue
		}
		if rerr == nil {
			rerr = io.ErrUnexpectedEOF
		}
		return Frame{}, rerr
	}
}

// ReadMessage blocks until one complete data message arrives, assembling
// fragments and servicing control frames transparently: pings are
// answered with pongs, pongs are swallowed, and a close frame completes
// the close handshake and surfaces as *CloseError. Protocol violations
// send a closing handshake with CloseProtocolError and fail the
// connection.
func (cn *Conn) ReadMessage() (Opcode, []byte, error) {
	var (
		msgOp  Opcode
		msg    []byte
		inFrag bool
	)
	for {
		f, err := cn.nextFrame()
		if err != nil {
			if errors.Is(err, ErrProtocol) || errors.Is(err, ErrFrameTooLarge) {
				code := uint16(CloseProtocolError)
				if errors.Is(err, ErrFrameTooLarge) {
					code = CloseTooLarge
				}
				cn.WriteClose(code, "")
				cn.Close()
			}
			return 0, nil, err
		}
		switch f.Op {
		case OpPing:
			if err := cn.writeFrame(true, OpPong, f.Payload, controlWriteGrace); err != nil {
				return 0, nil, err
			}
			continue
		case OpPong:
			continue
		case OpClose:
			code, reason := ParseClosePayload(f.Payload)
			// Echo the close once (§5.5.1) and tear down.
			cn.WriteClose(code, "")
			cn.Close()
			return 0, nil, &CloseError{Code: code, Reason: reason}
		case OpContinuation:
			if !inFrag {
				cn.failProtocol()
				return 0, nil, fmt.Errorf("%w: continuation without a message in progress", ErrProtocol)
			}
		case OpText, OpBinary:
			if inFrag {
				cn.failProtocol()
				return 0, nil, fmt.Errorf("%w: new %v frame interleaved mid-message", ErrProtocol, f.Op)
			}
			msgOp = f.Op
		}
		if int64(len(msg)+len(f.Payload)) > cn.maxMsg {
			cn.WriteClose(CloseTooLarge, "")
			cn.Close()
			return 0, nil, fmt.Errorf("%w: assembled message exceeds %d bytes", ErrFrameTooLarge, cn.maxMsg)
		}
		if msg == nil {
			msg = f.Payload
		} else {
			msg = append(msg, f.Payload...)
		}
		if f.Fin {
			return msgOp, msg, nil
		}
		inFrag = true
	}
}

func (cn *Conn) failProtocol() {
	cn.WriteClose(CloseProtocolError, "")
	cn.Close()
}

// controlWriteGrace bounds unsolicited control writes (pong, close echo)
// issued from the read path, so a peer that stopped draining its socket
// cannot wedge ReadMessage forever.
const controlWriteGrace = 5 * time.Second

// writeFrame emits one frame, masking on the client side. A positive
// grace bounds the write with a deadline (cleared afterwards); zero
// falls back to the connection's write grace, if any.
func (cn *Conn) writeFrame(fin bool, op Opcode, payload []byte, grace time.Duration) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if cn.closeSent && op != OpClose {
		return ErrClosed
	}
	var key *[4]byte
	if cn.client {
		// Masking keys must come from a strong entropy source (RFC 6455
		// §5.3); amortize crypto/rand reads over a buffer of keys.
		if cn.maskLeft < 4 {
			if _, err := rand.Read(cn.maskBuf[:]); err != nil {
				return fmt.Errorf("ws: masking entropy: %w", err)
			}
			cn.maskLeft = len(cn.maskBuf)
		}
		var k [4]byte
		copy(k[:], cn.maskBuf[len(cn.maskBuf)-cn.maskLeft:])
		cn.maskLeft -= 4
		key = &k
	}
	if grace <= 0 {
		grace = cn.writeGrace
	}
	cn.wbuf = AppendFrame(cn.wbuf[:0], fin, op, payload, key)
	if grace > 0 {
		cn.c.SetWriteDeadline(time.Now().Add(grace))
		defer cn.c.SetWriteDeadline(time.Time{})
	}
	_, err := cn.c.Write(cn.wbuf)
	return err
}

// WriteMessage sends one unfragmented data message.
func (cn *Conn) WriteMessage(op Opcode, payload []byte) error {
	if op != OpText && op != OpBinary {
		return fmt.Errorf("%w: WriteMessage with %v", ErrProtocol, op)
	}
	return cn.writeFrame(true, op, payload, 0)
}

// WritePing sends a ping control frame (the keepalive probe).
func (cn *Conn) WritePing(payload []byte) error {
	return cn.writeFrame(true, OpPing, payload, 0)
}

// WriteClose sends the closing handshake frame once; later calls are
// no-ops so the initiator and the echo path cannot double-send.
func (cn *Conn) WriteClose(code uint16, reason string) error {
	cn.wmu.Lock()
	if cn.closeSent {
		cn.wmu.Unlock()
		return nil
	}
	cn.closeSent = true
	cn.wmu.Unlock()
	payload := AppendClosePayload(nil, code, reason)
	return cn.writeFrame(true, OpClose, payload, controlWriteGrace)
}
