package wire

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// GzipLevel selects the compression effort for outgoing jobs. The paper
// compresses "on the fly"; we default to BestSpeed, trading a slightly
// larger payload for front-end latency (ablation:
// BenchmarkAblationGzipLevel).
type GzipLevel int

// Supported compression levels. GzipHuffmanOnly (Huffman coding without
// Lempel-Ziv matching) is the latency escape hatch: the paper's J2EE stack
// compressed with native zlib, which is several times faster than Go's
// pure-Go gzip at the same level, so deployments that care about
// single-request latency more than the last 20% of bandwidth can pick it
// (see BenchmarkAblationGzipLevel for the measured trade-off).
const (
	GzipBestSpeed   GzipLevel = gzip.BestSpeed
	GzipDefault     GzipLevel = -1 // gzip.DefaultCompression
	GzipBestCompact GzipLevel = gzip.BestCompression
	GzipHuffmanOnly GzipLevel = gzip.HuffmanOnly
)

// writerPools pools gzip writers per level: (de)allocating a gzip.Writer
// per request dominates small-message latency otherwise.
var writerPools sync.Map // GzipLevel → *sync.Pool

func pool(level GzipLevel) *sync.Pool {
	if p, ok := writerPools.Load(level); ok {
		return p.(*sync.Pool)
	}
	p := &sync.Pool{New: func() any {
		w, err := gzip.NewWriterLevel(io.Discard, int(level))
		if err != nil {
			// Level is validated by callers; fall back to default.
			w = gzip.NewWriter(io.Discard)
		}
		return w
	}}
	actual, _ := writerPools.LoadOrStore(level, p)
	return actual.(*sync.Pool)
}

// Compress gzips data at the given level into a fresh buffer. The hot
// path uses AppendGzip with a pooled destination instead; both produce
// identical bytes (the gzip header carries no timestamp).
func Compress(data []byte, level GzipLevel) ([]byte, error) {
	return AppendGzip(make([]byte, 0, len(data)/3+64), data, level)
}

// sliceWriter adapts an append-grown []byte to io.Writer so the pooled
// gzip writers can emit straight into caller-owned buffers.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

var sliceWriterPool = sync.Pool{New: func() any { return new(sliceWriter) }}

// AppendGzip appends the gzip encoding of data (at the given level) to
// dst and returns the extended slice. Writers and adapter state are
// pooled, so with a pre-grown dst the call allocates nothing.
func AppendGzip(dst, data []byte, level GzipLevel) ([]byte, error) {
	sw := sliceWriterPool.Get().(*sliceWriter)
	sw.b = dst
	p := pool(level)
	w, ok := p.Get().(*gzip.Writer)
	if !ok {
		return nil, fmt.Errorf("wire: corrupt gzip writer pool")
	}
	w.Reset(sw)
	if _, err := w.Write(data); err != nil {
		return nil, fmt.Errorf("wire: gzip write: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("wire: gzip close: %w", err)
	}
	out := sw.b
	sw.b = nil
	sliceWriterPool.Put(sw)
	p.Put(w)
	return out, nil
}

// Decompress inflates a gzip payload.
func Decompress(data []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("wire: gzip open: %w", err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("wire: gzip read: %w", err)
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("wire: gzip close: %w", err)
	}
	return out, nil
}

// Meter counts bytes crossing a boundary, in both raw (JSON) and
// compressed (gzip) form. It backs Figure 10 and the per-node bandwidth
// comparison of Section 5.6. Safe for concurrent use; the zero value is
// ready.
type Meter struct {
	jsonBytes  atomic.Int64
	gzipBytes  atomic.Int64
	messages   atomic.Int64
	resultJSON atomic.Int64
}

// CountJob records one outgoing personalization job.
func (m *Meter) CountJob(jsonLen, gzipLen int) {
	m.jsonBytes.Add(int64(jsonLen))
	m.gzipBytes.Add(int64(gzipLen))
	m.messages.Add(1)
}

// CountResult records one incoming widget result.
func (m *Meter) CountResult(jsonLen int) {
	m.resultJSON.Add(int64(jsonLen))
	m.messages.Add(1)
}

// JSONBytes returns cumulative uncompressed job bytes.
func (m *Meter) JSONBytes() int64 { return m.jsonBytes.Load() }

// GzipBytes returns cumulative compressed job bytes.
func (m *Meter) GzipBytes() int64 { return m.gzipBytes.Load() }

// ResultBytes returns cumulative result bytes (client → server).
func (m *Meter) ResultBytes() int64 { return m.resultJSON.Load() }

// Messages returns the total number of metered messages.
func (m *Meter) Messages() int64 { return m.messages.Load() }

// TotalOnWire returns the bytes that actually crossed the network:
// compressed jobs plus (uncompressed) results.
func (m *Meter) TotalOnWire() int64 { return m.GzipBytes() + m.ResultBytes() }
