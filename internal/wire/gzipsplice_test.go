package wire

import (
	"bytes"
	"testing"

	"hyrec/internal/core"
)

// TestGzipSpliceRoundTrip pins the splice contract: a payload assembled
// from deflate fragments and stored-block glue inflates, through the
// ordinary Decompress, to exactly the JSON body it was built alongside.
func TestGzipSpliceRoundTrip(t *testing.T) {
	levels := []GzipLevel{GzipBestSpeed, GzipDefault, GzipBestCompact, GzipHuffmanOnly}
	frags := [][]byte{
		[]byte(`{"id":1,"liked":[1,2,3]}`),
		[]byte(`{"id":2,"liked":[],"disliked":[9,10,11,12,13,14,15,16,17,18]}`),
		{},
		[]byte(`{"id":3,"liked":[100000,100001]}`),
	}
	for _, level := range levels {
		var body []byte
		sp := BeginGzSplice(nil, level, 0)
		body = append(body, `{"uid":7,"candidates":[`...)
		for i, f := range frags {
			if i > 0 {
				body = append(body, ',')
			}
			fgz, err := AppendDeflateFragment(nil, f, level)
			if err != nil {
				t.Fatalf("level %d: deflate fragment: %v", level, err)
			}
			body = append(body, f...)
			sp.Splice(body, len(f), fgz)
		}
		body = append(body, `]}`...)
		gz := sp.Finish(body)

		got, err := Decompress(gz)
		if err != nil {
			t.Fatalf("level %d: decompress spliced payload: %v", level, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("level %d: spliced payload inflates to %q, want %q", level, got, body)
		}
	}
}

// TestGzipSpliceOffsets verifies glue accounting with a non-zero JSON
// start offset (appending after an existing prefix) and with bodies that
// are pure glue (no fragments at all).
func TestGzipSpliceOffsets(t *testing.T) {
	prefix := []byte("irrelevant-prefix")
	body := append([]byte{}, prefix...)
	sp := BeginGzSplice([]byte("gz-prefix"), GzipBestSpeed, len(prefix))
	body = append(body, `{"all":"glue","no":"fragments"}`...)
	gz := sp.Finish(body)
	if !bytes.HasPrefix(gz, []byte("gz-prefix")) {
		t.Fatalf("splicer clobbered the gz destination prefix")
	}
	got, err := Decompress(gz[len("gz-prefix"):])
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if want := body[len(prefix):]; !bytes.Equal(got, want) {
		t.Fatalf("inflated %q, want %q", got, want)
	}
}

// TestGzipSpliceLargeGlue exercises stored-block chunking past the 64 KiB
// stored-block limit.
func TestGzipSpliceLargeGlue(t *testing.T) {
	big := bytes.Repeat([]byte("x9y8z7"), 30000) // 180 KB of glue
	sp := BeginGzSplice(nil, GzipBestSpeed, 0)
	gz := sp.Finish(big)
	got, err := Decompress(gz)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("large glue did not round-trip (got %d bytes, want %d)", len(got), len(big))
	}
}

// TestFragmentGzMatchesFragment pins FragmentGz's JSON leg to Fragment's
// bytes and its deflate leg to a fragment that inflates back to the JSON.
func TestFragmentGzMatchesFragment(t *testing.T) {
	c := NewProfileCache()
	p := core.ProfileFromRatings(5, []core.Rating{
		{Item: 1, Liked: true}, {Item: 2, Liked: false}, {Item: 70, Liked: true},
	})
	want := c.Fragment(p, nil)
	data, gz, err := c.FragmentGz(p, nil, GzipBestSpeed)
	if err != nil {
		t.Fatalf("FragmentGz: %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("FragmentGz JSON leg %q != Fragment %q", data, want)
	}
	// The deflate leg, wrapped in a header/trailer, inflates to the JSON.
	full := AppendGzipHeader(nil, GzipBestSpeed)
	full = append(full, gz...)
	full = AppendGzipTrailer(full, data)
	got, err := Decompress(full)
	if err != nil {
		t.Fatalf("decompress fragment: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("fragment inflates to %q, want %q", got, data)
	}
	// Cached: a second call returns the identical slices.
	data2, gz2, err := c.FragmentGz(p, nil, GzipBestSpeed)
	if err != nil {
		t.Fatalf("FragmentGz (cached): %v", err)
	}
	if &data2[0] != &data[0] || &gz2[0] != &gz[0] {
		t.Fatalf("FragmentGz did not serve the cached fragment on hit")
	}
}
