// Multi-node protocol frames: the node map a deployment publishes on
// /v1/topology (node ID → address → owned partitions), the replication
// batches primaries stream to their replicas on /v1/replicate, and the
// coordinator's map push on /v1/nodes. These frames extend the v1
// protocol without touching the single-process endpoints: a one-node
// deployment simply serves a one-entry node map.
package wire

import (
	"encoding/json"
	"fmt"
)

// Multi-node protocol limits. Replication bodies get their own, larger
// cap than MaxBodyBytes: a full-state anti-entropy batch carries whole
// profiles and KNN rows for up to MaxReplUsers users.
const (
	// MaxNodes bounds the nodes in a published node map.
	MaxNodes = 256
	// MaxNodePartitions bounds the partition count a node map may claim.
	MaxNodePartitions = 1 << 12
	// MaxReplUsers bounds the users in one replication batch; larger
	// syncs are chunked by the sender.
	MaxReplUsers = 4096
	// MaxReplBodyBytes bounds a /v1/replicate request body.
	MaxReplBodyBytes = 8 << 20
)

// NodeInfo is one node's entry in the published node map: its identity,
// its dialable address, and the ring partitions it currently serves as
// primary and as replica.
type NodeInfo struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// FrameAddr is the node's framed-transport listener (host:port),
	// empty when the node serves JSON/HTTP only. Peers prefer it for
	// replication shipments and proxy hops.
	FrameAddr string `json:"frame_addr,omitempty"`
	// Primary lists the partitions this node owns (serves reads/writes,
	// dispatches worker jobs, streams replication).
	Primary []int `json:"primary,omitempty"`
	// Replica lists the partitions this node mirrors for failover.
	Replica []int `json:"replica,omitempty"`
}

// NodeMap is the authoritative assignment of ring partitions to nodes,
// stamped with a monotone epoch: a node or client holding an older epoch
// must adopt the newer map. It travels embedded in Topology (GET
// /v1/topology) and standalone as the coordinator's push (POST /v1/nodes).
type NodeMap struct {
	Epoch      uint64     `json:"epoch"`
	Partitions int        `json:"partitions"`
	Nodes      []NodeInfo `json:"nodes"`
	// Coordinator identifies the node that published this map (empty on
	// the boot map, which every member computes locally). When two
	// coordinators race the same epoch — a partial partition where each
	// sees a different alive majority — receivers break the tie
	// deterministically in favour of the lower coordinator ID, so every
	// node both publishers can reach settles on the same map.
	Coordinator string `json:"coordinator,omitempty"`
}

// Primary returns the node serving partition p as primary, or nil.
func (m *NodeMap) Primary(p int) *NodeInfo {
	return m.find(p, func(n *NodeInfo) []int { return n.Primary })
}

// Replica returns the node mirroring partition p, or nil.
func (m *NodeMap) Replica(p int) *NodeInfo {
	return m.find(p, func(n *NodeInfo) []int { return n.Replica })
}

func (m *NodeMap) find(p int, list func(*NodeInfo) []int) *NodeInfo {
	for i := range m.Nodes {
		for _, q := range list(&m.Nodes[i]) {
			if q == p {
				return &m.Nodes[i]
			}
		}
	}
	return nil
}

// NodeRef points a client at the node owning one user — the answer to
// GET /v1/topology?uid=U.
type NodeRef struct {
	ID        string `json:"id"`
	Addr      string `json:"addr"`
	Partition int    `json:"partition"`
}

// ReplUser is one user's migratable state on the replication stream —
// the wire form of the engine's ExportUsers/ImportUsers UserState
// (profile opinion sets, KNN row, retained recommendations). Identifiers
// are real, not pseudonyms: replication is server↔server only.
type ReplUser struct {
	UID       uint32   `json:"uid"`
	Liked     []uint32 `json:"liked,omitempty"`
	Disliked  []uint32 `json:"disliked,omitempty"`
	Neighbors []uint32 `json:"neighbors,omitempty"`
	Recs      []uint32 `json:"recs,omitempty"`
}

// ReplBatch is one replication shipment for one partition: either a tail
// batch (the users dirtied since the previous shipment) or, with Full
// set, one chunk of a periodic full-state anti-entropy sync. Seq orders
// shipments per (sender, partition); the destination's merge semantics
// (ImportUsers: destination-wins, set-union profiles) make duplicate and
// reordered delivery idempotent, so the sender retries freely.
type ReplBatch struct {
	// Epoch is the sender's node-map epoch at ship time — a receiver
	// that no longer mirrors the partition answers with a typed error
	// instead of applying.
	Epoch     uint64     `json:"epoch"`
	Partition int        `json:"partition"`
	Seq       uint64     `json:"seq"`
	Full      bool       `json:"full,omitempty"`
	Users     []ReplUser `json:"users"`
}

// ReplAck acknowledges a replication batch.
type ReplAck struct {
	Applied int    `json:"applied"`
	Seq     uint64 `json:"seq"`
}

// EncodeNodeMap serializes a node map for /v1/nodes.
func EncodeNodeMap(m *NodeMap) ([]byte, error) { return json.Marshal(m) }

// DecodeNodeMap parses and bounds-checks a node map — the fuzzed
// production decoder of POST /v1/nodes and of the map embedded in
// snapshot stamps. Oversized input fails with an error wrapping
// ErrTooLarge; structurally invalid maps (partition indexes out of
// range, empty identities) fail with a typed error, never a panic.
func DecodeNodeMap(data []byte) (*NodeMap, error) {
	if len(data) > MaxBodyBytes {
		return nil, fmt.Errorf("%w: body of %d bytes exceeds %d", ErrTooLarge, len(data), MaxBodyBytes)
	}
	var m NodeMap
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("wire: decode node map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks a node map's structural invariants.
func (m *NodeMap) Validate() error {
	if m.Partitions < 1 || m.Partitions > MaxNodePartitions {
		return fmt.Errorf("wire: node map partitions %d out of [1, %d]", m.Partitions, MaxNodePartitions)
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("wire: node map has no nodes")
	}
	if len(m.Nodes) > MaxNodes {
		return fmt.Errorf("%w: node map of %d nodes exceeds %d", ErrTooLarge, len(m.Nodes), MaxNodes)
	}
	seen := make(map[string]bool, len(m.Nodes))
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if n.ID == "" || n.Addr == "" {
			return fmt.Errorf("wire: node %d has empty id or addr", i)
		}
		if seen[n.ID] {
			return fmt.Errorf("wire: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
		for _, p := range append(append([]int(nil), n.Primary...), n.Replica...) {
			if p < 0 || p >= m.Partitions {
				return fmt.Errorf("wire: node %q claims partition %d outside [0, %d)", n.ID, p, m.Partitions)
			}
		}
	}
	return nil
}

// EncodeReplBatch serializes a replication batch for /v1/replicate.
func EncodeReplBatch(b *ReplBatch) ([]byte, error) { return json.Marshal(b) }

// DecodeReplBatch parses and bounds-checks a replication batch — the
// fuzzed production decoder of POST /v1/replicate.
func DecodeReplBatch(data []byte) (*ReplBatch, error) {
	if len(data) > MaxReplBodyBytes {
		return nil, fmt.Errorf("%w: body of %d bytes exceeds %d", ErrTooLarge, len(data), MaxReplBodyBytes)
	}
	var b ReplBatch
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("wire: decode repl batch: %w", err)
	}
	if b.Partition < 0 || b.Partition >= MaxNodePartitions {
		return nil, fmt.Errorf("wire: repl batch partition %d out of [0, %d)", b.Partition, MaxNodePartitions)
	}
	if len(b.Users) > MaxReplUsers {
		return nil, fmt.Errorf("%w: repl batch of %d users exceeds %d", ErrTooLarge, len(b.Users), MaxReplUsers)
	}
	return &b, nil
}
