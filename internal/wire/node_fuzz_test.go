package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Fuzzers for the multi-node ingest surface (POST /v1/nodes and POST
// /v1/replicate), under the same contract as the /v1 decoders: arbitrary
// bytes yield a typed error or a message that survives an encode/decode
// round trip — never a panic, never silent garbage.

func FuzzDecodeNodeMap(f *testing.F) {
	f.Add([]byte(`{"epoch":1,"partitions":4,"nodes":[{"id":"n1","addr":"http://127.0.0.1:8080","primary":[0,1],"replica":[2,3]}]}`))
	f.Add([]byte(`{"epoch":0,"partitions":1,"nodes":[{"id":"a","addr":"x"}]}`))
	f.Add([]byte(`{"partitions":2,"nodes":[{"id":"a","addr":"x","primary":[0]},{"id":"b","addr":"y","primary":[1],"replica":[0]}]}`))
	f.Add([]byte(`{"partitions":-1,"nodes":[]}`))
	f.Add([]byte(`{"partitions":4,"nodes":[{"id":"a","addr":"x","primary":[9]}]}`))
	f.Add([]byte(`{"partitions":4,"nodes":[{"id":"a","addr":"x"},{"id":"a","addr":"y"}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeNodeMap(data)
		if err != nil {
			if m != nil {
				t.Fatal("error with non-nil node map")
			}
			return
		}
		if m.Partitions < 1 || m.Partitions > MaxNodePartitions {
			t.Fatalf("accepted partitions %d", m.Partitions)
		}
		if len(m.Nodes) == 0 || len(m.Nodes) > MaxNodes {
			t.Fatalf("accepted %d nodes", len(m.Nodes))
		}
		for _, n := range m.Nodes {
			for _, p := range append(append([]int(nil), n.Primary...), n.Replica...) {
				if p < 0 || p >= m.Partitions {
					t.Fatalf("accepted out-of-range partition %d", p)
				}
			}
		}
		re, err := EncodeNodeMap(m)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		m2, err := DecodeNodeMap(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		re2, _ := EncodeNodeMap(m2)
		if !bytes.Equal(re, re2) {
			t.Fatalf("round trip diverged: %s vs %s", re, re2)
		}
	})
}

func FuzzDecodeReplBatch(f *testing.F) {
	f.Add([]byte(`{"epoch":1,"partition":0,"seq":7,"users":[{"uid":9,"liked":[1,2],"disliked":[3],"neighbors":[4],"recs":[5]}]}`))
	f.Add([]byte(`{"epoch":2,"partition":3,"seq":1,"full":true,"users":[]}`))
	f.Add([]byte(`{"partition":-1}`))
	f.Add([]byte(`{"users":null}`))
	f.Add([]byte(`{"users":[{"uid":4294967295}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`"x"`))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeReplBatch(data)
		if err != nil {
			if b != nil {
				t.Fatal("error with non-nil batch")
			}
			return
		}
		if b.Partition < 0 || b.Partition >= MaxNodePartitions {
			t.Fatalf("accepted partition %d", b.Partition)
		}
		if len(b.Users) > MaxReplUsers {
			t.Fatalf("accepted %d users", len(b.Users))
		}
		re, err := EncodeReplBatch(b)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var b2 ReplBatch
		if err := json.Unmarshal(re, &b2); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		re2, _ := EncodeReplBatch(&b2)
		if !bytes.Equal(re, re2) {
			t.Fatalf("round trip diverged: %s vs %s", re, re2)
		}
	})
}
