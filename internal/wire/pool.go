package wire

import "sync"

// This file provides the pooled buffers behind the zero-allocation encode
// path: steady-state job and result serialization borrows its scratch
// space here instead of allocating per message, so the hot path measured
// by the capacity benchmark (internal/bench) stops pressuring the GC.
// Buffers are plain []byte wrappers; the indirection through PayloadBufs
// keeps the grown capacity when a buffer returns to the pool.

// PayloadBufs is a borrowed pair of encode buffers — raw JSON and its
// gzip form — sized for one personalization job. Obtain with
// GetPayloadBufs, return with PutPayloadBufs once the bytes have been
// written to the wire; the slices must not be referenced afterwards.
type PayloadBufs struct {
	JSON []byte
	Gz   []byte
}

var payloadPool = sync.Pool{New: func() any {
	return &PayloadBufs{
		JSON: make([]byte, 0, 16<<10),
		Gz:   make([]byte, 0, 4<<10),
	}
}}

// GetPayloadBufs borrows a buffer pair from the pool.
func GetPayloadBufs() *PayloadBufs {
	return payloadPool.Get().(*PayloadBufs)
}

// PutPayloadBufs returns a borrowed pair. The slices keep their grown
// capacity (truncated to zero length), so a steady workload converges on
// zero buffer allocations.
func PutPayloadBufs(b *PayloadBufs) {
	b.JSON = b.JSON[:0]
	b.Gz = b.Gz[:0]
	payloadPool.Put(b)
}

// GetBuf borrows a general-purpose encode buffer (result bodies, ack
// bodies). Return it with PutBuf.
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuf returns a borrowed buffer, keeping its grown capacity.
func PutBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1<<10)
	return &b
}}
