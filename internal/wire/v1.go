// Wire protocol v1: the versioned batch API a HyRec deployment speaks
// between the typed Go client (hyrec/client) and the shared HTTP mux
// (internal/server). The legacy Table-1 endpoints (/online, /neighbors,
// /rate, /recommendations) remain served as thin aliases; everything new
// goes through /v1.
//
//	POST /v1/rate       RateRequest            → RateResponse
//	GET  /v1/job?uid=U  —                      → Job (gzip-negotiated JSON)
//	GET  /v1/job?worker=1&wait=D               → next leased job (204 when idle)
//	POST /v1/result     Result                 → RecsResponse
//	POST /v1/ack        AckRequest             → AckResponse
//	GET  /v1/recs?uid=U&n=N                    → RecsResponse
//	GET  /v1/neighbors?uid=U                   → NeighborsResponse
//	GET  /v1/topology   —                      → Topology
//	POST /v1/topology   ScaleRequest           → Topology (after the live reshard)
//
// The worker form of /v1/job is the pull loop of client.Worker: the
// scheduler (internal/sched) dispatches the stalest pending user's job,
// stamped with lease metadata; an idle queue long-polls up to `wait`
// and answers 204 No Content. Widgets complete a lease implicitly by
// posting the result (Result.Lease) or explicitly via /v1/ack; an ack
// with done=false abandons the lease for immediate re-issue.
//
// Every non-2xx response carries an ErrorEnvelope with a stable machine
// code, so clients dispatch on Code instead of parsing message text.
package wire

// V1Prefix is the path prefix of the versioned protocol.
const V1Prefix = "/v1"

// Protocol limits enforced by the server. Oversized requests are
// rejected with CodeTooLarge and HTTP 413 rather than truncated.
const (
	// MaxBatchRatings bounds the ratings accepted in one RateRequest.
	MaxBatchRatings = 4096
	// MaxBodyBytes bounds any /v1 request body.
	MaxBodyBytes = 1 << 20
)

// RatingMsg is one opinion in a batch rate request. Unlike job/result
// messages, ratings travel with real identifiers: they flow client →
// server only and never expose another user's data.
type RatingMsg struct {
	UID   uint32 `json:"uid"`
	Item  uint32 `json:"item"`
	Liked bool   `json:"liked"`
}

// RateRequest is the body of POST /v1/rate.
type RateRequest struct {
	Ratings []RatingMsg `json:"ratings"`
}

// RateResponse acknowledges a batch: how many ratings were applied.
type RateResponse struct {
	Accepted int `json:"accepted"`
}

// RecsResponse carries recommendations — the response of POST /v1/result
// and GET /v1/recs. Items are real (de-anonymised) identifiers.
type RecsResponse struct {
	Recs []uint32 `json:"recs"`
}

// NeighborsResponse is the response of GET /v1/neighbors: the user's
// current KNN approximation as real user identifiers.
type NeighborsResponse struct {
	Neighbors []uint32 `json:"neighbors"`
}

// AckRequest is the body of POST /v1/ack: done=true marks the leased
// job complete without posting a result (a worker that computed but has
// nothing new to report), done=false abandons the lease so the job is
// re-issued immediately instead of waiting for lease expiry — the
// polite form of churning out.
type AckRequest struct {
	Lease uint64 `json:"lease"`
	Done  bool   `json:"done"`
}

// AckResponse acknowledges an ack.
type AckResponse struct {
	Status string `json:"status"`
}

// Topology is the cluster shape served on GET /v1/topology (and
// returned by POST /v1/topology after a scale): the partition count and
// virtual-node parameter fully determine the consistent-hash ring, so a
// client that caches them can predict routing; Migrating reports
// whether a live resharding is streaming user state right now.
type Topology struct {
	Partitions int  `json:"partitions"`
	VNodes     int  `json:"vnodes,omitempty"`
	Migrating  bool `json:"migrating"`
	// UsersMovedTotal counts users migrated across all scale events of
	// this process (mirrors hyrec_migration_users_moved_total).
	UsersMovedTotal int64 `json:"users_moved_total"`

	// Multi-node deployments additionally publish the node map (see
	// node.go): which node serves each partition as primary and which
	// mirrors it, stamped with the map epoch. Self identifies the node
	// that answered. All three are absent on single-process deployments.
	NodeEpoch uint64     `json:"node_epoch,omitempty"`
	Nodes     []NodeInfo `json:"nodes,omitempty"`
	Self      string     `json:"self,omitempty"`
	// NodeCoordinator echoes the in-force map's Coordinator, so a map
	// reconstructed from a topology pull keeps its tie-break identity.
	NodeCoordinator string `json:"node_coordinator,omitempty"`
	// Owner answers the ?uid=U form of GET /v1/topology: the node
	// currently serving that user's partition as primary.
	Owner *NodeRef `json:"owner,omitempty"`
}

// ScaleRequest is the body of POST /v1/topology: the target partition
// count for a live resharding.
type ScaleRequest struct {
	Partitions int `json:"partitions"`
}

// Machine-readable error codes of the v1 protocol.
const (
	// CodeBadRequest: malformed parameters or body.
	CodeBadRequest = "bad_request"
	// CodeUnknownUser: the user was never seen by Rate or Job.
	CodeUnknownUser = "unknown_user"
	// CodeStaleEpoch: the result references an anonymiser epoch that is
	// no longer resolvable (or, on a cluster, resolvable nowhere).
	CodeStaleEpoch = "stale_epoch"
	// CodeUnknownLease: the acked lease is not outstanding — already
	// completed, superseded, expired past its retry budget, or never
	// issued.
	CodeUnknownLease = "unknown_lease"
	// CodeMoved: the request's user state moved to a different
	// partition in a completed topology change; the client should
	// refetch GET /v1/topology and retry once.
	CodeMoved = "moved"
	// CodeNotPrimary: the request (a worker result/ack, a replication
	// batch, or a forwarded user request) landed on a node that does not
	// serve the user's partition as primary — typically a replica that
	// only mirrors the state. Like CodeMoved, the client should refetch
	// GET /v1/topology and retry once; the envelope's Primary field
	// carries the owning node's address when the rejecting node knows it.
	CodeNotPrimary = "not_primary"
	// CodeTooLarge: the request exceeds MaxBatchRatings or MaxBodyBytes.
	CodeTooLarge = "too_large"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeOverloaded: the server's admission gate shed the request
	// because its class's bounded queue is full. Sent as HTTP 429 with a
	// Retry-After header (and RetryAfterMS in the envelope), or as a
	// framed TError carrying the same retry-after hint. The client
	// should back off at least the hinted duration before one retry.
	CodeOverloaded = "overloaded"
	// CodeForbidden: a node-plane request (/v1/replicate, /v1/nodes)
	// without the deployment's shared secret.
	CodeForbidden = "forbidden"
	// CodeInternal: unexpected server-side failure.
	CodeInternal = "internal"
)

// ErrorBody is the typed payload inside an ErrorEnvelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Primary is the owning node's address on CodeNotPrimary answers,
	// so a node-aware client can re-target without a topology fetch.
	Primary string `json:"primary,omitempty"`
	// RetryAfterMS is the backoff hint in milliseconds on CodeOverloaded
	// answers (mirrors the Retry-After header, at finer resolution).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope is the JSON shape of every v1 error response.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}
