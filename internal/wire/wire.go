// Package wire defines HyRec's on-the-wire message formats (Section 4.2 of
// the paper): JSON personalization jobs and KNN-update results, gzip
// compression with pooled writers, a version-keyed cache of serialized
// profiles, and byte meters used to reproduce the bandwidth experiments
// (Figure 10 and Section 5.6).
//
// All identifiers inside messages are pseudonyms minted by a
// core.Anonymizer; this package never sees real IDs.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"

	"hyrec/internal/core"
)

// Typed decode failures, so transports map protocol violations to stable
// error-envelope codes without parsing message text. Every decoder in
// this package guarantees: arbitrary input yields either a valid message
// or an error wrapping one of these (or a plain decode error) — never a
// panic. The Fuzz* targets in fuzz_test.go enforce that contract.
var (
	// ErrTooLarge: the request exceeds a protocol limit (MaxBatchRatings
	// or MaxBodyBytes); mapped to CodeTooLarge / HTTP 413.
	ErrTooLarge = errors.New("wire: request exceeds protocol limit")
	// ErrMissingLease: an ack without a lease ID; mapped to
	// CodeBadRequest.
	ErrMissingLease = errors.New("wire: ack missing lease")
)

// ProfileMsg is the JSON form of one (pseudonymised) user profile.
type ProfileMsg struct {
	ID       uint32   `json:"id"`
	Liked    []uint32 `json:"liked"`
	Disliked []uint32 `json:"disliked,omitempty"`
}

// Job is a personalization job: everything the widget needs to run one
// iteration of KNN selection (Algorithm 1) and item recommendation
// (Algorithm 2). It carries the requesting user's own profile plus the
// candidate set assembled by the Sampler.
type Job struct {
	UID   uint32 `json:"uid"`
	Epoch uint64 `json:"epoch"`
	K     int    `json:"k"`
	R     int    `json:"r"`
	// Lease, LeaseDeadlineMS and Attempt are the scheduler's job
	// lifecycle metadata (internal/sched). A server running without the
	// scheduler omits them entirely — the pre-scheduler synchronous wire
	// format — so legacy widgets are unaffected. LeaseDeadlineMS is Unix
	// milliseconds; Attempt is 1 for a first issue, >1 for a straggler
	// re-issue.
	Lease           uint64       `json:"lease,omitempty"`
	LeaseDeadlineMS int64        `json:"deadline_ms,omitempty"`
	Attempt         int          `json:"attempt,omitempty"`
	Profile         ProfileMsg   `json:"profile"`
	Candidates      []ProfileMsg `json:"candidates"`
}

// Result is the widget's reply: the user's new k nearest neighbours (best
// first) and the recommendations it computed, all still pseudonymised under
// the job's epoch.
type Result struct {
	UID   uint32 `json:"uid"`
	Epoch uint64 `json:"epoch"`
	// Lease echoes the job's lease ID so the scheduler retires it on
	// fold-in (implicit ack). Zero for legacy results.
	Lease           uint64   `json:"lease,omitempty"`
	Neighbors       []uint32 `json:"neighbors"`
	Recommendations []uint32 `json:"recs"`
}

// EncodeJob serializes a job with encoding/json. The hot path uses
// AppendJob / JobEncoder with the profile cache instead; both produce
// byte-identical JSON, which TestEncoderEquivalence verifies.
func EncodeJob(j *Job) ([]byte, error) { return json.Marshal(j) }

// DecodeJob parses a personalization job.
func DecodeJob(data []byte) (*Job, error) {
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("wire: decode job: %w", err)
	}
	return &j, nil
}

// EncodeResult serializes a widget result.
func EncodeResult(r *Result) ([]byte, error) { return json.Marshal(r) }

// DecodeResult parses a widget result.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("wire: decode result: %w", err)
	}
	return &r, nil
}

// DecodeRateRequest parses and validates a POST /v1/rate body: well-formed
// JSON within the MaxBodyBytes and MaxBatchRatings limits. Oversized
// input fails with an error wrapping ErrTooLarge.
func DecodeRateRequest(data []byte) (*RateRequest, error) {
	if len(data) > MaxBodyBytes {
		return nil, fmt.Errorf("%w: body of %d bytes exceeds %d", ErrTooLarge, len(data), MaxBodyBytes)
	}
	var req RateRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("wire: decode rate request: %w", err)
	}
	if len(req.Ratings) > MaxBatchRatings {
		return nil, fmt.Errorf("%w: batch of %d exceeds %d ratings", ErrTooLarge, len(req.Ratings), MaxBatchRatings)
	}
	return &req, nil
}

// DecodeAck parses and validates a POST /v1/ack body. A zero lease fails
// with an error wrapping ErrMissingLease.
func DecodeAck(data []byte) (*AckRequest, error) {
	if len(data) > MaxBodyBytes {
		return nil, fmt.Errorf("%w: body of %d bytes exceeds %d", ErrTooLarge, len(data), MaxBodyBytes)
	}
	var req AckRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("wire: decode ack: %w", err)
	}
	if req.Lease == 0 {
		return nil, ErrMissingLease
	}
	return &req, nil
}

// ProfileToMsg converts a core.Profile into its wire form, pseudonymising
// every identifier with the given aliaser — pass a core.AliasView when
// assembling a job so every identifier belongs to one epoch. A nil anon
// sends real IDs (used by tests and by deployments that disable
// anonymisation).
func ProfileToMsg(p core.Profile, anon core.Aliaser) ProfileMsg {
	msg := ProfileMsg{
		ID:    aliasUser(p.User(), anon),
		Liked: aliasItems(p.Liked(), anon),
	}
	if len(p.Disliked()) > 0 {
		msg.Disliked = aliasItems(p.Disliked(), anon)
	}
	return msg
}

// MsgToProfile reconstructs a profile from its wire form. Identifiers are
// kept as-is (pseudonymised); the widget works entirely in pseudonym space,
// which is safe because the anonymiser's bijection preserves set
// intersections and therefore similarities. The bulk constructor keeps
// the rating-at-a-time semantics of the original decode loop (duplicates
// collapse, dislikes win) at O(n log n) and two allocations — this is
// the widget's per-candidate hot path.
func MsgToProfile(m ProfileMsg) core.Profile {
	return core.ProfileFromLists(core.UserID(m.ID), m.Liked, m.Disliked)
}

// ProfileToMsgArena is ProfileToMsg writing the aliased item lists into
// arena instead of one fresh slice per list, returning the grown arena.
// Job assembly aliases every candidate of a job this way: one sized
// arena per job rather than two allocations per candidate. Sub-slices
// are capacity-capped, so appending to a message's list later cannot
// clobber a neighbouring message's items.
func ProfileToMsgArena(p core.Profile, anon core.Aliaser, arena []uint32) (ProfileMsg, []uint32) {
	msg := ProfileMsg{ID: aliasUser(p.User(), anon)}
	msg.Liked, arena = appendAliased(arena, p.Liked(), anon)
	if len(p.Disliked()) > 0 {
		msg.Disliked, arena = appendAliased(arena, p.Disliked(), anon)
	}
	return msg, arena
}

func appendAliased(arena []uint32, items []core.ItemID, anon core.Aliaser) (list, grown []uint32) {
	off := len(arena)
	for _, it := range items {
		if anon == nil {
			arena = append(arena, uint32(it))
		} else {
			arena = append(arena, uint32(anon.AliasItem(it)))
		}
	}
	return arena[off:len(arena):len(arena)], arena
}

func aliasUser(u core.UserID, anon core.Aliaser) uint32 {
	if anon == nil {
		return uint32(u)
	}
	return uint32(anon.AliasUser(u))
}

func aliasItems(items []core.ItemID, anon core.Aliaser) []uint32 {
	out := make([]uint32, len(items))
	for i, it := range items {
		if anon == nil {
			out[i] = uint32(it)
		} else {
			out[i] = uint32(anon.AliasItem(it))
		}
	}
	return out
}
