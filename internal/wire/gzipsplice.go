package wire

import (
	"compress/flate"
	"compress/gzip"
	"hash/crc32"
	"io"
	"sync"
)

// This file implements spliced gzip assembly: building a job's gzip
// payload by concatenating pre-compressed per-profile deflate fragments
// with the small JSON glue between them emitted as stored (uncompressed)
// deflate blocks. Compressing a job is then a memcpy of cached fragments
// plus a CRC over the JSON body, instead of re-deflating the whole
// payload — the gzip analogue of the serialized-profile cache.
//
// The deflate format makes this sound:
//   - Each cached fragment is compressed by a flate.Writer that is Reset
//     before the fragment and sync-Flushed after it, so no back-reference
//     or Huffman state crosses a fragment boundary and the fragment ends
//     byte-aligned (the flush marker is an empty stored block, 00 00 FF FF).
//   - Glue bytes are emitted as stored blocks (BTYPE=00), which are
//     byte-aligned by construction and cost 5 bytes of framing per 64 KiB.
//   - The stream ends with an empty final fixed-Huffman block (03 00),
//     then the gzip trailer: CRC-32/IEEE and length of the whole JSON body.
//
// Any gzip reader inflates the result to exactly the JSON body; the
// spliced bytes differ from AppendGzip's (framing, not content), which
// TestGzipSpliceRoundTrip and the server's payload tests pin.

// flatePools pools raw-deflate writers per level, like the gzip writer
// pools in gzip.go.
var flatePools sync.Map // GzipLevel → *sync.Pool

func flatePool(level GzipLevel) *sync.Pool {
	if p, ok := flatePools.Load(level); ok {
		return p.(*sync.Pool)
	}
	p := &sync.Pool{New: func() any {
		w, err := flate.NewWriter(io.Discard, int(level))
		if err != nil {
			w, _ = flate.NewWriter(io.Discard, flate.DefaultCompression)
		}
		return w
	}}
	actual, _ := flatePools.LoadOrStore(level, p)
	return actual.(*sync.Pool)
}

// AppendGzipHeader appends a 10-byte gzip member header for the given
// level (no name, no mtime — same fields Go's gzip writer emits).
func AppendGzipHeader(dst []byte, level GzipLevel) []byte {
	var xfl byte
	switch level {
	case GzipLevel(gzip.BestCompression):
		xfl = 2
	case GzipLevel(gzip.BestSpeed):
		xfl = 4
	}
	return append(dst, 0x1f, 0x8b, 8, 0, 0, 0, 0, 0, xfl, 255)
}

// AppendStoredBytes appends data to dst as non-final stored deflate
// blocks (BTYPE=00): zero compression CPU, byte-aligned, 5 bytes of
// framing per 64 KiB chunk. The destination must be at a deflate byte
// boundary, which every splice primitive in this file preserves.
func AppendStoredBytes(dst, data []byte) []byte {
	for len(data) > 0 {
		n := len(data)
		if n > 0xffff {
			n = 0xffff
		}
		dst = append(dst, 0, byte(n), byte(n>>8), byte(^n), byte(^n>>8))
		dst = append(dst, data[:n]...)
		data = data[n:]
	}
	return dst
}

// AppendDeflateFragment appends the deflate compression of data as a
// self-contained, byte-aligned, non-final fragment: the pooled writer is
// Reset first (no state from previous fragments) and sync-flushed after
// (00 00 FF FF marker). Fragments produced this way can be concatenated
// freely with stored blocks and other fragments.
func AppendDeflateFragment(dst, data []byte, level GzipLevel) ([]byte, error) {
	sw := sliceWriterPool.Get().(*sliceWriter)
	sw.b = dst
	p := flatePool(level)
	w := p.Get().(*flate.Writer)
	w.Reset(sw)
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	out := sw.b
	sw.b = nil
	sliceWriterPool.Put(sw)
	p.Put(w)
	return out, nil
}

// AppendGzipTrailer terminates the deflate stream (empty final
// fixed-Huffman block) and appends the gzip trailer for the given
// uncompressed body.
func AppendGzipTrailer(dst, body []byte) []byte {
	crc := crc32.ChecksumIEEE(body)
	n := uint32(len(body))
	return append(dst, 0x03, 0x00,
		byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24),
		byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
}

// GzSplicer incrementally assembles a gzip payload alongside a JSON body
// that is being append-built in the same pass. The caller appends JSON as
// usual; whenever the bytes just appended have a cached deflate fragment,
// it calls Splice, and everything between splices (the glue) is swept into
// stored blocks automatically. Indices, not sub-slices, track the glue, so
// reallocation of the JSON buffer between calls is fine.
type GzSplicer struct {
	dst       []byte
	jsonStart int // where this payload's body begins in the JSON buffer
	glueStart int // first JSON byte not yet represented in dst
}

// BeginGzSplice starts a spliced gzip payload appended to gzDst, for a
// JSON body that will be built starting at index jsonStart of its buffer.
func BeginGzSplice(gzDst []byte, level GzipLevel, jsonStart int) GzSplicer {
	return GzSplicer{dst: AppendGzipHeader(gzDst, level), jsonStart: jsonStart, glueStart: jsonStart}
}

// Splice records that the last fragLen bytes of jsonBody were appended
// from a cached fragment whose deflate form is fragGz: pending glue is
// flushed as stored blocks, then fragGz is copied in verbatim.
func (s *GzSplicer) Splice(jsonBody []byte, fragLen int, fragGz []byte) {
	if glue := jsonBody[s.glueStart : len(jsonBody)-fragLen]; len(glue) > 0 {
		s.dst = AppendStoredBytes(s.dst, glue)
	}
	s.dst = append(s.dst, fragGz...)
	s.glueStart = len(jsonBody)
}

// Finish flushes any remaining glue and closes the gzip member, returning
// the complete payload. jsonBody must be the finished JSON buffer.
func (s *GzSplicer) Finish(jsonBody []byte) []byte {
	if glue := jsonBody[s.glueStart:]; len(glue) > 0 {
		s.dst = AppendStoredBytes(s.dst, glue)
	}
	s.glueStart = len(jsonBody)
	return AppendGzipTrailer(s.dst, jsonBody[s.jsonStart:])
}
