package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// Native Go fuzzers for every decoder on the /v1 ingest surface. The
// contract under fuzz: arbitrary bytes yield either a typed error or a
// message that survives an encode/decode round trip unchanged — never a
// panic, and never silent garbage (a "successful" decode that re-encodes
// to something that decodes differently). Seed corpora live in
// testdata/fuzz/<FuzzName>/; scripts/fuzz.sh gives each target a short
// CI budget on every push.

func FuzzDecodeRateBatch(f *testing.F) {
	f.Add([]byte(`{"ratings":[{"uid":1,"item":5,"liked":true}]}`))
	f.Add([]byte(`{"ratings":[]}`))
	f.Add([]byte(`{"ratings":null}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"ratings":[{"uid":4294967295,"item":4294967295,"liked":false}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"ratings":[{"uid":-1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRateRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		if len(req.Ratings) > MaxBatchRatings {
			t.Fatalf("accepted oversized batch of %d", len(req.Ratings))
		}
		// No silent garbage: a successful decode re-encodes to JSON that
		// decodes to the same batch.
		re, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := DecodeRateRequest(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(back.Ratings) != len(req.Ratings) {
			t.Fatalf("round trip changed batch size: %d vs %d", len(back.Ratings), len(req.Ratings))
		}
		for i := range back.Ratings {
			if back.Ratings[i] != req.Ratings[i] {
				t.Fatalf("round trip changed rating %d: %+v vs %+v", i, back.Ratings[i], req.Ratings[i])
			}
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	f.Add([]byte(`{"uid":7,"epoch":2,"neighbors":[1,2],"recs":[9]}`))
	f.Add([]byte(`{"uid":7,"epoch":2,"lease":77,"neighbors":[],"recs":[]}`))
	f.Add([]byte(`{"uid":0,"epoch":0,"neighbors":null,"recs":null}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`nope`))
	f.Add([]byte(`{"uid":18446744073709551615}`))
	f.Add([]byte(`{"neighbors":[1e309]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeResult(data)
		if err != nil {
			return
		}
		// Round trip through both encoders: json.Marshal and the pooled
		// appender must agree, and the bytes must decode back equal.
		std, err := EncodeResult(res)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if app := AppendResult(nil, res); !bytes.Equal(app, std) {
			t.Fatalf("encoder divergence:\n append %s\n stdlib %s", app, std)
		}
		back, err := DecodeResult(std)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if back.UID != res.UID || back.Epoch != res.Epoch || back.Lease != res.Lease ||
			len(back.Neighbors) != len(res.Neighbors) || len(back.Recommendations) != len(res.Recommendations) {
			t.Fatalf("round trip changed result: %+v vs %+v", back, res)
		}
	})
}

func FuzzDecodeAck(f *testing.F) {
	f.Add([]byte(`{"lease":77,"done":true}`))
	f.Add([]byte(`{"lease":1,"done":false}`))
	f.Add([]byte(`{"lease":0}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"lease":18446744073709551615,"done":true}`))
	f.Add([]byte(`"lease"`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeAck(data)
		if err != nil {
			if errors.Is(err, ErrMissingLease) && req != nil {
				t.Fatal("missing-lease error with non-nil ack")
			}
			return
		}
		if req.Lease == 0 {
			t.Fatal("accepted ack without a lease")
		}
		re, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := DecodeAck(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if *back != *req {
			t.Fatalf("round trip changed ack: %+v vs %+v", back, req)
		}
	})
}

// FuzzDecodeJob rides along: jobs cross the wire server → widget, and
// the widget's decoder must hold the same never-panic contract.
func FuzzDecodeJob(f *testing.F) {
	f.Add([]byte(`{"uid":42,"epoch":3,"k":10,"r":5,"profile":{"id":42,"liked":[1]},"candidates":[{"id":2,"liked":[1,2]}]}`))
	f.Add([]byte(`{"uid":1,"epoch":1,"k":5,"r":5,"lease":77,"deadline_ms":123,"attempt":2,"profile":{"id":1,"liked":null},"candidates":null}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		job, err := DecodeJob(data)
		if err != nil {
			return
		}
		std, err := EncodeJob(job)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if app := AppendJob(nil, job, nil); !bytes.Equal(app, std) {
			t.Fatalf("encoder divergence:\n append %s\n stdlib %s", app, std)
		}
	})
}
