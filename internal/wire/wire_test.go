package wire

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"hyrec/internal/core"
)

func sampleJob(rng *rand.Rand, nCandidates, profileSize int) *Job {
	mk := func(id uint32) ProfileMsg {
		liked := make([]uint32, profileSize)
		for i := range liked {
			liked[i] = rng.Uint32() % 10000
		}
		SortUint32(liked)
		return ProfileMsg{ID: id, Liked: dedup(liked)}
	}
	j := &Job{UID: 42, Epoch: 3, K: 10, R: 5, Profile: mk(42)}
	for i := 0; i < nCandidates; i++ {
		j.Candidates = append(j.Candidates, mk(uint32(100+i)))
	}
	return j
}

func dedup(xs []uint32) []uint32 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

func TestJobRoundTrip(t *testing.T) {
	j := sampleJob(rand.New(rand.NewSource(1)), 5, 20)
	data, err := EncodeJob(j)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJob(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.UID != j.UID || got.Epoch != j.Epoch || len(got.Candidates) != 5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestLeaseFieldsOmittedWhenZero pins the compatibility contract: a job
// or result without scheduler metadata serializes exactly as the
// pre-scheduler protocol did — no lease keys at all.
func TestLeaseFieldsOmittedWhenZero(t *testing.T) {
	j := sampleJob(rand.New(rand.NewSource(3)), 2, 4)
	data, err := EncodeJob(j)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"lease", "deadline_ms", "attempt"} {
		if bytes.Contains(data, []byte(key)) {
			t.Fatalf("zero-lease job leaks %q: %s", key, data)
		}
	}
	rdata, err := EncodeResult(&Result{UID: 1, Epoch: 0, Neighbors: []uint32{2}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(rdata, []byte("lease")) {
		t.Fatalf("zero-lease result leaks lease field: %s", rdata)
	}
}

// TestLeaseRoundTrip checks the stamped form survives encode/decode on
// both message types.
func TestLeaseRoundTrip(t *testing.T) {
	j := sampleJob(rand.New(rand.NewSource(4)), 1, 2)
	j.Lease, j.LeaseDeadlineMS, j.Attempt = 77, 123456, 2
	data, err := EncodeJob(j)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJob(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lease != 77 || got.LeaseDeadlineMS != 123456 || got.Attempt != 2 {
		t.Fatalf("lease metadata lost: %+v", got)
	}
	res := &Result{UID: 1, Epoch: 1, Lease: 77, Neighbors: []uint32{2}}
	rdata, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := DecodeResult(rdata)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Lease != 77 {
		t.Fatalf("result lease lost: %+v", rt)
	}
}

func TestResultRoundTrip(t *testing.T) {
	r := &Result{UID: 7, Epoch: 2, Neighbors: []uint32{1, 2}, Recommendations: []uint32{9}}
	data, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.UID != 7 || len(got.Neighbors) != 2 || got.Recommendations[0] != 9 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeJob([]byte("{")); err == nil {
		t.Error("DecodeJob accepted garbage")
	}
	if _, err := DecodeResult([]byte("nope")); err == nil {
		t.Error("DecodeResult accepted garbage")
	}
}

// TestEncoderEquivalence: the hand-rolled appender must produce bytes
// identical to encoding/json for arbitrary jobs, so cached-fragment
// assembly stays interoperable.
func TestEncoderEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		j := sampleJob(rng, 1+rng.Intn(6), rng.Intn(30))
		if trial%3 == 0 {
			j.Candidates[0].Disliked = []uint32{1, 5, 9}
		}
		if trial%7 == 0 {
			j.Candidates = nil
		}
		if trial%2 == 0 {
			// Lease metadata present: the scheduler-stamped form.
			j.Lease = 1 + uint64(rng.Int63())
			j.LeaseDeadlineMS = 1 + rng.Int63n(1<<40)
			j.Attempt = 1 + rng.Intn(4)
		}
		want, err := json.Marshal(j)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendJob(nil, j, nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d:\n got %s\nwant %s", trial, got, want)
		}
	}
}

func TestAppendProfileMsgEquivalenceProperty(t *testing.T) {
	prop := func(id uint32, liked, disliked []uint32) bool {
		m := ProfileMsg{ID: id, Liked: liked}
		if len(disliked) > 0 {
			m.Disliked = disliked
		}
		want, err := json.Marshal(m)
		if err != nil {
			return false
		}
		return bytes.Equal(AppendProfileMsg(nil, m), want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileMsgConversionRoundTrip(t *testing.T) {
	p := core.NewProfile(9).WithRating(3, true).WithRating(8, false).WithRating(1, true)
	msg := ProfileToMsg(p, nil)
	back := MsgToProfile(msg)
	if !back.Equal(p) {
		t.Fatalf("round trip changed profile: %v vs %v", back, p)
	}
}

func TestProfileMsgAnonymised(t *testing.T) {
	anon := core.NewAnonymizer(4)
	p := core.NewProfile(9).WithRating(3, true)
	msg := ProfileToMsg(p, anon)
	if msg.ID == 9 {
		t.Error("user ID not pseudonymised")
	}
	if msg.Liked[0] == 3 {
		t.Error("item ID not pseudonymised")
	}
	// Pseudonymisation preserves similarity structure: two users sharing an
	// item still share the aliased item.
	q := core.NewProfile(10).WithRating(3, true)
	qmsg := ProfileToMsg(q, anon)
	if qmsg.Liked[0] != msg.Liked[0] {
		t.Error("shared item aliased inconsistently")
	}
}

func TestGzipRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte(`{"liked":[1,2,3]}`), 100)
	for _, level := range []GzipLevel{GzipHuffmanOnly, GzipBestSpeed, GzipDefault, GzipBestCompact} {
		gz, err := Compress(data, level)
		if err != nil {
			t.Fatal(err)
		}
		if len(gz) >= len(data) {
			t.Errorf("level %d did not compress repetitive data (%d → %d)", level, len(data), len(gz))
		}
		back, err := Decompress(gz)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("level %d: round trip mismatch", level)
		}
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, err := Decompress([]byte("not gzip")); err == nil {
		t.Error("Decompress accepted garbage")
	}
}

func TestCompressConcurrent(t *testing.T) {
	data := bytes.Repeat([]byte("abc123"), 500)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				gz, err := Compress(data, GzipBestSpeed)
				if err != nil {
					t.Error(err)
					return
				}
				back, err := Decompress(gz)
				if err != nil || !bytes.Equal(back, data) {
					t.Error("concurrent round trip failed")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestProfileCacheHitAndInvalidation(t *testing.T) {
	cache := NewProfileCache()
	anon := core.NewAnonymizer(1)
	p := core.NewProfile(5).WithRating(1, true)

	f1 := cache.Fragment(p, anon)
	f2 := cache.Fragment(p, anon)
	if &f1[0] != &f2[0] {
		t.Error("cache miss on identical version")
	}
	// Version bump invalidates.
	p2 := p.WithRating(2, true)
	f3 := cache.Fragment(p2, anon)
	if bytes.Equal(f1, f3) {
		t.Error("stale fragment served after profile update")
	}
	// Epoch rotation invalidates everything.
	anon.Advance()
	f4 := cache.Fragment(p2, anon)
	if bytes.Equal(f3, f4) {
		t.Error("stale pseudonyms served after epoch rotation")
	}
	if cache.Len() == 0 {
		t.Error("cache empty after use")
	}
}

func TestProfileCacheFragmentMatchesDirectEncoding(t *testing.T) {
	cache := NewProfileCache()
	anon := core.NewAnonymizer(2)
	p := core.NewProfile(5).WithRating(10, true).WithRating(11, false)
	want := AppendProfileMsg(nil, ProfileToMsg(p, anon))
	got := cache.Fragment(p, anon)
	if !bytes.Equal(got, want) {
		t.Fatalf("fragment %s != direct %s", got, want)
	}
}

func TestProfileCacheConcurrent(t *testing.T) {
	cache := NewProfileCache()
	anon := core.NewAnonymizer(3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := core.NewProfile(core.UserID(g)).WithRating(core.ItemID(g), true)
			for i := 0; i < 200; i++ {
				frag := cache.Fragment(p, anon)
				if len(frag) == 0 {
					t.Error("empty fragment")
					return
				}
				if i%50 == 0 {
					p = p.WithRating(core.ItemID(1000+i), true)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMeter(t *testing.T) {
	var m Meter
	m.CountJob(1000, 300)
	m.CountJob(500, 100)
	m.CountResult(50)
	if m.JSONBytes() != 1500 || m.GzipBytes() != 400 || m.ResultBytes() != 50 {
		t.Fatalf("meter: json=%d gzip=%d result=%d", m.JSONBytes(), m.GzipBytes(), m.ResultBytes())
	}
	if m.Messages() != 3 {
		t.Fatalf("messages = %d", m.Messages())
	}
	if m.TotalOnWire() != 450 {
		t.Fatalf("total = %d", m.TotalOnWire())
	}
}

func BenchmarkEncodeJobStdlib(b *testing.B) {
	j := sampleJob(rand.New(rand.NewSource(1)), 120, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeJob(j); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeJobAppend(b *testing.B) {
	j := sampleJob(rand.New(rand.NewSource(1)), 120, 100)
	buf := make([]byte, 0, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendJob(buf[:0], j, nil)
	}
}

func BenchmarkCompressBestSpeed(b *testing.B) {
	j := sampleJob(rand.New(rand.NewSource(1)), 120, 100)
	data := AppendJob(nil, j, nil)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, GzipBestSpeed); err != nil {
			b.Fatal(err)
		}
	}
}
