package wire

import (
	"sort"
	"strconv"
	"sync"

	"hyrec/internal/core"
)

// AppendProfileMsg appends the JSON encoding of m to dst and returns the
// extended slice. The output is byte-identical to encoding/json's Marshal
// of ProfileMsg, so jobs assembled from cached fragments remain parseable
// by any JSON decoder.
func AppendProfileMsg(dst []byte, m ProfileMsg) []byte {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, uint64(m.ID), 10)
	dst = append(dst, `,"liked":`...)
	dst = appendUintArray(dst, m.Liked)
	if len(m.Disliked) > 0 {
		dst = append(dst, `,"disliked":`...)
		dst = appendUintArray(dst, m.Disliked)
	}
	return append(dst, '}')
}

// AppendJob appends the JSON encoding of j to dst, using enc to encode each
// candidate profile (enc may serve cached fragments). It produces the same
// bytes as EncodeJob.
func AppendJob(dst []byte, j *Job, enc func(dst []byte, m ProfileMsg) []byte) []byte {
	if enc == nil {
		enc = AppendProfileMsg
	}
	dst = append(dst, `{"uid":`...)
	dst = strconv.AppendUint(dst, uint64(j.UID), 10)
	dst = append(dst, `,"epoch":`...)
	dst = strconv.AppendUint(dst, j.Epoch, 10)
	dst = append(dst, `,"k":`...)
	dst = strconv.AppendInt(dst, int64(j.K), 10)
	dst = append(dst, `,"r":`...)
	dst = strconv.AppendInt(dst, int64(j.R), 10)
	dst = AppendLeaseMeta(dst, j)
	dst = append(dst, `,"profile":`...)
	dst = enc(dst, j.Profile)
	dst = append(dst, `,"candidates":`...)
	if j.Candidates == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, c := range j.Candidates {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = enc(dst, c)
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

// AppendResult appends the JSON encoding of r to dst, byte-identical to
// encoding/json's Marshal of Result — including the omitempty behaviour
// of the lease field — so pooled-buffer result encoding on the widget and
// client side stays interoperable with any JSON decoder.
// TestResultEncoderEquivalence pins the equivalence.
func AppendResult(dst []byte, r *Result) []byte {
	dst = append(dst, `{"uid":`...)
	dst = strconv.AppendUint(dst, uint64(r.UID), 10)
	dst = append(dst, `,"epoch":`...)
	dst = strconv.AppendUint(dst, r.Epoch, 10)
	if r.Lease != 0 {
		dst = append(dst, `,"lease":`...)
		dst = strconv.AppendUint(dst, r.Lease, 10)
	}
	dst = append(dst, `,"neighbors":`...)
	dst = appendUintArray(dst, r.Neighbors)
	dst = append(dst, `,"recs":`...)
	dst = appendUintArray(dst, r.Recommendations)
	return append(dst, '}')
}

// AppendLeaseMeta appends the job's lease metadata fields (between "r"
// and "profile"), matching encoding/json's omitempty behaviour so the
// scheduler-free format stays byte-identical to the legacy one. It is
// the single source of truth for this fragment: both AppendJob and the
// engine's cached assembly call it, so the two encoders cannot drift.
func AppendLeaseMeta(dst []byte, j *Job) []byte {
	if j.Lease != 0 {
		dst = append(dst, `,"lease":`...)
		dst = strconv.AppendUint(dst, j.Lease, 10)
	}
	if j.LeaseDeadlineMS != 0 {
		dst = append(dst, `,"deadline_ms":`...)
		dst = strconv.AppendInt(dst, j.LeaseDeadlineMS, 10)
	}
	if j.Attempt != 0 {
		dst = append(dst, `,"attempt":`...)
		dst = strconv.AppendInt(dst, int64(j.Attempt), 10)
	}
	return dst
}

func appendUintArray(dst []byte, xs []uint32) []byte {
	if xs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendUint(dst, uint64(x), 10)
	}
	return append(dst, ']')
}

// ProfileCache memoises the JSON fragment of each user's profile, keyed by
// (profile version, anonymiser epoch). The orchestrator assembles
// personalization jobs by concatenating cached fragments, turning per-request
// serialization into memcpy — the "serialized-profile cache" design decision
// benchmarked by BenchmarkAblationProfileCache. Safe for concurrent use.
type ProfileCache struct {
	mu    sync.RWMutex
	epoch uint64
	m     map[core.UserID]cachedFragment
}

type cachedFragment struct {
	version uint64
	data    []byte
	// gz is data's deflate form (self-contained, sync-flushed fragment;
	// see gzipsplice.go), built on the first FragmentGz call and reused
	// until the fragment is invalidated. gzLevel records the level it was
	// compressed at.
	gz      []byte
	gzLevel GzipLevel
}

// NewProfileCache returns an empty cache.
func NewProfileCache() *ProfileCache {
	return &ProfileCache{m: make(map[core.UserID]cachedFragment)}
}

// Fragment returns the JSON fragment for profile p under anon's epoch,
// computing and caching it on miss. The returned slice must not be
// modified. Pass a core.AliasView so the fragment's epoch matches the
// job it is spliced into.
func (c *ProfileCache) Fragment(p core.Profile, anon core.Aliaser) []byte {
	epoch := uint64(0)
	if anon != nil {
		epoch = anon.Epoch()
	}
	c.mu.RLock()
	if c.epoch == epoch {
		if f, ok := c.m[p.User()]; ok && f.version == p.Version() {
			c.mu.RUnlock()
			return f.data
		}
	}
	c.mu.RUnlock()

	data := AppendProfileMsg(nil, ProfileToMsg(p, anon))

	c.mu.Lock()
	if c.epoch != epoch {
		// The anonymiser rotated: every cached pseudonym is stale.
		c.m = make(map[core.UserID]cachedFragment, len(c.m))
		c.epoch = epoch
	}
	c.m[p.User()] = cachedFragment{version: p.Version(), data: data}
	c.mu.Unlock()
	return data
}

// FragmentGz returns both the JSON fragment for profile p and its cached
// deflate form at the given level, for spliced gzip assembly
// (gzipsplice.go). Semantics match Fragment; the deflate leg is built on
// first use and memoised alongside the JSON. Both returned slices must
// not be modified.
func (c *ProfileCache) FragmentGz(p core.Profile, anon core.Aliaser, level GzipLevel) (data, gz []byte, err error) {
	epoch := uint64(0)
	if anon != nil {
		epoch = anon.Epoch()
	}
	c.mu.RLock()
	if c.epoch == epoch {
		if f, ok := c.m[p.User()]; ok && f.version == p.Version() && f.gz != nil && f.gzLevel == level {
			c.mu.RUnlock()
			return f.data, f.gz, nil
		}
	}
	c.mu.RUnlock()

	// Miss (or JSON-only hit): rebuild both legs outside the lock. The
	// JSON is re-encoded rather than fetched back under RLock — cheaper
	// than a second lock round-trip and identical bytes either way.
	data = AppendProfileMsg(nil, ProfileToMsg(p, anon))
	gz, err = AppendDeflateFragment(make([]byte, 0, len(data)/2+16), data, level)
	if err != nil {
		return nil, nil, err
	}

	c.mu.Lock()
	if c.epoch != epoch {
		c.m = make(map[core.UserID]cachedFragment, len(c.m))
		c.epoch = epoch
	}
	c.m[p.User()] = cachedFragment{version: p.Version(), data: data, gz: gz, gzLevel: level}
	c.mu.Unlock()
	return data, gz, nil
}

// Len returns the number of cached fragments (for tests and stats).
func (c *ProfileCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// SortUint32 sorts ids ascending; helper shared by tests and the widget
// when normalising wire arrays.
func SortUint32(ids []uint32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
