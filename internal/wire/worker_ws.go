package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// The WebSocket worker transport (GET /v1/worker/ws) multiplexes the
// whole worker protocol over one persistent connection:
//
//	server → worker   raw Job JSON (byte-identical to the long-poll
//	                  /v1/job?worker=1 body) or an ErrorEnvelope
//	worker → server   WSClientMsg: job credits, results, acks
//
// Jobs are pushed, not polled: the worker grants credits ("want") sized
// to its compute capacity — a browser tab computing one job at a time
// grants 1 and re-grants after each completion — and the server pushes
// one leased job per credit. Both directions are text frames.

// WSWorkerPath is the socket endpoint of the worker transport.
const WSWorkerPath = V1Prefix + "/worker/ws"

// ErrEmptyWSMsg: a worker message carrying neither credits, an ack, nor
// a result.
var ErrEmptyWSMsg = errors.New("wire: worker socket message carries nothing")

// WSClientMsg is one worker→server message on the socket. Exactly the
// set fields are acted on; a message must carry at least one.
type WSClientMsg struct {
	// Want grants the server Want additional job-push credits.
	Want int `json:"want,omitempty"`
	// Ack resolves a lease without a result (done=false abandons it —
	// the polite churn-out, same semantics as POST /v1/ack).
	Ack *AckRequest `json:"ack,omitempty"`
	// Result folds a completed job back in; Result.Lease completes the
	// lease implicitly, same as POST /v1/result.
	Result *Result `json:"result,omitempty"`
}

// EncodeWSClientMsg serializes a worker socket message.
func EncodeWSClientMsg(m *WSClientMsg) ([]byte, error) { return json.Marshal(m) }

// DecodeWSClientMsg parses and validates a worker→server socket message:
// well-formed JSON within MaxBodyBytes, carrying at least one field, with
// non-negative credits and a non-zero ack lease.
func DecodeWSClientMsg(data []byte) (*WSClientMsg, error) {
	if len(data) > MaxBodyBytes {
		return nil, fmt.Errorf("%w: message of %d bytes exceeds %d", ErrTooLarge, len(data), MaxBodyBytes)
	}
	var m WSClientMsg
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("wire: decode worker socket message: %w", err)
	}
	if m.Want < 0 {
		return nil, fmt.Errorf("wire: negative credit grant %d", m.Want)
	}
	if m.Want == 0 && m.Ack == nil && m.Result == nil {
		return nil, ErrEmptyWSMsg
	}
	if m.Ack != nil && m.Ack.Lease == 0 {
		return nil, ErrMissingLease
	}
	return &m, nil
}

// wsErrorPrefix distinguishes the two server→worker frame shapes. Both
// encoders are ours: jobs always open with {"uid": (AppendJob) and
// error envelopes with {"error": (writeJSON/json.Marshal of
// ErrorEnvelope), so a prefix test is exact, not a heuristic.
var wsErrorPrefix = []byte(`{"error"`)

// IsWSError reports whether a server→worker frame is an ErrorEnvelope
// rather than a job payload.
func IsWSError(frame []byte) bool { return bytes.HasPrefix(frame, wsErrorPrefix) }

// DecodeWSError parses a server→worker error frame.
func DecodeWSError(frame []byte) (*ErrorEnvelope, error) {
	var env ErrorEnvelope
	if err := json.Unmarshal(frame, &env); err != nil {
		return nil, fmt.Errorf("wire: decode worker socket error: %w", err)
	}
	return &env, nil
}
