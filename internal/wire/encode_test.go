package wire

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

// This file pins the contract behind the pooled zero-allocation encoders:
// AppendJob, AppendResult and AppendGzip must be byte-identical to the
// encoding/json (respectively bytes.Buffer-based Compress) output across
// a table-driven corpus covering every omitempty edge — lease fields
// present and absent, empty and nil candidate sets, and max-size
// messages — plus property-based random inputs.

// encoderCorpusJobs is the golden corpus of jobs whose appended encoding
// must equal json.Marshal exactly.
func encoderCorpusJobs() map[string]*Job {
	big := &Job{UID: 1<<32 - 1, Epoch: 1<<64 - 1, K: 1 << 30, R: 1 << 30}
	for i := 0; i < 512; i++ {
		liked := make([]uint32, 64)
		for j := range liked {
			liked[j] = uint32(i*64 + j)
		}
		big.Candidates = append(big.Candidates, ProfileMsg{ID: uint32(i), Liked: liked})
	}
	big.Profile = ProfileMsg{ID: 7, Liked: []uint32{1, 2, 3}, Disliked: []uint32{9}}
	big.Lease, big.LeaseDeadlineMS, big.Attempt = 1<<64-1, 1<<62, 255

	return map[string]*Job{
		"zero value": {},
		"no lease, nil candidates": {
			UID: 42, Epoch: 3, K: 10, R: 10,
			Profile: ProfileMsg{ID: 42, Liked: []uint32{5}},
		},
		"no lease, empty candidates": {
			UID: 42, Epoch: 3, K: 10, R: 10,
			Profile:    ProfileMsg{ID: 42, Liked: []uint32{}},
			Candidates: []ProfileMsg{},
		},
		"lease present": {
			UID: 1, Epoch: 1, K: 5, R: 5,
			Lease: 77, LeaseDeadlineMS: 123456789, Attempt: 2,
			Profile:    ProfileMsg{ID: 1, Liked: []uint32{1}},
			Candidates: []ProfileMsg{{ID: 2, Liked: []uint32{1, 2}, Disliked: []uint32{3}}},
		},
		"partial lease (only id)": {
			UID: 1, Epoch: 1, K: 5, R: 5, Lease: 9,
			Profile: ProfileMsg{ID: 1, Liked: nil},
		},
		"partial lease (only attempt)": {
			UID: 1, Epoch: 1, K: 5, R: 5, Attempt: 3,
			Profile: ProfileMsg{ID: 1, Liked: []uint32{}},
		},
		"candidate with nil liked": {
			UID: 2, Epoch: 0, K: 1, R: 1,
			Profile:    ProfileMsg{ID: 2, Liked: []uint32{4}},
			Candidates: []ProfileMsg{{ID: 3}},
		},
		"max-size": big,
	}
}

func TestJobEncoderGoldenCorpus(t *testing.T) {
	for name, j := range encoderCorpusJobs() {
		want, err := json.Marshal(j)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := AppendJob(nil, j, nil); !bytes.Equal(got, want) {
			t.Errorf("%s:\n got %.200s\nwant %.200s", name, got, want)
		}
		// Appending into a pooled, dirty buffer must not change the bytes.
		buf := GetBuf()
		*buf = append(*buf, "garbage-prefix"...)
		*buf = AppendJob(*buf, j, nil)
		if !bytes.Equal((*buf)[len("garbage-prefix"):], want) {
			t.Errorf("%s: pooled-buffer append differs", name)
		}
		PutBuf(buf)
	}
}

// encoderCorpusResults is the golden corpus of results.
func encoderCorpusResults() map[string]*Result {
	maxN := make([]uint32, 4096)
	for i := range maxN {
		maxN[i] = uint32(i * 3)
	}
	return map[string]*Result{
		"zero value":      {},
		"no lease":        {UID: 7, Epoch: 2, Neighbors: []uint32{1, 2}, Recommendations: []uint32{9}},
		"lease present":   {UID: 7, Epoch: 2, Lease: 77, Neighbors: []uint32{1}, Recommendations: []uint32{}},
		"nil sets":        {UID: 1, Epoch: 1, Neighbors: nil, Recommendations: nil},
		"empty sets":      {UID: 1, Epoch: 1, Neighbors: []uint32{}, Recommendations: []uint32{}},
		"max-size batch":  {UID: 1<<32 - 1, Epoch: 1<<64 - 1, Lease: 1<<64 - 1, Neighbors: maxN, Recommendations: maxN},
		"recs only":       {UID: 3, Epoch: 0, Recommendations: []uint32{5, 6, 7}},
		"neighbors only":  {UID: 3, Epoch: 9, Neighbors: []uint32{5}},
		"boundary values": {UID: 0, Epoch: 0, Lease: 1, Neighbors: []uint32{0, 1<<32 - 1}},
	}
}

func TestResultEncoderGoldenCorpus(t *testing.T) {
	for name, r := range encoderCorpusResults() {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := AppendResult(nil, r); !bytes.Equal(got, want) {
			t.Errorf("%s:\n got %.200s\nwant %.200s", name, got, want)
		}
		// Round trip through the production decoder.
		back, err := DecodeResult(AppendResult(nil, r))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		redone, err := json.Marshal(back)
		if err != nil || !bytes.Equal(redone, want) {
			t.Errorf("%s: decode(encode) not idempotent: %s vs %s", name, redone, want)
		}
	}
}

// TestResultEncoderEquivalenceProperty: arbitrary results encode
// identically through both encoders.
func TestResultEncoderEquivalenceProperty(t *testing.T) {
	prop := func(uid uint32, epoch, lease uint64, neighbors, recs []uint32) bool {
		r := &Result{UID: uid, Epoch: epoch, Lease: lease, Neighbors: neighbors, Recommendations: recs}
		want, err := json.Marshal(r)
		if err != nil {
			return false
		}
		return bytes.Equal(AppendResult(nil, r), want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendGzipMatchesCompress: the pooled append-compressor produces
// the same bytes as the buffer-based one at every level, including when
// appending after an existing prefix.
func TestAppendGzipMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, level := range []GzipLevel{GzipHuffmanOnly, GzipBestSpeed, GzipDefault, GzipBestCompact} {
		for _, n := range []int{0, 1, 100, 64 << 10} {
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(rng.Intn(16)) // compressible
			}
			want, err := Compress(data, level)
			if err != nil {
				t.Fatal(err)
			}
			got, err := AppendGzip(nil, data, level)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("level %d n %d: AppendGzip differs from Compress", level, n)
			}
			prefixed, err := AppendGzip([]byte("prefix"), data, level)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(prefixed, append([]byte("prefix"), want...)) {
				t.Fatalf("level %d n %d: prefixed AppendGzip corrupted", level, n)
			}
			back, err := Decompress(got)
			if err != nil || !bytes.Equal(back, data) {
				t.Fatalf("level %d n %d: round trip failed: %v", level, n, err)
			}
		}
	}
}

// TestAppendEncodersAllocateNothing pins the "pooled encoders allocate
// ~zero" claim at the wire layer: with a warm pool and a pre-grown
// buffer, encoding a job or result performs zero heap allocations.
func TestAppendEncodersAllocateNothing(t *testing.T) {
	j := sampleJob(rand.New(rand.NewSource(5)), 30, 20)
	r := &Result{UID: 9, Epoch: 4, Lease: 2, Neighbors: []uint32{1, 2, 3}, Recommendations: []uint32{4, 5}}
	buf := make([]byte, 0, 1<<20)

	if allocs := testing.AllocsPerRun(100, func() {
		buf = AppendJob(buf[:0], j, nil)
		buf = AppendResult(buf[:0], r)
	}); allocs > 0 {
		t.Fatalf("append encoders allocate %.1f/op, want 0", allocs)
	}

	gz := make([]byte, 0, 1<<20)
	data := AppendJob(nil, j, nil)
	if allocs := testing.AllocsPerRun(100, func() {
		out, err := AppendGzip(gz[:0], data, GzipBestSpeed)
		if err != nil {
			t.Fatal(err)
		}
		gz = out
	}); allocs > 0 {
		t.Fatalf("AppendGzip allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkAppendResult(b *testing.B) {
	r := &Result{UID: 9, Epoch: 4, Lease: 2, Neighbors: make([]uint32, 10), Recommendations: make([]uint32, 10)}
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendResult(buf[:0], r)
	}
}

func BenchmarkEncodeResultStdlib(b *testing.B) {
	r := &Result{UID: 9, Epoch: 4, Lease: 2, Neighbors: make([]uint32, 10), Recommendations: make([]uint32, 10)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeResult(r); err != nil {
			b.Fatal(err)
		}
	}
}
