// Package topk provides a bounded top-k collector used by the KNN-selection
// and item-recommendation kernels (Algorithms 1 and 2 of the HyRec paper).
//
// The collector keeps the k entries with the highest scores out of an
// arbitrary stream, in O(log k) per offer and O(k) memory. Ties are broken
// deterministically by preferring the smaller ID, so that replays and tests
// are reproducible regardless of offer order.
package topk

import (
	"slices"
	"sort"
)

// Entry is a scored identifier. ID is wide enough for both user and item
// identifiers used throughout the module.
type Entry struct {
	ID    uint32
	Score float64
}

// better reports whether a should be ranked strictly ahead of b.
// Higher scores win; equal scores prefer the smaller ID.
func better(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// Collector accumulates the k best entries from a stream of offers.
// The zero value is unusable; construct with New.
type Collector struct {
	k int
	// h is a binary min-heap ordered by "worst first": h[0] is the entry
	// that the next better offer would evict.
	h []Entry
}

// New returns a Collector that retains the k highest-scoring entries.
// k must be positive.
func New(k int) *Collector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Collector{k: k, h: make([]Entry, 0, k)}
}

// K returns the configured capacity of the collector.
func (c *Collector) K() int { return c.k }

// Len returns the number of entries currently retained.
func (c *Collector) Len() int { return len(c.h) }

// Offer considers a new entry. It is kept if fewer than k entries have been
// seen or if it beats the current worst retained entry.
func (c *Collector) Offer(id uint32, score float64) {
	e := Entry{ID: id, Score: score}
	if len(c.h) < c.k {
		c.h = append(c.h, e)
		c.up(len(c.h) - 1)
		return
	}
	if better(e, c.h[0]) {
		c.h[0] = e
		c.down(0)
	}
}

// Threshold returns the score an offer must strictly beat (up to tie-break)
// to be retained, and false if the collector is not yet full.
func (c *Collector) Threshold() (float64, bool) {
	if len(c.h) < c.k {
		return 0, false
	}
	return c.h[0].Score, true
}

// Sorted returns the retained entries ordered best-first (descending score,
// ascending ID on ties). The collector remains valid and unchanged.
func (c *Collector) Sorted() []Entry {
	out := make([]Entry, len(c.h))
	copy(out, c.h)
	sort.Slice(out, func(i, j int) bool { return better(out[i], out[j]) })
	return out
}

// PopWorst removes and returns the worst retained entry. It panics on an
// empty collector (check Len first). Draining a collector with repeated
// PopWorst yields entries in exact worst-to-best order — the reverse of
// Sorted — without allocating.
func (c *Collector) PopWorst() Entry {
	e := c.h[0]
	n := len(c.h) - 1
	c.h[0] = c.h[n]
	c.h = c.h[:n]
	if n > 0 {
		c.down(0)
	}
	return e
}

// DrainSorted empties the collector, appending its entries to dst
// best-first (the exact order Sorted returns), and returns the extended
// slice. Unlike Sorted it destroys the collector's contents and allocates
// only if dst must grow — the zero-allocation path for pooled collectors.
func (c *Collector) DrainSorted(dst []Entry) []Entry {
	base := len(dst)
	n := len(c.h)
	dst = slices.Grow(dst, n)[:base+n]
	for i := n - 1; i >= 0; i-- {
		dst[base+i] = c.PopWorst()
	}
	return dst
}

// Reset empties the collector, retaining its capacity.
func (c *Collector) Reset() { c.h = c.h[:0] }

// ResetK empties the collector and re-arms it with capacity k, reusing the
// backing array when it is large enough. This lets one pooled Collector
// serve requests with differing k without reallocating.
func (c *Collector) ResetK(k int) {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	c.k = k
	if cap(c.h) < k {
		c.h = make([]Entry, 0, k)
	} else {
		c.h = c.h[:0]
	}
}

// worse is the heap ordering: the root must be the entry that loses to all
// others, i.e. the minimum under "better".
func (c *Collector) worse(i, j int) bool { return better(c.h[j], c.h[i]) }

func (c *Collector) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.worse(i, parent) {
			break
		}
		c.h[i], c.h[parent] = c.h[parent], c.h[i]
		i = parent
	}
}

func (c *Collector) down(i int) {
	n := len(c.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.worse(l, smallest) {
			smallest = l
		}
		if r < n && c.worse(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		c.h[i], c.h[smallest] = c.h[smallest], c.h[i]
		i = smallest
	}
}
