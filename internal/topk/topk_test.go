package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnNonPositiveK(t *testing.T) {
	for _, k := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", k)
				}
			}()
			New(k)
		}()
	}
}

func TestOfferFewerThanK(t *testing.T) {
	c := New(5)
	c.Offer(1, 0.5)
	c.Offer(2, 0.9)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	got := c.Sorted()
	if got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("Sorted = %v, want [2 1] order", got)
	}
}

func TestEviction(t *testing.T) {
	c := New(2)
	c.Offer(1, 1.0)
	c.Offer(2, 2.0)
	c.Offer(3, 3.0)
	got := c.Sorted()
	if len(got) != 2 || got[0].ID != 3 || got[1].ID != 2 {
		t.Fatalf("Sorted = %v, want IDs [3 2]", got)
	}
}

func TestTieBreakPrefersSmallerID(t *testing.T) {
	c := New(2)
	c.Offer(9, 1.0)
	c.Offer(3, 1.0)
	c.Offer(7, 1.0)
	got := c.Sorted()
	if got[0].ID != 3 || got[1].ID != 7 {
		t.Fatalf("Sorted = %v, want IDs [3 7]", got)
	}
}

func TestTieBreakOrderIndependence(t *testing.T) {
	// The same multiset of offers must yield the same selection in any
	// order — determinism the replay harness depends on.
	offers := []Entry{{1, 0.5}, {2, 0.5}, {3, 0.5}, {4, 0.7}, {5, 0.2}, {6, 0.7}}
	want := run(offers, 3)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		shuffled := make([]Entry, len(offers))
		copy(shuffled, offers)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := run(shuffled, 3); !equalEntries(got, want) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestThreshold(t *testing.T) {
	c := New(2)
	if _, ok := c.Threshold(); ok {
		t.Fatal("Threshold reported full on empty collector")
	}
	c.Offer(1, 5)
	if _, ok := c.Threshold(); ok {
		t.Fatal("Threshold reported full at 1 of 2")
	}
	c.Offer(2, 7)
	th, ok := c.Threshold()
	if !ok || th != 5 {
		t.Fatalf("Threshold = %v,%v; want 5,true", th, ok)
	}
}

func TestReset(t *testing.T) {
	c := New(3)
	c.Offer(1, 1)
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", c.Len())
	}
	c.Offer(2, 2)
	if got := c.Sorted(); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("Sorted after Reset = %v", got)
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	c := New(3)
	for i := uint32(0); i < 10; i++ {
		c.Offer(i, float64(i))
	}
	first := c.Sorted()
	second := c.Sorted()
	if !equalEntries(first, second) {
		t.Fatalf("repeated Sorted calls differ: %v vs %v", first, second)
	}
}

// TestMatchesFullSortProperty: the collector must agree with sorting the
// entire stream and taking the prefix, for random streams.
func TestMatchesFullSortProperty(t *testing.T) {
	prop := func(scores []float64, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		offers := make([]Entry, len(scores))
		for i, s := range scores {
			offers[i] = Entry{ID: uint32(i), Score: s}
		}
		got := run(offers, k)
		want := reference(offers, k)
		return equalEntries(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateIDsAllowed(t *testing.T) {
	// The collector does not deduplicate; callers ensure unique IDs.
	// Verify the behaviour is still deterministic.
	c := New(2)
	c.Offer(5, 1.0)
	c.Offer(5, 2.0)
	c.Offer(5, 3.0)
	got := c.Sorted()
	if len(got) != 2 || got[0].Score != 3.0 || got[1].Score != 2.0 {
		t.Fatalf("Sorted = %v", got)
	}
}

func run(offers []Entry, k int) []Entry {
	c := New(k)
	for _, e := range offers {
		c.Offer(e.ID, e.Score)
	}
	return c.Sorted()
}

func reference(offers []Entry, k int) []Entry {
	all := make([]Entry, len(offers))
	copy(all, offers)
	sort.Slice(all, func(i, j int) bool { return better(all[i], all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func equalEntries(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkOffer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 4096)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	c := New(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Offer(uint32(i), scores[i%len(scores)])
	}
}
