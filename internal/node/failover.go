package node

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"

	"hyrec/internal/wire"
)

// heartbeats is the liveness and failover loop. Every HeartbeatEvery it
// probes each other member's /healthz; DeadAfter consecutive misses
// declare a member dead. When the observed alive set disagrees with the
// node map in force, the coordinator — the alive member with the lowest
// ID, a total order every survivor computes identically — builds the
// next map (epoch+1) over the alive set, applies it locally (promoting
// its own mirrors) and pushes it to every alive peer, whose applyMap
// promotes theirs. A recovered member re-enters the alive set the same
// way and gets its partitions back through the demotion/handoff path.
type heartbeats struct {
	n  *Node
	hc *http.Client

	mu      sync.Mutex
	misses  map[string]int // member ID → consecutive missed probes
	probing bool
}

func newHeartbeats(n *Node) *heartbeats {
	return &heartbeats{
		n:      n,
		hc:     &http.Client{Timeout: n.cfg.PeerTimeout},
		misses: map[string]int{},
	}
}

func (h *heartbeats) loop(wg *sync.WaitGroup, stop <-chan struct{}) {
	defer wg.Done()
	t := time.NewTicker(h.n.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			h.Tick()
		}
	}
}

// Tick runs one probe round and reconciles the map. Exported on the
// struct (tests drive it directly with HeartbeatEvery disabled).
func (h *heartbeats) Tick() {
	h.mu.Lock()
	if h.probing { // previous round still timing out against a dead peer
		h.mu.Unlock()
		return
	}
	h.probing = true
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		h.probing = false
		h.mu.Unlock()
	}()

	n := h.n
	type probe struct {
		id string
		ok bool
	}
	results := make(chan probe, len(n.members))
	probed := 0
	for _, m := range n.members {
		if m.ID == n.self.ID {
			continue
		}
		probed++
		go func(m Member) {
			results <- probe{id: m.ID, ok: h.alive(m.Addr)}
		}(m)
	}
	h.mu.Lock()
	for i := 0; i < probed; i++ {
		r := <-results
		if r.ok {
			h.misses[r.id] = 0
		} else {
			h.misses[r.id]++
		}
	}
	alive := make([]Member, 0, len(n.members))
	for _, m := range n.members {
		if m.ID == n.self.ID || h.misses[m.ID] < n.cfg.DeadAfter {
			alive = append(alive, m)
		}
	}
	h.mu.Unlock()

	h.reconcile(alive)
}

func (h *heartbeats) alive(addr string) bool {
	req, err := http.NewRequest(http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := h.hc.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// reconcile publishes a new node map when the alive set drifted from the
// map in force and this node is the coordinator for that alive set.
func (h *heartbeats) reconcile(alive []Member) {
	n := h.n
	cur := n.nm.Load()
	if membersMatch(cur, alive) {
		return
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].ID < alive[j].ID })
	if len(alive) == 0 || alive[0].ID != n.self.ID {
		return // another survivor coordinates
	}
	m := BuildMap(alive, n.cfg.Partitions, cur.Epoch+1)
	n.applyMap(m)
	h.push(m, alive)
}

// push distributes m to every alive peer. Best-effort: a peer that
// misses the push converges on the next reconcile round or rejects
// stray traffic with not_primary until it does.
func (h *heartbeats) push(m *wire.NodeMap, alive []Member) {
	n := h.n
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PeerTimeout)
	defer cancel()
	for _, mb := range alive {
		if mb.ID == n.self.ID {
			continue
		}
		_ = n.peer(mb.Addr).PushNodeMap(ctx, m)
	}
}

// membersMatch reports whether the map's node set equals the alive set.
func membersMatch(m *wire.NodeMap, alive []Member) bool {
	if len(m.Nodes) != len(alive) {
		return false
	}
	ids := make(map[string]bool, len(m.Nodes))
	for _, nd := range m.Nodes {
		ids[nd.ID] = true
	}
	for _, mb := range alive {
		if !ids[mb.ID] {
			return false
		}
	}
	return true
}
