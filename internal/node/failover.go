package node

import (
	"context"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"hyrec/internal/server"
	"hyrec/internal/wire"
)

// heartbeats is the liveness and failover loop. Every HeartbeatEvery it
// probes each other member's /healthz; DeadAfter consecutive misses
// declare a member dead. When the observed alive set disagrees with the
// node map in force, the coordinator — the alive member with the lowest
// ID, a total order every survivor computes identically — builds the
// next map (epoch+1) over the alive set, applies it locally (promoting
// its own mirrors) and pushes it to every alive peer, whose applyMap
// promotes theirs. Publishing requires a majority of the *static*
// membership alive, so a minority island can never fence off its own
// conflicting map (see reconcile).
//
// The probe doubles as an epoch exchange: /healthz answers carry the
// peer's map epoch (server.NodeEpochHeader), and every round repairs
// any disagreement — peers on a lower epoch get this node's map
// re-pushed, a peer on a higher epoch is pulled from. That loop, not
// the one-shot publish push, is what guarantees convergence: a node
// that missed the publish (timeout, restart) is caught on the next
// round, and a killed-and-restarted member — which boots on the
// epoch-1 map over the full static membership and would otherwise see
// nothing wrong once all peers answer — learns the cluster's current
// epoch and reconciles from there. A recovered member re-enters the
// alive set the same way and gets its partitions back through the
// demotion/handoff path.
type heartbeats struct {
	n  *Node
	hc *http.Client

	mu      sync.Mutex
	misses  map[string]int // member ID → consecutive missed probes
	probing bool
}

func newHeartbeats(n *Node) *heartbeats {
	// The probe fans out to every member concurrently each round; the
	// default transport keeps only 2 idle connections per host, so a
	// larger cluster would redial most peers every HeartbeatEvery. Size
	// the idle pool to the membership instead.
	return &heartbeats{
		n: n,
		hc: &http.Client{
			Timeout: n.cfg.PeerTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        len(n.cfg.Members) + 2,
				MaxIdleConnsPerHost: 2,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		misses: map[string]int{},
	}
}

func (h *heartbeats) loop(wg *sync.WaitGroup, stop <-chan struct{}) {
	defer wg.Done()
	t := time.NewTicker(h.n.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			h.Tick()
		}
	}
}

// probe is one /healthz answer: liveness plus the peer's advertised
// map epoch (0 when the header was absent — a non-node service).
type probe struct {
	id    string
	addr  string
	ok    bool
	epoch uint64
}

// Tick runs one probe round, repairs epoch drift, and reconciles the
// map. Exported on the struct (tests drive it directly with
// HeartbeatEvery disabled).
func (h *heartbeats) Tick() {
	h.mu.Lock()
	if h.probing { // previous round still timing out against a dead peer
		h.mu.Unlock()
		return
	}
	h.probing = true
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		h.probing = false
		h.mu.Unlock()
	}()

	n := h.n
	results := make(chan probe, len(n.members))
	probed := 0
	for _, m := range n.members {
		if m.ID == n.self.ID {
			continue
		}
		probed++
		go func(m Member) {
			ok, epoch := h.alive(m.Addr)
			results <- probe{id: m.ID, addr: m.Addr, ok: ok, epoch: epoch}
		}(m)
	}
	peers := make([]probe, 0, probed)
	h.mu.Lock()
	for i := 0; i < probed; i++ {
		r := <-results
		if r.ok {
			h.misses[r.id] = 0
			peers = append(peers, r)
		} else {
			h.misses[r.id]++
		}
	}
	alive := make([]Member, 0, len(n.members))
	for _, m := range n.members {
		if m.ID == n.self.ID || h.misses[m.ID] < n.cfg.DeadAfter {
			alive = append(alive, m)
		}
	}
	h.mu.Unlock()

	h.repair(peers)
	h.reconcile(alive)
}

// alive probes addr's /healthz, returning liveness and the node-map
// epoch the peer advertises (0 when unknown).
func (h *heartbeats) alive(addr string) (bool, uint64) {
	req, err := http.NewRequest(http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return false, 0
	}
	resp, err := h.hc.Do(req)
	if err != nil {
		return false, 0
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, 0
	}
	epoch, _ := strconv.ParseUint(resp.Header.Get(server.NodeEpochHeader), 10, 64)
	return true, epoch
}

// repair closes epoch drift observed on this round's probes: any
// responding peer on a lower epoch gets this node's map re-pushed
// (applyMap on the receiver gates by epoch, so re-delivery is
// idempotent), and if any peer advertises a higher epoch the newest map
// is pulled from it and adopted. Every member runs this every round, so
// a missed publish push or a restarted node converges within one
// heartbeat period instead of routing by a stale map indefinitely.
func (h *heartbeats) repair(peers []probe) {
	n := h.n
	cur := n.nm.Load()
	var newest *probe
	for i := range peers {
		p := &peers[i]
		if p.epoch == 0 {
			continue
		}
		if p.epoch < cur.Epoch {
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PeerTimeout)
			_ = n.peer(p.addr).PushNodeMap(ctx, cur)
			cancel()
		}
		if p.epoch > cur.Epoch && (newest == nil || p.epoch > newest.epoch) {
			newest = p
		}
	}
	if newest == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PeerTimeout)
	defer cancel()
	t, err := n.peer(newest.addr).Topology(ctx)
	if err != nil || t.NodeEpoch <= cur.Epoch || t.Partitions != n.cfg.Partitions {
		return
	}
	n.applyMap(&wire.NodeMap{
		Epoch:       t.NodeEpoch,
		Partitions:  t.Partitions,
		Nodes:       t.Nodes,
		Coordinator: t.NodeCoordinator,
	})
}

// reconcile publishes a new node map when the alive set (or the
// assignment it implies) drifted from the map in force and this node is
// the coordinator for that alive set. Publishing requires seeing a
// strict majority of the static membership alive: under a symmetric
// partition both sides observe the other half dead, and without the
// quorum gate both lowest-ID survivors would publish conflicting maps
// at the same epoch and fork history. The minority side instead keeps
// the old map and serves what it can until the partition heals (so a
// 2-node deployment gets replication but no automatic failover — one
// survivor is not a majority of two).
func (h *heartbeats) reconcile(alive []Member) {
	n := h.n
	cur := n.nm.Load()
	if mapMatches(cur, alive, n.cfg.Partitions) {
		return
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].ID < alive[j].ID })
	if len(alive) == 0 || alive[0].ID != n.self.ID {
		return // another survivor coordinates
	}
	if len(alive) <= len(n.members)/2 {
		return // no quorum: never publish from a minority island
	}
	m := BuildMap(alive, n.cfg.Partitions, cur.Epoch+1)
	m.Coordinator = n.self.ID
	n.applyMap(m)
	h.push(m, alive)
}

// push distributes m to every alive peer, each under its own timeout so
// one slow peer cannot starve the rest of the round. Best-effort: a
// peer that misses the push is caught by the per-round epoch repair
// (repair), and rejects stray traffic with not_primary until then.
func (h *heartbeats) push(m *wire.NodeMap, alive []Member) {
	n := h.n
	for _, mb := range alive {
		if mb.ID == n.self.ID {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PeerTimeout)
		_ = n.peer(mb.Addr).PushNodeMap(ctx, m)
		cancel()
	}
}

// mapMatches reports whether the map in force already is what this node
// would publish over the alive set: same member set *and* the same
// partition assignment BuildMap derives from it. Comparing assignments,
// not just member IDs, means a map that somehow diverged from the
// deterministic placement (a buggy or malicious push) is repaired
// rather than trusted forever.
func mapMatches(m *wire.NodeMap, alive []Member, partitions int) bool {
	if len(m.Nodes) != len(alive) {
		return false
	}
	ids := make(map[string]bool, len(m.Nodes))
	for _, nd := range m.Nodes {
		ids[nd.ID] = true
	}
	for _, mb := range alive {
		if !ids[mb.ID] {
			return false
		}
	}
	want := BuildMap(alive, partitions, m.Epoch)
	for p := 0; p < partitions; p++ {
		if primaryIn(m, p) != primaryIn(want, p) {
			return false
		}
		gotR, wantR := m.Replica(p), want.Replica(p)
		gotID, wantID := "", ""
		if gotR != nil {
			gotID = gotR.ID
		}
		if wantR != nil {
			wantID = wantR.ID
		}
		if gotID != wantID {
			return false
		}
	}
	return true
}
