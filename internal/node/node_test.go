package node

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hyrec"
	"hyrec/client"
	"hyrec/internal/cluster"
	"hyrec/internal/core"
	"hyrec/internal/server"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

var tctx = context.Background()

func testEngineConfig() server.Config {
	cfg := server.DefaultConfig()
	cfg.Seed = 42
	cfg.K = 3
	cfg.R = 5
	return cfg
}

// soloNode builds a 1-member deployment with background loops off.
func soloNode(t *testing.T, cfg server.Config, partitions int) *Node {
	t.Helper()
	self := Member{ID: "n1", Addr: "http://127.0.0.1:1"}
	nd, err := New(Config{
		Self:           self,
		Members:        []Member{self},
		Partitions:     partitions,
		Engine:         cfg,
		HeartbeatEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Close() })
	return nd
}

// TestSingleNodeEquivalence pins the deployment floor, same discipline
// as cluster.TestOnePartitionRingEquivalence: a 1-node deployment
// serves byte-identical job payloads — and identical recommendations —
// to the in-process Cluster it embeds, under the same seed and
// workload. Multi-node is purely additive.
func TestSingleNodeEquivalence(t *testing.T) {
	cfg := testEngineConfig()
	const parts = 4
	clus := cluster.New(cfg, parts)
	defer clus.Close()
	nd := soloNode(t, cfg, parts)
	wc, wn := widget.New(), widget.New()

	const users = 30
	for round := 0; round < 3; round++ {
		for u := core.UserID(1); u <= users; u++ {
			item := core.ItemID(uint32(u)*11 + uint32(round))
			if err := clus.Rate(tctx, u, item, true); err != nil {
				t.Fatal(err)
			}
			if err := nd.Rate(tctx, u, item, true); err != nil {
				t.Fatal(err)
			}

			cjson, cgz, err := clus.JobPayload(u)
			if err != nil {
				t.Fatalf("cluster JobPayload(%d): %v", u, err)
			}
			njson, ngz, err := nd.AppendJobPayload(tctx, u, nil, nil)
			if err != nil {
				t.Fatalf("node AppendJobPayload(%d): %v", u, err)
			}
			if !bytes.Equal(cjson, njson) || !bytes.Equal(cgz, ngz) {
				t.Fatalf("round %d user %d: payload bytes diverged:\ncluster %s\nnode    %s",
					round, u, cjson, njson)
			}

			cjob, err := clus.Job(tctx, u)
			if err != nil {
				t.Fatal(err)
			}
			cres, _ := wc.Execute(cjob)
			crecs, err := clus.ApplyResult(tctx, cres)
			if err != nil {
				t.Fatal(err)
			}
			njob, err := nd.Job(tctx, u)
			if err != nil {
				t.Fatal(err)
			}
			nres, _ := wn.Execute(njob)
			nrecs, err := nd.ApplyResult(tctx, nres)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(crecs) != fmt.Sprint(nrecs) {
				t.Fatalf("round %d user %d: recommendations diverged: %v vs %v", round, u, crecs, nrecs)
			}
		}
	}
}

// mirrorNode builds a node that accepts replication for every partition
// (in a 2-member map it is primary or replica of each) without any live
// peer.
func mirrorNode(t *testing.T, cfg server.Config, partitions int) *Node {
	t.Helper()
	mems := []Member{
		{ID: "a", Addr: "http://127.0.0.1:1"},
		{ID: "b", Addr: "http://127.0.0.1:2"},
	}
	nd, err := New(Config{
		Self:           mems[1],
		Members:        mems,
		Partitions:     partitions,
		Engine:         cfg,
		HeartbeatEvery: -1,
		ReplicateEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Kill() })
	return nd
}

// TestReplicationIdempotent is the property test for the replication
// stream: delivering the same batch sequence twice, or in a shuffled
// order with duplicates, converges a mirror to the same state as
// exactly-once in-order delivery. Partitions the receiving node mirrors
// take the snapshot-with-recency-gate path and must converge on full
// state (profile, KNN row, recommendations); partitions it owns take
// the destination-wins merge (the handoff-tail discipline) and must
// converge on the authoritative opinion sets.
func TestReplicationIdempotent(t *testing.T) {
	cfg := testEngineConfig()
	const parts = 4
	const users = 24
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(7 + trial)))
		src := cluster.New(cfg, parts)
		w := widget.New()

		// Build the batch log: three waves of ratings, a widget cycle to
		// populate KNN rows and recommendation caches, and a full export
		// after each wave — so later batches carry strictly newer
		// snapshots of the same users.
		var batches []*wireBatch
		seq := uint64(0)
		for wave := 0; wave < 3; wave++ {
			for u := core.UserID(1); u <= users; u++ {
				for j := 0; j < 2; j++ {
					item := core.ItemID(uint32(wave)*100_000 + uint32(u)*100 + uint32(j) + 1)
					if err := src.Rate(tctx, u, item, rng.Intn(2) == 0); err != nil {
						t.Fatal(err)
					}
				}
				job, err := src.Job(tctx, u)
				if err != nil {
					t.Fatal(err)
				}
				res, _ := w.Execute(job)
				if _, err := src.ApplyResult(tctx, res); err != nil {
					t.Fatal(err)
				}
			}
			for p := 0; p < parts; p++ {
				e := src.Engine(p)
				states := e.ExportUsers(e.Profiles().Users())
				if len(states) == 0 {
					continue
				}
				seq++
				b := &wireBatch{partition: p, seq: seq}
				for _, st := range states {
					b.users = append(b.users, replUserFromState(st))
				}
				batches = append(batches, b)
			}
		}

		inOrder := mirrorNode(t, cfg, parts)
		chaotic := mirrorNode(t, cfg, parts)
		for _, b := range batches {
			deliver(t, inOrder, b)
		}
		// Shuffle and deliver everything twice.
		twice := append(append([]*wireBatch(nil), batches...), batches...)
		rng.Shuffle(len(twice), func(i, j int) { twice[i], twice[j] = twice[j], twice[i] })
		for _, b := range twice {
			deliver(t, chaotic, b)
		}

		_, mirrored := roles(inOrder.Map(), inOrder.Self().ID)
		for p := 0; p < parts; p++ {
			for _, u := range src.Engine(p).Profiles().Users() {
				if mirrored[p] {
					// Mirror discipline: the full snapshot converges.
					a := stateString(inOrder.Cluster().Engine(p), u)
					c := stateString(chaotic.Cluster().Engine(p), u)
					want := stateString(src.Engine(p), u)
					if a != c || a != want {
						t.Fatalf("trial %d user %d (mirror p%d): delivery orders diverged:\nin-order %s\nchaotic  %s\nsource   %s",
							trial, u, p, a, c, want)
					}
					continue
				}
				// Handoff-merge discipline: opinion sets converge.
				a := profileString(inOrder.Cluster().Engine(p), u)
				c := profileString(chaotic.Cluster().Engine(p), u)
				want := profileString(src.Engine(p), u)
				if a != c || a != want {
					t.Fatalf("trial %d user %d (owned p%d): profiles diverged:\nin-order %s\nchaotic  %s\nsource   %s",
						trial, u, p, a, c, want)
				}
			}
		}
		src.Close()
	}
}

// TestReplicationReRateConverges pins the recency gate against the case
// the union merge cannot handle: a user flips an opinion (dislike →
// like), so later snapshots contradict earlier ones. On a mirrored
// partition the newest snapshot must win in every delivery order.
func TestReplicationReRateConverges(t *testing.T) {
	cfg := testEngineConfig()
	const parts = 4
	probe := mirrorNode(t, cfg, parts)
	_, mirrored := roles(probe.Map(), probe.Self().ID)
	var u core.UserID
	for cand := core.UserID(1); ; cand++ {
		if mirrored[probe.Cluster().Partition(cand)] {
			u = cand
			break
		}
	}
	p := probe.Cluster().Partition(u)
	v1 := &wireBatch{partition: p, seq: 1, users: []wire.ReplUser{{UID: uint32(u), Disliked: []uint32{9}}}}
	v2 := &wireBatch{partition: p, seq: 2, users: []wire.ReplUser{{UID: uint32(u), Liked: []uint32{9}}}}

	orders := [][]*wireBatch{
		{v1, v2},
		{v2, v1},
		{v2, v1, v2, v1, v1},
	}
	for i, order := range orders {
		nd := mirrorNode(t, cfg, parts)
		for _, b := range order {
			deliver(t, nd, b)
		}
		prof := nd.Cluster().Engine(p).Profiles().Get(u)
		if fmt.Sprint(prof.Liked()) != fmt.Sprint([]core.ItemID{9}) || len(prof.Disliked()) != 0 {
			t.Fatalf("order %d: final profile liked=%v disliked=%v, want the seq-2 snapshot (liked=[9])",
				i, prof.Liked(), prof.Disliked())
		}
	}
}

type wireBatch struct {
	partition int
	seq       uint64
	users     []wire.ReplUser
}

func (b *wireBatch) toWire() *wire.ReplBatch {
	return &wire.ReplBatch{Epoch: 1, Partition: b.partition, Seq: b.seq, Full: true, Users: b.users}
}

func deliver(t *testing.T, nd *Node, b *wireBatch) {
	t.Helper()
	ack, err := nd.Replicate(tctx, b.toWire())
	if err != nil {
		t.Fatalf("Replicate(p=%d seq=%d): %v", b.partition, b.seq, err)
	}
	// Stale/duplicate records are dropped at the recency gate, so the
	// only invariant is that the ack echoes the sequence number.
	if ack.Seq != b.seq {
		t.Fatalf("Replicate(p=%d seq=%d): ack echoed seq %d", b.partition, b.seq, ack.Seq)
	}
}

func profileString(e *server.Engine, u core.UserID) string {
	p := e.Profiles().Get(u)
	return fmt.Sprintf("liked=%v disliked=%v", p.Liked(), p.Disliked())
}

func stateString(e *server.Engine, u core.UserID) string {
	states := e.ExportUsers([]core.UserID{u})
	if len(states) == 0 {
		return "<absent>"
	}
	st := states[0]
	return fmt.Sprintf("liked=%v disliked=%v neighbors=%v recs=%v",
		st.Profile.Liked(), st.Profile.Disliked(), st.Neighbors, st.Recs)
}

// ---- failover acceptance ----

type liveNode struct {
	member Member
	node   *Node
	srv    *http.Server
	ln     net.Listener
}

// testPeerSecret gates the node plane in every live-deployment test, so
// the full replication/failover loop runs authenticated.
const testPeerSecret = "test-node-plane-secret"

// bootNode starts one live HTTP node of the deployment on ln.
func bootNode(t *testing.T, self Member, mems []Member, engine server.Config, partitions int, ln net.Listener) *liveNode {
	t.Helper()
	nd, err := New(Config{
		Self:             self,
		Members:          mems,
		Partitions:       partitions,
		Engine:           engine,
		ReplicateEvery:   20 * time.Millisecond,
		AntiEntropyEvery: 300 * time.Millisecond,
		HeartbeatEvery:   25 * time.Millisecond,
		DeadAfter:        3,
		PeerTimeout:      2 * time.Second,
		PeerSecret:       testPeerSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := server.NewServer(nd, 0)
	hs.RequireNodeSecret(testPeerSecret)
	srv := &http.Server{Handler: hs.Handler()}
	go srv.Serve(ln)
	nd.Start()
	return &liveNode{member: self, node: nd, srv: srv, ln: ln}
}

// startDeployment boots n real HTTP nodes on loopback listeners.
func startDeployment(t *testing.T, n int, engine server.Config, partitions int) []*liveNode {
	t.Helper()
	lns := make([]net.Listener, n)
	mems := make([]Member, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		mems[i] = Member{ID: fmt.Sprintf("n%d", i+1), Addr: "http://" + ln.Addr().String()}
	}
	out := make([]*liveNode, n)
	for i := 0; i < n; i++ {
		out[i] = bootNode(t, mems[i], mems, engine, partitions, lns[i])
	}
	t.Cleanup(func() {
		for _, ln := range out {
			ln.srv.Close()
			ln.node.Kill()
		}
	})
	return out
}

type ackedRating struct {
	user core.UserID
	item core.ItemID
}

// TestFailoverZeroAckedLoss is the acceptance scenario: a 3-node
// cluster under live raters and workers loses one node to a hard kill;
// the survivors promote its replicas, every acknowledged rating is
// still present on the partition's new primary, and the promoted
// backlog reconverges (sched_unrefreshed returns to 0).
func TestFailoverZeroAckedLoss(t *testing.T) {
	engine := testEngineConfig()
	engine.LeaseTTL = 300 * time.Millisecond
	const parts = 12
	nodes := startDeployment(t, 3, engine, parts)

	// Live workers on every node drain the schedulers.
	wctx, stopWorkers := context.WithCancel(context.Background())
	var workerWG sync.WaitGroup
	for _, ln := range nodes {
		workerWG.Add(1)
		go func(nd *Node) {
			defer workerWG.Done()
			w := widget.New()
			for wctx.Err() == nil {
				jctx, cancel := context.WithTimeout(wctx, 100*time.Millisecond)
				job, err := nd.NextJob(jctx)
				cancel()
				if err != nil || job == nil {
					continue
				}
				res, _ := w.Execute(job)
				_, _ = nd.ApplyResult(wctx, res)
			}
		}(ln.node)
	}

	// Live raters via the HTTP client, one per node, disjoint item
	// streams. Only ratings whose call returned OK count as acknowledged.
	var ackMu sync.Mutex
	var acked []ackedRating
	rctx, stopRaters := context.WithCancel(context.Background())
	var raterWG sync.WaitGroup
	for i, ln := range nodes {
		raterWG.Add(1)
		go func(i int, addr string) {
			defer raterWG.Done()
			c := client.New(addr, client.WithTimeout(2*time.Second))
			defer c.Close()
			seq := uint32(0)
			for rctx.Err() == nil {
				seq++
				u := core.UserID(seq%40 + 1)
				item := core.ItemID(uint32(i+1)*100_000 + seq)
				err := c.RateBatch(rctx, []core.Rating{{User: u, Item: item, Liked: true}})
				if err == nil {
					ackMu.Lock()
					acked = append(acked, ackedRating{user: u, item: item})
					ackMu.Unlock()
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i, ln.member.Addr)
	}

	// Let traffic flow, then hard-kill the primary of user 1's partition.
	time.Sleep(400 * time.Millisecond)
	victimID := nodes[0].node.Map().Primary(nodes[0].node.Cluster().Partition(1)).ID
	var victim *liveNode
	var survivors []*liveNode
	for _, ln := range nodes {
		if ln.member.ID == victimID {
			victim = ln
		} else {
			survivors = append(survivors, ln)
		}
	}
	victim.ln.Close()
	victim.srv.Close()
	victim.node.Kill()

	// Survivors must converge on a 2-node map with a bumped epoch.
	deadline := time.Now().Add(10 * time.Second)
	for _, s := range survivors {
		for {
			m := s.node.Map()
			if m.Epoch >= 2 && len(m.Nodes) == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never adopted the 2-node map (epoch %d, %d nodes)",
					s.member.ID, m.Epoch, len(m.Nodes))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// A little more live traffic against the new topology, then quiesce.
	time.Sleep(300 * time.Millisecond)
	stopRaters()
	raterWG.Wait()

	// The promoted backlog must drain: both survivors' primary-partition
	// schedulers return to zero unrefreshed users while workers run.
	for {
		total := int64(0)
		for _, s := range survivors {
			total += s.node.Stats()["sched_unrefreshed"].(int64)
		}
		if total == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sched_unrefreshed stuck at %d after failover", total)
		}
		time.Sleep(20 * time.Millisecond)
	}
	stopWorkers()
	workerWG.Wait()

	// Exactly one failover event across the survivors.
	failovers := int64(0)
	for _, s := range survivors {
		failovers += s.node.Stats()["failovers_total"].(int64)
	}
	if failovers < 1 {
		t.Fatalf("failovers_total = %d, want >= 1", failovers)
	}

	// Zero acknowledged-rating loss: every acked rating is present on
	// its partition's current primary.
	ackMu.Lock()
	defer ackMu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no ratings were acknowledged — test proved nothing")
	}
	byID := map[string]*Node{}
	for _, s := range survivors {
		byID[s.member.ID] = s.node
	}
	m := survivors[0].node.Map()
	lost := 0
	for _, ar := range acked {
		p := survivors[0].node.Cluster().Partition(ar.user)
		owner := byID[m.Primary(p).ID]
		if owner == nil {
			t.Fatalf("partition %d primary %s is not a survivor", p, m.Primary(p).ID)
		}
		if !owner.Cluster().Engine(p).Profiles().Get(ar.user).Contains(ar.item) {
			lost++
			t.Errorf("acked rating lost: user %d item %d (partition %d)", ar.user, ar.item, p)
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acknowledged ratings lost after failover", lost, len(acked))
	}
	t.Logf("failover survived: %d acknowledged ratings all present", len(acked))
}

// TestReplicaRejectsWorkerTraffic pins the satellite fix: a worker
// Result or Ack landing on the partition's replica must be rejected
// with the typed not_primary envelope naming the primary — never folded
// silently into the mirror, which is a replica of the primary's
// history, not a second authority.
func TestReplicaRejectsWorkerTraffic(t *testing.T) {
	cfg := testEngineConfig()
	cfg.LeaseTTL = time.Minute
	const parts = 4
	nd := mirrorNode(t, cfg, parts)
	_, mirrored := roles(nd.Map(), nd.Self().ID)
	var u core.UserID
	for cand := core.UserID(1); ; cand++ {
		if mirrored[nd.Cluster().Partition(cand)] {
			u = cand
			break
		}
	}
	p := nd.Cluster().Partition(u)
	if err := nd.Cluster().Rate(tctx, u, 7, true); err != nil {
		t.Fatal(err)
	}
	// Mint a real job straight off the embedded cluster (bypassing the
	// role gate, as a confused worker holding a stale topology would).
	job, err := nd.Cluster().Job(tctx, u)
	if err != nil {
		t.Fatal(err)
	}
	w := widget.New()
	res, _ := w.Execute(job)

	_, err = nd.ApplyResult(tctx, res)
	var np *server.NotPrimaryError
	if !errors.As(err, &np) || !errors.Is(err, hyrec.ErrNotPrimary) {
		t.Fatalf("replica ApplyResult = %v, want NotPrimaryError", err)
	}
	if np.Partition != p || np.PrimaryID != "a" {
		t.Fatalf("NotPrimaryError = %+v, want partition %d primary a", np, p)
	}
	if err := nd.Ack(tctx, job.Lease, true); !errors.Is(err, hyrec.ErrNotPrimary) {
		t.Fatalf("replica Ack = %v, want ErrNotPrimary", err)
	}

	// Over the wire the rejection is the 421 envelope with the primary's
	// address, the shape the client's retry-once path consumes.
	ts := httptest.NewServer(server.NewServer(nd, 0).Handler())
	defer ts.Close()
	body, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("POST /v1/result to replica = %d, want 421", resp.StatusCode)
	}
	var env struct {
		Error wire.ErrorBody `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != wire.CodeNotPrimary {
		t.Fatalf("error code = %q, want %q", env.Error.Code, wire.CodeNotPrimary)
	}
	if env.Error.Primary == "" {
		t.Fatal("envelope does not name the primary address")
	}
}
