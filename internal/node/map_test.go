package node

import (
	"testing"
)

func members(ids ...string) []Member {
	out := make([]Member, len(ids))
	for i, id := range ids {
		out[i] = Member{ID: id, Addr: "http://" + id}
	}
	return out
}

// TestBuildMapDeterministic: the map is a pure function of the alive set
// — member order must not matter, every process computes the same
// assignment.
func TestBuildMapDeterministic(t *testing.T) {
	a := BuildMap(members("n1", "n2", "n3"), 16, 1)
	b := BuildMap(members("n3", "n1", "n2"), 16, 1)
	for p := 0; p < 16; p++ {
		if a.Primary(p).ID != b.Primary(p).ID {
			t.Fatalf("partition %d: primary differs across input orders", p)
		}
		if a.Replica(p).ID != b.Replica(p).ID {
			t.Fatalf("partition %d: replica differs across input orders", p)
		}
	}
}

// TestBuildMapReplicaDistinct: with ≥2 nodes every partition gets a
// replica on a different node than its primary; with 1 node, none.
func TestBuildMapReplicaDistinct(t *testing.T) {
	m := BuildMap(members("n1", "n2", "n3"), 32, 1)
	for p := 0; p < 32; p++ {
		pr, rep := m.Primary(p), m.Replica(p)
		if pr == nil || rep == nil {
			t.Fatalf("partition %d: unassigned (primary %v replica %v)", p, pr, rep)
		}
		if pr.ID == rep.ID {
			t.Fatalf("partition %d: replica on the primary node %s", p, pr.ID)
		}
	}
	solo := BuildMap(members("n1"), 8, 1)
	for p := 0; p < 8; p++ {
		if solo.Primary(p) == nil {
			t.Fatalf("partition %d: no primary in 1-node map", p)
		}
		if solo.Replica(p) != nil {
			t.Fatalf("partition %d: 1-node map has a replica", p)
		}
	}
}

// TestBuildMapMinimalReassignment pins the rendezvous property the
// failover design rests on: removing one node reassigns only the
// partitions that node held, and each orphaned partition's new primary
// is its old replica (whose mirror already holds the state).
func TestBuildMapMinimalReassignment(t *testing.T) {
	full := BuildMap(members("n1", "n2", "n3"), 64, 1)
	without := BuildMap(members("n1", "n3"), 64, 2)
	for p := 0; p < 64; p++ {
		oldPr := full.Primary(p)
		newPr := without.Primary(p)
		if oldPr.ID != "n2" {
			if newPr.ID != oldPr.ID {
				t.Fatalf("partition %d: primary moved %s→%s though n2 did not own it", p, oldPr.ID, newPr.ID)
			}
			continue
		}
		if rep := full.Replica(p); newPr.ID != rep.ID {
			t.Fatalf("partition %d: orphaned primary went to %s, want old replica %s", p, newPr.ID, rep.ID)
		}
	}
}

// TestBuildMapBalance: rendezvous hashing should spread partitions
// roughly evenly — no node may hold more than twice its fair share.
func TestBuildMapBalance(t *testing.T) {
	const parts = 256
	m := BuildMap(members("n1", "n2", "n3", "n4"), parts, 1)
	for _, nd := range m.Nodes {
		if got, cap := len(nd.Primary), parts/2; got > cap {
			t.Fatalf("node %s holds %d/%d primaries (fair share %d)", nd.ID, got, parts, parts/4)
		}
		if len(nd.Primary) == 0 {
			t.Fatalf("node %s holds no primaries", nd.ID)
		}
	}
}
