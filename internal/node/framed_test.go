package node

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/server"
)

// peerPlaneCounter counts the HTTP hits on the peer-plane hot paths a
// framed deployment is supposed to keep off HTTP entirely.
type peerPlaneCounter struct {
	http.Handler
	rate, job, replicate atomic.Int64
}

func countPeerPlane(h http.Handler) *peerPlaneCounter {
	c := &peerPlaneCounter{}
	c.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/rate":
			c.rate.Add(1)
		case "/v1/job":
			c.job.Add(1)
		case "/v1/replicate":
			c.replicate.Add(1)
		}
		h.ServeHTTP(w, r)
	})
	return c
}

// TestFramedPeerPlane boots a live 2-node deployment whose members
// advertise framed listeners and proves the peer plane rides them: the
// proxy hop for a non-owned user and the replication stream both leave
// the HTTP hot paths untouched, while state still converges onto the
// replica — which also pins that the framed handshake carries the
// node-plane secret (replication would answer forbidden otherwise).
func TestFramedPeerPlane(t *testing.T) {
	engine := testEngineConfig()
	const parts = 4
	const n = 2

	mems := make([]Member, n)
	httpLns := make([]net.Listener, n)
	frameLns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		hln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		httpLns[i], frameLns[i] = hln, fln
		mems[i] = Member{
			ID:        fmt.Sprintf("n%d", i+1),
			Addr:      "http://" + hln.Addr().String(),
			FrameAddr: fln.Addr().String(),
		}
	}

	nodes := make([]*Node, n)
	counters := make([]*peerPlaneCounter, n)
	for i := 0; i < n; i++ {
		nd, err := New(Config{
			Self:             mems[i],
			Members:          mems,
			Partitions:       parts,
			Engine:           engine,
			ReplicateEvery:   20 * time.Millisecond,
			AntiEntropyEvery: -1,
			HeartbeatEvery:   50 * time.Millisecond,
			DeadAfter:        3,
			PeerTimeout:      2 * time.Second,
			PeerSecret:       testPeerSecret,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := server.NewServer(nd, 0)
		hs.RequireNodeSecret(testPeerSecret)
		counters[i] = countPeerPlane(hs.Handler())
		go hs.ServeFrames(frameLns[i])
		srv := &http.Server{Handler: counters[i]}
		go srv.Serve(httpLns[i])
		nd.Start()
		nodes[i] = nd
		t.Cleanup(func() { srv.Close(); hs.Close(); nd.Kill() })
	}

	// Pick a user n1 does NOT own, so rating through n1 takes the proxy
	// hop to n2, and its partition replicates back onto n1.
	m := nodes[0].Map()
	primary, _ := roles(m, mems[0].ID)
	var u core.UserID
	for cand := core.UserID(1); ; cand++ {
		if !primary[nodes[0].Cluster().Partition(cand)] {
			u = cand
			break
		}
	}
	p := nodes[0].Cluster().Partition(u)

	if err := nodes[0].Rate(tctx, u, 42, true); err != nil {
		t.Fatalf("proxied rate: %v", err)
	}
	if _, _, err := nodes[0].AppendJobPayload(tctx, u, nil, nil); err != nil {
		t.Fatalf("proxied job: %v", err)
	}

	// The rating lands on n2 and the replication tail ships it back to
	// n1's mirror of partition p.
	deadline := time.Now().Add(10 * time.Second)
	for {
		prof := nodes[0].Cluster().Engine(p).Profiles().Get(u)
		if len(prof.Liked()) == 1 && prof.Liked()[0] == 42 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged: user %d profile %v", u, prof.Liked())
		}
		time.Sleep(10 * time.Millisecond)
	}

	for i, c := range counters {
		if got := c.rate.Load() + c.job.Load() + c.replicate.Load(); got != 0 {
			t.Fatalf("node %d served %d peer-plane HTTP requests (rate=%d job=%d replicate=%d) — the framed lane was bypassed",
				i, got, c.rate.Load(), c.job.Load(), c.replicate.Load())
		}
	}
}
