package node

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/server"
	"hyrec/internal/wire"
)

// TestRestartedNodeReconverges pins the epoch-exchange repair path: a
// killed node that comes back boots on the epoch-1 map over the full
// static membership, so its own liveness view never disagrees with its
// map — without the heartbeat epoch exchange it would coordinate (it
// has the lowest ID) on stale epoch-1 assignments forever while the
// survivors run a higher epoch: dual primaries for the same partitions.
// With the exchange, survivors push their newer map to it within one
// heartbeat round, it re-publishes over the full membership, and every
// node converges on one map that includes it again — with the state it
// missed handed back.
func TestRestartedNodeReconverges(t *testing.T) {
	engine := testEngineConfig()
	const parts = 8
	nodes := startDeployment(t, 3, engine, parts)
	mems := []Member{nodes[0].member, nodes[1].member, nodes[2].member}

	// Seed state through a survivor-to-be so there is something to hand
	// back to the restarted node.
	const users = 24
	for u := core.UserID(1); u <= users; u++ {
		if err := nodes[1].node.Rate(tctx, u, core.ItemID(1000+uint32(u)), true); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the lowest-ID node — the one that, restarted, becomes the
	// coordinator for the full alive set and must NOT win with its boot map.
	victim := nodes[0]
	victim.ln.Close()
	victim.srv.Close()
	victim.node.Kill()

	deadline := time.Now().Add(15 * time.Second)
	for _, s := range nodes[1:] {
		for {
			m := s.node.Map()
			if m.Epoch >= 2 && len(m.Nodes) == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("survivor %s never adopted the 2-node map", s.member.ID)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	survivorEpoch := nodes[1].node.Map().Epoch

	// Restart the victim: same identity and address, fresh empty state —
	// exactly what a supervisor restarting the process produces.
	var ln net.Listener
	for {
		var err error
		ln, err = net.Listen("tcp", victim.ln.Addr().String())
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", victim.ln.Addr(), err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	restarted := bootNode(t, victim.member, mems, engine, parts, ln)
	t.Cleanup(func() {
		restarted.srv.Close()
		restarted.node.Kill()
	})

	// All three must converge on one higher-epoch map spanning 3 nodes.
	live := []*liveNode{restarted, nodes[1], nodes[2]}
	for {
		converged := true
		var epoch uint64
		for i, s := range live {
			m := s.node.Map()
			if len(m.Nodes) != 3 || m.Epoch <= survivorEpoch {
				converged = false
				break
			}
			if i == 0 {
				epoch = m.Epoch
			} else if m.Epoch != epoch {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			for _, s := range live {
				m := s.node.Map()
				t.Logf("%s: epoch=%d nodes=%d", s.member.ID, m.Epoch, len(m.Nodes))
			}
			t.Fatal("cluster never reconverged on a 3-node map after restart")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The restarted node must get its partitions' state back through the
	// demotion/handoff (plus anti-entropy) path: pick a seeded user it
	// now owns and wait for the rating to appear.
	m := restarted.node.Map()
	var tracked core.UserID
	for u := core.UserID(1); u <= users; u++ {
		p := restarted.node.Cluster().Partition(u)
		if pr := m.Primary(p); pr != nil && pr.ID == restarted.member.ID {
			tracked = u
			break
		}
	}
	if tracked == 0 {
		t.Fatalf("no seeded user landed on the restarted node's partitions")
	}
	p := restarted.node.Cluster().Partition(tracked)
	item := core.ItemID(1000 + uint32(tracked))
	for !restarted.node.Cluster().Engine(p).Profiles().Get(tracked).Contains(item) {
		if time.Now().After(deadline) {
			t.Fatalf("restarted node never recovered user %d's rating", tracked)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConcurrentShipNewestWins pins the export/seq atomicity of the
// replication ship path: many concurrent RateBatch calls for one user
// race their synchronous replica ships, and the mirror must end up with
// the full opinion set. Before the per-partition ship lock, a ship that
// exported early but drew its seq late could stamp a stale snapshot as
// newest, and the mirror's recency gate would install it over the
// complete one — silently dropping acknowledged ratings.
func TestConcurrentShipNewestWins(t *testing.T) {
	engine := testEngineConfig()
	const parts = 4
	nodes := startDeployment(t, 2, engine, parts)

	// A user whose primary is node[primIdx] and whose replica is the other.
	u := core.UserID(7)
	p := nodes[0].node.Cluster().Partition(u)
	m := nodes[0].node.Map()
	var primary, mirror *liveNode
	for _, ln := range nodes {
		if m.Primary(p).ID == ln.member.ID {
			primary = ln
		} else {
			mirror = ln
		}
	}

	const ratings = 32
	var wg sync.WaitGroup
	for i := 0; i < ratings; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			item := core.ItemID(uint32(5000 + i))
			if err := primary.node.RateBatch(tctx, []core.Rating{{User: u, Item: item, Liked: true}}); err != nil {
				t.Errorf("RateBatch(%d): %v", item, err)
			}
		}(i)
	}
	wg.Wait()

	// Every acked rating must reach the mirror (the async tail retries
	// any ship that failed, so poll briefly rather than asserting once).
	deadline := time.Now().Add(10 * time.Second)
	for {
		prof := mirror.node.Cluster().Engine(p).Profiles().Get(u)
		missing := 0
		for i := 0; i < ratings; i++ {
			if !prof.Contains(core.ItemID(uint32(5000 + i))) {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirror still missing %d of %d concurrently-acked ratings", missing, ratings)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReconcileRequiresQuorum pins the fencing rule: a coordinator may
// publish a new map only when it observes a strict majority of the
// static membership alive, so the two sides of a symmetric partition
// can never both publish conflicting maps.
func TestReconcileRequiresQuorum(t *testing.T) {
	mems := []Member{
		{ID: "n1", Addr: "http://127.0.0.1:1"},
		{ID: "n2", Addr: "http://127.0.0.1:2"},
		{ID: "n3", Addr: "http://127.0.0.1:3"},
	}
	nd, err := New(Config{
		Self:           mems[0],
		Members:        mems,
		Partitions:     4,
		Engine:         testEngineConfig(),
		HeartbeatEvery: -1,
		ReplicateEvery: -1,
		PeerTimeout:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()

	// Minority island (self only): the alive set disagrees with the
	// 3-node map, self is the lowest alive ID — and it must still not
	// publish.
	nd.hb.reconcile([]Member{mems[0]})
	if got := nd.Map().Epoch; got != 1 {
		t.Fatalf("minority coordinator published epoch %d, want boot epoch 1", got)
	}

	// Not the coordinator: a majority is alive but a lower ID is too.
	nd2, err := New(Config{
		Self:           mems[1],
		Members:        mems,
		Partitions:     4,
		Engine:         testEngineConfig(),
		HeartbeatEvery: -1,
		ReplicateEvery: -1,
		PeerTimeout:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd2.Close()
	nd2.hb.reconcile([]Member{mems[0], mems[1]})
	if got := nd2.Map().Epoch; got != 1 {
		t.Fatalf("non-coordinator published epoch %d, want boot epoch 1", got)
	}

	// Majority + lowest alive ID: publish.
	nd.hb.reconcile([]Member{mems[0], mems[1]})
	m := nd.Map()
	if m.Epoch != 2 || len(m.Nodes) != 2 {
		t.Fatalf("majority coordinator map = epoch %d over %d nodes, want epoch 2 over 2", m.Epoch, len(m.Nodes))
	}
	if m.Coordinator != "n1" {
		t.Fatalf("published map coordinator = %q, want n1", m.Coordinator)
	}
}

// TestEqualEpochTieBreak pins the deterministic resolution of racing
// publishes: when two coordinators (a partial partition where each saw
// its own majority) publish different maps at the same epoch, every
// receiver settles on the lower coordinator ID — not on whichever push
// happened to arrive first.
func TestEqualEpochTieBreak(t *testing.T) {
	nd := mirrorNode(t, testEngineConfig(), 4)

	fromB := BuildMap([]Member{{ID: "b", Addr: "http://127.0.0.1:2"}, {ID: "c", Addr: "http://127.0.0.1:3"}}, 4, 2)
	fromB.Coordinator = "b"
	if err := nd.ApplyNodeMap(tctx, fromB); err != nil {
		t.Fatal(err)
	}
	if got := nd.Map().Coordinator; got != "b" {
		t.Fatalf("coordinator after first push = %q, want b", got)
	}

	fromA := BuildMap([]Member{{ID: "a", Addr: "http://127.0.0.1:1"}, {ID: "c", Addr: "http://127.0.0.1:3"}}, 4, 2)
	fromA.Coordinator = "a"
	if err := nd.ApplyNodeMap(tctx, fromA); err != nil {
		t.Fatal(err)
	}
	if got := nd.Map().Coordinator; got != "a" {
		t.Fatalf("equal-epoch push from lower coordinator ignored (coordinator = %q, want a)", got)
	}

	// Re-delivery of the loser and a higher-ID third publisher are both no-ops.
	if err := nd.ApplyNodeMap(tctx, fromB); err != nil {
		t.Fatal(err)
	}
	fromD := BuildMap([]Member{{ID: "c", Addr: "http://127.0.0.1:3"}, {ID: "d", Addr: "http://127.0.0.1:4"}}, 4, 2)
	fromD.Coordinator = "d"
	if err := nd.ApplyNodeMap(tctx, fromD); err != nil {
		t.Fatal(err)
	}
	if got := nd.Map().Coordinator; got != "a" {
		t.Fatalf("tie-break not sticky: coordinator = %q, want a", got)
	}
	// A higher epoch still supersedes regardless of coordinator order.
	next := BuildMap([]Member{{ID: "z", Addr: "http://127.0.0.1:9"}}, 4, 3)
	next.Coordinator = "z"
	if err := nd.ApplyNodeMap(tctx, next); err != nil {
		t.Fatal(err)
	}
	if got := nd.Map().Epoch; got != 3 {
		t.Fatalf("higher epoch ignored: epoch = %d, want 3", got)
	}
}

// TestNodePlaneSecret pins the trust boundary: with a shared secret
// configured, POST /v1/nodes and /v1/replicate reject requests without
// it (403/forbidden), and accept the same body with it. /healthz stays
// open and advertises the node-map epoch for the heartbeat exchange.
func TestNodePlaneSecret(t *testing.T) {
	nd := mirrorNode(t, testEngineConfig(), 4)
	hs := server.NewServer(nd, 0)
	hs.RequireNodeSecret("s3cret")
	ts := httptest.NewServer(hs.Handler())
	defer ts.Close()

	mapBody, err := wire.EncodeNodeMap(BuildMap([]Member{{ID: "x", Addr: "http://127.0.0.1:1"}}, 4, 9))
	if err != nil {
		t.Fatal(err)
	}
	replBody, err := wire.EncodeReplBatch(&wire.ReplBatch{
		Epoch: 1, Partition: 0, Seq: 1,
		Users: []wire.ReplUser{{UID: 1, Liked: []uint32{2}}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Replicate first: once the epoch-9 map (naming only node x) is
	// adopted, this node no longer mirrors partition 0 and would answer
	// 421 rather than 200.
	for _, tc := range []struct {
		path string
		body []byte
	}{{"/v1/replicate", replBody}, {"/v1/nodes", mapBody}} {
		path, body := tc.path, tc.body
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Error wire.ErrorBody `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden || env.Error.Code != wire.CodeForbidden {
			t.Fatalf("POST %s without secret = %d/%q, want 403/forbidden", path, resp.StatusCode, env.Error.Code)
		}

		req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(server.NodeSecretHeader, "s3cret")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s with secret = %d, want 200", path, resp.StatusCode)
		}
	}
	if got := nd.Map().Epoch; got != 9 {
		t.Fatalf("authenticated map push not applied: epoch = %d, want 9", got)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz behind secret = %d, want open 200", resp.StatusCode)
	}
	if got := resp.Header.Get(server.NodeEpochHeader); got != fmt.Sprint(nd.Map().Epoch) {
		t.Fatalf("healthz %s = %q, want %d", server.NodeEpochHeader, got, nd.Map().Epoch)
	}
}
