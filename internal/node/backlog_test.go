package node

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hyrec/internal/core"
	"hyrec/internal/server"
)

// TestBacklogCapTripsToFullResync pins the unbounded-requeue fix at the
// unit level: a partition's dirty set stops growing at the configured
// backlog and collapses into the needFull flag, and the high-water gauge
// records the peak.
func TestBacklogCapTripsToFullResync(t *testing.T) {
	self := Member{ID: "a", Addr: "http://127.0.0.1:1"}
	other := Member{ID: "b", Addr: "http://127.0.0.1:2"}
	nd, err := New(Config{
		Self:           self,
		Members:        []Member{self, other},
		Partitions:     2,
		Engine:         testEngineConfig(),
		HeartbeatEvery: -1,
		ReplicateEvery: -1,
		ReplBacklog:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	primary, _ := roles(nd.Map(), "a")
	var p int
	for pp := range primary {
		p = pp
	}
	for u := core.UserID(1); u <= 100; u++ {
		nd.repl.markDirty(p, u)
	}
	if lag := nd.repl.lag(); lag > 8 {
		t.Fatalf("dirty set grew to %d past cap 8", lag)
	}
	// Past the trip the set is empty — "re-ship everything" replaced it.
	if lag := nd.repl.lag(); lag != 0 {
		t.Fatalf("dirty set holds %d users after the backlog tripped, want 0 (collapsed into needFull)", lag)
	}
	if !nd.repl.takeNeedFull(p) {
		t.Fatal("needFull not set after the backlog cap tripped")
	}
	if hw := nd.repl.backlogHighWater(); hw != 8 {
		t.Fatalf("backlog high-water = %d, want 8 (the cap)", hw)
	}
	if got := nd.Stats()["replica_backlog_users"]; got != int64(8) {
		t.Fatalf("stats replica_backlog_users = %v, want 8", got)
	}
	// requeue is capped identically (the failed-ship path).
	users := make([]core.UserID, 0, 100)
	for u := core.UserID(200); u < 300; u++ {
		users = append(users, u)
	}
	nd.repl.requeue(p, users)
	if lag := nd.repl.lag(); lag > 8 {
		t.Fatalf("requeue grew the dirty set to %d past cap 8", lag)
	}
}

// TestLongDeadMirrorRecovers is the end-to-end leg: a mirror stays dead
// long enough for its primary's backlog to blow past the cap, then
// comes back — the primary's memory stayed bounded the whole time, and
// the full re-ship (not the dropped dirty set) converges the mirror to
// every acknowledged rating.
func TestLongDeadMirrorRecovers(t *testing.T) {
	const parts = 4
	const backlog = 8
	cfg := testEngineConfig()

	// b's HTTP front door flips between dead (typed 500) and serving the
	// real node — a deterministic stand-in for a crashed-then-restarted
	// process at a stable address.
	var mirrorUp atomic.Bool
	var bHandler http.Handler
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !mirrorUp.Load() {
			http.Error(w, "mirror down", http.StatusInternalServerError)
			return
		}
		bHandler.ServeHTTP(w, r)
	}))
	defer ts.Close()

	memA := Member{ID: "a", Addr: "http://127.0.0.1:1"}
	memB := Member{ID: "b", Addr: ts.URL}
	mk := func(self Member) *Node {
		nd, err := New(Config{
			Self:           self,
			Members:        []Member{memA, memB},
			Partitions:     parts,
			Engine:         cfg,
			HeartbeatEvery: -1,
			ReplicateEvery: -1,
			ReplBacklog:    backlog,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		return nd
	}
	a, b := mk(memA), mk(memB)
	bHandler = server.NewServer(b, 0).Handler()

	// Rate far more distinct users than the cap on a's primary
	// partitions while the mirror is dead. The sync replication leg
	// fails each time and requeues into the capped backlog.
	primary, _ := roles(a.Map(), "a")
	rated := map[core.UserID]core.ItemID{}
	u := core.UserID(0)
	for len(rated) < 10*backlog {
		u++
		if !primary[a.Cluster().Partition(u)] {
			continue
		}
		item := core.ItemID(uint32(u) + 1000)
		if err := a.Rate(tctx, u, item, true); err != nil {
			t.Fatalf("rate user %d with mirror dead: %v", u, err)
		}
		rated[u] = item
	}
	if lag := a.repl.lag(); lag > int64(backlog*parts) {
		t.Fatalf("backlog grew to %d users with the mirror dead; cap is %d per partition over %d partitions",
			lag, backlog, parts)
	}
	if hw := a.repl.backlogHighWater(); hw <= 0 {
		t.Fatal("backlog high-water gauge never moved")
	}

	// Mirror recovers; one async tail pass runs the full re-ships.
	mirrorUp.Store(true)
	a.repl.flushAll(tctx)

	for uu, item := range rated {
		p := a.Cluster().Partition(uu)
		prof := b.Cluster().Engine(p).Profiles().Get(uu)
		found := false
		for _, it := range prof.Liked() {
			if it == item {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("user %d item %d missing on the recovered mirror (partition %d): liked=%v",
				uu, item, p, prof.Liked())
		}
	}
	if lag := a.repl.lag(); lag != 0 {
		t.Fatalf("backlog still holds %d users after the mirror recovered and flushed", lag)
	}
}
