package node

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// acceptCounter counts TCP accepts on a peer — each one is a dial the
// prober paid.
type acceptCounter struct {
	net.Listener
	accepts atomic.Int64
}

func (l *acceptCounter) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepts.Add(1)
	}
	return c, err
}

// TestHeartbeatReusesPeerConnections is the dial-churn regression test
// for the failover prober: repeated probe rounds against the same
// peers must ride persistent connections, one dial per peer, instead
// of redialing every HeartbeatEvery. It also pins that the prober owns
// its transport (sized to the membership) rather than sharing the
// process-wide default with its 2-idle-per-host ceiling.
func TestHeartbeatReusesPeerConnections(t *testing.T) {
	healthz := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	members := []Member{{ID: "n1", Addr: "http://127.0.0.1:1"}}
	var counters []*acceptCounter
	for _, id := range []string{"n2", "n3", "n4"} {
		ts := httptest.NewUnstartedServer(healthz)
		ac := &acceptCounter{Listener: ts.Listener}
		ts.Listener = ac
		ts.Start()
		t.Cleanup(ts.Close)
		counters = append(counters, ac)
		members = append(members, Member{ID: id, Addr: ts.URL})
	}

	nd, err := New(Config{
		Self:           members[0],
		Members:        members,
		Partitions:     4,
		Engine:         testEngineConfig(),
		HeartbeatEvery: -1, // drive Tick by hand
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Close() })

	h := newHeartbeats(nd)
	if tr, ok := h.hc.Transport.(*http.Transport); !ok {
		t.Fatal("heartbeat client shares the default transport instead of owning a sized one")
	} else if tr.MaxIdleConns < len(members) {
		t.Fatalf("heartbeat idle pool %d smaller than the %d-node membership", tr.MaxIdleConns, len(members))
	}

	const rounds = 8
	for i := 0; i < rounds; i++ {
		h.Tick()
	}
	for i, ac := range counters {
		if got := ac.accepts.Load(); got > 2 {
			t.Fatalf("peer %d saw %d dials across %d probe rounds — heartbeat connections are churning",
				i, got, rounds)
		}
	}
}
