package node

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hyrec/client"
	"hyrec/internal/cluster"
	"hyrec/internal/core"
	"hyrec/internal/sched"
	"hyrec/internal/server"
	"hyrec/internal/wire"
)

// Config parametrises one node process.
type Config struct {
	// Self is this node's identity; it must appear in Members.
	Self Member
	// Members is the deployment's static membership (including Self).
	// Nodes that are down at boot are still listed — heartbeats demote
	// them and the coordinator reassigns their partitions.
	Members []Member
	// Partitions is the ring size every member must agree on.
	Partitions int
	// Engine configures the embedded cluster (seed, K, R, scheduler…);
	// every member must share it so engines, pseudonym spaces and lease
	// lanes are identical across processes.
	Engine server.Config

	// ReplicateEvery paces the async replication tail (default 100ms).
	ReplicateEvery time.Duration
	// ReplBacklog caps each partition's replication dirty set — the
	// users queued for the async tail while a mirror is unreachable.
	// Past the cap the set is dropped and the partition is flagged for
	// one full-state re-ship instead, so a long-dead mirror costs
	// constant memory. 0 = default (8192); negative = unlimited.
	ReplBacklog int
	// AntiEntropyEvery paces per-partition full-state syncs (default 30s;
	// negative disables).
	AntiEntropyEvery time.Duration
	// HeartbeatEvery paces peer liveness probes (default 1s; negative
	// disables the heartbeat/failover loop — tests drive it manually).
	HeartbeatEvery time.Duration
	// DeadAfter is how many consecutive missed heartbeats declare a peer
	// dead (default 3).
	DeadAfter int
	// PeerTimeout bounds every node-to-node request (default 5s).
	PeerTimeout time.Duration
	// PeerSecret, when non-empty, is sent on every node-to-node request
	// and required of inbound node-plane traffic (the HTTP front-end
	// enforces it — see server.NodeSecretHeader). Every member must share
	// it.
	PeerSecret string
}

func (c Config) withDefaults() Config {
	if c.ReplicateEvery == 0 {
		c.ReplicateEvery = 100 * time.Millisecond
	}
	if c.AntiEntropyEvery == 0 {
		c.AntiEntropyEvery = 30 * time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 5 * time.Second
	}
	return c
}

// Node is one process of a multi-node HyRec deployment: a full
// hyrec.Service over the entire ring, serving owned partitions locally
// and proxying the rest to their primaries. See the package comment for
// the architecture.
type Node struct {
	cfg     Config
	self    Member
	members []Member // sorted by ID
	cl      *cluster.Cluster

	// nm is the node map currently in force (never nil after New).
	nm atomic.Pointer[wire.NodeMap]

	// mapMu serializes map transitions (applyMap), not map reads.
	mapMu sync.Mutex

	peerMu sync.Mutex
	peers  map[string]*client.Client // addr → node-plane client

	repl *replicator

	// seen is the mirror-side recency gate: per partition, the highest
	// (epoch, seq) applied for each user. Guarded by seenMu.
	seenMu sync.Mutex
	seen   map[int]map[core.UserID]replVer

	hb *heartbeats

	failovers atomic.Int64

	stopCh   chan struct{}
	wg       sync.WaitGroup
	closeOne sync.Once
	killed   atomic.Bool
}

// New builds a node and applies the boot node map: epoch 1 over the full
// member set, computed identically by every member, so a cleanly-booted
// deployment agrees on ownership before any heartbeat exchange. Call
// Start to launch the replication and failover loops.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("node: partitions must be >= 1, got %d", cfg.Partitions)
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("node: empty membership")
	}
	members := append([]Member(nil), cfg.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	found := false
	for _, m := range members {
		if m.ID == cfg.Self.ID {
			found = true
			if m.Addr != cfg.Self.Addr {
				return nil, fmt.Errorf("node: self addr %q disagrees with membership %q", cfg.Self.Addr, m.Addr)
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("node: self %q not in membership", cfg.Self.ID)
	}
	n := &Node{
		cfg:     cfg,
		self:    cfg.Self,
		members: members,
		cl:      cluster.New(cfg.Engine, cfg.Partitions),
		peers:   make(map[string]*client.Client),
		seen:    map[int]map[core.UserID]replVer{},
		stopCh:  make(chan struct{}),
	}
	n.repl = newReplicator(n)
	n.hb = newHeartbeats(n)
	boot := BuildMap(members, cfg.Partitions, 1)
	n.applyMap(boot)
	return n, nil
}

// Start launches the background loops (replication tail, anti-entropy,
// heartbeats). Idempotent enough for tests to skip it entirely.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.repl.loop(&n.wg, n.stopCh)
	if n.cfg.HeartbeatEvery > 0 {
		n.wg.Add(1)
		go n.hb.loop(&n.wg, n.stopCh)
	}
}

// Close stops the loops — draining the replication tail — and the
// embedded cluster.
func (n *Node) Close() error {
	n.closeOne.Do(func() { close(n.stopCh) })
	n.wg.Wait()
	n.peerMu.Lock()
	for _, p := range n.peers {
		p.Close()
	}
	n.peers = map[string]*client.Client{}
	n.peerMu.Unlock()
	return n.cl.Close()
}

// Kill is the SIGKILL stand-in for tests: stop without the replication
// drain or partition handoff a clean Close performs. Acknowledged state
// must survive through the replica alone.
func (n *Node) Kill() {
	n.killed.Store(true)
	n.closeOne.Do(func() { close(n.stopCh) })
	n.wg.Wait()
	n.peerMu.Lock()
	for _, p := range n.peers {
		p.Close()
	}
	n.peers = map[string]*client.Client{}
	n.peerMu.Unlock()
	_ = n.cl.Close()
}

// Cluster exposes the embedded cluster (tests and the persist saver).
func (n *Node) Cluster() *cluster.Cluster { return n.cl }

// Map returns the node map currently in force.
func (n *Node) Map() *wire.NodeMap { return n.nm.Load() }

// NodeEpoch implements server.NodeEpocher: /healthz advertises the
// map epoch in force, turning heartbeats into an epoch exchange.
func (n *Node) NodeEpoch() uint64 { return n.nm.Load().Epoch }

// Self returns this node's identity.
func (n *Node) Self() Member { return n.self }

// peer returns (building if needed) the node-plane client for addr. The
// forwarded marker is set on every request it issues, so the receiving
// node answers not_primary instead of proxying a second hop.
func (n *Node) peer(addr string) *client.Client {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	if p, ok := n.peers[addr]; ok {
		return p
	}
	opts := []client.Option{
		client.WithHeader(server.ForwardedHeader, "1"),
		client.WithTimeout(n.cfg.PeerTimeout),
		client.WithRetries(1, 25*time.Millisecond),
	}
	if n.cfg.PeerSecret != "" {
		opts = append(opts, client.WithHeader(server.NodeSecretHeader, n.cfg.PeerSecret))
	}
	// When the static membership advertises a framed listener for this
	// peer, the replication shipments and proxy hops ride it (with the
	// JSON path as automatic fallback).
	for _, m := range n.cfg.Members {
		if m.Addr == addr && m.FrameAddr != "" {
			opts = append(opts, client.WithFramed(m.FrameAddr))
			break
		}
	}
	p := client.New(addr, opts...)
	n.peers[addr] = p
	return p
}

// ---- role resolution ----

// owner resolves the primary serving u's partition under the current
// map. local reports whether that primary is this node.
func (n *Node) owner(u core.UserID) (p int, primary *wire.NodeInfo, local bool) {
	p = n.cl.Partition(u)
	primary = n.nm.Load().Primary(p)
	local = primary != nil && primary.ID == n.self.ID
	return p, primary, local
}

// notPrimaryErr builds the typed rejection for partition p.
func (n *Node) notPrimaryErr(p int) error {
	e := &server.NotPrimaryError{Partition: p}
	if pr := n.nm.Load().Primary(p); pr != nil && pr.ID != n.self.ID {
		e.PrimaryID, e.PrimaryAddr = pr.ID, pr.Addr
	}
	return e
}

// ---- node map application ----

// ApplyNodeMap implements server.NodeMapSink: adopt a pushed map if its
// epoch is newer than the one in force.
func (n *Node) ApplyNodeMap(_ context.Context, m *wire.NodeMap) error {
	if m.Partitions != n.cfg.Partitions {
		return fmt.Errorf("node: pushed map has %d partitions, ring has %d", m.Partitions, n.cfg.Partitions)
	}
	n.applyMap(m)
	return nil
}

// applyMap puts m in force if it is newer, re-gating every partition's
// role: engines this node now serves as primary leave scheduler standby
// (their accumulated import backlog dispatches at once — the
// reconvergence queue); engines it no longer serves drain their leases
// via Evict, hand their state to the new primary, and re-enter standby.
func (n *Node) applyMap(m *wire.NodeMap) {
	n.mapMu.Lock()
	defer n.mapMu.Unlock()
	old := n.nm.Load()
	if old != nil && !supersedes(m, old) {
		return
	}
	newPrimary, _ := roles(m, n.self.ID)
	var oldPrimary map[int]bool
	if old != nil {
		oldPrimary, _ = roles(old, n.self.ID)
	}
	newNodes := map[string]bool{}
	for _, nd := range m.Nodes {
		newNodes[nd.ID] = true
	}

	// Publish the map before re-gating so proxy decisions and rejections
	// already reflect it.
	n.nm.Store(m)

	for p := 0; p < n.cfg.Partitions; p++ {
		e := n.cl.Engine(p)
		wasPrimary := old == nil || oldPrimary[p] // boot: engines start live
		isPrimary := newPrimary[p]
		switch {
		case isPrimary && !wasPrimary:
			// Promotion. When the old primary vanished from the map (died
			// or left) rather than handing off, this is a failover.
			if oldPrim := primaryIn(old, p); oldPrim != "" && !newNodes[oldPrim] {
				n.failovers.Add(1)
			}
			e.SetStandby(false)
			// Every mirrored user re-converges against the new
			// neighbourhood; imports already marked them stale, this
			// catches users imported before the scheduler existed in
			// standby or snapshot-restored ones.
			for _, u := range e.Profiles().Users() {
				e.MarkStale(u)
			}
			n.repl.ensure(p)
		case !isPrimary && wasPrimary:
			// Demotion (node join rebalance, or boot on a non-owned
			// partition). Drain leases so no job for this partition stays
			// out under a lease this node can no longer complete, ship
			// state to the new primary, then park the dispatch side.
			if s := e.Scheduler(); s != nil {
				for _, u := range e.Profiles().Users() {
					s.Evict(u)
				}
			}
			e.SetStandby(true)
			if old != nil {
				n.repl.handoff(p, m)
			}
			n.repl.drop(p)
		case isPrimary:
			n.repl.ensure(p)
		default:
			e.SetStandby(true)
			n.repl.drop(p)
		}
	}
}

// supersedes reports whether map m must replace the map in force. A
// higher epoch always wins. At an equal epoch, two *different*
// coordinators have raced a publish (a partial partition where each saw
// its own alive majority); the lower coordinator ID wins the tie, so
// every node both publishers can reach converges on one map instead of
// keeping whichever push arrived first.
func supersedes(m, cur *wire.NodeMap) bool {
	if m.Epoch != cur.Epoch {
		return m.Epoch > cur.Epoch
	}
	return m.Coordinator != "" && cur.Coordinator != "" && m.Coordinator < cur.Coordinator
}

// primaryIn returns the ID of p's primary in m ("" when m is nil or
// unassigned).
func primaryIn(m *wire.NodeMap, p int) string {
	if m == nil {
		return ""
	}
	if pr := m.Primary(p); pr != nil {
		return pr.ID
	}
	return ""
}

// ---- hyrec.Service ----

// Rate implements hyrec.Service.
func (n *Node) Rate(ctx context.Context, u core.UserID, item core.ItemID, liked bool) error {
	return n.RateBatch(ctx, []core.Rating{{User: u, Item: item, Liked: liked}})
}

// RateBatch implements hyrec.Service: locally-owned ratings are applied
// and synchronously replicated to their partitions' mirrors before the
// ack returns (zero acknowledged-rating loss while the replica is
// reachable); ratings for users owned elsewhere are proxied to their
// primaries.
func (n *Node) RateBatch(ctx context.Context, ratings []core.Rating) error {
	var local []core.Rating
	dirty := map[int][]core.UserID{}
	var remote map[string][]core.Rating // addr → ratings
	for _, r := range ratings {
		p, primary, isLocal := n.owner(r.User)
		if isLocal {
			local = append(local, r)
			dirty[p] = append(dirty[p], r.User)
			continue
		}
		if server.IsForwarded(ctx) || primary == nil {
			return n.notPrimaryErr(p)
		}
		if remote == nil {
			remote = map[string][]core.Rating{}
		}
		remote[primary.Addr] = append(remote[primary.Addr], r)
	}
	if len(local) > 0 {
		if err := n.cl.RateBatch(ctx, local); err != nil {
			return err
		}
		n.repl.shipSync(ctx, dirty)
	}
	for addr, batch := range remote {
		if err := n.peer(addr).RateBatch(ctx, batch); err != nil {
			return err
		}
	}
	return nil
}

// Job implements hyrec.Service.
func (n *Node) Job(ctx context.Context, u core.UserID) (*wire.Job, error) {
	p, primary, local := n.owner(u)
	if local {
		return n.cl.Job(ctx, u)
	}
	if server.IsForwarded(ctx) || primary == nil {
		return nil, n.notPrimaryErr(p)
	}
	return n.peer(primary.Addr).Job(ctx, u)
}

// AppendJobPayload implements server.PayloadAppender. The local path is
// the embedded cluster's zero-allocation append; the proxy path fetches
// the owner's exact payload bytes (client.JobRaw), so a proxied payload
// is byte-identical to one served by the owner directly.
func (n *Node) AppendJobPayload(ctx context.Context, u core.UserID, jsonDst, gzDst []byte) (jsonBody, gzBody []byte, err error) {
	p, primary, local := n.owner(u)
	if local {
		return n.cl.AppendJobPayload(ctx, u, jsonDst, gzDst)
	}
	if server.IsForwarded(ctx) || primary == nil {
		return nil, nil, n.notPrimaryErr(p)
	}
	raw, err := n.peer(primary.Addr).JobRaw(ctx, u)
	if err != nil {
		return nil, nil, err
	}
	jsonBody = append(jsonDst[:0], raw...)
	gzBody, err = wire.AppendGzip(gzDst[:0], jsonBody, n.cfg.Engine.GzipLevel)
	if err != nil {
		return nil, nil, err
	}
	return jsonBody, gzBody, nil
}

// AppendJobJSON implements server.JSONJobAppender: the framed plane's
// gzip-free twin of AppendJobPayload. The proxy path already carries
// raw JSON bytes (client.JobRaw), so neither leg compresses anything.
func (n *Node) AppendJobJSON(ctx context.Context, u core.UserID, jsonDst []byte) ([]byte, error) {
	p, primary, local := n.owner(u)
	if local {
		return n.cl.AppendJobJSON(ctx, u, jsonDst)
	}
	if server.IsForwarded(ctx) || primary == nil {
		return nil, n.notPrimaryErr(p)
	}
	raw, err := n.peer(primary.Addr).JobRaw(ctx, u)
	if err != nil {
		return nil, err
	}
	return append(jsonDst[:0], raw...), nil
}

// ApplyResult implements hyrec.Service. The partition is routed by the
// result's lease lane when present (every node mints identical lanes),
// falling back to pseudonym resolution — identical anonymiser seeds make
// an alias minted by the owner resolvable on any node that has not
// rotated past it. A result landing on the partition's replica is
// rejected typed (never silently folded into the mirror); other
// non-owners proxy to the primary.
func (n *Node) ApplyResult(ctx context.Context, res *wire.Result) ([]core.ItemID, error) {
	p := -1
	if res.Lease != 0 {
		p = n.cl.LanePartition(res.Lease)
	}
	if p < 0 {
		if u, ok := n.cl.ResolveUser(core.UserID(res.UID), res.Epoch); ok {
			p = n.cl.Partition(u)
		}
	}
	if p < 0 {
		// Unroutable everywhere — surface the cluster's typed rejection.
		return n.cl.ApplyResult(ctx, res)
	}
	m := n.nm.Load()
	primary := m.Primary(p)
	if primary != nil && primary.ID == n.self.ID {
		recs, err := n.cl.ApplyResult(ctx, res)
		if err == nil {
			if u, ok := n.cl.ResolveUser(core.UserID(res.UID), res.Epoch); ok {
				n.repl.markDirty(p, u)
			}
		}
		return recs, err
	}
	if replica := m.Replica(p); replica != nil && replica.ID == n.self.ID {
		// The mirror must not fold results in: its tables are a replica
		// of the primary's history, not a second authority.
		return nil, n.notPrimaryErr(p)
	}
	if server.IsForwarded(ctx) || primary == nil {
		return nil, n.notPrimaryErr(p)
	}
	return n.peer(primary.Addr).ApplyResult(ctx, res)
}

// Ack implements server.LeaseAcker under the same role gate as
// ApplyResult: primaries ack locally, replicas reject typed, everyone
// else proxies.
func (n *Node) Ack(ctx context.Context, lease uint64, done bool) error {
	p := n.cl.LanePartition(lease)
	if p < 0 {
		return fmt.Errorf("%w: %d", server.ErrUnknownLease, lease)
	}
	m := n.nm.Load()
	primary := m.Primary(p)
	if primary != nil && primary.ID == n.self.ID {
		return n.cl.Ack(ctx, lease, done)
	}
	if replica := m.Replica(p); replica != nil && replica.ID == n.self.ID {
		return n.notPrimaryErr(p)
	}
	if server.IsForwarded(ctx) || primary == nil {
		return n.notPrimaryErr(p)
	}
	return n.peer(primary.Addr).Ack(ctx, lease, done)
}

// NextJob implements server.JobSource: only locally-primary partitions
// dispatch (standby schedulers park their backlog), so a worker attached
// to this node computes only for users this node owns.
func (n *Node) NextJob(ctx context.Context) (*wire.Job, error) { return n.cl.NextJob(ctx) }

// Recommendations implements hyrec.Service.
func (n *Node) Recommendations(ctx context.Context, u core.UserID, k int) ([]core.ItemID, error) {
	p, primary, local := n.owner(u)
	if local {
		return n.cl.Recommendations(ctx, u, k)
	}
	if server.IsForwarded(ctx) || primary == nil {
		return nil, n.notPrimaryErr(p)
	}
	return n.peer(primary.Addr).Recommendations(ctx, u, k)
}

// Neighbors implements hyrec.Service.
func (n *Node) Neighbors(ctx context.Context, u core.UserID) ([]core.UserID, error) {
	p, primary, local := n.owner(u)
	if local {
		return n.cl.Neighbors(ctx, u)
	}
	if server.IsForwarded(ctx) || primary == nil {
		return nil, n.notPrimaryErr(p)
	}
	return n.peer(primary.Addr).Neighbors(ctx, u)
}

// ---- capability interfaces ----

// Replicate implements server.Replicator: ingest a primary's batch.
// Batches for partitions this node neither mirrors nor owns are
// rejected typed. Two ingest disciplines make delivery idempotent under
// duplication and reordering:
//
//   - A mirror installs each record as a verbatim snapshot, but only
//     when the batch's (epoch, seq) — monotone over the primary's reign
//     and across reigns — is newer than the last record applied for
//     that user. The newest snapshot wins regardless of arrival order;
//     older and duplicate records are dropped at the gate.
//   - A primary (the handoff tail of a rebalance, or a just-promoted
//     replica catching a straggler) merges destination-wins
//     (ImportUsers), so opinions it accepted since taking over are
//     never clobbered by an in-flight older snapshot.
func (n *Node) Replicate(_ context.Context, b *wire.ReplBatch) (*wire.ReplAck, error) {
	if b.Partition >= n.cfg.Partitions {
		return nil, fmt.Errorf("node: repl batch for partition %d, ring has %d", b.Partition, n.cfg.Partitions)
	}
	m := n.nm.Load()
	selfReplica := false
	if r := m.Replica(b.Partition); r != nil && r.ID == n.self.ID {
		selfReplica = true
	}
	selfPrimary := false
	if pr := m.Primary(b.Partition); pr != nil && pr.ID == n.self.ID {
		selfPrimary = true
	}
	if !selfReplica && !selfPrimary {
		return nil, n.notPrimaryErr(b.Partition)
	}
	states := make([]server.UserState, 0, len(b.Users))
	for _, ru := range b.Users {
		st, err := replUserState(ru)
		if err != nil {
			return nil, err
		}
		states = append(states, st)
	}
	e := n.cl.Engine(b.Partition)
	if selfPrimary {
		e.ImportUsers(states)
		return &wire.ReplAck{Applied: len(states), Seq: b.Seq}, nil
	}
	fresh := n.gateFresh(b, states)
	e.ImportUsersSnapshot(fresh)
	return &wire.ReplAck{Applied: len(fresh), Seq: b.Seq}, nil
}

// replVer orders replication records: lexicographic (epoch, seq).
type replVer struct{ epoch, seq uint64 }

func (v replVer) newer(than replVer) bool {
	return v.epoch > than.epoch || (v.epoch == than.epoch && v.seq > than.seq)
}

// gateFresh filters a mirror batch down to records newer than anything
// already applied for their user, recording the new high-water marks.
func (n *Node) gateFresh(b *wire.ReplBatch, states []server.UserState) []server.UserState {
	v := replVer{epoch: b.Epoch, seq: b.Seq}
	n.seenMu.Lock()
	defer n.seenMu.Unlock()
	ps := n.seen[b.Partition]
	if ps == nil {
		ps = map[core.UserID]replVer{}
		n.seen[b.Partition] = ps
	}
	fresh := states[:0]
	for _, st := range states {
		u := st.Profile.User()
		if have, ok := ps[u]; ok && !v.newer(have) {
			continue
		}
		ps[u] = v
		fresh = append(fresh, st)
	}
	return fresh
}

// RotateAnonymizer implements server.Rotator on every local engine.
// Deployments that rotate must do so on every node with the same period,
// or cross-node pseudonym resolution drifts (a drifted result surfaces
// as stale_epoch and is re-issued — safe, but wasteful).
func (n *Node) RotateAnonymizer() { n.cl.RotateAnonymizers() }

// ResolveUser implements server.UserResolver.
func (n *Node) ResolveUser(alias core.UserID, epoch uint64) (core.UserID, bool) {
	return n.cl.ResolveUser(alias, epoch)
}

// Config implements server.Configured.
func (n *Node) Config() server.Config { return n.cl.Config() }

// CountWorkerJob implements server.WorkerJobMeter.
func (n *Node) CountWorkerJob(job *wire.Job, jsonBytes, gzBytes int) {
	n.cl.CountWorkerJob(job, jsonBytes, gzBytes)
}

// Topology implements server.TopologyProvider: the embedded cluster's
// ring shape plus the node map in force.
func (n *Node) Topology() wire.Topology {
	t := n.cl.Topology()
	m := n.nm.Load()
	t.NodeEpoch = m.Epoch
	t.Nodes = m.Nodes
	t.Self = n.self.ID
	t.NodeCoordinator = m.Coordinator
	return t
}

// LocateUser implements server.UserLocator.
func (n *Node) LocateUser(u core.UserID) (wire.NodeRef, bool) {
	p := n.cl.Partition(u)
	pr := n.nm.Load().Primary(p)
	if pr == nil {
		return wire.NodeRef{}, false
	}
	return wire.NodeRef{ID: pr.ID, Addr: pr.Addr, Partition: p}, true
}

// Stats implements server.StatsProvider: the embedded cluster's counters
// with the scheduler roll-up restricted to locally-primary partitions
// (a standby mirror's parked backlog is the primary's convergence debt,
// not this node's), plus the replication gauges.
func (n *Node) Stats() map[string]any {
	stats := n.cl.Stats()
	m := n.nm.Load()
	primary, replica := roles(m, n.self.ID)
	server.AddSchedStats(stats, schedStatsFor(n.cl, primary))
	stats["nodes"] = int64(len(m.Nodes))
	stats["node_epoch"] = int64(m.Epoch)
	stats["node_id"] = n.self.ID
	stats["node_role"] = roleName(len(primary), len(replica))
	stats["node_partitions_primary"] = int64(len(primary))
	stats["node_partitions_replica"] = int64(len(replica))
	stats["replica_lag_users"] = n.repl.lag()
	stats["replica_backlog_users"] = n.repl.backlogHighWater()
	stats["failovers_total"] = n.failovers.Load()
	return stats
}

func roleName(primaries, replicas int) string {
	switch {
	case primaries > 0:
		return "primary"
	case replicas > 0:
		return "replica"
	default:
		return "idle"
	}
}

// schedStatsFor aggregates scheduler stats over the given partitions
// only — a standby mirror's parked backlog must not count against this
// node's convergence gauges.
func schedStatsFor(cl *cluster.Cluster, parts map[int]bool) sched.Stats {
	var agg sched.Stats
	for p := range parts {
		s := cl.Engine(p).Scheduler()
		if s == nil {
			continue
		}
		st := s.Stats()
		agg.Issued += st.Issued
		agg.Dispatched += st.Dispatched
		agg.Acked += st.Acked
		agg.Abandoned += st.Abandoned
		agg.Expired += st.Expired
		agg.Reissued += st.Reissued
		agg.FallbackRuns += st.FallbackRuns
		agg.FallbackErrors += st.FallbackErrors
		agg.Pending += st.Pending
		agg.Leased += st.Leased
		agg.FallbackQueued += st.FallbackQueued
		agg.Unrefreshed += st.Unrefreshed
	}
	return agg
}

// replUserState converts a wire replication record to the engine's
// import form.
func replUserState(ru wire.ReplUser) (server.UserState, error) {
	u := core.UserID(ru.UID)
	liked := make([]core.ItemID, len(ru.Liked))
	for i, it := range ru.Liked {
		liked[i] = core.ItemID(it)
	}
	disliked := make([]core.ItemID, len(ru.Disliked))
	for i, it := range ru.Disliked {
		disliked[i] = core.ItemID(it)
	}
	prof, err := core.ProfileFromSets(u, liked, disliked)
	if err != nil {
		return server.UserState{}, fmt.Errorf("node: repl user %d: %w", ru.UID, err)
	}
	st := server.UserState{Profile: prof}
	if len(ru.Neighbors) > 0 {
		st.Neighbors = make([]core.UserID, len(ru.Neighbors))
		for i, v := range ru.Neighbors {
			st.Neighbors[i] = core.UserID(v)
		}
	}
	if len(ru.Recs) > 0 {
		st.Recs = make([]core.ItemID, len(ru.Recs))
		for i, v := range ru.Recs {
			st.Recs[i] = core.ItemID(v)
		}
	}
	return st, nil
}

// replUserFromState is the inverse: engine export → wire record.
func replUserFromState(st server.UserState) wire.ReplUser {
	ru := wire.ReplUser{UID: uint32(st.Profile.User())}
	for _, it := range st.Profile.Liked() {
		ru.Liked = append(ru.Liked, uint32(it))
	}
	for _, it := range st.Profile.Disliked() {
		ru.Disliked = append(ru.Disliked, uint32(it))
	}
	for _, v := range st.Neighbors {
		ru.Neighbors = append(ru.Neighbors, uint32(v))
	}
	for _, v := range st.Recs {
		ru.Recs = append(ru.Recs, uint32(v))
	}
	return ru
}

// Compile-time check: a node is a full-capability service.
var (
	_ server.Service          = (*Node)(nil)
	_ server.PayloadAppender  = (*Node)(nil)
	_ server.JobSource        = (*Node)(nil)
	_ server.LeaseAcker       = (*Node)(nil)
	_ server.Rotator          = (*Node)(nil)
	_ server.UserResolver     = (*Node)(nil)
	_ server.Configured       = (*Node)(nil)
	_ server.StatsProvider    = (*Node)(nil)
	_ server.WorkerJobMeter   = (*Node)(nil)
	_ server.TopologyProvider = (*Node)(nil)
	_ server.Replicator       = (*Node)(nil)
	_ server.NodeMapSink      = (*Node)(nil)
	_ server.UserLocator      = (*Node)(nil)
	_ server.NodeEpocher      = (*Node)(nil)
)
