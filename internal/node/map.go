// Package node is HyRec's multi-process distribution layer: it spans the
// consistent-hash ring (internal/cluster) across OS processes. Every
// node embeds a full in-process Cluster — identical engines, seeds and
// lease lanes on every node, so all processes agree on routing and
// pseudonym spaces by construction — but serves only the partitions the
// published node map assigns it as primary; the rest run their
// schedulers in standby as replica mirrors or sit empty.
//
// A node is a full hyrec.Service: requests for users it does not own are
// proxied to the owning node through the typed client, so callers can
// hit any node. Each primary partition streams its state to one
// ring-distinct replica (repl.go); heartbeats detect node death and a
// coordinator promotes replicas by publishing a higher-epoch node map
// (failover.go).
package node

import (
	"sort"

	"hyrec/internal/wire"
)

// Member is one node's static identity: a unique ID (coordinator
// election orders by it), the base URL peers dial it on, and the
// optional framed-transport address (host:port) peers prefer for the
// replication and proxy hot paths.
type Member struct {
	ID        string
	Addr      string
	FrameAddr string
}

// BuildMap assigns every ring partition a primary and (when at least
// two nodes are alive) one replica over the alive member set, by
// rendezvous (highest-random-weight) hashing: the primary of partition p
// is the alive node with the highest hash(node, p), the replica the
// second-highest — necessarily a different node, the "ring-distinct"
// placement. The assignment is a pure function of (alive set, partition
// count), so every process computes the same map without coordination,
// and removing one node only reassigns the partitions that node held.
func BuildMap(alive []Member, partitions int, epoch uint64) *wire.NodeMap {
	members := append([]Member(nil), alive...)
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	m := &wire.NodeMap{Epoch: epoch, Partitions: partitions, Nodes: make([]wire.NodeInfo, len(members))}
	for i, mb := range members {
		m.Nodes[i] = wire.NodeInfo{ID: mb.ID, Addr: mb.Addr, FrameAddr: mb.FrameAddr}
	}
	if len(members) == 0 {
		return m
	}
	for p := 0; p < partitions; p++ {
		best, second := -1, -1
		var bestW, secondW uint64
		for i, mb := range members {
			w := rendezvousWeight(mb.ID, p)
			switch {
			case best < 0 || w > bestW:
				second, secondW = best, bestW
				best, bestW = i, w
			case second < 0 || w > secondW:
				second, secondW = i, w
			}
		}
		m.Nodes[best].Primary = append(m.Nodes[best].Primary, p)
		if second >= 0 {
			m.Nodes[second].Replica = append(m.Nodes[second].Replica, p)
		}
	}
	return m
}

// rendezvousWeight scores (node, partition) pairs with an FNV-1a hash
// finished by a splitmix-style avalanche — stable across processes and
// Go versions, unlike map iteration or math/rand.
func rendezvousWeight(id string, partition int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	h ^= uint64(partition) + 0x9e3779b97f4a7c15
	h *= prime64
	// Avalanche so adjacent partition indexes decorrelate.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// roles summarizes one node's view of a map: the partitions it serves
// as primary and those it mirrors.
func roles(m *wire.NodeMap, self string) (primary, replica map[int]bool) {
	primary, replica = map[int]bool{}, map[int]bool{}
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if n.ID != self {
			continue
		}
		for _, p := range n.Primary {
			primary[p] = true
		}
		for _, p := range n.Replica {
			replica[p] = true
		}
	}
	return primary, replica
}
