package node

import (
	"context"
	"sort"
	"sync"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// replicator is the per-node replication pump. For every partition this
// node serves as primary it keeps a dirty set — users whose state has
// changed since it was last shipped to the partition's replica. The
// RateBatch path ships its dirtied users synchronously before the ack
// returns (shipSync); worker results and fallback refreshes land in the
// dirty set and ride the async tail (flushAll, every ReplicateEvery);
// a periodic full-state pass (fullSyncAll) bounds divergence from any
// lost tail batch. All shipping reuses the PR-5 migration surface:
// ExportUsers on the source, ImportUsers' destination-wins merge on the
// mirror, so duplicate and reordered delivery are idempotent.
// defaultReplBacklog is the per-partition dirty-set cap when
// Config.ReplBacklog is zero.
const defaultReplBacklog = 8192

type replicator struct {
	n *Node

	mu    sync.Mutex
	parts map[int]*replPart
	// backlogCap bounds each partition's dirty set (0 = unlimited): a
	// long-dead mirror must not grow the backlog without bound. When a
	// partition trips the cap its dirty set collapses into one needFull
	// flag — "re-ship everything" is constant-size state, and the full
	// anti-entropy export covers whatever the dropped set recorded.
	backlogCap int
	// dirtyTotal / backlogHW track the current and high-water total
	// dirty users across partitions (the replica_backlog_users gauge).
	dirtyTotal int64
	backlogHW  int64

	// shipMu serializes, per partition, the engine-state export with its
	// seq allocation (exportBatches). Lock instances are never removed —
	// a partition dropped mid-ship must still order against the ship in
	// flight — and the map is bounded by the ring size.
	shipMu map[int]*sync.Mutex
}

type replPart struct {
	dirty map[core.UserID]struct{}
	seq   uint64
	// needFull records that this partition's backlog tripped the cap:
	// the dirty set was dropped and the next flush re-ships the
	// partition's full state instead. While set, new dirt is skipped —
	// the pending full export covers it, because flushAll clears the
	// flag before exporting (every drop happens before its covering
	// export reads state).
	needFull bool
}

func newReplicator(n *Node) *replicator {
	cap := n.cfg.ReplBacklog
	if cap == 0 {
		cap = defaultReplBacklog
	}
	if cap < 0 {
		cap = 0 // explicit "unlimited"
	}
	return &replicator{n: n, parts: map[int]*replPart{}, shipMu: map[int]*sync.Mutex{}, backlogCap: cap}
}

// shipLock returns p's export-order lock, creating it on first use.
func (r *replicator) shipLock(p int) *sync.Mutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	mu, ok := r.shipMu[p]
	if !ok {
		mu = &sync.Mutex{}
		r.shipMu[p] = mu
	}
	return mu
}

// ensure starts tracking partition p (idempotent).
func (r *replicator) ensure(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.parts[p]; !ok {
		r.parts[p] = &replPart{dirty: map[core.UserID]struct{}{}}
	}
}

// drop stops tracking partition p (this node is no longer its primary).
func (r *replicator) drop(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.parts[p]; ok {
		r.dirtyTotal -= int64(len(st.dirty))
	}
	delete(r.parts, p)
}

// addDirtyLocked records u in st's dirty set under r.mu, enforcing the
// backlog cap: past it, the set collapses into st.needFull and further
// dirt is skipped until the full re-ship runs.
func (r *replicator) addDirtyLocked(st *replPart, u core.UserID) {
	if st.needFull {
		return
	}
	if _, ok := st.dirty[u]; ok {
		return
	}
	if r.backlogCap > 0 && len(st.dirty) >= r.backlogCap {
		st.needFull = true
		r.dirtyTotal -= int64(len(st.dirty))
		st.dirty = map[core.UserID]struct{}{}
		return
	}
	st.dirty[u] = struct{}{}
	r.dirtyTotal++
	if r.dirtyTotal > r.backlogHW {
		r.backlogHW = r.dirtyTotal
	}
}

// markDirty queues u for the async tail. A no-op for partitions this
// node does not track (it is not their primary).
func (r *replicator) markDirty(p int, u core.UserID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.parts[p]; ok {
		r.addDirtyLocked(st, u)
	}
}

// requeue puts users back in p's dirty set after a failed ship —
// subject to the same backlog cap as fresh dirt, so repeated ship
// failures against a dead mirror degrade into the needFull flag
// instead of an ever-growing set.
func (r *replicator) requeue(p int, users []core.UserID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.parts[p]
	if !ok {
		return
	}
	for _, u := range users {
		r.addDirtyLocked(st, u)
	}
}

// takeDirty drains and returns p's dirty set.
func (r *replicator) takeDirty(p int) []core.UserID {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.parts[p]
	if !ok || len(st.dirty) == 0 {
		return nil
	}
	users := make([]core.UserID, 0, len(st.dirty))
	for u := range st.dirty {
		users = append(users, u)
	}
	r.dirtyTotal -= int64(len(st.dirty))
	st.dirty = map[core.UserID]struct{}{}
	return users
}

// takeNeedFull reports and clears p's pending-full-re-ship flag. The
// clear-before-export ordering matters: dirt arriving after the clear
// is tracked normally, dirt that arrived before it is covered by the
// export the caller is about to run (which reads current state).
func (r *replicator) takeNeedFull(p int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.parts[p]
	if !ok || !st.needFull {
		return false
	}
	st.needFull = false
	return true
}

// setNeedFull re-arms p's full re-ship after a failed one.
func (r *replicator) setNeedFull(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.parts[p]; ok {
		st.needFull = true
	}
}

// backlogHighWater is the replica_backlog_users gauge: the most dirty
// users ever pending at once across partitions.
func (r *replicator) backlogHighWater() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.backlogHW
}

func (r *replicator) nextSeq(p int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.parts[p]
	if !ok {
		return 0
	}
	st.seq++
	return st.seq
}

// partitions snapshots the tracked partition set in stable order.
func (r *replicator) partitions() []int {
	r.mu.Lock()
	out := make([]int, 0, len(r.parts))
	for p := range r.parts {
		out = append(out, p)
	}
	r.mu.Unlock()
	sort.Ints(out)
	return out
}

// lag is the hyrec_replica_lag_users gauge: users whose latest state has
// not yet been acknowledged by their partition's replica.
func (r *replicator) lag() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, st := range r.parts {
		n += int64(len(st.dirty))
	}
	return n
}

// replicaAddr resolves the replica destination for p under the current
// map. ok is false when the partition has no distinct replica (a
// single-node deployment, or mid-failover before a new map is in force).
func (r *replicator) replicaAddr(p int) (string, bool) {
	rep := r.n.nm.Load().Replica(p)
	if rep == nil || rep.ID == r.n.self.ID {
		return "", false
	}
	return rep.Addr, true
}

// ship exports the listed users from p's engine and streams them to
// dstAddr in MaxReplUsers-sized batches. Unknown users are skipped by
// ExportUsers; an error leaves delivery incomplete and the caller
// decides whether to requeue.
func (r *replicator) ship(ctx context.Context, p int, users []core.UserID, full bool, dstAddr string) error {
	batches := r.exportBatches(p, users, full)
	peer := r.n.peer(dstAddr)
	for _, b := range batches {
		if _, err := peer.Replicate(ctx, b); err != nil {
			return err
		}
	}
	return nil
}

// exportBatches snapshots the users' engine state and stamps each chunk
// with the next (epoch, seq) under p's ship lock: the state read and
// the seq allocation are one atomic step, so of two racing ships the
// one that exported *later* state always carries the higher stamp.
// Without that ordering, a ship that exported before an overlapping
// rating but allocated its seq after the rating's own ship would hand
// the mirror a staler snapshot under a newer stamp — the recency gate
// would install it verbatim, silently dropping an acknowledged rating
// from the replica. Delivery itself happens outside the lock; the
// mirror's per-user gate reorders whatever the network interleaves.
func (r *replicator) exportBatches(p int, users []core.UserID, full bool) []*wire.ReplBatch {
	mu := r.shipLock(p)
	mu.Lock()
	defer mu.Unlock()
	states := r.n.cl.Engine(p).ExportUsers(users)
	if len(states) == 0 {
		return nil
	}
	epoch := r.n.nm.Load().Epoch
	batches := make([]*wire.ReplBatch, 0, (len(states)+wire.MaxReplUsers-1)/wire.MaxReplUsers)
	for start := 0; start < len(states); start += wire.MaxReplUsers {
		end := min(start+wire.MaxReplUsers, len(states))
		b := &wire.ReplBatch{
			Epoch:     epoch,
			Partition: p,
			Seq:       r.nextSeq(p),
			Full:      full,
			Users:     make([]wire.ReplUser, 0, end-start),
		}
		for _, st := range states[start:end] {
			b.Users = append(b.Users, replUserFromState(st))
		}
		batches = append(batches, b)
	}
	return batches
}

// shipSync is the semi-synchronous leg of RateBatch: the dirtied users'
// state goes to the replica before the rating ack returns, so an
// acknowledged rating survives the immediate death of its primary. When
// the replica is unreachable (it may be the node that just died), the
// users fall back to the async tail — the coordinator will have
// published a new map by the time it runs.
func (r *replicator) shipSync(ctx context.Context, dirty map[int][]core.UserID) {
	for p, users := range dirty {
		users = dedupeUsers(users)
		addr, ok := r.replicaAddr(p)
		if !ok {
			continue
		}
		if err := r.ship(ctx, p, users, false, addr); err != nil {
			r.requeue(p, users)
		}
	}
}

// flushAll drains every partition's dirty set to its replica — the
// async tail. Failed partitions are requeued for the next tick. A
// partition whose backlog tripped the cap gets a full-state re-ship
// instead, the anti-entropy fallback that makes the dropped dirty set
// safe. The needFull flag is cleared *before* the export so the
// drop-before-covering-export invariant holds (see replPart.needFull);
// a failed full ship re-arms it.
func (r *replicator) flushAll(ctx context.Context) {
	for _, p := range r.partitions() {
		needFull := r.takeNeedFull(p)
		users := r.takeDirty(p)
		if !needFull && len(users) == 0 {
			continue
		}
		addr, ok := r.replicaAddr(p)
		if !ok {
			continue // no replica configured: nothing owes this state
		}
		if needFull {
			// The dirty users are a subset of the partition's full state,
			// so the full shipment covers the drained set too.
			all := r.n.cl.Engine(p).Profiles().Users()
			if err := r.ship(ctx, p, all, true, addr); err != nil {
				r.setNeedFull(p)
			}
			continue
		}
		if err := r.ship(ctx, p, users, false, addr); err != nil {
			r.requeue(p, users)
		}
	}
}

// fullSyncAll is the anti-entropy pass: re-ship every known user of
// every primary partition. Errors are dropped — the next pass repeats
// the full state anyway. A successful pass also discharges a pending
// needFull re-ship (cleared before the export, like flushAll, so a
// backlog trip racing the delivery re-arms rather than being lost).
func (r *replicator) fullSyncAll(ctx context.Context) {
	for _, p := range r.partitions() {
		addr, ok := r.replicaAddr(p)
		if !ok {
			continue
		}
		needFull := r.takeNeedFull(p)
		users := r.n.cl.Engine(p).Profiles().Users()
		if len(users) == 0 {
			continue
		}
		if err := r.ship(ctx, p, users, true, addr); err != nil && needFull {
			r.setNeedFull(p)
		}
	}
}

// handoff ships p's full state to its new primary under map m — the
// demotion leg of a rebalance (a node rejoining takes its partitions
// back). Best-effort: the new primary's anti-entropy inherits whatever
// a failed handoff missed, since this node stays p's replica.
func (r *replicator) handoff(p int, m *wire.NodeMap) {
	pr := m.Primary(p)
	if pr == nil || pr.ID == r.n.self.ID {
		return
	}
	users := r.n.cl.Engine(p).Profiles().Users()
	if len(users) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.n.cfg.PeerTimeout)
	defer cancel()
	_ = r.ship(ctx, p, users, true, pr.Addr)
}

// loop drives the async tail and the anti-entropy pass until stop.
func (r *replicator) loop(wg *sync.WaitGroup, stop <-chan struct{}) {
	defer wg.Done()
	if r.n.cfg.ReplicateEvery <= 0 {
		<-stop
		return
	}
	tail := time.NewTicker(r.n.cfg.ReplicateEvery)
	defer tail.Stop()
	var antiC <-chan time.Time
	if r.n.cfg.AntiEntropyEvery > 0 {
		anti := time.NewTicker(r.n.cfg.AntiEntropyEvery)
		defer anti.Stop()
		antiC = anti.C
	}
	for {
		select {
		case <-stop:
			// Final drain so a clean shutdown leaves no dirty tail
			// (skipped when killed: SIGKILL gets no goodbye flush).
			if !r.n.killed.Load() {
				ctx, cancel := context.WithTimeout(context.Background(), r.n.cfg.PeerTimeout)
				r.flushAll(ctx)
				cancel()
			}
			return
		case <-tail.C:
			ctx, cancel := context.WithTimeout(context.Background(), r.n.cfg.PeerTimeout)
			r.flushAll(ctx)
			cancel()
		case <-antiC:
			ctx, cancel := context.WithTimeout(context.Background(), 2*r.n.cfg.PeerTimeout)
			r.fullSyncAll(ctx)
			cancel()
		}
	}
}

func dedupeUsers(users []core.UserID) []core.UserID {
	if len(users) < 2 {
		return users
	}
	seen := make(map[core.UserID]struct{}, len(users))
	out := users[:0]
	for _, u := range users {
		if _, ok := seen[u]; ok {
			continue
		}
		seen[u] = struct{}{}
		out = append(out, u)
	}
	return out
}
