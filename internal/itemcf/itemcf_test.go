package itemcf

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"hyrec/internal/core"
)

func likeOnly(t *testing.T, u core.UserID, items ...core.ItemID) core.Profile {
	t.Helper()
	p, err := core.ProfileFromSets(u, items, nil)
	if err != nil {
		t.Fatalf("ProfileFromSets: %v", err)
	}
	return p
}

func TestBuildCorrelationsCosine(t *testing.T) {
	// Users 1,2 like {10, 11}; user 3 likes {10, 12}.
	profiles := []core.Profile{
		likeOnly(t, 1, 10, 11),
		likeOnly(t, 2, 10, 11),
		likeOnly(t, 3, 10, 12),
	}
	tbl := BuildCorrelations(profiles, 0, 10, 0)

	// likers: 10→3, 11→2, 12→1.
	if got := tbl.Likers(10); got != 3 {
		t.Fatalf("likers(10) = %d", got)
	}
	// corr(10,11) = 2/sqrt(3·2).
	want := 2 / math.Sqrt(6)
	if got := corrOf(tbl, 10, 11); math.Abs(got-want) > 1e-12 {
		t.Errorf("corr(10,11) = %v, want %v", got, want)
	}
	// corr(10,12) = 1/sqrt(3·1).
	want = 1 / math.Sqrt(3)
	if got := corrOf(tbl, 10, 12); math.Abs(got-want) > 1e-12 {
		t.Errorf("corr(10,12) = %v, want %v", got, want)
	}
	// 11 and 12 are never co-liked.
	if got := corrOf(tbl, 11, 12); got != 0 {
		t.Errorf("corr(11,12) = %v, want 0", got)
	}
}

func corrOf(tbl *CorrelationTable, i, j core.ItemID) float64 {
	for _, nb := range tbl.Row(i) {
		if nb.Item == j {
			return nb.Corr
		}
	}
	return 0
}

func TestBuildCorrelationsSymmetric(t *testing.T) {
	profiles := []core.Profile{
		likeOnly(t, 1, 1, 2, 3),
		likeOnly(t, 2, 2, 3, 4),
		likeOnly(t, 3, 1, 3, 4),
	}
	tbl := BuildCorrelations(profiles, 0, 10, 0)
	for i := core.ItemID(1); i <= 4; i++ {
		for j := core.ItemID(1); j <= 4; j++ {
			if math.Abs(corrOf(tbl, i, j)-corrOf(tbl, j, i)) > 1e-12 {
				t.Fatalf("corr(%v,%v) asymmetric", i, j)
			}
		}
	}
}

func TestBuildCorrelationsTopLTrims(t *testing.T) {
	// Item 0 co-occurs with 20 other items; TopL=5 must keep 5.
	var profiles []core.Profile
	for i := 1; i <= 20; i++ {
		profiles = append(profiles, likeOnly(t, core.UserID(i), 0, core.ItemID(i)))
	}
	tbl := BuildCorrelations(profiles, 0, 5, 0)
	if got := len(tbl.Row(0)); got != 5 {
		t.Fatalf("row(0) length = %d, want 5", got)
	}
}

func TestBuildCorrelationsRowsSortedAndBounded(t *testing.T) {
	prop := func(seed int64) bool {
		// Small random population.
		profiles := make([]core.Profile, 0, 8)
		next := uint64(seed)
		rnd := func(mod int) int {
			next = next*6364136223846793005 + 1442695040888963407
			return int((next >> 33) % uint64(mod))
		}
		for u := 0; u < 8; u++ {
			items := make([]core.ItemID, 0, 6)
			for n := 0; n < 6; n++ {
				items = append(items, core.ItemID(rnd(12)))
			}
			p, err := core.ProfileFromSets(core.UserID(u), items, nil)
			if err != nil {
				return false
			}
			profiles = append(profiles, p)
		}
		tbl := BuildCorrelations(profiles, 0, 4, 0)
		for i := core.ItemID(0); i < 12; i++ {
			row := tbl.Row(i)
			if len(row) > 4 {
				return false
			}
			for n, nb := range row {
				if nb.Corr <= 0 || nb.Corr > 1+1e-9 {
					return false
				}
				if n > 0 && row[n-1].Corr < nb.Corr {
					return false
				}
				if nb.Item == i {
					return false // no self-correlation
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPairsPerUserCapsWork(t *testing.T) {
	// One profile with 40 likes would contribute 780 pairs uncapped.
	items := make([]core.ItemID, 40)
	for i := range items {
		items[i] = core.ItemID(i)
	}
	p, err := core.ProfileFromSets(1, items, nil)
	if err != nil {
		t.Fatal(err)
	}
	capped := BuildCorrelations([]core.Profile{p}, 0, 100, 10)
	pairCount := 0
	seen := map[[2]core.ItemID]bool{}
	for i := core.ItemID(0); i < 40; i++ {
		for _, nb := range capped.Row(i) {
			key := [2]core.ItemID{i, nb.Item}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if !seen[key] {
				seen[key] = true
				pairCount++
			}
		}
	}
	if pairCount != 10 {
		t.Fatalf("capped build produced %d pairs, want 10", pairCount)
	}
}

func TestRecommendFromCorrelations(t *testing.T) {
	// Population: many users co-like (1,2) and (1,3); 3 more than 2.
	profiles := []core.Profile{
		likeOnly(t, 1, 1, 3),
		likeOnly(t, 2, 1, 3),
		likeOnly(t, 3, 1, 3),
		likeOnly(t, 4, 1, 2),
		likeOnly(t, 5, 1, 2),
	}
	tbl := BuildCorrelations(profiles, 0, 10, 0)
	me := likeOnly(t, 99, 1)
	recs := RecommendFromCorrelations(me, tbl, 2)
	if len(recs) != 2 || recs[0] != 3 || recs[1] != 2 {
		t.Fatalf("recs = %v, want [3 2]", recs)
	}
}

func TestRecommendSkipsSeenItems(t *testing.T) {
	profiles := []core.Profile{
		likeOnly(t, 1, 1, 2),
		likeOnly(t, 2, 1, 2),
	}
	tbl := BuildCorrelations(profiles, 0, 10, 0)
	me := likeOnly(t, 99, 1, 2) // already seen item 2
	if recs := RecommendFromCorrelations(me, tbl, 5); len(recs) != 0 {
		t.Fatalf("recommended seen items: %v", recs)
	}
}

func TestRecommendNilTableAndZeroR(t *testing.T) {
	me := likeOnly(t, 1, 1)
	if got := RecommendFromCorrelations(me, nil, 5); got != nil {
		t.Fatalf("nil table → %v", got)
	}
	tbl := BuildCorrelations([]core.Profile{me}, 0, 10, 0)
	if got := RecommendFromCorrelations(me, tbl, 0); got != nil {
		t.Fatalf("r=0 → %v", got)
	}
}

func TestSystemStaleness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClientRefresh = 0 // clients always see the server table
	sys := New(cfg)
	day := 24 * time.Hour

	// Build community: users 1-3 like items 1,2 at t=0. The first rating
	// triggers the initial build.
	for u := core.UserID(1); u <= 3; u++ {
		sys.Rate(0, core.Rating{User: u, Item: 1, Liked: true})
		sys.Rate(0, core.Rating{User: u, Item: 2, Liked: true})
	}
	if sys.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d, want 1 (initial)", sys.Rebuilds())
	}

	// New co-liked item appears right after the build: correlations are
	// stale, so it must NOT be recommendable yet.
	for u := core.UserID(2); u <= 3; u++ {
		sys.Rate(day, core.Rating{User: u, Item: 7, Liked: true})
	}
	sys.Tick(2 * day)
	if recs := sys.Recommend(2*day, 1, 5); contains(recs, 7) {
		t.Fatalf("stale table already recommends item 7: %v", recs)
	}

	// After the recompute period the rebuild runs and item 7 appears.
	sys.Tick(16 * day)
	if sys.Rebuilds() != 2 {
		t.Fatalf("rebuilds = %d, want 2", sys.Rebuilds())
	}
	if recs := sys.Recommend(16*day, 1, 5); !contains(recs, 7) {
		t.Fatalf("rebuilt table misses item 7: %v", recs)
	}
}

func TestSystemClientRefreshLag(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecomputePeriod = 24 * time.Hour
	cfg.ClientRefresh = 24 * time.Hour
	sys := New(cfg)
	hour := time.Hour

	for u := core.UserID(1); u <= 3; u++ {
		sys.Rate(0, core.Rating{User: u, Item: 1, Liked: true})
		sys.Rate(0, core.Rating{User: u, Item: 2, Liked: true})
	}
	// Client 1 fetches its snapshot at t=1h.
	sys.Recommend(1*hour, 1, 5)

	// Server rebuilds at t=30h with a new co-liked item.
	for u := core.UserID(2); u <= 3; u++ {
		sys.Rate(2*hour, core.Rating{User: u, Item: 7, Liked: true})
	}
	sys.Tick(30 * hour)
	if sys.Rebuilds() < 2 {
		t.Fatalf("server did not rebuild: %d", sys.Rebuilds())
	}

	// At t=20h the client cache (fetched 1h) is still fresh (<24h): stale.
	if recs := sys.Recommend(20*hour, 1, 5); contains(recs, 7) {
		t.Fatalf("client saw server rebuild before refresh interval: %v", recs)
	}
	// At t=26h the refresh interval has passed: the client re-downloads.
	if recs := sys.Recommend(40*hour, 1, 5); !contains(recs, 7) {
		t.Fatalf("client never refreshed: %v", recs)
	}
}

func TestSystemUnknownUser(t *testing.T) {
	sys := New(DefaultConfig())
	if recs := sys.Recommend(0, 42, 5); recs != nil {
		t.Fatalf("unknown user got %v", recs)
	}
}

func TestSystemNeighborsAlwaysNil(t *testing.T) {
	sys := New(DefaultConfig())
	sys.Rate(0, core.Rating{User: 1, Item: 1, Liked: true})
	if nbs := sys.Neighbors(1); nbs != nil {
		t.Fatalf("item-based CF reported user neighbours: %v", nbs)
	}
}

func TestTableAge(t *testing.T) {
	sys := New(DefaultConfig())
	if age := sys.TableAge(time.Hour); age != 0 {
		t.Fatalf("age before build = %v", age)
	}
	sys.Rate(time.Hour, core.Rating{User: 1, Item: 1, Liked: true})
	if age := sys.TableAge(3 * time.Hour); age != 2*time.Hour {
		t.Fatalf("age = %v, want 2h", age)
	}
}

func contains(items []core.ItemID, x core.ItemID) bool {
	for _, i := range items {
		if i == x {
			return true
		}
	}
	return false
}
