package itemcf

import (
	"time"

	"hyrec/internal/core"
	"hyrec/internal/replay"
)

// Config parametrises the TiVo-style system.
type Config struct {
	// R is the number of items recommended per request.
	R int
	// TopL bounds each item's correlation row.
	TopL int
	// RecomputePeriod is the server-side correlation rebuild interval
	// (two weeks in TiVo's deployment).
	RecomputePeriod time.Duration
	// ClientRefresh is how often a client re-downloads correlation rows
	// (once a day in TiVo's deployment). Effective staleness is therefore
	// up to RecomputePeriod + ClientRefresh.
	ClientRefresh time.Duration
	// MaxPairsPerUser caps the quadratic pair contribution of one profile
	// during correlation builds (0 = unlimited).
	MaxPairsPerUser int
}

// DefaultConfig returns TiVo's published schedule: correlations every two
// weeks, client refresh daily, rows of 50.
func DefaultConfig() Config {
	return Config{
		R:               10,
		TopL:            50,
		RecomputePeriod: 14 * 24 * time.Hour,
		ClientRefresh:   24 * time.Hour,
		MaxPairsPerUser: 4096,
	}
}

// System is the replayable TiVo-style recommender. Not safe for concurrent
// use: the replay driver is single-threaded, like all baseline systems in
// this repository.
type System struct {
	cfg      Config
	profiles map[core.UserID]core.Profile

	table       *CorrelationTable
	nextRebuild time.Duration
	rebuilds    int

	// Per-client correlation snapshot and its fetch time, modelling the
	// daily client download.
	clientTable map[core.UserID]*CorrelationTable
	clientFetch map[core.UserID]time.Duration
}

var _ replay.System = (*System)(nil)

// New builds a TiVo-style system.
func New(cfg Config) *System {
	if cfg.R <= 0 {
		cfg.R = 10
	}
	if cfg.RecomputePeriod <= 0 {
		cfg.RecomputePeriod = 14 * 24 * time.Hour
	}
	return &System{
		cfg:         cfg,
		profiles:    make(map[core.UserID]core.Profile),
		clientTable: make(map[core.UserID]*CorrelationTable),
		clientFetch: make(map[core.UserID]time.Duration),
	}
}

// Name implements replay.System.
func (s *System) Name() string { return "tivo-itemcf" }

// Rebuilds reports how many server-side correlation builds have run.
func (s *System) Rebuilds() int { return s.rebuilds }

// TableAge returns how stale the server-side table is at virtual time t
// (0 if never built — there is nothing to be stale against).
func (s *System) TableAge(t time.Duration) time.Duration {
	if s.table == nil {
		return 0
	}
	return t - s.table.BuiltAt()
}

// Rate implements replay.System: profile update only; item-based CF does
// no per-request server work (that is its selling point and its weakness).
func (s *System) Rate(t time.Duration, r core.Rating) {
	p, ok := s.profiles[r.User]
	if !ok {
		p = core.NewProfile(r.User)
	}
	s.profiles[r.User] = p.WithRating(r.Item, r.Liked)
	if s.table == nil {
		// First activity schedules the first build one period out,
		// mirroring a deployment that starts with an empty model.
		s.rebuild(t)
	}
}

// Recommend implements replay.System: scores come from the client's
// (possibly stale) correlation snapshot.
func (s *System) Recommend(t time.Duration, u core.UserID, n int) []core.ItemID {
	p, ok := s.profiles[u]
	if !ok {
		return nil
	}
	tbl := s.clientSnapshot(t, u)
	recs := RecommendFromCorrelations(p, tbl, s.cfg.R)
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs
}

// Neighbors implements replay.System. Item-based CF has no user
// neighbourhoods, so this is always nil; view-similarity metrics skip it.
func (s *System) Neighbors(core.UserID) []core.UserID { return nil }

// Tick implements replay.System: runs the periodic server-side rebuild.
func (s *System) Tick(t time.Duration) {
	if s.table != nil && t >= s.nextRebuild {
		s.rebuild(t)
	}
}

// rebuild recomputes the correlation table at time t.
func (s *System) rebuild(t time.Duration) {
	ordered := sortedUserIDs(s.profiles)
	profiles := make([]core.Profile, 0, len(ordered))
	for _, u := range ordered {
		profiles = append(profiles, s.profiles[u])
	}
	s.table = BuildCorrelations(profiles, t, s.cfg.TopL, s.cfg.MaxPairsPerUser)
	s.rebuilds++
	s.nextRebuild = t + s.cfg.RecomputePeriod
}

// clientSnapshot returns u's cached correlation table, refreshing it from
// the server when the client-refresh interval has elapsed.
func (s *System) clientSnapshot(t time.Duration, u core.UserID) *CorrelationTable {
	cached, ok := s.clientTable[u]
	if ok && s.cfg.ClientRefresh > 0 && t-s.clientFetch[u] < s.cfg.ClientRefresh {
		return cached
	}
	s.clientTable[u] = s.table
	s.clientFetch[u] = t
	return s.table
}
