// Package itemcf implements a TiVo-style item-based collaborative-filtering
// recommender, the hybrid architecture Section 2.4 of the HyRec paper
// contrasts itself against (Ali & van Stam, KDD 2004).
//
// In that design the expensive step — the item-item correlation matrix —
// stays on the server and is recomputed only periodically (every two weeks
// in TiVo's deployment), while clients download the correlation rows for
// the items they rated (at most once a day) and compute recommendation
// scores locally. The paper's argument is that this staleness makes TiVo
// "unsuitable for dynamic websites dealing in real time with continuous
// streams of items"; the StalenessStudy experiment quantifies exactly that
// claim by replaying the same traces through this package and HyRec.
package itemcf

import (
	"math"
	"sort"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/topk"
)

// ItemNeighbor is one entry of an item's correlation row: a correlated
// item and its correlation strength in (0, 1].
type ItemNeighbor struct {
	Item core.ItemID
	Corr float64
}

// CorrelationTable is the server-side item-item model: for every item, the
// TopL most correlated items (binary cosine over the users who liked both),
// sorted by descending correlation. Tables are immutable once built;
// clients hold snapshots without locking.
type CorrelationTable struct {
	builtAt time.Duration
	rows    map[core.ItemID][]ItemNeighbor
	// likers[i] is the number of users who like item i, kept for
	// diagnostics and tests.
	likers map[core.ItemID]int
}

// BuiltAt returns the virtual time the table was computed at.
func (t *CorrelationTable) BuiltAt() time.Duration { return t.builtAt }

// Items returns the number of items with at least one correlation row.
func (t *CorrelationTable) Items() int { return len(t.rows) }

// Likers returns how many users liked item i when the table was built.
func (t *CorrelationTable) Likers(i core.ItemID) int { return t.likers[i] }

// Row returns item i's correlation row, best first. The returned slice is
// shared and must not be modified.
func (t *CorrelationTable) Row(i core.ItemID) []ItemNeighbor { return t.rows[i] }

// BuildCorrelations computes the item-item cosine table over the liked
// sets of the given profiles:
//
//	corr(i, j) = |U_i ∩ U_j| / sqrt(|U_i|·|U_j|)
//
// where U_i is the set of users who like item i. Each row keeps only the
// topL strongest correlations. maxPairsPerUser, when positive, caps the
// item pairs contributed by one profile (crucial for power-law profiles:
// the pair count is quadratic in profile size); the cap keeps the head of
// each profile, mirroring TiVo's bounded per-box upload.
//
// This is precisely the computation the paper calls "extremely expensive"
// on the server; callers should expect it to dominate replay time and is
// why TiVo runs it every two weeks.
func BuildCorrelations(profiles []core.Profile, builtAt time.Duration, topL, maxPairsPerUser int) *CorrelationTable {
	if topL <= 0 {
		topL = 50
	}
	likers := make(map[core.ItemID]int, 256)
	co := make(map[[2]core.ItemID]int, 1024)
	for _, p := range profiles {
		liked := p.Liked()
		for _, i := range liked {
			likers[i]++
		}
		pairs := 0
		for a := 0; a < len(liked); a++ {
			for b := a + 1; b < len(liked); b++ {
				if maxPairsPerUser > 0 && pairs >= maxPairsPerUser {
					break
				}
				co[[2]core.ItemID{liked[a], liked[b]}]++
				pairs++
			}
			if maxPairsPerUser > 0 && pairs >= maxPairsPerUser {
				break
			}
		}
	}

	collectors := make(map[core.ItemID]*topk.Collector, len(likers))
	collector := func(i core.ItemID) *topk.Collector {
		c, ok := collectors[i]
		if !ok {
			c = topk.New(topL)
			collectors[i] = c
		}
		return c
	}
	for pair, n := range co {
		i, j := pair[0], pair[1]
		corr := float64(n) / math.Sqrt(float64(likers[i])*float64(likers[j]))
		collector(i).Offer(uint32(j), corr)
		collector(j).Offer(uint32(i), corr)
	}

	rows := make(map[core.ItemID][]ItemNeighbor, len(collectors))
	for i, c := range collectors {
		entries := c.Sorted()
		row := make([]ItemNeighbor, len(entries))
		for n, e := range entries {
			row[n] = ItemNeighbor{Item: core.ItemID(e.ID), Corr: e.Score}
		}
		rows[i] = row
	}
	return &CorrelationTable{builtAt: builtAt, rows: rows, likers: likers}
}

// RecommendFromCorrelations is the client-side computation TiVo offloads:
// every unseen item j is scored by the summed correlation to the user's
// liked items, and the r best are returned (ties broken on the smaller
// item ID, as everywhere in this module).
func RecommendFromCorrelations(p core.Profile, tbl *CorrelationTable, r int) []core.ItemID {
	if r <= 0 || tbl == nil {
		return nil
	}
	scores := make(map[core.ItemID]float64, 64)
	for _, i := range p.Liked() {
		for _, nb := range tbl.Row(i) {
			if p.Contains(nb.Item) {
				continue
			}
			scores[nb.Item] += nb.Corr
		}
	}
	col := topk.New(r)
	for item, s := range scores {
		col.Offer(uint32(item), s)
	}
	entries := col.Sorted()
	out := make([]core.ItemID, len(entries))
	for i, e := range entries {
		out[i] = core.ItemID(e.ID)
	}
	return out
}

// sortedUserIDs returns the profile owners sorted ascending — a
// deterministic iteration order for table rebuilds.
func sortedUserIDs(m map[core.UserID]core.Profile) []core.UserID {
	out := make([]core.UserID, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
