package persist

import (
	"sync"
	"time"

	"hyrec/internal/server"
)

// Saver periodically captures and saves snapshots in the background —
// the deployment loop cmd/hyrec-server runs when -snapshot is set.
// Construct with NewSaver (single engine) or NewSaverFunc (any capture
// strategy, e.g. the per-partition cluster save), stop with Close (which
// performs one final save).
type Saver struct {
	save   func() error
	period time.Duration

	// onError, when non-nil, receives save failures (the loop keeps
	// running: a full disk now does not preclude a successful save later).
	onError func(error)

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once

	mu    sync.Mutex
	saves int
}

// NewSaver builds a saver writing engine snapshots to path every period.
// onError may be nil.
func NewSaver(engine *server.Engine, path string, period time.Duration, onError func(error)) *Saver {
	return NewSaverFunc(func() error { return Save(path, Capture(engine)) }, period, onError)
}

// NewSaverFunc builds a saver around an arbitrary capture-and-save step.
// onError may be nil.
func NewSaverFunc(save func() error, period time.Duration, onError func(error)) *Saver {
	return &Saver{
		save:    save,
		period:  period,
		onError: onError,
		stop:    make(chan struct{}),
	}
}

// Start launches the background loop. Calling Start twice is a no-op.
func (s *Saver) Start() {
	s.startOnce.Do(func() {
		if s.period <= 0 {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			ticker := time.NewTicker(s.period)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					s.saveOnce()
				case <-s.stop:
					return
				}
			}
		}()
	})
}

// Close stops the loop and performs one final save, returning its error.
// Safe to call multiple times; only the first performs the final save.
func (s *Saver) Close() error {
	var final error
	s.stopOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		final = s.save()
		if final == nil {
			s.countSave()
		}
	})
	return final
}

// Saves reports how many successful saves have completed.
func (s *Saver) Saves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saves
}

func (s *Saver) saveOnce() {
	if err := s.save(); err != nil {
		if s.onError != nil {
			s.onError(err)
		}
		return
	}
	s.countSave()
}

func (s *Saver) countSave() {
	s.mu.Lock()
	s.saves++
	s.mu.Unlock()
}
