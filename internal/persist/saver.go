package persist

import (
	"sync"
	"time"

	"hyrec/internal/server"
)

// Saver periodically captures and saves engine snapshots in the
// background — the deployment loop cmd/hyrec-server runs when -snapshot
// is set. Construct with NewSaver, stop with Close (which performs one
// final save).
type Saver struct {
	engine *server.Engine
	path   string
	period time.Duration

	// onError, when non-nil, receives save failures (the loop keeps
	// running: a full disk now does not preclude a successful save later).
	onError func(error)

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once

	mu    sync.Mutex
	saves int
}

// NewSaver builds a saver writing engine snapshots to path every period.
// onError may be nil.
func NewSaver(engine *server.Engine, path string, period time.Duration, onError func(error)) *Saver {
	return &Saver{
		engine:  engine,
		path:    path,
		period:  period,
		onError: onError,
		stop:    make(chan struct{}),
	}
}

// Start launches the background loop. Calling Start twice is a no-op.
func (s *Saver) Start() {
	s.startOnce.Do(func() {
		if s.period <= 0 {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			ticker := time.NewTicker(s.period)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					s.saveOnce()
				case <-s.stop:
					return
				}
			}
		}()
	})
}

// Close stops the loop and performs one final save, returning its error.
// Safe to call multiple times; only the first performs the final save.
func (s *Saver) Close() error {
	var final error
	s.stopOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		final = Save(s.path, Capture(s.engine))
		if final == nil {
			s.countSave()
		}
	})
	return final
}

// Saves reports how many successful saves have completed.
func (s *Saver) Saves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saves
}

func (s *Saver) saveOnce() {
	if err := Save(s.path, Capture(s.engine)); err != nil {
		if s.onError != nil {
			s.onError(err)
		}
		return
	}
	s.countSave()
}

func (s *Saver) countSave() {
	s.mu.Lock()
	s.saves++
	s.mu.Unlock()
}
