package persist

import (
	"errors"
	"fmt"
	"os"
	"time"

	"hyrec/internal/cluster"
	"hyrec/internal/core"
	"hyrec/internal/server"
)

// Cluster snapshots: one persist frame per partition, each written with
// the same atomic temp-file-and-rename discipline as a single-engine
// snapshot, so a crash mid-save never corrupts any partition's previous
// state. Partition i of an N-partition deployment lives at
// PartitionPath(path, i) and its body is stamped (Partition=i,
// Partitions=N, RingVNodes=V) — the full topology parameters of the
// consistent-hash ring that placed its users.
//
// Restores are topology-elastic: when the frames' stamps match the
// running ring exactly, each frame restores straight into its
// partition; otherwise RestoreCluster *replays the migration* — every
// restored user is routed through the live ring to the engine that owns
// her now — so an N-partition snapshot loads into an M-partition
// cluster (and a legacy fixed-hash or single-engine snapshot into a
// ring cluster) with byte-identical per-user profiles.

// PartitionPath returns where partition i of the snapshot at path is
// stored: "<path>.p<i>".
func PartitionPath(path string, i int) string { return fmt.Sprintf("%s.p%d", path, i) }

// CaptureCluster copies every partition's tables into per-partition
// snapshots, stamped with their position in the topology and the ring
// parameter. The capture runs with the topology frozen
// (WithStableTopology): a concurrent scale-in cannot shrink the engine
// set mid-loop, and no mid-move user can be captured on two partitions
// at once.
func CaptureCluster(c *cluster.Cluster) []*Snapshot {
	var snaps []*Snapshot
	c.WithStableTopology(func(ring *cluster.Ring, parts []*server.Engine) {
		snaps = make([]*Snapshot, len(parts))
		for i, e := range parts {
			s := Capture(e)
			s.Partition, s.Partitions, s.RingVNodes = i, len(parts), ring.VNodes()
			snaps[i] = s
		}
	})
	return snaps
}

// SaveCluster writes one frame per partition in two phases: every frame
// is encoded and fsynced to a temp file first, then all temps are
// renamed into place. Staging before renaming matters once the
// topology is elastic — a crash during a sequential per-frame save
// could otherwise leave frames from two topology generations side by
// side (a 4-stamped p0 next to a 2-stamped p1), which the load path
// refuses. The residual window is the rename loop itself
// (microseconds, no encoding I/O). After a successful save, leftover
// higher-numbered frames from a previously wider topology are pruned
// so a future LoadClusterAny cannot mix generations either.
func SaveCluster(path string, c *cluster.Cluster) error {
	snaps := CaptureCluster(c)
	tmps := make([]string, len(snaps))
	cleanup := func(from int) {
		for _, t := range tmps[from:] {
			if t != "" {
				os.Remove(t)
			}
		}
	}
	for i, s := range snaps {
		tmp, err := saveTemp(PartitionPath(path, i), s)
		if err != nil {
			cleanup(0)
			return fmt.Errorf("persist: partition %d: %w", i, err)
		}
		tmps[i] = tmp
	}
	for i, tmp := range tmps {
		if err := os.Rename(tmp, PartitionPath(path, i)); err != nil {
			cleanup(i)
			return fmt.Errorf("persist: partition %d: rename into place: %w", i, err)
		}
	}
	for i := len(snaps); ; i++ {
		if err := os.Remove(PartitionPath(path, i)); err != nil {
			break
		}
	}
	return nil
}

// LoadCluster reads the n partition frames of the snapshot at path,
// refusing topology mismatches — the strict loader for deployments that
// require the on-disk shape to equal the running one. A completely
// absent snapshot (no partition files at all) reports os.ErrNotExist so
// callers can start fresh; a partially present one is an error. Use
// LoadClusterAny + RestoreCluster's migration replay to restore across
// topologies.
func LoadCluster(path string, n int) ([]*Snapshot, error) {
	snaps := make([]*Snapshot, n)
	missing := 0
	for i := 0; i < n; i++ {
		s, err := Load(PartitionPath(path, i))
		switch {
		case err == nil:
			if s.Partitions != 0 && s.Partitions != n {
				return nil, fmt.Errorf("persist: partition %d was saved by a %d-partition deployment, running %d",
					i, s.Partitions, n)
			}
			if s.Partitions != 0 && s.Partition != i {
				return nil, fmt.Errorf("persist: frame at %s claims partition %d", PartitionPath(path, i), s.Partition)
			}
			snaps[i] = s
		case errors.Is(err, os.ErrNotExist):
			missing++
		default:
			return nil, fmt.Errorf("persist: partition %d: %w", i, err)
		}
	}
	if missing == n {
		return nil, fmt.Errorf("persist: no cluster snapshot at %s.p*: %w", path, os.ErrNotExist)
	}
	if missing > 0 {
		return nil, fmt.Errorf("persist: cluster snapshot at %s is missing %d of %d partition frames", path, missing, n)
	}
	return snaps, nil
}

// LoadClusterAny discovers and reads however many partition frames the
// snapshot at path holds, whatever topology saved them. The frame count
// is taken from partition 0's stamp (legacy unstamped frames load as a
// single-frame snapshot); every discovered frame must be present and
// stamp-consistent. Reports os.ErrNotExist when no frames exist at all.
func LoadClusterAny(path string) ([]*Snapshot, error) {
	first, err := Load(PartitionPath(path, 0))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("persist: no cluster snapshot at %s.p*: %w", path, os.ErrNotExist)
		}
		return nil, fmt.Errorf("persist: partition 0: %w", err)
	}
	n := first.Partitions
	if n < 1 {
		n = 1
	}
	// The stamp is untrusted input from disk: bound it (the lane
	// registry admits nowhere near this many partitions) and require
	// frame 0 to actually be frame 0, so a corrupt count cannot drive a
	// huge allocation and a misplaced frame cannot pose as the first.
	const maxFrames = 1 << 16
	if n > maxFrames {
		return nil, fmt.Errorf("persist: frame at %s claims %d partitions (limit %d)", PartitionPath(path, 0), n, maxFrames)
	}
	if first.Partitions != 0 && first.Partition != 0 {
		return nil, fmt.Errorf("persist: frame at %s stamped partition %d, want 0", PartitionPath(path, 0), first.Partition)
	}
	snaps := make([]*Snapshot, n)
	snaps[0] = first
	for i := 1; i < n; i++ {
		s, err := Load(PartitionPath(path, i))
		if err != nil {
			return nil, fmt.Errorf("persist: cluster snapshot at %s claims %d partitions but frame %d failed: %w",
				path, n, i, err)
		}
		if s.Partitions != n || s.Partition != i {
			return nil, fmt.Errorf("persist: frame at %s stamped partition %d of %d, want %d of %d",
				PartitionPath(path, i), s.Partition, s.Partitions, i, n)
		}
		snaps[i] = s
	}
	return snaps, nil
}

// RestoreCluster loads partition snapshots into the cluster. When the
// frames were saved by the identical topology — same partition count,
// same ring parameter, frame i stamped as partition i — each frame
// restores directly into its engine. Any other shape (different
// partition count, a legacy fixed-hash or single-engine snapshot)
// triggers migration replay: every user record is routed through the
// live ring to the engine that owns her under the current topology, so
// profiles land byte-identically wherever ownership says they belong.
func RestoreCluster(c *cluster.Cluster, snaps []*Snapshot) error {
	if clusterFramesMatch(c, snaps) {
		for i, s := range snaps {
			if err := Restore(c.Engine(i), s); err != nil {
				return fmt.Errorf("persist: restore partition %d: %w", i, err)
			}
		}
		return nil
	}
	return replayCluster(c, snaps)
}

// clusterFramesMatch reports whether snaps were saved by exactly the
// cluster's current topology, making direct per-partition restore valid.
func clusterFramesMatch(c *cluster.Cluster, snaps []*Snapshot) bool {
	if len(snaps) != c.NumPartitions() {
		return false
	}
	vnodes := c.Ring().VNodes()
	for i, s := range snaps {
		if s == nil || s.Partitions != len(snaps) || s.Partition != i || s.RingVNodes != vnodes {
			return false
		}
	}
	return true
}

// replayCluster re-routes every snapshot user through the live ring —
// the restore-time form of the migration a live Scale performs.
func replayCluster(c *cluster.Cluster, snaps []*Snapshot) error {
	for fi, s := range snaps {
		if s == nil {
			continue
		}
		knn := make(map[uint32][]uint32, len(s.KNN))
		for _, rec := range s.KNN {
			knn[rec.ID] = rec.Neighbors
		}
		for _, rec := range s.Users {
			u := core.UserID(rec.ID)
			e := c.Engine(c.Partition(u))
			p, err := core.ProfileFromSets(u, toItemIDs(rec.Liked), toItemIDs(rec.Disliked))
			if err != nil {
				return fmt.Errorf("persist: replay frame %d user %d: %w", fi, rec.ID, err)
			}
			e.Profiles().Put(p)
			if nbs := knn[rec.ID]; len(nbs) > 0 {
				e.KNN().Put(u, toUserIDs(nbs))
			}
		}
	}
	return nil
}

// NewClusterSaver builds a Saver that periodically writes one frame per
// partition — the cluster analogue of NewSaver.
func NewClusterSaver(c *cluster.Cluster, path string, period time.Duration, onError func(error)) *Saver {
	return NewSaverFunc(func() error { return SaveCluster(path, c) }, period, onError)
}
