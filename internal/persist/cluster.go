package persist

import (
	"errors"
	"fmt"
	"os"
	"time"

	"hyrec/internal/cluster"
)

// Cluster snapshots: one persist frame per partition, each written with
// the same atomic temp-file-and-rename discipline as a single-engine
// snapshot, so a crash mid-save never corrupts any partition's previous
// state. Partition i of an N-partition deployment lives at
// PartitionPath(path, i) and its body is stamped (Partition=i,
// Partitions=N); the load path refuses frames whose stamps disagree with
// the running topology, because the user→partition hash is a function of
// N — restoring an 8-way snapshot into a 4-way cluster would scatter
// users across the wrong engines.

// PartitionPath returns where partition i of the snapshot at path is
// stored: "<path>.p<i>".
func PartitionPath(path string, i int) string { return fmt.Sprintf("%s.p%d", path, i) }

// CaptureCluster copies every partition's tables into per-partition
// snapshots, stamped with their position in the topology.
func CaptureCluster(c *cluster.Cluster) []*Snapshot {
	snaps := make([]*Snapshot, c.NumPartitions())
	for i := range snaps {
		s := Capture(c.Engine(i))
		s.Partition, s.Partitions = i, c.NumPartitions()
		snaps[i] = s
	}
	return snaps
}

// SaveCluster atomically writes one frame per partition. Frames are
// written sequentially; a failure part-way leaves already-written
// partitions at their new state and the rest at their previous state —
// every file is individually consistent, and the KNN table is an
// approximation by design, so cross-partition skew of one save period is
// harmless.
func SaveCluster(path string, c *cluster.Cluster) error {
	for i, s := range CaptureCluster(c) {
		if err := Save(PartitionPath(path, i), s); err != nil {
			return fmt.Errorf("persist: partition %d: %w", i, err)
		}
	}
	return nil
}

// LoadCluster reads the n partition frames of the snapshot at path.
// A completely absent snapshot (no partition files at all) reports
// os.ErrNotExist so callers can start fresh; a partially present or
// topology-mismatched one is an error — silently restoring half a
// cluster would leave the other half empty behind one front-end.
func LoadCluster(path string, n int) ([]*Snapshot, error) {
	snaps := make([]*Snapshot, n)
	missing := 0
	for i := 0; i < n; i++ {
		s, err := Load(PartitionPath(path, i))
		switch {
		case err == nil:
			if s.Partitions != 0 && s.Partitions != n {
				return nil, fmt.Errorf("persist: partition %d was saved by a %d-partition deployment, running %d",
					i, s.Partitions, n)
			}
			if s.Partitions != 0 && s.Partition != i {
				return nil, fmt.Errorf("persist: frame at %s claims partition %d", PartitionPath(path, i), s.Partition)
			}
			snaps[i] = s
		case errors.Is(err, os.ErrNotExist):
			missing++
		default:
			return nil, fmt.Errorf("persist: partition %d: %w", i, err)
		}
	}
	if missing == n {
		return nil, fmt.Errorf("persist: no cluster snapshot at %s.p*: %w", path, os.ErrNotExist)
	}
	if missing > 0 {
		return nil, fmt.Errorf("persist: cluster snapshot at %s is missing %d of %d partition frames", path, missing, n)
	}
	return snaps, nil
}

// RestoreCluster loads per-partition snapshots into the cluster's
// engines. snaps must have exactly NumPartitions entries (LoadCluster's
// output).
func RestoreCluster(c *cluster.Cluster, snaps []*Snapshot) error {
	if len(snaps) != c.NumPartitions() {
		return fmt.Errorf("persist: %d snapshot frames for a %d-partition cluster", len(snaps), c.NumPartitions())
	}
	for i, s := range snaps {
		if err := Restore(c.Engine(i), s); err != nil {
			return fmt.Errorf("persist: restore partition %d: %w", i, err)
		}
	}
	return nil
}

// NewClusterSaver builds a Saver that periodically writes one frame per
// partition — the cluster analogue of NewSaver.
func NewClusterSaver(c *cluster.Cluster, path string, period time.Duration, onError func(error)) *Saver {
	return NewSaverFunc(func() error { return SaveCluster(path, c) }, period, onError)
}
