package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hyrec/internal/wire"
)

// Node-map sidecar: a multi-node deployment stamps its snapshot set
// with the node map that was in force when the state was captured
// (path.nodemap, next to the per-partition frames). On restart the
// stamp tells the booting node which epoch its disk state corresponds
// to, so it can refuse to regress a cluster that has since failed over
// past it — a node rejoining with epoch-3 state while the survivors run
// epoch 5 must adopt their map, not re-publish its own.

// NodeMapPath is the sidecar location for a snapshot base path.
func NodeMapPath(path string) string { return path + ".nodemap" }

// SaveNodeMap writes the node-map stamp with the same atomic-rename
// discipline as the state frames: a crash mid-save leaves the previous
// stamp intact, never a torn file.
func SaveNodeMap(path string, m *wire.NodeMap) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("persist: refusing to save invalid node map: %w", err)
	}
	body, err := wire.EncodeNodeMap(m)
	if err != nil {
		return err
	}
	dst := NodeMapPath(path)
	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(body)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// LoadNodeMap reads and validates the node-map stamp. A missing sidecar
// returns os.ErrNotExist (wrapped): the snapshot predates multi-node
// deployment, or none was ever saved.
func LoadNodeMap(path string) (*wire.NodeMap, error) {
	body, err := os.ReadFile(NodeMapPath(path))
	if err != nil {
		return nil, err
	}
	m, err := wire.DecodeNodeMap(body)
	if err != nil {
		return nil, fmt.Errorf("persist: node-map stamp %s: %w", NodeMapPath(path), err)
	}
	return m, nil
}
