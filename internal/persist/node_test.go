package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hyrec/internal/wire"
)

func TestNodeMapSidecarRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "state.snap")
	m := &wire.NodeMap{
		Epoch:      7,
		Partitions: 4,
		Nodes: []wire.NodeInfo{
			{ID: "n1", Addr: "http://127.0.0.1:9001", Primary: []int{0, 2}, Replica: []int{1, 3}},
			{ID: "n2", Addr: "http://127.0.0.1:9002", Primary: []int{1, 3}, Replica: []int{0, 2}},
		},
	}
	if err := SaveNodeMap(base, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNodeMap(base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 7 || got.Partitions != 4 || len(got.Nodes) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Primary(0).ID != "n1" || got.Replica(0).ID != "n2" {
		t.Fatalf("assignments lost: %+v", got.Nodes)
	}
}

func TestNodeMapSidecarMissing(t *testing.T) {
	if _, err := LoadNodeMap(filepath.Join(t.TempDir(), "none")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing sidecar = %v, want ErrNotExist", err)
	}
}

func TestNodeMapSidecarRejectsInvalid(t *testing.T) {
	base := filepath.Join(t.TempDir(), "state.snap")
	if err := SaveNodeMap(base, &wire.NodeMap{Epoch: 1, Partitions: 0}); err == nil {
		t.Fatal("saved a node map with zero partitions")
	}
	if err := os.WriteFile(NodeMapPath(base), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadNodeMap(base); err == nil {
		t.Fatal("loaded a torn sidecar")
	}
}
