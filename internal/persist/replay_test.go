package persist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hyrec/internal/cluster"
	"hyrec/internal/core"
	"hyrec/internal/server"
)

// fixturePath is the committed 2-partition snapshot fixture (64 churned
// users, seed 42, one widget-refreshed KNN row each) that pins the
// on-disk format across topology changes.
const fixturePath = "testdata/topology/cluster2.snap"

// TestRestoreFixtureIntoLargerCluster is the satellite acceptance test:
// the committed 2-partition fixture restores into a 3-partition cluster
// via migration replay, and every user's profile comes out byte-level
// identical to the frame that stored it.
func TestRestoreFixtureIntoLargerCluster(t *testing.T) {
	snaps, err := LoadClusterAny(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("fixture holds %d frames, want 2", len(snaps))
	}

	cfg := server.DefaultConfig()
	cfg.Seed = 42
	c := cluster.New(cfg, 3)
	defer c.Close()
	if err := RestoreCluster(c, snaps); err != nil {
		t.Fatal(err)
	}

	total := 0
	for _, s := range snaps {
		for _, rec := range s.Users {
			total++
			u := core.UserID(rec.ID)
			owner := c.Partition(u)
			for i := 0; i < 3; i++ {
				if c.Engine(i).KnownUser(u) != (i == owner) {
					t.Fatalf("user %d: stored-on-%d=%v, ring owner %d", rec.ID, i, c.Engine(i).KnownUser(u), owner)
				}
			}
			// Byte-level equality: re-encode the restored profile as a
			// snapshot record and compare with the fixture's bytes.
			p := c.Profile(u)
			got, err := json.Marshal(UserRecord{ID: rec.ID, Liked: toUint32(p.Liked()), Disliked: toUint32(p.Disliked())})
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("user %d: profile not byte-identical after replay:\nwant %s\ngot  %s", rec.ID, want, got)
			}
		}
		// KNN rows follow their users to the new owner.
		for _, rec := range s.KNN {
			hood, err := c.Neighbors(context.Background(), core.UserID(rec.ID))
			if err != nil {
				t.Fatal(err)
			}
			if len(hood) != len(rec.Neighbors) {
				t.Fatalf("user %d: KNN row %v restored as %v", rec.ID, rec.Neighbors, hood)
			}
			for i := range hood {
				if uint32(hood[i]) != rec.Neighbors[i] {
					t.Fatalf("user %d: KNN row %v restored as %v", rec.ID, rec.Neighbors, hood)
				}
			}
		}
	}
	if total == 0 || c.Len() != total {
		t.Fatalf("restored population %d, fixture holds %d", c.Len(), total)
	}
	// The replayed cluster keeps serving.
	churnCluster(t, c, 16)
}

// TestSaveScaledRestoreExact: a cluster scaled live 2→3 saves frames
// whose stamps match its topology, and a fresh 3-partition cluster
// restores them on the direct (stamp-matched) path with identical
// placement.
func TestSaveScaledRestoreExact(t *testing.T) {
	cfg := server.DefaultConfig()
	c := cluster.New(cfg, 2)
	defer c.Close()
	churnCluster(t, c, 40)
	if err := c.Scale(context.Background(), 3); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "scaled.snap")
	if err := SaveCluster(path, c); err != nil {
		t.Fatal(err)
	}
	snaps, err := LoadClusterAny(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 || snaps[2].Partitions != 3 || snaps[2].RingVNodes == 0 {
		t.Fatalf("scaled frames mis-stamped: %d frames, %+v", len(snaps), snaps[len(snaps)-1])
	}

	fresh := cluster.New(cfg, 3)
	defer fresh.Close()
	if err := RestoreCluster(fresh, snaps); err != nil {
		t.Fatal(err)
	}
	for u := core.UserID(1); u <= 40; u++ {
		if !c.Profile(u).Equal(fresh.Profile(u)) {
			t.Fatalf("user %d: profile did not survive scaled save/restore", u)
		}
		if c.Partition(u) != fresh.Partition(u) {
			t.Fatalf("user %d: placement diverged across restart", u)
		}
	}
}

// TestLoadClusterAnyMissingFrame: a snapshot claiming more frames than
// exist refuses to load rather than restoring half a cluster.
func TestLoadClusterAnyMissingFrame(t *testing.T) {
	cfg := server.DefaultConfig()
	c := cluster.New(cfg, 3)
	defer c.Close()
	churnCluster(t, c, 12)
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := SaveCluster(path, c); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(PartitionPath(path, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClusterAny(path); err == nil {
		t.Fatal("partial snapshot loaded silently")
	}
}

// TestSaveClusterPrunesStaleFrames: saving after a scale-in removes the
// higher-numbered frames the wider topology left behind, so a restart
// can never mix generations.
func TestSaveClusterPrunesStaleFrames(t *testing.T) {
	cfg := server.DefaultConfig()
	c := cluster.New(cfg, 4)
	defer c.Close()
	churnCluster(t, c, 24)
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := SaveCluster(path, c); err != nil {
		t.Fatal(err)
	}
	if err := c.Scale(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := SaveCluster(path, c); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		if _, err := os.Stat(PartitionPath(path, i)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("stale frame %d survived the narrower save: %v", i, err)
		}
	}
	snaps, err := LoadClusterAny(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("loaded %d frames after prune, want 2", len(snaps))
	}
	fresh := cluster.New(cfg, 2)
	defer fresh.Close()
	if err := RestoreCluster(fresh, snaps); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 24 {
		t.Fatalf("restored %d users, want 24", fresh.Len())
	}
}
