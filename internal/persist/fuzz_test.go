package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// validFrame builds a well-formed snapshot frame around body for seeding.
func validFrame(body []byte) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	binary.Write(&buf, binary.BigEndian, Version)
	binary.Write(&buf, binary.BigEndian, uint64(len(body)))
	binary.Write(&buf, binary.BigEndian, crc32.ChecksumIEEE(body))
	buf.Write(body)
	return buf.Bytes()
}

// FuzzSnapshotDecode: arbitrary bytes fed to the snapshot loader must
// yield a typed error (ErrBadMagic / ErrBadVersion / ErrCorrupt) or a
// snapshot that survives an encode/decode round trip — never a panic,
// runaway allocation, or silent garbage. This is the file a crashed or
// malicious disk hands the server at startup.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(validFrame([]byte(`{"saved_at":1,"users":[{"id":1,"liked":[2]}],"knn":[{"id":1,"neighbors":[3]}]}`)))
	f.Add(validFrame([]byte(`{}`)))
	f.Add(validFrame([]byte(`null`)))
	f.Add(magic[:])
	// Claimed body length far beyond the data present.
	huge := validFrame(nil)
	binary.BigEndian.PutUint64(huge[12:], 1<<29)
	f.Add(huge)
	// Truncated mid-header and mid-body.
	full := validFrame([]byte(`{"saved_at":2}`))
	f.Add(full[:10])
	f.Add(full[:len(full)-3])
	// Flipped body bit (checksum mismatch).
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-1] ^= 1
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			if s != nil {
				t.Fatal("error with non-nil snapshot")
			}
			return
		}
		var out bytes.Buffer
		if err := s.Encode(&out); err != nil {
			t.Fatalf("re-encode of accepted snapshot: %v", err)
		}
		back, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot: %v", err)
		}
		if len(back.Users) != len(s.Users) || len(back.KNN) != len(s.KNN) || back.SavedAtUnix != s.SavedAtUnix {
			t.Fatalf("round trip changed snapshot: %+v vs %+v", back, s)
		}
	})
}
