// Package persist provides durable snapshots of the HyRec server state —
// the global Profile and KNN tables of Section 3.1. A deployment saves a
// snapshot on shutdown (or periodically; see Saver) and restores it on
// start, so the KNN approximations users converged to survive restarts
// instead of re-converging from random neighbourhoods.
//
// The on-disk format is a small framed container: magic, format version,
// body length, and a CRC-32 over the JSON-encoded body. Load verifies the
// frame before touching the body, so truncated or bit-flipped files fail
// with ErrCorrupt instead of silently restoring garbage. Save writes to a
// temporary file in the destination directory and renames it into place,
// so a crash mid-save never destroys the previous snapshot.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/server"
)

// Frame constants. The magic's trailing byte doubles as a major-format
// discriminator, separate from Version which tracks body-schema revisions.
var magic = [8]byte{'H', 'Y', 'R', 'S', 'N', 'A', 'P', 1}

// Version is the current body-schema version.
const Version uint32 = 1

// maxBodyLen rejects absurd length fields (a corrupt length would
// otherwise claim petabytes). Decode grows its buffer with the data
// actually read rather than trusting the header, so an in-range lie
// costs only the bytes present in the file — the limit exists purely to
// bound legitimate snapshot size, and stays at its historical value so
// every previously valid snapshot still loads.
const maxBodyLen = 1 << 32

var (
	// ErrBadMagic reports a file that is not a HyRec snapshot.
	ErrBadMagic = errors.New("persist: not a hyrec snapshot (bad magic)")
	// ErrBadVersion reports an unsupported snapshot schema version.
	ErrBadVersion = errors.New("persist: unsupported snapshot version")
	// ErrCorrupt reports a frame whose checksum or length does not match
	// its body.
	ErrCorrupt = errors.New("persist: snapshot corrupt")
)

// UserRecord is one user's profile in a snapshot.
type UserRecord struct {
	ID       uint32   `json:"id"`
	Liked    []uint32 `json:"liked,omitempty"`
	Disliked []uint32 `json:"disliked,omitempty"`
}

// KNNRecord is one user's neighbourhood in a snapshot.
type KNNRecord struct {
	ID        uint32   `json:"id"`
	Neighbors []uint32 `json:"neighbors"`
}

// Snapshot is a point-in-time copy of the server's global tables. Records
// are sorted by user ID, so identical state encodes to identical bytes.
type Snapshot struct {
	// SavedAtUnix is the wall-clock save time (seconds since epoch).
	SavedAtUnix int64 `json:"saved_at"`
	// Partition and Partitions stamp a cluster-member snapshot: this
	// frame holds partition Partition of a Partitions-wide deployment
	// (cluster.go). Both zero for a single-engine snapshot — the legacy
	// format, which decodes unchanged.
	Partition  int `json:"partition,omitempty"`
	Partitions int `json:"partitions,omitempty"`
	// RingVNodes stamps the consistent-hash ring parameter the saving
	// cluster routed with. (Partitions, RingVNodes) fully determine the
	// ring, so the restore path can reconstruct any historical topology
	// and replay its users into the running one. Zero for legacy frames
	// (fixed-hash or single-engine deployments).
	RingVNodes int          `json:"ring_vnodes,omitempty"`
	Users      []UserRecord `json:"users"`
	KNN        []KNNRecord  `json:"knn"`
}

// Capture copies the engine's tables into a Snapshot. Each profile is an
// immutable snapshot, so the copy is consistent per user; cross-user
// consistency is not transactional (profiles are independent, and the KNN
// table is an approximation by design).
func Capture(e *server.Engine) *Snapshot {
	s := &Snapshot{SavedAtUnix: time.Now().Unix()}
	e.Profiles().ForEach(func(p core.Profile) {
		s.Users = append(s.Users, UserRecord{
			ID:       uint32(p.User()),
			Liked:    toUint32(p.Liked()),
			Disliked: toUint32(p.Disliked()),
		})
	})
	sort.Slice(s.Users, func(i, j int) bool { return s.Users[i].ID < s.Users[j].ID })
	for _, rec := range s.Users {
		u := core.UserID(rec.ID)
		if nbs := e.KNN().Get(u); len(nbs) > 0 {
			s.KNN = append(s.KNN, KNNRecord{ID: rec.ID, Neighbors: usersToUint32(nbs)})
		}
	}
	return s
}

// Restore loads a snapshot into the engine: snapshot users' profiles and
// neighbourhoods replace any existing entries; users the snapshot does not
// mention are left untouched. Restoring into a fresh engine reproduces the
// captured state exactly.
func Restore(e *server.Engine, s *Snapshot) error {
	for _, rec := range s.Users {
		p, err := core.ProfileFromSets(core.UserID(rec.ID), toItemIDs(rec.Liked), toItemIDs(rec.Disliked))
		if err != nil {
			return fmt.Errorf("persist: restore user %d: %w", rec.ID, err)
		}
		e.Profiles().Put(p)
	}
	for _, rec := range s.KNN {
		e.KNN().Put(core.UserID(rec.ID), toUserIDs(rec.Neighbors))
	}
	return nil
}

// Encode writes the framed snapshot to w.
func (s *Snapshot) Encode(w io.Writer) error {
	body, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("persist: encode body: %w", err)
	}
	var head bytes.Buffer
	head.Write(magic[:])
	if err := binary.Write(&head, binary.BigEndian, Version); err != nil {
		return fmt.Errorf("persist: encode header: %w", err)
	}
	if err := binary.Write(&head, binary.BigEndian, uint64(len(body))); err != nil {
		return fmt.Errorf("persist: encode header: %w", err)
	}
	if err := binary.Write(&head, binary.BigEndian, crc32.ChecksumIEEE(body)); err != nil {
		return fmt.Errorf("persist: encode header: %w", err)
	}
	if _, err := w.Write(head.Bytes()); err != nil {
		return fmt.Errorf("persist: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("persist: write body: %w", err)
	}
	return nil
}

// Decode reads and verifies a framed snapshot from r.
func Decode(r io.Reader) (*Snapshot, error) {
	var gotMagic [8]byte
	if _, err := io.ReadFull(r, gotMagic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if gotMagic != magic {
		return nil, ErrBadMagic
	}
	var version uint32
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if version != Version {
		return nil, fmt.Errorf("%w: %d (supported: %d)", ErrBadVersion, version, Version)
	}
	var bodyLen uint64
	if err := binary.Read(r, binary.BigEndian, &bodyLen); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if bodyLen > maxBodyLen {
		return nil, fmt.Errorf("%w: body length %d", ErrCorrupt, bodyLen)
	}
	var sum uint32
	if err := binary.Read(r, binary.BigEndian, &sum); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	// Grow with the bytes actually present, not the claimed length: a
	// corrupt-but-in-range header then fails cheaply instead of
	// pre-allocating gigabytes (FuzzSnapshotDecode exercises this).
	var bodyBuf bytes.Buffer
	if n, err := io.Copy(&bodyBuf, io.LimitReader(r, int64(bodyLen))); err != nil || uint64(n) != bodyLen {
		return nil, fmt.Errorf("%w: body: read %d of %d bytes (%v)", ErrCorrupt, bodyBuf.Len(), bodyLen, err)
	}
	body := bodyBuf.Bytes()
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return nil, fmt.Errorf("%w: body json: %v", ErrCorrupt, err)
	}
	return &s, nil
}

// Save atomically writes the snapshot to path: encode to a temp file in
// the same directory, sync, then rename over the destination.
func Save(path string, s *Snapshot) error {
	tmpName, err := saveTemp(path, s)
	if err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: rename into place: %w", err)
	}
	return nil
}

// saveTemp encodes and fsyncs the snapshot into a fresh temp file next
// to path, returning its name. The caller renames it into place (or
// removes it on failure) — split out so a multi-frame cluster save can
// stage every frame before renaming any.
func saveTemp(path string, s *Snapshot) (tmpName string, err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return "", fmt.Errorf("persist: create temp: %w", err)
	}
	tmpName = tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = s.Encode(tmp); err != nil {
		return "", err
	}
	if err = tmp.Sync(); err != nil {
		return "", fmt.Errorf("persist: sync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return "", fmt.Errorf("persist: close temp: %w", err)
	}
	return tmpName, nil
}

// Load reads and verifies the snapshot at path.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: open: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

func toUint32(items []core.ItemID) []uint32 {
	if len(items) == 0 {
		return nil
	}
	out := make([]uint32, len(items))
	for i, it := range items {
		out[i] = uint32(it)
	}
	return out
}

func toItemIDs(raw []uint32) []core.ItemID {
	if len(raw) == 0 {
		return nil
	}
	out := make([]core.ItemID, len(raw))
	for i, v := range raw {
		out[i] = core.ItemID(v)
	}
	return out
}

func usersToUint32(users []core.UserID) []uint32 {
	out := make([]uint32, len(users))
	for i, u := range users {
		out[i] = uint32(u)
	}
	return out
}

func toUserIDs(raw []uint32) []core.UserID {
	if len(raw) == 0 {
		return nil
	}
	out := make([]core.UserID, len(raw))
	for i, v := range raw {
		out[i] = core.UserID(v)
	}
	return out
}
