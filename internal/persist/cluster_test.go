package persist

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hyrec/internal/cluster"
	"hyrec/internal/core"
	"hyrec/internal/server"
	"hyrec/internal/widget"
)

// churnCluster drives a cluster through rates and full personalization
// cycles so every partition holds profiles and widget-computed KNN rows.
func churnCluster(t *testing.T, c *cluster.Cluster, users int) {
	t.Helper()
	ctx := context.Background()
	w := widget.New()
	for u := 1; u <= users; u++ {
		for j := 0; j < 5; j++ {
			if err := c.Rate(ctx, core.UserID(u), core.ItemID((u*3+j*7)%50), j%2 == 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := 0; round < 3; round++ {
		for u := 1; u <= users; u++ {
			job, err := c.Job(ctx, core.UserID(u))
			if err != nil {
				t.Fatal(err)
			}
			res, _ := w.Execute(job)
			if _, err := c.ApplyResult(ctx, res); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestClusterSnapshotRestartCycle is the satellite's acceptance test: a
// churned 4-partition cluster saves one frame per partition, a fresh
// cluster restores them, and every user's profile and KNN row survives
// byte-for-byte.
func TestClusterSnapshotRestartCycle(t *testing.T) {
	const users, parts = 120, 4
	cfg := server.DefaultConfig()
	old := cluster.New(cfg, parts)
	defer old.Close()
	churnCluster(t, old, users)

	path := filepath.Join(t.TempDir(), "state.snap")
	if err := SaveCluster(path, old); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < parts; i++ {
		if _, err := os.Stat(PartitionPath(path, i)); err != nil {
			t.Fatalf("partition frame %d missing: %v", i, err)
		}
	}

	snaps, err := LoadCluster(path, parts)
	if err != nil {
		t.Fatal(err)
	}
	fresh := cluster.New(cfg, parts)
	defer fresh.Close()
	if err := RestoreCluster(fresh, snaps); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if got, want := fresh.Len(), old.Len(); got != want {
		t.Fatalf("restored population %d, want %d", got, want)
	}
	for u := 1; u <= users; u++ {
		uid := core.UserID(u)
		if !old.Profile(uid).Equal(fresh.Profile(uid)) {
			t.Fatalf("user %d: profile did not survive the restart", u)
		}
		oldN, err := old.Neighbors(ctx, uid)
		if err != nil {
			t.Fatal(err)
		}
		newN, err := fresh.Neighbors(ctx, uid)
		if err != nil {
			t.Fatal(err)
		}
		if len(oldN) != len(newN) {
			t.Fatalf("user %d: KNN row %v became %v", u, oldN, newN)
		}
		for i := range oldN {
			if oldN[i] != newN[i] {
				t.Fatalf("user %d: KNN row %v became %v", u, oldN, newN)
			}
		}
	}

	// The restored cluster keeps serving: one more full cycle works.
	churnCluster(t, fresh, users/4)
}

// TestClusterSnapshotTopologyGuards: absent snapshots report
// os.ErrNotExist (start fresh), partial ones and topology mismatches
// refuse to load.
func TestClusterSnapshotTopologyGuards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	if _, err := LoadCluster(path, 4); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("absent snapshot: want ErrNotExist, got %v", err)
	}

	cfg := server.DefaultConfig()
	c := cluster.New(cfg, 4)
	defer c.Close()
	churnCluster(t, c, 16)
	if err := SaveCluster(path, c); err != nil {
		t.Fatal(err)
	}

	// Wrong topology: an 8-partition deployment must refuse these frames.
	if _, err := LoadCluster(path, 8); err == nil || errors.Is(err, os.ErrNotExist) {
		t.Fatalf("topology mismatch not refused: %v", err)
	}

	// Partial snapshot: delete one frame.
	if err := os.Remove(PartitionPath(path, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCluster(path, 4); err == nil || errors.Is(err, os.ErrNotExist) {
		t.Fatalf("partial snapshot not refused: %v", err)
	}
}

// TestClusterSaverPeriodicAndFinal: the generalized Saver drives the
// per-partition save loop and performs the final save on Close.
func TestClusterSaverPeriodicAndFinal(t *testing.T) {
	cfg := server.DefaultConfig()
	c := cluster.New(cfg, 2)
	defer c.Close()
	churnCluster(t, c, 20)

	path := filepath.Join(t.TempDir(), "state.snap")
	s := NewClusterSaver(c, path, 0, nil) // period 0: final save only
	s.Start()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Saves() != 1 {
		t.Fatalf("saves = %d, want 1", s.Saves())
	}
	snaps, err := LoadCluster(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if snaps[0].Partitions != 2 || snaps[1].Partition != 1 {
		t.Fatalf("frames not stamped: %+v %+v", snaps[0], snaps[1])
	}
}
