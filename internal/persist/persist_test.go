package persist

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/server"
)

// tctx is the context used by tests exercising the context-aware
// Service methods.
var tctx = context.Background()

func seededEngine(t *testing.T) *server.Engine {
	t.Helper()
	cfg := server.DefaultConfig()
	cfg.DisableAnonymizer = true
	e := server.NewEngine(cfg)
	for u := core.UserID(1); u <= 20; u++ {
		for i := 0; i < int(u%7)+1; i++ {
			e.Rate(tctx, u, core.ItemID(i*3), i%2 == 0)
		}
	}
	// Converge a few KNN iterations so the KNN table is non-empty.
	for u := core.UserID(1); u <= 20; u++ {
		job, err := e.Job(tctx, u)
		if err != nil {
			t.Fatalf("job(%v): %v", u, err)
		}
		_ = job
		e.KNN().Put(u, []core.UserID{u%20 + 1, (u+5)%20 + 1})
	}
	return e
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := seededEngine(t)
	snap := Capture(e)
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("round trip mismatch:\nsaved: %+v\nloaded: %+v", snap, got)
	}
}

func TestCaptureSortedAndDeterministic(t *testing.T) {
	e := seededEngine(t)
	a, b := Capture(e), Capture(e)
	a.SavedAtUnix, b.SavedAtUnix = 0, 0
	var bufA, bufB bytes.Buffer
	if err := a.Encode(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("identical state produced different snapshot bytes")
	}
	for i := 1; i < len(a.Users); i++ {
		if a.Users[i-1].ID >= a.Users[i].ID {
			t.Fatal("user records not sorted")
		}
	}
}

func TestSaveLoadRestore(t *testing.T) {
	e := seededEngine(t)
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := Save(path, Capture(e)); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.DefaultConfig()
	cfg.DisableAnonymizer = true
	fresh := server.NewEngine(cfg)
	if err := Restore(fresh, loaded); err != nil {
		t.Fatal(err)
	}

	if fresh.Profiles().Len() != e.Profiles().Len() {
		t.Fatalf("restored %d users, want %d", fresh.Profiles().Len(), e.Profiles().Len())
	}
	for _, u := range e.Profiles().Users() {
		want, got := e.Profiles().Get(u), fresh.Profiles().Get(u)
		if !want.Equal(got) {
			t.Fatalf("user %v: profile mismatch: %v vs %v", u, want, got)
		}
		if !reflect.DeepEqual(e.KNN().Get(u), fresh.KNN().Get(u)) {
			t.Fatalf("user %v: knn mismatch", u)
		}
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	e := seededEngine(t)
	if err := Save(path, Capture(e)); err != nil {
		t.Fatal(err)
	}
	// A second save must leave no temp droppings and keep the file valid.
	if err := Save(path, Capture(e)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.Contains(ent.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", ent.Name())
		}
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("post-overwrite load: %v", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.snap"))
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data := append([]byte("NOTASNAP"), make([]byte, 64)...)
	_, err := Decode(bytes.NewReader(data))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	e := seededEngine(t)
	var buf bytes.Buffer
	if err := Capture(e).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8]++ // bump the version field (big-endian uint32 at offset 8)
	_, err := Decode(bytes.NewReader(data))
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

// Corruption injection: flipping any single byte of the body must be
// detected by the checksum.
func TestDecodeDetectsBitFlips(t *testing.T) {
	e := seededEngine(t)
	var buf bytes.Buffer
	if err := Capture(e).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	const headerLen = 8 + 4 + 8 + 4
	for _, offset := range []int{headerLen, headerLen + 7, len(pristine) - 1} {
		data := append([]byte(nil), pristine...)
		data[offset] ^= 0x40
		if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: want ErrCorrupt, got %v", offset, err)
		}
	}
}

func TestDecodeDetectsTruncation(t *testing.T) {
	e := seededEngine(t)
	var buf bytes.Buffer
	if err := Capture(e).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, keep := range []int{0, 4, 12, 23, len(data) / 2, len(data) - 1} {
		if _, err := Decode(bytes.NewReader(data[:keep])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate to %d: want ErrCorrupt, got %v", keep, err)
		}
	}
}

func TestDecodeRejectsInsaneLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{0, 0, 0, 1})                         // version 1
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // huge length
	buf.Write([]byte{0, 0, 0, 0})                         // crc
	_, err := Decode(&buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// Property: any snapshot (not just engine-captured ones) survives an
// encode/decode round trip.
func TestSnapshotRoundTripProperty(t *testing.T) {
	prop := func(ids []uint16, savedAt int64) bool {
		s := &Snapshot{SavedAtUnix: savedAt}
		seen := map[uint32]bool{}
		for _, id := range ids {
			if seen[uint32(id)] {
				continue
			}
			seen[uint32(id)] = true
			s.Users = append(s.Users, UserRecord{
				ID:    uint32(id),
				Liked: []uint32{uint32(id) * 2},
			})
			s.KNN = append(s.KNN, KNNRecord{ID: uint32(id), Neighbors: []uint32{1, 2}})
		}
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(s, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsOverlappingSets(t *testing.T) {
	s := &Snapshot{Users: []UserRecord{{ID: 1, Liked: []uint32{3}, Disliked: []uint32{3}}}}
	cfg := server.DefaultConfig()
	e := server.NewEngine(cfg)
	if err := Restore(e, s); err == nil {
		t.Fatal("expected error for item in both liked and disliked")
	}
}

func TestSaverLifecycle(t *testing.T) {
	e := seededEngine(t)
	path := filepath.Join(t.TempDir(), "periodic.snap")
	saver := NewSaver(e, path, 10*time.Millisecond, nil)
	saver.Start()

	deadline := time.Now().Add(5 * time.Second)
	for saver.Saves() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if saver.Saves() == 0 {
		t.Fatal("no periodic save within deadline")
	}
	if err := saver.Close(); err != nil {
		t.Fatalf("final save: %v", err)
	}
	if err := saver.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("loading final snapshot: %v", err)
	}
}

func TestSaverReportsErrors(t *testing.T) {
	e := seededEngine(t)
	// Unwritable destination directory.
	var gotErr error
	saver := NewSaver(e, "/nonexistent-dir-hyrec/state.snap", time.Hour, func(err error) { gotErr = err })
	saver.saveOnce()
	if gotErr == nil {
		t.Fatal("save into missing directory reported no error")
	}
	if saver.Saves() != 0 {
		t.Fatalf("failed save counted: %d", saver.Saves())
	}
}

func TestSaverZeroPeriodNeverTicksButFinalSaves(t *testing.T) {
	e := seededEngine(t)
	path := filepath.Join(t.TempDir(), "final-only.snap")
	saver := NewSaver(e, path, 0, nil)
	saver.Start() // no background loop
	if err := saver.Close(); err != nil {
		t.Fatal(err)
	}
	if saver.Saves() != 1 {
		t.Fatalf("saves = %d, want exactly the final one", saver.Saves())
	}
}
