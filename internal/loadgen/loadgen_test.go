package loadgen

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunBasic(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("hello"))
	}))
	defer ts.Close()

	res := Run(FixedTarget(ts.URL), 50, 4)
	if res.Requests != 50 || res.Failures != 0 {
		t.Fatalf("res = %+v", res)
	}
	if hits.Load() != 50 {
		t.Fatalf("server saw %d requests", hits.Load())
	}
	if res.BytesRead != 50*5 {
		t.Fatalf("bytes = %d", res.BytesRead)
	}
	if res.Throughput <= 0 || res.Latency.N != 50 {
		t.Fatalf("summary = %+v", res)
	}
	if res.String() == "" {
		t.Fatal("empty report")
	}
}

func TestRunCountsFailures(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer ts.Close()
	res := Run(FixedTarget(ts.URL), 10, 2)
	if res.Failures != 10 {
		t.Fatalf("failures = %d", res.Failures)
	}
}

func TestRunUnreachableTarget(t *testing.T) {
	// A port nothing listens on: every request errors but Run terminates.
	res := Run(FixedTarget("http://127.0.0.1:1/x"), 5, 2)
	if res.Failures != 5 {
		t.Fatalf("failures = %d", res.Failures)
	}
}

func TestTargetRotation(t *testing.T) {
	var mu [16]atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		uid, _ := strconv.Atoi(r.URL.Query().Get("uid"))
		mu[uid%16].Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	target := func(i int) string { return ts.URL + "?uid=" + strconv.Itoa(i%16) }
	Run(target, 64, 8)
	for i := range mu {
		if mu[i].Load() != 4 {
			t.Fatalf("uid %d hit %d times, want 4", i, mu[i].Load())
		}
	}
}

func TestRunClampsDegenerateArgs(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	res := Run(FixedTarget(ts.URL), 0, 0)
	if res.Requests != 1 || res.Concurrency != 1 {
		t.Fatalf("degenerate args not clamped: %+v", res)
	}
}

func TestConcurrencyActuallyOverlaps(t *testing.T) {
	var inflight, peak atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		inflight.Add(-1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	Run(FixedTarget(ts.URL), 32, 8)
	if peak.Load() < 4 {
		t.Fatalf("peak concurrency = %d, want ≥4", peak.Load())
	}
}

func TestUserTarget(t *testing.T) {
	tgt := UserTarget("http://h/online?uid=%d", []uint32{5, 9})
	want := []string{"http://h/online?uid=5", "http://h/online?uid=9", "http://h/online?uid=5"}
	for i, w := range want {
		if got := tgt(i); got != w {
			t.Errorf("tgt(%d) = %q, want %q", i, got, w)
		}
	}
	// An empty population degenerates to a fixed target.
	fixed := UserTarget("http://h/online", nil)
	if got := fixed(7); got != "http://h/online" {
		t.Errorf("empty-population target = %q", got)
	}
}
