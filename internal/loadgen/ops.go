package loadgen

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"hyrec"
	"hyrec/client"
	"hyrec/internal/core"
	"hyrec/internal/stats"
	"hyrec/internal/widget"
)

// Op is one logical operation issued through the typed client — the
// client-mode analogue of Target. i is the global request index, letting
// ops spread load deterministically over a user population.
type Op func(ctx context.Context, c *client.Client, i int) error

// RateOp issues single ratings for uids[i mod len(uids)] — the
// per-request baseline the batch path is measured against.
func RateOp(uids []uint32, items int) Op {
	return func(ctx context.Context, c *client.Client, i int) error {
		u := uids[i%len(uids)]
		return c.Rate(ctx, core.UserID(u), item(i, items), i%3 != 0)
	}
}

// RateBatchOp issues `size`-rating batches per request, spreading users
// and items the same way RateOp does — so a single- vs batch-path
// comparison moves the same rating volume per logical request… times
// size. Throughput is reported in requests; multiply by size for
// ratings/second.
func RateBatchOp(uids []uint32, items, size int) Op {
	return func(ctx context.Context, c *client.Client, i int) error {
		batch := make([]core.Rating, 0, size)
		for j := 0; j < size; j++ {
			n := i*size + j
			batch = append(batch, core.Rating{User: core.UserID(uids[n%len(uids)]), Item: item(n, items), Liked: n%3 != 0})
		}
		return c.RateBatch(ctx, batch)
	}
}

// JobOp requests a personalization job for uids[i mod len(uids)] — the
// /v1 equivalent of the Figure 8/9 /online load.
func JobOp(uids []uint32) Op {
	return func(ctx context.Context, c *client.Client, i int) error {
		_, err := c.Job(ctx, core.UserID(uids[i%len(uids)]))
		return err
	}
}

// WorkerOp drives the scheduler's pull path: lease the next stale job
// (GET /v1/job?worker=1), execute it with kernel, and post the result.
// With probability abandonProb the leased job is abandoned instead —
// politely (POST /v1/ack done=false), so the server re-issues it
// immediately; this is the churny-worker load shape for measuring the
// scheduler under the wire protocol. An empty queue counts as a
// completed (no-op) request.
func WorkerOp(kernel *widget.Widget, abandonProb float64, seed int64) Op {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(ctx context.Context, c *client.Client, i int) error {
		pollCtx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
		defer cancel()
		job, err := c.NextJob(pollCtx)
		if err != nil || job == nil {
			return err
		}
		mu.Lock()
		drop := rng.Float64() < abandonProb
		mu.Unlock()
		if drop {
			return c.Ack(ctx, job.Lease, false)
		}
		res, _ := kernel.Execute(job)
		if _, err := c.ApplyResult(ctx, res); err != nil {
			// Mirror client.Worker.RunOnce: a stale epoch or superseded
			// lease is the scheduler working, not a workload failure.
			if errors.Is(err, hyrec.ErrStaleEpoch) || errors.Is(err, hyrec.ErrUnknownLease) {
				return nil
			}
			return err
		}
		return nil
	}
}

// RunOps issues `requests` operations through the typed client with
// `concurrency` in-flight workers — the client-path analogue of Run,
// measuring the real network stack (connection reuse, JSON, gzip)
// instead of raw URL fetches.
func RunOps(ctx context.Context, c *client.Client, op Op, requests, concurrency int) Result {
	if concurrency < 1 {
		concurrency = 1
	}
	if requests < 1 {
		requests = 1
	}
	latencies := make([]float64, requests)
	var failures int
	var mu sync.Mutex

	var next int
	var nextMu sync.Mutex
	takeTicket := func() (int, bool) {
		nextMu.Lock()
		defer nextMu.Unlock()
		if next >= requests {
			return 0, false
		}
		i := next
		next++
		return i, true
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := takeTicket()
				if !ok {
					return
				}
				reqStart := time.Now()
				err := op(ctx, c, i)
				elapsed := time.Since(reqStart)
				mu.Lock()
				latencies[i] = float64(elapsed) / float64(time.Millisecond)
				if err != nil {
					failures++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Requests:    requests,
		Concurrency: concurrency,
		Failures:    failures,
		Elapsed:     elapsed,
		Latency:     stats.Summarize(latencies),
	}
	if elapsed > 0 {
		res.Throughput = float64(requests) / elapsed.Seconds()
	}
	return res
}

// UIDRange returns the uid slice [1, n] — a convenience for spreading
// ops over a synthetic population.
func UIDRange(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i + 1)
	}
	return out
}

func item(i, items int) core.ItemID {
	if items < 1 {
		items = 1
	}
	return core.ItemID(uint32(i*2654435761) % uint32(items))
}
