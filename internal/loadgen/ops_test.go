package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"hyrec"
	"hyrec/client"
	"hyrec/internal/widget"
)

func newBenchServer(tb testing.TB) (*hyrec.Engine, *httptest.Server) {
	tb.Helper()
	eng := hyrec.NewEngine(hyrec.DefaultConfig())
	srv := hyrec.NewServiceServer(eng, 0)
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(func() { ts.Close(); srv.Close() })
	return eng, ts
}

// TestRunOps drives the client-path load generator end to end: every
// request succeeds and the ratings land on the server.
func TestRunOps(t *testing.T) {
	eng, ts := newBenchServer(t)
	c := client.New(ts.URL)
	defer c.Close()

	uids := UIDRange(16)
	res := RunOps(context.Background(), c, RateOp(uids, 50), 64, 4)
	if res.Failures != 0 {
		t.Fatalf("failures = %d (result %s)", res.Failures, res)
	}
	if res.Requests != 64 || res.Throughput <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if got := eng.Profiles().Len(); got != 16 {
		t.Fatalf("server saw %d users, want 16", got)
	}
}

// TestBatchBeatsSingleRate is the protocol's reason to exist: moving the
// same rating volume as one batch per request instead of one rating per
// request must be at least 2× faster end to end. Skipped with -short to
// keep CI timing-insensitive; the benchmarks below track the same ratio.
func TestBatchBeatsSingleRate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; run without -short")
	}
	_, ts := newBenchServer(t)
	c := client.New(ts.URL)
	defer c.Close()

	uids := UIDRange(64)
	const (
		batch   = 64
		ratings = 64 * 48 // total rating volume moved by each path
	)
	ctx := context.Background()

	// Warm the connection pool so neither path pays dial costs.
	RunOps(ctx, c, RateOp(uids, 100), 32, 4)

	single := RunOps(ctx, c, RateOp(uids, 100), ratings, 4)
	batched := RunOps(ctx, c, RateBatchOp(uids, 100, batch), ratings/batch, 4)
	if single.Failures != 0 || batched.Failures != 0 {
		t.Fatalf("failures: single=%d batch=%d", single.Failures, batched.Failures)
	}

	// Compare ratings-per-second: the batch path moves `batch` ratings
	// per request.
	singleRPS := single.Throughput
	batchRPS := batched.Throughput * batch
	t.Logf("single: %.0f ratings/s, batched(×%d): %.0f ratings/s (%.1fx)",
		singleRPS, batch, batchRPS, batchRPS/singleRPS)
	if batchRPS < 2*singleRPS {
		t.Fatalf("batch path %.0f ratings/s < 2× single path %.0f ratings/s", batchRPS, singleRPS)
	}
}

// BenchmarkClientRateSingle measures the per-request /v1/rate path: one
// rating per round trip.
func BenchmarkClientRateSingle(b *testing.B) {
	_, ts := newBenchServer(b)
	c := client.New(ts.URL)
	defer c.Close()
	uids := UIDRange(64)
	op := RateOp(uids, 100)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(ctx, c, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ratings/s")
}

// BenchmarkClientRateBatch measures the amortized path: 64 ratings per
// round trip. Compare ratings/s against BenchmarkClientRateSingle.
func BenchmarkClientRateBatch(b *testing.B) {
	_, ts := newBenchServer(b)
	c := client.New(ts.URL)
	defer c.Close()
	uids := UIDRange(64)
	const batch = 64
	op := RateBatchOp(uids, 100, batch)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(ctx, c, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "ratings/s")
}

// BenchmarkClientJob measures the personalization-job fetch through the
// typed client (gzip negotiation + decode).
func BenchmarkClientJob(b *testing.B) {
	eng, ts := newBenchServer(b)
	ctx := context.Background()
	for u := hyrec.UserID(1); u <= 64; u++ {
		eng.Rate(ctx, u, hyrec.ItemID(u%7), true)
	}
	c := client.New(ts.URL)
	defer c.Close()
	op := JobOp(UIDRange(64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(ctx, c, i); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWorkerOp drives the scheduler's pull path through the load
// generator: ratings create staleness, WorkerOp leases and completes
// the jobs over the wire, and the scheduler drains.
func TestWorkerOp(t *testing.T) {
	cfg := hyrec.DefaultConfig()
	cfg.K = 3
	cfg.LeaseTTL = time.Minute
	eng := hyrec.NewEngine(cfg)
	srv := hyrec.NewServiceServer(eng, 0)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); eng.Close() })

	c := client.New(ts.URL)
	defer c.Close()

	uids := UIDRange(12)
	if res := RunOps(context.Background(), c, RateOp(uids, 20), 24, 4); res.Failures != 0 {
		t.Fatalf("rating failures: %s", res)
	}
	res := RunOps(context.Background(), c, WorkerOp(widget.New(), 0, 1), 40, 4)
	if res.Failures != 0 {
		t.Fatalf("worker-op failures: %s", res)
	}
	if !eng.Scheduler().Quiet() {
		t.Fatalf("scheduler not drained by WorkerOp: %+v", eng.Scheduler().Stats())
	}
}
