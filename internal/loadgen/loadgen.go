// Package loadgen is the ab-style closed-loop HTTP load generator used to
// reproduce the server-side experiments: Figure 8 (response time vs
// profile size, 1000 requests) and Figure 9 (response time vs number of
// concurrent requests). Like Apache ab, it keeps a fixed number of
// in-flight requests and reports latency statistics.
package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"hyrec/internal/stats"
)

// Result summarises one load-generation run.
type Result struct {
	Requests    int
	Concurrency int
	Failures    int
	Elapsed     time.Duration
	// Latency is the per-request latency summary in milliseconds.
	Latency stats.Summary
	// Throughput is completed requests per second.
	Throughput float64
	// BytesRead is the total response payload volume.
	BytesRead int64
}

// String renders a one-line report.
func (r Result) String() string {
	return fmt.Sprintf("n=%d c=%d fail=%d rps=%.0f mean=%.2fms p95=%.2fms",
		r.Requests, r.Concurrency, r.Failures, r.Throughput, r.Latency.Mean, r.Latency.P95)
}

// Target produces the URL for the i-th request, letting callers spread
// load across users (ab hits one URL; our experiments rotate uid).
type Target func(i int) string

// FixedTarget always returns url.
func FixedTarget(url string) Target { return func(int) string { return url } }

// UserTarget spreads requests over a user population: the i-th request
// formats pattern (one %d verb, e.g. "http://host/online?uid=%d") with
// uids[i mod len(uids)]. The cluster throughput experiments use it so
// load fans out across partitions the way real traffic would.
func UserTarget(pattern string, uids []uint32) Target {
	if len(uids) == 0 {
		return FixedTarget(pattern)
	}
	return func(i int) string { return fmt.Sprintf(pattern, uids[i%len(uids)]) }
}

// Run issues `requests` GETs against target with `concurrency` in-flight
// workers, draining response bodies (like ab -n -c). The client disables
// transparent decompression so gzip payloads are measured as transferred.
func Run(target Target, requests, concurrency int) Result {
	if concurrency < 1 {
		concurrency = 1
	}
	if requests < 1 {
		requests = 1
	}
	client := &http.Client{
		Transport: &http.Transport{
			DisableCompression:  true,
			MaxIdleConnsPerHost: concurrency,
		},
		Timeout: 60 * time.Second,
	}

	latencies := make([]float64, requests)
	var failures int
	var bytesRead int64
	var mu sync.Mutex

	var next int
	var nextMu sync.Mutex
	takeTicket := func() (int, bool) {
		nextMu.Lock()
		defer nextMu.Unlock()
		if next >= requests {
			return 0, false
		}
		i := next
		next++
		return i, true
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := takeTicket()
				if !ok {
					return
				}
				reqStart := time.Now()
				resp, err := client.Get(target(i))
				var n int64
				if err == nil {
					n, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				elapsed := time.Since(reqStart)
				mu.Lock()
				latencies[i] = float64(elapsed) / float64(time.Millisecond)
				if err != nil || resp.StatusCode >= 400 {
					failures++
				}
				bytesRead += n
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Requests:    requests,
		Concurrency: concurrency,
		Failures:    failures,
		Elapsed:     elapsed,
		Latency:     stats.Summarize(latencies),
		BytesRead:   bytesRead,
	}
	if elapsed > 0 {
		res.Throughput = float64(requests) / elapsed.Seconds()
	}
	return res
}
