// Package churn models user-machine availability: each user alternates
// between online and offline sessions with exponentially distributed
// durations, the standard churn model for peer-to-peer analyses.
//
// Section 2.3 of the HyRec paper lists on/off-line patterns among the
// deployment challenges of fully decentralized recommenders, and
// Section 2.4 claims HyRec side-steps them because the server serves
// offline users' profiles from its tables. This package supplies the
// availability substrate that the ChurnStudy experiment uses to test that
// claim: the same model gates P2P gossip participation and HyRec client
// requests, so the two architectures face identical user behaviour.
package churn

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"hyrec/internal/core"
)

// ErrBadDurations reports non-positive session-duration means.
var ErrBadDurations = errors.New("churn: mean online/offline durations must be positive")

// Model generates a deterministic on/off schedule per user. Queries may
// arrive in any time order; schedules extend lazily and are memoized, so
// the same (user, time) query always returns the same answer.
//
// Safe for concurrent use.
type Model struct {
	meanOn  time.Duration
	meanOff time.Duration
	seed    int64

	mu        sync.Mutex
	schedules map[core.UserID]*schedule
}

// schedule is one user's alternating session timeline: state(0) = startOn,
// flipping at each boundary. boundaries is strictly increasing.
type schedule struct {
	startOn    bool
	boundaries []time.Duration
	rng        *rand.Rand
}

// NewModel builds an availability model where sessions last meanOn online
// and meanOff offline on average (exponentially distributed). The
// stationary online probability is meanOn / (meanOn + meanOff).
func NewModel(meanOn, meanOff time.Duration, seed int64) (*Model, error) {
	if meanOn <= 0 || meanOff <= 0 {
		return nil, ErrBadDurations
	}
	return &Model{
		meanOn:    meanOn,
		meanOff:   meanOff,
		seed:      seed,
		schedules: make(map[core.UserID]*schedule),
	}, nil
}

// AlwaysOnline returns a model under which every user is permanently
// online — the no-churn baseline of availability studies.
func AlwaysOnline() *Model { return nil }

// OnlineFraction returns the stationary probability that a user is online.
func (m *Model) OnlineFraction() float64 {
	if m == nil {
		return 1
	}
	return float64(m.meanOn) / float64(m.meanOn+m.meanOff)
}

// Online reports whether user u's machine is online at virtual time t.
// A nil model is always online.
func (m *Model) Online(u core.UserID, t time.Duration) bool {
	if m == nil {
		return true
	}
	if t < 0 {
		t = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.scheduleLocked(u)
	s.extend(t, m.meanOn, m.meanOff)
	return s.stateAt(t)
}

// Availability adapts the model to the callback form used by
// gossip.Network and the replay harness. Valid on a nil model.
func (m *Model) Availability() func(core.UserID, time.Duration) bool {
	return m.Online
}

func (m *Model) scheduleLocked(u core.UserID) *schedule {
	s, ok := m.schedules[u]
	if !ok {
		// Per-user stream: mix the user ID into the seed (splitmix-style)
		// so schedules are independent and order-insensitive.
		z := uint64(m.seed) + uint64(u)*0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		rng := rand.New(rand.NewSource(int64(z ^ (z >> 31))))
		s = &schedule{
			// Stationary start state.
			startOn: rng.Float64() < m.OnlineFraction(),
			rng:     rng,
		}
		m.schedules[u] = s
	}
	return s
}

// extend grows the boundary list until it covers time t.
func (s *schedule) extend(t time.Duration, meanOn, meanOff time.Duration) {
	for len(s.boundaries) == 0 || s.boundaries[len(s.boundaries)-1] <= t {
		last := time.Duration(0)
		if len(s.boundaries) > 0 {
			last = s.boundaries[len(s.boundaries)-1]
		}
		mean := meanOn
		if !s.stateIndexOn(len(s.boundaries)) {
			mean = meanOff
		}
		d := time.Duration(s.rng.ExpFloat64() * float64(mean))
		if d < time.Second {
			d = time.Second // avoid zero-length sessions
		}
		s.boundaries = append(s.boundaries, last+d)
	}
}

// stateIndexOn reports the state during segment i (segment 0 precedes the
// first boundary).
func (s *schedule) stateIndexOn(i int) bool {
	if i%2 == 0 {
		return s.startOn
	}
	return !s.startOn
}

// stateAt returns the state at time t (boundaries must already cover t).
func (s *schedule) stateAt(t time.Duration) bool {
	// Binary search for the segment containing t.
	lo, hi := 0, len(s.boundaries)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.boundaries[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.stateIndexOn(lo)
}
