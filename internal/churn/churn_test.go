package churn

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"hyrec/internal/core"
)

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(0, time.Hour, 1); err == nil {
		t.Fatal("accepted zero meanOn")
	}
	if _, err := NewModel(time.Hour, -1, 1); err == nil {
		t.Fatal("accepted negative meanOff")
	}
	if _, err := NewModel(time.Hour, time.Hour, 1); err != nil {
		t.Fatalf("rejected valid model: %v", err)
	}
}

func TestNilModelAlwaysOnline(t *testing.T) {
	m := AlwaysOnline()
	if m.OnlineFraction() != 1 {
		t.Fatalf("fraction = %v", m.OnlineFraction())
	}
	if !m.Online(42, 5*time.Hour) {
		t.Fatal("nil model reported offline")
	}
	if f := m.Availability(); !f(1, 0) {
		t.Fatal("nil model availability callback reported offline")
	}
}

func TestOnlineFraction(t *testing.T) {
	m, err := NewModel(3*time.Hour, time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.OnlineFraction(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("fraction = %v, want 0.75", got)
	}
}

// The empirical fraction of (user, time) samples online must match the
// stationary probability.
func TestEmpiricalOnlineFraction(t *testing.T) {
	m, err := NewModel(2*time.Hour, 2*time.Hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	online, total := 0, 0
	for u := core.UserID(0); u < 200; u++ {
		for h := 0; h < 50; h++ {
			total++
			if m.Online(u, time.Duration(h)*time.Hour) {
				online++
			}
		}
	}
	got := float64(online) / float64(total)
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("empirical online fraction = %.3f, want ≈ 0.5", got)
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a, _ := NewModel(time.Hour, time.Hour, 3)
	b, _ := NewModel(time.Hour, time.Hour, 3)
	for u := core.UserID(0); u < 20; u++ {
		for h := 0; h < 30; h++ {
			tm := time.Duration(h) * 17 * time.Minute
			if a.Online(u, tm) != b.Online(u, tm) {
				t.Fatalf("instances diverged at u=%v t=%v", u, tm)
			}
		}
	}
}

// Query order must not influence answers (lazy extension is memoized).
func TestQueryOrderIndependence(t *testing.T) {
	forward, _ := NewModel(time.Hour, 30*time.Minute, 5)
	backward, _ := NewModel(time.Hour, 30*time.Minute, 5)

	times := make([]time.Duration, 40)
	for i := range times {
		times[i] = time.Duration(i) * 23 * time.Minute
	}
	fw := make([]bool, len(times))
	for i, tm := range times {
		fw[i] = forward.Online(9, tm)
	}
	for i := len(times) - 1; i >= 0; i-- {
		if got := backward.Online(9, times[i]); got != fw[i] {
			t.Fatalf("order-dependent answer at t=%v", times[i])
		}
	}
}

// Property: repeated queries at the same instant always agree, and
// negative times behave like zero.
func TestOnlineStableProperty(t *testing.T) {
	m, _ := NewModel(45*time.Minute, 90*time.Minute, 11)
	prop := func(u uint16, minutes uint16) bool {
		tm := time.Duration(minutes) * time.Minute
		first := m.Online(core.UserID(u), tm)
		for i := 0; i < 3; i++ {
			if m.Online(core.UserID(u), tm) != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if m.Online(1, -time.Hour) != m.Online(1, 0) {
		t.Fatal("negative time disagrees with zero")
	}
}

// Users must have distinct schedules (otherwise churn is perfectly
// correlated and the model is useless).
func TestUsersIndependent(t *testing.T) {
	m, _ := NewModel(time.Hour, time.Hour, 13)
	same := 0
	const users = 100
	for u := core.UserID(0); u < users; u++ {
		if m.Online(u, 90*time.Minute) == m.Online(u+users, 90*time.Minute) {
			same++
		}
	}
	// Perfect correlation would give same == users; independence ≈ half.
	if same > users*3/4 {
		t.Fatalf("schedules look correlated: %d/%d agree", same, users)
	}
}

func TestSessionsAlternate(t *testing.T) {
	m, _ := NewModel(time.Hour, time.Hour, 17)
	// Scan one user minute-by-minute; count transitions. With mean 1h
	// sessions over 48h we expect on the order of 24–48 flips, certainly
	// at least one and not thousands.
	flips := 0
	prev := m.Online(3, 0)
	for min := 1; min < 48*60; min++ {
		cur := m.Online(3, time.Duration(min)*time.Minute)
		if cur != prev {
			flips++
			prev = cur
		}
	}
	if flips == 0 {
		t.Fatal("no session transitions in 48h")
	}
	if flips > 1000 {
		t.Fatalf("%d transitions in 48h: sessions collapsing to minimum", flips)
	}
}

func TestConcurrentQueries(t *testing.T) {
	m, _ := NewModel(time.Hour, time.Hour, 19)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				m.Online(core.UserID(i%37), time.Duration(g*i)*time.Minute)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
