package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constants = %v, want 0", got)
	}
	// Population stddev of {1,2,3,4} is sqrt(1.25).
	if got := StdDev([]float64{1, 2, 3, 4}); !almostEqual(got, math.Sqrt(1.25), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(1.25))
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Errorf("StdDev single = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || !almostEqual(s.Mean, 2.5, 1e-12) {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String() empty")
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatalf("Summarize(nil).N = %d", empty.N)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.StdDev(), StdDev(xs), 1e-9) {
		t.Errorf("Welford sd %v != batch %v", w.StdDev(), StdDev(xs))
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Var() != 0 || w.StdDev() != 0 {
		t.Fatal("zero-value Welford variance not 0")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Var() != 0 {
		t.Fatalf("after one add: mean=%v var=%v", w.Mean(), w.Var())
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(xs, ys)
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 1, 1e-12) {
		t.Fatalf("fit = %v, %v; want 2, 1", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if s, i := LinearFit([]float64{1}, []float64{2}); s != 0 || i != 0 {
		t.Fatalf("short input fit = %v,%v", s, i)
	}
	// Vertical line: all x equal.
	s, i := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if s != 0 || !almostEqual(i, 2, 1e-12) {
		t.Fatalf("vertical fit = %v,%v", s, i)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{0.5, 1.5, 9.5, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Bucket(0) != 2 { // 0.5 and clamped -3
		t.Errorf("Bucket(0) = %d, want 2", h.Bucket(0))
	}
	if h.Bucket(9) != 2 { // 9.5 and clamped 42
		t.Errorf("Bucket(9) = %d, want 2", h.Bucket(9))
	}
	if got := h.FractionAbove(9); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("FractionAbove(9) = %v, want 0.4", got)
	}
	if h.NumBuckets() != 10 {
		t.Errorf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for hi <= lo")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestDurationsToMillis(t *testing.T) {
	got := DurationsToMillis([]time.Duration{time.Second, 1500 * time.Microsecond})
	if got[0] != 1000 || got[1] != 1.5 {
		t.Fatalf("got %v", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		lo, hi := Percentile(xs, 0), Percentile(xs, 100)
		return pa <= pb && pa >= lo && pb <= hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
