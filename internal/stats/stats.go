// Package stats provides the small statistical toolkit used across the
// HyRec evaluation harness: online means, percentiles, fixed-bucket
// histograms and linear fits. Everything is allocation-light and
// deterministic so benchmark output is reproducible.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It copies xs, leaving it unsorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary condenses a sample into the moments the benchmark tables report.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    xs[0],
		Max:    xs[0],
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
		P99:    Percentile(xs, 99),
	}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// String renders the summary in one line for harness output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// DurationsToMillis converts a slice of durations to float64 milliseconds.
func DurationsToMillis(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// Welford accumulates a running mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running population variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// LinearFit returns slope and intercept of the least-squares line through
// (xs[i], ys[i]). Both slices must have equal length ≥ 2.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, Mean(ys)
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// Histogram counts observations into uniform buckets over [lo, hi).
// Out-of-range observations clamp into the first/last bucket.
type Histogram struct {
	lo, hi  float64
	buckets []int
	total   int
}

// NewHistogram creates a histogram with n uniform buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// FractionAbove returns the fraction of observations with value ≥ x.
func (h *Histogram) FractionAbove(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	first := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
	if first < 0 {
		first = 0
	}
	count := 0
	for i := first; i < len(h.buckets); i++ {
		count += h.buckets[i]
	}
	return float64(count) / float64(h.total)
}
