package fleet

import (
	"context"
	"errors"
	"net"
	"time"

	"hyrec/internal/server"
	"hyrec/internal/wire"
	"hyrec/internal/ws"
)

// ---- in-process target ----

// ServiceTarget drives the fleet straight at an in-process deployment
// (an *server.Engine or a cluster) through the same capability
// interfaces the HTTP layer uses, so a simulated session exercises the
// real dispatch path minus the network.
type ServiceTarget struct {
	svc server.Service
	js  server.JobSource
	la  server.LeaseAcker
}

// NewServiceTarget wraps svc; it must dispatch jobs (JobSource).
func NewServiceTarget(svc server.Service) (*ServiceTarget, error) {
	js, ok := svc.(server.JobSource)
	if !ok {
		return nil, errors.New("fleet: service does not dispatch jobs to workers")
	}
	t := &ServiceTarget{svc: svc, js: js}
	t.la, _ = svc.(server.LeaseAcker)
	return t, nil
}

// Open implements Target. In-process sessions share the service; a
// "connection" has no per-session state to set up.
func (t *ServiceTarget) Open(ctx context.Context, s SessionPlan) (Session, error) {
	return (*svcSession)(t), nil
}

type svcSession ServiceTarget

func (s *svcSession) NextJob(ctx context.Context) (*wire.Job, error) {
	for {
		job, err := s.js.NextJob(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil // window lapsed, not a session failure
			}
			return nil, err
		}
		if job != nil {
			return job, nil
		}
		// Early nil (scheduler-free service, or a mid-migration wake):
		// re-poll paced for the rest of the window, like the HTTP layer.
		select {
		case <-ctx.Done():
			return nil, nil
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func (s *svcSession) Result(ctx context.Context, res *wire.Result) error {
	_, err := s.svc.ApplyResult(ctx, res)
	return err
}

func (s *svcSession) Ack(ctx context.Context, lease uint64, done bool) error {
	if s.la == nil {
		return errors.New("fleet: service does not manage leases")
	}
	return s.la.Ack(ctx, lease, done)
}

func (s *svcSession) Close() error { return nil }

// ---- WebSocket target ----

// WSTarget opens one real WebSocket per session against a live server's
// GET /v1/worker/ws endpoint — the browser-true path: handshake, credit
// grants, pushed job frames, result/ack frames, ping/pong.
type WSTarget struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
}

// NewWSTarget points the fleet at a live server.
func NewWSTarget(baseURL string) *WSTarget { return &WSTarget{BaseURL: baseURL} }

// Open implements Target: dial and upgrade one worker socket.
func (t *WSTarget) Open(ctx context.Context, s SessionPlan) (Session, error) {
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	conn, err := ws.Dial(dctx, t.BaseURL+wire.WSWorkerPath, 0)
	if err != nil {
		return nil, err
	}
	return &wsFleetSession{conn: conn}, nil
}

// wsFleetSession adapts the credit-push socket protocol to the pull-
// style Session interface: NextJob grants one credit (if none is
// outstanding) and waits for the push.
type wsFleetSession struct {
	conn *ws.Conn
	// creditOut: a granted credit the server has not yet spent on a
	// push. Kept across NextJob windows so credits never accumulate.
	creditOut bool
}

func (s *wsFleetSession) NextJob(ctx context.Context) (*wire.Job, error) {
	if !s.creditOut {
		raw, err := wire.EncodeWSClientMsg(&wire.WSClientMsg{Want: 1})
		if err != nil {
			return nil, err
		}
		if err := s.conn.WriteMessage(ws.OpText, raw); err != nil {
			return nil, err
		}
		s.creditOut = true
	}
	deadline := time.Now().Add(pollWindow)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	s.conn.SetReadDeadline(deadline)
	defer s.conn.SetReadDeadline(time.Time{})
	for {
		_, frame, err := s.conn.ReadMessage()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return nil, nil // window lapsed; the credit stays out
			}
			return nil, err
		}
		if wire.IsWSError(frame) {
			// Scheduler-side rejection of an earlier frame; not ours to
			// fail the session over.
			continue
		}
		job, err := wire.DecodeJob(frame)
		if err != nil {
			return nil, err
		}
		s.creditOut = false
		return job, nil
	}
}

func (s *wsFleetSession) Result(ctx context.Context, res *wire.Result) error {
	raw, err := wire.EncodeWSClientMsg(&wire.WSClientMsg{Result: res})
	if err != nil {
		return err
	}
	return s.conn.WriteMessage(ws.OpText, raw)
}

func (s *wsFleetSession) Ack(ctx context.Context, lease uint64, done bool) error {
	raw, err := wire.EncodeWSClientMsg(&wire.WSClientMsg{
		Ack: &wire.AckRequest{Lease: lease, Done: done},
	})
	if err != nil {
		return err
	}
	return s.conn.WriteMessage(ws.OpText, raw)
}

func (s *wsFleetSession) Close() error {
	// Best-effort polite goodbye; the tab may equally be crashing, and
	// either way any lease in flight is only released by expiry.
	s.conn.WriteClose(ws.CloseGoingAway, "")
	return s.conn.Close()
}
