// Package fleet is a deterministic browser-fleet simulator: it drives
// thousands of simulated widget sessions — heterogeneous like a real
// HyRec deployment's browsers (Section 5 of the paper measures laptops
// against smartphones) — at a HyRec job dispatcher and reports how the
// scheduler coped: convergence, lease burn, fallback absorption.
//
// The simulation is split in two so experiments are reproducible:
//
//   - Plan(cfg) expands a seed into a full session schedule — device
//     class, network latency and bandwidth class, compute multiplier,
//     exponential tab lifetime, join offset, churn behaviour,
//     mass-disconnect membership, and a private RNG seed per session.
//     The same Config always yields the exact same Plan (asserted by
//     test), so a fleet run is re-playable from its one seed.
//   - Run(ctx, plan, opts) executes the schedule with real goroutines
//     against a Target — the in-process scheduler (NewServiceTarget) or
//     a live server's WebSocket endpoint (NewWSTarget) — and reports.
//
// Wall-clock timing (who raced whom) naturally varies run to run; the
// plan and the convergence outcome do not.
package fleet

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Class is a simulated device class. The compute multipliers follow the
// paper's Figure 13 calibration (smartphone widget times 6–8× a laptop).
type Class int

const (
	Desktop Class = iota
	Laptop
	Mobile
)

func (c Class) String() string {
	switch c {
	case Desktop:
		return "desktop"
	case Laptop:
		return "laptop"
	case Mobile:
		return "mobile"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// netClass is a latency/bandwidth band a session is drawn into.
type netClass struct {
	name         string
	latencyMS    [2]int // [min,max) one-way latency
	bandwidthKbs [2]int // [min,max) downlink kbit/s
}

var netClasses = []netClass{
	{"fiber", [2]int{1, 6}, [2]int{50_000, 200_000}},
	{"dsl", [2]int{8, 25}, [2]int{4_000, 30_000}},
	{"mobile4g", [2]int{25, 70}, [2]int{1_000, 12_000}},
	{"mobile3g", [2]int{70, 160}, [2]int{200, 2_000}},
}

// Config parameterises a fleet. Zero values get defaults from
// (*Config).withDefaults, so tests can set only what they care about.
type Config struct {
	// Seed is the one source of randomness for the whole plan.
	Seed int64
	// Sessions is the fleet size.
	Sessions int

	// MobileFrac is the fraction of sessions on mobile devices (the
	// rest split between desktop and laptop). Default 0.4.
	MobileFrac float64
	// ChurnyFrac is the fraction of sessions that abandon jobs at all.
	// Default 0.5.
	ChurnyFrac float64
	// SilentFrac is the fraction of churny sessions that abandon
	// silently (vanish; the server learns from lease expiry) rather
	// than politely (ack done=false). Default 0.5.
	SilentFrac float64
	// AbandonProb is a churny session's per-job abandon probability.
	// Default 0.5.
	AbandonProb float64

	// MeanTabLifetime is the mean of the exponential tab-lifetime
	// distribution: a session "closes its tab" (drops its connection,
	// burning any in-flight lease) and reopens. Default 30s.
	MeanTabLifetime time.Duration
	// JoinSpread: sessions join uniformly over [0, JoinSpread), like an
	// audience trickling onto a page. Default 1s.
	JoinSpread time.Duration

	// Disconnects are scheduled mass-disconnect events (a mobile
	// network hiccup, a captive portal, a shared Wi-Fi dropping).
	Disconnects []Disconnect
}

// Disconnect is one scheduled mass-disconnect: Frac of the fleet drops
// simultaneously — silently, burning every lease those sessions hold —
// when the trigger fires. Sessions rejoin after RejoinAfter if Rejoin
// is set; otherwise they stay gone and the survivors (plus the
// server-side fallback pool) must finish the work.
type Disconnect struct {
	// Frac of the fleet that drops (membership drawn in the plan).
	Frac float64
	// AtConvergedFrac, when > 0, fires the event the moment that
	// fraction of users has a refreshed KNN row — "the outage hits at
	// 50% convergence".
	AtConvergedFrac float64
	// After fires the event on elapsed run time (used when
	// AtConvergedFrac is 0).
	After time.Duration
	// Rejoin: dropped sessions come back RejoinAfter later.
	Rejoin      bool
	RejoinAfter time.Duration
}

// SessionPlan is one simulated browser session, fully determined by the
// fleet seed.
type SessionPlan struct {
	ID    int
	Class Class
	// Net is the latency/bandwidth class name (informational).
	Net string
	// LatencyMS is the session's one-way network latency draw.
	LatencyMS int
	// BandwidthKbps is the session's downlink draw.
	BandwidthKbps int
	// Compute scales widget compute time relative to the reference
	// laptop (desktop < 1, mobile ≫ 1).
	Compute float64
	// TabLifetime: the session drops and redials on this period.
	TabLifetime time.Duration
	// JoinOffset delays the session's first connection.
	JoinOffset time.Duration
	// Churny sessions abandon jobs with probability AbandonProb;
	// Silent ones do it by vanishing instead of acking.
	Churny      bool
	Silent      bool
	AbandonProb float64
	// Disconnects[i] is true when the session is in the membership of
	// plan disconnect event i.
	Disconnects []bool
	// Seed drives the session's private RNG during the run.
	Seed int64
}

// Plan is a fully expanded fleet schedule.
type Plan struct {
	Cfg      Config
	Sessions []SessionPlan
	// Digest fingerprints the whole schedule; two plans with equal
	// digests ran the same fleet.
	Digest string
}

func (cfg Config) withDefaults() Config {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.MobileFrac == 0 {
		cfg.MobileFrac = 0.4
	}
	if cfg.ChurnyFrac == 0 {
		cfg.ChurnyFrac = 0.5
	}
	if cfg.SilentFrac == 0 {
		cfg.SilentFrac = 0.5
	}
	if cfg.AbandonProb == 0 {
		cfg.AbandonProb = 0.5
	}
	if cfg.MeanTabLifetime == 0 {
		cfg.MeanTabLifetime = 30 * time.Second
	}
	if cfg.JoinSpread == 0 {
		cfg.JoinSpread = time.Second
	}
	return cfg
}

// NewPlan expands cfg into the full deterministic session schedule.
func NewPlan(cfg Config) *Plan {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sessions := make([]SessionPlan, cfg.Sessions)
	for i := range sessions {
		s := SessionPlan{ID: i}

		// Device class → compute multiplier (jittered around the
		// paper's calibration points).
		switch v := rng.Float64(); {
		case v < cfg.MobileFrac:
			s.Class = Mobile
			s.Compute = 6 + 2*rng.Float64() // Figure 13: 6–8×
		case v < cfg.MobileFrac+(1-cfg.MobileFrac)/2:
			s.Class = Laptop
			s.Compute = 0.9 + 0.3*rng.Float64()
		default:
			s.Class = Desktop
			s.Compute = 0.4 + 0.3*rng.Float64()
		}

		// Network class: mobiles skew to the mobile bands.
		ncIdx := rng.Intn(len(netClasses))
		if s.Class == Mobile && rng.Float64() < 0.7 {
			ncIdx = 2 + rng.Intn(2)
		}
		nc := netClasses[ncIdx]
		s.Net = nc.name
		s.LatencyMS = nc.latencyMS[0] + rng.Intn(nc.latencyMS[1]-nc.latencyMS[0])
		s.BandwidthKbps = nc.bandwidthKbs[0] + rng.Intn(nc.bandwidthKbs[1]-nc.bandwidthKbs[0])

		// Exponential tab lifetime, clamped to stay meaningful.
		life := time.Duration(rng.ExpFloat64() * float64(cfg.MeanTabLifetime))
		if min := cfg.MeanTabLifetime / 10; life < min {
			life = min
		}
		s.TabLifetime = life
		s.JoinOffset = time.Duration(rng.Int63n(int64(cfg.JoinSpread)))

		// Churn behaviour.
		if rng.Float64() < cfg.ChurnyFrac {
			s.Churny = true
			s.AbandonProb = cfg.AbandonProb
			s.Silent = rng.Float64() < cfg.SilentFrac
		}

		// Mass-disconnect memberships.
		s.Disconnects = make([]bool, len(cfg.Disconnects))
		for d, ev := range cfg.Disconnects {
			s.Disconnects[d] = rng.Float64() < ev.Frac
		}

		s.Seed = rng.Int63()
		sessions[i] = s
	}
	p := &Plan{Cfg: cfg, Sessions: sessions}
	p.Digest = p.digest()
	return p
}

// digest fingerprints the schedule with FNV-64a over every field that
// affects the run.
func (p *Plan) digest() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d n=%d events=%d\n", p.Cfg.Seed, len(p.Sessions), len(p.Cfg.Disconnects))
	for _, s := range p.Sessions {
		fmt.Fprintf(h, "%d %s %s %d %d %.4f %d %d %v %v %.3f %v %d\n",
			s.ID, s.Class, s.Net, s.LatencyMS, s.BandwidthKbps, s.Compute,
			s.TabLifetime, s.JoinOffset, s.Churny, s.Silent, s.AbandonProb,
			s.Disconnects, s.Seed)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ClassCounts tallies sessions per device class (deterministic given
// the plan).
func (p *Plan) ClassCounts() map[string]int {
	m := make(map[string]int, 3)
	for _, s := range p.Sessions {
		m[s.Class.String()]++
	}
	return m
}
