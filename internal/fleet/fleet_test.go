package fleet

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/server"
)

var tctx = context.Background()

// fleetEngine boots a scheduler-enabled engine with users rated so the
// staleness queue is full, plus an HTTP server for socket targets.
func fleetEngine(t *testing.T, users int, mut func(*server.Config)) (*server.Engine, *httptest.Server) {
	t.Helper()
	cfg := server.DefaultConfig()
	cfg.K = 3
	cfg.R = 3
	cfg.LeaseTTL = 60 * time.Millisecond
	cfg.LeaseRetries = 2
	cfg.FallbackWorkers = 4
	if mut != nil {
		mut(&cfg)
	}
	e := server.NewEngine(cfg)
	srv := server.NewServer(e, 0)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); e.Close() })

	var ratings []core.Rating
	for u := core.UserID(1); u <= core.UserID(users); u++ {
		for j := 0; j < 3; j++ {
			ratings = append(ratings, core.Rating{User: u, Item: core.ItemID((int(u) + j) % 11), Liked: true})
		}
	}
	if err := e.RateBatch(tctx, ratings); err != nil {
		t.Fatal(err)
	}
	return e, ts
}

// TestPlanDeterministic pins the acceptance criterion: the same seed
// expands to the exact same session schedule, field for field.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{
		Seed:     42,
		Sessions: 500,
		Disconnects: []Disconnect{
			{Frac: 0.3, AtConvergedFrac: 0.5},
			{Frac: 0.1, After: 5 * time.Second, Rejoin: true, RejoinAfter: time.Second},
		},
	}
	a, b := NewPlan(cfg), NewPlan(cfg)
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different digests: %s vs %s", a.Digest, b.Digest)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed expanded to different session schedules")
	}
	if c := NewPlan(Config{Seed: 43, Sessions: 500}); c.Digest == a.Digest {
		t.Fatal("different seeds share a digest")
	}

	// The heterogeneity knobs actually produced a mixed fleet.
	counts := a.ClassCounts()
	for _, class := range []string{"desktop", "laptop", "mobile"} {
		if counts[class] == 0 {
			t.Fatalf("500-session plan has no %s sessions: %v", class, counts)
		}
	}
	churny, silent, inEvent := 0, 0, 0
	for _, s := range a.Sessions {
		if s.Churny {
			churny++
		}
		if s.Silent {
			silent++
		}
		if s.Disconnects[0] {
			inEvent++
		}
		if s.Compute <= 0 || s.LatencyMS <= 0 || s.BandwidthKbps <= 0 || s.TabLifetime <= 0 {
			t.Fatalf("degenerate session draw: %+v", s)
		}
	}
	if churny == 0 || silent == 0 || silent >= churny {
		t.Fatalf("churn draw degenerate: churny=%d silent=%d", churny, silent)
	}
	if inEvent == 0 || inEvent == len(a.Sessions) {
		t.Fatalf("disconnect membership degenerate: %d of %d", inEvent, len(a.Sessions))
	}
}

// TestRunReportDeterministicSection: two runs of one plan against fresh
// identical deployments agree on the deterministic report section.
func TestRunReportDeterministicSection(t *testing.T) {
	plan := NewPlan(Config{
		Seed:            7,
		Sessions:        40,
		ChurnyFrac:      0.4,
		AbandonProb:     0.4,
		MeanTabLifetime: 20 * time.Second,
		JoinSpread:      time.Second,
	})
	run := func() Summary {
		e, _ := fleetEngine(t, 25, nil)
		target, err := NewServiceTarget(e)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(tctx, plan, Options{
			Target:    target,
			Sched:     e.Scheduler(),
			Users:     25,
			TimeScale: 0.01,
			Budget:    20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Converged {
			t.Fatalf("fleet did not converge: %s", rep)
		}
		return rep.Deterministic()
	}
	if s1, s2 := run(), run(); !reflect.DeepEqual(s1, s2) {
		t.Fatalf("deterministic report sections differ:\n  %+v\n  %+v", s1, s2)
	}
}

// TestThousandSessionFleetConverges is the headline acceptance run:
// 1000 heterogeneous sessions, 60% silent per-job abandonment across
// the whole fleet, one mass disconnect of 40% of the fleet at 50%
// convergence — and every user's row still converges, race-clean.
func TestThousandSessionFleetConverges(t *testing.T) {
	const users = 120
	e, _ := fleetEngine(t, users, func(cfg *server.Config) {
		cfg.FallbackWorkers = 8
	})
	plan := NewPlan(Config{
		Seed:        1014,
		Sessions:    1000,
		ChurnyFrac:  1,   // every session churns...
		SilentFrac:  1,   // ...all of it silent
		AbandonProb: 0.6, // 60% of leased jobs vanish
		Disconnects: []Disconnect{
			{Frac: 0.4, AtConvergedFrac: 0.5},
		},
		MeanTabLifetime: 30 * time.Second,
		JoinSpread:      2 * time.Second,
	})
	target, err := NewServiceTarget(e)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(tctx, plan, Options{
		Target:    target,
		Sched:     e.Scheduler(),
		Users:     users,
		TimeScale: 0.01,
		Budget:    60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if !rep.Converged {
		t.Fatalf("fleet failed to converge: %s (unrefreshed %v)", rep, e.Scheduler().Unrefreshed())
	}
	if un := e.Scheduler().Unrefreshed(); len(un) != 0 {
		t.Fatalf("%d users unrefreshed after a converged report: %v", len(un), un)
	}
	if rep.SilentAbandons == 0 {
		t.Fatalf("60%% silent churn produced no abandons: %s", rep)
	}
	if rep.Dropped == 0 {
		t.Fatalf("mass disconnect dropped nobody: %s", rep)
	}
	if rep.Expired == 0 {
		t.Fatalf("no lease ever burned under silent churn: %s", rep)
	}
	if rep.LeaseBurnRate <= 0 {
		t.Fatalf("lease burn rate not reported: %s", rep)
	}
}

// TestFleetOverWebSocketTarget drives a small fleet through real
// sockets — dial, credit grants, pushed frames, results — against a
// live server, with a timed mass disconnect that rejoins.
func TestFleetOverWebSocketTarget(t *testing.T) {
	const users = 20
	e, ts := fleetEngine(t, users, nil)
	plan := NewPlan(Config{
		Seed:        3,
		Sessions:    25,
		ChurnyFrac:  0.5,
		SilentFrac:  0.5,
		AbandonProb: 0.5,
		Disconnects: []Disconnect{
			{Frac: 0.5, After: 20 * time.Second, Rejoin: true, RejoinAfter: 10 * time.Second},
		},
		MeanTabLifetime: 50 * time.Second,
		JoinSpread:      time.Second,
	})
	rep, err := Run(tctx, plan, Options{
		Target:    NewWSTarget(ts.URL),
		Sched:     e.Scheduler(),
		Users:     users,
		TimeScale: 0.005,
		Budget:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if !rep.Converged {
		t.Fatalf("socket fleet failed to converge: %s (unrefreshed %v)", rep, e.Scheduler().Unrefreshed())
	}
	if rep.Completed == 0 {
		t.Fatalf("socket fleet completed nothing: %s", rep)
	}
}

// TestRunOptionValidation: the knobs that cannot work fail fast.
func TestRunOptionValidation(t *testing.T) {
	plan := NewPlan(Config{Seed: 1, Sessions: 1})
	if _, err := Run(tctx, plan, Options{}); err == nil {
		t.Fatal("no error without a target")
	}
	e, _ := fleetEngine(t, 1, nil)
	target, _ := NewServiceTarget(e)
	if _, err := Run(tctx, plan, Options{Target: target}); err == nil {
		t.Fatal("no error without an observer")
	}
	evPlan := NewPlan(Config{Seed: 1, Sessions: 1,
		Disconnects: []Disconnect{{Frac: 1, AtConvergedFrac: 0.5}}})
	if _, err := Run(tctx, evPlan, Options{Target: target, Sched: e.Scheduler()}); err == nil {
		t.Fatal("no error for a convergence trigger without Users")
	}
}
