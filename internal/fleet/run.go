package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hyrec/internal/sched"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

// Target opens simulated browser sessions against a deployment.
type Target interface {
	Open(ctx context.Context, s SessionPlan) (Session, error)
}

// Session is one open browser tab: it pulls leased jobs, folds results
// back, and abandons politely via Ack. NextJob blocks until a job
// arrives, its window lapses (nil, nil), or ctx ends.
type Session interface {
	NextJob(ctx context.Context) (*wire.Job, error)
	Result(ctx context.Context, res *wire.Result) error
	Ack(ctx context.Context, lease uint64, done bool) error
	Close() error
}

// Options configures a fleet run.
type Options struct {
	// Target opens the sessions (required).
	Target Target
	// Sched observes the deployment in-process: convergence probing
	// plus the lease-burn and fallback counters in the report. Leave
	// nil for remote targets and set Probe instead.
	Sched *sched.Scheduler
	// Probe reports (unrefreshed users, scheduler quiet); overrides
	// Sched's probe when set.
	Probe func() (unrefreshed int, quiet bool)
	// Users is the total user population, needed by convergence-
	// fraction disconnect triggers and the converged-fraction gauge.
	Users int
	// TimeScale multiplies every plan duration (join offsets, tab
	// lifetimes, latencies, event times); tests compress a "real"
	// 30s-lifetime fleet into milliseconds. Default 1.
	TimeScale float64
	// Budget bounds the whole run. Default 30s.
	Budget time.Duration
}

// Report is the outcome of a fleet run. The Summary section is
// deterministic for a given plan and healthy deployment; the raw
// counters depend on goroutine timing and vary run to run.
type Report struct {
	// Deterministic section.
	Digest   string
	Sessions int
	Classes  map[string]int
	// Converged: every user's KNN row refreshed and the scheduler
	// drained within the budget.
	Converged bool

	// Runtime section.
	ConvergeTime time.Duration
	Dispatched   int64
	Completed    int64
	// PoliteAbandons were acked done=false; SilentAbandons just
	// vanished and burned their lease.
	PoliteAbandons int64
	SilentAbandons int64
	// Reconnects counts tab-lifetime reconnection cycles; Dropped
	// counts session-drops from mass-disconnect events.
	Reconnects int64
	Dropped    int64
	// SessionErrors counts failed opens/transport errors (retried).
	SessionErrors int64

	// Scheduler section (zero unless Options.Sched was set).
	Issued       int64
	Expired      int64
	FallbackRuns int64
	// LeaseBurnRate is Expired/Issued: the fraction of leases the
	// fleet's churn burned.
	LeaseBurnRate float64
}

// Summary is the deterministic slice of a Report — what two runs of the
// same plan against equivalent deployments must agree on.
type Summary struct {
	Digest    string
	Sessions  int
	Classes   map[string]int
	Converged bool
}

// Deterministic extracts the reproducible section of the report.
func (r *Report) Deterministic() Summary {
	return Summary{Digest: r.Digest, Sessions: r.Sessions, Classes: r.Classes, Converged: r.Converged}
}

func (r *Report) String() string {
	return fmt.Sprintf(
		"fleet %s: sessions=%d converged=%v in %v; dispatched=%d completed=%d abandoned=%d+%d reconnects=%d dropped=%d; issued=%d expired=%d burn=%.2f fallback=%d",
		r.Digest, r.Sessions, r.Converged, r.ConvergeTime.Round(time.Millisecond),
		r.Dispatched, r.Completed, r.PoliteAbandons, r.SilentAbandons,
		r.Reconnects, r.Dropped, r.Issued, r.Expired, r.LeaseBurnRate, r.FallbackRuns)
}

// runner is the shared state of one executing fleet.
type runner struct {
	plan *Plan
	opts Options

	start time.Time
	// fired[i] closes when disconnect event i triggers; rejoinAt[i] is
	// only read after that. members[i] is the event's membership size.
	fired    []chan struct{}
	rejoinAt []time.Time
	members  []int64

	dispatched, completed atomic.Int64
	polite, silent        atomic.Int64
	reconnects, dropped   atomic.Int64
	sessionErrors         atomic.Int64
	convergedAt           atomic.Int64 // ns since start, 0 = never
}

// pollWindow bounds every blocking session call so drop checks and
// shutdown stay responsive regardless of time scale.
const pollWindow = 250 * time.Millisecond

// Run executes the plan. It returns when the fleet converged (every
// user refreshed, scheduler drained), the budget lapsed, or ctx ended.
func Run(ctx context.Context, plan *Plan, opts Options) (*Report, error) {
	if opts.Target == nil {
		return nil, errors.New("fleet: Options.Target is required")
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 1
	}
	if opts.Budget <= 0 {
		opts.Budget = 30 * time.Second
	}
	probe := opts.Probe
	if probe == nil && opts.Sched != nil {
		s := opts.Sched
		probe = func() (int, bool) { return len(s.Unrefreshed()), s.Quiet() }
	}
	if probe == nil {
		return nil, errors.New("fleet: need Options.Sched or Options.Probe to observe convergence")
	}
	for _, ev := range plan.Cfg.Disconnects {
		if ev.AtConvergedFrac > 0 && opts.Users <= 0 {
			return nil, errors.New("fleet: convergence-fraction disconnect needs Options.Users")
		}
	}

	ctx, cancel := context.WithTimeout(ctx, opts.Budget)
	defer cancel()

	r := &runner{
		plan:     plan,
		opts:     opts,
		start:    time.Now(),
		fired:    make([]chan struct{}, len(plan.Cfg.Disconnects)),
		rejoinAt: make([]time.Time, len(plan.Cfg.Disconnects)),
	}
	r.members = make([]int64, len(plan.Cfg.Disconnects))
	for i := range r.fired {
		r.fired[i] = make(chan struct{})
		for _, s := range plan.Sessions {
			if s.Disconnects[i] {
				r.members[i]++
			}
		}
	}

	var wg sync.WaitGroup
	for i := range plan.Sessions {
		wg.Add(1)
		go func(sp SessionPlan) {
			defer wg.Done()
			r.session(ctx, sp)
		}(plan.Sessions[i])
	}

	// Monitor: fire scheduled events, detect convergence, end the run.
	r.monitor(ctx, probe, cancel)
	wg.Wait()

	rep := &Report{
		Digest:         plan.Digest,
		Sessions:       len(plan.Sessions),
		Classes:        plan.ClassCounts(),
		Dispatched:     r.dispatched.Load(),
		Completed:      r.completed.Load(),
		PoliteAbandons: r.polite.Load(),
		SilentAbandons: r.silent.Load(),
		Reconnects:     r.reconnects.Load(),
		Dropped:        r.dropped.Load(),
		SessionErrors:  r.sessionErrors.Load(),
	}
	if ns := r.convergedAt.Load(); ns > 0 {
		rep.Converged = true
		rep.ConvergeTime = time.Duration(ns)
	}
	if opts.Sched != nil {
		st := opts.Sched.Stats()
		// Leases come from both the user-driven path (Issued) and
		// worker dispatch (Dispatched); the fleet drives the latter.
		rep.Issued = st.Issued + st.Dispatched
		rep.Expired = st.Expired
		rep.FallbackRuns = st.FallbackRuns
		if rep.Issued > 0 {
			rep.LeaseBurnRate = float64(st.Expired) / float64(rep.Issued)
		}
	}
	return rep, nil
}

func (r *runner) scale(d time.Duration) time.Duration {
	return time.Duration(float64(d) * r.opts.TimeScale)
}

// monitor drives the event triggers and the convergence clock until the
// run is over, then cancels the session context.
func (r *runner) monitor(ctx context.Context, probe func() (int, bool), cancel context.CancelFunc) {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		unrefreshed, quiet := probe()
		elapsed := time.Since(r.start)

		// Fire due events first so a threshold crossed in the same tick
		// as convergence still triggers.
		for i, ev := range r.plan.Cfg.Disconnects {
			select {
			case <-r.fired[i]:
				continue
			default:
			}
			due := false
			if ev.AtConvergedFrac > 0 {
				frac := 1 - float64(unrefreshed)/float64(r.opts.Users)
				due = frac >= ev.AtConvergedFrac
			} else {
				due = elapsed >= r.scale(ev.After)
			}
			if due {
				r.rejoinAt[i] = time.Now().Add(r.scale(ev.RejoinAfter))
				// Dropped is accounted at fire time — membership is plan
				// data, not subject to whether a session's next poll
				// window got to observe the severance before run end.
				r.dropped.Add(r.members[i])
				close(r.fired[i])
			}
		}

		if unrefreshed == 0 && quiet {
			r.convergedAt.CompareAndSwap(0, int64(elapsed))
			cancel()
			return
		}
	}
}

// droppedNow reports whether sp is currently severed by a fired event,
// and whether it can ever come back.
func (r *runner) droppedNow(sp SessionPlan) (down, forever bool) {
	for i, member := range sp.Disconnects {
		if !member {
			continue
		}
		select {
		case <-r.fired[i]:
		default:
			continue
		}
		ev := r.plan.Cfg.Disconnects[i]
		if !ev.Rejoin {
			return true, true
		}
		if time.Now().Before(r.rejoinAt[i]) {
			down = true
		}
	}
	return down, false
}

// session lives one simulated browser: join late, cycle tabs, churn,
// drop on mass disconnects.
func (r *runner) session(ctx context.Context, sp SessionPlan) {
	rng := rand.New(rand.NewSource(sp.Seed))
	kernel := widget.New(widget.WithDevice(widget.Device{
		Name: sp.Class.String(), SpeedFactor: sp.Compute,
	}))
	if !sleepCtx(ctx, r.scale(sp.JoinOffset)) {
		return
	}
	for ctx.Err() == nil {
		if down, forever := r.droppedNow(sp); down || forever {
			if forever {
				return
			}
			if !sleepCtx(ctx, pollWindow/5) {
				return
			}
			continue
		}
		sess, err := r.opts.Target.Open(ctx, sp)
		if err != nil {
			if ctx.Err() == nil {
				r.sessionErrors.Add(1)
				sleepCtx(ctx, pollWindow/5)
			}
			continue
		}
		r.tab(ctx, sp, sess, kernel, rng)
		sess.Close()
		r.reconnects.Add(1)
	}
}

// tab serves jobs on one open session until its lifetime lapses, the
// session is severed, or the run ends.
func (r *runner) tab(ctx context.Context, sp SessionPlan, sess Session, kernel *widget.Widget, rng *rand.Rand) {
	tabCtx, cancel := context.WithTimeout(ctx, r.scale(sp.TabLifetime))
	defer cancel()
	latency := r.scale(time.Duration(sp.LatencyMS) * time.Millisecond)
	for tabCtx.Err() == nil {
		if down, _ := r.droppedNow(sp); down {
			// Severed mid-tab: any lease in flight burns.
			return
		}
		pollCtx, pollCancel := context.WithTimeout(tabCtx, pollWindow)
		job, err := sess.NextJob(pollCtx)
		pollCancel()
		if err != nil {
			if tabCtx.Err() == nil {
				r.sessionErrors.Add(1)
			}
			return
		}
		if job == nil {
			continue
		}
		r.dispatched.Add(1)
		if !sleepCtx(tabCtx, latency) {
			return // tab closed with the job in hand: lease burns
		}
		if sp.Churny && rng.Float64() < sp.AbandonProb {
			if sp.Silent {
				r.silent.Add(1)
				continue // vanish; the lease expires server-side
			}
			r.polite.Add(1)
			if err := sess.Ack(tabCtx, job.Lease, false); err != nil && tabCtx.Err() == nil {
				r.sessionErrors.Add(1)
				return
			}
			continue
		}
		res, _ := kernel.Execute(job)
		if !sleepCtx(tabCtx, latency) {
			return
		}
		if err := sess.Result(tabCtx, res); err != nil {
			if tabCtx.Err() == nil {
				r.sessionErrors.Add(1)
			}
			return
		}
		r.completed.Add(1)
	}
}

// sleepCtx sleeps d unless ctx ends first; true when the full sleep
// happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
