// Package gossip implements the fully decentralized (P2P) recommender
// HyRec is compared against in Sections 2.3 and 5.6: every user machine
// runs a peer-sampling service (Cyclon-style view shuffles, after
// Jelasity et al. [35]) under an epidemic clustering layer (Vicinity /
// Gossple-style [50, 19]) that converges each node's view to its k most
// similar peers. Nodes compute recommendations locally from the profiles
// cached in their cluster view.
//
// The network is simulated in discrete virtual-time rounds (the paper's
// "continuous profile exchanges, typically every minute"); every byte that
// would cross the wire is counted per node, which is what the 24 MB-vs-8 kB
// comparison of Section 5.6 measures.
package gossip

import (
	"math/rand"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// Config parametrises the P2P network.
type Config struct {
	// K is the clustering-view size (the P2P KNN).
	K int
	// RPSView is the peer-sampling view size (Cyclon's c, typically 20).
	RPSView int
	// ShuffleLen is how many descriptors a Cyclon shuffle exchanges.
	ShuffleLen int
	// Period is the gossip round length in virtual time (1 minute in the
	// paper's comparison).
	Period time.Duration
	// Metric scores profile similarity in the clustering layer.
	Metric core.Similarity
	Seed   int64
}

// DefaultConfig mirrors the paper's P2P comparison setup.
func DefaultConfig() Config {
	return Config{
		K:          10,
		RPSView:    20,
		ShuffleLen: 8,
		Period:     time.Minute,
		Metric:     core.Cosine{},
		Seed:       1,
	}
}

// descriptor is a gossiped node reference. Age drives Cyclon's eviction.
type descriptor struct {
	id  core.UserID
	age int
}

// Node is one user machine in the overlay.
type Node struct {
	id      core.UserID
	profile core.Profile
	rps     []descriptor
	// cluster caches the profiles of the current k most similar peers —
	// unlike HyRec, P2P nodes must store neighbour profiles locally.
	cluster []core.Profile

	bytesSent int64
	bytesRecv int64
}

// ID returns the node's user ID.
func (n *Node) ID() core.UserID { return n.id }

// BytesSent returns the cumulative bytes this node pushed to peers.
func (n *Node) BytesSent() int64 { return n.bytesSent }

// BytesReceived returns the cumulative bytes this node received.
func (n *Node) BytesReceived() int64 { return n.bytesRecv }

// Neighbors returns the node's current cluster view (most similar first).
func (n *Node) Neighbors() []core.UserID {
	out := make([]core.UserID, len(n.cluster))
	for i, p := range n.cluster {
		out[i] = p.User()
	}
	return out
}

// Network is the simulated overlay.
type Network struct {
	cfg   Config
	nodes map[core.UserID]*Node
	order []core.UserID
	rng   *rand.Rand
	now   time.Duration
	next  time.Duration
	// avail, when set, reports whether a node is online at a given virtual
	// time; offline nodes neither initiate nor answer gossip (see
	// SetAvailability).
	avail func(core.UserID, time.Duration) bool
	// roundTime is the virtual time of the round currently executing.
	roundTime time.Duration
	// Rounds counts completed gossip rounds.
	Rounds int
}

// NewNetwork creates an empty overlay.
func NewNetwork(cfg Config) *Network {
	if cfg.Metric == nil {
		cfg.Metric = core.Cosine{}
	}
	if cfg.Period <= 0 {
		cfg.Period = time.Minute
	}
	return &Network{
		cfg:   cfg,
		nodes: make(map[core.UserID]*Node),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		next:  cfg.Period,
	}
}

// Size returns the number of nodes.
func (n *Network) Size() int { return len(n.order) }

// Node returns the node for u, or nil.
func (n *Network) Node(u core.UserID) *Node { return n.nodes[u] }

// Join adds a user machine, bootstrapping its RPS view from random
// existing nodes (the usual bootstrap-server assumption).
func (n *Network) Join(u core.UserID) *Node {
	if node, ok := n.nodes[u]; ok {
		return node
	}
	node := &Node{id: u, profile: core.NewProfile(u)}
	for i := 0; i < n.cfg.RPSView && i < len(n.order); i++ {
		peer := n.order[n.rng.Intn(len(n.order))]
		if peer != u {
			node.rps = append(node.rps, descriptor{id: peer})
		}
	}
	n.nodes[u] = node
	n.order = append(n.order, u)
	return node
}

// Rate records a local rating on u's machine (joining it first if needed).
func (n *Network) Rate(u core.UserID, item core.ItemID, liked bool) {
	node := n.Join(u)
	node.profile = node.profile.WithRating(item, liked)
}

// Recommend computes recommendations locally on u's machine from its
// cached cluster profiles — no network traffic (that is the P2P model's
// selling point; its cost is the standing gossip traffic).
func (n *Network) Recommend(u core.UserID, r int) []core.ItemID {
	node, ok := n.nodes[u]
	if !ok {
		return nil
	}
	return core.Recommend(node.profile, node.cluster, r)
}

// SetAvailability installs a churn model: a function reporting whether a
// user's machine is online at a virtual time. Offline nodes skip their own
// gossip turns, and peers that contact them observe a connection timeout
// (Cyclon evicts the dead descriptor). This models the on/off-line
// patterns Section 2.3 lists among P2P deployment challenges; HyRec's
// server, by contrast, serves offline users' profiles regardless
// (Section 2.4), which the ChurnStudy experiment quantifies. A nil model
// means everyone is always online.
func (n *Network) SetAvailability(f func(core.UserID, time.Duration) bool) {
	n.avail = f
}

// online reports whether u is reachable during the current round.
func (n *Network) online(u core.UserID) bool {
	return n.avail == nil || n.avail(u, n.roundTime)
}

// AdvanceTo runs gossip rounds for every period boundary in (now, t].
func (n *Network) AdvanceTo(t time.Duration) {
	for n.next <= t {
		n.roundTime = n.next
		n.runRound()
		n.next += n.cfg.Period
	}
	n.now = t
}

// RunRounds forces the given number of immediate rounds (tests and
// convergence studies). Rounds execute at the current virtual time.
func (n *Network) RunRounds(rounds int) {
	n.roundTime = n.now
	for i := 0; i < rounds; i++ {
		n.runRound()
	}
}

// runRound performs one gossip round: every online node does one Cyclon
// shuffle and one clustering exchange.
func (n *Network) runRound() {
	for _, u := range n.order {
		if n.online(u) {
			n.cyclonShuffle(n.nodes[u])
		}
	}
	for _, u := range n.order {
		if n.online(u) {
			n.clusterExchange(n.nodes[u])
		}
	}
	n.Rounds++
}

// descriptorBytes is the wire size of one gossiped node descriptor
// (id + age + address, as in Cyclon).
const descriptorBytes = 16

// cyclonShuffle exchanges ShuffleLen descriptors with the oldest peer.
func (n *Network) cyclonShuffle(node *Node) {
	if len(node.rps) == 0 {
		return
	}
	// Age all, pick the oldest.
	oldest := 0
	for i := range node.rps {
		node.rps[i].age++
		if node.rps[i].age > node.rps[oldest].age {
			oldest = i
		}
	}
	peerID := node.rps[oldest].id
	peer, ok := n.nodes[peerID]
	if !ok || !n.online(peerID) {
		// Dead or offline peer: the connection times out and Cyclon
		// evicts the descriptor.
		node.rps = append(node.rps[:oldest], node.rps[oldest+1:]...)
		return
	}
	// Build both shuffle payloads.
	outbound := n.sampleDescriptors(node, n.cfg.ShuffleLen-1)
	outbound = append(outbound, descriptor{id: node.id})
	inbound := n.sampleDescriptors(peer, n.cfg.ShuffleLen)

	cost := int64(descriptorBytes * len(outbound))
	node.bytesSent += cost
	peer.bytesRecv += cost
	cost = int64(descriptorBytes * len(inbound))
	peer.bytesSent += cost
	node.bytesRecv += cost

	n.mergeRPS(node, inbound)
	n.mergeRPS(peer, outbound)
}

func (n *Network) sampleDescriptors(node *Node, count int) []descriptor {
	if count > len(node.rps) {
		count = len(node.rps)
	}
	out := make([]descriptor, 0, count)
	perm := n.rng.Perm(len(node.rps))
	for _, i := range perm[:count] {
		out = append(out, node.rps[i])
	}
	return out
}

func (n *Network) mergeRPS(node *Node, incoming []descriptor) {
	have := make(map[core.UserID]bool, len(node.rps)+1)
	have[node.id] = true
	for _, d := range node.rps {
		have[d.id] = true
	}
	for _, d := range incoming {
		if have[d.id] {
			continue
		}
		node.rps = append(node.rps, descriptor{id: d.id, age: 0})
		have[d.id] = true
	}
	// Evict oldest entries beyond capacity.
	for len(node.rps) > n.cfg.RPSView {
		oldest := 0
		for i := range node.rps {
			if node.rps[i].age > node.rps[oldest].age {
				oldest = i
			}
		}
		node.rps = append(node.rps[:oldest], node.rps[oldest+1:]...)
	}
}

// randomSampleSize is how many RPS peers contribute their profile to each
// clustering exchange — the "additional random sample" of the protocol
// described in Section 2.3, which prevents the search from sticking in a
// local optimum.
const randomSampleSize = 3

// clusterExchange is the Vicinity/Gossple step (Section 2.3): contact one
// member of the current KNN view (falling back to a random RPS peer),
// exchange full cluster views including profiles, merge in a small random
// sample of RPS peers' profiles, and keep the k most similar profiles
// seen. Profile payloads dominate P2P bandwidth (Section 5.6).
func (n *Network) clusterExchange(node *Node) {
	var peer *Node
	if len(node.cluster) > 0 {
		peer = n.nodes[node.cluster[n.rng.Intn(len(node.cluster))].User()]
	}
	if (peer == nil || !n.online(peer.id)) && len(node.rps) > 0 {
		peer = n.nodes[node.rps[n.rng.Intn(len(node.rps))].id]
	}
	if peer == nil || peer.id == node.id || !n.online(peer.id) {
		// Unreachable exchange partner: this round's clustering step is
		// lost, exactly the churn penalty decentralized systems pay.
		return
	}

	// Payloads: own profile + cluster view profiles, both directions.
	outbound := append([]core.Profile{node.profile}, node.cluster...)
	inbound := append([]core.Profile{peer.profile}, peer.cluster...)

	cost := profilesWireBytes(outbound)
	node.bytesSent += cost
	peer.bytesRecv += cost
	cost = profilesWireBytes(inbound)
	peer.bytesSent += cost
	node.bytesRecv += cost

	// Random sample: fetch a few RPS peers' profiles (each fetch is
	// traffic from the sampled peer to this node).
	candidates := inbound
	for i := 0; i < randomSampleSize && len(node.rps) > 0; i++ {
		sampled := n.nodes[node.rps[n.rng.Intn(len(node.rps))].id]
		if sampled == nil || sampled.id == node.id || !n.online(sampled.id) {
			continue
		}
		cost := profilesWireBytes([]core.Profile{sampled.profile})
		sampled.bytesSent += cost
		node.bytesRecv += cost
		candidates = append(candidates, sampled.profile)
	}

	node.cluster = mergeCluster(node, candidates, n.cfg.K, n.cfg.Metric)
	peer.cluster = mergeCluster(peer, outbound, n.cfg.K, n.cfg.Metric)
}

// mergeCluster keeps the k profiles most similar to node's own out of its
// current view plus the received candidates.
func mergeCluster(node *Node, received []core.Profile, k int, metric core.Similarity) []core.Profile {
	best := make(map[core.UserID]core.Profile, len(node.cluster)+len(received))
	for _, p := range node.cluster {
		best[p.User()] = p
	}
	for _, p := range received {
		if p.User() == node.id {
			continue
		}
		// Prefer the fresher snapshot.
		if cur, ok := best[p.User()]; !ok || p.Version() > cur.Version() {
			best[p.User()] = p
		}
	}
	candidates := make([]core.Profile, 0, len(best))
	for _, p := range best {
		candidates = append(candidates, p)
	}
	selected := core.SelectKNN(node.profile, candidates, k, metric)
	out := make([]core.Profile, 0, len(selected))
	for _, s := range selected {
		out = append(out, best[s.User])
	}
	return out
}

// profilesWireBytes estimates the JSON wire size of a profile batch using
// the same encoder as HyRec's messages, so the two systems' bandwidth
// numbers are directly comparable.
func profilesWireBytes(profiles []core.Profile) int64 {
	var total int64
	for _, p := range profiles {
		total += int64(len(wire.AppendProfileMsg(nil, wire.ProfileToMsg(p, nil))))
	}
	return total
}

// TotalBytes sums traffic over all nodes (sent side only, to avoid double
// counting).
func (n *Network) TotalBytes() int64 {
	var total int64
	for _, node := range n.nodes {
		total += node.bytesSent
	}
	return total
}

// MeanNodeTraffic returns the average per-node traffic (sent + received),
// the quantity Section 5.6 reports (≈24 MB per Digg node for P2P).
func (n *Network) MeanNodeTraffic() float64 {
	if len(n.nodes) == 0 {
		return 0
	}
	var total int64
	for _, node := range n.nodes {
		total += node.bytesSent + node.bytesRecv
	}
	return float64(total) / float64(len(n.nodes))
}
