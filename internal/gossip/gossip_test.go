package gossip

import (
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/metrics"
	"hyrec/internal/replay"
)

func buildNetwork(t *testing.T, n int) *Network {
	t.Helper()
	cfg := DefaultConfig()
	cfg.K = 4
	net := NewNetwork(cfg)
	for u := 0; u < n; u++ {
		base := core.ItemID(0)
		if u%2 == 1 {
			base = 100
		}
		for j := 0; j < 6; j++ {
			net.Rate(core.UserID(u), base+core.ItemID((u/2+j)%10), true)
		}
	}
	return net
}

func TestJoinIdempotent(t *testing.T) {
	net := NewNetwork(DefaultConfig())
	a := net.Join(1)
	b := net.Join(1)
	if a != b || net.Size() != 1 {
		t.Fatal("Join not idempotent")
	}
}

func TestRateUpdatesLocalProfile(t *testing.T) {
	net := NewNetwork(DefaultConfig())
	net.Rate(1, 5, true)
	node := net.Node(1)
	if node == nil || !node.profile.LikedContains(5) {
		t.Fatal("local profile not updated")
	}
}

func TestClusteringConvergesToCommunities(t *testing.T) {
	net := buildNetwork(t, 40)
	net.RunRounds(25)
	// After convergence, every node's cluster view should be same-parity
	// (the two communities share no items at all).
	violations := 0
	checked := 0
	for u := 0; u < 40; u++ {
		for _, v := range net.Node(core.UserID(u)).Neighbors() {
			checked++
			if int(v)%2 != u%2 {
				violations++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no cluster entries at all")
	}
	if violations > checked/10 {
		t.Fatalf("%d/%d cross-community neighbours after convergence", violations, checked)
	}
}

func TestClusteringApproachesIdealViewSimilarity(t *testing.T) {
	net := buildNetwork(t, 40)
	net.RunRounds(30)
	src := metrics.MapSource{}
	for u := 0; u < 40; u++ {
		src[core.UserID(u)] = net.Node(core.UserID(u)).profile
	}
	gotV := metrics.ViewSimilarity(src, func(u core.UserID) []core.UserID {
		return net.Node(u).Neighbors()
	}, core.Cosine{})
	idealV := metrics.IdealViewSimilarity(src, 4, core.Cosine{})
	if gotV < 0.7*idealV {
		t.Fatalf("gossip view similarity %v too far below ideal %v", gotV, idealV)
	}
}

func TestBandwidthGrowsPerRound(t *testing.T) {
	net := buildNetwork(t, 20)
	net.RunRounds(1)
	after1 := net.TotalBytes()
	if after1 == 0 {
		t.Fatal("no traffic after one round")
	}
	net.RunRounds(9)
	after10 := net.TotalBytes()
	// Standing gossip traffic: roughly linear in rounds (clusters grow a
	// little, so allow a wide band).
	if after10 < 5*after1 {
		t.Fatalf("traffic did not accumulate: %d after 1 round, %d after 10", after1, after10)
	}
	if net.MeanNodeTraffic() <= 0 {
		t.Fatal("mean node traffic not positive")
	}
}

func TestSentEqualsReceivedGlobally(t *testing.T) {
	net := buildNetwork(t, 20)
	net.RunRounds(5)
	var sent, recv int64
	for u := 0; u < 20; u++ {
		node := net.Node(core.UserID(u))
		sent += node.BytesSent()
		recv += node.BytesReceived()
	}
	if sent != recv {
		t.Fatalf("conservation violated: sent %d, received %d", sent, recv)
	}
}

func TestRecommendIsLocal(t *testing.T) {
	net := buildNetwork(t, 20)
	net.RunRounds(15)
	before := net.TotalBytes()
	recs := net.Recommend(0, 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations from cluster view")
	}
	if net.TotalBytes() != before {
		t.Fatal("Recommend generated traffic (must be local)")
	}
	// Unknown user: nil, no crash.
	if recs := net.Recommend(999, 5); recs != nil {
		t.Fatalf("unknown user recs = %v", recs)
	}
}

func TestAdvanceToRunsPeriodRounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = time.Minute
	net := NewNetwork(cfg)
	net.Rate(1, 1, true)
	net.Rate(2, 1, true)
	net.AdvanceTo(5 * time.Minute)
	if net.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", net.Rounds)
	}
	// No double-running when time does not advance past a boundary.
	net.AdvanceTo(5*time.Minute + 30*time.Second)
	if net.Rounds != 5 {
		t.Fatalf("rounds = %d after sub-period advance", net.Rounds)
	}
}

func TestSystemAdapter(t *testing.T) {
	var _ replay.System = (*System)(nil)
	sys := NewSystem(DefaultConfig())
	if sys.Name() != "p2p" {
		t.Fatal("name")
	}
	sys.Rate(0, core.Rating{User: 1, Item: 1, Liked: true})
	sys.Rate(0, core.Rating{User: 2, Item: 1, Liked: true})
	sys.Tick(3 * time.Minute)
	if sys.Network().Rounds != 3 {
		t.Fatalf("rounds = %d", sys.Network().Rounds)
	}
	if sys.Neighbors(999) != nil {
		t.Fatal("unknown user has neighbours")
	}
	// After gossip, the two identical users should find each other.
	if hood := sys.Neighbors(1); len(hood) == 0 || hood[0] != 2 {
		t.Fatalf("neighbors = %v", hood)
	}
	if recs := sys.Recommend(3*time.Minute, 1, 3); recs != nil {
		// User 2 has no items user 1 lacks; empty or nil is fine. Just no
		// panic.
		_ = recs
	}
}

func TestRPSViewBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RPSView = 5
	net := NewNetwork(cfg)
	for u := 0; u < 50; u++ {
		net.Rate(core.UserID(u), 1, true)
	}
	net.RunRounds(10)
	for u := 0; u < 50; u++ {
		if got := len(net.Node(core.UserID(u)).rps); got > 5 {
			t.Fatalf("rps view of %d exceeds bound: %d", u, got)
		}
	}
}

func TestClusterViewBounded(t *testing.T) {
	net := buildNetwork(t, 30)
	net.RunRounds(10)
	for u := 0; u < 30; u++ {
		if got := len(net.Node(core.UserID(u)).cluster); got > 4 {
			t.Fatalf("cluster view of %d exceeds k: %d", u, got)
		}
	}
}

func BenchmarkGossipRound(b *testing.B) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg)
	for u := 0; u < 500; u++ {
		for j := 0; j < 10; j++ {
			net.Rate(core.UserID(u), core.ItemID((u*7+j)%300), true)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.RunRounds(1)
	}
}
