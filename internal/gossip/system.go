package gossip

import (
	"time"

	"hyrec/internal/core"
	"hyrec/internal/replay"
)

// System adapts the P2P Network to the replay.System interface so the
// same traces drive it and the centralized systems.
type System struct {
	net *Network
}

var _ replay.System = (*System)(nil)

// NewSystem wraps a network built from cfg.
func NewSystem(cfg Config) *System { return &System{net: NewNetwork(cfg)} }

// Network exposes the underlying overlay (bandwidth meters etc.).
func (s *System) Network() *Network { return s.net }

// Name implements replay.System.
func (s *System) Name() string { return "p2p" }

// Rate implements replay.System.
func (s *System) Rate(_ time.Duration, r core.Rating) {
	s.net.Rate(r.User, r.Item, r.Liked)
}

// Recommend implements replay.System.
func (s *System) Recommend(_ time.Duration, u core.UserID, n int) []core.ItemID {
	return s.net.Recommend(u, n)
}

// Neighbors implements replay.System.
func (s *System) Neighbors(u core.UserID) []core.UserID {
	node := s.net.Node(u)
	if node == nil {
		return nil
	}
	return node.Neighbors()
}

// Tick implements replay.System: gossip rounds run on every period
// boundary of the virtual clock.
func (s *System) Tick(t time.Duration) { s.net.AdvanceTo(t) }
