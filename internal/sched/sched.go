// Package sched is the asynchronous job lifecycle of the HyRec
// orchestrator (Section 3): it decouples "this user's KNN row is stale"
// from "a browser happens to be asking right now".
//
// The paper's flow is synchronous — a client request pulls a
// personalization job, the widget computes, the result is folded back in.
// That alone cannot keep personalization fresh when browsers are slow,
// churn out mid-job, or never return (the Section 2.3/2.4 churn
// discussion, reproduced in internal/churn): a job handed to a vanished
// browser is simply lost. This package adds the missing lifecycle:
//
//   - every issued job carries a lease (ID, deadline, attempt number);
//   - a staleness-priority queue decides which user's refresh is
//     dispatched next to pull-based workers (stalest first);
//   - leases that expire (stragglers) are re-issued with a bounded retry
//     budget;
//   - leases that exhaust the budget — and users nobody computes for at
//     all — are absorbed by a configurable server-side fallback worker
//     pool that executes the job locally, so neighborhoods converge even
//     under arbitrary churn.
//
// The fallback pool is the residual server compute of the Section 5.4
// cost argument: it must stay small for offloading to pay off, so its
// concurrency is capped by a Budget that a multi-partition cluster
// shares across all its schedulers.
//
// The scheduler is storage-agnostic: it tracks user states and lease
// lifetimes, and delegates actual job execution to an Executor callback
// (the engine's local KNN + top-k path). All methods are safe for
// concurrent use.
package sched

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"hyrec/internal/core"
)

// DefaultLeaseTTL is the lease duration when Config.LeaseTTL is zero.
const DefaultLeaseTTL = 30 * time.Second

// DefaultMaxRetries is the re-issue budget when Config.MaxRetries is
// zero (pass a negative value for "no re-issues").
const DefaultMaxRetries = 2

// Config parametrises a Scheduler.
type Config struct {
	// LeaseTTL is how long a worker holds an issued job before the lease
	// expires and the job is re-issued. Zero selects DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxRetries bounds how many times an expired or abandoned lease is
	// re-issued before the job falls back to server-side execution. Zero
	// selects DefaultMaxRetries; negative means no re-issues.
	MaxRetries int
	// FallbackWorkers is the size of the server-side local execution
	// pool. Zero disables local execution: exhausted jobs re-enter the
	// queue with a reset retry budget instead.
	FallbackWorkers int
	// Budget, when non-nil, bounds concurrent fallback executions across
	// schedulers (a cluster shares one). Nil means each worker runs
	// unthrottled.
	Budget *Budget
	// FallbackAfter sends a job straight to the fallback pool when it
	// has sat undispatched for this long — the "inactive user" path: the
	// user is not visiting and no worker is pulling, so the server must
	// compute locally or the row never converges. Zero selects 4×LeaseTTL
	// when the pool is enabled; negative disables the path.
	FallbackAfter time.Duration
	// SweepEvery is the lease-expiry scan period. Zero selects
	// LeaseTTL/4, clamped to [5ms, 1s].
	SweepEvery time.Duration
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = DefaultMaxRetries
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.FallbackAfter == 0 && c.FallbackWorkers > 0 {
		c.FallbackAfter = 4 * c.LeaseTTL
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.LeaseTTL / 4
		if c.SweepEvery < 5*time.Millisecond {
			c.SweepEvery = 5 * time.Millisecond
		}
		if c.SweepEvery > time.Second {
			c.SweepEvery = time.Second
		}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Executor runs one personalization job entirely server-side — the
// engine's local KNN-selection + recommendation path. It must be safe
// for concurrent use.
type Executor func(ctx context.Context, u core.UserID) error

// Lease is the handle attached to every issued job.
type Lease struct {
	// ID identifies the lease; the widget echoes it on its result (or on
	// an explicit ack).
	ID uint64
	// User is the real user the job refreshes.
	User core.UserID
	// Deadline is when the lease expires and the job becomes re-issuable.
	Deadline time.Time
	// Attempt counts issues of this refresh cycle (1 = first issue).
	Attempt int
}

// Stats are the scheduler's lifetime counters plus current gauges.
type Stats struct {
	// Issued counts user-driven leases (Acquire).
	Issued int64
	// Dispatched counts worker-pulled leases (Next/TryNext).
	Dispatched int64
	// Acked counts leases completed by a fold-in or an explicit done-ack.
	Acked int64
	// Abandoned counts explicit done=false acks.
	Abandoned int64
	// Expired counts leases whose deadline passed unacked (stragglers).
	Expired int64
	// Reissued counts jobs put back in the queue after expiry/abandon.
	Reissued int64
	// FallbackRuns counts server-side local executions.
	FallbackRuns int64
	// FallbackErrors counts local executions that failed.
	FallbackErrors int64
	// Pending, Leased and FallbackQueued are current gauges.
	Pending, Leased, FallbackQueued int
	// Unrefreshed gauges how many tracked users never had a fold-in —
	// the quantity a fleet watches to call a deployment converged.
	Unrefreshed int
}

// Add accumulates o into s — the aggregation a multi-scheduler front-end
// (the cluster) performs over its partitions. Kept next to the struct so
// a new counter cannot be forgotten in the roll-up.
func (s *Stats) Add(o Stats) {
	s.Issued += o.Issued
	s.Dispatched += o.Dispatched
	s.Acked += o.Acked
	s.Abandoned += o.Abandoned
	s.Expired += o.Expired
	s.Reissued += o.Reissued
	s.FallbackRuns += o.FallbackRuns
	s.FallbackErrors += o.FallbackErrors
	s.Pending += o.Pending
	s.Leased += o.Leased
	s.FallbackQueued += o.FallbackQueued
	s.Unrefreshed += o.Unrefreshed
}

// user lifecycle states.
type state uint8

const (
	stateFresh    state = iota // row refreshed, nothing owed
	statePending               // stale, waiting for dispatch
	stateLeased                // a job for this user is out under a lease
	stateFallback              // queued for / running on the fallback pool
)

type userState struct {
	user       core.UserID
	st         state
	dirtySince time.Time // start of the current refresh cycle
	leaseID    uint64
	retries    int  // re-issues consumed this cycle
	dirtyAgain bool // staleness arrived while leased / in fallback
	refreshed  bool // at least one fold-in ever happened
	heapIdx    int  // position in the pending heap, -1 when absent
}

type leaseRec struct {
	user     core.UserID
	deadline time.Time
}

// Scheduler tracks per-user freshness and the lease lifecycle. Construct
// with New; Close stops the sweeper and fallback pool.
type Scheduler struct {
	cfg  Config
	exec Executor

	mu      sync.Mutex
	users   map[core.UserID]*userState
	pending pendingHeap
	leases  map[uint64]*leaseRec
	expiry  []uint64 // lease IDs in issue order (deadlines nondecreasing)
	nextID  uint64
	idStep  uint64
	readyCh chan struct{} // closed+replaced to wake Next waiters
	onReady func()        // external work-available hook (see OnReady)
	stats   Stats
	// unrefreshed counts tracked users with refreshed == false, kept
	// incrementally so Stats() does not scan s.users under the lock on
	// every scrape.
	unrefreshed int
	// standby parks the dispatch side: MarkStale keeps accumulating the
	// pending backlog, but Next/TryNext issue nothing and the sweeper
	// neither promotes over-age users to the fallback pool nor lets
	// re-issues reach it. A replica partition runs its scheduler in
	// standby so leases stay primary-only; promotion (SetStandby(false))
	// releases the accumulated backlog at once.
	standby bool

	fallbackQ  []core.UserID
	fbCond     *sync.Cond
	fbInflight int

	stopCtx  context.Context
	stopFn   context.CancelFunc
	stopped  bool
	closeOne sync.Once
	wg       sync.WaitGroup
}

// New builds and starts a scheduler. exec may be nil only when
// cfg.FallbackWorkers is zero.
func New(cfg Config, exec Executor) *Scheduler {
	cfg = cfg.withDefaults()
	if cfg.FallbackWorkers > 0 && exec == nil {
		panic("sched: fallback workers configured with nil executor")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:     cfg,
		exec:    exec,
		users:   make(map[core.UserID]*userState),
		leases:  make(map[uint64]*leaseRec),
		nextID:  1,
		idStep:  1,
		readyCh: make(chan struct{}),
		stopCtx: ctx,
		stopFn:  cancel,
	}
	s.fbCond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.sweepLoop()
	for i := 0; i < cfg.FallbackWorkers; i++ {
		s.wg.Add(1)
		go s.fallbackLoop()
	}
	return s
}

// SetIDSpace partitions the lease-ID space: this scheduler mints IDs
// start, start+step, start+2·step, … so sibling schedulers (cluster
// partitions) never collide and a front-end can route an ack by
// (id-1) mod step. Must be called before any lease is issued.
func (s *Scheduler) SetIDSpace(start, step uint64) {
	if start == 0 || step == 0 {
		panic("sched: lease ID space must have start and step >= 1")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.leases) > 0 || s.nextID != 1 && s.nextID != start {
		panic("sched: SetIDSpace after leases were issued")
	}
	s.nextID, s.idStep = start, step
}

// OnReady installs a hook invoked (under the scheduler's lock — it must
// not block) whenever a user enters the pending queue. A multi-scheduler
// front-end (the cluster) funnels every partition's hook into one
// buffered channel so its dispatch loop can sleep instead of polling.
// Must be set before traffic.
func (s *Scheduler) OnReady(fn func()) {
	s.mu.Lock()
	s.onReady = fn
	s.mu.Unlock()
}

// SetStandby parks or releases the dispatch side (see the standby field).
// Entering standby does not recall leases already out — the caller drains
// those via Evict; leaving standby wakes Next waiters and fires the
// OnReady hook when a backlog is waiting.
func (s *Scheduler) SetStandby(standby bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.standby == standby {
		return
	}
	s.standby = standby
	if !standby && s.pending.Len() > 0 {
		close(s.readyCh)
		s.readyCh = make(chan struct{})
		if s.onReady != nil {
			s.onReady()
		}
	}
}

// Standby reports whether the dispatch side is parked.
func (s *Scheduler) Standby() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.standby
}

// Close stops the sweeper and the fallback pool, waiting for in-flight
// fallback executions to finish. Safe to call multiple times.
func (s *Scheduler) Close() {
	s.closeOne.Do(func() {
		s.stopFn()
		s.mu.Lock()
		s.stopped = true
		s.fbCond.Broadcast()
		s.mu.Unlock()
		s.wg.Wait()
	})
}

// MarkStale records that u's KNN row is out of date (a rating arrived).
// The user enters the staleness queue; if a job for u is already out,
// the re-dirty is remembered and u re-enters the queue when that job
// completes.
func (s *Scheduler) MarkStale(u core.UserID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.userLocked(u)
	switch st.st {
	case stateFresh:
		st.dirtySince = s.cfg.Clock()
		st.retries = 0
		s.toPendingLocked(st)
	case statePending:
		// already queued; the original dirtySince keeps its priority
	case stateLeased, stateFallback:
		st.dirtyAgain = true
	}
}

// Acquire issues a lease for a user-driven job: the engine is assembling
// a job for u right now (the synchronous pull path), so the scheduler
// records the outstanding work. A previously outstanding lease for u is
// superseded.
func (s *Scheduler) Acquire(u core.UserID) Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.userLocked(u)
	if st.st == stateFresh {
		st.dirtySince = s.cfg.Clock()
		st.retries = 0
	}
	s.stats.Issued++
	return s.leaseLocked(st)
}

// Next blocks until a stale user is available for dispatch (stalest
// first) or ctx is done, returning ok=false in the latter case.
func (s *Scheduler) Next(ctx context.Context) (Lease, bool) {
	for {
		s.mu.Lock()
		if !s.standby && s.pending.Len() > 0 {
			st := heap.Pop(&s.pending).(*userState)
			s.stats.Dispatched++
			l := s.leaseLocked(st)
			s.mu.Unlock()
			return l, true
		}
		ready := s.readyCh
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return Lease{}, false
		case <-s.stopCtx.Done():
			return Lease{}, false
		case <-ready:
		}
	}
}

// TryNext is the non-blocking form of Next.
func (s *Scheduler) TryNext() (Lease, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.standby || s.pending.Len() == 0 {
		return Lease{}, false
	}
	st := heap.Pop(&s.pending).(*userState)
	s.stats.Dispatched++
	return s.leaseLocked(st), true
}

// Ack resolves lease id: done=true marks the job complete (the result
// was folded in), done=false abandons it for immediate re-issue. It
// reports false when the lease is unknown — already completed,
// superseded, expired past its retry budget, or never issued.
func (s *Scheduler) Ack(id uint64, done bool) bool {
	return s.ack(id, 0, false, done)
}

// AckUser is Ack with the lease's user binding verified: it reports
// false — with no side effects — unless lease id is outstanding for
// exactly u. Fold-in paths use it so a result carrying some other
// user's (sequential, guessable) lease ID cannot retire that user's
// refresh cycle.
func (s *Scheduler) AckUser(id uint64, u core.UserID, done bool) bool {
	return s.ack(id, u, true, done)
}

func (s *Scheduler) ack(id uint64, u core.UserID, checkUser, done bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.leases[id]
	if !ok || (checkUser && rec.user != u) {
		return false
	}
	delete(s.leases, id)
	st := s.users[rec.user]
	st.leaseID = 0
	if done {
		s.stats.Acked++
		s.completeLocked(st)
	} else {
		s.stats.Abandoned++
		s.reissueLocked(st)
	}
	return true
}

// Refreshed records a fold-in for u that did not carry a lease (the
// legacy synchronous path): any outstanding lease is retired and u
// becomes fresh.
func (s *Scheduler) Refreshed(u core.UserID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.userLocked(u)
	if st.leaseID != 0 {
		delete(s.leases, st.leaseID)
		st.leaseID = 0
	}
	s.completeLocked(st)
}

// Evict withdraws u from the scheduler's lifecycle: any outstanding
// lease is dropped (a later ack for it reports unknown), the pending
// and fallback queues forget the user, and the refresh cycle is
// cancelled. It reports whether u still owed a refresh — pending,
// leased, queued for fallback, or re-dirtied mid-flight — so a
// migration coordinator can re-mark the user stale on the partition
// that owns her now. The user's record is retained (an in-flight
// fallback execution may still consult it); a fresh record costs a few
// dozen bytes and is rebuilt on the next MarkStale anyway.
func (s *Scheduler) Evict(u core.UserID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.users[u]
	if !ok {
		return false
	}
	owed := st.st != stateFresh || st.dirtyAgain
	if st.leaseID != 0 {
		delete(s.leases, st.leaseID)
		st.leaseID = 0
	}
	if st.heapIdx >= 0 {
		heap.Remove(&s.pending, st.heapIdx)
	}
	for i, q := range s.fallbackQ {
		if q == u {
			s.fallbackQ = append(s.fallbackQ[:i], s.fallbackQ[i+1:]...)
			break
		}
	}
	st.st = stateFresh
	st.dirtyAgain = false
	st.retries = 0
	return owed
}

// SweepNow expires overdue leases and promotes over-age pending users to
// the fallback pool immediately (the sweeper goroutine does the same on
// a timer; tests call this directly).
func (s *Scheduler) SweepNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock()
	// Leases are appended in deadline order, so expiry scans a prefix.
	for len(s.expiry) > 0 {
		id := s.expiry[0]
		rec, live := s.leases[id]
		if live && rec.deadline.After(now) {
			break
		}
		s.expiry = s.expiry[1:]
		if !live {
			continue // acked or superseded earlier
		}
		delete(s.leases, id)
		st := s.users[rec.user]
		st.leaseID = 0
		s.stats.Expired++
		s.reissueLocked(st)
	}
	// Inactive users: pending entries nobody dispatched within
	// FallbackAfter go to the fallback pool so they converge anyway.
	if s.cfg.FallbackAfter > 0 && s.cfg.FallbackWorkers > 0 && !s.standby {
		for s.pending.Len() > 0 {
			st := s.pending[0]
			if now.Sub(st.dirtySince) < s.cfg.FallbackAfter {
				break
			}
			heap.Pop(&s.pending)
			s.toFallbackLocked(st)
		}
	}
}

// Stats returns a snapshot of the lifetime counters and current gauges.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.Pending = s.pending.Len()
	out.Leased = len(s.leases)
	out.FallbackQueued = len(s.fallbackQ) + s.fbInflight
	out.Unrefreshed = s.unrefreshed
	return out
}

// Quiet reports whether no work is pending, leased, or in the fallback
// pipeline — every tracked user is fresh.
func (s *Scheduler) Quiet() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending.Len() == 0 && len(s.leases) == 0 &&
		len(s.fallbackQ) == 0 && s.fbInflight == 0
}

// RefreshedUser reports whether at least one fold-in ever completed
// for u.
func (s *Scheduler) RefreshedUser(u core.UserID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.users[u]
	return ok && st.refreshed
}

// Unrefreshed returns the tracked users that have never had a fold-in —
// the convergence check of the churny-worker stress scenario.
func (s *Scheduler) Unrefreshed() []core.UserID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []core.UserID
	for u, st := range s.users {
		if !st.refreshed {
			out = append(out, u)
		}
	}
	return out
}

// ---- internals (all *Locked helpers require s.mu held) ----

func (s *Scheduler) userLocked(u core.UserID) *userState {
	st, ok := s.users[u]
	if !ok {
		st = &userState{user: u, heapIdx: -1}
		s.users[u] = st
		s.unrefreshed++
	}
	return st
}

// markRefreshedLocked flips st.refreshed exactly once, keeping the
// incremental unrefreshed gauge in step.
func (s *Scheduler) markRefreshedLocked(st *userState) {
	if !st.refreshed {
		st.refreshed = true
		s.unrefreshed--
	}
}

func (s *Scheduler) leaseLocked(st *userState) Lease {
	if st.leaseID != 0 {
		delete(s.leases, st.leaseID) // supersede the outstanding lease
	}
	if st.heapIdx >= 0 {
		heap.Remove(&s.pending, st.heapIdx)
	}
	id := s.nextID
	s.nextID += s.idStep
	deadline := s.cfg.Clock().Add(s.cfg.LeaseTTL)
	s.leases[id] = &leaseRec{user: st.user, deadline: deadline}
	s.expiry = append(s.expiry, id)
	st.st = stateLeased
	st.leaseID = id
	return Lease{ID: id, User: st.user, Deadline: deadline, Attempt: st.retries + 1}
}

func (s *Scheduler) completeLocked(st *userState) {
	if st.heapIdx >= 0 {
		// Defensive: a completing user must not linger in the pending
		// heap, or it would be popped later as a spurious dispatch.
		heap.Remove(&s.pending, st.heapIdx)
	}
	s.markRefreshedLocked(st)
	st.retries = 0
	if st.dirtyAgain {
		st.dirtyAgain = false
		st.dirtySince = s.cfg.Clock()
		s.toPendingLocked(st)
		return
	}
	st.st = stateFresh
}

// reissueLocked re-queues a user whose lease expired or was abandoned,
// or hands it to the fallback pool once the retry budget is exhausted.
func (s *Scheduler) reissueLocked(st *userState) {
	st.retries++
	if st.retries > s.cfg.MaxRetries && s.cfg.FallbackWorkers > 0 && !s.standby {
		s.toFallbackLocked(st)
		return
	}
	if st.retries > s.cfg.MaxRetries {
		// No fallback pool: keep the job cycling rather than losing it.
		st.retries = 0
	}
	s.stats.Reissued++
	s.toPendingLocked(st)
}

func (s *Scheduler) toPendingLocked(st *userState) {
	st.st = statePending
	if st.heapIdx < 0 {
		heap.Push(&s.pending, st)
	}
	// Wake every Next waiter; they re-check the heap under the lock.
	close(s.readyCh)
	s.readyCh = make(chan struct{})
	if s.onReady != nil {
		s.onReady()
	}
}

func (s *Scheduler) toFallbackLocked(st *userState) {
	if st.st == stateFallback {
		return // already queued (or running) on the pool
	}
	st.st = stateFallback
	s.fallbackQ = append(s.fallbackQ, st.user)
	s.fbCond.Signal()
}

func (s *Scheduler) sweepLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.SweepNow()
		case <-s.stopCtx.Done():
			return
		}
	}
}

func (s *Scheduler) fallbackLoop() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.fallbackQ) == 0 && !s.stopped {
			s.fbCond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		u := s.fallbackQ[0]
		s.fallbackQ = s.fallbackQ[1:]
		if st := s.users[u]; st.st != stateFallback {
			// The user left the fallback state while queued — refreshed by
			// a late result, or re-leased by a user-driven request. Skip:
			// that path owns the lifecycle now.
			s.mu.Unlock()
			continue
		}
		s.fbInflight++
		s.mu.Unlock()

		var err error
		if s.cfg.Budget.Acquire(s.stopCtx) {
			err = s.exec(s.stopCtx, u)
			s.cfg.Budget.Release()
		} else {
			err = s.stopCtx.Err() // shutting down
		}

		s.mu.Lock()
		s.fbInflight--
		st := s.users[u]
		s.stats.FallbackRuns++
		switch {
		case st.st != stateFallback:
			// A user-driven Acquire superseded us mid-execution; that
			// lease owns the lifecycle now. On success the row was still
			// genuinely refreshed — record that, touch nothing else.
			if err == nil {
				s.markRefreshedLocked(st)
			} else {
				s.stats.FallbackErrors++
			}
		case err != nil:
			s.stats.FallbackErrors++
			// Local execution failed; put the user back in the queue with
			// a reset budget rather than dropping the refresh.
			st.retries = 0
			s.toPendingLocked(st)
		default:
			s.completeLocked(st)
		}
		s.mu.Unlock()
	}
}

// pendingHeap orders stale users by dirtySince (stalest first).
type pendingHeap []*userState

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	return h[i].dirtySince.Before(h[j].dirtySince)
}
func (h pendingHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx, h[j].heapIdx = i, j
}
func (h *pendingHeap) Push(x any) {
	st := x.(*userState)
	st.heapIdx = len(*h)
	*h = append(*h, st)
}
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	st := old[n-1]
	old[n-1] = nil
	st.heapIdx = -1
	*h = old[:n-1]
	return st
}
