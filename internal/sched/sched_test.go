package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyrec/internal/core"
)

// fakeClock is a manually advanced, monotonic clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestSched(t *testing.T, cfg Config, exec Executor) *Scheduler {
	t.Helper()
	s := New(cfg, exec)
	t.Cleanup(s.Close)
	return s
}

func TestStalestUserDispatchedFirst(t *testing.T) {
	clk := newFakeClock()
	s := newTestSched(t, Config{LeaseTTL: time.Minute, Clock: clk.Now}, nil)

	s.MarkStale(7)
	clk.Advance(time.Second)
	s.MarkStale(3)
	clk.Advance(time.Second)
	s.MarkStale(9)

	for _, want := range []core.UserID{7, 3, 9} {
		l, ok := s.TryNext()
		if !ok || l.User != want {
			t.Fatalf("TryNext = %+v, %v; want user %d", l, ok, want)
		}
		if l.Attempt != 1 {
			t.Fatalf("first issue attempt = %d, want 1", l.Attempt)
		}
	}
	if _, ok := s.TryNext(); ok {
		t.Fatal("queue should be drained")
	}
}

func TestMarkStaleIsIdempotentWhilePending(t *testing.T) {
	clk := newFakeClock()
	s := newTestSched(t, Config{LeaseTTL: time.Minute, Clock: clk.Now}, nil)
	s.MarkStale(1)
	s.MarkStale(1)
	s.MarkStale(1)
	if _, ok := s.TryNext(); !ok {
		t.Fatal("want one pending entry")
	}
	if _, ok := s.TryNext(); ok {
		t.Fatal("duplicate pending entry for one user")
	}
}

func TestAckDoneCompletesAndRedirtyRequeues(t *testing.T) {
	clk := newFakeClock()
	s := newTestSched(t, Config{LeaseTTL: time.Minute, Clock: clk.Now}, nil)
	s.MarkStale(1)
	l, _ := s.TryNext()

	// A rating lands while the job is out: remembered, not re-queued yet.
	s.MarkStale(1)
	if _, ok := s.TryNext(); ok {
		t.Fatal("user re-queued while leased")
	}

	if !s.Ack(l.ID, true) {
		t.Fatal("ack of live lease failed")
	}
	if !s.RefreshedUser(1) {
		t.Fatal("user not marked refreshed after done-ack")
	}
	// The remembered re-dirty puts the user straight back in the queue.
	if l2, ok := s.TryNext(); !ok || l2.User != 1 {
		t.Fatal("re-dirtied user not re-queued after ack")
	}
	if s.Ack(l.ID, true) {
		t.Fatal("double ack should report unknown lease")
	}
}

func TestAbandonReissuesImmediately(t *testing.T) {
	clk := newFakeClock()
	s := newTestSched(t, Config{LeaseTTL: time.Minute, Clock: clk.Now}, nil)
	s.MarkStale(1)
	l, _ := s.TryNext()
	if !s.Ack(l.ID, false) {
		t.Fatal("abandon of live lease failed")
	}
	l2, ok := s.TryNext()
	if !ok || l2.User != 1 {
		t.Fatal("abandoned job not re-issued")
	}
	if l2.Attempt != 2 {
		t.Fatalf("re-issue attempt = %d, want 2", l2.Attempt)
	}
	st := s.Stats()
	if st.Abandoned != 1 || st.Reissued != 1 {
		t.Fatalf("stats = %+v, want 1 abandon / 1 reissue", st)
	}
}

func TestExpiredLeaseReissuedThenFallsBack(t *testing.T) {
	clk := newFakeClock()
	var ran atomic.Int64
	exec := func(_ context.Context, u core.UserID) error {
		ran.Add(1)
		return nil
	}
	s := newTestSched(t, Config{
		LeaseTTL:        time.Second,
		MaxRetries:      1,
		FallbackWorkers: 1,
		FallbackAfter:   -1, // isolate the expiry path
		Clock:           clk.Now,
	}, exec)

	s.MarkStale(1)
	l1, _ := s.TryNext()
	clk.Advance(2 * time.Second)
	s.SweepNow() // straggler: lease expired → re-issue (retry 1 of 1)
	if s.Ack(l1.ID, true) {
		t.Fatal("expired lease should be unknown")
	}
	l2, ok := s.TryNext()
	if !ok || l2.Attempt != 2 {
		t.Fatalf("re-issue = %+v, %v; want attempt 2", l2, ok)
	}
	clk.Advance(2 * time.Second)
	s.SweepNow() // budget exhausted → fallback pool absorbs the job

	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ran.Load() != 1 {
		t.Fatalf("fallback ran %d times, want 1", ran.Load())
	}
	waitQuiet(t, s)
	st := s.Stats()
	if st.Expired != 2 || st.Reissued != 1 || st.FallbackRuns != 1 {
		t.Fatalf("stats = %+v, want 2 expired / 1 reissued / 1 fallback", st)
	}
	if !s.RefreshedUser(1) {
		t.Fatal("fallback completion did not refresh the user")
	}
}

func TestInactiveUserAbsorbedByFallback(t *testing.T) {
	clk := newFakeClock()
	var ran atomic.Int64
	s := newTestSched(t, Config{
		LeaseTTL:        time.Second,
		FallbackWorkers: 1,
		FallbackAfter:   3 * time.Second,
		Clock:           clk.Now,
	}, func(_ context.Context, _ core.UserID) error { ran.Add(1); return nil })

	s.MarkStale(42) // nobody ever pulls this job
	clk.Advance(4 * time.Second)
	s.SweepNow()
	waitQuiet(t, s)
	if ran.Load() != 1 {
		t.Fatalf("inactive user executed %d times by fallback, want 1", ran.Load())
	}
	if _, ok := s.TryNext(); ok {
		t.Fatal("user should have left the pending queue")
	}
}

func TestFallbackErrorRequeues(t *testing.T) {
	clk := newFakeClock()
	var calls atomic.Int64
	s := newTestSched(t, Config{
		LeaseTTL:        time.Second,
		MaxRetries:      -1, // no lease re-issues: first expiry → fallback
		FallbackWorkers: 1,
		FallbackAfter:   -1,
		Clock:           clk.Now,
	}, func(_ context.Context, _ core.UserID) error {
		calls.Add(1)
		return errors.New("boom")
	})
	s.MarkStale(1)
	if _, ok := s.TryNext(); !ok {
		t.Fatal("no lease")
	}
	clk.Advance(2 * time.Second)
	s.SweepNow()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.Stats(); st.FallbackErrors >= 1 && st.Pending >= 1 {
			return // failed execution put the user back in the queue
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("fallback error did not requeue (stats %+v)", s.Stats())
}

func TestNextBlocksUntilWork(t *testing.T) {
	s := newTestSched(t, Config{LeaseTTL: time.Minute}, nil)
	got := make(chan Lease, 1)
	go func() {
		l, ok := s.Next(context.Background())
		if ok {
			got <- l
		}
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("Next returned before work existed")
	default:
	}
	s.MarkStale(5)
	select {
	case l := <-got:
		if l.User != 5 {
			t.Fatalf("dispatched user %d, want 5", l.User)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke up")
	}
}

func TestNextHonoursContext(t *testing.T) {
	s := newTestSched(t, Config{LeaseTTL: time.Minute}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, ok := s.Next(ctx); ok {
		t.Fatal("Next returned work from an empty queue")
	}
}

func TestSupersededLeaseUnknown(t *testing.T) {
	s := newTestSched(t, Config{LeaseTTL: time.Minute}, nil)
	s.MarkStale(1)
	l1 := s.Acquire(1)
	l2 := s.Acquire(1) // user refreshes the page: new lease supersedes
	if s.Ack(l1.ID, true) {
		t.Fatal("superseded lease should be unknown")
	}
	if !s.Ack(l2.ID, true) {
		t.Fatal("current lease must ack")
	}
}

func TestIDSpacePartitioning(t *testing.T) {
	s := newTestSched(t, Config{LeaseTTL: time.Minute}, nil)
	s.SetIDSpace(3, 8)
	var ids []uint64
	for i := 0; i < 3; i++ {
		ids = append(ids, s.Acquire(core.UserID(i)).ID)
	}
	for i, want := range []uint64{3, 11, 19} {
		if ids[i] != want {
			t.Fatalf("ids = %v, want 3,11,19", ids)
		}
	}
}

func TestBudgetBoundsConcurrency(t *testing.T) {
	b := NewBudget(2)
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !b.Acquire(context.Background()) {
				return
			}
			n := inFlight.Add(1)
			for {
				m := maxSeen.Load()
				if n <= m || maxSeen.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
			b.Release()
		}()
	}
	wg.Wait()
	if got := maxSeen.Load(); got > 2 {
		t.Fatalf("budget of 2 admitted %d concurrent holders", got)
	}
}

func TestRefreshedClearsOutstandingWork(t *testing.T) {
	s := newTestSched(t, Config{LeaseTTL: time.Minute}, nil)
	s.MarkStale(1)
	l := s.Acquire(1)
	s.Refreshed(1) // legacy no-lease fold-in completes the cycle
	if s.Ack(l.ID, true) {
		t.Fatal("lease should have been retired by Refreshed")
	}
	if !s.Quiet() {
		t.Fatalf("scheduler not quiet after refresh: %+v", s.Stats())
	}
}

func waitQuiet(t *testing.T, s *Scheduler) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.Quiet() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("scheduler never drained: %+v", s.Stats())
}

// TestAckUserRejectsForeignLease: the user-bound ack form refuses a
// lease ID that belongs to a different user (sequential IDs are
// guessable; a forged result must not retire someone else's cycle).
func TestAckUserRejectsForeignLease(t *testing.T) {
	clk := newFakeClock()
	s := newTestSched(t, Config{LeaseTTL: time.Minute, Clock: clk.Now}, nil)
	s.MarkStale(1)
	clk.Advance(time.Second)
	s.MarkStale(2)
	l1, _ := s.TryNext()
	l2, _ := s.TryNext()
	if s.AckUser(l1.ID, l2.User, true) {
		t.Fatal("ack with foreign user binding accepted")
	}
	if !s.AckUser(l1.ID, l1.User, true) {
		t.Fatal("correctly bound ack rejected")
	}
	if !s.AckUser(l2.ID, l2.User, true) {
		t.Fatal("l2 should still be outstanding after the forged attempt")
	}
}

// TestFallbackSkipsUsersRefreshedWhileQueued: a user who leaves the
// fallback state while waiting in the queue (late result, user-driven
// re-lease) is skipped at pop time instead of executed twice.
func TestFallbackSkipsUsersRefreshedWhileQueued(t *testing.T) {
	block := make(chan struct{})
	var ran sync.Map
	exec := func(_ context.Context, u core.UserID) error {
		if u == 1 {
			<-block
		}
		ran.Store(u, true)
		return nil
	}
	clk := newFakeClock()
	s := newTestSched(t, Config{
		LeaseTTL:        time.Second,
		MaxRetries:      -1,
		FallbackWorkers: 1,
		FallbackAfter:   -1,
		Clock:           clk.Now,
	}, exec)

	// User 1 reaches the (single-worker) pool and blocks it.
	s.MarkStale(1)
	s.TryNext()
	clk.Advance(2 * time.Second)
	s.SweepNow()
	// User 2 queues behind it…
	s.MarkStale(2)
	s.TryNext()
	clk.Advance(2 * time.Second)
	s.SweepNow()
	// …and is refreshed by a late legacy result before the pool gets to
	// it. The FIFO guarantees the worker pops 1 (blocked) before 2, and 2
	// is only popped after exec(1) returns — i.e. after this Refreshed.
	s.Refreshed(2)
	close(block)
	waitQuiet(t, s)
	if _, ok := ran.Load(core.UserID(2)); ok {
		t.Fatal("fallback executed a user already refreshed while queued")
	}
	if _, ok := ran.Load(core.UserID(1)); !ok {
		t.Fatal("blocked user never executed")
	}
}

// TestEvictWithdrawsUser: Evict drops the outstanding lease (a later
// ack reports unknown), removes the user from the pending and fallback
// queues, and reports whether a refresh was still owed — the migration
// coordinator's contract when a user's ownership moves away.
func TestEvictWithdrawsUser(t *testing.T) {
	clk := newFakeClock()
	s := newTestSched(t, Config{LeaseTTL: time.Minute, Clock: clk.Now}, nil)

	if s.Evict(99) {
		t.Fatal("evicting an untracked user reported owed work")
	}

	// Pending user: owed, and gone from the queue afterwards.
	s.MarkStale(1)
	if !s.Evict(1) {
		t.Fatal("pending user eviction reported no owed work")
	}
	if _, ok := s.TryNext(); ok {
		t.Fatal("evicted pending user still dispatched")
	}

	// Leased user: owed, and the lease dies with the eviction.
	l := s.Acquire(2)
	if !s.Evict(2) {
		t.Fatal("leased user eviction reported no owed work")
	}
	if s.Ack(l.ID, true) {
		t.Fatal("ack of an evicted lease succeeded")
	}
	if !s.Quiet() {
		t.Fatal("scheduler not quiet after evictions")
	}

	// Fresh (refreshed) user: nothing owed.
	l3 := s.Acquire(3)
	s.Ack(l3.ID, true)
	if s.Evict(3) {
		t.Fatal("fresh user eviction reported owed work")
	}

	// Re-dirtied mid-lease: owed.
	s.Acquire(4)
	s.MarkStale(4)
	if !s.Evict(4) {
		t.Fatal("dirty-again user eviction reported no owed work")
	}
}
