package sched

import "context"

// Budget is a counting semaphore bounding how many fallback jobs execute
// concurrently. A cluster shares one Budget across its per-partition
// schedulers so the server-side residual compute stays capped globally
// (the Section 5.4 cost argument: offloading only pays off if the
// server's own compute stays small), no matter how many partitions see
// churn at once. A nil *Budget never blocks.
type Budget struct {
	sem chan struct{}
}

// NewBudget returns a budget admitting n concurrent fallback executions.
// n < 1 is clamped to 1.
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	return &Budget{sem: make(chan struct{}, n)}
}

// Cap returns the budget's concurrency bound (0 for a nil budget,
// meaning unlimited).
func (b *Budget) Cap() int {
	if b == nil {
		return 0
	}
	return cap(b.sem)
}

// Acquire blocks until a slot is free or ctx is done, reporting whether
// the slot was obtained.
func (b *Budget) Acquire(ctx context.Context) bool {
	if b == nil {
		return true
	}
	select {
	case b.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// Release returns a slot acquired with Acquire.
func (b *Budget) Release() {
	if b == nil {
		return
	}
	<-b.sem
}

// InUse returns the number of slots currently held.
func (b *Budget) InUse() int {
	if b == nil {
		return 0
	}
	return len(b.sem)
}
