package frame

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrConnClosed reports a read or write on a Conn after Close.
var ErrConnClosed = errors.New("frame: connection closed")

// Conn carries frames over one net.Conn. One goroutine may read
// (ReadFrame) while any number write (WriteFrame): writes coalesce via
// group commit — the first writer to find no flush in progress becomes
// the flusher, swaps the pending buffer out and writes it outside the
// lock while later writers append behind it, so N concurrent small
// frames reach the socket in a handful of large writes instead of N
// syscalls.
type Conn struct {
	c net.Conn

	// Read state (single reader).
	rbuf       []byte
	rstart     int
	maxPayload int

	mu       sync.Mutex
	cond     sync.Cond
	pend     []byte // frames encoded but not yet handed to the kernel
	scratch  []byte // spare buffer the flusher swaps pend against
	enq      uint64 // total bytes ever appended to pend
	flushed  uint64 // total bytes confirmed written
	flushing bool   // a flusher owns the socket write side
	werr     error  // first write error; poisons all later writes
	grace    time.Duration

	meter  *atomic.Int64 // optional transferred-bytes counter
	closed atomic.Bool
}

// NewConn wraps a net.Conn. maxPayload bounds inbound claimed payload
// lengths (<= 0 means MaxPayload).
func NewConn(c net.Conn, maxPayload int) *Conn {
	cn := &Conn{c: c, maxPayload: maxPayload}
	cn.cond.L = &cn.mu
	return cn
}

// SetMeter installs a counter that accumulates bytes read from and
// written to the socket (the frame_bytes_total gauge).
func (cn *Conn) SetMeter(m *atomic.Int64) { cn.meter = m }

// SetWriteGrace bounds each socket write with a deadline so a peer that
// stops draining fails the write instead of wedging every producer
// sharing the connection. Zero restores unbounded writes.
func (cn *Conn) SetWriteGrace(d time.Duration) {
	cn.mu.Lock()
	cn.grace = d
	cn.mu.Unlock()
}

// SetReadDeadline bounds the next ReadFrame (zero time clears it).
func (cn *Conn) SetReadDeadline(t time.Time) error { return cn.c.SetReadDeadline(t) }

// RemoteAddr exposes the underlying socket address.
func (cn *Conn) RemoteAddr() net.Addr { return cn.c.RemoteAddr() }

// Close tears down the socket. Blocked readers and writers fail with
// the socket's error; later writes fail with ErrConnClosed.
func (cn *Conn) Close() error {
	if !cn.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := cn.c.Close()
	cn.mu.Lock()
	if cn.werr == nil {
		cn.werr = ErrConnClosed
	}
	cn.cond.Broadcast()
	cn.mu.Unlock()
	return err
}

// ReadFrame blocks until one complete frame arrives. The returned
// payload aliases the connection's read buffer and is valid only until
// the next ReadFrame call — copy it before parking it anywhere.
func (cn *Conn) ReadFrame() (Frame, error) {
	for {
		if cn.rstart > 0 && cn.rstart == len(cn.rbuf) {
			cn.rbuf = cn.rbuf[:0]
			cn.rstart = 0
		}
		f, n, err := DecodeFrame(cn.rbuf[cn.rstart:], cn.maxPayload)
		if err == nil {
			cn.rstart += n
			return f, nil
		}
		if !errors.Is(err, ErrShort) {
			return Frame{}, err
		}
		// Compact before growing so a long-lived connection does not
		// accrete every consumed frame.
		if cn.rstart > 0 {
			cn.rbuf = append(cn.rbuf[:0], cn.rbuf[cn.rstart:]...)
			cn.rstart = 0
		}
		// Read straight into rbuf's spare capacity: the buffer persists
		// across calls, so the steady state allocates nothing per read.
		if cap(cn.rbuf)-len(cn.rbuf) < 512 {
			grown := make([]byte, len(cn.rbuf), max(4096, 2*cap(cn.rbuf)))
			copy(grown, cn.rbuf)
			cn.rbuf = grown
		}
		n, rerr := cn.c.Read(cn.rbuf[len(cn.rbuf):cap(cn.rbuf)])
		if n > 0 {
			if cn.meter != nil {
				cn.meter.Add(int64(n))
			}
			cn.rbuf = cn.rbuf[:len(cn.rbuf)+n]
			continue
		}
		if rerr == nil {
			rerr = io.ErrUnexpectedEOF
		}
		return Frame{}, rerr
	}
}

// WriteFrame enqueues one frame and returns once its bytes reached the
// kernel (directly, or via another writer's coalesced flush). Safe for
// concurrent use.
func (cn *Conn) WriteFrame(t Type, stream uint64, payload []byte) error {
	cn.mu.Lock()
	if cn.werr != nil {
		err := cn.werr
		cn.mu.Unlock()
		return err
	}
	before := len(cn.pend)
	cn.pend = AppendFrame(cn.pend, t, stream, payload)
	cn.enq += uint64(len(cn.pend) - before)
	myEnd := cn.enq
	if cn.flushing {
		// A flusher owns the socket; it will pick our bytes up on its
		// next swap. Wait for them to clear.
		for cn.werr == nil && cn.flushed < myEnd {
			cn.cond.Wait()
		}
		err := cn.werr
		cn.mu.Unlock()
		return err
	}
	// Become the flusher: write pend outside the lock, looping while
	// other writers pile more behind us.
	cn.flushing = true
	for cn.werr == nil && len(cn.pend) > 0 {
		buf := cn.pend
		cn.pend = cn.scratch[:0]
		grace := cn.grace
		cn.mu.Unlock()

		if grace > 0 {
			cn.c.SetWriteDeadline(time.Now().Add(grace))
		}
		_, werr := cn.c.Write(buf)
		if grace > 0 {
			cn.c.SetWriteDeadline(time.Time{})
		}
		if cn.meter != nil && werr == nil {
			cn.meter.Add(int64(len(buf)))
		}

		cn.mu.Lock()
		cn.scratch = buf
		if werr != nil {
			cn.werr = werr
		} else {
			cn.flushed += uint64(len(buf))
		}
		cn.cond.Broadcast()
	}
	cn.flushing = false
	err := cn.werr
	cn.mu.Unlock()
	return err
}
