// Package frame is HyRec's binary framed transport: a length-prefixed
// TLV codec carried over persistent TCP connections with
// connection-level stream multiplexing. One socket interleaves many
// in-flight exchanges — rate batches, job pulls, result posts, batched
// acks, replication shipments — each tagged with a uvarint stream ID,
// so the dispatch plane stops paying per-request HTTP and JSON costs on
// its hot paths. The JSON /v1 protocol remains the compatibility
// surface; where a payload's JSON shape matters (job payloads, result
// bodies) the frame carries the exact JSON bytes the HTTP path would
// serve, and where it does not (rate batches, acks, replication) the
// payload is a raw little-endian struct (msg.go).
//
// Frame grammar:
//
//	frame   := type(1 byte) | stream(uvarint) | length(uvarint) | payload
//	payload := length bytes, format per type
//
// A request carries the initiator's chosen stream ID; the response
// echoes it, so any number of exchanges overlap on one connection.
// Stream IDs have connection scope and may be reused once answered.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Type identifies a frame's payload format.
type Type byte

// The frame vocabulary. Requests travel initiator→listener; each is
// answered on the same stream by its response type or by TError.
const (
	// THello opens a connection (client→server): magic, protocol
	// version, and the node-plane secret ("" outside the node plane).
	// Answered by THelloOK (or TError + close on a version mismatch).
	THello Type = 0x01
	// THelloOK accepts the handshake: version byte.
	THelloOK Type = 0x02
	// TError is the error envelope of any exchange: code, message and
	// optional primary-address hint, each a uvarint-length-prefixed
	// string (the binary form of wire.ErrorBody).
	TError Type = 0x03
	// TRateBatch is a binary rating batch (msg.go). Answered by TRateOK.
	TRateBatch Type = 0x10
	// TRateOK acknowledges a rate batch: accepted count, uvarint.
	TRateOK Type = 0x11
	// TJobPull asks for the next leased worker job: max wait in
	// milliseconds, uvarint. Answered by TJob.
	TJobPull Type = 0x12
	// TJob carries one personalization job as the exact JSON bytes the
	// HTTP path serves (byte-identical payloads); an empty payload means
	// the queue stayed idle for the poll window.
	TJob Type = 0x13
	// TJobGet asks for one user's job payload: uid, uint32 LE.
	// Answered by TJob.
	TJobGet Type = 0x14
	// TResult posts a widget result as the exact JSON bytes a POST
	// /v1/result body would carry. Answered by TRecs.
	TResult Type = 0x15
	// TRecs carries resolved recommendations: count uvarint + uint32 LE
	// items.
	TRecs Type = 0x16
	// TAckBatch completes or abandons N leases in one frame (msg.go).
	// Answered by TAckOK.
	TAckBatch Type = 0x17
	// TAckOK acknowledges an ack batch: applied count, uvarint.
	TAckOK Type = 0x18
	// TReplBatch ships one binary replication batch (msg.go); node-plane
	// only — the handshake secret must have matched. Answered by TReplOK.
	TReplBatch Type = 0x19
	// TReplOK acknowledges a replication batch: applied count + echoed
	// seq, both uvarint.
	TReplOK Type = 0x1a
)

// Version is the framed-protocol version byte the handshake pins.
const Version = 1

// Magic opens every THello payload; a listener that reads anything else
// on a fresh connection drops it before allocating session state.
const Magic = "HYF1"

// MaxPayload bounds a frame's claimed payload length. Sized for the
// largest legitimate payload (a full replication chunk); every decoder
// rejects a claimed length beyond it before allocating, mirroring
// persist.Decode's discipline for untrusted input.
const MaxPayload = 8 << 20

// maxHeader is the worst-case encoded header: type byte + two maximal
// uvarints.
const maxHeader = 1 + 2*binary.MaxVarintLen64

// Typed decode failures. Every decoder in this package guarantees:
// arbitrary input yields either a valid frame/message or an error
// wrapping one of these (or a plain decode error) — never a panic and
// never an allocation sized by unvalidated input. The Fuzz* targets in
// fuzz_test.go enforce that contract.
var (
	// ErrShort: the buffer ends mid-frame; read more bytes and retry.
	ErrShort = errors.New("frame: short frame")
	// ErrTooLarge: a claimed length exceeds a protocol limit.
	ErrTooLarge = errors.New("frame: length exceeds protocol limit")
	// ErrMalformed: a structurally invalid frame or message.
	ErrMalformed = errors.New("frame: malformed")
)

// Frame is one decoded frame. Payload aliases the decode input — copy
// it before the underlying buffer is reused.
type Frame struct {
	Type    Type
	Stream  uint64
	Payload []byte
}

// AppendFrame appends the encoded frame to dst and returns the extended
// slice.
func AppendFrame(dst []byte, t Type, stream uint64, payload []byte) []byte {
	dst = append(dst, byte(t))
	dst = binary.AppendUvarint(dst, stream)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// DecodeFrame decodes one frame from the head of data, returning it and
// the bytes consumed. maxPayload caps the claimed payload length
// (<= 0 means MaxPayload); a claim beyond it fails with ErrTooLarge
// before any allocation. An incomplete frame fails with ErrShort.
func DecodeFrame(data []byte, maxPayload int) (Frame, int, error) {
	if maxPayload <= 0 || maxPayload > MaxPayload {
		maxPayload = MaxPayload
	}
	if len(data) == 0 {
		return Frame{}, 0, ErrShort
	}
	t := Type(data[0])
	rest := data[1:]
	stream, n := binary.Uvarint(rest)
	if n == 0 {
		if len(data) > maxHeader {
			return Frame{}, 0, fmt.Errorf("%w: unterminated stream id", ErrMalformed)
		}
		return Frame{}, 0, ErrShort
	}
	if n < 0 {
		return Frame{}, 0, fmt.Errorf("%w: stream id overflows uvarint", ErrMalformed)
	}
	rest = rest[n:]
	length, m := binary.Uvarint(rest)
	if m == 0 {
		if len(data) > maxHeader {
			return Frame{}, 0, fmt.Errorf("%w: unterminated length", ErrMalformed)
		}
		return Frame{}, 0, ErrShort
	}
	if m < 0 {
		return Frame{}, 0, fmt.Errorf("%w: length overflows uvarint", ErrMalformed)
	}
	rest = rest[m:]
	if length > uint64(maxPayload) {
		return Frame{}, 0, fmt.Errorf("%w: payload of %d bytes exceeds %d", ErrTooLarge, length, maxPayload)
	}
	if uint64(len(rest)) < length {
		return Frame{}, 0, ErrShort
	}
	consumed := 1 + n + m + int(length)
	return Frame{Type: t, Stream: stream, Payload: rest[:length:length]}, consumed, nil
}
