package frame

import (
	"encoding/binary"
	"fmt"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// Binary payload formats for the messages whose JSON shape carries no
// contract: rating batches, ack batches, replication shipments, the
// handshake and the error envelope. Numbers are uint32 little-endian
// where fixed-width and uvarint where small-biased; strings and arrays
// are uvarint-count-prefixed. Every decoder bounds claimed counts
// against both the protocol limits and the bytes actually present
// before allocating, so a hostile length prefix cannot balloon memory.

// MaxAckBatch bounds the leases one TAckBatch may carry; larger batches
// are chunked by the sender.
const MaxAckBatch = 1024

// maxStringLen bounds any length-prefixed string (error codes,
// messages, addresses, handshake secrets).
const maxStringLen = 4096

// Ack is one lease completion (Done) or abandonment (!Done) inside a
// TAckBatch.
type Ack struct {
	Lease uint64
	Done  bool
}

// ---- THello ----

// AppendHello appends a handshake payload: magic, version, secret.
func AppendHello(dst []byte, secret string) []byte {
	dst = append(dst, Magic...)
	dst = append(dst, Version)
	return appendString(dst, secret)
}

// DecodeHello parses a handshake payload, returning the peer's version
// and node-plane secret.
func DecodeHello(data []byte) (version byte, secret string, err error) {
	if len(data) < len(Magic)+1 {
		return 0, "", fmt.Errorf("%w: hello of %d bytes", ErrMalformed, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return 0, "", fmt.Errorf("%w: bad hello magic", ErrMalformed)
	}
	version = data[len(Magic)]
	secret, rest, err := cutString(data[len(Magic)+1:])
	if err != nil {
		return 0, "", fmt.Errorf("hello secret: %w", err)
	}
	if len(rest) != 0 {
		return 0, "", fmt.Errorf("%w: %d trailing hello bytes", ErrMalformed, len(rest))
	}
	return version, secret, nil
}

// ---- TError ----

// AppendError appends an error-envelope payload: code, message, the
// optional primary-address hint of not_primary answers, and the
// optional retry-after hint (milliseconds) of overloaded answers. A
// zero retryMS is omitted entirely, keeping the byte form of every
// pre-existing error identical.
func AppendError(dst []byte, code, msg, primary string, retryMS uint64) []byte {
	dst = appendString(dst, code)
	dst = appendString(dst, msg)
	dst = appendString(dst, primary)
	if retryMS > 0 {
		dst = binary.AppendUvarint(dst, retryMS)
	}
	return dst
}

// DecodeError parses an error-envelope payload. retryMS is zero when
// the optional trailing hint is absent (every pre-overload sender).
func DecodeError(data []byte) (code, msg, primary string, retryMS uint64, err error) {
	code, data, err = cutString(data)
	if err != nil {
		return "", "", "", 0, fmt.Errorf("error code: %w", err)
	}
	msg, data, err = cutString(data)
	if err != nil {
		return "", "", "", 0, fmt.Errorf("error message: %w", err)
	}
	primary, data, err = cutString(data)
	if err != nil {
		return "", "", "", 0, fmt.Errorf("error primary: %w", err)
	}
	if len(data) > 0 {
		var n int
		retryMS, n = binary.Uvarint(data)
		if n <= 0 {
			return "", "", "", 0, fmt.Errorf("%w: bad error retry-after", ErrMalformed)
		}
		data = data[n:]
	}
	if len(data) != 0 {
		return "", "", "", 0, fmt.Errorf("%w: %d trailing error bytes", ErrMalformed, len(data))
	}
	return code, msg, primary, retryMS, nil
}

// ---- TRateBatch ----

// AppendRateBatch appends a binary rating batch: count, then
// (uid u32, item u32, liked byte) per rating.
func AppendRateBatch(dst []byte, ratings []core.Rating) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ratings)))
	for _, r := range ratings {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.User))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Item))
		dst = append(dst, boolByte(r.Liked))
	}
	return dst
}

// DecodeRateBatch parses a binary rating batch, appending to dst (pass
// a pooled slice to keep the hot path allocation-free). The claimed
// count is bounded by wire.MaxBatchRatings and by the bytes present.
func DecodeRateBatch(data []byte, dst []core.Rating) ([]core.Rating, error) {
	count, data, err := cutCount(data, wire.MaxBatchRatings, 9, "rate batch")
	if err != nil {
		return nil, err
	}
	for i := 0; i < count; i++ {
		uid := binary.LittleEndian.Uint32(data)
		item := binary.LittleEndian.Uint32(data[4:])
		dst = append(dst, core.Rating{
			User:  core.UserID(uid),
			Item:  core.ItemID(item),
			Liked: data[8] != 0,
		})
		data = data[9:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing rate-batch bytes", ErrMalformed, len(data))
	}
	return dst, nil
}

// ---- TAckBatch ----

// AppendAckBatch appends a binary ack batch: count, then
// (lease uvarint, done byte) per ack — one frame covering N completed
// leases.
func AppendAckBatch(dst []byte, acks []Ack) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(acks)))
	for _, a := range acks {
		dst = binary.AppendUvarint(dst, a.Lease)
		dst = append(dst, boolByte(a.Done))
	}
	return dst
}

// DecodeAckBatch parses a binary ack batch, appending to dst. The
// claimed count is bounded by MaxAckBatch and by the bytes present.
func DecodeAckBatch(data []byte, dst []Ack) ([]Ack, error) {
	count, data, err := cutCount(data, MaxAckBatch, 2, "ack batch")
	if err != nil {
		return nil, err
	}
	for i := 0; i < count; i++ {
		lease, n := binary.Uvarint(data)
		if n <= 0 || n >= len(data)+1 || len(data[n:]) < 1 {
			return nil, fmt.Errorf("%w: truncated ack %d", ErrMalformed, i)
		}
		if lease == 0 {
			return nil, fmt.Errorf("%w (ack %d)", wire.ErrMissingLease, i)
		}
		dst = append(dst, Ack{Lease: lease, Done: data[n] != 0})
		data = data[n+1:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing ack-batch bytes", ErrMalformed, len(data))
	}
	return dst, nil
}

// ---- TRecs / TJobGet / small scalar payloads ----

// AppendU32s appends a count-prefixed uint32 array (recommendations,
// neighbor lists).
func AppendU32s(dst []byte, xs []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(xs)))
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint32(dst, x)
	}
	return dst
}

// DecodeU32s parses a count-prefixed uint32 array, appending to dst.
// The claimed count is bounded by maxCount and by the bytes present.
func DecodeU32s(data []byte, dst []uint32, maxCount int) ([]uint32, []byte, error) {
	count, data, err := cutCount(data, maxCount, 4, "u32 array")
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < count; i++ {
		dst = append(dst, binary.LittleEndian.Uint32(data))
		data = data[4:]
	}
	return dst, data, nil
}

// AppendUint appends one uvarint scalar (accepted counts, wait windows).
func AppendUint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// DecodeUint parses one uvarint scalar payload.
func DecodeUint(data []byte) (uint64, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 || n != len(data) {
		return 0, fmt.Errorf("%w: bad uvarint payload", ErrMalformed)
	}
	return v, nil
}

// AppendUID appends a uint32 user ID payload (TJobGet).
func AppendUID(dst []byte, uid uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, uid)
}

// DecodeUID parses a uint32 user ID payload.
func DecodeUID(data []byte) (uint32, error) {
	if len(data) != 4 {
		return 0, fmt.Errorf("%w: uid payload of %d bytes", ErrMalformed, len(data))
	}
	return binary.LittleEndian.Uint32(data), nil
}

// ---- TReplBatch ----

// AppendReplBatch appends a binary replication batch: epoch, partition,
// seq, full flag, then count-prefixed users, each a uid plus four
// count-prefixed uint32 arrays (liked, disliked, neighbors, recs).
func AppendReplBatch(dst []byte, b *wire.ReplBatch) []byte {
	dst = binary.AppendUvarint(dst, b.Epoch)
	dst = binary.AppendUvarint(dst, uint64(b.Partition))
	dst = binary.AppendUvarint(dst, b.Seq)
	dst = append(dst, boolByte(b.Full))
	dst = binary.AppendUvarint(dst, uint64(len(b.Users)))
	for i := range b.Users {
		u := &b.Users[i]
		dst = binary.LittleEndian.AppendUint32(dst, u.UID)
		dst = AppendU32s(dst, u.Liked)
		dst = AppendU32s(dst, u.Disliked)
		dst = AppendU32s(dst, u.Neighbors)
		dst = AppendU32s(dst, u.Recs)
	}
	return dst
}

// DecodeReplBatch parses a binary replication batch under the same
// bounds as the JSON decoder (wire.DecodeReplBatch): body and user
// counts capped, per-array claims bounded by the bytes present.
func DecodeReplBatch(data []byte) (*wire.ReplBatch, error) {
	if len(data) > wire.MaxReplBodyBytes {
		return nil, fmt.Errorf("%w: repl batch of %d bytes exceeds %d", ErrTooLarge, len(data), wire.MaxReplBodyBytes)
	}
	var b wire.ReplBatch
	var err error
	if b.Epoch, data, err = cutUvarint(data, "repl epoch"); err != nil {
		return nil, err
	}
	part, data, err := cutUvarint(data, "repl partition")
	if err != nil {
		return nil, err
	}
	if part >= wire.MaxNodePartitions {
		return nil, fmt.Errorf("%w: repl partition %d out of [0, %d)", ErrMalformed, part, wire.MaxNodePartitions)
	}
	b.Partition = int(part)
	if b.Seq, data, err = cutUvarint(data, "repl seq"); err != nil {
		return nil, err
	}
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: truncated repl flags", ErrMalformed)
	}
	b.Full = data[0] != 0
	data = data[1:]
	count, data, err := cutCount(data, wire.MaxReplUsers, 8, "repl users")
	if err != nil {
		return nil, err
	}
	b.Users = make([]wire.ReplUser, 0, count)
	for i := 0; i < count; i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("%w: truncated repl user %d", ErrMalformed, i)
		}
		u := wire.ReplUser{UID: binary.LittleEndian.Uint32(data)}
		data = data[4:]
		for _, field := range []*[]uint32{&u.Liked, &u.Disliked, &u.Neighbors, &u.Recs} {
			var xs []uint32
			xs, data, err = DecodeU32s(data, nil, len(data)/4+1)
			if err != nil {
				return nil, fmt.Errorf("repl user %d: %w", i, err)
			}
			if len(xs) > 0 {
				*field = xs
			}
		}
		b.Users = append(b.Users, u)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing repl-batch bytes", ErrMalformed, len(data))
	}
	return &b, nil
}

// ---- shared helpers ----

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendString(dst []byte, s string) []byte {
	if len(s) > maxStringLen {
		s = s[:maxStringLen]
	}
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// cutString splits one length-prefixed string off the head of data.
func cutString(data []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return "", nil, fmt.Errorf("%w: bad string length", ErrMalformed)
	}
	if n > maxStringLen {
		return "", nil, fmt.Errorf("%w: string of %d bytes exceeds %d", ErrTooLarge, n, maxStringLen)
	}
	rest := data[sz:]
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("%w: truncated string", ErrMalformed)
	}
	return string(rest[:n]), rest[n:], nil
}

// cutCount splits a uvarint element count off the head of data,
// validating it against both the protocol cap and the bytes actually
// present (minSize bytes per element) — the claimed-length bounding
// discipline shared with persist.Decode.
func cutCount(data []byte, max, minSize int, what string) (int, []byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad %s count", ErrMalformed, what)
	}
	rest := data[n:]
	if count > uint64(max) {
		return 0, nil, fmt.Errorf("%w: %s of %d exceeds %d", ErrTooLarge, what, count, max)
	}
	if count*uint64(minSize) > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("%w: %s claims %d entries, %d bytes remain", ErrMalformed, what, count, len(rest))
	}
	return int(count), rest, nil
}

func cutUvarint(data []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad %s", ErrMalformed, what)
	}
	return v, data[n:], nil
}
