package frame

import (
	"bytes"
	"testing"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// The fuzz targets enforce the decoder contract stated in frame.go:
// arbitrary input yields a value or an error — never a panic, never an
// allocation sized by an unvalidated claim — and every value that
// decodes re-encodes to something that decodes identically.

func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, THello, 0, AppendHello(nil, "s")))
	f.Add(AppendFrame(nil, TJobPull, 3, AppendUint(nil, 5000)))
	f.Add(AppendFrame(nil, TJob, 3, []byte(`{"uid":1}`)))
	f.Add([]byte{byte(TJob), 0x80, 0x80})
	f.Add(bytes.Repeat([]byte{0x80}, maxHeader+8))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, 0)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := AppendFrame(nil, fr.Type, fr.Stream, fr.Payload)
		fr2, _, err := DecodeFrame(re, 0)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Stream != fr.Stream || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", fr, fr2)
		}
	})
}

func FuzzDecodeHello(f *testing.F) {
	f.Add(AppendHello(nil, ""))
	f.Add(AppendHello(nil, "peer-secret"))
	f.Add([]byte("HYF1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, secret, err := DecodeHello(data)
		if err != nil {
			return
		}
		re := append([]byte(Magic), v)
		re = appendString(re, secret)
		v2, s2, err := DecodeHello(re)
		if err != nil || v2 != v || s2 != secret {
			t.Fatalf("hello round trip: %v", err)
		}
	})
}

func FuzzDecodeError(f *testing.F) {
	f.Add(AppendError(nil, "moved", "user moved", "http://n2:9", 0))
	f.Add(AppendError(nil, "", "", "", 0))
	f.Add(AppendError(nil, "overloaded", "rating queue full", "", 1000))
	f.Fuzz(func(t *testing.T, data []byte) {
		code, msg, primary, retryMS, err := DecodeError(data)
		if err != nil {
			return
		}
		c2, m2, p2, r2, err := DecodeError(AppendError(nil, code, msg, primary, retryMS))
		if err != nil || c2 != code || m2 != msg || p2 != primary || r2 != retryMS {
			t.Fatalf("error envelope round trip: %v", err)
		}
	})
}

func FuzzDecodeRateBatch(f *testing.F) {
	f.Add(AppendRateBatch(nil, []core.Rating{{User: 1, Item: 2, Liked: true}}))
	f.Add(AppendRateBatch(nil, nil))
	f.Add(appendUvarintT(nil, uint64(wire.MaxBatchRatings)))
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := DecodeRateBatch(data, nil)
		if err != nil {
			return
		}
		rs2, err := DecodeRateBatch(AppendRateBatch(nil, rs), nil)
		if err != nil || len(rs2) != len(rs) {
			t.Fatalf("rate batch round trip: %v", err)
		}
		for i := range rs {
			if rs[i] != rs2[i] {
				t.Fatalf("rating %d changed across round trip", i)
			}
		}
	})
}

func FuzzDecodeAckBatch(f *testing.F) {
	f.Add(AppendAckBatch(nil, []Ack{{Lease: 9, Done: true}}))
	f.Add(AppendAckBatch(nil, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		as, err := DecodeAckBatch(data, nil)
		if err != nil {
			return
		}
		as2, err := DecodeAckBatch(AppendAckBatch(nil, as), nil)
		if err != nil || len(as2) != len(as) {
			t.Fatalf("ack batch round trip: %v", err)
		}
		for i := range as {
			if as[i] != as2[i] {
				t.Fatalf("ack %d changed across round trip", i)
			}
		}
	})
}

func FuzzDecodeReplBatch(f *testing.F) {
	f.Add(AppendReplBatch(nil, &wire.ReplBatch{
		Epoch: 1, Partition: 2, Seq: 3,
		Users: []wire.ReplUser{{UID: 7, Liked: []uint32{1}, Recs: []uint32{2, 3}}},
	}))
	f.Add(AppendReplBatch(nil, &wire.ReplBatch{Full: true}))
	f.Add(appendUvarintT(appendUvarintT(appendUvarintT(nil, 1), 1), 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeReplBatch(data)
		if err != nil {
			return
		}
		if b.Partition < 0 || b.Partition >= wire.MaxNodePartitions {
			t.Fatalf("partition %d escaped bounds", b.Partition)
		}
		if len(b.Users) > wire.MaxReplUsers {
			t.Fatalf("%d users escaped bounds", len(b.Users))
		}
		b2, err := DecodeReplBatch(AppendReplBatch(nil, b))
		if err != nil || len(b2.Users) != len(b.Users) {
			t.Fatalf("repl batch round trip: %v", err)
		}
	})
}

func FuzzDecodeU32s(f *testing.F) {
	f.Add(AppendU32s(nil, []uint32{1, 2, 3}))
	f.Add(AppendU32s(nil, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		xs, rest, err := DecodeU32s(data, nil, 1<<16)
		if err != nil {
			return
		}
		if len(xs) > 1<<16 {
			t.Fatalf("%d items escaped bounds", len(xs))
		}
		_ = rest
	})
}
