package frame

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello, framed world")
	buf := AppendFrame(nil, TRateBatch, 42, payload)
	f, n, err := DecodeFrame(buf, 0)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if f.Type != TRateBatch || f.Stream != 42 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("round trip mismatch: %+v", f)
	}
}

func TestDecodeFrameShort(t *testing.T) {
	buf := AppendFrame(nil, TJob, 7, bytes.Repeat([]byte{0xab}, 300))
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeFrame(buf[:i], 0); !errors.Is(err, ErrShort) {
			t.Fatalf("prefix of %d bytes: want ErrShort, got %v", i, err)
		}
	}
}

func TestDecodeFrameBounds(t *testing.T) {
	// A claimed length beyond maxPayload must fail before the payload
	// arrives — ErrTooLarge, not ErrShort.
	head := []byte{byte(TJob)}
	head = appendUvarintT(head, 1)
	head = appendUvarintT(head, uint64(MaxPayload)+1)
	if _, _, err := DecodeFrame(head, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized claim: want ErrTooLarge, got %v", err)
	}
	// The same claim under an explicit smaller cap.
	head = []byte{byte(TJob)}
	head = appendUvarintT(head, 1)
	head = appendUvarintT(head, 1<<16)
	if _, _, err := DecodeFrame(head, 1024); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over-cap claim: want ErrTooLarge, got %v", err)
	}
	// An unterminated uvarint longer than any legal header is malformed,
	// not short — a reader must not buffer forever waiting for it.
	evil := append([]byte{byte(TJob)}, bytes.Repeat([]byte{0x80}, maxHeader+4)...)
	if _, _, err := DecodeFrame(evil, 0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unterminated uvarint: want ErrMalformed, got %v", err)
	}
}

func appendUvarintT(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func TestHelloRoundTrip(t *testing.T) {
	buf := AppendHello(nil, "s3cret")
	v, secret, err := DecodeHello(buf)
	if err != nil {
		t.Fatalf("DecodeHello: %v", err)
	}
	if v != Version || secret != "s3cret" {
		t.Fatalf("got version %d secret %q", v, secret)
	}
	if _, _, err := DecodeHello([]byte("NOPE\x01\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	buf := AppendError(nil, "not_primary", "user 9 is elsewhere", "http://other:8080", 0)
	code, msg, primary, retryMS, err := DecodeError(buf)
	if err != nil {
		t.Fatalf("DecodeError: %v", err)
	}
	if code != "not_primary" || msg != "user 9 is elsewhere" || primary != "http://other:8080" || retryMS != 0 {
		t.Fatalf("got %q %q %q retry=%d", code, msg, primary, retryMS)
	}
}

func TestErrorRetryAfterRoundTrip(t *testing.T) {
	// The retry-after hint is an optional trailing uvarint: present on
	// overloaded answers, absent (byte-identical to the old form)
	// everywhere else.
	with := AppendError(nil, "overloaded", "rating queue full", "", 1500)
	without := AppendError(nil, "overloaded", "rating queue full", "", 0)
	if len(with) <= len(without) {
		t.Fatal("retry-after hint not appended")
	}
	code, _, _, retryMS, err := DecodeError(with)
	if err != nil || code != "overloaded" || retryMS != 1500 {
		t.Fatalf("got code=%q retry=%d err=%v", code, retryMS, err)
	}
	if _, _, _, retryMS, err = DecodeError(without); err != nil || retryMS != 0 {
		t.Fatalf("hint-free envelope: retry=%d err=%v", retryMS, err)
	}
}

func TestRateBatchRoundTrip(t *testing.T) {
	in := []core.Rating{
		{User: 1, Item: 100, Liked: true},
		{User: 2, Item: 200, Liked: false},
		{User: 3, Item: 4_000_000_000, Liked: true},
	}
	buf := AppendRateBatch(nil, in)
	out, err := DecodeRateBatch(buf, nil)
	if err != nil {
		t.Fatalf("DecodeRateBatch: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d ratings", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("rating %d: got %+v want %+v", i, out[i], in[i])
		}
	}
	// A claimed count beyond the bytes present must fail without
	// allocating.
	evil := appendUvarintT(nil, uint64(wire.MaxBatchRatings))
	if _, err := DecodeRateBatch(evil, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("inflated count: want ErrMalformed, got %v", err)
	}
	evil = appendUvarintT(nil, uint64(wire.MaxBatchRatings)+1)
	evil = append(evil, bytes.Repeat([]byte{0}, 9*(wire.MaxBatchRatings+1))...)
	if _, err := DecodeRateBatch(evil, nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over-limit count: want ErrTooLarge, got %v", err)
	}
}

func TestAckBatchRoundTrip(t *testing.T) {
	in := []Ack{{Lease: 1, Done: true}, {Lease: 1 << 40, Done: false}, {Lease: 7, Done: true}}
	buf := AppendAckBatch(nil, in)
	out, err := DecodeAckBatch(buf, nil)
	if err != nil {
		t.Fatalf("DecodeAckBatch: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d acks", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("ack %d: got %+v want %+v", i, out[i], in[i])
		}
	}
	// Lease 0 is the JSON protocol's missing-lease error; the binary
	// path keeps the sentinel.
	zero := AppendAckBatch(nil, []Ack{{Lease: 0, Done: true}})
	if _, err := DecodeAckBatch(zero, nil); !errors.Is(err, wire.ErrMissingLease) {
		t.Fatalf("zero lease: want ErrMissingLease, got %v", err)
	}
}

func TestU32sRoundTrip(t *testing.T) {
	in := []uint32{5, 0, 4_000_000_000, 17}
	buf := AppendU32s(nil, in)
	out, rest, err := DecodeU32s(buf, nil, 64)
	if err != nil {
		t.Fatalf("DecodeU32s: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("item %d: got %d want %d", i, out[i], in[i])
		}
	}
	if _, _, err := DecodeU32s(buf, nil, 2); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over-cap: want ErrTooLarge, got %v", err)
	}
}

func TestReplBatchRoundTrip(t *testing.T) {
	in := &wire.ReplBatch{
		Epoch:     3,
		Partition: 5,
		Seq:       99,
		Full:      true,
		Users: []wire.ReplUser{
			{UID: 1, Liked: []uint32{10, 20}, Neighbors: []uint32{2}, Recs: []uint32{30}},
			{UID: 2, Disliked: []uint32{40}},
			{UID: 3},
		},
	}
	buf := AppendReplBatch(nil, in)
	out, err := DecodeReplBatch(buf)
	if err != nil {
		t.Fatalf("DecodeReplBatch: %v", err)
	}
	if out.Epoch != in.Epoch || out.Partition != in.Partition || out.Seq != in.Seq || out.Full != in.Full {
		t.Fatalf("header mismatch: %+v", out)
	}
	if len(out.Users) != len(in.Users) {
		t.Fatalf("got %d users", len(out.Users))
	}
	for i := range in.Users {
		a, b := in.Users[i], out.Users[i]
		if a.UID != b.UID || !eqU32(a.Liked, b.Liked) || !eqU32(a.Disliked, b.Disliked) ||
			!eqU32(a.Neighbors, b.Neighbors) || !eqU32(a.Recs, b.Recs) {
			t.Fatalf("user %d: got %+v want %+v", i, b, a)
		}
	}
	// A binary batch must survive the same JSON round trip the HTTP
	// replicate path applies — semantics equivalence of the two wires.
	jsonBytes, err := wire.EncodeReplBatch(in)
	if err != nil {
		t.Fatalf("EncodeReplBatch: %v", err)
	}
	viaJSON, err := wire.DecodeReplBatch(jsonBytes)
	if err != nil {
		t.Fatalf("DecodeReplBatch(json): %v", err)
	}
	if fmt.Sprintf("%+v", viaJSON.Users) != fmt.Sprintf("%+v", out.Users) {
		t.Fatalf("binary and JSON decodes disagree:\n%+v\n%+v", out.Users, viaJSON.Users)
	}
}

func eqU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConnRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a, 0), NewConn(b, 0)
	defer ca.Close()
	defer cb.Close()

	go func() {
		ca.WriteFrame(TJobPull, 9, appendUvarintT(nil, 1500))
	}()
	f, err := cb.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if f.Type != TJobPull || f.Stream != 9 {
		t.Fatalf("got %+v", f)
	}
	wait, err := DecodeUint(f.Payload)
	if err != nil || wait != 1500 {
		t.Fatalf("payload: %d, %v", wait, err)
	}
}

// TestConnConcurrentWriters drives many goroutines through one Conn and
// checks every frame arrives intact — the group-commit flusher must not
// drop, duplicate, or interleave bytes.
func TestConnConcurrentWriters(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a, 0), NewConn(b, 0)
	defer ca.Close()
	defer cb.Close()

	var meter atomic.Int64
	ca.SetMeter(&meter)

	const writers, frames = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w)}, w+1)
			for i := 0; i < frames; i++ {
				if err := ca.WriteFrame(TRateBatch, uint64(w), payload); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	got := make(map[uint64]int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < writers*frames; i++ {
			f, err := cb.ReadFrame()
			if err != nil {
				t.Errorf("ReadFrame: %v", err)
				return
			}
			w := f.Stream
			if len(f.Payload) != int(w)+1 {
				t.Errorf("stream %d: payload of %d bytes", w, len(f.Payload))
				return
			}
			for _, c := range f.Payload {
				if c != byte(w) {
					t.Errorf("stream %d: corrupt payload byte %d", w, c)
					return
				}
			}
			got[w]++
		}
	}()
	wg.Wait()
	<-done
	for w := 0; w < writers; w++ {
		if got[uint64(w)] != frames {
			t.Fatalf("stream %d: %d of %d frames", w, got[uint64(w)], frames)
		}
	}
	if meter.Load() == 0 {
		t.Fatal("byte meter never advanced")
	}
}

func TestConnWriteAfterClose(t *testing.T) {
	a, b := net.Pipe()
	ca := NewConn(a, 0)
	b.Close()
	ca.Close()
	if err := ca.WriteFrame(TJob, 1, nil); err == nil {
		t.Fatal("write after close succeeded")
	}
}
