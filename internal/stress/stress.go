// Package stress reproduces the client-machine instrumentation of
// Section 5.6: a duty-cycle CPU load generator (the paper uses the Linux
// `stress` tool and the antutu benchmark) and a progress monitor that
// counts similarity-computation loops per time window (Figure 11's
// y-axis). Both are real executions, not models; the widget's Device
// abstraction handles cross-device extrapolation separately.
package stress

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyrec/internal/server"
)

// Load occupies approximately `fraction` of every CPU with busy-work until
// the returned stop function is called. The duty cycle alternates ~5 ms
// busy and proportional idle slices, the same strategy `stress --cpu`
// variants use.
func Load(fraction float64) (stop func()) {
	if fraction <= 0 {
		return func() {}
	}
	if fraction > 1 {
		fraction = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	const slice = 5 * time.Millisecond
	busy := time.Duration(float64(slice) * fraction)
	idle := slice - busy
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink := uint64(1)
			for ctx.Err() == nil {
				deadline := time.Now().Add(busy)
				for time.Now().Before(deadline) {
					sink = sink*6364136223846793005 + 1442695040888963407
				}
				if idle > 0 {
					timer := time.NewTimer(idle)
					select {
					case <-timer.C:
					case <-ctx.Done():
						timer.Stop()
					}
				}
			}
			atomic.AddUint64(&blackhole, sink)
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// blackhole defeats dead-code elimination of the busy loops.
var blackhole uint64

// Monitor runs fn in a tight loop for the given window and returns how
// many iterations completed — the "number of loops" progress measure of
// Figure 11. fn should be a small unit of work (one similarity
// computation in the paper).
func Monitor(window time.Duration, fn func()) (iterations int64) {
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		fn()
		iterations++
	}
	return iterations
}

// MeasureUnderLoad reports Monitor's progress at each background CPU-load
// level, restoring an idle machine between levels. It is the harness
// behind Figures 11 and 12.
func MeasureUnderLoad(levels []float64, window time.Duration, fn func()) []int64 {
	out := make([]int64, len(levels))
	for i, level := range levels {
		stop := Load(level)
		out[i] = Monitor(window, fn)
		stop()
	}
	return out
}

// ServiceThroughput drives any server.Service — an in-process engine, a
// cluster, or (the interesting case) a typed HTTP client pointed at a
// live server — with `workers` closed-loop goroutines for the given
// window, returning completed and failed calls. op receives the service,
// its worker index and worker-local iteration counter, so callers derive
// deterministic per-worker workloads without shared state. This is the
// harness that measures the actual network path the paper describes when
// svc is a hyrec/client.Client.
func ServiceThroughput(svc server.Service, workers int, window time.Duration,
	op func(ctx context.Context, svc server.Service, worker, i int) error) (calls, failures int64) {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	var total, failed atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(window)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n, f := int64(0), int64(0)
			for i := 0; time.Now().Before(deadline); i++ {
				if err := op(ctx, svc, w, i); err != nil {
					// A deadline hit while a call was in flight is the
					// window closing, not a workload failure.
					if ctx.Err() != nil {
						break
					}
					f++
				}
				n++
			}
			total.Add(n)
			failed.Add(f)
		}(w)
	}
	wg.Wait()
	return total.Load(), failed.Load()
}

// Throughput is the multi-worker analogue of Monitor: `workers`
// goroutines call fn in a closed loop for the given window and the total
// number of completed calls is returned. fn receives its worker index and
// the worker-local iteration counter so callers can derive per-worker
// deterministic workloads without shared state. It is the in-process
// harness behind the cluster scaling experiment (server-side Rate+Job
// throughput, 1 vs N partitions).
func Throughput(workers int, window time.Duration, fn func(worker, i int)) int64 {
	if workers < 1 {
		workers = 1
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(window)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := int64(0)
			for i := 0; time.Now().Before(deadline); i++ {
				fn(w, i)
				n++
			}
			total.Add(n)
		}(w)
	}
	wg.Wait()
	return total.Load()
}
