package stress

import (
	"testing"
	"time"
)

func TestLoadZeroIsNoop(t *testing.T) {
	stop := Load(0)
	stop() // must not hang or panic
	stop = Load(-1)
	stop()
}

func TestLoadStops(t *testing.T) {
	stop := Load(0.5)
	done := make(chan struct{})
	go func() {
		stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Load did not stop")
	}
}

func TestLoadClampsAboveOne(t *testing.T) {
	stop := Load(5)
	defer stop()
	// Just verify the monitor still makes progress under full load.
	n := Monitor(50*time.Millisecond, func() {})
	if n == 0 {
		t.Fatal("monitor starved completely")
	}
}

func TestMonitorCountsIterations(t *testing.T) {
	n := Monitor(50*time.Millisecond, func() { _ = 1 + 1 })
	if n <= 0 {
		t.Fatalf("iterations = %d", n)
	}
}

func TestMonitorRespectsWindow(t *testing.T) {
	start := time.Now()
	Monitor(30*time.Millisecond, func() {})
	elapsed := time.Since(start)
	if elapsed < 30*time.Millisecond || elapsed > 500*time.Millisecond {
		t.Fatalf("window = %v", elapsed)
	}
}

// The Figure 11 premise: background load reduces monitored progress.
// Timing-sensitive, so tolerant thresholds and a skip under -short.
func TestLoadSlowsMonitor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	work := func() {
		s := 0
		for i := 0; i < 100; i++ {
			s += i
		}
		_ = s
	}
	baseline := Monitor(150*time.Millisecond, work)
	stop := Load(0.9)
	loaded := Monitor(150*time.Millisecond, work)
	stop()
	if loaded >= baseline {
		t.Skipf("load had no measurable effect (baseline=%d loaded=%d); scheduler noise", baseline, loaded)
	}
}

func TestMeasureUnderLoad(t *testing.T) {
	out := MeasureUnderLoad([]float64{0, 0.5}, 30*time.Millisecond, func() {})
	if len(out) != 2 || out[0] <= 0 || out[1] <= 0 {
		t.Fatalf("out = %v", out)
	}
}
