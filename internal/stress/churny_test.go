package stress

import (
	"context"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/fleet"
	"hyrec/internal/server"
)

// TestChurnyWorkersConverge is the acceptance scenario of the
// asynchronous scheduler, promoted to the deterministic fleet
// simulator: a seed-planned browser fleet that silently abandons ≥ 50%
// of its leased jobs — and additionally loses 40% of its sessions to a
// mass disconnect the moment half the users have converged — must
// still leave every active user's KNN row refreshed within the
// lease-retry budget, with the fallback pool absorbing the leases that
// burn out. Run under -race in CI.
func TestChurnyWorkersConverge(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.K = 4
	cfg.R = 4
	cfg.LeaseTTL = 30 * time.Millisecond
	cfg.LeaseRetries = 1
	cfg.FallbackWorkers = 4
	e := server.NewEngine(cfg)
	defer e.Close()

	const users = 50
	ctx := context.Background()
	for u := core.UserID(1); u <= users; u++ {
		for j := 0; j < 4; j++ {
			if err := e.Rate(ctx, u, core.ItemID((int(u)+j)%12), true); err != nil {
				t.Fatal(err)
			}
		}
	}

	const abandonProb = 0.6 // ≥ 0.5 per the acceptance criterion
	plan := fleet.NewPlan(fleet.Config{
		Seed:        7,
		Sessions:    64,
		ChurnyFrac:  1, // the whole fleet churns, all silently
		SilentFrac:  1,
		AbandonProb: abandonProb,
		Disconnects: []fleet.Disconnect{
			{Frac: 0.4, AtConvergedFrac: 0.5},
		},
		MeanTabLifetime: 30 * time.Second,
		JoinSpread:      time.Second,
	})
	target, err := fleet.NewServiceTarget(e)
	if err != nil {
		t.Fatal(err)
	}
	report, err := fleet.Run(ctx, plan, fleet.Options{
		Target:    target,
		Sched:     e.Scheduler(),
		Users:     users,
		TimeScale: 0.01,
		Budget:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", report)
	if report.Dispatched == 0 {
		t.Fatal("fleet never leased a job")
	}
	if report.SilentAbandons == 0 {
		t.Fatal("churn model never abandoned — the scenario is vacuous")
	}
	if report.Dropped == 0 {
		t.Fatalf("mass disconnect at 50%% convergence never fired: %s", report)
	}
	if !report.Converged {
		t.Fatalf("fleet failed to converge: %s (stats %+v)", report, e.Scheduler().Stats())
	}

	// Every user's row was refreshed at least once despite the churn.
	s := e.Scheduler()
	if un := s.Unrefreshed(); len(un) != 0 {
		t.Fatalf("%d users never refreshed under churn: %v (stats %+v)", len(un), un, s.Stats())
	}
	for u := core.UserID(1); u <= users; u++ {
		hood, err := e.Neighbors(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if len(hood) == 0 {
			t.Fatalf("user %d has an empty KNN row after convergence", u)
		}
	}

	st := s.Stats()
	if st.Expired == 0 {
		t.Fatalf("no lease ever expired under %.0f%% silent abandon: %+v", abandonProb*100, st)
	}
	if st.FallbackRuns == 0 {
		t.Fatalf("fallback pool absorbed nothing: %+v", st)
	}
}

// TestChurnyWorkersOnSyncService: the harness degrades gracefully when
// the service has no scheduler.
func TestChurnyWorkersOnSyncService(t *testing.T) {
	e := server.NewEngine(server.DefaultConfig())
	report := ChurnyWorkers(e, 2, 0.5, 1, 50*time.Millisecond)
	if report.Dispatched != 0 {
		t.Fatalf("sync service dispatched %d jobs", report.Dispatched)
	}
}
