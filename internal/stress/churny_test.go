package stress

import (
	"context"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/server"
)

// TestChurnyWorkersConverge is the acceptance scenario of the
// asynchronous scheduler: a worker fleet that abandons ≥ 50% of its
// leased jobs mid-computation (silent churn — the server only learns
// from lease expiry) must still leave every active user's KNN row
// refreshed within the lease-retry budget, with the fallback pool
// absorbing the leases that burn out. Run under -race in CI.
func TestChurnyWorkersConverge(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.K = 4
	cfg.R = 4
	cfg.LeaseTTL = 30 * time.Millisecond
	cfg.LeaseRetries = 1
	cfg.FallbackWorkers = 4
	e := server.NewEngine(cfg)
	defer e.Close()

	const users = 50
	ctx := context.Background()
	for u := core.UserID(1); u <= users; u++ {
		for j := 0; j < 4; j++ {
			if err := e.Rate(ctx, u, core.ItemID((int(u)+j)%12), true); err != nil {
				t.Fatal(err)
			}
		}
	}

	const abandonProb = 0.6 // ≥ 0.5 per the acceptance criterion
	report := ChurnyWorkers(e, 8, abandonProb, 7, 2*time.Second)
	if report.Dispatched == 0 {
		t.Fatal("workers never leased a job")
	}
	if report.Abandoned == 0 {
		t.Fatal("churn model never abandoned — the scenario is vacuous")
	}

	// Convergence: wait for the scheduler to drain (expiries sweep in,
	// fallback absorbs, re-issues complete) and assert every user's row
	// was refreshed at least once.
	s := e.Scheduler()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if s.Quiet() && len(s.Unrefreshed()) == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if un := s.Unrefreshed(); len(un) != 0 {
		t.Fatalf("%d users never refreshed under churn: %v (stats %+v)", len(un), un, s.Stats())
	}
	for u := core.UserID(1); u <= users; u++ {
		hood, err := e.Neighbors(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if len(hood) == 0 {
			t.Fatalf("user %d has an empty KNN row after convergence", u)
		}
	}

	st := s.Stats()
	if st.Expired == 0 {
		t.Fatalf("no lease ever expired under %.0f%% silent abandon: %+v", abandonProb*100, st)
	}
	if st.FallbackRuns == 0 {
		t.Fatalf("fallback pool absorbed nothing: %+v", st)
	}
	total := st.FallbackRuns + st.Acked
	frac := float64(st.FallbackRuns) / float64(total)
	t.Logf("churny run: dispatched=%d completed=%d abandoned=%d expired=%d reissued=%d fallback=%d (%.0f%% of refreshes)",
		report.Dispatched, report.Completed, report.Abandoned, st.Expired, st.Reissued, st.FallbackRuns, frac*100)
}

// TestChurnyWorkersOnSyncService: the harness degrades gracefully when
// the service has no scheduler.
func TestChurnyWorkersOnSyncService(t *testing.T) {
	e := server.NewEngine(server.DefaultConfig())
	report := ChurnyWorkers(e, 2, 0.5, 1, 50*time.Millisecond)
	if report.Dispatched != 0 {
		t.Fatalf("sync service dispatched %d jobs", report.Dispatched)
	}
}
