package stress_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hyrec"
	"hyrec/internal/core"
	"hyrec/internal/server"
	"hyrec/internal/stress"
)

// Race soak over the full hyrec.Service surface: every method —
// Rate, RateBatch, Job, NextJob/Ack, ApplyResult, Recommendations,
// Neighbors — hammered concurrently while the anonymiser rotates and new
// users keep arriving, against the epoch-pinned snapshot read path. Run
// under -race in CI (the internal/stress package is on the race list);
// correctness here is "no race, no panic, no unexplained error", plus a
// handful of end-state invariants.

// soakService runs the mixed soak against svc for the given window.
func soakService(t *testing.T, svc server.Service, window time.Duration) {
	t.Helper()
	const users = 96
	const items = 400
	ctx := context.Background()

	// Seed the population so every op class has material to work with.
	var batch []core.Rating
	for u := 1; u <= users; u++ {
		batch = append(batch, core.Rating{User: core.UserID(u), Item: core.ItemID(u % items), Liked: true})
	}
	if err := svc.RateBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}

	rotor, canRotate := svc.(server.Rotator)
	acker, canAck := svc.(server.LeaseAcker)
	src, canPull := svc.(server.JobSource)
	widget := hyrec.NewWidget()
	var applied, jobs, rotations atomic.Int64

	workerErr := func(err error) error {
		// Stale epochs (rotation racing a result) and unknown leases
		// (a lease superseded mid-flight) are the protocol working.
		if err == nil || errors.Is(err, hyrec.ErrStaleEpoch) || errors.Is(err, hyrec.ErrUnknownLease) {
			return nil
		}
		return err
	}

	calls, failures := stress.ServiceThroughput(svc, 8, window,
		func(ctx context.Context, svc server.Service, worker, i int) error {
			u := core.UserID((worker*31+i)%users + 1)
			switch (worker + i) % 12 {
			case 0, 1, 2:
				return svc.Rate(ctx, u, core.ItemID(i%items), i%2 == 0)
			case 3:
				fresh := []core.Rating{
					{User: u, Item: core.ItemID(i % items), Liked: true},
					{User: core.UserID(users + (worker*17+i)%64 + 1), Item: core.ItemID((i + 7) % items), Liked: false},
				}
				return svc.RateBatch(ctx, fresh)
			case 4, 5, 6:
				job, err := svc.Job(ctx, u)
				if err != nil {
					return err
				}
				jobs.Add(1)
				if i%2 == 0 {
					res, _ := widget.Execute(job)
					if _, err := svc.ApplyResult(ctx, res); workerErr(err) != nil {
						return err
					}
					applied.Add(1)
				}
				return nil
			case 7:
				if !canPull {
					_, err := svc.Neighbors(ctx, u)
					return err
				}
				pollCtx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
				job, err := src.NextJob(pollCtx)
				cancel()
				if err != nil || job == nil {
					return err
				}
				if job.Lease != 0 && i%3 == 0 && canAck {
					// A churny worker: abandon politely for re-issue.
					return workerErr(acker.Ack(ctx, job.Lease, false))
				}
				res, _ := widget.Execute(job)
				if _, err := svc.ApplyResult(ctx, res); workerErr(err) != nil {
					return err
				}
				applied.Add(1)
				return nil
			case 8, 9:
				_, err := svc.Neighbors(ctx, u)
				return err
			case 10:
				_, err := svc.Recommendations(ctx, u, 10)
				return err
			default:
				if canRotate && i%64 == 63 {
					rotor.RotateAnonymizer()
					rotations.Add(1)
					return nil
				}
				_, err := svc.Recommendations(ctx, u, 0)
				return err
			}
		})

	if calls == 0 {
		t.Fatal("soak completed zero calls")
	}
	if failures != 0 {
		t.Fatalf("soak saw %d/%d unexplained failures", failures, calls)
	}
	if jobs.Load() == 0 || applied.Load() == 0 {
		t.Fatalf("soak never exercised the personalization cycle: jobs=%d applied=%d", jobs.Load(), applied.Load())
	}
	if canRotate && rotations.Load() == 0 {
		t.Fatal("soak never rotated the anonymiser")
	}

	// End-state invariants: the population grew past the seed (new users
	// arrived), and applied results materialized KNN rows somewhere.
	hood := 0
	for u := 1; u <= users; u++ {
		ns, err := svc.Neighbors(ctx, core.UserID(u))
		if err != nil {
			t.Fatal(err)
		}
		hood += len(ns)
	}
	if hood == 0 {
		t.Fatal("no KNN rows survived the soak")
	}
}

func soakWindow(t *testing.T) time.Duration {
	if testing.Short() {
		return 300 * time.Millisecond
	}
	return 1200 * time.Millisecond
}

// TestServiceSoakEngine soaks a single engine with the async scheduler
// and fallback pool on, so the lease lifecycle participates.
func TestServiceSoakEngine(t *testing.T) {
	cfg := hyrec.DefaultConfig()
	cfg.LeaseTTL = 50 * time.Millisecond
	cfg.FallbackWorkers = 2
	eng := hyrec.NewEngine(cfg)
	defer eng.Close()
	soakService(t, eng, soakWindow(t))
}

// TestServiceSoakCluster4 soaks a 4-partition cluster: routing,
// cross-partition exchange, per-partition snapshots and the shared
// fallback budget all under fire at once.
func TestServiceSoakCluster4(t *testing.T) {
	cfg := hyrec.DefaultConfig()
	cfg.LeaseTTL = 50 * time.Millisecond
	cfg.FallbackWorkers = 2
	cl := hyrec.NewCluster(cfg, 4)
	defer cl.Close()
	soakService(t, cl, soakWindow(t))
}

// TestServiceSoakLockedBaseline keeps the retained lock-based read path
// honest under the same fire: the ablation configuration must stay
// race-free too, or locked-vs-snapshot comparisons measure a broken
// baseline.
func TestServiceSoakLockedBaseline(t *testing.T) {
	cfg := hyrec.DefaultConfig()
	cfg.DisableTableSnapshots = true
	eng := hyrec.NewEngine(cfg)
	defer eng.Close()
	soakService(t, eng, soakWindow(t)/2)
}
