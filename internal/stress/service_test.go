package stress_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"hyrec"
	"hyrec/client"
	"hyrec/internal/server"
	"hyrec/internal/stress"
)

// TestServiceThroughputOverClient drives a live server through the typed
// HTTP client with the closed-loop harness — the real network path the
// paper's server-side experiments measure.
func TestServiceThroughputOverClient(t *testing.T) {
	eng := hyrec.NewEngine(hyrec.DefaultConfig())
	srv := hyrec.NewServiceServer(eng, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	c := client.New(ts.URL)
	defer c.Close()

	calls, failures := stress.ServiceThroughput(c, 4, 150*time.Millisecond,
		func(ctx context.Context, svc server.Service, worker, i int) error {
			u := hyrec.UserID(worker*1000 + i%50 + 1)
			return svc.Rate(ctx, u, hyrec.ItemID(i%20), i%2 == 0)
		})
	if calls == 0 {
		t.Fatal("no calls completed in the window")
	}
	if failures != 0 {
		t.Fatalf("%d/%d calls failed", failures, calls)
	}
	if eng.Profiles().Len() == 0 {
		t.Fatal("no ratings reached the server")
	}
}

// TestServiceThroughputInProcess pins interface symmetry: the same
// harness drives an in-process engine with no HTTP in between.
func TestServiceThroughputInProcess(t *testing.T) {
	eng := hyrec.NewEngine(hyrec.DefaultConfig())
	calls, failures := stress.ServiceThroughput(eng, 2, 50*time.Millisecond,
		func(ctx context.Context, svc server.Service, worker, i int) error {
			return svc.Rate(ctx, hyrec.UserID(worker+1), hyrec.ItemID(i%10), true)
		})
	if calls == 0 || failures != 0 {
		t.Fatalf("calls=%d failures=%d", calls, failures)
	}
}
