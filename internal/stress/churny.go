package stress

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hyrec/internal/server"
	"hyrec/internal/widget"
)

// ChurnReport summarises one churny-worker run: how the dispatched work
// split between completions, abandons and (server-side) everything the
// scheduler had to absorb. FallbackFraction is read off the service's
// scheduler stats by the caller; this report covers the client side.
type ChurnReport struct {
	// Dispatched counts jobs the workers leased.
	Dispatched int64
	// Completed counts results posted back.
	Completed int64
	// Abandoned counts leased jobs dropped mid-computation (silent churn:
	// the server only finds out when the lease expires).
	Abandoned int64
}

// ChurnyWorkers drives svc's scheduler with `workers` pull-based worker
// goroutines for the given window. Each leased job is abandoned
// silently with probability abandonProb — the paper's churn scenario: a
// browser navigates away mid-computation and the server must re-issue
// the job or absorb it in the fallback pool. Jobs that survive the draw
// are computed with the widget kernel and posted back.
//
// svc must implement server.JobSource (an engine or cluster with the
// scheduler enabled, or a typed client pointed at one).
func ChurnyWorkers(svc server.Service, workers int, abandonProb float64,
	seed int64, window time.Duration) ChurnReport {
	js, ok := svc.(server.JobSource)
	if !ok {
		return ChurnReport{}
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	var dispatched, completed, abandoned atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kernel := widget.New()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for ctx.Err() == nil {
				pollCtx, pollCancel := context.WithTimeout(ctx, 50*time.Millisecond)
				job, err := js.NextJob(pollCtx)
				pollCancel()
				if err != nil || job == nil {
					continue
				}
				dispatched.Add(1)
				if rng.Float64() < abandonProb {
					abandoned.Add(1)
					continue // churn out: drop the job, let the lease expire
				}
				res, _ := kernel.Execute(job)
				if _, err := svc.ApplyResult(ctx, res); err == nil {
					completed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	return ChurnReport{
		Dispatched: dispatched.Load(),
		Completed:  completed.Load(),
		Abandoned:  abandoned.Load(),
	}
}
