package baseline

import (
	"math"
	"math/rand"
	"runtime"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/mapreduce"
	"hyrec/internal/topk"
)

// BuildResult describes one back-end KNN construction run — one bar of
// Figure 7.
type BuildResult struct {
	// System is the back-end's name (Exhaustive, MahoutSingle, ClusMahout,
	// CRec).
	System string
	// RealCompute is the host CPU time actually burned.
	RealCompute time.Duration
	// WallClock is the simulated wall-clock on the target cluster
	// (measured task times scheduled onto the cluster, plus Hadoop
	// overheads where applicable). This is Figure 7's y-axis.
	WallClock time.Duration
	// SimilarityOps counts pairwise similarity (or co-occurrence pair)
	// computations: the scale-free work measure used to extrapolate to
	// full-size datasets.
	SimilarityOps int64
	// KNN is the resulting table (user → neighbours best-first).
	KNN map[core.UserID][]core.UserID
}

// ExhaustiveBuild computes the exact KNN of every user by brute force —
// the paper's "Exhaustive" bar (the back-end of Offline-Ideal). The O(N²)
// pair scan runs as one map-reduce job on the given cluster.
func ExhaustiveBuild(profiles []core.Profile, k int, metric core.Similarity, cluster mapreduce.Cluster) BuildResult {
	out, stats := mapreduce.Run(
		profiles,
		func(p core.Profile, emit func(uint32, []core.UserID)) {
			emit(uint32(p.User()), neighborsToIDs(core.SelectKNN(p, profiles, k, metric)))
		},
		func(_ uint32, vs [][]core.UserID) []core.UserID { return vs[0] },
		func(k uint32) uint64 { return mapreduce.HashUint64(uint64(k)) },
		mapreduce.Options{},
	)
	knn := make(map[core.UserID][]core.UserID, len(out))
	for _, kv := range out {
		knn[core.UserID(kv.Key)] = kv.Val
	}
	n := int64(len(profiles))
	return BuildResult{
		System:        "Exhaustive",
		RealCompute:   stats.RealTime,
		WallClock:     stats.SimulatedWallClock(cluster),
		SimilarityOps: n * (n - 1),
		KNN:           knn,
	}
}

// CRecBuild runs the sampling-based batch KNN (Offline-CRec's back-end)
// for the given number of iterations, pricing each iteration as one
// lightweight map-reduce job on the cluster.
func CRecBuild(profiles []core.Profile, k, iterations int, metric core.Similarity, cluster mapreduce.Cluster, seed int64) BuildResult {
	users := make([]core.UserID, len(profiles))
	pmap := make(map[core.UserID]core.Profile, len(profiles))
	for i, p := range profiles {
		users[i] = p.User()
		pmap[p.User()] = p
	}
	var wall time.Duration
	var real time.Duration
	var ops int64
	table := map[core.UserID][]core.UserID{}
	for iter := 0; iter < iterations; iter++ {
		start := time.Now()
		var iterOps int64
		table, iterOps = SamplingKNNCounted(users, pmap, table, k, 1, metric, seed+int64(iter))
		elapsed := time.Since(start)
		real += elapsed
		ops += iterOps
		// Price the iteration as a map wave over the users on the cluster:
		// the host ran it on GOMAXPROCS cores; scale the aggregate compute
		// onto the cluster's slots and charge the job startup.
		stats := mapreduce.Stats{
			MapTasks:       cluster.TotalCores(),
			MapTaskTimes:   evenSplit(elapsed*time.Duration(hostWorkers()), cluster.TotalCores()),
			MapTaskRecords: make([]int64, cluster.TotalCores()),
		}
		wall += stats.SimulatedWallClock(cluster)
	}
	return BuildResult{
		System:        "CRec",
		RealCompute:   real,
		WallClock:     wall,
		SimilarityOps: ops,
		KNN:           table,
	}
}

// MahoutBuild computes the exact user-based KNN the way Mahout's Hadoop
// pipeline does: an inverted item → users index, item-wise co-occurrence
// pair emission (capped per item like Mahout's maxPrefsPerUser sampling),
// pairwise cosine from co-counts, and a final per-user top-k — three
// chained map-reduce jobs, each priced with Hadoop startup and per-record
// costs on the given cluster.
func MahoutBuild(profiles []core.Profile, k int, cluster mapreduce.Cluster, maxUsersPerItem int, seed int64) BuildResult {
	if maxUsersPerItem <= 0 {
		maxUsersPerItem = 300
	}
	likedCount := make(map[core.UserID]int, len(profiles))
	for _, p := range profiles {
		likedCount[p.User()] = p.NumLiked()
	}
	rng := rand.New(rand.NewSource(seed))

	// Job 1: invert profiles into item → users-who-liked.
	inverted, s1 := mapreduce.Run(
		profiles,
		func(p core.Profile, emit func(uint32, core.UserID)) {
			for _, item := range p.Liked() {
				emit(uint32(item), p.User())
			}
		},
		func(_ uint32, users []core.UserID) []core.UserID { return users },
		func(k uint32) uint64 { return mapreduce.HashUint64(uint64(k)) },
		mapreduce.Options{},
	)

	// Job 2: per item, emit co-occurrence pairs (capped) and count them.
	type pairKey uint64
	mkPair := func(a, b core.UserID) pairKey {
		if a > b {
			a, b = b, a
		}
		return pairKey(uint64(a)<<32 | uint64(b))
	}
	var pairOps int64
	coCounts, s2 := mapreduce.Run(
		inverted,
		func(kv mapreduce.KV[uint32, []core.UserID], emit func(pairKey, int)) {
			users := kv.Val
			if len(users) > maxUsersPerItem {
				// Mahout-style down-sampling of overly popular items.
				sampled := make([]core.UserID, maxUsersPerItem)
				perm := rng.Perm(len(users))
				for i := 0; i < maxUsersPerItem; i++ {
					sampled[i] = users[perm[i]]
				}
				users = sampled
			}
			for i := 0; i < len(users); i++ {
				for j := i + 1; j < len(users); j++ {
					emit(mkPair(users[i], users[j]), 1)
				}
			}
		},
		func(_ pairKey, ones []int) int { return len(ones) },
		func(k pairKey) uint64 { return mapreduce.HashUint64(uint64(k)) },
		mapreduce.Options{},
	)
	pairOps = s2.TotalRecords()

	// Job 3: turn co-counts into similarities and keep each user's top-k.
	type scored struct {
		other core.UserID
		sim   float64
	}
	perUser, s3 := mapreduce.Run(
		coCounts,
		func(kv mapreduce.KV[pairKey, int], emit func(uint32, scored)) {
			a := core.UserID(uint64(kv.Key) >> 32)
			b := core.UserID(uint64(kv.Key) & 0xFFFFFFFF)
			na, nb := likedCount[a], likedCount[b]
			if na == 0 || nb == 0 {
				return
			}
			sim := float64(kv.Val) / math.Sqrt(float64(na)*float64(nb))
			emit(uint32(a), scored{other: b, sim: sim})
			emit(uint32(b), scored{other: a, sim: sim})
		},
		func(_ uint32, ss []scored) []core.UserID {
			col := topk.New(k)
			for _, s := range ss {
				col.Offer(uint32(s.other), s.sim)
			}
			entries := col.Sorted()
			out := make([]core.UserID, len(entries))
			for i, e := range entries {
				out[i] = core.UserID(e.ID)
			}
			return out
		},
		func(k uint32) uint64 { return mapreduce.HashUint64(uint64(k)) },
		mapreduce.Options{},
	)

	knn := make(map[core.UserID][]core.UserID, len(perUser))
	for _, kv := range perUser {
		knn[core.UserID(kv.Key)] = kv.Val
	}
	name := "MahoutSingle"
	if cluster.Nodes > 1 {
		name = "ClusMahout"
	}
	return BuildResult{
		System:        name,
		RealCompute:   s1.RealTime + s2.RealTime + s3.RealTime,
		WallClock:     s1.SimulatedWallClock(cluster) + s2.SimulatedWallClock(cluster) + s3.SimulatedWallClock(cluster),
		SimilarityOps: pairOps,
		KNN:           knn,
	}
}

func evenSplit(total time.Duration, parts int) []time.Duration {
	out := make([]time.Duration, parts)
	if parts == 0 {
		return out
	}
	each := total / time.Duration(parts)
	for i := range out {
		out[i] = each
	}
	return out
}

func hostWorkers() int { return runtime.GOMAXPROCS(0) }
