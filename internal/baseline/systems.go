package baseline

import (
	"fmt"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/metrics"
	"hyrec/internal/replay"
)

// OfflineIdeal is the paper's "Offline Ideal" baseline: a back-end server
// recomputes the exact KNN of every user periodically (period p in
// Figures 3 and 6); between recomputations neighbourhoods are frozen — the
// step-like behaviour of Figure 3. The front-end answers recommendation
// requests from the frozen KNN table.
type OfflineIdeal struct {
	k      int
	metric core.Similarity
	store  *profileStore
	knn    *knnState
	timer  *periodic
	// Recomputations counts back-end runs (used by the cost model).
	Recomputations int
}

var _ replay.System = (*OfflineIdeal)(nil)

// NewOfflineIdeal builds the baseline with neighbourhood size k and
// recomputation period.
func NewOfflineIdeal(k int, period time.Duration, metric core.Similarity) *OfflineIdeal {
	return &OfflineIdeal{
		k:      k,
		metric: metric,
		store:  newProfileStore(),
		knn:    newKNNState(),
		timer:  newPeriodic(period),
	}
}

// Name implements replay.System.
func (s *OfflineIdeal) Name() string { return fmt.Sprintf("offline-ideal(p=%s)", s.timer.period) }

// Rate implements replay.System: profiles update immediately, but
// neighbourhoods only at the next periodic run.
func (s *OfflineIdeal) Rate(_ time.Duration, r core.Rating) {
	s.store.rate(r.User, r.Item, r.Liked)
}

// Recommend implements replay.System (front-end α over the frozen KNN).
func (s *OfflineIdeal) Recommend(_ time.Duration, u core.UserID, n int) []core.ItemID {
	return frontEndRecommend(s.store, u, s.knn.get(u), n)
}

// Neighbors implements replay.System.
func (s *OfflineIdeal) Neighbors(u core.UserID) []core.UserID { return s.knn.get(u) }

// Tick implements replay.System: runs the back-end recomputation when a
// period boundary passes.
func (s *OfflineIdeal) Tick(t time.Duration) {
	if !s.timer.due(t) {
		return
	}
	s.recompute()
}

func (s *OfflineIdeal) recompute() {
	ideal := metrics.IdealKNN(s.store, s.k, s.metric)
	next := make(map[core.UserID][]core.UserID, len(ideal))
	for u, ns := range ideal {
		next[u] = neighborsToIDs(ns)
	}
	s.knn.replaceAll(next)
	s.Recomputations++
}

// Store exposes the profile source for metrics.
func (s *OfflineIdeal) Store() metrics.ProfileSource { return s.store }

// OnlineIdeal is the inapplicable-but-instructive upper bound: it computes
// the exact KNN of the requesting user before every recommendation
// ("huge response times", Section 5.2 — Figure 8 quantifies them).
type OnlineIdeal struct {
	k      int
	metric core.Similarity
	store  *profileStore
}

var _ replay.System = (*OnlineIdeal)(nil)

// NewOnlineIdeal builds the upper-bound system.
func NewOnlineIdeal(k int, metric core.Similarity) *OnlineIdeal {
	return &OnlineIdeal{k: k, metric: metric, store: newProfileStore()}
}

// Name implements replay.System.
func (s *OnlineIdeal) Name() string { return "online-ideal" }

// Rate implements replay.System.
func (s *OnlineIdeal) Rate(_ time.Duration, r core.Rating) {
	s.store.rate(r.User, r.Item, r.Liked)
}

// Recommend implements replay.System: exact KNN now, then α.
func (s *OnlineIdeal) Recommend(_ time.Duration, u core.UserID, n int) []core.ItemID {
	return frontEndRecommend(s.store, u, s.Neighbors(u), n)
}

// Neighbors implements replay.System with an on-demand exact scan.
func (s *OnlineIdeal) Neighbors(u core.UserID) []core.UserID {
	profiles := s.store.snapshot()
	return neighborsToIDs(core.SelectKNN(s.store.Profile(u), profiles, s.k, s.metric))
}

// Tick implements replay.System (nothing is periodic here).
func (s *OnlineIdeal) Tick(time.Duration) {}

// Store exposes the profile source for metrics.
func (s *OnlineIdeal) Store() metrics.ProfileSource { return s.store }

// CRec is the Offline-CRec competitor: the same sampling-based KNN
// algorithm as HyRec, but run periodically in batch on a back-end
// (map-reduce style), with a centralized front-end computing
// recommendations on demand. It is the cost baseline of Table 3 and the
// front-end baseline of Figures 8–9.
type CRec struct {
	k          int
	metric     core.Similarity
	iterations int
	store      *profileStore
	knn        *knnState
	timer      *periodic
	rng        *rngSource
	// Recomputations counts back-end runs (used by the cost model).
	Recomputations int
}

var _ replay.System = (*CRec)(nil)

// NewCRec builds the baseline: every period, `iterations` sampling rounds
// refine the whole KNN table (10–20 suffice per the gossip literature
// cited in Section 2.3).
func NewCRec(k int, period time.Duration, iterations int, metric core.Similarity, seed int64) *CRec {
	return &CRec{
		k:          k,
		metric:     metric,
		iterations: iterations,
		store:      newProfileStore(),
		knn:        newKNNState(),
		timer:      newPeriodic(period),
		rng:        newRngSource(seed),
	}
}

// Name implements replay.System.
func (s *CRec) Name() string { return fmt.Sprintf("crec(p=%s)", s.timer.period) }

// Rate implements replay.System.
func (s *CRec) Rate(_ time.Duration, r core.Rating) {
	s.store.rate(r.User, r.Item, r.Liked)
}

// Recommend implements replay.System (front-end α over the batch KNN).
func (s *CRec) Recommend(_ time.Duration, u core.UserID, n int) []core.ItemID {
	return frontEndRecommend(s.store, u, s.knn.get(u), n)
}

// Neighbors implements replay.System.
func (s *CRec) Neighbors(u core.UserID) []core.UserID { return s.knn.get(u) }

// Tick implements replay.System.
func (s *CRec) Tick(t time.Duration) {
	if !s.timer.due(t) {
		return
	}
	s.recompute()
}

func (s *CRec) recompute() {
	users := s.store.Users()
	profiles := make(map[core.UserID]core.Profile, len(users))
	for _, u := range users {
		profiles[u] = s.store.Profile(u)
	}
	next := SamplingKNN(users, profiles, s.knn.snapshotAll(), s.k, s.iterations, s.metric, s.rng.next())
	s.knn.replaceAll(next)
	s.Recomputations++
}

// Store exposes the profile source for metrics.
func (s *CRec) Store() metrics.ProfileSource { return s.store }
