package baseline

import (
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/mapreduce"
	"hyrec/internal/metrics"
	"hyrec/internal/replay"
)

// clusteredProfiles builds two obvious taste communities.
func clusteredProfiles(n int) []core.Profile {
	out := make([]core.Profile, n)
	for u := 0; u < n; u++ {
		p := core.NewProfile(core.UserID(u))
		base := core.ItemID(0)
		if u%2 == 1 {
			base = 100
		}
		for j := 0; j < 6; j++ {
			p = p.WithRating(base+core.ItemID((u/2+j)%10), true)
		}
		out[u] = p
	}
	return out
}

func TestOfflineIdealFreezesBetweenPeriods(t *testing.T) {
	s := NewOfflineIdeal(2, time.Hour, core.Cosine{})
	s.Rate(0, core.Rating{User: 1, Item: 1, Liked: true})
	s.Rate(0, core.Rating{User: 2, Item: 1, Liked: true})
	// Before the first period boundary: no KNN at all.
	if got := s.Neighbors(1); got != nil {
		t.Fatalf("premature KNN: %v", got)
	}
	s.Tick(30 * time.Minute)
	if got := s.Neighbors(1); got != nil {
		t.Fatalf("KNN before boundary: %v", got)
	}
	s.Tick(time.Hour)
	if got := s.Neighbors(1); len(got) == 0 || got[0] != 2 {
		t.Fatalf("KNN after boundary: %v", got)
	}
	if s.Recomputations != 1 {
		t.Fatalf("recomputations = %d", s.Recomputations)
	}
	// New similar user arrives; the frozen table must not change until the
	// next boundary.
	s.Rate(90*time.Minute, core.Rating{User: 3, Item: 1, Liked: true})
	if got := s.Neighbors(3); got != nil {
		t.Fatalf("new user has premature KNN: %v", got)
	}
	s.Tick(2 * time.Hour)
	if got := s.Neighbors(3); len(got) == 0 {
		t.Fatal("new user still without KNN after boundary")
	}
}

func TestOfflineIdealRecommendUsesFrozenKNN(t *testing.T) {
	s := NewOfflineIdeal(2, time.Hour, core.Cosine{})
	s.Rate(0, core.Rating{User: 1, Item: 1, Liked: true})
	s.Rate(0, core.Rating{User: 2, Item: 1, Liked: true})
	s.Rate(0, core.Rating{User: 2, Item: 7, Liked: true})
	s.Tick(time.Hour)
	recs := s.Recommend(time.Hour, 1, 3)
	if len(recs) != 1 || recs[0] != 7 {
		t.Fatalf("recs = %v, want [7]", recs)
	}
	// Without a KNN entry there are no recommendations.
	if recs := s.Recommend(time.Hour, 99, 3); recs != nil {
		t.Fatalf("unknown user recs = %v", recs)
	}
}

func TestOnlineIdealAlwaysFresh(t *testing.T) {
	s := NewOnlineIdeal(2, core.Cosine{})
	s.Rate(0, core.Rating{User: 1, Item: 1, Liked: true})
	s.Rate(0, core.Rating{User: 2, Item: 1, Liked: true})
	// No Tick needed: neighbours are computed on demand.
	if got := s.Neighbors(1); len(got) == 0 || got[0] != 2 {
		t.Fatalf("neighbors = %v", got)
	}
	s.Rate(time.Second, core.Rating{User: 3, Item: 1, Liked: true})
	if got := s.Neighbors(3); len(got) == 0 {
		t.Fatal("new user invisible to online ideal")
	}
	s.Rate(2*time.Second, core.Rating{User: 2, Item: 9, Liked: true})
	recs := s.Recommend(2*time.Second, 1, 5)
	found := false
	for _, it := range recs {
		if it == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("fresh item not recommended: %v", recs)
	}
}

func TestCRecRefinesPeriodically(t *testing.T) {
	s := NewCRec(3, time.Hour, 5, core.Cosine{}, 42)
	// Two clusters with overlapping-but-distinct profiles inside each
	// cluster (identical profiles would leave same-cluster neighbours
	// with nothing unseen to recommend).
	for u := 0; u < 20; u++ {
		base := core.ItemID(0)
		if u%2 == 1 {
			base = 100
		}
		for j := 0; j < 5; j++ {
			item := base + core.ItemID((u/2+j)%10)
			s.Rate(0, core.Rating{User: core.UserID(u), Item: item, Liked: true})
		}
	}
	s.Tick(time.Hour)
	if s.Recomputations != 1 {
		t.Fatalf("recomputations = %d", s.Recomputations)
	}
	// After sampling iterations, user 0 (even cluster) should have
	// same-cluster neighbours.
	hood := s.Neighbors(0)
	if len(hood) == 0 {
		t.Fatal("no neighbours after batch run")
	}
	for _, v := range hood {
		if v%2 != 0 {
			t.Fatalf("cross-cluster neighbour %v in %v", v, hood)
		}
	}
	if recs := s.Recommend(time.Hour, 0, 3); len(recs) == 0 {
		t.Fatal("no recommendations after batch run")
	}
}

func TestSamplingKNNConvergesToIdeal(t *testing.T) {
	profiles := clusteredProfiles(40)
	users := make([]core.UserID, len(profiles))
	pmap := make(map[core.UserID]core.Profile, len(profiles))
	src := metrics.MapSource{}
	for i, p := range profiles {
		users[i] = p.User()
		pmap[p.User()] = p
		src[p.User()] = p
	}
	table, ops := SamplingKNNCounted(users, pmap, nil, 4, 12, core.Cosine{}, 7)
	if ops == 0 {
		t.Fatal("no similarity ops counted")
	}
	gotV := metrics.ViewSimilarity(src, func(u core.UserID) []core.UserID { return table[u] }, core.Cosine{})
	idealV := metrics.IdealViewSimilarity(src, 4, core.Cosine{})
	if gotV < 0.85*idealV {
		t.Fatalf("sampling view similarity %v too far below ideal %v", gotV, idealV)
	}
}

func TestSamplingKNNEdgeCases(t *testing.T) {
	if got := SamplingKNN(nil, nil, nil, 3, 5, core.Cosine{}, 1); len(got) != 0 {
		t.Fatalf("empty population → %v", got)
	}
	users := []core.UserID{1}
	pmap := map[core.UserID]core.Profile{1: core.NewProfile(1)}
	got := SamplingKNN(users, pmap, nil, 0, 5, core.Cosine{}, 1)
	if len(got) != 0 {
		t.Fatalf("k=0 → %v", got)
	}
}

// Regression: a single-user population must not hang the random-draw loop
// (the only candidate is the excluded user herself). This is the state a
// replayed system is in right after its first rating event.
func TestSamplingKNNSingleUserTerminates(t *testing.T) {
	users := []core.UserID{23}
	pmap := map[core.UserID]core.Profile{23: core.NewProfile(23).WithRating(1, true)}
	done := make(chan map[core.UserID][]core.UserID, 1)
	go func() { done <- SamplingKNN(users, pmap, nil, 5, 3, core.Cosine{}, 7) }()
	select {
	case table := <-done:
		if len(table[23]) != 0 {
			t.Fatalf("lone user has neighbors: %v", table[23])
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SamplingKNN hung on a single-user population")
	}
}

func TestExhaustiveBuildMatchesIdeal(t *testing.T) {
	profiles := clusteredProfiles(30)
	res := ExhaustiveBuild(profiles, 3, core.Cosine{}, mapreduce.SingleNode4Core())
	if res.System != "Exhaustive" || len(res.KNN) != 30 {
		t.Fatalf("res = %+v", res)
	}
	src := metrics.MapSource{}
	for _, p := range profiles {
		src[p.User()] = p
	}
	ideal := metrics.IdealKNN(src, 3, core.Cosine{})
	for u, want := range ideal {
		got := res.KNN[u]
		if len(got) != len(want) {
			t.Fatalf("user %v: %v vs %v", u, got, want)
		}
		for i := range got {
			if got[i] != want[i].User {
				t.Fatalf("user %v entry %d: %v vs %v", u, got[i], i, want[i].User)
			}
		}
	}
	if res.SimilarityOps != 30*29 {
		t.Fatalf("ops = %d", res.SimilarityOps)
	}
	if res.WallClock <= 0 {
		t.Fatal("no simulated wall clock")
	}
}

func TestCRecBuildProducesUsefulKNN(t *testing.T) {
	profiles := clusteredProfiles(40)
	res := CRecBuild(profiles, 4, 10, core.Cosine{}, mapreduce.SingleNode4Core(), 3)
	if res.System != "CRec" || len(res.KNN) != 40 {
		t.Fatalf("res system=%s knn=%d", res.System, len(res.KNN))
	}
	src := metrics.MapSource{}
	for _, p := range profiles {
		src[p.User()] = p
	}
	gotV := metrics.ViewSimilarity(src, func(u core.UserID) []core.UserID { return res.KNN[u] }, core.Cosine{})
	idealV := metrics.IdealViewSimilarity(src, 4, core.Cosine{})
	if gotV < 0.8*idealV {
		t.Fatalf("CRec build view similarity %v vs ideal %v", gotV, idealV)
	}
}

func TestMahoutBuildApproximatesIdeal(t *testing.T) {
	profiles := clusteredProfiles(30)
	res := MahoutBuild(profiles, 3, mapreduce.HadoopSingleNode(), 0, 5)
	if len(res.KNN) == 0 {
		t.Fatal("empty KNN")
	}
	// Every returned neighbour must share at least one item (co-occurrence
	// based), i.e. belong to the same parity cluster.
	for u, hood := range res.KNN {
		for _, v := range hood {
			if u%2 != v%2 {
				t.Fatalf("cross-cluster neighbour %v for %v", v, u)
			}
		}
	}
	// Hadoop overheads must appear in the simulated wall-clock: 3 jobs ×
	// 15s startup = 45s minimum.
	if res.WallClock < 45*time.Second {
		t.Fatalf("wall clock %v misses Hadoop startup costs", res.WallClock)
	}
	if res.SimilarityOps == 0 {
		t.Fatal("no pair ops counted")
	}
}

func TestMahoutBuildCapsPopularItems(t *testing.T) {
	// One item liked by everyone: pair emission must be capped.
	n := 80
	profiles := make([]core.Profile, n)
	for u := 0; u < n; u++ {
		profiles[u] = core.NewProfile(core.UserID(u)).WithRating(1, true)
	}
	cap := 10
	res := MahoutBuild(profiles, 3, mapreduce.HadoopSingleNode(), cap, 5)
	maxPairs := int64(cap * (cap - 1) / 2)
	if res.SimilarityOps > maxPairs {
		t.Fatalf("pair ops %d exceed cap-derived bound %d", res.SimilarityOps, maxPairs)
	}
}

func TestFigure7Ordering(t *testing.T) {
	// The headline of Figure 7: CRec's sampling back-end needs far less
	// work than exhaustive, and Mahout under Hadoop pays overheads that
	// in-memory engines do not. Sampling wins when N² dominates
	// N·iterations·|candidate set| — the paper's datasets have thousands
	// of users, so test in that regime, not at toy sizes (the paper
	// itself concedes ML1, its smallest set, to ClusMahout).
	profiles := clusteredProfiles(400)
	ex := ExhaustiveBuild(profiles, 4, core.Cosine{}, mapreduce.SingleNode4Core())
	cr := CRecBuild(profiles, 4, 6, core.Cosine{}, mapreduce.SingleNode4Core(), 1)
	mh := MahoutBuild(profiles, 4, mapreduce.HadoopSingleNode(), 300, 1)
	if cr.SimilarityOps >= ex.SimilarityOps {
		t.Fatalf("CRec ops %d ≥ exhaustive %d", cr.SimilarityOps, ex.SimilarityOps)
	}
	if mh.WallClock <= cr.WallClock {
		t.Fatalf("Mahout wall %v ≤ CRec %v (Hadoop overheads missing)", mh.WallClock, cr.WallClock)
	}
}

// End-to-end: all three systems process the same tiny trace through the
// replay driver without blowing up, and OnlineIdeal's view similarity
// dominates OfflineIdeal's at the end (freshness).
func TestSystemsUnderReplay(t *testing.T) {
	tr, err := dataset.Generate(dataset.Scaled(dataset.ML1Config(), 0.05))
	if err != nil {
		t.Fatal(err)
	}
	events := dataset.Binarize(tr)
	if len(events) > 3000 {
		events = events[:3000]
	}

	offline := NewOfflineIdeal(5, 7*24*time.Hour, core.Cosine{})
	online := NewOnlineIdeal(5, core.Cosine{})
	crec := NewCRec(5, 24*time.Hour, 8, core.Cosine{}, 11)
	for _, sys := range []replay.System{offline, online, crec} {
		if n := replay.NewDriver(sys).Run(events); n != len(events) {
			t.Fatalf("%s processed %d of %d", sys.Name(), n, len(events))
		}
	}

	offSrc := offline.Store()
	offV := metrics.ViewSimilarity(offSrc, offline.Neighbors, core.Cosine{})
	onV := metrics.ViewSimilarity(online.Store(), online.Neighbors, core.Cosine{})
	if onV < offV {
		t.Fatalf("online ideal %v below offline ideal %v", onV, offV)
	}
}

func TestPeriodicHelper(t *testing.T) {
	p := newPeriodic(time.Hour)
	if p.due(30 * time.Minute) {
		t.Fatal("due before boundary")
	}
	if !p.due(time.Hour) {
		t.Fatal("not due at boundary")
	}
	if p.due(90 * time.Minute) {
		t.Fatal("due twice in one period")
	}
	// Skipping several periods fires once and realigns.
	if !p.due(10 * time.Hour) {
		t.Fatal("not due after long skip")
	}
	if p.due(10*time.Hour + 30*time.Minute) {
		t.Fatal("due again before next boundary")
	}
	disabled := newPeriodic(0)
	if disabled.due(time.Hour) {
		t.Fatal("zero-period timer fired")
	}
}

func TestNamesAreStable(t *testing.T) {
	if NewOfflineIdeal(1, time.Hour, core.Cosine{}).Name() != "offline-ideal(p=1h0m0s)" {
		t.Error("offline name changed")
	}
	if NewOnlineIdeal(1, core.Cosine{}).Name() != "online-ideal" {
		t.Error("online name changed")
	}
}
