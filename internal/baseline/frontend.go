package baseline

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"strconv"
	"sync"

	"hyrec/internal/core"
)

// FrontEnd serves a centralized recommender's client-facing endpoint for
// the response-time experiments (Figures 8 and 9): GET /recommend?uid=U
// computes item recommendation server-side — precisely the work HyRec
// offloads to browsers. In Online mode it additionally recomputes the
// user's exact KNN before recommending (the Online-Ideal bar of Figure 8).
//
// Mirroring Section 5.5's setup, the KNN table is assumed up to date from
// a previous offline run; Seed installs that state.
type FrontEnd struct {
	k, r   int
	metric core.Similarity
	online bool

	mu       sync.RWMutex
	profiles map[core.UserID]core.Profile
	users    []core.UserID
	knn      map[core.UserID][]core.UserID

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewFrontEnd builds a front-end with neighbourhood size k returning r
// recommendations; online selects the Online-Ideal behaviour.
func NewFrontEnd(k, r int, metric core.Similarity, online bool) *FrontEnd {
	return &FrontEnd{
		k:        k,
		r:        r,
		metric:   metric,
		online:   online,
		profiles: make(map[core.UserID]core.Profile),
		knn:      make(map[core.UserID][]core.UserID),
		rng:      rand.New(rand.NewSource(1)),
	}
}

// Seed installs the profile and KNN tables (the result of the offline
// back-end run).
func (f *FrontEnd) Seed(profiles []core.Profile, knn map[core.UserID][]core.UserID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.profiles = make(map[core.UserID]core.Profile, len(profiles))
	f.users = f.users[:0]
	for _, p := range profiles {
		f.profiles[p.User()] = p
		f.users = append(f.users, p.User())
	}
	f.knn = knn
	if f.knn == nil {
		f.knn = make(map[core.UserID][]core.UserID)
	}
}

// Recommend is the server-side recommendation path. For the offline-CRec
// front-end, the candidate set is rebuilt from the stored KNN graph
// exactly as §2.1 describes (the user's neighbours, their neighbours, and
// k random users) and Algorithm 2 runs over it. In Online mode the exact
// KNN is recomputed first (brute force over all profiles).
func (f *FrontEnd) Recommend(u core.UserID) []core.ItemID {
	f.mu.RLock()
	defer f.mu.RUnlock()
	p, ok := f.profiles[u]
	if !ok {
		return nil
	}
	var candidateIDs []core.UserID
	if f.online {
		all := make([]core.Profile, 0, len(f.users))
		for _, v := range f.users {
			all = append(all, f.profiles[v])
		}
		candidateIDs = neighborsToIDs(core.SelectKNN(p, all, f.k, f.metric))
	} else {
		lookup := func(v core.UserID) []core.UserID { return f.knn[v] }
		random := func(r *rand.Rand, n int, exclude core.UserID) []core.UserID {
			out := make([]core.UserID, 0, n)
			for len(out) < n && len(f.users) > 1 {
				v := f.users[r.Intn(len(f.users))]
				if v != exclude {
					out = append(out, v)
				}
			}
			return out
		}
		f.rngMu.Lock()
		seed := f.rng.Int63()
		f.rngMu.Unlock()
		candidateIDs = core.BuildCandidateSet(u, f.k, lookup, random, rand.New(rand.NewSource(seed)))
	}
	candidates := make([]core.Profile, 0, len(candidateIDs))
	for _, v := range candidateIDs {
		if cp, ok := f.profiles[v]; ok {
			candidates = append(candidates, cp)
		}
	}
	return core.Recommend(p, candidates, f.r)
}

// Handler exposes GET /recommend?uid=U returning a JSON item list.
func (f *FrontEnd) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/recommend", func(w http.ResponseWriter, r *http.Request) {
		uid64, err := strconv.ParseUint(r.URL.Query().Get("uid"), 10, 32)
		if err != nil {
			http.Error(w, "bad uid", http.StatusBadRequest)
			return
		}
		recs := f.Recommend(core.UserID(uid64))
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(recs); err != nil {
			return
		}
	})
	return mux
}
