// Package baseline implements every system HyRec is compared against in
// Section 5: the centralized Offline-Ideal (periodic brute-force KNN on a
// back-end), Online-Ideal (brute-force KNN per request, the quality upper
// bound), CRec (the sampling-based offline competitor with a centralized
// front-end), and the Figure 7 KNN-construction runners (Exhaustive,
// Offline-CRec, Mahout-style on Hadoop) on the simulated map-reduce
// clusters.
package baseline

import (
	"sync"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/metrics"
)

// profileStore is the shared profile state of the centralized systems.
// It implements metrics.ProfileSource.
type profileStore struct {
	mu    sync.RWMutex
	m     map[core.UserID]core.Profile
	users []core.UserID
}

var _ metrics.ProfileSource = (*profileStore)(nil)

func newProfileStore() *profileStore {
	return &profileStore{m: make(map[core.UserID]core.Profile)}
}

func (s *profileStore) rate(u core.UserID, item core.ItemID, liked bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[u]
	if !ok {
		p = core.NewProfile(u)
		s.users = append(s.users, u)
	}
	s.m[u] = p.WithRating(item, liked)
}

// Profile implements metrics.ProfileSource.
func (s *profileStore) Profile(u core.UserID) core.Profile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if p, ok := s.m[u]; ok {
		return p
	}
	return core.NewProfile(u)
}

// Users implements metrics.ProfileSource.
func (s *profileStore) Users() []core.UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]core.UserID, len(s.users))
	copy(out, s.users)
	return out
}

func (s *profileStore) snapshot() []core.Profile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]core.Profile, 0, len(s.users))
	for _, u := range s.users {
		out = append(out, s.m[u])
	}
	return out
}

// frontEndRecommend is the centralized front-end's item-recommendation
// path: Algorithm 2 over the profiles of u's current neighbours, computed
// on the server (this is exactly the work HyRec offloads to browsers;
// Figures 8–9 measure its cost).
func frontEndRecommend(store *profileStore, u core.UserID, hood []core.UserID, n int) []core.ItemID {
	if n <= 0 || len(hood) == 0 {
		return nil
	}
	profiles := make([]core.Profile, 0, len(hood))
	for _, v := range hood {
		profiles = append(profiles, store.Profile(v))
	}
	recs := core.Recommend(store.Profile(u), profiles, n)
	return recs
}

// knnState is a mutex-guarded user → neighbours map shared by the offline
// systems.
type knnState struct {
	mu sync.RWMutex
	m  map[core.UserID][]core.UserID
}

func newKNNState() *knnState { return &knnState{m: make(map[core.UserID][]core.UserID)} }

func (k *knnState) get(u core.UserID) []core.UserID {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.m[u]
}

func (k *knnState) replaceAll(next map[core.UserID][]core.UserID) {
	k.mu.Lock()
	k.m = next
	k.mu.Unlock()
}

func (k *knnState) put(u core.UserID, hood []core.UserID) {
	k.mu.Lock()
	k.m[u] = hood
	k.mu.Unlock()
}

// neighborsToIDs strips similarity scores.
func neighborsToIDs(ns []core.Neighbor) []core.UserID {
	out := make([]core.UserID, len(ns))
	for i, n := range ns {
		out[i] = n.User
	}
	return out
}

// periodic tracks period boundaries on the virtual clock. The first run
// fires at the first Tick at or after one full period (offline clustering
// has nothing to cluster at t=0).
type periodic struct {
	period time.Duration
	next   time.Duration
	inited bool
}

func newPeriodic(period time.Duration) *periodic {
	return &periodic{period: period, next: period}
}

// due reports whether the period boundary has passed and advances it.
func (p *periodic) due(t time.Duration) bool {
	if p.period <= 0 {
		return false
	}
	if t < p.next {
		return false
	}
	for p.next <= t {
		p.next += p.period
	}
	return true
}
