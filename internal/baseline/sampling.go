package baseline

import (
	"math/rand"
	"runtime"
	"sync"

	"hyrec/internal/core"
)

// rngSource hands out deterministic child seeds; it keeps the systems'
// randomness reproducible without sharing one *rand.Rand across
// goroutines.
type rngSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newRngSource(seed int64) *rngSource {
	return &rngSource{rng: rand.New(rand.NewSource(seed))}
}

func (r *rngSource) next() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Int63()
}

func (k *knnState) snapshotAll() map[core.UserID][]core.UserID {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make(map[core.UserID][]core.UserID, len(k.m))
	for u, hood := range k.m {
		out[u] = hood
	}
	return out
}

// SamplingKNN runs `iterations` synchronous rounds of the sampling-based
// KNN refinement (Algorithm 1 with the Section 3.1 candidate rule) over
// the whole population — the computation Offline-CRec performs in batch on
// its back-end. Rounds are parallelised across users; each round reads the
// previous round's table, so the refinement is deterministic given the
// seed. Returns the final user → neighbours table.
//
// SimilarityOps, when non-nil, accumulates the number of pairwise
// similarity computations (Figure 7's work measure).
func SamplingKNN(
	users []core.UserID,
	profiles map[core.UserID]core.Profile,
	initial map[core.UserID][]core.UserID,
	k, iterations int,
	metric core.Similarity,
	seed int64,
) map[core.UserID][]core.UserID {
	table, _ := SamplingKNNCounted(users, profiles, initial, k, iterations, metric, seed)
	return table
}

// SamplingKNNCounted is SamplingKNN returning the similarity-computation
// count as well.
func SamplingKNNCounted(
	users []core.UserID,
	profiles map[core.UserID]core.Profile,
	initial map[core.UserID][]core.UserID,
	k, iterations int,
	metric core.Similarity,
	seed int64,
) (map[core.UserID][]core.UserID, int64) {
	if len(users) == 0 || k <= 0 {
		return map[core.UserID][]core.UserID{}, 0
	}
	table := make(map[core.UserID][]core.UserID, len(users))
	for u, hood := range initial {
		table[u] = hood
	}
	var totalOps int64
	workers := runtime.GOMAXPROCS(0)
	for iter := 0; iter < iterations; iter++ {
		next := make([]struct {
			u    core.UserID
			hood []core.UserID
		}, len(users))
		var ops int64
		var opsMu sync.Mutex
		var wg sync.WaitGroup
		chunk := (len(users) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(users) {
				break
			}
			hi := lo + chunk
			if hi > len(users) {
				hi = len(users)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(iter)*1_000_003 + int64(w)))
				var localOps int64
				lookup := func(v core.UserID) []core.UserID { return table[v] }
				random := func(r *rand.Rand, n int, exclude core.UserID) []core.UserID {
					out := make([]core.UserID, 0, n)
					// Early in a replay the population can be smaller than
					// n — or even just {exclude} — so cap the draws rather
					// than spinning until enough distinct users exist.
					for attempts := 0; len(out) < n && attempts < 8*n; attempts++ {
						cand := users[r.Intn(len(users))]
						if cand != exclude {
							out = append(out, cand)
						}
					}
					return out
				}
				for i := lo; i < hi; i++ {
					u := users[i]
					candidateIDs := core.BuildCandidateSet(u, k, lookup, random, rng)
					candidates := make([]core.Profile, 0, len(candidateIDs))
					for _, c := range candidateIDs {
						if p, ok := profiles[c]; ok {
							candidates = append(candidates, p)
						}
					}
					localOps += int64(len(candidates))
					next[i].u = u
					next[i].hood = neighborsToIDs(core.SelectKNN(profiles[u], candidates, k, metric))
				}
				opsMu.Lock()
				ops += localOps
				opsMu.Unlock()
			}(w, lo, hi)
		}
		wg.Wait()
		table = make(map[core.UserID][]core.UserID, len(users))
		for _, e := range next {
			table[e.u] = e.hood
		}
		totalOps += ops
	}
	return table, totalOps
}
