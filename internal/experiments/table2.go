package experiments

import (
	"fmt"

	"hyrec/internal/dataset"
)

// Table2Row pairs generated-trace statistics with the paper's published
// row.
type Table2Row struct {
	Stats      dataset.Stats
	PaperUsers int
	PaperItems int
	PaperAvg   float64
}

// Table2 regenerates the dataset-statistics table. Scale defaults to the
// full Table 2 sizes for ML1 and a reduced factor for the larger traces
// (override with Options.Scale; the row names record the factor).
func Table2(opt Options) []Table2Row {
	specs := []struct {
		cfg   dataset.GenConfig
		scale float64
		users int
		items int
		avg   float64
	}{
		{dataset.ML1Config(), opt.scaleOr(1.0), 943, 1700, 106},
		{dataset.ML2Config(), opt.scaleOr(0.2), 6040, 4000, 166},
		{dataset.ML3Config(), opt.scaleOr(0.02), 69878, 10000, 143},
		{dataset.DiggConfig(), opt.scaleOr(0.05), 59167, 7724, 13},
	}
	rows := make([]Table2Row, 0, len(specs))
	for _, spec := range specs {
		tr, _, err := generate(spec.cfg, spec.scale)
		if err != nil {
			opt.logf("table2: %v\n", err)
			continue
		}
		s := dataset.ComputeStats(tr)
		rows = append(rows, Table2Row{Stats: s, PaperUsers: spec.users, PaperItems: spec.items, PaperAvg: spec.avg})
		opt.logf("%s   (paper: users=%d items=%d avg=%.0f)\n", s, spec.users, spec.items, spec.avg)
	}
	return rows
}

// FprintTable2 renders rows as the harness's Table 2.
func FprintTable2(w interface{ Write([]byte) (int, error) }, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: dataset statistics (generated vs paper)\n")
	fmt.Fprintf(w, "%-10s %10s %10s %12s %8s | %10s %10s %8s\n",
		"dataset", "users", "items", "ratings", "avg", "paper-usr", "paper-itm", "p-avg")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %10d %12d %8.0f | %10d %10d %8.0f\n",
			r.Stats.Name, r.Stats.ObservedUsers, r.Stats.ObservedItems, r.Stats.Ratings,
			r.Stats.AvgRatings, r.PaperUsers, r.PaperItems, r.PaperAvg)
	}
}
