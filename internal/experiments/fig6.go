package experiments

import (
	"fmt"
	"io"
	"time"

	"hyrec"
	"hyrec/internal/baseline"
	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/metrics"
)

// Fig6Result holds the Figure 6 recommendation-quality curves: hits per
// requested list length n (1..MaxN) for each system.
type Fig6Result struct {
	MaxN      int
	Positives int
	HyRec     []int
	Offline24 []int
	Offline1h []int
	Online    []int
}

// Figure6 runs the Section 5.3 protocol on ML1: 80/20 time split, then for
// each positive test rating the user requests n recommendations and a hit
// is counted when the rated item appears. Systems: HyRec (k=10),
// Offline-Ideal with 24h and 1h periods, and the Online-Ideal upper bound.
func Figure6(opt Options) Fig6Result {
	scale := opt.scaleOr(0.15)
	_, events, err := generate(dataset.ML1Config(), scale)
	if err != nil {
		opt.logf("fig6: %v\n", err)
		return Fig6Result{}
	}
	train, test := dataset.Split(events, 0.8)
	const maxN = 10
	metric := core.Cosine{}

	cfg := hyrec.DefaultConfig()
	cfg.K = 10
	cfg.Seed = opt.seedOr(1)

	res := Fig6Result{MaxN: maxN}

	hy := metrics.EvaluateQuality(hyrec.NewSystem(cfg), train, test, maxN)
	res.HyRec = hy.Hits
	res.Positives = hy.Positives
	opt.logf("fig6: hyrec done (%d positives)\n", hy.Positives)

	off24 := metrics.EvaluateQuality(baseline.NewOfflineIdeal(10, 24*time.Hour, metric), train, test, maxN)
	res.Offline24 = off24.Hits
	opt.logf("fig6: offline p=24h done\n")

	off1 := metrics.EvaluateQuality(baseline.NewOfflineIdeal(10, time.Hour, metric), train, test, maxN)
	res.Offline1h = off1.Hits
	opt.logf("fig6: offline p=1h done\n")

	online := metrics.EvaluateQuality(baseline.NewOnlineIdeal(10, metric), train, test, maxN)
	res.Online = online.Hits
	opt.logf("fig6: online ideal done\n")

	return res
}

// FprintFigure6 renders the quality curves.
func FprintFigure6(w io.Writer, res Fig6Result) {
	fmt.Fprintf(w, "Figure 6: recommendation quality vs #recommendations (ML1, k=10, %d positives)\n", res.Positives)
	fmt.Fprintf(w, "%4s %8s %14s %14s %12s\n", "n", "hyrec", "offline p=24h", "offline p=1h", "online ideal")
	for n := 0; n < res.MaxN; n++ {
		get := func(xs []int) int {
			if n < len(xs) {
				return xs[n]
			}
			return 0
		}
		fmt.Fprintf(w, "%4d %8d %14d %14d %12d\n",
			n+1, get(res.HyRec), get(res.Offline24), get(res.Offline1h), get(res.Online))
	}
}
