package experiments

import (
	"strings"
	"testing"
)

func TestMetricCompareSmoke(t *testing.T) {
	rows := MetricCompare(Options{Scale: 0.04, Seed: 6})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Metric] = true
		if r.Positives == 0 {
			t.Fatalf("%s evaluated no positives", r.Metric)
		}
		if r.Hits < 0 || r.Hits > r.Positives {
			t.Fatalf("%s hits out of range: %+v", r.Metric, r)
		}
	}
	for _, want := range []string{"cosine", "jaccard", "signed-cosine", "overlap"} {
		if !names[want] {
			t.Fatalf("missing metric %q in %v", want, names)
		}
	}

	var sb strings.Builder
	FprintMetrics(&sb, rows)
	if !strings.Contains(sb.String(), "signed-cosine") {
		t.Fatalf("render malformed:\n%s", sb.String())
	}
}
