package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tiny returns the smallest options that still exercise every code path.
func tiny() Options {
	return Options{Scale: 0.04, Requests: 20, Seed: 1}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.scaleOr(0.5) != 0.5 || o.requestsOr(7) != 7 || o.seedOr(3) != 3 {
		t.Fatal("zero options did not fall back to defaults")
	}
	o = Options{Scale: 0.1, Requests: 9, Seed: 2}
	if o.scaleOr(0.5) != 0.1 || o.requestsOr(7) != 9 || o.seedOr(3) != 2 {
		t.Fatal("set options ignored")
	}
	// logf with nil Out must not panic.
	o.logf("nothing %d", 1)
}

func TestSyntheticProfiles(t *testing.T) {
	ps := syntheticProfiles(10, 25, 1)
	if len(ps) != 10 {
		t.Fatalf("len = %d", len(ps))
	}
	for _, p := range ps {
		if p.NumLiked() != 25 {
			t.Fatalf("profile size = %d, want 25", p.NumLiked())
		}
	}
	// Deterministic.
	qs := syntheticProfiles(10, 25, 1)
	for i := range ps {
		if !ps[i].Equal(qs[i]) {
			t.Fatal("not deterministic")
		}
	}
}

func TestRandomKNN(t *testing.T) {
	table := randomKNN(20, 5, 1)
	if len(table) != 20 {
		t.Fatalf("users = %d", len(table))
	}
	for u, hood := range table {
		if len(hood) != 5 {
			t.Fatalf("hood size = %d", len(hood))
		}
		seen := map[any]bool{}
		for _, v := range hood {
			if v == u {
				t.Fatal("self neighbor")
			}
			if seen[v] {
				t.Fatal("duplicate neighbor")
			}
			seen[v] = true
		}
	}
}

func TestTable2Smoke(t *testing.T) {
	rows := Table2(Options{Scale: 0.02, Seed: 1})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	FprintTable2(&buf, rows)
	for _, name := range []string{"ML1", "ML2", "ML3", "Digg"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("output missing %s", name)
		}
	}
}

func TestFigure3Smoke(t *testing.T) {
	pts := Figure3(tiny())
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// View similarity grows over the replay and stays within the ideal.
	last := pts[len(pts)-1]
	if last.HyRec10 <= 0 {
		t.Fatal("hyrec never learned anything")
	}
	if last.HyRec10 > last.Ideal10+1e-9 {
		t.Fatalf("hyrec %v exceeds ideal %v", last.HyRec10, last.Ideal10)
	}
	var buf bytes.Buffer
	FprintFigure3(&buf, pts)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("missing header")
	}
}

func TestFigure4Smoke(t *testing.T) {
	res := Figure4(tiny())
	if res.Users == 0 || len(res.Buckets) == 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.OverallPctAbove70 < 0 || res.OverallPctAbove70 > 100 {
		t.Fatalf("pct = %v", res.OverallPctAbove70)
	}
	var buf bytes.Buffer
	FprintFigure4(&buf, res)
	if !strings.Contains(buf.String(), "overall") {
		t.Fatal("missing summary line")
	}
}

func TestFigure5Smoke(t *testing.T) {
	series := Figure5(tiny())
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Size) == 0 {
			t.Fatalf("k=%d: empty series", s.K)
		}
		for _, size := range s.Size {
			if size > float64(s.Bound) {
				t.Fatalf("k=%d: size %v exceeds bound %d", s.K, size, s.Bound)
			}
		}
	}
	var buf bytes.Buffer
	FprintFigure5(&buf, series)
	if !strings.Contains(buf.String(), "k=20") {
		t.Fatal("missing k=20 series")
	}
}

func TestFigure6Smoke(t *testing.T) {
	res := Figure6(tiny())
	if res.Positives == 0 {
		t.Fatal("no positives")
	}
	// Hits must be monotone in n for every system.
	for _, hits := range [][]int{res.HyRec, res.Offline24, res.Offline1h, res.Online} {
		for i := 1; i < len(hits); i++ {
			if hits[i] < hits[i-1] {
				t.Fatalf("hits not monotone: %v", hits)
			}
		}
	}
	var buf bytes.Buffer
	FprintFigure6(&buf, res)
	if !strings.Contains(buf.String(), "online ideal") {
		t.Fatal("missing column")
	}
}

func TestFigure7SmokeAndOrdering(t *testing.T) {
	opt := Options{Scale: 0.08, Seed: 1}
	rows := Figure7(opt)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CRec <= 0 || r.Exhaustive <= 0 {
			t.Fatalf("%s: missing measurements %+v", r.Dataset, r)
		}
		// Full-scale extrapolations: exhaustive must dominate CRec on the
		// large datasets (the paper's 95.5% reduction claim). ML1 is the
		// paper's own concession — at 943 users the quadratic term has
		// not pulled away yet (Figure 7 shows ClusMahout beating CRec
		// there).
		if r.FullUsers >= 5000 && r.ExhaustiveFull <= r.CRecFull {
			t.Errorf("%s: exhaustive full %v ≤ crec full %v", r.Dataset, r.ExhaustiveFull, r.CRecFull)
		}
		// Hadoop startup keeps Mahout above CRec.
		if r.MahoutSingle <= r.CRec {
			t.Errorf("%s: mahout %v ≤ crec %v", r.Dataset, r.MahoutSingle, r.CRec)
		}
	}
	var buf bytes.Buffer
	FprintFigure7(&buf, rows)
	if !strings.Contains(buf.String(), "Exhaustive") {
		t.Fatal("missing column")
	}
}

func TestTable3Smoke(t *testing.T) {
	// Feed synthetic Figure 7 rows at the Go engine's measurement scale;
	// Table3 applies cost.TestbedFactor2014 (5000×) before pricing, so
	// these correspond to testbed runs of ≈25min, ≈3.3h, ≈37h and ≈21h.
	rows := []Fig7Row{
		{Dataset: "ML1", CRecFull: 300 * time.Millisecond},
		{Dataset: "ML2", CRecFull: 2400 * time.Millisecond},
		{Dataset: "ML3", CRecFull: 26 * time.Second},
		{Dataset: "Digg", CRecFull: 15 * time.Second},
	}
	res := Table3(Options{}, rows)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		switch r.Dataset {
		case "ML1":
			// Paper: 8.6% / 15.8% / 27.4% — same order, monotone in
			// recomputation frequency.
			if r.Reductions[0] < 0.02 || r.Reductions[0] > 0.15 {
				t.Fatalf("ML1@48h reduction = %v", r.Reductions[0])
			}
			if !(r.Reductions[0] < r.Reductions[1] && r.Reductions[1] < r.Reductions[2]) {
				t.Fatalf("ML1 reductions not monotone: %v", r.Reductions)
			}
		case "ML3":
			// Must hit the reserved cap: flat ≈49.2%.
			for _, red := range r.Reductions {
				if red < 0.48 || red > 0.50 {
					t.Fatalf("ML3 reduction = %v", red)
				}
			}
		}
	}
	var buf bytes.Buffer
	FprintTable3(&buf, res)
	if !strings.Contains(buf.String(), "ML3") {
		t.Fatal("missing row")
	}
}

func TestFigure10Smoke(t *testing.T) {
	pts := Figure10(Options{Seed: 1})
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for i, p := range pts {
		if p.ConvergedGzip >= p.ConvergedJSON {
			t.Fatalf("gzip did not compress: %+v", p)
		}
		if i > 0 && p.WorstJSON <= pts[i-1].WorstJSON {
			t.Fatalf("worst-case json not growing with ps")
		}
	}
	// The paper's claim: converged job stays under ~10 kB gzip at ps=500.
	last := pts[len(pts)-1]
	if last.ProfileSize == 500 && last.ConvergedGzip > 12*1024 {
		t.Fatalf("converged gzip at ps=500 is %d bytes", last.ConvergedGzip)
	}
	var buf bytes.Buffer
	FprintFigure10(&buf, pts)
	if !strings.Contains(buf.String(), "worst gzip") {
		t.Fatal("missing column")
	}
}

func TestFigure12And13Smoke(t *testing.T) {
	opt := Options{Requests: 3, Seed: 1}
	p12 := Figure12(opt)
	if len(p12) == 0 {
		t.Fatal("fig12 empty")
	}
	for _, p := range p12 {
		if p.SmartphoneMs <= p.LaptopMs {
			t.Fatalf("smartphone not slower: %+v", p)
		}
	}
	p13 := Figure13(opt)
	if len(p13) == 0 {
		t.Fatal("fig13 empty")
	}
	for _, p := range p13 {
		if p.PhoneK10Ms <= p.LaptopK10Ms {
			t.Fatalf("smartphone not slower: %+v", p)
		}
	}
	var buf bytes.Buffer
	FprintFigure12(&buf, p12)
	FprintFigure13(&buf, p13)
	if !strings.Contains(buf.String(), "Figure 13") {
		t.Fatal("missing header")
	}
}

func TestBandwidthSmoke(t *testing.T) {
	opt := Options{Scale: 0.004, Requests: 20, Seed: 1}
	res := Bandwidth(opt)
	if res.Users == 0 {
		t.Fatal("no users")
	}
	if res.P2PPerNodeBytes <= res.HyRecPerUserBytes {
		t.Fatalf("P2P (%v B) not above HyRec (%v B)", res.P2PPerNodeBytes, res.HyRecPerUserBytes)
	}
	// The paper's ratio is ≈3000×; demand at least 20× at this tiny scale.
	if res.Ratio < 20 {
		t.Fatalf("ratio = %v", res.Ratio)
	}
	var buf bytes.Buffer
	FprintBandwidth(&buf, res)
	if !strings.Contains(buf.String(), "P2P per node") {
		t.Fatal("missing line")
	}
}

func TestBuildWidgetJob(t *testing.T) {
	job := buildWidgetJob(50, 10, 1)
	if len(job.Candidates) != 120 {
		t.Fatalf("candidates = %d, want 2k+k²=120", len(job.Candidates))
	}
	if len(job.Profile.Liked) != 50 {
		t.Fatalf("profile size = %d", len(job.Profile.Liked))
	}
}
