package experiments

import (
	"fmt"
	"io"
	"time"

	"hyrec"
	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/replay"
)

// Fig5Series is one k-value's candidate-set-size-over-time curve.
type Fig5Series struct {
	K      int
	Bound  int // the 2k + k² upper bound
	Minute []float64
	Size   []float64
}

// Figure5 replays ML1 through HyRec for k ∈ {5, 10, 20} and samples the
// mean candidate-set size over windows of virtual time, showing the
// convergence-driven shrinkage below the 2k+k² bound.
func Figure5(opt Options) []Fig5Series {
	scale := opt.scaleOr(0.15)
	_, events, err := generate(dataset.ML1Config(), scale)
	if err != nil {
		opt.logf("fig5: %v\n", err)
		return nil
	}
	var out []Fig5Series
	for _, k := range []int{5, 10, 20} {
		cfg := hyrec.DefaultConfig()
		cfg.K = k
		cfg.Seed = opt.seedOr(1)
		sys := hyrec.NewSystem(cfg)
		series := Fig5Series{K: k, Bound: core.MaxCandidateSetSize(k)}
		d := replay.NewDriver(sys)
		d.Every = 7 * day
		d.Observer = func(t time.Duration, _ int) {
			mean, jobs := sys.Engine().CandidateSetStats()
			if jobs == 0 {
				return
			}
			sys.Engine().ResetCandidateStats()
			series.Minute = append(series.Minute, t.Minutes())
			series.Size = append(series.Size, mean)
		}
		d.Run(events)
		out = append(out, series)
	}
	return out
}

// FprintFigure5 renders the convergence curves.
func FprintFigure5(w io.Writer, series []Fig5Series) {
	fmt.Fprintln(w, "Figure 5: average candidate-set size over time (ML1)")
	for _, s := range series {
		fmt.Fprintf(w, "k=%d (bound %d):\n", s.K, s.Bound)
		for i := range s.Minute {
			fmt.Fprintf(w, "  t=%8.0fmin  size=%6.1f\n", s.Minute[i], s.Size[i])
		}
	}
}
