package experiments

import (
	"fmt"
	"io"
	"time"

	"hyrec/internal/baseline"
	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/mapreduce"
)

// Fig7Row is one dataset's column group in Figure 7: simulated wall-clock
// of each back-end KNN construction, measured at the run scale and
// extrapolated to the paper's full dataset size.
type Fig7Row struct {
	Dataset    string
	ScaleUsers int
	FullUsers  int
	// Measured simulated wall-clock at run scale.
	CRec, MahoutSingle, ClusMahout, Exhaustive time.Duration
	// Extrapolated to the full Table 2 size (see extrapolation notes in
	// DESIGN.md §2.3: exhaustive scales quadratically in users, CRec
	// linearly, Mahout linearly in ratings with Hadoop startup fixed).
	CRecFull, MahoutSingleFull, ClusMahoutFull, ExhaustiveFull time.Duration
}

// fig7Iterations is the CRec convergence budget (10–20 per the epidemic
// literature; Section 2.3).
const fig7Iterations = 15

// Figure7 measures the wall-clock of the four KNN back-ends on scaled
// versions of ML1/ML2/ML3/Digg and extrapolates to full scale.
func Figure7(opt Options) []Fig7Row {
	metric := core.Cosine{}
	specs := []struct {
		cfg   dataset.GenConfig
		scale float64
	}{
		{dataset.ML1Config(), opt.scaleOr(1.0)},          // 943 users: full scale feasible
		{dataset.ML2Config(), opt.scaleOr(1.0) * 0.25},   // 1510 users at default
		{dataset.ML3Config(), opt.scaleOr(1.0) * 0.025},  // ~1750 users at default
		{dataset.DiggConfig(), opt.scaleOr(1.0) * 0.033}, // ~1950 users at default
	}
	light := mapreduce.SingleNode4Core()
	hdp1 := mapreduce.HadoopSingleNode()
	hdp2 := mapreduce.HadoopTwoNodes()

	rows := make([]Fig7Row, 0, len(specs))
	for _, spec := range specs {
		tr, events, err := generate(spec.cfg, clampScale(spec.scale))
		if err != nil {
			opt.logf("fig7: %v\n", err)
			continue
		}
		profiles := profilesFromEvents(events)
		row := Fig7Row{Dataset: spec.cfg.Name, ScaleUsers: len(profiles), FullUsers: spec.cfg.Users}
		_ = tr

		cr := baseline.CRecBuild(profiles, 10, fig7Iterations, metric, light, opt.seedOr(1))
		row.CRec = cr.WallClock
		opt.logf("fig7 %s: crec %v (%d ops)\n", spec.cfg.Name, cr.WallClock, cr.SimilarityOps)

		m1 := baseline.MahoutBuild(profiles, 10, hdp1, 300, opt.seedOr(1))
		row.MahoutSingle = m1.WallClock
		m2 := baseline.MahoutBuild(profiles, 10, hdp2, 300, opt.seedOr(1))
		row.ClusMahout = m2.WallClock
		opt.logf("fig7 %s: mahout single %v / 2-node %v\n", spec.cfg.Name, m1.WallClock, m2.WallClock)

		ex := baseline.ExhaustiveBuild(profiles, 10, metric, light)
		row.Exhaustive = ex.WallClock
		opt.logf("fig7 %s: exhaustive %v\n", spec.cfg.Name, ex.WallClock)

		// Extrapolate to the paper's full dataset sizes.
		userRatio := float64(spec.cfg.Users) / float64(len(profiles))
		row.CRecFull = scaleDuration(row.CRec, userRatio)
		row.ExhaustiveFull = scaleDuration(row.Exhaustive, userRatio*userRatio)
		// Mahout: pair work scales with ratings (≈ users at fixed
		// avg-profile); the 3 job startups are fixed.
		startup := 3 * hdp1.JobStartup
		row.MahoutSingleFull = startup + scaleDuration(row.MahoutSingle-startup, userRatio)
		startup = 3 * hdp2.JobStartup
		row.ClusMahoutFull = startup + scaleDuration(row.ClusMahout-startup, userRatio)
		rows = append(rows, row)
	}
	return rows
}

func clampScale(s float64) float64 {
	if s > 1 {
		return 1
	}
	if s <= 0 {
		return 0.01
	}
	return s
}

func scaleDuration(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// profilesFromEvents folds a binarised trace into final profiles.
func profilesFromEvents(events []dataset.BinaryEvent) []core.Profile {
	m := map[core.UserID]core.Profile{}
	order := []core.UserID{}
	for _, ev := range events {
		p, ok := m[ev.User]
		if !ok {
			p = core.NewProfile(ev.User)
			order = append(order, ev.User)
		}
		m[ev.User] = p.WithRating(ev.Item, ev.Liked)
	}
	out := make([]core.Profile, 0, len(order))
	for _, u := range order {
		out = append(out, m[u])
	}
	return out
}

// FprintFigure7 renders the wall-clock table (both scales).
func FprintFigure7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7: KNN back-end wall-clock (simulated cluster; measured@scale → extrapolated full)")
	fmt.Fprintf(w, "%-10s %8s | %12s %12s %12s %12s\n", "dataset", "users", "CRec", "MahoutSingle", "ClusMahout", "Exhaustive")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d | %12s %12s %12s %12s\n",
			r.Dataset, r.ScaleUsers,
			short(r.CRec), short(r.MahoutSingle), short(r.ClusMahout), short(r.Exhaustive))
		fmt.Fprintf(w, "%-10s %8d | %12s %12s %12s %12s\n",
			"  (full)", r.FullUsers,
			short(r.CRecFull), short(r.MahoutSingleFull), short(r.ClusMahoutFull), short(r.ExhaustiveFull))
	}
}

func short(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}
