package experiments

import (
	"strings"
	"testing"
)

func TestSamplerAblationSmoke(t *testing.T) {
	rows := SamplerAblation(Options{Scale: 0.04, Seed: 4})
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	final := rows[len(rows)-1]
	if final.Full <= 0 {
		t.Fatal("full sampler never improved over empty KNN")
	}
	// The paper's design claim, directionally: after convergence the full
	// rule is at least as good as either ablated variant (generous margin
	// for the tiny smoke scale).
	if final.NoRandom > final.Full*1.25 {
		t.Errorf("no-random (%.3f) beat full (%.3f) decisively", final.NoRandom, final.Full)
	}
	if final.RandomOnly > final.Full*1.25 {
		t.Errorf("random-only (%.3f) beat full (%.3f) decisively", final.RandomOnly, final.Full)
	}
	// Ratios must be sane fractions of ideal.
	for _, r := range rows {
		for _, v := range []float64{r.Full, r.NoRandom, r.RandomOnly} {
			if v < 0 || v > 1.2 {
				t.Fatalf("ratio out of range at round %d: %+v", r.Round, r)
			}
		}
	}

	var sb strings.Builder
	FprintSampler(&sb, rows)
	if !strings.Contains(sb.String(), "no-random") {
		t.Fatalf("render malformed:\n%s", sb.String())
	}
}
