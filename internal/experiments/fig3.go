package experiments

import (
	"fmt"
	"io"
	"time"

	"hyrec"
	"hyrec/internal/baseline"
	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/metrics"
	"hyrec/internal/replay"
)

// Fig3Point is one weekly sample of Figure 3: average view similarity of
// each system plus the global-knowledge upper bound.
type Fig3Point struct {
	Day        float64
	HyRec10    float64
	HyRec10IR7 float64
	HyRec20    float64
	Offline10  float64 // Offline-Ideal recomputed weekly
	Ideal10    float64 // online-ideal upper bound at this instant
}

// Figure3 replays the ML1 trace through HyRec (k=10, k=20, and k=10 with
// the inter-request cap of 7 days) and the weekly Offline-Ideal baseline,
// sampling average view similarity once per virtual week. Default scale
// 0.15 keeps the brute-force upper bound cheap; pass Scale=1 for the
// paper-size run.
func Figure3(opt Options) []Fig3Point {
	scale := opt.scaleOr(0.15)
	_, events, err := generate(dataset.ML1Config(), scale)
	if err != nil {
		opt.logf("fig3: %v\n", err)
		return nil
	}

	type run struct {
		name   string
		series []float64
	}
	metric := core.Cosine{}
	sample := 7 * day

	// HyRec variants.
	hyrecSeries := func(k int, irCap time.Duration) ([]float64, []float64, []float64) {
		cfg := hyrec.DefaultConfig()
		cfg.K = k
		cfg.Seed = opt.seedOr(1)
		sys := hyrec.NewSystem(cfg)
		var series, idealSeries, days []float64
		d := replay.NewDriver(sys)
		d.Every = sample
		d.InterRequestCap = irCap
		d.Observer = func(t time.Duration, _ int) {
			src := sys.ProfileSource()
			series = append(series, metrics.ViewSimilarity(src, sys.Neighbors, metric))
			idealSeries = append(idealSeries, metrics.IdealViewSimilarity(src, k, metric))
			days = append(days, t.Hours()/24)
		}
		d.Run(events)
		return series, idealSeries, days
	}

	h10, ideal10, days := hyrecSeries(10, 0)
	h10ir7, _, _ := hyrecSeries(10, 7*day)
	h20, _, _ := hyrecSeries(20, 0)

	// Offline-Ideal with weekly recomputation.
	off := baseline.NewOfflineIdeal(10, 7*day, metric)
	var offSeries []float64
	d := replay.NewDriver(off)
	d.Every = sample
	d.Observer = func(t time.Duration, _ int) {
		offSeries = append(offSeries, metrics.ViewSimilarity(off.Store(), off.Neighbors, metric))
	}
	d.Run(events)

	n := len(days)
	points := make([]Fig3Point, 0, n)
	for i := 0; i < n; i++ {
		p := Fig3Point{Day: days[i], HyRec10: h10[i], Ideal10: ideal10[i]}
		if i < len(h10ir7) {
			p.HyRec10IR7 = h10ir7[i]
		}
		if i < len(h20) {
			p.HyRec20 = h20[i]
		}
		if i < len(offSeries) {
			p.Offline10 = offSeries[i]
		}
		points = append(points, p)
	}
	return points
}

// FprintFigure3 renders the series as columns.
func FprintFigure3(w io.Writer, points []Fig3Point) {
	fmt.Fprintln(w, "Figure 3: average view similarity over time (ML1)")
	fmt.Fprintf(w, "%8s %10s %12s %10s %12s %10s\n", "day", "hyrec k10", "k10 IR=7d", "hyrec k20", "offline p7d", "ideal k10")
	for _, p := range points {
		fmt.Fprintf(w, "%8.0f %10.4f %12.4f %10.4f %12.4f %10.4f\n",
			p.Day, p.HyRec10, p.HyRec10IR7, p.HyRec20, p.Offline10, p.Ideal10)
	}
}
