package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"hyrec"
	"hyrec/internal/core"
	"hyrec/internal/gossip"
	"hyrec/internal/stress"
	"hyrec/internal/wire"
)

// Fig11Row is one background-activity curve of Figure 11: monitor progress
// (loop iterations) at each baseline CPU-load level.
type Fig11Row struct {
	Activity string
	Loads    []float64
	Loops    []int64
}

// Figure11 reproduces the client-impact experiment: a monitoring loop
// (repeated similarity computations) measures machine progress while
// (a) nothing, (b) the HyRec widget, (c) a display loop fetching ~1 kB of
// HTTP content, or (d) a decentralized recommender runs in the background,
// across stress-induced CPU loads.
func Figure11(opt Options) []Fig11Row {
	loads := []float64{0, 0.25, 0.5, 0.75}
	window := 150 * time.Millisecond
	if opt.Requests > 0 { // reuse Requests as a window-ms override in this experiment
		window = time.Duration(opt.Requests) * time.Millisecond
	}

	// The monitored unit of work: one cosine similarity on ~100-item
	// profiles, matching the paper's monitoring tool.
	a := syntheticProfiles(2, 100, opt.seedOr(1))
	monitorUnit := func() { (core.Cosine{}).Score(a[0], a[1]) }

	// Background activity: HyRec widget executing jobs in a loop.
	job := buildWidgetJob(100, 10, opt.seedOr(1))
	w := hyrec.NewWidget()
	hyrecLoop := func(stop <-chan struct{}) {
		for {
			select {
			case <-stop:
				return
			default:
				w.Execute(job)
			}
		}
	}

	// Display activity: fetch 1004 bytes over HTTP and "render" it.
	content := strings.Repeat("x", 1004)
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(rw, content)
	}))
	defer ts.Close()
	displayLoop := func(stop <-chan struct{}) {
		buf := make([]byte, 2048)
		for {
			select {
			case <-stop:
				return
			default:
				resp, err := http.Get(ts.URL)
				if err != nil {
					continue
				}
				for {
					n, err := resp.Body.Read(buf)
					_ = n
					if err != nil {
						break
					}
				}
				resp.Body.Close()
			}
		}
	}

	// Decentralized activity: continuous gossip rounds on a small overlay.
	net := gossip.NewNetwork(gossip.DefaultConfig())
	for u := 0; u < 50; u++ {
		for j := 0; j < 10; j++ {
			net.Rate(core.UserID(u), core.ItemID((u*3+j)%100), true)
		}
	}
	gossipLoop := func(stop <-chan struct{}) {
		for {
			select {
			case <-stop:
				return
			default:
				net.RunRounds(1)
			}
		}
	}

	activities := []struct {
		name string
		run  func(stop <-chan struct{})
	}{
		{"baseline", nil},
		{"hyrec", hyrecLoop},
		{"display", displayLoop},
		{"decentralized", gossipLoop},
	}

	rows := make([]Fig11Row, 0, len(activities))
	for _, act := range activities {
		row := Fig11Row{Activity: act.name, Loads: loads}
		for _, load := range loads {
			stopLoad := stress.Load(load)
			var stopActivity chan struct{}
			if act.run != nil {
				stopActivity = make(chan struct{})
				go act.run(stopActivity)
			}
			row.Loops = append(row.Loops, stress.Monitor(window, monitorUnit))
			if stopActivity != nil {
				close(stopActivity)
			}
			stopLoad()
		}
		rows = append(rows, row)
		opt.logf("fig11 %s: %v\n", act.name, row.Loops)
	}
	return rows
}

// buildWidgetJob constructs a worst-case personalization job (full
// candidate set) with the given profile size.
func buildWidgetJob(ps, k int, seed int64) *wire.Job {
	profiles := syntheticProfiles(core.MaxCandidateSetSize(k)+1, ps, seed)
	job := &wire.Job{UID: 0, K: k, R: 10, Profile: wire.ProfileToMsg(profiles[0], nil)}
	for _, p := range profiles[1:] {
		job.Candidates = append(job.Candidates, wire.ProfileToMsg(p, nil))
	}
	return job
}

// FprintFigure11 renders the client-impact table.
func FprintFigure11(w io.Writer, rows []Fig11Row) {
	fmt.Fprintln(w, "Figure 11: monitor progress (loop iterations) under background activity and CPU load")
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-14s", "activity")
	for _, l := range rows[0].Loads {
		fmt.Fprintf(w, " %9.0f%%", 100*l)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s", r.Activity)
		for _, n := range r.Loops {
			fmt.Fprintf(w, " %10d", n)
		}
		fmt.Fprintln(w)
	}
}
