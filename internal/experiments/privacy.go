package experiments

import (
	"fmt"
	"io"
	"math"

	"hyrec"
	"hyrec/internal/dataset"
	"hyrec/internal/metrics"
	"hyrec/internal/privacy"
)

// PrivacyRow is one point of the privacy ablation: recommendation quality
// when candidate profiles are released under ε-randomized response.
type PrivacyRow struct {
	// Epsilon is the per-release privacy parameter; +Inf denotes the
	// unprotected baseline.
	Epsilon float64
	// Memoized marks the permanent-randomized-response variant.
	Memoized bool
	// Hits is the Figure 6 quality metric at list length MaxN.
	Hits int
	// Positives is the number of positive test ratings evaluated.
	Positives int
	// FlipProb is the mechanism's spurious-item probability (0 at +Inf).
	FlipProb float64
}

// PrivacyAblation extends the paper's evaluation with the differential-
// privacy mechanism its conclusion proposes: it replays the Figure 6
// protocol (ML1, 80/20 split, k=10) with the server perturbing every
// candidate profile under randomized response, sweeping ε, plus one
// memoized (RAPPOR-style permanent) variant. The output quantifies the
// privacy/personalization trade-off the paper leaves open.
func PrivacyAblation(opt Options) []PrivacyRow {
	scale := opt.scaleOr(0.12)
	cfgData := dataset.Scaled(dataset.ML1Config(), scale)
	tr, err := dataset.Generate(cfgData)
	if err != nil {
		opt.logf("privacy: %v\n", err)
		return nil
	}
	events := dataset.Binarize(tr)
	train, test := dataset.Split(events, 0.8)
	const maxN = 10
	numItems := uint32(cfgData.Items)

	type variant struct {
		eps  float64
		memo bool
	}
	variants := []variant{
		{math.Inf(1), false}, // unprotected baseline
		{8, false},
		{4, false},
		{2, false},
		{1, false},
		{0.5, false},
		{1, true}, // permanent RR at the paper-realistic ε=1
	}

	rows := make([]PrivacyRow, 0, len(variants))
	for _, v := range variants {
		cfg := hyrec.DefaultConfig()
		cfg.K = 10
		cfg.Seed = opt.seedOr(1)

		row := PrivacyRow{Epsilon: v.eps, Memoized: v.memo}
		if !math.IsInf(v.eps, 1) {
			var opts []privacy.Option
			if v.memo {
				opts = append(opts, privacy.WithMemo())
			}
			rr, err := privacy.NewRandomizedResponse(v.eps, numItems, cfg.Seed+17, opts...)
			if err != nil {
				opt.logf("privacy: mechanism ε=%v: %v\n", v.eps, err)
				continue
			}
			cfg.CandidateFilter = rr.Filter()
			row.FlipProb = rr.FlipProb()
		}

		q := metrics.EvaluateQuality(hyrec.NewSystem(cfg), train, test, maxN)
		row.Positives = q.Positives
		if len(q.Hits) == maxN {
			row.Hits = q.Hits[maxN-1]
		}
		rows = append(rows, row)
		opt.logf("privacy: ε=%v memo=%v hits@%d=%d\n", v.eps, v.memo, maxN, row.Hits)
	}
	return rows
}

// FprintPrivacy renders the ablation table.
func FprintPrivacy(w io.Writer, rows []PrivacyRow) {
	fmt.Fprintln(w, "Privacy ablation: recommendation quality under ε-randomized response (ML1, k=10, hits@10)")
	fmt.Fprintf(w, "%10s %6s %10s %10s %10s\n", "epsilon", "memo", "flip prob", "hits@10", "positives")
	for _, r := range rows {
		eps := fmt.Sprintf("%.1f", r.Epsilon)
		if math.IsInf(r.Epsilon, 1) {
			eps = "off"
		}
		fmt.Fprintf(w, "%10s %6v %10.4f %10d %10d\n", eps, r.Memoized, r.FlipProb, r.Hits, r.Positives)
	}
}
