package experiments

import (
	"strings"
	"testing"
)

func TestChurnStudySmoke(t *testing.T) {
	rows := ChurnStudy(Options{Scale: 0.04, Seed: 5})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].OnlineFraction != 1.0 {
		t.Fatalf("first row fraction = %v", rows[0].OnlineFraction)
	}
	for _, r := range rows {
		if r.HyRecRatio < 0 || r.HyRecRatio > 1.5 {
			t.Errorf("f=%.2f: hyrec ratio out of range: %v", r.OnlineFraction, r.HyRecRatio)
		}
		if r.P2PRatio < 0 || r.P2PRatio > 1.5 {
			t.Errorf("f=%.2f: p2p ratio out of range: %v", r.OnlineFraction, r.P2PRatio)
		}
	}
	// The headline claim: at low availability HyRec holds up better than
	// P2P. Allow slack for the tiny smoke-test scale.
	low := rows[len(rows)-1]
	if low.P2PRatio > low.HyRecRatio+0.15 {
		t.Errorf("at f=%.2f P2P (%.3f) beat HyRec (%.3f) by more than the noise margin",
			low.OnlineFraction, low.P2PRatio, low.HyRecRatio)
	}

	var sb strings.Builder
	FprintChurn(&sb, rows)
	if !strings.Contains(sb.String(), "online fraction") {
		t.Fatalf("render malformed:\n%s", sb.String())
	}
}
