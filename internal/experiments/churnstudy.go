package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"hyrec"
	"hyrec/internal/churn"
	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/gossip"
	"hyrec/internal/metrics"
)

// ChurnRow is one availability level of the churn study.
type ChurnRow struct {
	// OnlineFraction is the stationary probability a user machine is up.
	OnlineFraction float64
	// HyRecRatio is HyRec's average view similarity as a fraction of the
	// ideal KNN's (1 = converged to optimum).
	HyRecRatio float64
	// P2PRatio is the same quantity for the decentralized recommender.
	P2PRatio float64
}

// ChurnStudy quantifies the Section 2.4 availability argument: HyRec's
// server can place *offline* users in candidate sets (it owns their
// profiles), while a P2P overlay can only exchange with peers that are
// concurrently online. Both systems see the same static population, the
// same virtual-time horizon, and the same per-user availability schedule;
// the study reports how close each gets to the ideal KNN as availability
// degrades.
func ChurnStudy(opt Options) []ChurnRow {
	scale := opt.scaleOr(0.08)
	tr, err := dataset.Generate(dataset.Scaled(dataset.ML1Config(), scale))
	if err != nil {
		opt.logf("churn: %v\n", err)
		return nil
	}
	events := dataset.Binarize(tr)

	// Static population: apply every rating up front so that convergence —
	// not profile dynamics — is the only variable.
	profiles := make(map[core.UserID]core.Profile)
	for _, ev := range events {
		p, ok := profiles[ev.User]
		if !ok {
			p = core.NewProfile(ev.User)
		}
		profiles[ev.User] = p.WithRating(ev.Item, ev.Liked)
	}
	src := metrics.MapSource(profiles)
	metric := core.Cosine{}
	const k = 10
	ideal := metrics.IdealViewSimilarity(src, k, metric)
	if ideal == 0 {
		opt.logf("churn: degenerate population (ideal view similarity 0)\n")
		return nil
	}

	const (
		horizon   = 24 * time.Hour
		reqPeriod = 30 * time.Minute // HyRec: one request per online user per period
		sessBase  = 4 * time.Hour    // mean on+off cycle length
	)
	seed := opt.seedOr(1)
	fractions := []float64{1.0, 0.5, 0.2}

	rows := make([]ChurnRow, 0, len(fractions))
	for _, f := range fractions {
		var model *churn.Model
		if f < 1 {
			m, err := churn.NewModel(
				time.Duration(f*float64(sessBase)),
				time.Duration((1-f)*float64(sessBase)),
				seed+int64(f*100),
			)
			if err != nil {
				opt.logf("churn: model f=%.2f: %v\n", f, err)
				continue
			}
			model = m
		}

		rows = append(rows, ChurnRow{
			OnlineFraction: f,
			HyRecRatio:     hyrecUnderChurn(profiles, src, model, k, horizon, reqPeriod, seed, metric) / ideal,
			P2PRatio:       p2pUnderChurn(profiles, src, model, k, horizon, seed, metric) / ideal,
		})
		opt.logf("churn: f=%.2f hyrec=%.3f p2p=%.3f (of ideal)\n",
			f, rows[len(rows)-1].HyRecRatio, rows[len(rows)-1].P2PRatio)
	}
	return rows
}

// hyrecUnderChurn loads the population into a HyRec engine and lets every
// user issue one personalization request per reqPeriod while online.
func hyrecUnderChurn(
	profiles map[core.UserID]core.Profile,
	src metrics.ProfileSource,
	model *churn.Model,
	k int,
	horizon, reqPeriod time.Duration,
	seed int64,
	metric core.Similarity,
) float64 {
	cfg := hyrec.DefaultConfig()
	cfg.K = k
	cfg.Seed = seed
	sys := hyrec.NewSystem(cfg)
	ctx := context.Background()
	for u, p := range profiles {
		for _, item := range p.Liked() {
			sys.Engine().Rate(ctx, u, item, true)
		}
		for _, item := range p.Disliked() {
			sys.Engine().Rate(ctx, u, item, false)
		}
	}
	users := src.Users()
	for t := reqPeriod; t <= horizon; t += reqPeriod {
		for _, u := range users {
			if model.Online(u, t) {
				sys.Recommend(t, u, 0) // triggers one KNN iteration
			}
		}
	}
	// View similarity is measured against the true profiles, not the
	// engine's (identical here, but src is the single source of truth).
	return metrics.ViewSimilarity(src, sys.Neighbors, metric)
}

// p2pUnderChurn runs the gossip overlay over the same horizon with the
// same availability schedule.
func p2pUnderChurn(
	profiles map[core.UserID]core.Profile,
	src metrics.ProfileSource,
	model *churn.Model,
	k int,
	horizon time.Duration,
	seed int64,
	metric core.Similarity,
) float64 {
	cfg := gossip.DefaultConfig()
	cfg.K = k
	cfg.Seed = seed
	cfg.Period = 10 * time.Minute
	net := gossip.NewNetwork(cfg)
	for u, p := range profiles {
		for _, item := range p.Liked() {
			net.Rate(u, item, true)
		}
		for _, item := range p.Disliked() {
			net.Rate(u, item, false)
		}
	}
	net.SetAvailability(model.Availability())
	net.AdvanceTo(horizon)
	neighbors := func(u core.UserID) []core.UserID {
		node := net.Node(u)
		if node == nil {
			return nil
		}
		return node.Neighbors()
	}
	return metrics.ViewSimilarity(src, neighbors, metric)
}

// FprintChurn renders the churn study.
func FprintChurn(w io.Writer, rows []ChurnRow) {
	fmt.Fprintln(w, "Churn study: KNN quality vs machine availability (fraction of ideal view similarity)")
	fmt.Fprintf(w, "%16s %12s %12s\n", "online fraction", "hyrec", "p2p")
	for _, r := range rows {
		fmt.Fprintf(w, "%16.2f %12.3f %12.3f\n", r.OnlineFraction, r.HyRecRatio, r.P2PRatio)
	}
}
