package experiments

import (
	"fmt"
	"io"
	"time"

	"hyrec"
	"hyrec/internal/dataset"
	"hyrec/internal/itemcf"
	"hyrec/internal/metrics"
)

// TivoRow is one system of the staleness study.
type TivoRow struct {
	System    string
	Hits      int
	Positives int
	// Rebuilds counts server-side item-correlation builds (0 for HyRec,
	// whose server never runs a model build).
	Rebuilds int
}

// StalenessStudy quantifies the Section 2.4 argument against TiVo's hybrid
// design: item-item correlations recomputed every two weeks (clients
// refreshing daily) cannot follow a dynamic workload, while HyRec's
// per-request KNN iterations can. All systems replay the identical ML1
// trace under the Figure 6 quality protocol (80/20 split, hits@10).
func StalenessStudy(opt Options) []TivoRow {
	scale := opt.scaleOr(0.12)
	_, events, err := generate(dataset.ML1Config(), scale)
	if err != nil {
		opt.logf("tivo: %v\n", err)
		return nil
	}
	train, test := dataset.Split(events, 0.8)
	const maxN = 10

	rows := make([]TivoRow, 0, 4)

	hyCfg := hyrec.DefaultConfig()
	hyCfg.K = 10
	hyCfg.Seed = opt.seedOr(1)
	hyQ := metrics.EvaluateQuality(hyrec.NewSystem(hyCfg), train, test, maxN)
	rows = append(rows, TivoRow{System: "hyrec (online)", Hits: last(hyQ.Hits), Positives: hyQ.Positives})
	opt.logf("tivo: hyrec done\n")

	variants := []struct {
		name    string
		rebuild time.Duration
		refresh time.Duration
	}{
		{"tivo p=14d refresh=1d", 14 * day, day},
		{"tivo p=7d  refresh=1d", 7 * day, day},
		{"tivo p=1d  refresh=1d", day, day},
	}
	for _, v := range variants {
		cfg := itemcf.DefaultConfig()
		cfg.RecomputePeriod = v.rebuild
		cfg.ClientRefresh = v.refresh
		sys := itemcf.New(cfg)
		q := metrics.EvaluateQuality(sys, train, test, maxN)
		rows = append(rows, TivoRow{
			System:    v.name,
			Hits:      last(q.Hits),
			Positives: q.Positives,
			Rebuilds:  sys.Rebuilds(),
		})
		opt.logf("tivo: %s done (%d rebuilds)\n", v.name, sys.Rebuilds())
	}
	return rows
}

func last(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

// FprintTivo renders the staleness study.
func FprintTivo(w io.Writer, rows []TivoRow) {
	fmt.Fprintln(w, "Staleness study: HyRec online KNN vs TiVo-style periodic item correlations (ML1, hits@10)")
	fmt.Fprintf(w, "%-24s %10s %10s %10s\n", "system", "hits@10", "positives", "rebuilds")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %10d %10d %10d\n", r.System, r.Hits, r.Positives, r.Rebuilds)
	}
}
