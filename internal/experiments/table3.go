package experiments

import (
	"fmt"
	"io"
	"time"

	"hyrec/internal/cost"
)

// Table3Result is the cost-reduction table driven by the Figure 7 CRec
// back-end wall-clocks.
type Table3Result struct {
	Rows []cost.Row
	// PaperRows records the published percentages for side-by-side
	// comparison in EXPERIMENTS.md.
	PaperRows map[string][]float64
}

// Table3 computes HyRec's cost reduction over Offline-CRec for each
// dataset and period, using the full-scale extrapolated CRec wall-clocks
// from Figure 7 (pass its result in; runs Figure7 itself when rows is
// nil).
func Table3(opt Options, fig7Rows []Fig7Row) Table3Result {
	if fig7Rows == nil {
		fig7Rows = Figure7(opt)
	}
	pricing := cost.Paper2014()
	mlPeriods := []time.Duration{48 * time.Hour, 24 * time.Hour, 12 * time.Hour}
	diggPeriods := []time.Duration{12 * time.Hour, 6 * time.Hour, 2 * time.Hour}

	res := Table3Result{PaperRows: map[string][]float64{
		"ML1":  {8.6, 15.8, 27.4},
		"ML2":  {31, 47.6, 49.2},
		"ML3":  {49.2, 49.2, 49.2},
		"Digg": {2.5, 5.0, 9.5},
	}}
	for _, row := range fig7Rows {
		periods := mlPeriods
		if row.Dataset == "Digg" {
			periods = diggPeriods
		}
		// Calibrate the Go engine's wall-clock to the paper's testbed
		// before pricing (see cost.TestbedFactor2014).
		calibrated := time.Duration(float64(row.CRecFull) * cost.TestbedFactor2014)
		res.Rows = append(res.Rows, pricing.TableRow(row.Dataset, calibrated, periods))
	}
	return res
}

// FprintTable3 renders measured vs paper reductions.
func FprintTable3(w io.Writer, res Table3Result) {
	fmt.Fprintln(w, "Table 3: HyRec cost reduction vs Offline-CRec (measured | paper)")
	for _, row := range res.Rows {
		paper := res.PaperRows[row.Dataset]
		fmt.Fprintf(w, "%-6s", row.Dataset)
		for i, p := range row.Periods {
			ref := "  n/a"
			if i < len(paper) {
				ref = fmt.Sprintf("%5.1f", paper[i])
			}
			fmt.Fprintf(w, "  %4s: %5.1f%% |%s%%", p, 100*row.Reductions[i], ref)
		}
		fmt.Fprintln(w)
	}
}
