package experiments

import (
	"fmt"
	"io"
	"time"

	"hyrec"
)

// Fig13Point is one profile-size sample of Figure 13: widget KNN+recommend
// time per device and k.
type Fig13Point struct {
	ProfileSize int
	LaptopK10Ms float64
	LaptopK20Ms float64
	PhoneK10Ms  float64
	PhoneK20Ms  float64
}

// Figure13 measures the combined KNN-selection + recommendation time of
// the widget across profile sizes 10..500 for k=10 and k=20, on the
// laptop (measured) and the smartphone (device-scaled). The paper reports
// sub-linear growth: ×1.5 on the laptop and ×7.2 on the smartphone from
// ps=10 to ps=500.
func Figure13(opt Options) []Fig13Point {
	reps := opt.requestsOr(30)
	phone := hyrec.Smartphone()
	w := hyrec.NewWidget()
	sizes := []int{10, 50, 100, 200, 300, 400, 500}
	var out []Fig13Point
	for _, ps := range sizes {
		p := Fig13Point{ProfileSize: ps}
		for _, k := range []int{10, 20} {
			job := buildWidgetJob(ps, k, opt.seedOr(1))
			var total time.Duration
			for i := 0; i < reps; i++ {
				_, timing := w.Execute(job)
				total += timing.KNN + timing.Recommend
			}
			mean := total / time.Duration(reps)
			ms := float64(mean) / float64(time.Millisecond)
			phoneMs := float64(phone.Scale(mean)) / float64(time.Millisecond)
			if k == 10 {
				p.LaptopK10Ms, p.PhoneK10Ms = ms, phoneMs
			} else {
				p.LaptopK20Ms, p.PhoneK20Ms = ms, phoneMs
			}
		}
		out = append(out, p)
		opt.logf("fig13 ps=%d: laptop k10 %.3fms k20 %.3fms\n", ps, p.LaptopK10Ms, p.LaptopK20Ms)
	}
	return out
}

// FprintFigure13 renders the widget-scaling table.
func FprintFigure13(w io.Writer, points []Fig13Point) {
	fmt.Fprintln(w, "Figure 13: widget KNN+recommend time vs profile size (ms)")
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s\n", "ps", "laptop k10", "laptop k20", "phone k10", "phone k20")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %12.3f %12.3f %12.3f %12.3f\n",
			p.ProfileSize, p.LaptopK10Ms, p.LaptopK20Ms, p.PhoneK10Ms, p.PhoneK20Ms)
	}
}
