package experiments

import (
	"strings"
	"testing"
)

func TestStalenessStudySmoke(t *testing.T) {
	rows := StalenessStudy(Options{Scale: 0.04, Seed: 2})
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].System != "hyrec (online)" || rows[0].Rebuilds != 0 {
		t.Fatalf("hyrec row malformed: %+v", rows[0])
	}
	if rows[0].Positives == 0 {
		t.Fatal("no positives evaluated")
	}
	// TiVo variants must have run at least their initial build, and a
	// shorter period means at least as many rebuilds.
	for i := 1; i < len(rows); i++ {
		if rows[i].Rebuilds < 1 {
			t.Errorf("%s never built correlations", rows[i].System)
		}
	}
	if rows[3].Rebuilds < rows[1].Rebuilds {
		t.Errorf("p=1d rebuilds (%d) < p=14d rebuilds (%d)", rows[3].Rebuilds, rows[1].Rebuilds)
	}

	var sb strings.Builder
	FprintTivo(&sb, rows)
	if !strings.Contains(sb.String(), "hyrec (online)") {
		t.Fatalf("render missing systems:\n%s", sb.String())
	}
}
