package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"hyrec/internal/cluster"
	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/metrics"
	"hyrec/internal/replay"
	"hyrec/internal/server"
	"hyrec/internal/stress"
)

// ClusterScalePoint is one row of the cluster throughput comparison: the
// sustained Rate+Job rate of an N-partition cluster under a fixed
// closed-loop load, and its speedup over the single-partition (≡ plain
// engine) baseline.
type ClusterScalePoint struct {
	Partitions int
	Users      int
	Workers    int
	Ops        int64
	OpsPerSec  float64
	Speedup    float64
}

// ClusterScaling measures server-side Rate+Job throughput of 1-, 4- and
// 16-partition clusters on the same synthetic population and closed-loop
// worker count (one worker per CPU). A single engine serializes every
// candidate draw on one sampler RNG lock; partitioning splits that lock
// domain N ways, which is where the speedup comes from. Default scale 1
// uses 4000 users with 30-item profiles; the measurement window per
// configuration is one second (override with Options.Window).
func ClusterScaling(opt Options) []ClusterScalePoint {
	scale := opt.scaleOr(1)
	users := int(4000 * scale)
	if users < 40 {
		users = 40
	}
	const profileSize = 30
	window := opt.windowOr(time.Second)
	workers := runtime.GOMAXPROCS(0)

	profiles := syntheticProfiles(users, profileSize, opt.seedOr(1))
	uids := make([]core.UserID, users)
	for i, p := range profiles {
		uids[i] = p.User()
	}

	points := make([]ClusterScalePoint, 0, 3)
	for _, parts := range []int{1, 4, 16} {
		cfg := server.DefaultConfig()
		cfg.Seed = opt.seedOr(1)
		c := cluster.New(cfg, parts)
		ctx := context.Background()
		for _, p := range profiles {
			for _, item := range p.Liked() {
				c.Rate(ctx, p.User(), item, true)
			}
		}
		// Prime the KNN tables with one widget round so measured jobs carry
		// realistic (two-hop) candidate sets on every configuration alike.
		sys := cluster.NewSystem(c, nil)
		for _, u := range uids {
			sys.Recommend(0, u, 0)
		}

		ops := stress.Throughput(workers, window, func(worker, i int) {
			u := uids[(uint32(worker)*2654435761+uint32(i))%uint32(len(uids))]
			c.Rate(ctx, u, core.ItemID(uint32(i)%997), true)
			if _, err := c.Job(ctx, u); err != nil {
				panic(err) // deterministic workload; a failure is a bug
			}
		})
		pt := ClusterScalePoint{
			Partitions: parts,
			Users:      users,
			Workers:    workers,
			Ops:        ops,
			OpsPerSec:  float64(ops) / window.Seconds(),
		}
		if len(points) > 0 && points[0].OpsPerSec > 0 {
			pt.Speedup = pt.OpsPerSec / points[0].OpsPerSec
		} else {
			pt.Speedup = 1
		}
		points = append(points, pt)
		opt.logf("clusterscale: %d partitions → %.0f ops/s (%.2fx)\n",
			parts, pt.OpsPerSec, pt.Speedup)
	}
	return points
}

// FprintClusterScaling renders the throughput comparison.
func FprintClusterScaling(w io.Writer, points []ClusterScalePoint) {
	fmt.Fprintln(w, "Cluster scaling: closed-loop Rate+Job throughput (synthetic population)")
	fmt.Fprintf(w, "%10s %8s %8s %12s %10s\n", "partitions", "users", "workers", "ops/sec", "speedup")
	for _, p := range points {
		fmt.Fprintf(w, "%10d %8d %8d %12.0f %9.2fx\n",
			p.Partitions, p.Users, p.Workers, p.OpsPerSec, p.Speedup)
	}
}

// ClusterRecallRow is one row of the cluster quality experiment: end-
// to-end recall@10 of an N-partition cluster on the ML1 replay, and its
// relative deviation from the single-partition baseline.
type ClusterRecallRow struct {
	Partitions int
	Hits       int
	Positives  int
	Recall10   float64
	// RelDelta is (recall - baseline) / baseline; 0 for the baseline row.
	RelDelta float64
}

// ClusterRecall replays the synthetic ML1 trace (Figure 6 protocol:
// 80/20 temporal split, hits@10 over positive test ratings) through
// clusters of 1, 2, 4 and 8 partitions. The 1-partition row is the
// single-engine baseline by construction; the experiment demonstrates
// that cross-partition candidate exchange keeps recall within a few
// percent of it — without the exchange the per-partition KNN graphs
// fragment and recall collapses (see TestClusterRecallExchangeMatters).
func ClusterRecall(opt Options) []ClusterRecallRow {
	scale := opt.scaleOr(0.1)
	_, events, err := generate(dataset.ML1Config(), scale)
	if err != nil {
		opt.logf("cluster: %v\n", err)
		return nil
	}
	train, test := dataset.Split(events, 0.8)
	const maxN = 10

	rows := make([]ClusterRecallRow, 0, 4)
	for _, parts := range []int{1, 2, 4, 8} {
		cfg := server.DefaultConfig()
		cfg.K = 10
		cfg.Seed = opt.seedOr(1)
		sys := cluster.NewSystem(cluster.New(cfg, parts), nil)
		q := metrics.EvaluateQuality(sys, train, test, maxN)
		row := ClusterRecallRow{
			Partitions: parts,
			Hits:       last(q.Hits),
			Positives:  q.Positives,
			Recall10:   q.Recall(maxN),
		}
		if len(rows) > 0 && rows[0].Recall10 > 0 {
			row.RelDelta = (row.Recall10 - rows[0].Recall10) / rows[0].Recall10
		}
		rows = append(rows, row)
		opt.logf("cluster: %d partitions → recall@10 %.4f (Δ %+.1f%%)\n",
			parts, row.Recall10, 100*row.RelDelta)
	}
	return rows
}

// FprintClusterRecall renders the quality comparison.
func FprintClusterRecall(w io.Writer, rows []ClusterRecallRow) {
	fmt.Fprintln(w, "Cluster recall: ML1 replay, hits@10, N partitions vs single engine")
	fmt.Fprintf(w, "%10s %8s %10s %10s %10s\n", "partitions", "hits", "positives", "recall@10", "rel-delta")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %8d %10d %10.4f %+9.1f%%\n",
			r.Partitions, r.Hits, r.Positives, r.Recall10, 100*r.RelDelta)
	}
}

// MaxClusterRecallDelta returns the largest absolute relative deviation
// from the baseline row — the epsilon the acceptance check asserts on.
func MaxClusterRecallDelta(rows []ClusterRecallRow) float64 {
	worst := 0.0
	for _, r := range rows {
		if d := math.Abs(r.RelDelta); d > worst {
			worst = d
		}
	}
	return worst
}

// RebalanceRecallResult compares a cluster scaled 2→4 mid-replay against
// a statically 4-partitioned one on the same trace — the quality half of
// the elastic-topology acceptance: live resharding must not cost recall.
type RebalanceRecallResult struct {
	ScaledRecall10 float64
	StaticRecall10 float64
	// RelDelta is (scaled - static) / static.
	RelDelta   float64
	UsersMoved int64
}

// RebalanceRecall replays the first half of the synthetic ML1 training
// trace on a 2-partition cluster, performs a live Scale(4) — streaming
// the moved users' state under the coordinator — replays the second
// half, and evaluates recall@10 exactly as ClusterRecall does. The
// static 4-partition run sees the identical event stream end to end.
func RebalanceRecall(opt Options) *RebalanceRecallResult {
	scale := opt.scaleOr(0.1)
	_, events, err := generate(dataset.ML1Config(), scale)
	if err != nil {
		opt.logf("rebalance: %v\n", err)
		return nil
	}
	train, test := dataset.Split(events, 0.8)
	const maxN = 10

	cfg := server.DefaultConfig()
	cfg.K = 10
	cfg.Seed = opt.seedOr(1)

	scaled := cluster.New(cfg, 2)
	sys := cluster.NewSystem(scaled, nil)
	half := len(train) / 2
	replay.NewDriver(sys).Run(train[:half])
	if err := scaled.Scale(context.Background(), 4); err != nil {
		opt.logf("rebalance: scale: %v\n", err)
		return nil
	}
	qScaled := metrics.EvaluateQuality(sys, train[half:], test, maxN)

	static := cluster.New(cfg, 4)
	qStatic := metrics.EvaluateQuality(cluster.NewSystem(static, nil), train, test, maxN)

	res := &RebalanceRecallResult{
		ScaledRecall10: qScaled.Recall(maxN),
		StaticRecall10: qStatic.Recall(maxN),
		UsersMoved:     scaled.Topology().UsersMovedTotal,
	}
	if res.StaticRecall10 > 0 {
		res.RelDelta = (res.ScaledRecall10 - res.StaticRecall10) / res.StaticRecall10
	}
	opt.logf("rebalance: scaled 2→4 recall@10 %.4f vs static-4 %.4f (Δ %+.1f%%, %d users moved)\n",
		res.ScaledRecall10, res.StaticRecall10, 100*res.RelDelta, res.UsersMoved)
	scaled.Close()
	static.Close()
	return res
}

// FprintRebalanceRecall renders the elastic-topology quality comparison.
func FprintRebalanceRecall(w io.Writer, r *RebalanceRecallResult) {
	if r == nil {
		return
	}
	fmt.Fprintln(w, "Rebalance recall: live 2→4 scale-out mid-replay vs static 4-partition cluster")
	fmt.Fprintf(w, "%12s %12s %10s %12s\n", "scaled@10", "static@10", "rel-delta", "users-moved")
	fmt.Fprintf(w, "%12.4f %12.4f %+9.1f%% %12d\n",
		r.ScaledRecall10, r.StaticRecall10, 100*r.RelDelta, r.UsersMoved)
}
