package experiments

import (
	"fmt"
	"io"
	"time"

	"hyrec"
	"hyrec/internal/stress"
	"hyrec/internal/wire"
)

// Fig12Point is one CPU-load sample of Figure 12: mean widget execution
// time on each device.
type Fig12Point struct {
	LoadPct      float64
	LaptopMs     float64
	SmartphoneMs float64
}

// Figure12 measures the widget's personalization-task latency (profile
// size 100, k=10, gzip payload included) under increasing background CPU
// load. Laptop values are real measurements under stress.Load; smartphone
// values apply the calibrated device factor to the same measurement
// (DESIGN.md substitution 2).
func Figure12(opt Options) []Fig12Point {
	job := buildWidgetJob(100, 10, opt.seedOr(1))
	raw, err := wire.EncodeJob(job)
	if err != nil {
		opt.logf("fig12: %v\n", err)
		return nil
	}
	gz, err := wire.Compress(raw, wire.GzipBestSpeed)
	if err != nil {
		opt.logf("fig12: %v\n", err)
		return nil
	}
	w := hyrec.NewWidget()
	phone := hyrec.Smartphone()

	reps := opt.requestsOr(30)
	loads := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9}
	var out []Fig12Point
	for _, load := range loads {
		stop := stress.Load(load)
		var total time.Duration
		ok := 0
		for i := 0; i < reps; i++ {
			_, timing, err := w.ExecutePayload(gz)
			if err != nil {
				continue
			}
			total += timing.Decompress + timing.Decode + timing.KNN + timing.Recommend
			ok++
		}
		stop()
		if ok == 0 {
			continue
		}
		mean := total / time.Duration(ok)
		out = append(out, Fig12Point{
			LoadPct:      100 * load,
			LaptopMs:     float64(mean) / float64(time.Millisecond),
			SmartphoneMs: float64(phone.Scale(mean)) / float64(time.Millisecond),
		})
		opt.logf("fig12 load=%.0f%%: laptop %.2fms phone %.2fms\n",
			100*load, out[len(out)-1].LaptopMs, out[len(out)-1].SmartphoneMs)
	}
	return out
}

// FprintFigure12 renders the load-sensitivity table.
func FprintFigure12(w io.Writer, points []Fig12Point) {
	fmt.Fprintln(w, "Figure 12: widget task time vs client CPU load (ps=100, k=10)")
	fmt.Fprintf(w, "%8s %12s %14s\n", "load%", "laptop ms", "smartphone ms")
	for _, p := range points {
		fmt.Fprintf(w, "%8.0f %12.2f %14.2f\n", p.LoadPct, p.LaptopMs, p.SmartphoneMs)
	}
}
