package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestPrivacyAblationSmoke(t *testing.T) {
	rows := PrivacyAblation(Options{Scale: 0.05, Seed: 3})
	if len(rows) < 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// First row is the unprotected baseline.
	if !math.IsInf(rows[0].Epsilon, 1) || rows[0].FlipProb != 0 {
		t.Fatalf("baseline row malformed: %+v", rows[0])
	}
	if rows[0].Positives == 0 {
		t.Fatal("no positive test ratings evaluated")
	}
	// Flip probability must increase as epsilon decreases.
	var lastEps, lastFlip float64 = math.Inf(1), 0
	for _, r := range rows {
		if r.Memoized {
			continue
		}
		if r.Epsilon < lastEps && r.FlipProb < lastFlip {
			t.Errorf("flip prob not monotone: ε=%v flip=%v after ε=%v flip=%v",
				r.Epsilon, r.FlipProb, lastEps, lastFlip)
		}
		lastEps, lastFlip = r.Epsilon, r.FlipProb
	}
	// The expected trade-off shape: the strongest privacy setting should
	// not beat the unprotected baseline.
	strongest := rows[0]
	for _, r := range rows {
		if !r.Memoized && r.Epsilon < strongest.Epsilon {
			strongest = r
		}
	}
	if strongest.Hits > rows[0].Hits {
		t.Logf("note: ε=%v beat baseline (%d > %d) at this scale — noise, but worth logging",
			strongest.Epsilon, strongest.Hits, rows[0].Hits)
	}

	var sb strings.Builder
	FprintPrivacy(&sb, rows)
	out := sb.String()
	if !strings.Contains(out, "epsilon") || !strings.Contains(out, "off") {
		t.Fatalf("render missing headers:\n%s", out)
	}
}
