package experiments

import (
	"fmt"
	"io"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// Fig10Point is one profile-size sample of Figure 10, in two scenarios:
//
//   - Converged: the requesting user's profile has ps items; the candidate
//     set has converged to ≈55 profiles (our Figure 5 measurement for
//     k=10) of ML1-typical size (≈106 items). This is the steady-state
//     message the paper's <10 kB-at-ps=500 claim describes.
//   - WorstCase: the full 2k+k² candidate set with every profile at ps
//     items — the theoretical upper bound (the paper: "the size we
//     consider here is an upper bound").
type Fig10Point struct {
	ProfileSize int

	ConvergedJSON int
	ConvergedGzip int
	ConvergedPct  float64

	WorstJSON int
	WorstGzip int
	WorstPct  float64
}

// fig10ConvergedCandidates is the converged candidate-set size for k=10
// (Figure 5: ≈55 instead of the 120 bound).
const fig10ConvergedCandidates = 55

// fig10TypicalProfile is ML1's average profile size (Table 2: 106).
const fig10TypicalProfile = 106

// Figure10 measures personalization-job wire sizes versus the requesting
// user's profile size, with default-level gzip (the paper's Jetty setup;
// ≈71% compression).
func Figure10(opt Options) []Fig10Point {
	sizes := []int{10, 50, 100, 200, 300, 400, 500}
	out := make([]Fig10Point, 0, len(sizes))
	for _, ps := range sizes {
		p := Fig10Point{ProfileSize: ps}

		conv := buildJob(ps, fig10ConvergedCandidates, fig10TypicalProfile, 10, opt.seedOr(1))
		p.ConvergedJSON, p.ConvergedGzip, p.ConvergedPct = measureJobSize(conv, opt)

		worst := buildJob(ps, core.MaxCandidateSetSize(10), ps, 10, opt.seedOr(1))
		p.WorstJSON, p.WorstGzip, p.WorstPct = measureJobSize(worst, opt)

		out = append(out, p)
		opt.logf("fig10 ps=%d: converged json %.1fkB gzip %.1fkB (%.0f%%), worst gzip %.1fkB\n",
			ps, float64(p.ConvergedJSON)/1024, float64(p.ConvergedGzip)/1024, p.ConvergedPct,
			float64(p.WorstGzip)/1024)
	}
	return out
}

// buildJob assembles a job with a ps-item user profile and nCand
// candidates of candPS items each.
func buildJob(ps, nCand, candPS, k int, seed int64) *wire.Job {
	profiles := syntheticProfiles(nCand+1, candPS, seed)
	user := syntheticProfiles(1, ps, seed+7)[0]
	job := &wire.Job{UID: 0, K: k, R: 10, Profile: wire.ProfileToMsg(user, nil)}
	for _, p := range profiles[1:] {
		job.Candidates = append(job.Candidates, wire.ProfileToMsg(p, nil))
	}
	return job
}

func measureJobSize(job *wire.Job, opt Options) (jsonLen, gzipLen int, pct float64) {
	raw := wire.AppendJob(nil, job, nil)
	gz, err := wire.Compress(raw, wire.GzipDefault)
	if err != nil {
		opt.logf("fig10: %v\n", err)
		return 0, 0, 0
	}
	pct = 100 * (1 - float64(len(gz))/float64(len(raw)))
	return len(raw), len(gz), pct
}

// FprintFigure10 renders the bandwidth table.
func FprintFigure10(w io.Writer, points []Fig10Point) {
	fmt.Fprintln(w, "Figure 10: personalization-job size vs requesting user's profile size")
	fmt.Fprintf(w, "%8s | %10s %10s %9s | %10s %10s %9s\n",
		"ps", "conv json", "conv gzip", "compr%", "worst json", "worst gzip", "compr%")
	for _, p := range points {
		fmt.Fprintf(w, "%8d | %8.1fkB %8.1fkB %8.1f%% | %8.1fkB %8.1fkB %8.1f%%\n",
			p.ProfileSize,
			float64(p.ConvergedJSON)/1024, float64(p.ConvergedGzip)/1024, p.ConvergedPct,
			float64(p.WorstJSON)/1024, float64(p.WorstGzip)/1024, p.WorstPct)
	}
}
