package experiments

import (
	"fmt"
	"io"
	"net/http/httptest"

	"hyrec"
	"hyrec/internal/baseline"
	"hyrec/internal/core"
	"hyrec/internal/loadgen"
)

// Fig8Point is one profile-size sample of Figure 8: mean response time (ms)
// of each front-end for a single-client request stream.
type Fig8Point struct {
	ProfileSize int
	HyRec10     float64
	HyRec20     float64
	CRec10      float64
	CRec20      float64
	Online10    float64
}

// fig8Users is the synthetic population size of the server experiments.
// It must be large enough that Online-Ideal's O(N·ps) per-request scan
// dominates HTTP fixed costs — the paper's "huge response times" regime;
// HyRec's and CRec's per-request work is independent of N.
const fig8Users = 2500

// Figure8 measures front-end response time versus profile size: HyRec
// (sampler + JSON + gzip) against CRec (server-side Algorithm 2 over the
// candidate set) and the Online-Ideal (exact KNN per request), with the
// KNN tables pre-filled (Section 5.5's worst case).
func Figure8(opt Options) []Fig8Point {
	requests := opt.requestsOr(300)
	sizes := []int{10, 50, 100, 200, 350, 500}
	var out []Fig8Point
	for _, ps := range sizes {
		point := Fig8Point{ProfileSize: ps}
		point.HyRec10 = measureHyRec(ps, 10, requests, 1, opt)
		point.HyRec20 = measureHyRec(ps, 20, requests, 1, opt)
		point.CRec10 = measureCRec(ps, 10, requests, 1, false, opt)
		point.CRec20 = measureCRec(ps, 20, requests, 1, false, opt)
		point.Online10 = measureCRec(ps, 10, maxInt(requests/10, 20), 1, true, opt)
		out = append(out, point)
		opt.logf("fig8 ps=%d: hyrec k10 %.2fms, crec k10 %.2fms, online %.2fms\n",
			ps, point.HyRec10, point.CRec10, point.Online10)
	}
	return out
}

// measureHyRec stands up a HyRec HTTP server over a synthetic population
// and load-tests /online.
func measureHyRec(ps, k, requests, concurrency int, opt Options) float64 {
	cfg := hyrec.DefaultConfig()
	cfg.K = k
	cfg.Seed = opt.seedOr(1)
	engine := hyrec.NewEngine(cfg)
	seedEngine(engine, ps, k, opt.seedOr(1))

	srv := hyrec.NewHTTPServer(engine, 0)
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	res := loadgen.Run(func(i int) string {
		return fmt.Sprintf("%s/online?uid=%d", ts.URL, i%fig8Users)
	}, requests, concurrency)
	return res.Latency.Mean
}

// measureCRec stands up the centralized front-end and load-tests
// /recommend.
func measureCRec(ps, k, requests, concurrency int, online bool, opt Options) float64 {
	fe := baseline.NewFrontEnd(k, 10, core.Cosine{}, online)
	profiles := syntheticProfiles(fig8Users, ps, opt.seedOr(1))
	fe.Seed(profiles, randomKNN(fig8Users, k, opt.seedOr(1)))
	ts := httptest.NewServer(fe.Handler())
	defer ts.Close()
	res := loadgen.Run(func(i int) string {
		return fmt.Sprintf("%s/recommend?uid=%d", ts.URL, i%fig8Users)
	}, requests, concurrency)
	return res.Latency.Mean
}

// seedEngine populates a HyRec engine with the synthetic worst-case state.
func seedEngine(engine *hyrec.Engine, ps, k int, seed int64) {
	for _, p := range syntheticProfiles(fig8Users, ps, seed) {
		engine.Profiles().Put(p)
	}
	for u, hood := range randomKNN(fig8Users, k, seed) {
		engine.KNN().Put(u, hood)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FprintFigure8 renders the response-time table.
func FprintFigure8(w io.Writer, points []Fig8Point) {
	fmt.Fprintln(w, "Figure 8: mean front-end response time vs profile size (ms)")
	fmt.Fprintf(w, "%8s %10s %10s %10s %10s %10s\n", "ps", "hyrec k10", "hyrec k20", "crec k10", "crec k20", "online k10")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			p.ProfileSize, p.HyRec10, p.HyRec20, p.CRec10, p.CRec20, p.Online10)
	}
}
