package experiments

import (
	"fmt"
	"io"

	"hyrec"
	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/metrics"
)

// MetricRow is one similarity metric's end-to-end recommendation quality.
type MetricRow struct {
	Metric    string
	Hits      int
	Positives int
}

// MetricCompare exercises the setSimilarity() customization point of
// Table 1: the identical ML1 replay (Figure 6 protocol) is run with the
// widget's KNN selection driven by each shipped similarity metric. Cosine
// is the paper's choice; Jaccard and the signed-cosine extension (which
// counts shared dislikes as agreement, Section 2.1's non-binary hook) are
// the alternatives a content provider could plug in.
func MetricCompare(opt Options) []MetricRow {
	scale := opt.scaleOr(0.1)
	_, events, err := generate(dataset.ML1Config(), scale)
	if err != nil {
		opt.logf("metrics: %v\n", err)
		return nil
	}
	train, test := dataset.Split(events, 0.8)
	const maxN = 10

	sims := []core.Similarity{core.Cosine{}, core.Jaccard{}, core.SignedCosine{}, core.Overlap{}}
	rows := make([]MetricRow, 0, len(sims))
	for _, sim := range sims {
		cfg := hyrec.DefaultConfig()
		cfg.K = 10
		cfg.Seed = opt.seedOr(1)
		sys := hyrec.NewSystem(cfg, hyrec.WithWidget(hyrec.NewWidget(hyrec.WithSimilarity(sim))))
		q := metrics.EvaluateQuality(sys, train, test, maxN)
		rows = append(rows, MetricRow{Metric: sim.Name(), Hits: last(q.Hits), Positives: q.Positives})
		opt.logf("metrics: %s hits@%d = %d\n", sim.Name(), maxN, last(q.Hits))
	}
	return rows
}

// FprintMetrics renders the metric comparison.
func FprintMetrics(w io.Writer, rows []MetricRow) {
	fmt.Fprintln(w, "Similarity-metric comparison (ML1 replay, k=10, hits@10)")
	fmt.Fprintf(w, "%-14s %10s %10s\n", "metric", "hits@10", "positives")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10d %10d\n", r.Metric, r.Hits, r.Positives)
	}
}
