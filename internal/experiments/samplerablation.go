package experiments

import (
	"context"
	"fmt"
	"io"

	"hyrec"
	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/metrics"
	"hyrec/internal/server"
)

// SamplerRow is one refinement round of the sampler ablation: view
// similarity as a fraction of ideal for each candidate-selection strategy.
type SamplerRow struct {
	Round      int
	Full       float64 // Section 3.1 rule: 1-hop ∪ 2-hop ∪ k random
	NoRandom   float64 // exploitation only (2-hop closure)
	RandomOnly float64 // exploration only (uniform draws)
}

// SamplerAblation dissects the Section 3.1 candidate rule: the same static
// population is refined for several rounds under the full rule, the rule
// without its random component, and pure random sampling. The paper argues
// the 2-hop term gives fast convergence and the random term guarantees
// escape from local optima; the output shows the full rule dominating,
// no-random plateauing below it, and random-only trailing far behind.
func SamplerAblation(opt Options) []SamplerRow {
	// The population must be several times the 2k+k² candidate budget
	// (120 at k=10), or the random-only strategy trivially samples the
	// whole population every round and matches the ideal by brute force.
	scale := opt.scaleOr(0.5)
	tr, err := dataset.Generate(dataset.Scaled(dataset.ML1Config(), scale))
	if err != nil {
		opt.logf("sampler: %v\n", err)
		return nil
	}
	events := dataset.Binarize(tr)

	profiles := make(map[core.UserID]core.Profile)
	for _, ev := range events {
		p, ok := profiles[ev.User]
		if !ok {
			p = core.NewProfile(ev.User)
		}
		profiles[ev.User] = p.WithRating(ev.Item, ev.Liked)
	}
	src := metrics.MapSource(profiles)
	metric := core.Cosine{}
	const k = 10
	ideal := metrics.IdealViewSimilarity(src, k, metric)
	if ideal == 0 {
		opt.logf("sampler: degenerate population\n")
		return nil
	}

	type variant struct {
		name    string
		sampler func(*hyrec.Engine) hyrec.Sampler
	}
	variants := []variant{
		{"full", nil}, // engine default
		{"no-random", func(e *hyrec.Engine) hyrec.Sampler { return server.NoRandomSampler{Engine: e} }},
		{"random-only", func(e *hyrec.Engine) hyrec.Sampler { return server.RandomOnlySampler{Engine: e} }},
	}

	const rounds = 8
	curves := make([][]float64, len(variants))
	users := src.Users()
	for vi, v := range variants {
		cfg := hyrec.DefaultConfig()
		cfg.K = k
		cfg.Seed = opt.seedOr(1)
		eng := hyrec.NewEngine(cfg)
		widget := hyrec.NewWidget()
		ctx := context.Background()
		for u, p := range profiles {
			for _, item := range p.Liked() {
				eng.Rate(ctx, u, item, true)
			}
			for _, item := range p.Disliked() {
				eng.Rate(ctx, u, item, false)
			}
		}
		if v.sampler != nil {
			eng.SetSampler(v.sampler(eng))
		}

		curves[vi] = make([]float64, rounds)
		for r := 0; r < rounds; r++ {
			for _, u := range users {
				job, err := eng.Job(ctx, u)
				if err != nil {
					continue
				}
				res, _ := widget.Execute(job)
				if _, err := eng.ApplyResult(ctx, res); err != nil {
					continue
				}
			}
			curves[vi][r] = metrics.ViewSimilarity(src, func(u core.UserID) []core.UserID {
				hood, _ := eng.Neighbors(ctx, u)
				return hood
			}, metric) / ideal
		}
		opt.logf("sampler: %s final ratio %.3f\n", v.name, curves[vi][rounds-1])
	}

	rows := make([]SamplerRow, rounds)
	for r := 0; r < rounds; r++ {
		rows[r] = SamplerRow{
			Round:      r + 1,
			Full:       curves[0][r],
			NoRandom:   curves[1][r],
			RandomOnly: curves[2][r],
		}
	}
	return rows
}

// FprintSampler renders the ablation curves.
func FprintSampler(w io.Writer, rows []SamplerRow) {
	fmt.Fprintln(w, "Sampler ablation: view similarity / ideal per refinement round (ML1 static, k=10)")
	fmt.Fprintf(w, "%6s %10s %12s %12s\n", "round", "full", "no-random", "random-only")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %10.3f %12.3f %12.3f\n", r.Round, r.Full, r.NoRandom, r.RandomOnly)
	}
}
