package experiments

import (
	"fmt"
	"io"
)

// Fig9Point is one concurrency sample of Figure 9.
type Fig9Point struct {
	Concurrency int
	HyRecPS10   float64
	HyRecPS100  float64
	CRecPS10    float64
	CRecPS100   float64
}

// Figure9 measures mean response time under a growing number of concurrent
// requests for profile sizes 10 and 100, HyRec versus the CRec front-end.
func Figure9(opt Options) []Fig9Point {
	levels := []int{1, 10, 50, 100, 200, 400}
	var out []Fig9Point
	for _, c := range levels {
		requests := opt.requestsOr(0)
		if requests == 0 {
			requests = 4 * c
			if requests < 200 {
				requests = 200
			}
		}
		p := Fig9Point{Concurrency: c}
		p.HyRecPS10 = measureHyRec(10, 10, requests, c, opt)
		p.HyRecPS100 = measureHyRec(100, 10, requests, c, opt)
		p.CRecPS10 = measureCRec(10, 10, requests, c, false, opt)
		p.CRecPS100 = measureCRec(100, 10, requests, c, false, opt)
		out = append(out, p)
		opt.logf("fig9 c=%d: hyrec ps100 %.2fms, crec ps100 %.2fms\n", c, p.HyRecPS100, p.CRecPS100)
	}
	return out
}

// FprintFigure9 renders the concurrency table.
func FprintFigure9(w io.Writer, points []Fig9Point) {
	fmt.Fprintln(w, "Figure 9: mean response time vs concurrent requests (ms)")
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s\n", "conc", "hyrec ps10", "hyrec ps100", "crec ps10", "crec ps100")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %12.2f %12.2f %12.2f %12.2f\n",
			p.Concurrency, p.HyRecPS10, p.HyRecPS100, p.CRecPS10, p.CRecPS100)
	}
}
