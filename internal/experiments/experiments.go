// Package experiments implements the reproduction harness: one entry point
// per table and figure of the paper's evaluation (Section 5). The
// cmd/hyrec-bench binary is a thin CLI over this package and the
// repository-root benchmarks call the same entry points at reduced scale,
// so `go test -bench` and the full harness exercise identical code.
//
// Every experiment takes an Options value controlling workload scale and
// verbosity and returns a printable result; EXPERIMENTS.md records
// paper-reported versus measured values.
package experiments

import (
	"fmt"
	"io"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/dataset"
)

// Options tunes an experiment run.
type Options struct {
	// Scale multiplies dataset sizes (1 = the paper's Table 2 sizes).
	// Experiments document their default when Scale is 0.
	Scale float64
	// Requests overrides request counts in load experiments (0 = default).
	Requests int
	// Window overrides the wall-clock measurement window in throughput
	// experiments (0 = per-experiment default).
	Window time.Duration
	// Out receives human-readable progress; nil silences it.
	Out io.Writer
	// Seed drives workload generation and system randomness.
	Seed int64
}

func (o Options) scaleOr(def float64) float64 {
	if o.Scale > 0 {
		return o.Scale
	}
	return def
}

func (o Options) requestsOr(def int) int {
	if o.Requests > 0 {
		return o.Requests
	}
	return def
}

func (o Options) windowOr(def time.Duration) time.Duration {
	if o.Window > 0 {
		return o.Window
	}
	return def
}

func (o Options) seedOr(def int64) int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return def
}

func (o Options) logf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

// generate builds a trace for cfg scaled by scale, failing loudly: the
// harness treats generation errors as programmer errors (invalid flags are
// caught earlier).
func generate(cfg dataset.GenConfig, scale float64) (*dataset.Trace, []dataset.BinaryEvent, error) {
	cfg = dataset.Scaled(cfg, scale)
	tr, err := dataset.Generate(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: generate %s: %w", cfg.Name, err)
	}
	return tr, dataset.Binarize(tr), nil
}

// day is a virtual-time day.
const day = 24 * time.Hour

// syntheticProfiles builds n profiles of exactly ps liked items each,
// drawn from an item space 10× larger — the controlled population of the
// server-side experiments (Section 5.5 "we artificially control the size
// of profiles").
func syntheticProfiles(n, ps int, seed int64) []core.Profile {
	profiles := make([]core.Profile, n)
	next := uint32(seed)
	randInt := func(mod int) int {
		// xorshift32: deterministic and cheap; quality is irrelevant here.
		next ^= next << 13
		next ^= next >> 17
		next ^= next << 5
		return int(next % uint32(mod))
	}
	itemSpace := 10 * ps
	if itemSpace < 100 {
		itemSpace = 100
	}
	for u := 0; u < n; u++ {
		seen := make(map[core.ItemID]struct{}, ps)
		items := make([]core.ItemID, 0, ps)
		for len(items) < ps {
			it := core.ItemID(randInt(itemSpace))
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			items = append(items, it)
		}
		p, err := core.ProfileFromSets(core.UserID(u), items, nil)
		if err != nil {
			// Unreachable: the disliked set is empty.
			panic(err)
		}
		profiles[u] = p
	}
	return profiles
}

// randomKNN assigns k random neighbours to every user — the "assume the
// KNN table is up to date" worst case of Section 5.5 (full-size candidate
// sets).
func randomKNN(users int, k int, seed int64) map[core.UserID][]core.UserID {
	next := uint32(seed*2654435761 + 1)
	randInt := func(mod int) int {
		next ^= next << 13
		next ^= next >> 17
		next ^= next << 5
		return int(next % uint32(mod))
	}
	table := make(map[core.UserID][]core.UserID, users)
	for u := 0; u < users; u++ {
		seen := map[core.UserID]bool{core.UserID(u): true}
		hood := make([]core.UserID, 0, k)
		for len(hood) < k && len(hood) < users-1 {
			v := core.UserID(randInt(users))
			if !seen[v] {
				seen[v] = true
				hood = append(hood, v)
			}
		}
		table[core.UserID(u)] = hood
	}
	return table
}
