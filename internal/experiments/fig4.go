package experiments

import (
	"fmt"
	"io"
	"sort"

	"hyrec"
	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/metrics"
	"hyrec/internal/replay"
)

// Fig4Bucket aggregates Figure 4's scatter into profile-size buckets: the
// per-user view similarity as a percentage of that user's ideal.
type Fig4Bucket struct {
	MinSize, MaxSize int
	Users            int
	MeanRatioPct     float64
	PctAbove70       float64
}

// Fig4Result is the full Figure 4 outcome.
type Fig4Result struct {
	Buckets []Fig4Bucket
	// OverallPctAbove70 is the paper's headline: "the vast majority of
	// users have view-similarity ratios above 70%".
	OverallPctAbove70 float64
	Users             int
}

// Figure4 replays ML1 through HyRec (k=10) and reports each user's view
// similarity as a fraction of her ideal, bucketed by profile size (the
// paper's proxy for activity: more ratings → more KNN iterations).
func Figure4(opt Options) Fig4Result {
	scale := opt.scaleOr(0.15)
	_, events, err := generate(dataset.ML1Config(), scale)
	if err != nil {
		opt.logf("fig4: %v\n", err)
		return Fig4Result{}
	}
	cfg := hyrec.DefaultConfig()
	cfg.K = 10
	cfg.Seed = opt.seedOr(1)
	sys := hyrec.NewSystem(cfg)
	replay.NewDriver(sys).Run(events)

	ratios := metrics.PerUserViewRatio(sys.ProfileSource(), sys.Neighbors, cfg.K, core.Cosine{})
	points := make([]metrics.RatioPoint, 0, len(ratios))
	for _, rp := range ratios {
		points = append(points, rp)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].ProfileSize < points[j].ProfileSize })

	bounds := []int{0, 25, 50, 100, 200, 400, 800, 1 << 30}
	res := Fig4Result{Users: len(points)}
	above70 := 0
	for b := 0; b+1 < len(bounds); b++ {
		var sum float64
		var n, above int
		for _, pt := range points {
			if pt.ProfileSize >= bounds[b] && pt.ProfileSize < bounds[b+1] {
				sum += pt.Ratio
				n++
				if pt.Ratio >= 0.7 {
					above++
				}
			}
		}
		if n == 0 {
			continue
		}
		res.Buckets = append(res.Buckets, Fig4Bucket{
			MinSize:      bounds[b],
			MaxSize:      bounds[b+1],
			Users:        n,
			MeanRatioPct: 100 * sum / float64(n),
			PctAbove70:   100 * float64(above) / float64(n),
		})
	}
	for _, pt := range points {
		if pt.Ratio >= 0.7 {
			above70++
		}
	}
	if len(points) > 0 {
		res.OverallPctAbove70 = 100 * float64(above70) / float64(len(points))
	}
	return res
}

// FprintFigure4 renders the bucketed scatter.
func FprintFigure4(w io.Writer, res Fig4Result) {
	fmt.Fprintln(w, "Figure 4: % of ideal view similarity vs profile size (ML1, k=10)")
	fmt.Fprintf(w, "%16s %8s %12s %12s\n", "profile size", "users", "mean ratio%", "≥70% share")
	for _, b := range res.Buckets {
		hi := fmt.Sprintf("%d", b.MaxSize)
		if b.MaxSize >= 1<<30 {
			hi = "∞"
		}
		fmt.Fprintf(w, "%8d–%-7s %8d %11.1f%% %11.1f%%\n", b.MinSize, hi, b.Users, b.MeanRatioPct, b.PctAbove70)
	}
	fmt.Fprintf(w, "overall: %.1f%% of %d users above the 70%% ratio\n", res.OverallPctAbove70, res.Users)
}
