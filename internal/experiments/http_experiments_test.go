package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The HTTP-driven experiments are heavier; they get their own file and
// minimal request budgets.

func TestFigure8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("HTTP load experiment")
	}
	opt := Options{Requests: 20, Seed: 1}
	pts := Figure8(opt)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		if p.HyRec10 <= 0 || p.CRec10 <= 0 || p.Online10 <= 0 {
			t.Fatalf("missing measurements: %+v", p)
		}
	}
	// Cross-system wall-clock orderings are not asserted here: `go test
	// ./...` runs package binaries concurrently, so on a small CI box any
	// timing comparison between systems flakes under contention. The
	// orderings (Online-Ideal slowest at large profiles, HyRec vs CRec)
	// are produced by `hyrec-bench -exp fig8` on an idle machine and
	// recorded in EXPERIMENTS.md. What must hold even under load is the
	// intra-system shape: serving ps=500 cannot beat serving ps=10.
	first, last := pts[0], pts[len(pts)-1]
	if last.ProfileSize > first.ProfileSize {
		if last.Online10 < first.Online10*0.5 {
			t.Errorf("online ideal got faster with 50× the profile size: %+v vs %+v", first, last)
		}
		if last.HyRec10 < first.HyRec10*0.5 {
			t.Errorf("hyrec got faster with 50× the profile size: %+v vs %+v", first, last)
		}
	}
	var buf bytes.Buffer
	FprintFigure8(&buf, pts)
	if !strings.Contains(buf.String(), "online k10") {
		t.Fatal("missing column")
	}
}

func TestFigure9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("HTTP load experiment")
	}
	opt := Options{Requests: 40, Seed: 1}
	pts := Figure9(opt)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		if p.HyRecPS100 <= 0 || p.CRecPS100 <= 0 {
			t.Fatalf("missing measurements: %+v", p)
		}
	}
	var buf bytes.Buffer
	FprintFigure9(&buf, pts)
	if !strings.Contains(buf.String(), "crec ps100") {
		t.Fatal("missing column")
	}
}

func TestFigure11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	opt := Options{Requests: 20, Seed: 1} // 20ms windows
	rows := Figure11(opt)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Activity] = true
		if len(r.Loops) != len(r.Loads) {
			t.Fatalf("row %s: %d loops for %d loads", r.Activity, len(r.Loops), len(r.Loads))
		}
		for _, n := range r.Loops {
			if n <= 0 {
				t.Fatalf("row %s: monitor starved", r.Activity)
			}
		}
	}
	for _, want := range []string{"baseline", "hyrec", "display", "decentralized"} {
		if !names[want] {
			t.Fatalf("missing activity %s", want)
		}
	}
	var buf bytes.Buffer
	FprintFigure11(&buf, rows)
	if !strings.Contains(buf.String(), "decentralized") {
		t.Fatal("missing row")
	}
}
