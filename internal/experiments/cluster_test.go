package experiments

import (
	"runtime"
	"testing"
	"time"

	"hyrec/internal/cluster"
	"hyrec/internal/dataset"
	"hyrec/internal/metrics"
	"hyrec/internal/server"
)

// TestClusterScalingSmoke exercises the throughput comparison end to end
// at a tiny scale and a 40 ms window per configuration.
func TestClusterScalingSmoke(t *testing.T) {
	points := ClusterScaling(Options{Scale: 0.02, Window: 40 * time.Millisecond, Seed: 1})
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	wantParts := []int{1, 4, 16}
	for i, p := range points {
		if p.Partitions != wantParts[i] {
			t.Errorf("point %d: partitions = %d, want %d", i, p.Partitions, wantParts[i])
		}
		if p.Ops <= 0 || p.OpsPerSec <= 0 {
			t.Errorf("point %d: no throughput measured: %+v", i, p)
		}
		if p.Speedup <= 0 {
			t.Errorf("point %d: speedup = %v", i, p.Speedup)
		}
	}
}

// TestClusterScalingSpeedup is the acceptance check for the tentpole's
// performance claim: on a multi-core machine, a multi-partition cluster
// must sustain higher Rate+Job throughput than a single engine. The
// speedup comes from splitting the sampler-RNG lock domain, which cannot
// manifest on fewer than a handful of cores, so the assertion is gated on
// GOMAXPROCS.
func TestClusterScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 3x1s throughput measurement in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 cores to demonstrate partition scaling, have %d", runtime.GOMAXPROCS(0))
	}
	points := ClusterScaling(Options{Seed: 1})
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	base, quad := points[0], points[1]
	if quad.OpsPerSec <= base.OpsPerSec {
		t.Errorf("4 partitions (%.0f ops/s) did not beat 1 partition (%.0f ops/s)",
			quad.OpsPerSec, base.OpsPerSec)
	}
}

// TestClusterRecallEpsilon is the acceptance check for the tentpole's
// quality claim: on the synthetic ML1 replay, every multi-partition
// configuration must keep recall@10 within 5% (relative) below the
// single-engine baseline. The whole pipeline is deterministic under a
// fixed seed, so this is a regression pin, not a statistical test.
func TestClusterRecallEpsilon(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full ML1 replay in -short mode")
	}
	rows := ClusterRecall(Options{Seed: 1})
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	base := rows[0]
	if base.Partitions != 1 {
		t.Fatalf("baseline row has %d partitions", base.Partitions)
	}
	if base.Recall10 <= 0 {
		t.Fatalf("baseline recall@10 = %v; the replay measured nothing", base.Recall10)
	}
	for _, r := range rows[1:] {
		if r.Recall10 < 0.95*base.Recall10 {
			t.Errorf("%d partitions: recall@10 %.4f is more than 5%% below baseline %.4f",
				r.Partitions, r.Recall10, base.Recall10)
		}
	}
}

// TestClusterRecallExchangeMatters is the ablation control: with
// cross-partition candidate exchange disabled, the per-partition KNN
// graphs fragment and recall must drop below the with-exchange cluster —
// demonstrating the exchange, not partitioning luck, is what preserves
// quality.
func TestClusterRecallExchangeMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping ML1 replays in -short mode")
	}
	_, events, err := generate(dataset.ML1Config(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	train, test := dataset.Split(events, 0.8)
	const maxN = 10

	run := func(exchange bool) float64 {
		cfg := server.DefaultConfig()
		cfg.K = 10
		cfg.Seed = 1
		c := cluster.New(cfg, 4)
		if !exchange {
			c.SetExchange(0)
		}
		q := metrics.EvaluateQuality(cluster.NewSystem(c, nil), train, test, maxN)
		return q.Recall(maxN)
	}

	with := run(true)
	without := run(false)
	t.Logf("recall@10 with exchange %.4f, without %.4f", with, without)
	if without >= with {
		t.Errorf("disabling the exchange did not hurt recall (with=%.4f without=%.4f); the exchange is not load-bearing",
			with, without)
	}
}

// TestRebalanceRecallSmoke exercises the live-scale-out quality
// comparison end to end at a tiny scale: both runs must measure
// something and users must actually have moved.
func TestRebalanceRecallSmoke(t *testing.T) {
	r := RebalanceRecall(Options{Scale: 0.02, Seed: 1})
	if r == nil {
		t.Fatal("rebalance experiment returned nothing")
	}
	if r.ScaledRecall10 <= 0 || r.StaticRecall10 <= 0 {
		t.Fatalf("no recall measured: %+v", r)
	}
	if r.UsersMoved <= 0 {
		t.Fatalf("scale-out moved no users: %+v", r)
	}
}

// TestRebalanceRecallEpsilon is the acceptance check for the elastic
// topology's quality claim: a live 2→4 scale-out mid-replay keeps
// recall@10 within 5% (relative) of the statically 4-partitioned
// cluster over the identical trace.
func TestRebalanceRecallEpsilon(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full ML1 replay in -short mode")
	}
	r := RebalanceRecall(Options{Seed: 1})
	if r == nil {
		t.Fatal("rebalance experiment returned nothing")
	}
	if r.StaticRecall10 <= 0 {
		t.Fatal("static baseline measured nothing")
	}
	if r.ScaledRecall10 < 0.95*r.StaticRecall10 {
		t.Errorf("scaled recall@10 %.4f fell more than 5%% below static %.4f",
			r.ScaledRecall10, r.StaticRecall10)
	}
}
