package experiments

import (
	"fmt"
	"io"
	"time"

	"hyrec"
	"hyrec/internal/dataset"
	"hyrec/internal/gossip"
	"hyrec/internal/replay"
)

// BandwidthResult is the Section 5.6 comparison: per-node traffic of the
// P2P recommender versus per-user traffic of HyRec on a Digg-like
// workload. The paper reports ≈24 MB vs ≈8 kB over the two-week trace.
type BandwidthResult struct {
	Users int
	// P2PPerNodeBytes is the mean per-node gossip traffic over the full
	// trace span (measured over MeasuredRounds, extrapolated linearly to
	// FullRounds: standing gossip traffic is constant per round).
	P2PPerNodeBytes float64
	MeasuredRounds  int
	FullRounds      int
	// HyRecPerUserBytes is the mean per-user HyRec traffic (gzip jobs +
	// results), measured over the whole replay — HyRec only communicates
	// on user activity, so no extrapolation applies.
	HyRecPerUserBytes float64
	Ratio             float64
}

// Bandwidth runs the Digg workload at reduced scale through both systems
// and compares per-node traffic.
func Bandwidth(opt Options) BandwidthResult {
	scale := opt.scaleOr(0.02) // ≈1180 users at default
	tr, events, err := generate(dataset.DiggConfig(), scale)
	if err != nil {
		opt.logf("bandwidth: %v\n", err)
		return BandwidthResult{}
	}

	// --- HyRec with full wire fidelity. ---
	cfg := hyrec.DefaultConfig()
	cfg.K = 10
	cfg.Seed = opt.seedOr(1)
	sys := hyrec.NewSystem(cfg, hyrec.WithWireFidelity())
	replay.NewDriver(sys).Run(events)
	users := sys.Engine().Profiles().Len()
	var hyrecPerUser float64
	if users > 0 {
		hyrecPerUser = float64(sys.Engine().Meter().TotalOnWire()) / float64(users)
	}
	opt.logf("bandwidth: hyrec %.1f kB/user over %d users\n", hyrecPerUser/1024, users)

	// --- P2P gossip: measure a window of rounds, extrapolate to the trace
	// span at one round per minute. ---
	gcfg := gossip.DefaultConfig()
	gcfg.K = 10
	gcfg.Seed = opt.seedOr(1)
	net := gossip.NewNetwork(gcfg)
	for _, ev := range events {
		net.Rate(ev.User, ev.Item, ev.Liked)
	}
	measured := 200
	if opt.Requests > 0 {
		measured = opt.Requests
	}
	// Warm up so views are converged (steady-state traffic).
	net.RunRounds(20)
	warmupTraffic := net.MeanNodeTraffic()
	net.RunRounds(measured)
	perRound := (net.MeanNodeTraffic() - warmupTraffic) / float64(measured)

	fullRounds := int(tr.Span / gcfg.Period)
	p2pPerNode := perRound * float64(fullRounds)
	opt.logf("bandwidth: p2p %.2f kB/node/round → %.1f MB/node over %d rounds\n",
		perRound/1024, p2pPerNode/(1<<20), fullRounds)

	res := BandwidthResult{
		Users:             users,
		P2PPerNodeBytes:   p2pPerNode,
		MeasuredRounds:    measured,
		FullRounds:        fullRounds,
		HyRecPerUserBytes: hyrecPerUser,
	}
	if hyrecPerUser > 0 {
		res.Ratio = p2pPerNode / hyrecPerUser
	}
	return res
}

// FprintBandwidth renders the comparison.
func FprintBandwidth(w io.Writer, res BandwidthResult) {
	fmt.Fprintln(w, "Section 5.6: per-node bandwidth, Digg workload (paper: P2P ≈24 MB vs HyRec ≈8 kB)")
	fmt.Fprintf(w, "users: %d, gossip rounds: %d measured → %d full (%s span)\n",
		res.Users, res.MeasuredRounds, res.FullRounds,
		time.Duration(res.FullRounds)*time.Minute)
	fmt.Fprintf(w, "P2P per node:   %10.2f MB\n", res.P2PPerNodeBytes/(1<<20))
	fmt.Fprintf(w, "HyRec per user: %10.2f kB\n", res.HyRecPerUserBytes/1024)
	fmt.Fprintf(w, "ratio: P2P uses %.0f× more bandwidth per machine\n", res.Ratio)
}
