package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyProfile(t *testing.T) {
	p := NewProfile(7)
	if p.User() != 7 {
		t.Errorf("User = %v", p.User())
	}
	if p.Size() != 0 || p.NumLiked() != 0 || p.Version() != 0 {
		t.Errorf("empty profile not empty: %v", p)
	}
	if p.Contains(1) || p.LikedContains(1) {
		t.Error("empty profile claims to contain an item")
	}
}

func TestWithRatingBasics(t *testing.T) {
	p := NewProfile(1).WithRating(10, true).WithRating(5, true).WithRating(20, false)
	if p.Size() != 3 || p.NumLiked() != 2 {
		t.Fatalf("size=%d liked=%d", p.Size(), p.NumLiked())
	}
	if got := p.Liked(); len(got) != 2 || got[0] != 5 || got[1] != 10 {
		t.Fatalf("Liked = %v, want sorted [5 10]", got)
	}
	if !p.Contains(20) || p.LikedContains(20) {
		t.Error("disliked item misclassified")
	}
	if p.Version() != 3 {
		t.Errorf("Version = %d, want 3", p.Version())
	}
}

func TestWithRatingImmutability(t *testing.T) {
	p1 := NewProfile(1).WithRating(1, true)
	p2 := p1.WithRating(2, true)
	if p1.Size() != 1 {
		t.Fatalf("parent mutated: %v", p1)
	}
	if p2.Size() != 2 {
		t.Fatalf("child wrong: %v", p2)
	}
}

func TestReRatingMovesBetweenSets(t *testing.T) {
	p := NewProfile(1).WithRating(3, true)
	p = p.WithRating(3, false)
	if p.LikedContains(3) {
		t.Error("item still liked after re-rating to dislike")
	}
	if !p.Contains(3) {
		t.Error("item lost after re-rating")
	}
	if p.Size() != 1 {
		t.Errorf("Size = %d, want 1", p.Size())
	}
	p = p.WithRating(3, true)
	if !p.LikedContains(3) || p.Size() != 1 {
		t.Errorf("re-like failed: %v", p)
	}
}

func TestDuplicateRatingIsIdempotent(t *testing.T) {
	p := NewProfile(1).WithRating(3, true).WithRating(3, true)
	if p.Size() != 1 || p.NumLiked() != 1 {
		t.Fatalf("duplicate like not idempotent: %v", p)
	}
}

func TestWithoutItem(t *testing.T) {
	p := NewProfile(1).WithRating(1, true).WithRating(2, false)
	p = p.WithoutItem(1)
	if p.Contains(1) || !p.Contains(2) || p.Size() != 1 {
		t.Fatalf("WithoutItem wrong: %v", p)
	}
	// Removing an absent item is a no-op on content.
	q := p.WithoutItem(99)
	if !q.Equal(p) {
		t.Error("removing absent item changed content")
	}
}

func TestTruncate(t *testing.T) {
	p := NewProfile(1)
	for i := ItemID(1); i <= 10; i++ {
		p = p.WithRating(i, true)
	}
	tr := p.Truncate(3)
	if tr.NumLiked() != 3 {
		t.Fatalf("Truncate kept %d", tr.NumLiked())
	}
	// Keeps the tail (largest IDs here since inserts were ascending).
	if got := tr.Liked(); got[0] != 8 || got[2] != 10 {
		t.Fatalf("Truncate kept %v", got)
	}
	// Truncating below size is a copy.
	same := p.Truncate(100)
	if !same.Equal(p) {
		t.Error("over-large truncate changed content")
	}
}

func TestProfileFromRatings(t *testing.T) {
	rs := []Rating{
		{User: 1, Item: 4, Liked: true},
		{User: 1, Item: 2, Liked: false},
		{User: 1, Item: 4, Liked: false}, // overwrite
	}
	p := ProfileFromRatings(1, rs)
	if p.LikedContains(4) || !p.Contains(4) || !p.Contains(2) {
		t.Fatalf("ProfileFromRatings wrong: %v", p)
	}
}

func TestEqualIgnoresVersion(t *testing.T) {
	a := NewProfile(1).WithRating(1, true)
	b := NewProfile(1).WithRating(2, true).WithoutItem(2).WithRating(1, true)
	if !a.Equal(b) {
		t.Error("content-equal profiles not Equal")
	}
	c := NewProfile(2).WithRating(1, true)
	if a.Equal(c) {
		t.Error("different users Equal")
	}
}

func TestStringForms(t *testing.T) {
	if UserID(3).String() != "u3" || ItemID(4).String() != "i4" {
		t.Error("ID String() wrong")
	}
	if NewProfile(3).String() == "" {
		t.Error("Profile String() empty")
	}
}

// Property: liked/disliked stay sorted, duplicate-free and disjoint under
// any sequence of ratings.
func TestProfileInvariantsProperty(t *testing.T) {
	prop := func(ops []struct {
		Item  uint16
		Liked bool
	}) bool {
		p := NewProfile(1)
		for _, op := range ops {
			p = p.WithRating(ItemID(op.Item), op.Liked)
		}
		return sortedUnique(p.Liked()) && sortedUnique(p.Disliked()) &&
			IntersectCount(p.Liked(), p.Disliked()) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a profile agrees with a reference map-based implementation.
func TestProfileMatchesMapModelProperty(t *testing.T) {
	prop := func(ops []struct {
		Item  uint8 // small domain to force collisions
		Liked bool
	}) bool {
		p := NewProfile(1)
		model := map[ItemID]bool{}
		for _, op := range ops {
			p = p.WithRating(ItemID(op.Item), op.Liked)
			model[ItemID(op.Item)] = op.Liked
		}
		if p.Size() != len(model) {
			return false
		}
		for item, liked := range model {
			if p.LikedContains(item) != liked || !p.Contains(item) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortedUnique(ids []ItemID) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			return false
		}
	}
	return true
}

func TestIntersectCount(t *testing.T) {
	cases := []struct {
		a, b []ItemID
		want int
	}{
		{nil, nil, 0},
		{[]ItemID{1}, nil, 0},
		{[]ItemID{1, 2, 3}, []ItemID{2, 3, 4}, 2},
		{[]ItemID{1, 2, 3}, []ItemID{4, 5}, 0},
		{[]ItemID{1, 2, 3}, []ItemID{1, 2, 3}, 3},
	}
	for _, c := range cases {
		if got := IntersectCount(c.a, c.b); got != c.want {
			t.Errorf("IntersectCount(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := IntersectCount(c.b, c.a); got != c.want {
			t.Errorf("IntersectCount symmetric (%v,%v) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
}

func TestIntersectCountGallopingPath(t *testing.T) {
	// Force the galloping branch: |b| >= 32|a|.
	big := make([]ItemID, 1000)
	for i := range big {
		big[i] = ItemID(2 * i)
	}
	small := []ItemID{0, 2, 999, 1000, 1998}
	// Members of big among small: 0, 2, 1000, 1998 → 4.
	if got := IntersectCount(small, big); got != 4 {
		t.Fatalf("galloping intersect = %d, want 4", got)
	}
}

func TestIntersectCountMatchesMapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		a := randomSortedIDs(rng, rng.Intn(50), 200)
		b := randomSortedIDs(rng, rng.Intn(2000), 4000)
		want := 0
		set := map[ItemID]bool{}
		for _, x := range a {
			set[x] = true
		}
		for _, x := range b {
			if set[x] {
				want++
			}
		}
		if got := IntersectCount(a, b); got != want {
			t.Fatalf("trial %d: got %d want %d", trial, got, want)
		}
	}
}

func randomSortedIDs(rng *rand.Rand, n, domain int) []ItemID {
	seen := map[ItemID]bool{}
	for len(seen) < n {
		seen[ItemID(rng.Intn(domain))] = true
	}
	out := make([]ItemID, 0, n)
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func BenchmarkWithRating(b *testing.B) {
	p := NewProfile(1)
	for i := 0; i < 200; i++ {
		p = p.WithRating(ItemID(i*3), true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.WithRating(ItemID(i%1000), i%2 == 0)
	}
}

func BenchmarkIntersectCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomSortedIDs(rng, 150, 2000)
	y := randomSortedIDs(rng, 150, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectCount(x, y)
	}
}
