package core

import (
	"fmt"
	"sort"
)

// Profile is the immutable opinion record of one user: the sets of items
// she liked and disliked, plus a version counter incremented on every
// update. Immutability is a deliberate design decision (see DESIGN.md):
// the HyRec server publishes profile snapshots that widgets, samplers and
// serializers read concurrently without locking. Updates return a new
// Profile sharing no mutable state with the old one.
//
// The zero value is a valid empty profile (version 0, no ratings).
type Profile struct {
	user     UserID
	version  uint64
	liked    []ItemID // sorted ascending, no duplicates
	disliked []ItemID // sorted ascending, no duplicates
	// pk caches the blocked-bitmap form of this lineage's latest-scored
	// snapshot (packed.go). The cell is shared down WithRating descent,
	// so it is derived state only: every read is version-checked against
	// the snapshot in hand. nil (zero-value profiles) just disables the
	// cache.
	pk *packCell
}

// NewProfile returns an empty profile for user u.
func NewProfile(u UserID) Profile { return Profile{user: u, pk: &packCell{}} }

// ProfileFromRatings builds a profile from a batch of ratings for user u.
// Later ratings for the same item overwrite earlier ones.
func ProfileFromRatings(u UserID, ratings []Rating) Profile {
	p := NewProfile(u)
	for _, r := range ratings {
		p = p.WithRating(r.Item, r.Liked)
	}
	return p
}

// User returns the identifier of the profile's owner.
func (p Profile) User() UserID { return p.user }

// Version returns the number of updates applied to this profile lineage.
// Two snapshots of the same user are identical iff their versions match,
// which the wire-level profile cache relies on.
func (p Profile) Version() uint64 { return p.version }

// Size returns the total number of rated items (liked + disliked).
// The paper calls this the "profile size" (Figures 8, 10, 13).
func (p Profile) Size() int { return len(p.liked) + len(p.disliked) }

// NumLiked returns the number of liked items.
func (p Profile) NumLiked() int { return len(p.liked) }

// Liked returns the sorted liked-item set. The returned slice is shared
// with the profile and MUST NOT be modified; copy it if mutation is needed.
// Sharing (rather than copying) is what makes candidate-set assembly and
// similarity computation allocation-free on the hot path.
func (p Profile) Liked() []ItemID { return p.liked }

// Disliked returns the sorted disliked-item set under the same no-modify
// contract as Liked.
func (p Profile) Disliked() []ItemID { return p.disliked }

// Contains reports whether the user has been exposed to item i (rated it
// either way). Algorithm 2 uses this to avoid recommending seen items.
func (p Profile) Contains(i ItemID) bool {
	return containsSorted(p.liked, i) || containsSorted(p.disliked, i)
}

// LikedContains reports whether the user liked item i.
func (p Profile) LikedContains(i ItemID) bool { return containsSorted(p.liked, i) }

// WithRating returns a new profile that additionally records the opinion
// (i, liked). Re-rating an item moves it between the liked and disliked
// sets. The receiver is unchanged. Both result sets are carved from one
// backing allocation (with hard capacity caps so neither can ever grow
// into the other), making a polarity flip one allocation, a new item
// one, and a re-rating that changes nothing zero — the sets are shared,
// which is safe because they are never mutated afterwards.
func (p Profile) WithRating(i ItemID, liked bool) Profile {
	next := Profile{user: p.user, version: p.version + 1, pk: p.pk}
	if next.pk == nil {
		next.pk = &packCell{}
	}
	tgt, oth := p.liked, p.disliked
	if !liked {
		tgt, oth = oth, tgt
	}
	ti := sort.Search(len(tgt), func(j int) bool { return tgt[j] >= i })
	oi := sort.Search(len(oth), func(j int) bool { return oth[j] >= i })
	ins := ti == len(tgt) || tgt[ti] != i
	rem := oi < len(oth) && oth[oi] == i
	newTgt, newOth := tgt, oth
	if ins || rem {
		nt, no := len(tgt)+1, len(oth)-1
		var buf []ItemID
		switch {
		case ins && rem:
			buf = make([]ItemID, nt+no)
		case ins:
			buf = make([]ItemID, nt)
		default:
			buf = make([]ItemID, no)
		}
		if ins {
			newTgt = buf[0:nt:nt]
			copy(newTgt, tgt[:ti])
			newTgt[ti] = i
			copy(newTgt[ti+1:], tgt[ti:])
			buf = buf[nt:]
		}
		if rem {
			newOth = buf[0:no:no]
			copy(newOth, oth[:oi])
			copy(newOth[oi:], oth[oi+1:])
		}
	}
	if liked {
		next.liked, next.disliked = newTgt, newOth
	} else {
		next.disliked, next.liked = newTgt, newOth
	}
	if pp := next.pk.v.Load(); pp != nil && pp.matches(p) {
		// The parent snapshot's pack is current (this lineage is being
		// scored): maintain it incrementally — one-block copy-on-write —
		// instead of leaving the next scorer a full rebuild. A cold cell
		// costs nothing here, so pure ingest never pays for packing.
		next.pk.v.Store(pp.withRating(i, liked, next.liked, next.disliked))
	}
	return next
}

// WithoutItem returns a new profile with any opinion on i removed.
func (p Profile) WithoutItem(i ItemID) Profile {
	return Profile{
		user:     p.user,
		version:  p.version + 1,
		liked:    removeSorted(p.liked, i),
		disliked: removeSorted(p.disliked, i),
		pk:       &packCell{},
	}
}

// Truncate returns a profile restricted to at most n most-recently-ranked
// items per set. Content providers can bound profile (and hence message)
// size this way (Section 6 of the paper discusses this knob).
func (p Profile) Truncate(n int) Profile {
	next := Profile{user: p.user, version: p.version + 1, pk: &packCell{}}
	next.liked = tailCopy(p.liked, n)
	next.disliked = tailCopy(p.disliked, n)
	return next
}

// Equal reports whether two profiles hold identical opinions (ignoring
// version numbers).
func (p Profile) Equal(q Profile) bool {
	return p.user == q.user && equalIDs(p.liked, q.liked) && equalIDs(p.disliked, q.disliked)
}

// String implements fmt.Stringer with a compact diagnostic form.
func (p Profile) String() string {
	return fmt.Sprintf("profile(%s v%d +%d -%d)", p.user, p.version, len(p.liked), len(p.disliked))
}

func tailCopy(ids []ItemID, n int) []ItemID {
	if len(ids) <= n {
		ids2 := make([]ItemID, len(ids))
		copy(ids2, ids)
		return ids2
	}
	out := make([]ItemID, n)
	copy(out, ids[len(ids)-n:])
	return out
}

func equalIDs(a, b []ItemID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsSorted(ids []ItemID, x ItemID) bool {
	i := sort.Search(len(ids), func(j int) bool { return ids[j] >= x })
	return i < len(ids) && ids[i] == x
}

// removeSorted returns a fresh sorted slice equal to ids \ {x}.
// If x is absent it returns ids unchanged (sharing is safe: the slice is
// never mutated afterwards).
func removeSorted(ids []ItemID, x ItemID) []ItemID {
	i := sort.Search(len(ids), func(j int) bool { return ids[j] >= x })
	if i >= len(ids) || ids[i] != x {
		return ids
	}
	out := make([]ItemID, len(ids)-1)
	copy(out, ids[:i])
	copy(out[i:], ids[i+1:])
	return out
}

// IntersectCount returns |a ∩ b| for two sorted ID slices. When the sizes
// are lopsided it switches from a linear merge to galloping binary search,
// which matters for power-law profile-size distributions.
func IntersectCount(a, b []ItemID) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	// Galloping pays off when b is much larger than a. The 8× threshold
	// is tuned with BenchmarkIntersect: at ratio 8 galloping already
	// edges out the merge for both small and large |a|, and by ratio 16
	// it is ~2× faster; below ratio 8 the branch-predictable merge wins.
	// This path is also the documented fallback for profiles below the
	// packing break-even (packMinSize in packed.go).
	if len(b) >= 8*len(a) {
		count := 0
		lo := 0
		for _, x := range a {
			i := lo + sort.Search(len(b)-lo, func(j int) bool { return b[lo+j] >= x })
			if i < len(b) && b[i] == x {
				count++
				lo = i + 1
			} else {
				lo = i
			}
			if lo >= len(b) {
				break
			}
		}
		return count
	}
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			count++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return count
}
